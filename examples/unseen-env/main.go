// Unseen-env: the §4.3 capability — detect performance problems in an
// environment with NO historical data by recombining environment embeddings
// learned from other environments. Per-chain models (Ridge/Ridge_ts) are
// not applicable in this setting at all.
//
//	go run ./examples/unseen-env
package main

import (
	"fmt"
	"log"

	"env2vec"
	"env2vec/internal/anomaly"
)

func main() {
	cfg := env2vec.TelecomDefaults()
	cfg.Chains = 20
	cfg.BuildsPerChain = 3
	cfg.StepsPerBuild = 60
	cfg.FaultExecutions = 2
	corpus := env2vec.GenerateTelecomCorpus(cfg)

	// Blind out EVERY build of the fault chains: their environments become
	// completely unseen tuples — but their components (testbed, SUT, test
	// case, build family) appear in other chains' data.
	exclude := map[*env2vec.Series]bool{}
	blinded := map[string]bool{}
	for _, exec := range corpus.FaultTargets {
		blinded[exec.Series.ChainID] = true
	}
	for _, s := range corpus.Dataset.Series {
		if blinded[s.ChainID] {
			exclude[s] = true
		}
	}
	tcfg := env2vec.TrainerDefaults(env2vec.TelecomFeatureCount)
	tcfg.Train.Epochs = 15
	trained, err := env2vec.Train(corpus.Dataset, exclude, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d examples with %d chains fully blinded out\n", trained.Examples, len(blinded))

	detector := env2vec.NewDetector(trained, env2vec.DetectConfig{Gamma: 2, AbsFilter: 5})
	// Deliberately NO CalibrateChain calls: there is no history, so the
	// γ threshold is applied to the execution's own error distribution.
	for _, exec := range corpus.FaultTargets {
		s := exec.Series
		enc := trained.Schema.Encode(s.Env)
		fmt.Printf("\nunseen environment %s\n", s.Env)
		fmt.Printf("  component ids under the frozen schema: testbed=%d sut=%d testcase=%d build=%d (0 = <unk>)\n",
			enc[0], enc[1], enc[2], enc[3])
		emb := trained.Model.EmbeddingFor(enc)
		fmt.Printf("  composed embedding: %d dims, first 5 = %.3v\n", len(emb), emb[:5])

		alarms := detector.ProcessExecution("env2vec", s)
		truth := anomaly.TrueEpisodes(s)
		covered := anomaly.DetectedEpisodes(alarms, s)
		st := anomaly.Evaluate(alarms, s)
		fmt.Printf("  %d alarms (%d correct, A_T=%.2f); %d/%d injected problems covered\n",
			st.Alarms, st.Correct, st.AT(), covered, truth)
		for _, a := range alarms {
			fmt.Printf("    %s\n", a)
		}
	}
	fmt.Println("\nRidge / Ridge_ts would be N/A here: no per-chain history exists to fit them.")
}
