// Testing-workflow: the full Figure 2 loop over real HTTP services.
//
//	(1) a testbed exporter serves workload/performance metrics, a TSDB
//	    scrapes it via file-based service discovery;
//	(2) the training pipeline fits the single Env2Vec model and publishes
//	    it to a model registry;
//	(3) the prediction pipeline rebuilds the execution from the TSDB and
//	    fetches the latest model;
//	(4) detected anomalies are pushed into the alarm database;
//	(5) the latest model version is fetched before scoring.
//
//	go run ./examples/testing-workflow
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"time"

	"env2vec/internal/alarmstore"
	"env2vec/internal/anomaly"
	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/modelserver"
	"env2vec/internal/pipeline"
	"env2vec/internal/telecom"
	"env2vec/internal/tsdb"
)

func main() {
	// A small corpus; the first faulty execution is "the test being run".
	cfg := telecom.SmallConfig()
	cfg.StepsPerBuild = 50
	corpus := telecom.Generate(cfg)
	target := corpus.FaultTargets[0].Series
	fmt.Printf("test case under execution: %s (%d timesteps)\n", target.Env, target.Len())

	// ── Step 1: testbed data collection ────────────────────────────────
	exporter, err := pipeline.NewExporter(target, corpus.Dataset.FeatureNames)
	if err != nil {
		log.Fatal(err)
	}
	testbed := httptest.NewServer(exporter)
	defer testbed.Close()

	dir, err := os.MkdirTemp("", "env2vec-workflow")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sdPath := filepath.Join(dir, "sd.json")
	emRecordID := "EM_" + target.Env.Testbed + "_" + target.Env.Build
	if err := tsdb.AppendSDTarget(sdPath, strings.TrimPrefix(testbed.URL, "http://"),
		map[string]string{"env": emRecordID}); err != nil {
		log.Fatal(err)
	}
	db := tsdb.New()
	scraper := tsdb.NewScraper(db, sdPath, time.Second)
	for { // scrape every timestep of the execution
		if _, err := scraper.ScrapeOnce(context.Background()); err != nil {
			log.Fatal(err)
		}
		if !exporter.Advance() {
			break
		}
	}
	scrapes, errs := scraper.Stats()
	fmt.Printf("step 1: scraped %d times (%d errors), %d series in TSDB\n", scrapes, errs, db.NumSeries())

	// ── Step 2: model training + publication ───────────────────────────
	exclude := map[*dataset.Series]bool{target: true}
	tcfg := pipeline.DefaultTrainerConfig(telecom.NumFeatures)
	tcfg.Train.Epochs = 12
	tcfg.Model.Hidden, tcfg.Model.GRUHidden = 24, 12
	trained, err := pipeline.Train(corpus.Dataset, exclude, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	registry := modelserver.NewRegistry()
	registrySrv := httptest.NewServer(&modelserver.Handler{Registry: registry, Now: time.Now().Unix})
	defer registrySrv.Close()
	client := &modelserver.Client{BaseURL: registrySrv.URL}
	version, err := pipeline.PublishModel(client, "env2vec", trained)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2: trained on %d examples, published model v%d\n", trained.Examples, version)

	// ── Step 5 then 3: fetch latest model, rebuild execution from TSDB ─
	serving := core.New(tcfg.Model, trained.Schema)
	fetchedVersion, err := pipeline.FetchModel(client, "env2vec", serving)
	if err != nil {
		log.Fatal(err)
	}
	rebuilt, err := pipeline.SeriesFromTSDB(db, emRecordID, target.Env, corpus.Dataset.FeatureNames, 0, 1<<62)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 3+5: fetched model v%d, rebuilt %d timesteps from the TSDB\n", fetchedVersion, rebuilt.Len())

	// ── Step 4: detect and push alarms ──────────────────────────────────
	wf := pipeline.NewWorkflow(trained, anomaly.Config{Gamma: 2, AbsFilter: 5})
	wf.Model = serving // use the registry copy, proving steps 2→5 round-trip
	chain := corpus.ChainSeries[target.ChainID]
	wf.CalibrateChain(target.ChainID, chain[:len(chain)-1])
	alarms := wf.ProcessExecution("env2vec", rebuilt)

	store, err := alarmstore.Open(filepath.Join(dir, "alarms.jsonl"))
	if err != nil {
		log.Fatal(err)
	}
	alarmSrv := httptest.NewServer(&alarmstore.Handler{Store: store, Now: time.Now().Unix})
	defer alarmSrv.Close()
	for _, a := range alarms {
		if _, err := store.Push(a, time.Now().Unix()); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("step 4: pushed %d alarm(s) into the alarm DB\n", len(alarms))
	for _, rec := range store.Find(alarmstore.Query{ChainID: target.ChainID}) {
		fmt.Printf("  alarm #%d %s\n", rec.ID, rec.Alarm)
	}

	// The alarm DB is queryable over HTTP too, as a testing engineer would.
	resp, err := http.Get(alarmSrv.URL + "/alarms?chain=" + target.ChainID)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Printf("alarm DB HTTP query status: %s\n", resp.Status)
}
