// Embeddings: learn environment embeddings on a telecom corpus, project
// them to 2-D with PCA, and render the Figure 6 scatter as ASCII — similar
// build types cluster together in the embedding space.
//
//	go run ./examples/embeddings
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"env2vec"
	"env2vec/internal/envmeta"
	"env2vec/internal/stats"
)

func main() {
	cfg := env2vec.TelecomDefaults()
	cfg.Chains = 40
	cfg.BuildsPerChain = 3
	cfg.StepsPerBuild = 60
	corpus := env2vec.GenerateTelecomCorpus(cfg)

	tcfg := env2vec.TrainerDefaults(env2vec.TelecomFeatureCount)
	tcfg.Train.Epochs = 20
	trained, err := env2vec.Train(corpus.Dataset, nil, tcfg)
	if err != nil {
		log.Fatal(err)
	}

	// Collect the unique environments and their concatenated embeddings.
	seen := map[env2vec.Environment]bool{}
	var envs []env2vec.Environment
	for _, s := range corpus.Dataset.Series {
		if !seen[s.Env] {
			seen[s.Env] = true
			envs = append(envs, s.Env)
		}
	}
	sort.Slice(envs, func(i, j int) bool { return envs[i].String() < envs[j].String() })
	ids := make([][envmeta.NumFeatures]int, len(envs))
	for i, e := range envs {
		ids[i] = trained.Schema.Encode(e)
	}
	mat := trained.Model.EmbeddingMatrix(ids)
	pca, err := stats.FitPCA(mat, 2)
	if err != nil {
		log.Fatal(err)
	}
	proj := pca.Transform(mat)
	fmt.Printf("%d environments; PCA explains %.0f%% + %.0f%% of embedding variance\n\n",
		len(envs), 100*pca.Explained[0], 100*pca.Explained[1])

	// ASCII scatter, labelled by build type (the marker letter).
	const w, h = 72, 24
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = make([]byte, w)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := 0; i < proj.Rows; i++ {
		minX = math.Min(minX, proj.At(i, 0))
		maxX = math.Max(maxX, proj.At(i, 0))
		minY = math.Min(minY, proj.At(i, 1))
		maxY = math.Max(maxY, proj.At(i, 1))
	}
	for i, e := range envs {
		x := int((proj.At(i, 0) - minX) / (maxX - minX + 1e-12) * (w - 1))
		y := int((proj.At(i, 1) - minY) / (maxY - minY + 1e-12) * (h - 1))
		marker := byte('?')
		if bt := e.BuildType(); bt != "" {
			marker = bt[0]
		}
		grid[h-1-y][x] = marker
	}
	fmt.Println("Figure 6 — environment embeddings in 2-D (letters are build types):")
	for _, row := range grid {
		fmt.Println(string(row))
	}

	// Quantify the clustering the plot shows.
	intra, inter, ni, nj := 0.0, 0.0, 0, 0
	for i := 0; i < len(envs); i++ {
		for j := i + 1; j < len(envs); j++ {
			dx := proj.At(i, 0) - proj.At(j, 0)
			dy := proj.At(i, 1) - proj.At(j, 1)
			d := math.Hypot(dx, dy)
			if envs[i].BuildType() == envs[j].BuildType() {
				intra += d
				ni++
			} else {
				inter += d
				nj++
			}
		}
	}
	fmt.Printf("\nmean distance within a build type: %.3f, across build types: %.3f (ratio %.2f)\n",
		intra/float64(ni), inter/float64(nj), (inter/float64(nj))/(intra/float64(ni)))
}
