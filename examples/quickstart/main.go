// Quickstart: train the single generic Env2Vec model on a small synthetic
// telecom corpus, then detect the performance problems injected into a new
// software build.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"env2vec"
)

func main() {
	// 1. A small corpus: 16 build chains, 3 builds each, with labelled
	//    problem episodes injected into the newest build of 3 chains.
	cfg := env2vec.TelecomDefaults()
	cfg.Chains = 16
	cfg.BuildsPerChain = 3
	cfg.StepsPerBuild = 60
	cfg.FaultExecutions = 3
	corpus := env2vec.GenerateTelecomCorpus(cfg)
	fmt.Printf("corpus: %d chains × %d builds, %d faulty executions\n",
		cfg.Chains, cfg.BuildsPerChain, len(corpus.FaultTargets))

	// 2. Train ONE model for all environments, masking the executions we
	//    want to score (they are the "new builds under test").
	exclude := map[*env2vec.Series]bool{}
	for _, exec := range corpus.FaultTargets {
		exclude[exec.Series] = true
	}
	tcfg := env2vec.TrainerDefaults(env2vec.TelecomFeatureCount)
	tcfg.Train.Epochs = 15
	trained, err := env2vec.Train(corpus.Dataset, exclude, tcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d examples (val MSE %.3f)\n", trained.Examples, trained.Fit.FinalValLoss)

	// 3. Detect anomalies: γ=2 with the paper's 5-point absolute filter.
	detector := env2vec.NewDetector(trained, env2vec.DetectConfig{Gamma: 2, AbsFilter: 5})
	for _, id := range corpus.ChainOrder {
		chain := corpus.ChainSeries[id]
		detector.CalibrateChain(id, chain[:len(chain)-1])
	}
	for _, exec := range corpus.FaultTargets {
		alarms := detector.ProcessExecution("env2vec", exec.Series)
		fmt.Printf("\nexecution %s: %d injected problem(s), %d alarm(s)\n",
			exec.Series.Env, len(exec.Faults)-1, len(alarms))
		for _, a := range alarms {
			fmt.Printf("  %s\n", a)
		}
	}
}
