#!/bin/sh
# Regenerates every experiment output recorded in EXPERIMENTS.md.
# On a single commodity core the whole script takes ~45 minutes.
set -e
mkdir -p docs/outputs
go run ./cmd/kdnbench -seeds 2 | tee docs/outputs/kdnbench.txt
go run ./cmd/telecombench -slow -csv docs/outputs/figures | tee docs/outputs/telecombench.txt
