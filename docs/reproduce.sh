#!/bin/sh
# Regenerates every experiment output recorded in EXPERIMENTS.md.
# On a single commodity core the whole script takes ~45 minutes.
set -e
mkdir -p docs/outputs
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi
go vet ./...
# The serving path is the one place with real concurrency: prove it race-free.
# quality and alarmstore sit on that same path (async alarm delivery).
go test -race ./internal/obs/ ./internal/serve/ ./internal/modelserver/ \
    ./internal/quality/ ./internal/alarmstore/
# The registry's durability story — see docs/serving.md. Fuzz the on-disk
# record codec (replay never panics, repair is stable), then prove the
# replication path end to end: train -> publish -> replica converges ->
# a daemon watching the replica answers /predict identically to one
# watching the primary. The -race battery above already covers the
# concurrent publish/get/sync registry test.
go test -run FuzzStoreReplay -fuzz FuzzStoreReplay -fuzztime 10s ./internal/modelserver/
go test -run 'ReplicationEndToEnd|PublishThenServe' ./internal/pipeline/
# The serve worker's forward stage stays allocation-free (PredictInto).
go test -run 'ForwardStageAllocs' ./internal/serve/
# Smoke-test the /metrics surface end to end: boot each daemon, scrape it.
# The e2vserve scrape asserts the quality metrics; the serve suite's
# /metrics round trip runs every exposition page (exemplar suffixes
# included) through tsdb.ParseExposition.
go test -run 'MetricsScrape' ./cmd/e2vserve/ ./cmd/tsdbd/
# The quality loop end to end: drift inject -> alarm in the store -> /quality.
go test -run 'QualityLoop|ObserveClosesTheLoop' ./internal/serve/
# Load harness drives a live server and reads back /statz stage p99s
# (multi-target mode included).
go test -run 'LoadGenerator' ./cmd/e2vload/
# The fleet front tier: ring/affinity/failover unit battery plus the
# kill-a-backend e2e (two live serve.Servers behind the proxy, one killed
# mid-load; zero client-visible errors, deterministic re-homing, fleet
# /quality and /metrics reflect the survivor, and the trace store retains
# the failed-attempt + failover span trees within its capacity bound) —
# all under -race.
go vet ./cmd/e2vproxy
go test -race ./internal/proxy/...
go test -race -run 'TestE2EKillBackendFailover' ./internal/proxy/
# Distributed tracing: tail-sampling policy and store bounds, the serve
# side's stage spans parenting onto an inbound traceparent, the proxy
# stitching backend spans into one cross-process tree, and tsdb scraping
# the proxy's merged backend-labelled exposition without label collisions.
go test -race ./internal/obs/ -run 'TraceStore|TraceParent|Span'
go test -race -run 'TestPredictSpansParentOntoTraceparent|TestShedRequestTraceRetained' ./internal/serve/
go test -race -run 'TestProxyTrace|TestProxyFailoverTraceSpans|TestProxyShedTraceRetained|TestProxySelfLatencyMetrics|TestE2EStitchedTraceAcrossProcesses' ./internal/proxy/
go test -race -run 'TestScrapeProxyMergedExposition' ./internal/tsdb/
# Registry long-poll: parked /versions and /latest pollers wake on publish.
go test -race -run 'LongPoll' ./internal/modelserver/
# The fused inference path: race-prove the scratch-arena pool, the
# tape/infer parity property, and the cross-precision battery (tape vs
# blocked float64 vs float32 — docs/performance.md documents the per-path
# tolerances), then fuzz the parity contract briefly.
go test -race ./internal/infer/ ./internal/core/
go test -run FuzzPredictParity -fuzz FuzzPredictParity -fuzztime 10s ./internal/core/
# Commit machine-readable inference numbers (ns/op and allocs/op; fused vs
# tape vs float32) AND gate them against the committed baseline: benchjson
# -compare exits nonzero if any shared benchmark is >10% slower than
# docs/outputs/BENCH_infer.json or grew its allocs/op, so a perf regression
# fails reproduce.sh before the baseline is overwritten.
go test -run '^$' -bench 'Forward(Tape|Infer)' -benchmem -count 1 ./internal/infer/ \
    | tee docs/outputs/bench_infer.txt \
    | go run ./cmd/benchjson -compare docs/outputs/BENCH_infer.json -max-regress 10 \
    > docs/outputs/BENCH_infer.json.new
mv docs/outputs/BENCH_infer.json.new docs/outputs/BENCH_infer.json
# The monitoring plane (docs/observability.md "Monitoring plane"): query
# engine fixtures (counter-reset rate, histogram_quantile vs synthetic
# buckets), the rules engine's pending->firing state machine and hot
# reload under -race, retention/eviction, the parallel scrape pool, the
# dashboard render, and the full burn-rate e2e: live serve.Server behind
# a proxy, scraped by tsdb, error injection drives the fast-burn rule
# pending->firing, alarm lands in the alarmstore with source=slo.
go test -race ./internal/tsdb/
go test -race -run 'TestMonitoringPlaneBurnRateE2E|TestQueryHTTPFixtures' ./internal/tsdb/
go test -run 'TestTSDBDMonitoringEndpoints|TestLoadGeneratorAlertsGate' ./cmd/tsdbd/ ./cmd/e2vload/
go test -run 'TestSourceFilter' ./internal/alarmstore/
# Serving-path benchmark baseline (batch forward + /predict encode),
# committed machine-readable for future serving PRs to diff against.
go test -run '^$' -bench 'BenchmarkServe' -benchmem -count 1 ./internal/serve/ \
    | tee docs/outputs/bench_serve.txt \
    | go run ./cmd/benchjson > docs/outputs/BENCH_serve.json
# The binary wire protocol (docs/serving.md "Binary wire protocol"): fuzz
# the frame + payload decoders (truncated / bit-flipped / oversized /
# interleaved frames are typed errors, never panics), run the protocol
# battery under -race (codec round trips, client/server batch and
# subscribe modes, proxy wire front with the mixed JSON+binary+stream
# kill-a-backend e2e), then commit the JSON-vs-binary codec and transport
# numbers (encode+decode at B8W20, and live round trips with p99s).
go test -run FuzzWireDecode -fuzz FuzzWireDecode -fuzztime 10s ./internal/wire/
go test -race ./internal/wire/
go test -race -run 'TestE2EWireMixedProtocolFailover|TestProxyBodyLimit|TestProxyErrorBodyCap' ./internal/proxy/
go test -race -run 'TestBodyLimits|TestStrictDecoding|TestDoBatch' ./internal/serve/
go test -run '^$' -bench 'EncodeDecode|RoundTrip' -benchmem -count 1 ./internal/wire/ \
    | tee docs/outputs/bench_wire.txt \
    | go run ./cmd/benchjson > docs/outputs/BENCH_wire.json
go run ./cmd/kdnbench -seeds 2 | tee docs/outputs/kdnbench.txt
go run ./cmd/telecombench -slow -csv docs/outputs/figures | tee docs/outputs/telecombench.txt
