#!/bin/sh
# Regenerates every experiment output recorded in EXPERIMENTS.md.
# On a single commodity core the whole script takes ~45 minutes.
set -e
mkdir -p docs/outputs
fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt" >&2
    exit 1
fi
go vet ./...
# The serving path is the one place with real concurrency: prove it race-free.
go test -race ./internal/obs/ ./internal/serve/ ./internal/modelserver/
# Smoke-test the /metrics surface end to end: boot each daemon, scrape it.
go test -run 'MetricsScrape' ./cmd/e2vserve/ ./cmd/tsdbd/
go run ./cmd/kdnbench -seeds 2 | tee docs/outputs/kdnbench.txt
go run ./cmd/telecombench -slow -csv docs/outputs/figures | tee docs/outputs/telecombench.txt
