#!/bin/sh
# Regenerates every experiment output recorded in EXPERIMENTS.md.
# On a single commodity core the whole script takes ~45 minutes.
set -e
mkdir -p docs/outputs
go vet ./...
# The serving path is the one place with real concurrency: prove it race-free.
go test -race ./internal/serve/ ./internal/modelserver/
go run ./cmd/kdnbench -seeds 2 | tee docs/outputs/kdnbench.txt
go run ./cmd/telecombench -slow -csv docs/outputs/figures | tee docs/outputs/telecombench.txt
