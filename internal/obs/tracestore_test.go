package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceParentRoundTrip(t *testing.T) {
	traceID, spanID := NewRequestID(), NewSpanID()
	h := FormatTraceParent(traceID, spanID)
	gotTrace, gotSpan, ok := ParseTraceParent(h)
	if !ok || gotTrace != traceID || gotSpan != spanID {
		t.Fatalf("ParseTraceParent(%q) = %q, %q, %v; want %q, %q, true", h, gotTrace, gotSpan, ok, traceID, spanID)
	}
	for _, bad := range []string{"", "00", "00-abc", "00--def-01", "00-abc--01", "00-a-b-c-01"} {
		if _, _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted malformed input", bad)
		}
	}
}

func TestSpanCoversInterval(t *testing.T) {
	start := time.Now()
	end := start.Add(3 * time.Millisecond)
	sp := NewSpan("trace1", "parent1", "op", start, end)
	if sp.TraceID != "trace1" || sp.ParentID != "parent1" || sp.Name != "op" {
		t.Fatalf("span identity wrong: %+v", sp)
	}
	if sp.SpanID == "" {
		t.Fatal("span id not generated")
	}
	if sp.StartUnixUS != start.UnixMicro() {
		t.Fatalf("start = %d, want %d", sp.StartUnixUS, start.UnixMicro())
	}
	if sp.DurationMS != 3 {
		t.Fatalf("duration = %v, want 3", sp.DurationMS)
	}
	sp.SetAttr("k", "v")
	if sp.Attrs["k"] != "v" {
		t.Fatalf("attr not set: %+v", sp.Attrs)
	}
}

// mkTrace builds a one-span trace for store tests.
func mkTrace(id, outcome string, retried bool, durMS float64) Trace {
	return Trace{
		TraceID: id, Root: "test.request", Outcome: outcome, Retried: retried,
		StartUnixUS: time.Now().UnixMicro(), DurationMS: durMS,
		Spans: []Span{{TraceID: id, SpanID: "s-" + id, Name: "test.request", DurationMS: durMS}},
	}
}

// TestTraceStoreTailSampling is the policy test: erred, shed, retried, and
// slow traces are always retained; the unremarkable rest rides the coin.
func TestTraceStoreTailSampling(t *testing.T) {
	coin := 1.0 // start with a losing coin: head samples drop
	reg := NewRegistry()
	ts := NewTraceStore(TraceStoreConfig{
		Capacity: 64, SlowMS: 100, SampleRate: 0.5,
		randFloat: func() float64 { return coin },
	}, reg)

	ts.Add(mkTrace("t-failed", OutcomeFailed, false, 1))
	ts.Add(mkTrace("t-shed", OutcomeShed, false, 1))
	ts.Add(mkTrace("t-retried", OutcomeServed, true, 1))
	ts.Add(mkTrace("t-slow", OutcomeServed, false, 150))
	ts.Add(mkTrace("t-boring", OutcomeServed, false, 1))
	for _, id := range []string{"t-failed", "t-shed", "t-retried", "t-slow"} {
		if _, ok := ts.Get(id); !ok {
			t.Errorf("tail-sampling dropped %s, which must always be retained", id)
		}
	}
	if _, ok := ts.Get("t-boring"); ok {
		t.Error("boring trace kept despite losing the sampling coin")
	}

	coin = 0.0 // winning coin: head sample keeps
	ts.Add(mkTrace("t-lucky", OutcomeServed, false, 1))
	if _, ok := ts.Get("t-lucky"); !ok {
		t.Error("boring trace dropped despite winning the sampling coin")
	}

	// The kept/dropped counters tell the same story on /metrics.
	var page strings.Builder
	if _, err := reg.WriteTo(&page); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`env2vec_trace_kept_total{reason="failed"} 1`,
		`env2vec_trace_kept_total{reason="shed"} 1`,
		`env2vec_trace_kept_total{reason="retry"} 1`,
		`env2vec_trace_kept_total{reason="slow"} 1`,
		`env2vec_trace_kept_total{reason="sampled"} 1`,
		`env2vec_trace_dropped_total 1`,
		`env2vec_trace_completed_total 6`,
		`env2vec_trace_stored 5`,
	} {
		if !strings.Contains(page.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, page.String())
		}
	}
}

func TestTraceStoreCapacityEviction(t *testing.T) {
	reg := NewRegistry()
	ts := NewTraceStore(TraceStoreConfig{Capacity: 4, SampleRate: -1}, reg)
	for i := 0; i < 7; i++ {
		ts.Add(mkTrace(fmt.Sprintf("t%d", i), OutcomeFailed, false, 1))
	}
	if got := ts.Len(); got != 4 {
		t.Fatalf("Len = %d, want capacity bound 4", got)
	}
	for i := 0; i < 3; i++ {
		if _, ok := ts.Get(fmt.Sprintf("t%d", i)); ok {
			t.Errorf("oldest trace t%d survived capacity eviction", i)
		}
	}
	for i := 3; i < 7; i++ {
		if _, ok := ts.Get(fmt.Sprintf("t%d", i)); !ok {
			t.Errorf("recent trace t%d evicted", i)
		}
	}
	if got := ts.evictedCapacity.Value(); got != 3 {
		t.Fatalf("capacity evictions = %d, want 3", got)
	}
}

func TestTraceStoreAgeEviction(t *testing.T) {
	now := time.Now()
	ts := NewTraceStore(TraceStoreConfig{
		Capacity: 16, MaxAge: time.Minute, SampleRate: -1,
		now: func() time.Time { return now },
	}, nil)
	ts.Add(mkTrace("old", OutcomeFailed, false, 1))
	now = now.Add(30 * time.Second)
	ts.Add(mkTrace("young", OutcomeFailed, false, 1))
	now = now.Add(45 * time.Second) // old is now 75s stale, young 45s
	if _, ok := ts.Get("old"); ok {
		t.Error("trace older than MaxAge still retrievable")
	}
	if _, ok := ts.Get("young"); !ok {
		t.Error("trace within MaxAge evicted")
	}
	if got := ts.Len(); got != 1 {
		t.Fatalf("Len = %d after age purge, want 1", got)
	}
}

func TestTraceStoreHTTP(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{Capacity: 16, SampleRate: -1}, nil)
	ts.Add(mkTrace("aa11", OutcomeFailed, false, 5))
	ts.Add(mkTrace("bb22", OutcomeShed, false, 1))
	ts.Add(mkTrace("cc33", OutcomeServed, true, 300))
	mux := http.NewServeMux()
	mux.Handle("/traces", ts)
	mux.Handle("/traces/", ts)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	getList := func(query string) TraceList {
		t.Helper()
		resp, err := http.Get(srv.URL + "/traces" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /traces%s: status %d", query, resp.StatusCode)
		}
		var tl TraceList
		if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
			t.Fatal(err)
		}
		return tl
	}

	if tl := getList(""); tl.Count != 3 {
		t.Fatalf("unfiltered list count = %d, want 3", tl.Count)
	}
	if tl := getList("?min_ms=100"); tl.Count != 1 || tl.Traces[0].TraceID != "cc33" {
		t.Fatalf("min_ms filter: %+v", tl)
	}
	if tl := getList("?outcome=shed"); tl.Count != 1 || tl.Traces[0].TraceID != "bb22" {
		t.Fatalf("outcome filter: %+v", tl)
	}
	if tl := getList("?limit=2"); tl.Count != 2 {
		t.Fatalf("limit: %+v", tl)
	}

	resp, err := http.Get(srv.URL + "/traces/cc33")
	if err != nil {
		t.Fatal(err)
	}
	var tr Trace
	err = json.NewDecoder(resp.Body).Decode(&tr)
	resp.Body.Close()
	if err != nil || tr.TraceID != "cc33" || !tr.Retried || len(tr.Spans) != 1 {
		t.Fatalf("GET /traces/cc33 = %+v, err %v", tr, err)
	}

	resp, err = http.Get(srv.URL + "/traces/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d, want 404", resp.StatusCode)
	}

	postResp, err := http.Post(srv.URL+"/traces", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /traces: status %d, want 405", postResp.StatusCode)
	}
}

// TestTraceStoreConcurrent hammers Add/Get/List from many goroutines; the
// -race battery in reproduce.sh gives this test its teeth.
func TestTraceStoreConcurrent(t *testing.T) {
	ts := NewTraceStore(TraceStoreConfig{Capacity: 32, SampleRate: 1}, NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("g%d-%d", g, i)
				ts.Add(mkTrace(id, OutcomeServed, false, float64(i)))
				ts.Get(id)
				if i%17 == 0 {
					ts.List(0, "", 10)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := ts.Len(); got > 32 {
		t.Fatalf("Len = %d, exceeded capacity 32 under concurrency", got)
	}
}

// A nil store must absorb the whole API without panicking, like the rest
// of the obs layer.
func TestTraceStoreNilSafe(t *testing.T) {
	var ts *TraceStore
	ts.Add(mkTrace("x", OutcomeFailed, false, 1))
	if ts.Len() != 0 {
		t.Fatal("nil store has nonzero length")
	}
	if _, ok := ts.Get("x"); ok {
		t.Fatal("nil store returned a trace")
	}
	if ts.List(0, "", 10) != nil {
		t.Fatal("nil store listed traces")
	}
}
