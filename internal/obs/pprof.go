package obs

import (
	"net/http"
	"net/http/pprof"
)

// RegisterPprof mounts the net/http/pprof handlers under /debug/pprof/ on
// an explicit mux (importing net/http/pprof for side effects would touch
// only the DefaultServeMux, which the daemons do not use). Gated behind a
// -pprof flag in the daemons because the profiles expose internals.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
