// Package obs is the dependency-free observability layer shared by the
// Env2Vec daemons and libraries: a metrics registry (counters, gauges,
// fixed-bucket histograms) rendered in the Prometheus text exposition
// format, request-ID tracing helpers, structured logging built on
// log/slog, and optional pprof mounting.
//
// Every constructor and metric method is nil-safe: instrumented code can
// hold nil metrics (from a nil *Registry) and record into them freely, so
// libraries never branch on "is observability enabled".
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is a constant label set attached to a metric at creation time.
type Labels map[string]string

func (l Labels) fingerprint() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
		b.WriteByte(';')
	}
	return b.String()
}

// render formats the label set as {k="v",...}, with extra pairs appended
// (used for histogram le bounds). Returns "" for an empty set.
func (l Labels) render(extra ...string) string {
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var pairs []string
	for _, k := range keys {
		pairs = append(pairs, fmt.Sprintf("%s=%q", k, l[k]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

// metric is one series within a family; write renders its sample lines.
type metric interface {
	write(w io.Writer, name string, lbls Labels) error
}

// family groups every metric registered under one name.
type family struct {
	name, help, typ string
	order           []string // fingerprints, registration order
	metrics         map[string]metric
	labels          map[string]Labels
}

// Registry holds named metrics and renders them as Prometheus text
// exposition. The zero value is not usable; call NewRegistry. A nil
// *Registry is valid and hands out nil (no-op) metrics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the existing metric for (name, labels) or stores the one
// produced by mk. Registering the same name with a different type panics.
func (r *Registry) register(name, help, typ string, lbls Labels, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ,
			metrics: make(map[string]metric), labels: make(map[string]Labels)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	fp := lbls.fingerprint()
	if m, ok := f.metrics[fp]; ok {
		return m
	}
	m := mk()
	f.metrics[fp] = m
	f.labels[fp] = lbls
	f.order = append(f.order, fp)
	return m
}

// Counter is a monotonically increasing uint64 metric. Nil-safe.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(w io.Writer, name string, lbls Labels) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, lbls.render(), c.Value())
	return err
}

// Counter registers (or fetches) a counter. Nil registries return nil.
func (r *Registry) Counter(name, help string, lbls Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, "counter", lbls, func() metric { return &Counter{} }).(*Counter)
}

// counterFunc renders a callback's value as a counter.
type counterFunc func() uint64

func (f counterFunc) write(w io.Writer, name string, lbls Labels) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, lbls.render(), f())
	return err
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for counters whose source of truth lives elsewhere.
func (r *Registry) CounterFunc(name, help string, lbls Labels, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	r.register(name, help, "counter", lbls, func() metric { return counterFunc(fn) })
}

// Gauge is a float64 metric that can go up and down. Nil-safe.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

func (g *Gauge) write(w io.Writer, name string, lbls Labels) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, lbls.render(), formatFloat(g.Value()))
	return err
}

// Gauge registers (or fetches) a gauge. Nil registries return nil.
func (r *Registry) Gauge(name, help string, lbls Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, "gauge", lbls, func() metric { return &Gauge{} }).(*Gauge)
}

// gaugeFunc renders a callback's value as a gauge at scrape time.
type gaugeFunc func() float64

func (f gaugeFunc) write(w io.Writer, name string, lbls Labels) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, lbls.render(), formatFloat(f()))
	return err
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time —
// for instantaneous values like queue depth.
func (r *Registry) GaugeFunc(name, help string, lbls Labels, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.register(name, help, "gauge", lbls, func() metric { return gaugeFunc(fn) })
}

// Histogram registers (or fetches) a histogram with the given ascending
// bucket upper bounds (+Inf is implicit). Nil registries return nil.
func (r *Registry) Histogram(name, help string, bounds []float64, lbls Labels) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, "histogram", lbls, func() metric { return newHistogram(bounds) }).(*Histogram)
}

// WriteTo renders every registered metric in Prometheus text exposition
// format, families sorted by name. Implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	cw := &countingWriter{w: w}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(cw, "# HELP %s %s\n", f.name, f.help); err != nil {
				return cw.n, err
			}
		}
		if _, err := fmt.Fprintf(cw, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return cw.n, err
		}
		for _, fp := range f.order {
			if err := f.metrics[fp].write(cw, f.name, f.labels[fp]); err != nil {
				return cw.n, err
			}
		}
	}
	return cw.n, nil
}

// ServeHTTP serves the registry as a /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = r.WriteTo(w)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
