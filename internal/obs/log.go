package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger returns a leveled text logger tagging every record with a
// component field, so one stderr stream stays attributable when several
// subsystems (serve, watcher, scraper) share it.
func NewLogger(w io.Writer, level slog.Level, component string) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With("component", component)
}

// DiscardLogger returns a logger that drops every record — the nil-object
// for optional Logger fields.
func DiscardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}
