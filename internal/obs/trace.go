package obs

import (
	crand "crypto/rand"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// RequestIDHeader is the HTTP header carrying a request's trace id; inbound
// values are honoured, and every response echoes the id it served under.
const RequestIDHeader = "X-Request-ID"

// fallbackSeq disambiguates ids if the system entropy source ever fails.
var fallbackSeq atomic.Uint64

// NewRequestID returns a 16-hex-character random request id.
func NewRequestID() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable on Linux; degrade to
		// a unique-but-guessable id rather than failing the request.
		n := fallbackSeq.Add(1)
		for i := 0; i < 8; i++ {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// MS converts a duration to float64 milliseconds, the unit every latency
// metric in this codebase uses.
func MS(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
