package obs

import (
	"strings"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "Requests.", Labels{"outcome": "ok"}).Add(3)
	reg.Counter("requests_total", "Requests.", Labels{"outcome": "err"}).Inc()
	reg.Gauge("depth", "Queue depth.", nil).Set(7.5)
	reg.GaugeFunc("dynamic", "Scrape-time value.", nil, func() float64 { return 42 })
	reg.CounterFunc("ticks_total", "Callback counter.", nil, func() uint64 { return 9 })
	h := reg.Histogram("lat_ms", "Latency.", []float64{1, 10}, Labels{"stage": "fwd"})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE requests_total counter",
		`requests_total{outcome="ok"} 3`,
		`requests_total{outcome="err"} 1`,
		"# TYPE depth gauge",
		"depth 7.5",
		"dynamic 42",
		"ticks_total 9",
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{stage="fwd",le="1"} 1`,
		`lat_ms_bucket{stage="fwd",le="10"} 2`,
		`lat_ms_bucket{stage="fwd",le="+Inf"} 3`,
		`lat_ms_sum{stage="fwd"} 55.5`,
		`lat_ms_count{stage="fwd"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryIdempotentAndTypeConflicts(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c", "h", nil)
	b := reg.Counter("c", "h", nil)
	if a != b {
		t.Fatal("re-registration should return the existing counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counters diverged")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two types should panic")
		}
	}()
	reg.Gauge("c", "h", nil)
}

func TestNilRegistryHandsOutWorkingNoops(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "h", nil)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil-registry counter should discard")
	}
	g := reg.Gauge("y", "h", nil)
	g.Set(5)
	if g.Value() != 0 {
		t.Fatal("nil-registry gauge should discard")
	}
	reg.Histogram("z", "h", nil, nil).Observe(1)
	reg.GaugeFunc("f", "h", nil, func() float64 { return 1 })
	if n, err := reg.WriteTo(&strings.Builder{}); n != 0 || err != nil {
		t.Fatal("nil registry should render nothing")
	}
}

func TestNewRequestID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestParseLevel(t *testing.T) {
	for in, ok := range map[string]bool{"debug": true, "INFO": true, "warn": true, "error": true, "": true, "loud": false} {
		if _, err := ParseLevel(in); (err == nil) != ok {
			t.Fatalf("ParseLevel(%q) err=%v", in, err)
		}
	}
}
