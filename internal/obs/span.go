package obs

import (
	"strings"
	"time"
)

// TraceParentHeader is the HTTP header that propagates span parentage
// across processes, traceparent-style: it names the span on the caller's
// side that a callee's root span should parent onto. It travels beside
// RequestIDHeader — the request id doubles as the trace id, so the pair
// fully places a remote process's spans in the caller's trace tree.
const TraceParentHeader = "Traceparent"

// traceParentVersion and traceParentFlags bracket the header value. The
// format follows the W3C traceparent shape (version-traceid-spanid-flags),
// though the trace id reuses this codebase's 16-hex request id rather than
// the 32-hex W3C one.
const (
	traceParentVersion = "00"
	traceParentFlags   = "01"
)

// NewSpanID returns a fresh 16-hex-character span id (same format and
// entropy source as request ids).
func NewSpanID() string { return NewRequestID() }

// FormatTraceParent renders the propagation header value for a span.
func FormatTraceParent(traceID, spanID string) string {
	return traceParentVersion + "-" + traceID + "-" + spanID + "-" + traceParentFlags
}

// ParseTraceParent extracts the trace id and parent span id from a
// traceparent-style header value. ok is false for anything malformed —
// callers then start a fresh root rather than failing the request.
func ParseTraceParent(v string) (traceID, spanID string, ok bool) {
	parts := strings.Split(v, "-")
	if len(parts) != 4 || parts[1] == "" || parts[2] == "" {
		return "", "", false
	}
	return parts[1], parts[2], true
}

// Span is one timed operation within a request's trace: a node in the span
// tree identified by (TraceID, SpanID), attached under ParentID (empty for
// a root). Durations are float64 milliseconds like every latency metric
// here; start times are unix microseconds so spans from different processes
// order on a shared clock.
type Span struct {
	TraceID     string            `json:"trace_id"`
	SpanID      string            `json:"span_id"`
	ParentID    string            `json:"parent_id,omitempty"`
	Name        string            `json:"name"`
	StartUnixUS int64             `json:"start_unix_us"`
	DurationMS  float64           `json:"duration_ms"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// NewSpan returns a span with a fresh id covering [start, end).
func NewSpan(traceID, parentID, name string, start, end time.Time) Span {
	return Span{
		TraceID:     traceID,
		SpanID:      NewSpanID(),
		ParentID:    parentID,
		Name:        name,
		StartUnixUS: start.UnixMicro(),
		DurationMS:  MS(end.Sub(start)),
	}
}

// SetAttr attaches one key/value attribute, allocating the map lazily.
func (s *Span) SetAttr(k, v string) {
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
}
