package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// ringSize bounds the window of exact samples a histogram retains for
// percentile estimates — the successor of the old serve latencyRing.
const ringSize = 2048

// DefLatencyBuckets are millisecond upper bounds suitable for request
// latencies from tens of microseconds to seconds.
var DefLatencyBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// DefSecondsBuckets are second upper bounds suitable for slow operations
// such as training epochs.
var DefSecondsBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120}

// Exemplar links one concrete observation to the bucket it landed in: the
// raw value plus the request id that produced it. A p99 spike in a bucket
// histogram can thus be traced to a real request without client-side
// sampling.
type Exemplar struct {
	Value     float64 `json:"value"`
	RequestID string  `json:"request_id"`
}

// BucketExemplar is an exemplar together with the upper bound of the bucket
// it annotates ("+Inf" for the overflow bucket).
type BucketExemplar struct {
	LE string `json:"le"`
	Exemplar
}

// Histogram is a fixed-bucket histogram that additionally retains the most
// recent ringSize raw samples, so it exports Prometheus bucket counts AND
// answers exact percentile queries over the recent window. Each bucket also
// remembers the last exemplar observed into it (see ObserveExemplar). All
// methods are nil-safe and safe for concurrent use.
type Histogram struct {
	mu        sync.Mutex
	bounds    []float64 // ascending upper bounds; +Inf implicit
	counts    []uint64  // len(bounds)+1
	exemplars []Exemplar
	sum       float64
	count     uint64
	max       float64
	ring      [ringSize]float64
	next      int
	filled    int
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// NewHistogram returns an unregistered histogram, for callers that want
// the type without a registry.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, "") }

// ObserveExemplar records one sample and, when requestID is non-empty,
// stores it as the bucket's exemplar (last writer wins), so the bucket
// remembers the most recent request that landed in it.
func (h *Histogram) ObserveExemplar(v float64, requestID string) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	if requestID != "" {
		if h.exemplars == nil {
			h.exemplars = make([]Exemplar, len(h.bounds)+1)
		}
		h.exemplars[i] = Exemplar{Value: v, RequestID: requestID}
	}
	h.sum += v
	h.count++
	if v > h.max {
		h.max = v
	}
	h.ring[h.next] = v
	h.next = (h.next + 1) % ringSize
	if h.filled < ringSize {
		h.filled++
	}
	h.mu.Unlock()
}

// Exemplars returns the buckets that currently hold an exemplar, in bound
// order (the overflow bucket renders as le="+Inf"). Nil-safe.
func (h *Histogram) Exemplars() []BucketExemplar {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.exemplars == nil {
		return nil
	}
	var out []BucketExemplar
	for i, ex := range h.exemplars {
		if ex.RequestID == "" {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		out = append(out, BucketExemplar{LE: le, Exemplar: ex})
	}
	return out
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observation seen (0 when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the exact q-quantile (0 ≤ q ≤ 1) over the retained
// sample window, 0 when empty. It matches the old latencyRing estimator:
// the value at index ⌊q·(n−1)⌋ of the sorted window.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	n := h.filled
	buf := make([]float64, n)
	copy(buf, h.ring[:n])
	h.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Float64s(buf)
	i := int(q * float64(n-1))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return buf[i]
}

// Quantiles returns several quantiles from one snapshot of the window.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if h == nil {
		return out
	}
	h.mu.Lock()
	n := h.filled
	buf := make([]float64, n)
	copy(buf, h.ring[:n])
	h.mu.Unlock()
	if n == 0 {
		return out
	}
	sort.Float64s(buf)
	for j, q := range qs {
		i := int(q * float64(n-1))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		out[j] = buf[i]
	}
	return out
}

// Snapshot returns the bucket upper bounds and per-bucket (non-cumulative)
// counts; the final count is the overflow (+Inf) bucket.
func (h *Histogram) Snapshot() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.counts...)
}

// write renders the histogram in Prometheus exposition form: cumulative
// _bucket{le=...} series, then _sum and _count. Buckets holding an exemplar
// get an OpenMetrics-style `# {request_id="..."} value` suffix, so a scrape
// links each hot bucket to the last concrete request that landed in it.
func (h *Histogram) write(w io.Writer, name string, lbls Labels) error {
	h.mu.Lock()
	bounds := append([]float64(nil), h.bounds...)
	counts := append([]uint64(nil), h.counts...)
	exemplars := append([]Exemplar(nil), h.exemplars...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	suffix := func(i int) string {
		if i >= len(exemplars) || exemplars[i].RequestID == "" {
			return ""
		}
		return fmt.Sprintf(" # {request_id=%q} %s", exemplars[i].RequestID, formatFloat(exemplars[i].Value))
	}
	cum := uint64(0)
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, lbls.render("le", formatFloat(b)), cum, suffix(i)); err != nil {
			return err
		}
	}
	cum += counts[len(bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n", name, lbls.render("le", "+Inf"), cum, suffix(len(bounds))); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, lbls.render(), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, lbls.render(), count)
	return err
}

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
