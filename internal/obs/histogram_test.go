package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketsSumCountMax(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-556.5) > 1e-9 {
		t.Fatalf("sum %v, want 556.5", h.Sum())
	}
	if h.Max() != 500 {
		t.Fatalf("max %v, want 500", h.Max())
	}
	bounds, counts := h.Snapshot()
	if len(bounds) != 3 || len(counts) != 4 {
		t.Fatalf("snapshot shape: %v %v", bounds, counts)
	}
	// 0.5 and 1 land in le=1; 5 in le=10; 50 in le=100; 500 overflows.
	want := []uint64{2, 1, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Fatalf("bucket %d: %d, want %d (counts %v)", i, c, want[i], counts)
		}
	}
}

// TestHistogramRingWrapAround replaces the old latencyRing coverage: after
// more than ringSize samples, percentiles must reflect only the most recent
// window, not the evicted prefix.
func TestHistogramRingWrapAround(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets)
	// Fill the ring entirely with large values, then overwrite every slot
	// with small ones; the large prefix must be fully evicted.
	for i := 0; i < ringSize; i++ {
		h.Observe(1000)
	}
	if p99 := h.Quantile(0.99); p99 != 1000 {
		t.Fatalf("pre-wrap p99 %v, want 1000", p99)
	}
	for i := 0; i < ringSize; i++ {
		h.Observe(1)
	}
	if p99 := h.Quantile(0.99); p99 != 1 {
		t.Fatalf("post-wrap p99 %v, want 1 (old samples not evicted)", p99)
	}
	if h.Count() != 2*ringSize {
		t.Fatalf("count %d, want %d (buckets must NOT wrap)", h.Count(), 2*ringSize)
	}
	// Bucket counts keep full history even though the ring forgot it.
	_, counts := h.Snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != 2*ringSize {
		t.Fatalf("bucket total %d, want %d", total, 2*ringSize)
	}
}

// TestHistogramConcurrentRecordAndQuantile races writers against readers;
// run under -race (docs/reproduce.sh does) to prove the locking.
func TestHistogramConcurrentRecordAndQuantile(t *testing.T) {
	h := NewHistogram(DefLatencyBuckets)
	var wg sync.WaitGroup
	const writers, perWriter = 8, 1000
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(float64(w*perWriter+i) / 100)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			if h.Count() != writers*perWriter {
				t.Fatalf("count %d, want %d", h.Count(), writers*perWriter)
			}
			return
		default:
			_ = h.Quantile(0.99)
			_ = h.Quantiles(0.5, 0.99)
			_ = h.Max()
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram should read as empty")
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	h.Observe(0.5) // no exemplar
	if ex := h.Exemplars(); ex != nil {
		t.Fatalf("exemplars before any ObserveExemplar: %v", ex)
	}
	h.ObserveExemplar(5, "req-a")
	h.ObserveExemplar(7, "req-b") // same bucket: last writer wins
	h.ObserveExemplar(500, "req-slow")
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("exemplar buckets %d, want 2: %v", len(ex), ex)
	}
	if ex[0].LE != "10" || ex[0].RequestID != "req-b" || ex[0].Value != 7 {
		t.Fatalf("le=10 exemplar wrong: %+v", ex[0])
	}
	if ex[1].LE != "+Inf" || ex[1].RequestID != "req-slow" || ex[1].Value != 500 {
		t.Fatalf("overflow exemplar wrong: %+v", ex[1])
	}
	// ObserveExemplar with an empty id records the sample but keeps the
	// previous exemplar.
	h.ObserveExemplar(6, "")
	if got := h.Exemplars()[0].RequestID; got != "req-b" {
		t.Fatalf("empty-id observation evicted exemplar: %q", got)
	}
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x") // must not panic
	if nilH.Exemplars() != nil {
		t.Fatal("nil histogram should have no exemplars")
	}
}

func TestHistogramExemplarExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("demo_latency_ms", "demo", []float64{1, 10}, nil)
	h.ObserveExemplar(5, "abc123")
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `demo_latency_ms_bucket{le="10"} 1 # {request_id="abc123"} 5`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar suffix %q:\n%s", want, out)
	}
	// Buckets without exemplars stay plain.
	if !strings.Contains(out, "demo_latency_ms_bucket{le=\"1\"} 0\n") {
		t.Fatalf("empty bucket polluted:\n%s", out)
	}
}
