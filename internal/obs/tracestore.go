package obs

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Request outcomes shared by the daemons' trace recorders. A trace's
// outcome drives tail sampling: anything other than OutcomeServed is
// always retained.
const (
	OutcomeServed = "served"
	OutcomeFailed = "failed"
	OutcomeShed   = "shed"
)

// Trace is one completed request's span tree, as stored and as served by
// GET /traces/{id}. Spans are in recording order with the root first.
type Trace struct {
	TraceID     string  `json:"trace_id"`
	Root        string  `json:"root"` // root span name
	Outcome     string  `json:"outcome"`
	Retried     bool    `json:"retried,omitempty"` // took more than one forward attempt
	StartUnixUS int64   `json:"start_unix_us"`
	DurationMS  float64 `json:"duration_ms"`
	Spans       []Span  `json:"spans"`
}

// TraceSummary is one trace's entry in the GET /traces listing.
type TraceSummary struct {
	TraceID     string  `json:"trace_id"`
	Root        string  `json:"root"`
	Outcome     string  `json:"outcome"`
	Retried     bool    `json:"retried,omitempty"`
	StartUnixUS int64   `json:"start_unix_us"`
	DurationMS  float64 `json:"duration_ms"`
	Spans       int     `json:"spans"`
}

// TraceList is the GET /traces payload.
type TraceList struct {
	Count  int            `json:"count"`
	Traces []TraceSummary `json:"traces"`
}

// TraceStoreConfig sizes a TraceStore and its sampling policy.
type TraceStoreConfig struct {
	// Capacity bounds how many traces are retained; beyond it the oldest
	// are evicted (default 1024).
	Capacity int
	// MaxAge evicts traces older than this regardless of capacity
	// (default 10m; negative disables age eviction).
	MaxAge time.Duration
	// SampleRate is the head-sampling probability for unremarkable traces
	// — ones that served cleanly, on the first attempt, under SlowMS
	// (default 0.1; negative keeps none of them, 1 keeps all).
	SampleRate float64
	// SlowMS is the latency threshold above which a trace is always
	// retained, whatever its outcome (default 250; negative disables the
	// latency criterion).
	SlowMS float64

	// now and randFloat are test hooks for the wall clock and the
	// head-sampling coin; nil uses time.Now and math/rand.
	now       func() time.Time
	randFloat func() float64
}

// storedTrace pairs a trace with its admission time for age eviction.
type storedTrace struct {
	t     Trace
	added time.Time
}

// TraceStore is a bounded in-memory store of completed traces with
// tail-based sampling: traces that failed, were shed, retried, or ran
// slow are always kept; the unremarkable rest is head-sampled at
// SampleRate; capacity and age bound the whole thing. It implements
// http.Handler for GET /traces and GET /traces/{id}. Nil-safe: a nil
// store drops everything and serves 404s.
type TraceStore struct {
	cfg TraceStoreConfig

	mu     sync.Mutex
	traces map[string]*storedTrace
	order  []string // insertion order, oldest first

	completed                   *Counter
	keptFailed, keptShed        *Counter
	keptRetry, keptSlow         *Counter
	keptSampled                 *Counter
	dropped                     *Counter
	evictedCapacity, evictedAge *Counter
}

// NewTraceStore builds a store with cfg (zero fields get defaults) and
// registers its env2vec_trace_* metrics into reg (nil reg: unregistered,
// still counting nothing — nil-safe counters).
func NewTraceStore(cfg TraceStoreConfig, reg *Registry) *TraceStore {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.MaxAge == 0 {
		cfg.MaxAge = 10 * time.Minute
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 0.1
	}
	if cfg.SlowMS == 0 {
		cfg.SlowMS = 250
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	if cfg.randFloat == nil {
		cfg.randFloat = rand.Float64
	}
	ts := &TraceStore{
		cfg:    cfg,
		traces: make(map[string]*storedTrace),
	}
	ts.completed = reg.Counter("env2vec_trace_completed_total", "Completed traces offered to the trace store.", nil)
	keptHelp := "Traces retained, by the tail-sampling criterion that kept them."
	ts.keptFailed = reg.Counter("env2vec_trace_kept_total", keptHelp, Labels{"reason": "failed"})
	ts.keptShed = reg.Counter("env2vec_trace_kept_total", keptHelp, Labels{"reason": "shed"})
	ts.keptRetry = reg.Counter("env2vec_trace_kept_total", keptHelp, Labels{"reason": "retry"})
	ts.keptSlow = reg.Counter("env2vec_trace_kept_total", keptHelp, Labels{"reason": "slow"})
	ts.keptSampled = reg.Counter("env2vec_trace_kept_total", keptHelp, Labels{"reason": "sampled"})
	ts.dropped = reg.Counter("env2vec_trace_dropped_total", "Unremarkable traces the head-sampling coin dropped.", nil)
	evictHelp := "Stored traces evicted, by cause."
	ts.evictedCapacity = reg.Counter("env2vec_trace_evicted_total", evictHelp, Labels{"cause": "capacity"})
	ts.evictedAge = reg.Counter("env2vec_trace_evicted_total", evictHelp, Labels{"cause": "age"})
	reg.GaugeFunc("env2vec_trace_stored", "Traces currently retained.", nil, func() float64 { return float64(ts.Len()) })
	return ts
}

// keep decides whether a completed trace survives tail sampling, returning
// the counter recording why it was kept.
func (ts *TraceStore) keep(t *Trace) (bool, *Counter) {
	switch t.Outcome {
	case OutcomeShed:
		return true, ts.keptShed
	case OutcomeServed:
		// fall through to the retry/latency/coin criteria
	default:
		return true, ts.keptFailed
	}
	if t.Retried {
		return true, ts.keptRetry
	}
	if ts.cfg.SlowMS >= 0 && t.DurationMS >= ts.cfg.SlowMS {
		return true, ts.keptSlow
	}
	if ts.cfg.randFloat() < ts.cfg.SampleRate {
		return true, ts.keptSampled
	}
	return false, nil
}

// Add offers a completed trace to the store. The tail-sampling decision
// happens here — at completion, when the outcome and duration are known —
// which is what lets the slow and failed tail be kept preferentially
// while the bulk is down-sampled.
func (ts *TraceStore) Add(t Trace) {
	if ts == nil {
		return
	}
	ts.completed.Inc()
	ok, kept := ts.keep(&t)
	if !ok {
		ts.dropped.Inc()
		return
	}
	kept.Inc()
	now := ts.cfg.now()
	ts.mu.Lock()
	ts.purgeAgedLocked(now)
	if _, exists := ts.traces[t.TraceID]; !exists {
		for len(ts.traces) >= ts.cfg.Capacity && len(ts.order) > 0 {
			old := ts.order[0]
			ts.order = ts.order[1:]
			delete(ts.traces, old)
			ts.evictedCapacity.Inc()
		}
		ts.order = append(ts.order, t.TraceID)
	}
	ts.traces[t.TraceID] = &storedTrace{t: t, added: now}
	ts.mu.Unlock()
}

// purgeAgedLocked drops traces older than MaxAge; callers hold mu.
func (ts *TraceStore) purgeAgedLocked(now time.Time) {
	if ts.cfg.MaxAge < 0 {
		return
	}
	cutoff := now.Add(-ts.cfg.MaxAge)
	for len(ts.order) > 0 {
		st, ok := ts.traces[ts.order[0]]
		if ok && st.added.After(cutoff) {
			break
		}
		if ok {
			delete(ts.traces, ts.order[0])
			ts.evictedAge.Inc()
		}
		ts.order = ts.order[1:]
	}
}

// Len returns the number of traces currently retained.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.traces)
}

// Get returns the stored trace for a trace id.
func (ts *TraceStore) Get(id string) (Trace, bool) {
	if ts == nil {
		return Trace{}, false
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.purgeAgedLocked(ts.cfg.now())
	st, ok := ts.traces[id]
	if !ok {
		return Trace{}, false
	}
	return st.t, true
}

// List returns up to limit trace summaries, newest first, filtered to
// traces at least minMS long and (when outcome is non-empty) matching the
// outcome. limit <= 0 means no cap beyond the store's contents.
func (ts *TraceStore) List(minMS float64, outcome string, limit int) []TraceSummary {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	ts.purgeAgedLocked(ts.cfg.now())
	matched := make([]TraceSummary, 0, len(ts.order))
	for i := len(ts.order) - 1; i >= 0; i-- {
		st, ok := ts.traces[ts.order[i]]
		if !ok {
			continue
		}
		t := &st.t
		if t.DurationMS < minMS || (outcome != "" && t.Outcome != outcome) {
			continue
		}
		matched = append(matched, TraceSummary{
			TraceID: t.TraceID, Root: t.Root, Outcome: t.Outcome, Retried: t.Retried,
			StartUnixUS: t.StartUnixUS, DurationMS: t.DurationMS, Spans: len(t.Spans),
		})
		if limit > 0 && len(matched) >= limit {
			break
		}
	}
	ts.mu.Unlock()
	// Insertion order approximates start order but cross-goroutine adds can
	// interleave; make newest-first exact for the API.
	sort.SliceStable(matched, func(i, j int) bool { return matched[i].StartUnixUS > matched[j].StartUnixUS })
	return matched
}

// ServeHTTP serves the store: GET /traces?min_ms=&outcome=&limit= lists
// retained traces (newest first), GET /traces/{id} returns one full span
// tree. Mount it at both "/traces" and "/traces/".
func (ts *TraceStore) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		traceError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	id := ""
	if i := strings.Index(r.URL.Path, "/traces"); i >= 0 {
		id = strings.Trim(r.URL.Path[i+len("/traces"):], "/")
	}
	w.Header().Set("Content-Type", "application/json")
	if id != "" {
		t, ok := ts.Get(id)
		if !ok {
			traceError(w, http.StatusNotFound, "unknown or evicted trace id")
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(t)
		return
	}
	q := r.URL.Query()
	minMS := 0.0
	if v := q.Get("min_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			traceError(w, http.StatusBadRequest, "bad min_ms: "+err.Error())
			return
		}
		minMS = f
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			traceError(w, http.StatusBadRequest, "bad limit: "+err.Error())
			return
		}
		limit = n
	}
	traces := ts.List(minMS, q.Get("outcome"), limit)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(TraceList{Count: len(traces), Traces: traces})
}

// traceError mirrors the daemons' {"error": ...} body shape.
func traceError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
