package tsdb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// persistedSeries is the on-disk JSON-lines record (one series per line).
type persistedSeries struct {
	Labels  map[string]string `json:"labels"`
	Samples []Sample          `json:"samples"`
}

// SaveFile writes a snapshot of the whole database as JSON lines. The write
// goes to a temp file and is committed with an atomic rename so a crash
// mid-save never corrupts an existing snapshot.
func (db *DB) SaveFile(path string) error {
	db.mu.RLock()
	fps := make([]string, 0, len(db.series))
	for fp := range db.series {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	records := make([]persistedSeries, 0, len(fps))
	for _, fp := range fps {
		s := db.series[fp]
		records = append(records, persistedSeries{
			Labels:  s.Labels.Clone(),
			Samples: append([]Sample(nil), s.Samples...),
		})
	}
	db.mu.RUnlock()

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("tsdb: save: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, rec := range records {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return fmt.Errorf("tsdb: save: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("tsdb: save: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("tsdb: save: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a snapshot produced by SaveFile into a fresh database.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tsdb: load: %w", err)
	}
	defer f.Close()
	db := New()
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	line := 0
	for scanner.Scan() {
		line++
		if len(scanner.Bytes()) == 0 {
			continue
		}
		var rec persistedSeries
		if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("tsdb: load line %d: %w", line, err)
		}
		labels := Labels(rec.Labels)
		fp := labels.Fingerprint()
		db.series[fp] = &Series{Labels: labels.Clone(), Samples: rec.Samples}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("tsdb: load: %w", err)
	}
	return db, nil
}

// Retain drops all samples older than cutoff (and any series left empty),
// returning the number of samples removed — the retention pass a periodic
// compaction job would run.
func (db *DB) Retain(cutoff int64) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	removed := 0
	for fp, s := range db.series {
		i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T >= cutoff })
		if i == 0 {
			continue
		}
		removed += i
		if i == len(s.Samples) {
			delete(db.series, fp)
			continue
		}
		s.Samples = append([]Sample(nil), s.Samples[i:]...)
	}
	return removed
}

// NumSamples returns the total number of stored samples across all series.
func (db *DB) NumSamples() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, s := range db.series {
		n += len(s.Samples)
	}
	return n
}
