// Rules engine: recording rules materialise query results back into the
// DB under a new metric name, and alerting rules drive a
// pending→firing state machine whose firing alerts are pushed into the
// alarm pipeline as anomaly.Alarms (Source "slo"). Together with the
// query engine this turns tsdbd from a passive sample sink into the
// fleet's monitoring plane.
//
// Rules load from a JSON file (see RuleFile) and hot-reload when the
// file changes on disk — no restart needed to tune an objective.
// DefaultSLORules builds the multi-window, multi-burn-rate SLO policy
// from the SRE workbook: a fast-burn alert (14.4x over 5m AND 1h) that
// catches outages in minutes, and a slow-burn alert (6x over 30m AND
// 6h) that catches budget-eating brownouts.
package tsdb

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"env2vec/internal/anomaly"
)

// AlarmSink receives firing alerts. quality.StoreSink and
// quality.HTTPSink satisfy it structurally, so tsdb stays decoupled
// from the quality package (same pattern as Handler.SelfMetrics).
type AlarmSink interface {
	Push(a anomaly.Alarm, createdAt int64) error
}

// RecordingRule evaluates Expr each cycle and appends the result to the
// DB under Name (plus the result's own labels and any extra Labels).
// Names may contain ':' — the conventional level:metric:window shape.
type RecordingRule struct {
	Name   string            `json:"name"`
	Expr   string            `json:"expr"`
	Labels map[string]string `json:"labels,omitempty"`
}

// AlertingRule evaluates Expr each cycle; any resulting element becomes
// a pending alert, promoted to firing once it has been present
// continuously for For (a duration string like "2m").
type AlertingRule struct {
	Name        string            `json:"name"`
	Expr        string            `json:"expr"`
	For         string            `json:"for,omitempty"`
	Labels      map[string]string `json:"labels,omitempty"`
	Annotations map[string]string `json:"annotations,omitempty"`
}

// RuleFile is the on-disk rule set: recording rules evaluate first (in
// order), so alerting rules may reference names recorded the same
// cycle.
type RuleFile struct {
	Recording []RecordingRule `json:"recording"`
	Alerting  []AlertingRule  `json:"alerting"`
}

// Alert state machine values, mirrored into the synthetic
// ALERTS{alertname,state} series.
const (
	StatePending = "pending"
	StateFiring  = "firing"
)

// ActiveAlert is one pending or firing alert instance, as served by
// GET /alerts and rendered on the dashboard.
type ActiveAlert struct {
	Name        string            `json:"name"`
	State       string            `json:"state"`
	Labels      map[string]string `json:"labels,omitempty"`
	Annotations map[string]string `json:"annotations,omitempty"`
	ActiveSince int64             `json:"active_since"` // unix seconds
	Value       float64           `json:"value"`        // most recent expr value
}

type alertInstance struct {
	rule        AlertingRule
	labels      Labels // element labels from the expr result
	state       string
	activeSince int64
	value       float64
	pushed      bool // alarm already sent to the sink
}

// Rules evaluates a RuleFile against an Engine on each EvalOnce call.
// All methods are safe for concurrent use; EvalOnce is typically driven
// by the scrape loop while HTTP handlers read ActiveAlerts.
type Rules struct {
	Engine *Engine
	// Path, when set, is the JSON rule file; EvalOnce re-reads it
	// whenever its mtime or size changes (hot reload). A file that
	// fails to parse keeps the previous rule set active.
	Path string
	// Sink, when non-nil, receives an anomaly.Alarm (Source "slo")
	// once per alert instance when it transitions to firing.
	Sink AlarmSink
	// Now supplies evaluation time; defaults to the wall clock.
	Now    func() int64
	Logger *slog.Logger

	mu     sync.Mutex
	file   RuleFile
	active map[string]*alertInstance
	mtime  time.Time
	size   int64
	loaded bool

	evals    atomic.Uint64
	failures atomic.Uint64
	reloads  atomic.Uint64
	alarms   atomic.Uint64
	pending  atomic.Int64
	firing   atomic.Int64
}

// NewRules returns a rules engine bound to e with no rules loaded.
func NewRules(e *Engine) *Rules {
	return &Rules{Engine: e, active: make(map[string]*alertInstance)}
}

func (r *Rules) now() int64 {
	if r.Now != nil {
		return r.Now()
	}
	return time.Now().Unix()
}

func (r *Rules) logger() *slog.Logger {
	if r.Logger != nil {
		return r.Logger
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// validateFile parses every expression and For duration so a bad rule
// file is rejected atomically at load time, not element-by-element at
// eval time.
func validateFile(rf RuleFile) error {
	for _, rr := range rf.Recording {
		if rr.Name == "" {
			return fmt.Errorf("tsdb: recording rule with empty name")
		}
		if _, err := ParseExpr(rr.Expr); err != nil {
			return fmt.Errorf("tsdb: recording rule %q: %w", rr.Name, err)
		}
	}
	for _, ar := range rf.Alerting {
		if ar.Name == "" {
			return fmt.Errorf("tsdb: alerting rule with empty name")
		}
		if _, err := ParseExpr(ar.Expr); err != nil {
			return fmt.Errorf("tsdb: alerting rule %q: %w", ar.Name, err)
		}
		if ar.For != "" {
			if _, err := parseDuration(ar.For); err != nil {
				return fmt.Errorf("tsdb: alerting rule %q: bad for: %w", ar.Name, err)
			}
		}
	}
	return nil
}

// Load installs a rule set directly (no file). Alert state for rules
// that survive the reload is preserved by name+labels identity.
func (r *Rules) Load(rf RuleFile) error {
	if err := validateFile(rf); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.installLocked(rf)
	return nil
}

func (r *Rules) installLocked(rf RuleFile) {
	r.file = rf
	r.loaded = true
	// Drop state for alert rules that no longer exist.
	names := make(map[string]bool, len(rf.Alerting))
	for _, ar := range rf.Alerting {
		names[ar.Name] = true
	}
	for k, inst := range r.active {
		if !names[inst.rule.Name] {
			delete(r.active, k)
		}
	}
}

// LoadFile reads, validates, and installs the rule file at path, and
// arms hot reload for subsequent EvalOnce calls.
func (r *Rules) LoadFile(path string) error {
	rf, fi, err := readRuleFile(path)
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Path = path
	r.mtime, r.size = fi.ModTime(), fi.Size()
	r.installLocked(rf)
	return nil
}

func readRuleFile(path string) (RuleFile, os.FileInfo, error) {
	var rf RuleFile
	fi, err := os.Stat(path)
	if err != nil {
		return rf, nil, fmt.Errorf("tsdb: rules: %w", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return rf, nil, fmt.Errorf("tsdb: rules: %w", err)
	}
	if err := json.Unmarshal(b, &rf); err != nil {
		return rf, nil, fmt.Errorf("tsdb: rules %s: %w", path, err)
	}
	if err := validateFile(rf); err != nil {
		return rf, nil, err
	}
	return rf, fi, nil
}

// maybeReloadLocked re-reads Path if the file changed since last load.
func (r *Rules) maybeReloadLocked() {
	if r.Path == "" {
		return
	}
	fi, err := os.Stat(r.Path)
	if err != nil {
		return // transient (e.g. atomic-rename window); keep current rules
	}
	if r.loaded && fi.ModTime().Equal(r.mtime) && fi.Size() == r.size {
		return
	}
	rf, fi, err := readRuleFile(r.Path)
	if err != nil {
		r.failures.Add(1)
		r.logger().Error("rules reload failed; keeping previous rules", "path", r.Path, "err", err)
		return
	}
	r.mtime, r.size = fi.ModTime(), fi.Size()
	r.installLocked(rf)
	r.reloads.Add(1)
	r.logger().Info("rules reloaded", "path", r.Path,
		"recording", len(rf.Recording), "alerting", len(rf.Alerting))
}

// EvalOnce runs one evaluation cycle: hot-reload check, recording rules
// in order, then alerting rules with state transitions, ALERTS series,
// and alarm pushes. It is what the scrape loop calls each interval.
func (r *Rules) EvalOnce() {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maybeReloadLocked()

	for _, rr := range r.file.Recording {
		r.evals.Add(1)
		vec, err := r.Engine.Instant(rr.Expr, now)
		if err != nil {
			r.failures.Add(1)
			r.logger().Error("recording rule failed", "rule", rr.Name, "err", err)
			continue
		}
		for _, p := range vec {
			lbls := Labels{"__name__": rr.Name}
			for k, v := range p.Labels {
				if k != "__name__" {
					lbls[k] = v
				}
			}
			for k, v := range rr.Labels {
				lbls[k] = v
			}
			if err := r.Engine.DB.Append(lbls, now, p.V); err != nil {
				r.failures.Add(1)
			}
		}
	}

	seen := make(map[string]bool)
	for _, ar := range r.file.Alerting {
		r.evals.Add(1)
		vec, err := r.Engine.Instant(ar.Expr, now)
		if err != nil {
			r.failures.Add(1)
			r.logger().Error("alerting rule failed", "rule", ar.Name, "err", err)
			continue
		}
		forSec := int64(0)
		if ar.For != "" {
			forSec, _ = parseDuration(ar.For) // validated at load
		}
		for _, p := range vec {
			key := ar.Name + "\x00" + p.Labels.Fingerprint()
			seen[key] = true
			inst := r.active[key]
			if inst == nil {
				inst = &alertInstance{
					rule: ar, labels: dropName(p.Labels),
					state: StatePending, activeSince: now,
				}
				r.active[key] = inst
			}
			inst.value = p.V
			if inst.state == StatePending && now-inst.activeSince >= forSec {
				inst.state = StateFiring
			}
			if inst.state == StateFiring && !inst.pushed {
				inst.pushed = true
				r.pushAlarmLocked(inst, now)
			}
		}
	}
	// Resolve alert instances whose expression no longer returns them.
	for key, inst := range r.active {
		if !seen[key] {
			r.logger().Info("alert resolved", "rule", inst.rule.Name, "state", inst.state)
			delete(r.active, key)
		}
	}

	var pending, firing int64
	for _, inst := range r.active {
		lbls := Labels{"__name__": "ALERTS", "alertname": inst.rule.Name, "state": inst.state}
		for k, v := range inst.labels {
			if _, taken := lbls[k]; !taken {
				lbls[k] = v
			}
		}
		_ = r.Engine.DB.Append(lbls, now, 1)
		if inst.state == StateFiring {
			firing++
		} else {
			pending++
		}
	}
	r.pending.Store(pending)
	r.firing.Store(firing)
}

// pushAlarmLocked converts a newly-firing alert into an anomaly.Alarm
// and sends it to the sink. The mapping reuses the drift alarm's
// locator fields: Detector carries the rule name, Testbed the instance
// (when the alert is per-backend), and the interval spans
// pending-start to firing-time.
func (r *Rules) pushAlarmLocked(inst *alertInstance, now int64) {
	if r.Sink == nil {
		return
	}
	chain := inst.rule.Labels["service"]
	if chain == "" {
		chain = "fleet"
	}
	a := anomaly.Alarm{
		Source:    "slo",
		Detector:  inst.rule.Name,
		ChainID:   chain,
		Testbed:   inst.labels["instance"],
		Build:     inst.rule.Annotations["summary"],
		StartTime: inst.activeSince,
		EndTime:   now,
		PeakDev:   inst.value,
	}
	if err := r.Sink.Push(a, now); err != nil {
		r.failures.Add(1)
		r.logger().Error("alarm push failed", "rule", inst.rule.Name, "err", err)
		return
	}
	r.alarms.Add(1)
	r.logger().Warn("alert firing", "rule", inst.rule.Name, "value", inst.value)
}

// ActiveAlerts returns the current pending and firing alerts, firing
// first, then by name.
func (r *Rules) ActiveAlerts() []ActiveAlert {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ActiveAlert, 0, len(r.active))
	for _, inst := range r.active {
		out = append(out, ActiveAlert{
			Name:        inst.rule.Name,
			State:       inst.state,
			Labels:      copyMap(inst.labels),
			Annotations: copyMap(inst.rule.Annotations),
			ActiveSince: inst.activeSince,
			Value:       inst.value,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].State != out[j].State {
			return out[i].State == StateFiring
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func copyMap(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// RuleCounts returns (recording, alerting) rule counts of the active set.
func (r *Rules) RuleCounts() (int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.file.Recording), len(r.file.Alerting)
}

// Self-metric accessors, registered as tsdb_rule_* counters/gauges by
// cmd/tsdbd (tsdb itself stays decoupled from the obs registry).
func (r *Rules) Evals() uint64        { return r.evals.Load() }
func (r *Rules) EvalFailures() uint64 { return r.failures.Load() }
func (r *Rules) Reloads() uint64      { return r.reloads.Load() }
func (r *Rules) AlarmsPushed() uint64 { return r.alarms.Load() }
func (r *Rules) PendingAlerts() int64 { return r.pending.Load() }
func (r *Rules) FiringAlerts() int64  { return r.firing.Load() }

// DefaultSLORules builds the built-in SLO policy over the proxy's
// request counters and latency histogram:
//
//   - availability: error ratio = (total − served) / total from
//     env2vec_proxy_requests_total, so shed and failed both burn
//     budget. Burn rate = error ratio / (1 − objective). Fast burn
//     fires at 14.4x over 5m AND 1h (2% of a 30d budget in 1h); slow
//     burn at 6x over 30m AND 6h.
//   - latency: p99 of env2vec_proxy_request_latency_ms against
//     latencyObjectiveMs, sustained for 5m.
//
// objective is the availability target in (0,1), e.g. 0.99.
func DefaultSLORules(objective, latencyObjectiveMs float64) RuleFile {
	budget := strconv.FormatFloat(1-objective, 'g', -1, 64)
	errRatio := func(window string) string {
		total := `sum(rate(env2vec_proxy_requests_total[` + window + `]))`
		served := `sum(rate(env2vec_proxy_requests_total{outcome="served"}[` + window + `]))`
		return "(" + total + " - " + served + ") / " + total
	}
	var rf RuleFile
	for _, w := range []string{"5m", "30m", "1h", "6h"} {
		rf.Recording = append(rf.Recording,
			RecordingRule{Name: "slo:serve:error_ratio:" + w, Expr: errRatio(w)},
			RecordingRule{Name: "slo:serve:burn_rate:" + w,
				Expr: "slo:serve:error_ratio:" + w + " / " + budget},
		)
	}
	rf.Recording = append(rf.Recording, RecordingRule{
		Name: "slo:serve:latency_p99:5m",
		Expr: `histogram_quantile(0.99, sum by (le) (rate(env2vec_proxy_request_latency_ms_bucket[5m])))`,
	})
	rf.Alerting = append(rf.Alerting,
		AlertingRule{
			Name: "ServeAvailabilityFastBurn",
			Expr: "slo:serve:burn_rate:5m > 14.4 and slo:serve:burn_rate:1h > 14.4",
			For:  "2m",
			Annotations: map[string]string{
				"summary":  "availability error budget burning at >=14.4x (fast)",
				"severity": "page",
			},
		},
		AlertingRule{
			Name: "ServeAvailabilitySlowBurn",
			Expr: "slo:serve:burn_rate:30m > 6 and slo:serve:burn_rate:6h > 6",
			For:  "15m",
			Annotations: map[string]string{
				"summary":  "availability error budget burning at >=6x (slow)",
				"severity": "ticket",
			},
		},
		AlertingRule{
			Name: "ServeLatencyP99High",
			Expr: "slo:serve:latency_p99:5m > " + strconv.FormatFloat(latencyObjectiveMs, 'g', -1, 64),
			For:  "5m",
			Annotations: map[string]string{
				"summary":  "p99 request latency above objective",
				"severity": "page",
			},
		},
	)
	return rf
}
