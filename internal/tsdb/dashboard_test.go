package tsdb

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDashboard: the fleet view renders as self-contained HTML with a
// sparkline for series in the window, burn gauges, and the alert table.
func TestDashboard(t *testing.T) {
	db := New()
	now := int64(3600)
	for ts := now - 600; ts <= now; ts += 60 {
		if err := db.Append(Labels{"__name__": "env2vec_serve_queue_depth", "instance": "b0"}, ts, float64(ts%7)); err != nil {
			t.Fatal(err)
		}
	}
	// A recorded burn-rate point puts the 5m gauge into "crit".
	if err := db.Append(Labels{"__name__": "slo:serve:burn_rate:5m"}, now, 20); err != nil {
		t.Fatal(err)
	}
	rules := NewRules(NewEngine(db))
	rules.Now = func() int64 { return now }
	if err := rules.Load(RuleFile{Alerting: []AlertingRule{{
		Name: "QueueDeep", Expr: "env2vec_serve_queue_depth > 1",
		Annotations: map[string]string{"summary": "deep queue"},
	}}}); err != nil {
		t.Fatal(err)
	}
	rules.EvalOnce()

	h := &Handler{DB: db, Engine: NewEngine(db), Rules: rules, Now: func() int64 { return now }}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/dashboard", nil))
	if rec.Code != 200 {
		t.Fatalf("dashboard status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"env2vec fleet health",
		"<polyline points=",  // sparkline for the queue-depth series
		"instance=b0",        // series label
		"QueueDeep",          // alert table row
		"state-firing",       // its state styling
		"deep queue",         // annotation
		`class="gauge crit"`, // 20x burn vs 14.4 threshold
		"no data",            // windows without recorded burn rate
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(body, "<script") {
		t.Error("dashboard must not use scripts")
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type %q", ct)
	}

	// Without an engine, /dashboard and /query 404 instead of panicking.
	bare := &Handler{DB: db}
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/dashboard", nil))
	if rec.Code != 404 {
		t.Fatalf("engineless dashboard status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	bare.ServeHTTP(rec, httptest.NewRequest("GET", "/query?expr=up", nil))
	if rec.Code != 404 {
		t.Fatalf("engineless query status %d", rec.Code)
	}
}
