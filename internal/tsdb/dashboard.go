// Fleet health dashboard: a single self-contained HTML page rendered
// entirely server-side — inline CSS, inline SVG sparklines, zero
// scripts, zero external assets — so it works from curl, an air-gapped
// lab, or a browser pointed at tsdbd. Panels are driven by the query
// engine over the last 30 minutes; burn-rate gauges and the alert
// table come from the rules engine.
package tsdb

import (
	"fmt"
	"html/template"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"
)

// dashWindow is the sparkline time window and step.
const (
	dashWindow = 30 * time.Minute
	dashStep   = 60 // seconds per sparkline point
	sparkW     = 240
	sparkH     = 48
)

// dashPanelSpec declares one sparkline panel: a title, the expression
// evaluated as a range query, and a unit suffix for the latest value.
type dashPanelSpec struct {
	Title string
	Expr  string
	Unit  string
}

// dashboardPanels are the fleet views the issue calls for: per-backend
// QPS, error rate, p99 latency, queue depth, and drifting-environment
// count.
var dashboardPanels = []dashPanelSpec{
	{"Per-backend QPS", `sum by (instance) (rate(env2vec_serve_requests_total[5m]))`, " req/s"},
	{"Proxy error ratio", `(sum(rate(env2vec_proxy_requests_total[5m])) - sum(rate(env2vec_proxy_requests_total{outcome="served"}[5m]))) / sum(rate(env2vec_proxy_requests_total[5m]))`, ""},
	{"p99 serve latency", `histogram_quantile(0.99, sum by (le, instance) (rate(env2vec_serve_request_latency_ms_bucket[5m])))`, " ms"},
	{"Queue depth", `env2vec_serve_queue_depth`, ""},
	{"Drifting environments", `count(env2vec_quality_exceed_rate > 0.5)`, " envs"},
}

// burnWindows pairs each recorded burn-rate window with the threshold
// of the alert it participates in.
var burnWindows = []struct {
	Window    string
	Threshold float64
}{
	{"5m", 14.4}, {"1h", 14.4}, {"30m", 6}, {"6h", 6},
}

type dashSeries struct {
	Name   string
	Points string // SVG polyline points
	Latest string
}

type dashPanel struct {
	Title  string
	Unit   string
	Series []dashSeries
}

type burnGauge struct {
	Window    string
	Threshold float64
	Display   string
	WidthPct  float64 // gauge fill, 0..100
	Class     string  // ok | warn | crit
	HasData   bool
}

type dashData struct {
	RenderedAt string
	NumSeries  int
	Alerts     []ActiveAlert
	Burn       []burnGauge
	Panels     []dashPanel
}

// sparkPoints scales samples into the sparkline viewbox. The y-range is
// padded so a flat series draws mid-box rather than hugging an edge.
func sparkPoints(samples []Sample, from, to int64) string {
	if len(samples) == 0 || to <= from {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		lo, hi = math.Min(lo, s.V), math.Max(hi, s.V)
	}
	if hi == lo {
		hi, lo = hi+1, lo-1
	}
	pad := (hi - lo) * 0.1
	hi, lo = hi+pad, lo-pad
	var b strings.Builder
	for i, s := range samples {
		x := float64(s.T-from) / float64(to-from) * sparkW
		y := sparkH - (s.V-lo)/(hi-lo)*sparkH
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.1f,%.1f", x, y)
	}
	return b.String()
}

// seriesName renders a label set (minus __name__) as "k=v, k2=v2", or
// "fleet" for the empty aggregate.
func seriesName(l Labels) string {
	keys := make([]string, 0, len(l))
	for k := range l {
		if k != "__name__" {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return "fleet"
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + l[k]
	}
	return strings.Join(parts, ", ")
}

func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func (h *Handler) buildDashboard(now int64) dashData {
	d := dashData{
		RenderedAt: time.Unix(now, 0).UTC().Format(time.RFC3339),
		NumSeries:  h.DB.NumSeries(),
	}
	if h.Rules != nil {
		d.Alerts = h.Rules.ActiveAlerts()
	}
	for _, bw := range burnWindows {
		g := burnGauge{Window: bw.Window, Threshold: bw.Threshold, Display: "no data", Class: "ok"}
		if vec, err := h.Engine.Instant("slo:serve:burn_rate:"+bw.Window, now); err == nil && len(vec) > 0 {
			v := vec[0].V
			g.HasData = true
			g.Display = formatValue(v) + "x"
			g.WidthPct = math.Min(100, math.Max(0, v/(bw.Threshold*2)*100))
			switch {
			case v >= bw.Threshold:
				g.Class = "crit"
			case v >= bw.Threshold/2:
				g.Class = "warn"
			}
		}
		d.Burn = append(d.Burn, g)
	}
	from := now - int64(dashWindow.Seconds())
	for _, spec := range dashboardPanels {
		panel := dashPanel{Title: spec.Title, Unit: spec.Unit}
		series, err := h.Engine.Range(spec.Expr, from, now, dashStep)
		if err == nil {
			for _, s := range series {
				if len(s.Samples) == 0 {
					continue
				}
				panel.Series = append(panel.Series, dashSeries{
					Name:   seriesName(s.Labels),
					Points: sparkPoints(s.Samples, from, now),
					Latest: formatValue(s.Samples[len(s.Samples)-1].V) + spec.Unit,
				})
			}
		}
		d.Panels = append(d.Panels, panel)
	}
	return d
}

func (h *Handler) dashboard(w http.ResponseWriter) {
	if h.Engine == nil {
		http.Error(w, "query engine not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashTemplate.Execute(w, h.buildDashboard(h.now()))
}

var dashTemplate = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="15">
<title>env2vec fleet health</title>
<style>
body { font: 14px/1.4 system-ui, sans-serif; margin: 1.5rem; background: #14161a; color: #e6e8eb; }
h1 { font-size: 1.2rem; margin: 0 0 .25rem; }
h2 { font-size: .95rem; margin: 1.25rem 0 .5rem; color: #9aa3ad; text-transform: uppercase; letter-spacing: .06em; }
.meta { color: #7a828c; font-size: .8rem; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: .3rem .6rem; border-bottom: 1px solid #2a2e35; font-size: .85rem; }
.state-firing { color: #ff6b6b; font-weight: 600; }
.state-pending { color: #ffc46b; font-weight: 600; }
.none { color: #5c9960; }
.gauges { display: flex; gap: 1rem; flex-wrap: wrap; }
.gauge { background: #1d2026; border: 1px solid #2a2e35; border-radius: 6px; padding: .6rem .8rem; min-width: 11rem; }
.gauge .bar { height: 6px; background: #2a2e35; border-radius: 3px; margin-top: .4rem; overflow: hidden; }
.gauge .fill { height: 100%; }
.ok .fill { background: #5c9960; }
.warn .fill { background: #ffc46b; }
.crit .fill { background: #ff6b6b; }
.gauge .val { font-size: 1.1rem; font-weight: 600; }
.panels { display: flex; gap: 1rem; flex-wrap: wrap; }
.panel { background: #1d2026; border: 1px solid #2a2e35; border-radius: 6px; padding: .6rem .8rem; }
.series { display: flex; align-items: center; gap: .6rem; margin: .25rem 0; }
.series svg { background: #14161a; border-radius: 3px; }
.sname { color: #9aa3ad; font-size: .78rem; min-width: 9rem; }
.sval { font-weight: 600; font-size: .85rem; }
.empty { color: #5b626b; font-size: .8rem; font-style: italic; }
</style>
</head>
<body>
<h1>env2vec fleet health</h1>
<p class="meta">rendered {{.RenderedAt}} &middot; {{.NumSeries}} stored series &middot; auto-refreshes every 15s</p>

<h2>Alerts</h2>
{{if .Alerts}}
<table>
<tr><th>state</th><th>name</th><th>labels</th><th>value</th><th>active since</th><th>summary</th></tr>
{{range .Alerts}}
<tr>
  <td class="state-{{.State}}">{{.State}}</td>
  <td>{{.Name}}</td>
  <td>{{range $k, $v := .Labels}}{{$k}}={{$v}} {{end}}</td>
  <td>{{printf "%.3g" .Value}}</td>
  <td>{{.ActiveSince}}</td>
  <td>{{index .Annotations "summary"}}</td>
</tr>
{{end}}
</table>
{{else}}<p class="none">no pending or firing alerts</p>{{end}}

<h2>SLO burn rate</h2>
<div class="gauges">
{{range .Burn}}
<div class="gauge {{.Class}}">
  <div>{{.Window}} window <span class="meta">(alert at {{.Threshold}}x)</span></div>
  <div class="val">{{.Display}}</div>
  <div class="bar"><div class="fill" style="width: {{printf "%.0f" .WidthPct}}%"></div></div>
</div>
{{end}}
</div>

<h2>Fleet</h2>
<div class="panels">
{{range .Panels}}
<div class="panel">
  <div>{{.Title}}</div>
  {{if .Series}}
  {{range .Series}}
  <div class="series">
    <span class="sname">{{.Name}}</span>
    <svg width="240" height="48" viewBox="0 0 240 48" preserveAspectRatio="none"><polyline points="{{.Points}}" fill="none" stroke="#6ba8ff" stroke-width="1.5"/></svg>
    <span class="sval">{{.Latest}}</span>
  </div>
  {{end}}
  {{else}}<div class="empty">no data in window</div>{{end}}
</div>
{{end}}
</div>
</body>
</html>
`))
