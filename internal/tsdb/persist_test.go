package tsdb

import (
	"os"
	"path/filepath"
	"testing"
)

func populated() *DB {
	db := New()
	for i := int64(0); i < 10; i++ {
		_ = db.Append(Labels{"m": "cpu", "env": "a"}, i*10, float64(i))
		_ = db.Append(Labels{"m": "mem", "env": "b"}, i*10+5, float64(i)*2)
	}
	return db
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := populated()
	path := filepath.Join(t.TempDir(), "tsdb.jsonl")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumSeries() != db.NumSeries() || loaded.NumSamples() != db.NumSamples() {
		t.Fatalf("loaded %d/%d, want %d/%d",
			loaded.NumSeries(), loaded.NumSamples(), db.NumSeries(), db.NumSamples())
	}
	orig := db.Query(Labels{"env": "a"}, 0, 1<<62)
	got := loaded.Query(Labels{"env": "a"}, 0, 1<<62)
	if len(got) != 1 || len(got[0].Samples) != len(orig[0].Samples) {
		t.Fatalf("series content differs after round trip")
	}
	for i, smp := range got[0].Samples {
		if smp != orig[0].Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestSaveIsAtomic(t *testing.T) {
	db := populated()
	path := filepath.Join(t.TempDir(), "tsdb.jsonl")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatalf("missing file should error")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{corrupt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatalf("corrupt file should error")
	}
}

func TestRetain(t *testing.T) {
	db := populated() // samples at t=0..90 (cpu) and 5..95 (mem)
	removed := db.Retain(50)
	if removed != 10 {
		t.Fatalf("removed %d, want 10", removed)
	}
	for _, s := range db.Query(Labels{}, 0, 1<<62) {
		for _, smp := range s.Samples {
			if smp.T < 50 {
				t.Fatalf("sample below cutoff survived: %+v", smp)
			}
		}
	}
	// Retaining beyond all data empties the DB.
	if db.Retain(1000); db.NumSeries() != 0 {
		t.Fatalf("full retention should drop all series")
	}
}

func TestRetainKeepsAppendable(t *testing.T) {
	db := populated()
	db.Retain(50)
	if err := db.Append(Labels{"m": "cpu", "env": "a"}, 200, 1); err != nil {
		t.Fatalf("append after retention failed: %v", err)
	}
}
