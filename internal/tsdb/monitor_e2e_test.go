// External test package: the monitoring-plane round trip below drives a
// live serve.Server behind an e2vproxy front, scrapes it with the tsdb
// scraper, evaluates the built-in SLO burn-rate rules, and asserts the
// firing alert lands in a real alarmstore over HTTP — the full loop the
// issue calls for. It lives outside package tsdb because proxy and
// serve import tsdb's siblings.
package tsdb_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"env2vec/internal/alarmstore"
	"env2vec/internal/proxy"
	"env2vec/internal/quality"
	"env2vec/internal/tsdb"
)

// TestMonitoringPlaneBurnRateE2E: error injection (backend torn down)
// drives the availability burn-rate rule pending → firing; the alarm
// arrives in the alarm store with source=slo; ALERTS series and the
// /alerts endpoint reflect the state.
func TestMonitoringPlaneBurnRateE2E(t *testing.T) {
	backend := newScrapeBackend(t, 7)
	p, front := newMonitorProxy(t, backend.URL)
	defer p.Close()

	// Real alarm store behind HTTP, as in production: tsdbd pushes via
	// quality.HTTPSink → POST /alarms.
	store, err := alarmstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	alarmSrv := httptest.NewServer(&alarmstore.Handler{Store: store})
	defer alarmSrv.Close()

	sd := filepath.Join(t.TempDir(), "sd.json")
	proxyHost := strings.TrimPrefix(front.URL, "http://")
	if err := tsdb.WriteSDConfig(sd, []tsdb.SDEntry{{Targets: []string{proxyHost}}}); err != nil {
		t.Fatal(err)
	}

	// Deterministic time: one scrape+eval cycle per 15 fake seconds.
	now := int64(1_000_000)
	db := tsdb.New()
	db.SetRetention(8 * 3600)
	sc := tsdb.NewScraper(db, sd, time.Second)
	sc.Now = func() int64 { return now }
	engine := tsdb.NewEngine(db)
	rules := tsdb.NewRules(engine)
	rules.Now = func() int64 { return now }
	rules.Sink = quality.HTTPSink{URL: alarmSrv.URL}
	if err := rules.Load(tsdb.DefaultSLORules(0.99, 250)); err != nil {
		t.Fatal(err)
	}
	handler := &tsdb.Handler{DB: db, Engine: engine, Rules: rules, Now: func() int64 { return now }}
	tsdbSrv := httptest.NewServer(handler)
	defer tsdbSrv.Close()

	cycle := func(requests int) {
		t.Helper()
		for i := 0; i < requests; i++ {
			body := `{"cf":[1,2,3],"window":[50,51],"testbed":"tb1","sut":"fw","testcase":"load","build":"B1"}`
			resp, err := http.Post(front.URL+"/predict", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		if _, err := sc.ScrapeOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		rules.EvalOnce()
		now += 15
	}

	// Phase 1 — healthy traffic. No alert may appear.
	for i := 0; i < 10; i++ {
		cycle(4)
	}
	for _, a := range rules.ActiveAlerts() {
		if strings.Contains(a.Name, "Availability") {
			t.Fatalf("availability alert active during healthy phase: %+v", a)
		}
	}

	// Phase 2 — kill the only backend: every proxied request now fails,
	// growing env2vec_proxy_requests_total{outcome="failed"}.
	backend.Close()
	for i := 0; i < 3; i++ {
		cycle(4)
	}
	var fast *tsdb.ActiveAlert
	for _, a := range rules.ActiveAlerts() {
		if a.Name == "ServeAvailabilityFastBurn" {
			a := a
			fast = &a
		}
	}
	if fast == nil {
		t.Fatalf("fast burn not pending after error injection; alerts: %+v", rules.ActiveAlerts())
	}
	if fast.State != tsdb.StatePending {
		t.Fatalf("fast burn state %q, want pending (For not yet elapsed)", fast.State)
	}
	if store.Len() != 0 {
		t.Fatal("pending alert must not reach the alarm store")
	}

	// Keep failing past the 2m For window → firing, alarm pushed.
	for i := 0; i < 10; i++ {
		cycle(4)
	}
	fast = nil
	for _, a := range rules.ActiveAlerts() {
		if a.Name == "ServeAvailabilityFastBurn" {
			a := a
			fast = &a
		}
	}
	if fast == nil || fast.State != tsdb.StateFiring {
		t.Fatalf("fast burn not firing; alerts: %+v", rules.ActiveAlerts())
	}

	// The alarm landed over HTTP with source=slo and the rule name.
	recs := store.Find(alarmstore.Query{Source: "slo"})
	if len(recs) == 0 {
		t.Fatalf("no slo alarms in store (have %d total)", store.Len())
	}
	found := false
	for _, rec := range recs {
		if rec.Alarm.Detector == "ServeAvailabilityFastBurn" {
			found = true
			if rec.Alarm.Source != "slo" {
				t.Fatalf("alarm source %q", rec.Alarm.Source)
			}
		}
	}
	if !found {
		t.Fatalf("fast burn alarm missing from store: %+v", recs)
	}
	if len(store.Find(alarmstore.Query{Source: "drift"})) != 0 {
		t.Fatal("slo alarms must not be classified as drift")
	}

	// The synthetic ALERTS series tracked both states.
	for _, state := range []string{tsdb.StatePending, tsdb.StateFiring} {
		s := db.Query(tsdb.Labels{"__name__": "ALERTS", "alertname": "ServeAvailabilityFastBurn", "state": state}, 0, now)
		if len(s) == 0 {
			t.Fatalf("no ALERTS series for state %s", state)
		}
	}

	// GET /alerts reports the firing alert with its annotation.
	resp, err := http.Get(tsdbSrv.URL + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var alertsPayload struct {
		Data []tsdb.ActiveAlert `json:"data"`
	}
	err = json.NewDecoder(resp.Body).Decode(&alertsPayload)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	gotFiring := false
	for _, a := range alertsPayload.Data {
		if a.Name == "ServeAvailabilityFastBurn" && a.State == tsdb.StateFiring {
			gotFiring = true
			if a.Annotations["summary"] == "" {
				t.Fatal("firing alert served without its annotations")
			}
		}
	}
	if !gotFiring {
		t.Fatalf("/alerts missing the firing alert: %+v", alertsPayload.Data)
	}

	// Age the healthy phase out of the 5m window entirely, so the error
	// ratio is exactly 1 and the burn rate is hand-computable.
	for i := 0; i < 12; i++ {
		cycle(4)
	}

	// GET /query confirms the recorded burn rate: with every request in
	// the window failed, error ratio = 1 and burn rate = 1/0.01 = 100.
	resp, err = http.Get(tsdbSrv.URL + "/query?expr=" + "slo:serve:burn_rate:5m")
	if err != nil {
		t.Fatal(err)
	}
	var queryPayload struct {
		Data []struct {
			Value float64 `json:"value"`
		} `json:"data"`
	}
	err = json.NewDecoder(resp.Body).Decode(&queryPayload)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(queryPayload.Data) != 1 {
		t.Fatalf("/query burn rate: %+v", queryPayload.Data)
	}
	if v := queryPayload.Data[0].Value; v < 90 || v > 110 {
		t.Fatalf("burn rate %v, want ~100 (all traffic failing, 1%% budget)", v)
	}

	// The dashboard renders the firing alert.
	resp, err = http.Get(tsdbSrv.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := readAll(resp)
	if !strings.Contains(page, "ServeAvailabilityFastBurn") || !strings.Contains(page, "state-firing") {
		t.Fatal("dashboard missing the firing alert")
	}
}

// TestQueryHTTPFixtures: GET /query returns rate() and
// histogram_quantile() values matching hand-computed fixtures within
// tolerance, over real HTTP.
func TestQueryHTTPFixtures(t *testing.T) {
	db := tsdb.New()
	// Counter with a mid-window reset: 0:0 15:30 30:60 45:10 60:40 →
	// adjusted cumulative 0,30,60,70,100 → delta 100 over 60s.
	for _, s := range []struct {
		ts int64
		v  float64
	}{{0, 0}, {15, 30}, {30, 60}, {45, 10}, {60, 40}} {
		if err := db.Append(tsdb.Labels{"__name__": "reqs_total"}, s.ts, s.v); err != nil {
			t.Fatal(err)
		}
	}
	// Histogram: cumulative buckets 10:40 20:70 50:95 +Inf:100.
	for _, b := range []struct {
		le string
		v  float64
	}{{"10", 40}, {"20", 70}, {"50", 95}, {"+Inf", 100}} {
		if err := db.Append(tsdb.Labels{"__name__": "lat_bucket", "le": b.le}, 60, b.v); err != nil {
			t.Fatal(err)
		}
	}
	h := &tsdb.Handler{DB: db, Engine: tsdb.NewEngine(db), Now: func() int64 { return 60 }}
	srv := httptest.NewServer(h)
	defer srv.Close()

	query := func(expr string) float64 {
		t.Helper()
		resp, err := http.Get(srv.URL + "/query?expr=" + strings.ReplaceAll(expr, " ", "%20"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %q: status %d", expr, resp.StatusCode)
		}
		var payload struct {
			Data []struct {
				Value float64 `json:"value"`
			} `json:"data"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatal(err)
		}
		if len(payload.Data) != 1 {
			t.Fatalf("query %q: %d points", expr, len(payload.Data))
		}
		return payload.Data[0].Value
	}

	const tol = 1e-9
	if v := query("rate(reqs_total[60s])"); math.Abs(v-100.0/60) > tol {
		t.Fatalf("rate = %v, want %v", v, 100.0/60)
	}
	if v := query("increase(reqs_total[1m])"); math.Abs(v-100) > tol {
		t.Fatalf("increase = %v, want 100", v)
	}
	// p50: rank 50 in (10,20] → 10 + 10*(50-40)/30.
	if v := query("histogram_quantile(0.5, lat_bucket)"); math.Abs(v-(10+10.0*10/30)) > tol {
		t.Fatalf("p50 = %v, want %v", v, 10+10.0*10/30)
	}
	// p99 beyond the last finite bucket clamps to its bound.
	if v := query("histogram_quantile(0.99, lat_bucket)"); math.Abs(v-50) > tol {
		t.Fatalf("p99 = %v, want 50", v)
	}

	// Range form returns step-aligned series.
	resp, err := http.Get(srv.URL + "/query?expr=reqs_total&from=0&to=60&step=15")
	if err != nil {
		t.Fatal(err)
	}
	var rangePayload struct {
		Data []struct {
			Samples []tsdb.Sample `json:"Samples"`
		} `json:"data"`
	}
	err = json.NewDecoder(resp.Body).Decode(&rangePayload)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(rangePayload.Data) != 1 || len(rangePayload.Data[0].Samples) != 5 {
		t.Fatalf("range query shape: %+v", rangePayload.Data)
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.String(), err
}

// newMonitorProxy builds a single-backend proxy front for error
// injection: closing the backend makes every proxied request count as
// outcome=failed.
func newMonitorProxy(t *testing.T, backendURL string) (*proxy.Proxy, *httptest.Server) {
	t.Helper()
	p := proxy.New(proxy.Config{Backends: []string{backendURL}, RetryBackoff: time.Millisecond})
	front := httptest.NewServer(p)
	t.Cleanup(front.Close)
	return p, front
}
