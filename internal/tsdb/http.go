package tsdb

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Handler exposes the DB over HTTP:
//
//	GET /api/v1/query_range?match=k:v,k2:v2&start=<unix>&end=<unix>
//	GET /api/v1/labels/<key>/values
//	GET /query?expr=<expression>[&time=| &from=&to=&step=]  (needs Engine)
//	GET /alerts (pending/firing alerts, JSON; needs Rules)
//	GET /dashboard (self-contained fleet health HTML; needs Engine)
//	GET /metrics (all series, text exposition; for federation/debugging)
type Handler struct {
	DB *DB
	// SelfMetrics, when non-nil, is rendered ahead of the stored series on
	// /metrics — the daemon's own telemetry (scrape counters, series
	// gauges) sharing the page with the federation dump. An obs.Registry
	// satisfies this without tsdb depending on the obs package.
	SelfMetrics io.WriterTo
	// Engine, when non-nil, enables /query and /dashboard.
	Engine *Engine
	// Rules, when non-nil, feeds /alerts and the dashboard alert table.
	Rules *Rules
	// Now anchors default evaluation times; defaults to the wall clock.
	Now func() int64
}

func (h *Handler) now() int64 {
	if h.Now != nil {
		return h.Now()
	}
	return time.Now().Unix()
}

// queryResponse is the JSON shape returned by query_range.
type queryResponse struct {
	Status string       `json:"status"`
	Data   []seriesJSON `json:"data"`
}

type seriesJSON struct {
	Labels  map[string]string `json:"labels"`
	Samples []Sample          `json:"samples"`
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/api/v1/query_range":
		h.queryRange(w, r)
	case strings.HasPrefix(r.URL.Path, "/api/v1/labels/"):
		h.labelValues(w, r)
	case r.URL.Path == "/query":
		h.query(w, r)
	case r.URL.Path == "/alerts":
		h.alerts(w)
	case r.URL.Path == "/dashboard":
		h.dashboard(w)
	case r.URL.Path == "/metrics":
		h.dump(w)
	default:
		http.NotFound(w, r)
	}
}

// query evaluates an expression. With from/to/step it returns a range
// result (series of step-aligned samples); otherwise an instant vector
// at ?time= (default: now).
func (h *Handler) query(w http.ResponseWriter, r *http.Request) {
	if h.Engine == nil {
		http.Error(w, "query engine not enabled", http.StatusNotFound)
		return
	}
	expr := r.URL.Query().Get("expr")
	if expr == "" {
		http.Error(w, "missing expr", http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	if q.Get("from") != "" || q.Get("to") != "" || q.Get("step") != "" {
		from, err1 := parseTime(q.Get("from"), 0)
		to, err2 := parseTime(q.Get("to"), h.now())
		step, err3 := parseTime(q.Get("step"), 15)
		if err1 != nil || err2 != nil || err3 != nil {
			http.Error(w, "bad from/to/step: want unix seconds", http.StatusBadRequest)
			return
		}
		series, err := h.Engine.Range(expr, from, to, step)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := queryResponse{Status: "success", Data: make([]seriesJSON, 0, len(series))}
		for _, s := range series {
			resp.Data = append(resp.Data, seriesJSON{Labels: s.Labels, Samples: s.Samples})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	ts, err := parseTime(q.Get("time"), h.now())
	if err != nil {
		http.Error(w, "bad time: want unix seconds", http.StatusBadRequest)
		return
	}
	vec, err := h.Engine.Instant(expr, ts)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	type pointJSON struct {
		Labels map[string]string `json:"labels"`
		Value  float64           `json:"value"`
	}
	data := make([]pointJSON, 0, len(vec))
	for _, p := range vec {
		data = append(data, pointJSON{Labels: p.Labels, Value: p.V})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "success", "time": ts, "data": data})
}

// alerts serves the rule engine's pending/firing alerts.
func (h *Handler) alerts(w http.ResponseWriter) {
	var active []ActiveAlert
	if h.Rules != nil {
		active = h.Rules.ActiveAlerts()
	}
	if active == nil {
		active = []ActiveAlert{}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "success", "data": active})
}

func (h *Handler) queryRange(w http.ResponseWriter, r *http.Request) {
	matcher := Labels{}
	if m := r.URL.Query().Get("match"); m != "" {
		for _, pair := range strings.Split(m, ",") {
			kv := strings.SplitN(pair, ":", 2)
			if len(kv) != 2 {
				http.Error(w, "bad match pair: "+pair, http.StatusBadRequest)
				return
			}
			matcher[kv[0]] = kv[1]
		}
	}
	start, err := parseTime(r.URL.Query().Get("start"), 0)
	if err != nil {
		http.Error(w, "bad start", http.StatusBadRequest)
		return
	}
	end, err := parseTime(r.URL.Query().Get("end"), 1<<62)
	if err != nil {
		http.Error(w, "bad end", http.StatusBadRequest)
		return
	}
	series := h.DB.Query(matcher, start, end)
	resp := queryResponse{Status: "success", Data: make([]seriesJSON, 0, len(series))}
	for _, s := range series {
		resp.Data = append(resp.Data, seriesJSON{Labels: s.Labels, Samples: s.Samples})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (h *Handler) labelValues(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/labels/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[1] != "values" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": "success",
		"data":   h.DB.LabelValues(parts[0]),
	})
}

func (h *Handler) dump(w http.ResponseWriter) {
	series := h.DB.Query(Labels{}, 0, 1<<62)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if h.SelfMetrics != nil {
		_, _ = h.SelfMetrics.WriteTo(w)
	}
	_ = WriteExposition(w, series)
}

func parseTime(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

// QueryClient reads series back from a tsdb Handler over HTTP; the
// prediction pipeline uses it to build its dataframe (workflow step 3).
type QueryClient struct {
	BaseURL string
	Client  *http.Client
}

// QueryRange fetches series matching the label matcher in [from, to].
func (c *QueryClient) QueryRange(matcher Labels, from, to int64) ([]Series, error) {
	httpc := c.Client
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var pairs []string
	for k, v := range matcher {
		pairs = append(pairs, k+":"+v)
	}
	url := c.BaseURL + "/api/v1/query_range?match=" + strings.Join(pairs, ",") +
		"&start=" + strconv.FormatInt(from, 10) + "&end=" + strconv.FormatInt(to, 10)
	resp, err := httpc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, err
	}
	out := make([]Series, 0, len(qr.Data))
	for _, s := range qr.Data {
		out = append(out, Series{Labels: s.Labels, Samples: s.Samples})
	}
	return out, nil
}
