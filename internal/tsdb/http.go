package tsdb

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Handler exposes the DB over HTTP:
//
//	GET /api/v1/query_range?match=k:v,k2:v2&start=<unix>&end=<unix>
//	GET /api/v1/labels/<key>/values
//	GET /metrics (all series, text exposition; for federation/debugging)
type Handler struct {
	DB *DB
	// SelfMetrics, when non-nil, is rendered ahead of the stored series on
	// /metrics — the daemon's own telemetry (scrape counters, series
	// gauges) sharing the page with the federation dump. An obs.Registry
	// satisfies this without tsdb depending on the obs package.
	SelfMetrics io.WriterTo
}

// queryResponse is the JSON shape returned by query_range.
type queryResponse struct {
	Status string       `json:"status"`
	Data   []seriesJSON `json:"data"`
}

type seriesJSON struct {
	Labels  map[string]string `json:"labels"`
	Samples []Sample          `json:"samples"`
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/api/v1/query_range":
		h.queryRange(w, r)
	case strings.HasPrefix(r.URL.Path, "/api/v1/labels/"):
		h.labelValues(w, r)
	case r.URL.Path == "/metrics":
		h.dump(w)
	default:
		http.NotFound(w, r)
	}
}

func (h *Handler) queryRange(w http.ResponseWriter, r *http.Request) {
	matcher := Labels{}
	if m := r.URL.Query().Get("match"); m != "" {
		for _, pair := range strings.Split(m, ",") {
			kv := strings.SplitN(pair, ":", 2)
			if len(kv) != 2 {
				http.Error(w, "bad match pair: "+pair, http.StatusBadRequest)
				return
			}
			matcher[kv[0]] = kv[1]
		}
	}
	start, err := parseTime(r.URL.Query().Get("start"), 0)
	if err != nil {
		http.Error(w, "bad start", http.StatusBadRequest)
		return
	}
	end, err := parseTime(r.URL.Query().Get("end"), 1<<62)
	if err != nil {
		http.Error(w, "bad end", http.StatusBadRequest)
		return
	}
	series := h.DB.Query(matcher, start, end)
	resp := queryResponse{Status: "success", Data: make([]seriesJSON, 0, len(series))}
	for _, s := range series {
		resp.Data = append(resp.Data, seriesJSON{Labels: s.Labels, Samples: s.Samples})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (h *Handler) labelValues(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v1/labels/")
	parts := strings.Split(rest, "/")
	if len(parts) != 2 || parts[1] != "values" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": "success",
		"data":   h.DB.LabelValues(parts[0]),
	})
}

func (h *Handler) dump(w http.ResponseWriter) {
	series := h.DB.Query(Labels{}, 0, 1<<62)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if h.SelfMetrics != nil {
		_, _ = h.SelfMetrics.WriteTo(w)
	}
	_ = WriteExposition(w, series)
}

func parseTime(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	return strconv.ParseInt(s, 10, 64)
}

// QueryClient reads series back from a tsdb Handler over HTTP; the
// prediction pipeline uses it to build its dataframe (workflow step 3).
type QueryClient struct {
	BaseURL string
	Client  *http.Client
}

// QueryRange fetches series matching the label matcher in [from, to].
func (c *QueryClient) QueryRange(matcher Labels, from, to int64) ([]Series, error) {
	httpc := c.Client
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var pairs []string
	for k, v := range matcher {
		pairs = append(pairs, k+":"+v)
	}
	url := c.BaseURL + "/api/v1/query_range?match=" + strings.Join(pairs, ",") +
		"&start=" + strconv.FormatInt(from, 10) + "&end=" + strconv.FormatInt(to, 10)
	resp, err := httpc.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, err
	}
	out := make([]Series, 0, len(qr.Data))
	for _, s := range qr.Data {
		out = append(out, Series{Labels: s.Labels, Samples: s.Samples})
	}
	return out, nil
}
