package tsdb

import (
	"math"
	"testing"
)

// mustAppend seeds one series with (t, v) pairs.
func mustAppend(t *testing.T, db *DB, labels Labels, samples ...Sample) {
	t.Helper()
	for _, s := range samples {
		if err := db.Append(labels, s.T, s.V); err != nil {
			t.Fatalf("append %v: %v", labels, err)
		}
	}
}

func instant(t *testing.T, e *Engine, expr string, ts int64) Vector {
	t.Helper()
	v, err := e.Instant(expr, ts)
	if err != nil {
		t.Fatalf("Instant(%q): %v", expr, err)
	}
	return v
}

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

// TestRateSimpleCounter: hand-computed fixture. Counter at t=0:0, t=15:30,
// t=30:60, t=60:120 → delta 120 over 60s → rate 2.0/s; increase 120.
func TestRateSimpleCounter(t *testing.T) {
	db := New()
	lbls := Labels{"__name__": "reqs_total", "job": "serve"}
	mustAppend(t, db, lbls, Sample{0, 0}, Sample{15, 30}, Sample{30, 60}, Sample{60, 120})
	e := NewEngine(db)

	v := instant(t, e, `rate(reqs_total[60s])`, 60)
	if len(v) != 1 {
		t.Fatalf("rate returned %d points, want 1", len(v))
	}
	approx(t, v[0].V, 2.0, 1e-12, "rate")
	if v[0].Labels["__name__"] != "" || v[0].Labels["job"] != "serve" {
		t.Fatalf("rate labels wrong: %v", v[0].Labels)
	}

	v = instant(t, e, `increase(reqs_total[1m])`, 60)
	approx(t, v[0].V, 120, 1e-12, "increase")

	// A narrower window sees only t=30 and t=60: delta 60 over 30s → 2.0/s.
	v = instant(t, e, `rate(reqs_total[30s])`, 60)
	approx(t, v[0].V, 2.0, 1e-12, "windowed rate")
}

// TestRateCounterReset: a backend restart mid-window drops the counter to
// zero; the reset adjustment must count the pre-reset value. Samples
// 0:100 → 15:150 → 30:10 (reset) → 45:40. Adjusted delta = (150-100) +
// (10-0 after reset: offset 150) + (40-10) = 40-100+150 = 90 over 45s = 2.0.
func TestRateCounterReset(t *testing.T) {
	db := New()
	lbls := Labels{"__name__": "reqs_total"}
	mustAppend(t, db, lbls, Sample{0, 100}, Sample{15, 150}, Sample{30, 10}, Sample{45, 40})
	e := NewEngine(db)

	v := instant(t, e, `increase(reqs_total[45s])`, 45)
	approx(t, v[0].V, 90, 1e-12, "increase across reset")

	v = instant(t, e, `rate(reqs_total[45s])`, 45)
	approx(t, v[0].V, 2.0, 1e-12, "rate across reset")

	// Two resets in one window: 0:50 → 10:5 (reset) → 20:60 → 30:3 (reset) →
	// 40:10. Delta = (50→5: +50) (5→60: ) (60→3: +60) = 10-50+50+60 = 70.
	lbls2 := Labels{"__name__": "double_reset"}
	mustAppend(t, db, lbls2, Sample{0, 50}, Sample{10, 5}, Sample{20, 60}, Sample{30, 3}, Sample{40, 10})
	v = instant(t, e, `increase(double_reset[40s])`, 40)
	approx(t, v[0].V, 70, 1e-12, "increase across two resets")
}

// TestRateNeedsTwoSamples: one sample in the window yields no element.
func TestRateNeedsTwoSamples(t *testing.T) {
	db := New()
	mustAppend(t, db, Labels{"__name__": "lonely_total"}, Sample{100, 5})
	e := NewEngine(db)
	if v := instant(t, e, `rate(lonely_total[60s])`, 120); len(v) != 0 {
		t.Fatalf("rate over one sample returned %v", v)
	}
}

// TestAggregationBy: sum/avg/max/min/count grouped on one label.
func TestAggregationBy(t *testing.T) {
	db := New()
	mustAppend(t, db, Labels{"__name__": "qd", "instance": "a", "shard": "0"}, Sample{10, 4})
	mustAppend(t, db, Labels{"__name__": "qd", "instance": "a", "shard": "1"}, Sample{10, 6})
	mustAppend(t, db, Labels{"__name__": "qd", "instance": "b", "shard": "0"}, Sample{10, 10})
	e := NewEngine(db)

	v := instant(t, e, `sum by (instance) (qd)`, 10)
	if len(v) != 2 {
		t.Fatalf("sum by returned %d groups: %v", len(v), v)
	}
	byInst := map[string]float64{}
	for _, p := range v {
		byInst[p.Labels["instance"]] = p.V
	}
	approx(t, byInst["a"], 10, 0, "sum a")
	approx(t, byInst["b"], 10, 0, "sum b")

	v = instant(t, e, `avg by (instance) (qd)`, 10)
	for _, p := range v {
		if p.Labels["instance"] == "a" {
			approx(t, p.V, 5, 0, "avg a")
		}
	}
	v = instant(t, e, `max(qd)`, 10)
	if len(v) != 1 || v[0].V != 10 {
		t.Fatalf("max(qd) = %v", v)
	}
	v = instant(t, e, `min(qd)`, 10)
	if v[0].V != 4 {
		t.Fatalf("min(qd) = %v", v)
	}
	v = instant(t, e, `count(qd)`, 10)
	if v[0].V != 3 {
		t.Fatalf("count(qd) = %v", v)
	}
}

// TestHistogramQuantile: synthetic bucket distribution with hand-computed
// quantiles. Buckets le=10:40, le=20:70, le=50:95, le=+Inf:100 (cumulative).
// p50 → rank 50 lands in (10,20]: 10 + 10*(50-40)/30 = 13.333…
// p90 → rank 90 lands in (20,50]: 20 + 30*(90-70)/25 = 44.0
// p99 → rank 99 lands in +Inf bucket → highest finite bound 50.
func TestHistogramQuantile(t *testing.T) {
	db := New()
	for _, b := range []struct {
		le string
		v  float64
	}{{"10", 40}, {"20", 70}, {"50", 95}, {"+Inf", 100}} {
		mustAppend(t, db, Labels{"__name__": "lat_ms_bucket", "le": b.le}, Sample{100, b.v})
	}
	e := NewEngine(db)

	v := instant(t, e, `histogram_quantile(0.5, lat_ms_bucket)`, 100)
	if len(v) != 1 {
		t.Fatalf("histogram_quantile returned %d points", len(v))
	}
	approx(t, v[0].V, 10+10.0*10/30, 1e-9, "p50")

	v = instant(t, e, `histogram_quantile(0.9, lat_ms_bucket)`, 100)
	approx(t, v[0].V, 44.0, 1e-9, "p90")

	v = instant(t, e, `histogram_quantile(0.99, lat_ms_bucket)`, 100)
	approx(t, v[0].V, 50.0, 1e-9, "p99 beyond last finite bound")
}

// TestHistogramQuantileGroups: two instances keep separate quantiles, and
// composing with sum by (le) over rate() reconstructs the fleet quantile.
func TestHistogramQuantileGroups(t *testing.T) {
	db := New()
	// Instance a: all 100 observations ≤ 10. Instance b: all 100 in (10, 50].
	for _, fix := range []struct {
		inst string
		c10  float64
		c50  float64
	}{{"a", 100, 100}, {"b", 0, 100}} {
		mustAppend(t, db, Labels{"__name__": "lat_ms_bucket", "le": "10", "instance": fix.inst},
			Sample{0, 0}, Sample{60, fix.c10})
		mustAppend(t, db, Labels{"__name__": "lat_ms_bucket", "le": "50", "instance": fix.inst},
			Sample{0, 0}, Sample{60, fix.c50})
		mustAppend(t, db, Labels{"__name__": "lat_ms_bucket", "le": "+Inf", "instance": fix.inst},
			Sample{0, 0}, Sample{60, fix.c50})
	}
	e := NewEngine(db)

	// Per-instance p99 stays grouped by instance.
	v := instant(t, e, `histogram_quantile(0.99, lat_ms_bucket)`, 60)
	if len(v) != 2 {
		t.Fatalf("grouped quantile returned %d points: %v", len(v), v)
	}
	for _, p := range v {
		switch p.Labels["instance"] {
		case "a":
			approx(t, p.V, 9.9, 1e-9, "instance a p99")
		case "b":
			approx(t, p.V, 10+40*(99.0-0)/100/1, 1e-6, "instance b p99") // 10+40*0.99
		default:
			t.Fatalf("unexpected group %v", p.Labels)
		}
	}

	// The fleet view: sum the per-instance bucket rates, then take the
	// quantile. 200 obs total, 100 ≤ 10, 200 ≤ 50: p50 → rank 100 → le 10.
	v = instant(t, e, `histogram_quantile(0.5, sum by (le) (rate(lat_ms_bucket[60s])))`, 60)
	if len(v) != 1 {
		t.Fatalf("fleet quantile returned %d points: %v", len(v), v)
	}
	approx(t, v[0].V, 10, 1e-9, "fleet p50")
}

// TestBinaryOps: the error-ratio / burn-rate shape the SLO rules use.
func TestBinaryOps(t *testing.T) {
	db := New()
	mustAppend(t, db, Labels{"__name__": "req_total", "outcome": "served"}, Sample{0, 0}, Sample{60, 90})
	mustAppend(t, db, Labels{"__name__": "req_total", "outcome": "failed"}, Sample{0, 0}, Sample{60, 10})
	e := NewEngine(db)

	// Error ratio: (total - served) / total = 10/100.
	expr := `(sum(rate(req_total[60s])) - sum(rate(req_total{outcome="served"}[60s]))) / sum(rate(req_total[60s]))`
	v := instant(t, e, expr, 60)
	if len(v) != 1 {
		t.Fatalf("ratio returned %d points: %v", len(v), v)
	}
	approx(t, v[0].V, 0.1, 1e-12, "error ratio")

	// Burn rate against a 1% budget = ratio / 0.01 = 10.
	v = instant(t, e, "("+expr+") / 0.01", 60)
	approx(t, v[0].V, 10, 1e-9, "burn rate")

	// Comparison filters: > 5 keeps the element, > 50 drops it.
	if v = instant(t, e, "("+expr+") / 0.01 > 5", 60); len(v) != 1 {
		t.Fatalf("burn > 5 should keep the element: %v", v)
	}
	if v = instant(t, e, "("+expr+") / 0.01 > 50", 60); len(v) != 0 {
		t.Fatalf("burn > 50 should drop the element: %v", v)
	}

	// 'and' intersects on label identity: both sides present → kept.
	if v = instant(t, e, "("+expr+") > 0.05 and ("+expr+") > 0.01", 60); len(v) != 1 {
		t.Fatalf("and should keep the element: %v", v)
	}
	if v = instant(t, e, "("+expr+") > 0.05 and ("+expr+") > 0.5", 60); len(v) != 0 {
		t.Fatalf("and with an empty side should drop: %v", v)
	}
}

// TestDivisionByZeroDropsElement: no traffic → rate 0 → the ratio element
// disappears instead of emitting Inf/NaN (so alert rules see "no data").
func TestDivisionByZeroDropsElement(t *testing.T) {
	db := New()
	mustAppend(t, db, Labels{"__name__": "req_total"}, Sample{0, 5}, Sample{60, 5})
	e := NewEngine(db)
	v := instant(t, e, `rate(req_total[60s]) / rate(req_total[60s])`, 60)
	if len(v) != 0 {
		t.Fatalf("0/0 should drop the element, got %v", v)
	}
}

// TestRangeQuery: step evaluation assembles per-instant vectors into series.
func TestRangeQuery(t *testing.T) {
	db := New()
	lbls := Labels{"__name__": "g", "instance": "a"}
	mustAppend(t, db, lbls, Sample{0, 1}, Sample{15, 2}, Sample{30, 3}, Sample{45, 4})
	e := NewEngine(db)
	out, err := e.Range(`g`, 0, 45, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Samples) != 4 {
		t.Fatalf("range query shape wrong: %+v", out)
	}
	for i, want := range []float64{1, 2, 3, 4} {
		if out[0].Samples[i].V != want {
			t.Fatalf("step %d = %v, want %v", i, out[0].Samples[i].V, want)
		}
	}
	if _, err := e.Range(`g`, 0, 45, 0); err == nil {
		t.Fatal("step 0 should error")
	}
	if _, err := e.Range(`g`, 45, 0, 15); err == nil {
		t.Fatal("reversed range should error")
	}
}

// TestInstantStaleness: a selector only sees samples within the lookback.
func TestInstantStaleness(t *testing.T) {
	db := New()
	mustAppend(t, db, Labels{"__name__": "g"}, Sample{100, 7})
	e := NewEngine(db)
	if v := instant(t, e, `g`, 150); len(v) != 1 || v[0].V != 7 {
		t.Fatalf("within lookback: %v", v)
	}
	if v := instant(t, e, `g`, 100+301); len(v) != 0 {
		t.Fatalf("beyond lookback should be stale: %v", v)
	}
}

// TestParseErrors: malformed expressions are rejected with errors, not
// panics, and range selectors are confined to rate()/increase().
func TestParseErrors(t *testing.T) {
	for _, expr := range []string{
		"",
		"sum(",
		`m{key=}`,
		`m{key="v}`,
		"rate(m)",                  // missing range
		"m[5m]",                    // bare range selector
		"sum(m[5m])",               // range under aggregate
		"histogram_quantile(2, m)", // quantile out of range
		"rate(sum(m))",             // rate of non-selector
		"m ~ 5",                    // unknown operator
		"m + ",                     // dangling operator
	} {
		if _, err := ParseExpr(expr); err == nil {
			t.Errorf("ParseExpr(%q) should fail", expr)
		}
	}
	for _, expr := range []string{
		`rate(env2vec_serve_requests_total{outcome="served"}[5m])`,
		`slo:serve:burn_rate:5m > 14.4 and slo:serve:burn_rate:1h > 14.4`,
		`histogram_quantile(0.99, sum by (le) (rate(lat_ms_bucket[5m])))`,
		`avg by (a, b) (m) * 2 - 1`,
	} {
		if _, err := ParseExpr(expr); err != nil {
			t.Errorf("ParseExpr(%q): %v", expr, err)
		}
	}
}
