package tsdb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParseExposition reads the Prometheus text exposition format (the subset
// used by metric collectors in the workflow):
//
//	metric_name{label="value",other="v2"} 12.5 [timestamp]
//
// Comment lines (#), blank lines, and OpenMetrics exemplar suffixes
// (`value # {request_id="..."} 1.2`) are skipped. The metric name is added
// to the returned label set under the key "__name__". Timestamps are unix
// seconds; when omitted, defaultTime is used.
func ParseExposition(r io.Reader, defaultTime int64) ([]Series, error) {
	scanner := bufio.NewScanner(r)
	byFP := make(map[string]*Series)
	var order []string
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		labels, value, ts, err := parseLine(line, defaultTime)
		if err != nil {
			return nil, fmt.Errorf("tsdb: exposition line %d: %w", lineNo, err)
		}
		fp := labels.Fingerprint()
		s, ok := byFP[fp]
		if !ok {
			s = &Series{Labels: labels}
			byFP[fp] = s
			order = append(order, fp)
		}
		s.Samples = append(s.Samples, Sample{T: ts, V: value})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("tsdb: exposition scan: %w", err)
	}
	out := make([]Series, 0, len(order))
	for _, fp := range order {
		out = append(out, *byFP[fp])
	}
	return out, nil
}

func parseLine(line string, defaultTime int64) (Labels, float64, int64, error) {
	labels := Labels{}
	rest := line
	// Metric name runs until '{' or whitespace.
	nameEnd := strings.IndexAny(rest, "{ \t")
	if nameEnd <= 0 {
		return nil, 0, 0, fmt.Errorf("missing metric name")
	}
	labels["__name__"] = rest[:nameEnd]
	rest = strings.TrimSpace(rest[nameEnd:])

	if strings.HasPrefix(rest, "{") {
		close := strings.Index(rest, "}")
		if close < 0 {
			return nil, 0, 0, fmt.Errorf("unterminated label set")
		}
		if err := parseLabels(rest[1:close], labels); err != nil {
			return nil, 0, 0, err
		}
		rest = strings.TrimSpace(rest[close+1:])
	}

	// Drop an OpenMetrics-style exemplar suffix (`# {labels} value`): the
	// label set is already consumed above, so any remaining '#' starts an
	// exemplar, which this parser tolerates but does not store.
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		rest = strings.TrimSpace(rest[:i])
	}

	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return nil, 0, 0, fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	value, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	ts := defaultTime
	if len(fields) == 2 {
		ts, err = strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("bad timestamp %q: %v", fields[1], err)
		}
	}
	return labels, value, ts, nil
}

func parseLabels(s string, into Labels) error {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	// Split on commas outside quotes.
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		eq := strings.Index(p, "=")
		if eq < 0 {
			return fmt.Errorf("bad label pair %q", p)
		}
		k := strings.TrimSpace(p[:eq])
		v := strings.TrimSpace(p[eq+1:])
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value must be quoted: %q", p)
		}
		into[k] = v[1 : len(v)-1]
	}
	return nil
}

// MergeExpositions merges several already-parsed expositions (see
// ParseExposition) into one, tagging every series with tag=<part name> so
// the merged page keeps per-origin attribution instead of silently summing
// unrelated processes. Parts are written in sorted name order for stable
// output; the original label sets are not mutated. A part whose series
// already carry the tag label keeps its own value (the origin knows best).
func MergeExpositions(w io.Writer, tag string, parts map[string][]Series) error {
	names := make([]string, 0, len(parts))
	for name := range parts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tagged := make([]Series, len(parts[name]))
		for i, s := range parts[name] {
			lbls := make(Labels, len(s.Labels)+1)
			for k, v := range s.Labels {
				lbls[k] = v
			}
			if _, ok := lbls[tag]; !ok && tag != "" {
				lbls[tag] = name
			}
			tagged[i] = Series{Labels: lbls, Samples: s.Samples}
		}
		if err := WriteExposition(w, tagged); err != nil {
			return err
		}
	}
	return nil
}

// WriteExposition renders series in the text exposition format, one line
// per sample; the "__name__" label supplies the metric name (defaulting to
// "metric" when absent).
func WriteExposition(w io.Writer, series []Series) error {
	for _, s := range series {
		name := s.Labels["__name__"]
		if name == "" {
			name = "metric"
		}
		var pairs []string
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			if k == "__name__" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pairs = append(pairs, fmt.Sprintf("%s=%q", k, s.Labels[k]))
		}
		labelStr := ""
		if len(pairs) > 0 {
			labelStr = "{" + strings.Join(pairs, ",") + "}"
		}
		for _, smp := range s.Samples {
			if _, err := fmt.Fprintf(w, "%s%s %s %d\n", name, labelStr,
				strconv.FormatFloat(smp.V, 'g', -1, 64), smp.T); err != nil {
				return err
			}
		}
	}
	return nil
}
