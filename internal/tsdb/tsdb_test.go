package tsdb

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestLabelsFingerprintDeterministic(t *testing.T) {
	a := Labels{"b": "2", "a": "1"}
	b := Labels{"a": "1", "b": "2"}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprint must be order-independent")
	}
	if a.Fingerprint() != "a=1,b=2" {
		t.Fatalf("fingerprint = %q", a.Fingerprint())
	}
}

func TestLabelsMatches(t *testing.T) {
	l := Labels{"env": "e1", "metric": "cpu"}
	if !l.Matches(Labels{}) || !l.Matches(Labels{"env": "e1"}) {
		t.Fatalf("should match")
	}
	if l.Matches(Labels{"env": "e2"}) || l.Matches(Labels{"missing": "x"}) {
		t.Fatalf("should not match")
	}
}

func TestAppendQuery(t *testing.T) {
	db := New()
	l1 := Labels{"metric": "cpu", "env": "a"}
	l2 := Labels{"metric": "cpu", "env": "b"}
	for i := int64(0); i < 10; i++ {
		if err := db.Append(l1, i*10, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Append(l2, 5, 99); err != nil {
		t.Fatal(err)
	}
	if db.NumSeries() != 2 {
		t.Fatalf("NumSeries = %d", db.NumSeries())
	}
	all := db.Query(Labels{"metric": "cpu"}, 0, 1<<62)
	if len(all) != 2 {
		t.Fatalf("query all: %d series", len(all))
	}
	one := db.Query(Labels{"env": "a"}, 20, 50)
	if len(one) != 1 || len(one[0].Samples) != 4 {
		t.Fatalf("range query wrong: %+v", one)
	}
	if one[0].Samples[0].T != 20 || one[0].Samples[3].T != 50 {
		t.Fatalf("range bounds wrong")
	}
	if empty := db.Query(Labels{"env": "a"}, 200, 300); len(empty) != 0 {
		t.Fatalf("out-of-range query should be empty")
	}
}

func TestAppendRejectsOutOfOrder(t *testing.T) {
	db := New()
	l := Labels{"m": "x"}
	if err := db.Append(l, 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(l, 50, 2); err == nil {
		t.Fatalf("out-of-order append should fail")
	}
	if err := db.Append(l, 100, 3); err != nil {
		t.Fatalf("equal timestamp should be accepted: %v", err)
	}
}

func TestLatest(t *testing.T) {
	db := New()
	l := Labels{"m": "x"}
	if _, ok := db.Latest(l); ok {
		t.Fatalf("missing series should report !ok")
	}
	_ = db.Append(l, 1, 10)
	_ = db.Append(l, 2, 20)
	s, ok := db.Latest(l)
	if !ok || s.V != 20 || s.T != 2 {
		t.Fatalf("Latest wrong: %+v", s)
	}
}

func TestLabelValues(t *testing.T) {
	db := New()
	_ = db.Append(Labels{"env": "b"}, 1, 1)
	_ = db.Append(Labels{"env": "a"}, 1, 1)
	_ = db.Append(Labels{"other": "x"}, 1, 1)
	vals := db.LabelValues("env")
	if len(vals) != 2 || vals[0] != "a" || vals[1] != "b" {
		t.Fatalf("LabelValues = %v", vals)
	}
}

func TestConcurrentAppend(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l := Labels{"g": string(rune('a' + g))}
			for i := int64(0); i < 100; i++ {
				_ = db.Append(l, i, float64(i))
			}
		}(g)
	}
	wg.Wait()
	if db.NumSeries() != 8 {
		t.Fatalf("NumSeries = %d", db.NumSeries())
	}
	for _, s := range db.Query(Labels{}, 0, 1<<62) {
		if len(s.Samples) != 100 {
			t.Fatalf("series %v has %d samples", s.Labels, len(s.Samples))
		}
	}
}

func TestParseExposition(t *testing.T) {
	input := `# HELP cpu_usage CPU usage
cpu_usage{env="e1",iface="eth0"} 42.5 1000
cpu_usage{env="e1",iface="eth0"} 43.5 1010
net_tx 17
`
	series, err := ParseExposition(strings.NewReader(input), 555)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series count %d", len(series))
	}
	cpu := series[0]
	if cpu.Labels["__name__"] != "cpu_usage" || cpu.Labels["iface"] != "eth0" {
		t.Fatalf("labels wrong: %v", cpu.Labels)
	}
	if len(cpu.Samples) != 2 || cpu.Samples[1].V != 43.5 || cpu.Samples[1].T != 1010 {
		t.Fatalf("samples wrong: %+v", cpu.Samples)
	}
	if series[1].Samples[0].T != 555 {
		t.Fatalf("default timestamp not applied")
	}
}

func TestParseExpositionErrors(t *testing.T) {
	bad := []string{
		`cpu{env="x" 42`,     // unterminated labels
		`cpu{env=x} 42`,      // unquoted value
		`cpu 42 notatime`,    // bad timestamp
		`cpu notanumber`,     // bad value
		`cpu{env="x"} 1 2 3`, // too many fields
		`{env="x"} 42`,       // missing name
	}
	for _, in := range bad {
		if _, err := ParseExposition(strings.NewReader(in), 0); err == nil {
			t.Fatalf("input %q should fail", in)
		}
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	in := []Series{
		{Labels: Labels{"__name__": "cpu", "env": "e1"}, Samples: []Sample{{T: 1, V: 2.5}, {T: 2, V: 3}}},
		{Labels: Labels{"__name__": "mem"}, Samples: []Sample{{T: 5, V: 7}}},
	}
	var b strings.Builder
	if err := WriteExposition(&b, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseExposition(strings.NewReader(b.String()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Samples[0].V != 2.5 || out[1].Labels["__name__"] != "mem" {
		t.Fatalf("round trip wrong: %+v", out)
	}
}

// Property: exposition write→parse preserves sample values and label sets.
func TestExpositionRoundTripProperty(t *testing.T) {
	f := func(v float64, ts int64, envRaw uint8) bool {
		if ts < 0 {
			ts = -ts
		}
		env := string(rune('a' + envRaw%26))
		in := []Series{{
			Labels:  Labels{"__name__": "m", "env": env},
			Samples: []Sample{{T: ts, V: v}},
		}}
		var b strings.Builder
		if err := WriteExposition(&b, in); err != nil {
			return false
		}
		out, err := ParseExposition(strings.NewReader(b.String()), 0)
		if err != nil || len(out) != 1 {
			return false
		}
		s := out[0]
		return s.Labels["env"] == env && s.Samples[0].T == ts &&
			(s.Samples[0].V == v || (v != v && s.Samples[0].V != s.Samples[0].V))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSDConfigRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sd.json")
	entries := []SDEntry{{Targets: []string{"1.2.3.4:9100"}, Labels: map[string]string{"env": "EM_17"}}}
	if err := WriteSDConfig(path, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSDConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Targets[0] != "1.2.3.4:9100" || got[0].Labels["env"] != "EM_17" {
		t.Fatalf("round trip wrong: %+v", got)
	}
	if err := AppendSDTarget(path, "5.6.7.8:9100", map[string]string{"env": "EM_18"}); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadSDConfig(path)
	if len(got) != 2 {
		t.Fatalf("append failed: %+v", got)
	}
	// Appending to a missing file creates it.
	fresh := filepath.Join(dir, "fresh.json")
	if err := AppendSDTarget(fresh, "host:1", nil); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadSDConfig(fresh)
	if len(got) != 1 {
		t.Fatalf("fresh append failed")
	}
}

func TestScraperEndToEnd(t *testing.T) {
	// A fake exporter target.
	exporter := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte("cpu_usage{iface=\"eth0\"} 55 100\n"))
	}))
	defer exporter.Close()

	dir := t.TempDir()
	sd := filepath.Join(dir, "sd.json")
	target := strings.TrimPrefix(exporter.URL, "http://")
	if err := WriteSDConfig(sd, []SDEntry{{Targets: []string{target}, Labels: map[string]string{"env": "EM_1"}}}); err != nil {
		t.Fatal(err)
	}

	db := New()
	s := NewScraper(db, sd, time.Second)
	s.Now = func() int64 { return 100 }
	n, err := s.ScrapeOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ingested %d samples", n)
	}
	series := db.Query(Labels{"env": "EM_1"}, 0, 1<<62)
	if len(series) != 1 || series[0].Samples[0].V != 55 {
		t.Fatalf("scraped series wrong: %+v", series)
	}
	if series[0].Labels["instance"] != target {
		t.Fatalf("instance label missing")
	}
	scrapes, errs := s.Stats()
	if scrapes != 1 || errs != 0 {
		t.Fatalf("stats wrong: %d/%d", scrapes, errs)
	}
}

func TestScraperSkipsDownTargets(t *testing.T) {
	dir := t.TempDir()
	sd := filepath.Join(dir, "sd.json")
	if err := WriteSDConfig(sd, []SDEntry{{Targets: []string{"127.0.0.1:1"}, Labels: nil}}); err != nil {
		t.Fatal(err)
	}
	db := New()
	s := NewScraper(db, sd, time.Second)
	s.Client.Timeout = 200 * time.Millisecond
	n, err := s.ScrapeOnce(context.Background())
	if err != nil {
		t.Fatalf("down target should not fail the cycle: %v", err)
	}
	if n != 0 {
		t.Fatalf("no samples expected")
	}
	_, errs := s.Stats()
	if errs != 1 {
		t.Fatalf("error not counted")
	}
}

func TestHTTPQueryRange(t *testing.T) {
	db := New()
	_ = db.Append(Labels{"metric": "cpu", "env": "e1"}, 10, 1)
	_ = db.Append(Labels{"metric": "cpu", "env": "e1"}, 20, 2)
	_ = db.Append(Labels{"metric": "cpu", "env": "e2"}, 10, 3)
	srv := httptest.NewServer(&Handler{DB: db})
	defer srv.Close()

	c := &QueryClient{BaseURL: srv.URL}
	series, err := c.QueryRange(Labels{"env": "e1"}, 0, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || len(series[0].Samples) != 1 || series[0].Samples[0].V != 1 {
		t.Fatalf("query result wrong: %+v", series)
	}

	// Label values endpoint.
	resp, err := http.Get(srv.URL + "/api/v1/labels/env/values")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("labels endpoint status %d", resp.StatusCode)
	}

	// Bad match returns 400.
	resp2, err := http.Get(srv.URL + "/api/v1/query_range?match=bad")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad match should 400, got %d", resp2.StatusCode)
	}

	// /metrics dump parses back.
	resp3, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	dumped, err := ParseExposition(resp3.Body, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dumped) != 2 {
		t.Fatalf("dump series count %d", len(dumped))
	}
}

func TestScraperRunStopsOnCancel(t *testing.T) {
	dir := t.TempDir()
	sd := filepath.Join(dir, "sd.json")
	_ = WriteSDConfig(sd, nil)
	s := NewScraper(New(), sd, 10*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		s.Run(ctx)
		close(done)
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatalf("Run did not stop on cancel")
	}
}

func TestParseExpositionExemplarSuffix(t *testing.T) {
	input := `latency_ms_bucket{le="10"} 7 # {request_id="abc123"} 5.2
latency_ms_bucket{le="+Inf"} 9 1234 # {request_id="def456"} 99
`
	series, err := ParseExposition(strings.NewReader(input), 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series count %d: %+v", len(series), series)
	}
	if series[0].Samples[0].V != 7 || series[0].Samples[0].T != 77 {
		t.Fatalf("exemplar suffix corrupted sample: %+v", series[0].Samples[0])
	}
	// A timestamp before the exemplar still parses.
	if series[1].Samples[0].V != 9 || series[1].Samples[0].T != 1234 {
		t.Fatalf("timestamp+exemplar sample wrong: %+v", series[1].Samples[0])
	}
}
