package tsdb

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"
)

// SDEntry is one entry of the file-based service-discovery configuration —
// the JSON shape quoted in §3 step (1):
//
//	[{"targets": ["IP:PORT"], "labels": {"env": "EM_record_id"}}]
type SDEntry struct {
	Targets []string          `json:"targets"`
	Labels  map[string]string `json:"labels"`
}

// ReadSDConfig parses a service-discovery JSON file.
func ReadSDConfig(path string) ([]SDEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tsdb: read sd config: %w", err)
	}
	var entries []SDEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("tsdb: parse sd config: %w", err)
	}
	return entries, nil
}

// WriteSDConfig writes (atomically via rename) a service-discovery file;
// the workflow appends a new entry whenever a test case starts.
func WriteSDConfig(path string, entries []SDEntry) error {
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return fmt.Errorf("tsdb: marshal sd config: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("tsdb: write sd config: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("tsdb: commit sd config: %w", err)
	}
	return nil
}

// AppendSDTarget adds one target+labels entry to the discovery file,
// creating the file if needed.
func AppendSDTarget(path, target string, labels map[string]string) error {
	entries, err := ReadSDConfig(path)
	if err != nil {
		if !os.IsNotExist(err) && !isNotExistWrapped(err) {
			return err
		}
		entries = nil
	}
	entries = append(entries, SDEntry{Targets: []string{target}, Labels: labels})
	return WriteSDConfig(path, entries)
}

func isNotExistWrapped(err error) bool {
	for err != nil {
		if os.IsNotExist(err) {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Scraper periodically pulls /metrics from discovered targets into a DB,
// attaching the discovery labels to every scraped series.
type Scraper struct {
	DB       *DB
	SDPath   string
	Interval time.Duration
	Client   *http.Client
	// Now supplies the default sample timestamp; overridable in tests.
	Now func() int64
	// Logger, when non-nil, receives scrape failures that were previously
	// swallowed (down targets, unreadable discovery files); attach a
	// component field so a shared stderr stream stays attributable.
	Logger *slog.Logger
	// Concurrency bounds how many targets are scraped in parallel per
	// cycle (default 8). One slow or down backend no longer delays the
	// rest of the fleet's samples by a full client timeout.
	Concurrency int
	// TargetTimeout caps each individual target scrape. Defaults to the
	// scrape interval (so one cycle can't overlap the next) or 5s,
	// whichever is smaller.
	TargetTimeout time.Duration

	mu      sync.Mutex
	scrapes int
	errs    int
}

func (s *Scraper) concurrency() int {
	if s.Concurrency > 0 {
		return s.Concurrency
	}
	return 8
}

func (s *Scraper) targetTimeout() time.Duration {
	if s.TargetTimeout > 0 {
		return s.TargetTimeout
	}
	if s.Interval > 0 && s.Interval < 5*time.Second {
		return s.Interval
	}
	return 5 * time.Second
}

func (s *Scraper) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// NewScraper builds a scraper over db using the discovery file at sdPath.
func NewScraper(db *DB, sdPath string, interval time.Duration) *Scraper {
	return &Scraper{
		DB: db, SDPath: sdPath, Interval: interval,
		Client: &http.Client{Timeout: 5 * time.Second},
		Now:    func() int64 { return time.Now().Unix() },
	}
}

// ScrapeOnce performs one discovery+scrape cycle and returns the number
// of samples ingested. Targets are scraped concurrently through a
// bounded worker pool (see Concurrency), each under its own timeout, so
// a hung backend costs one pool slot for TargetTimeout instead of
// stalling the whole cycle. After the cycle the DB's retention policy
// runs, keeping the storage window bounded.
func (s *Scraper) ScrapeOnce(ctx context.Context) (int, error) {
	entries, err := ReadSDConfig(s.SDPath)
	if err != nil {
		return 0, err
	}
	type job struct {
		target string
		labels map[string]string
	}
	var jobs []job
	for _, e := range entries {
		for _, target := range e.Targets {
			jobs = append(jobs, job{target, e.Labels})
		}
	}
	var (
		wg    sync.WaitGroup
		sem   = make(chan struct{}, s.concurrency())
		total int
	)
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			tctx, cancel := context.WithTimeout(ctx, s.targetTimeout())
			defer cancel()
			n, err := s.scrapeTarget(tctx, j.target, j.labels)
			s.mu.Lock()
			s.scrapes++
			if err != nil {
				s.errs++
			} else {
				total += n
			}
			s.mu.Unlock()
			if err != nil {
				// A down target must not block the others, but it must not
				// vanish silently either.
				s.logger().Warn("target scrape failed", "target", j.target, "err", err)
			}
		}(j)
	}
	wg.Wait()
	s.DB.GC(s.Now())
	return total, nil
}

func (s *Scraper) scrapeTarget(ctx context.Context, target string, extra map[string]string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+target+"/metrics", nil)
	if err != nil {
		return 0, err
	}
	resp, err := s.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("tsdb: scrape %s: status %d", target, resp.StatusCode)
	}
	series, err := ParseExposition(resp.Body, s.Now())
	if err != nil {
		return 0, err
	}
	n := 0
	for _, sr := range series {
		labels := sr.Labels.Clone()
		for k, v := range extra {
			labels[k] = v
		}
		labels["instance"] = target
		for _, smp := range sr.Samples {
			if err := s.DB.Append(labels, smp.T, smp.V); err == nil {
				n++
			}
		}
	}
	return n, nil
}

// Run scrapes on the configured interval until the context is cancelled.
func (s *Scraper) Run(ctx context.Context) {
	ticker := time.NewTicker(s.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if _, err := s.ScrapeOnce(ctx); err != nil {
				s.logger().Error("scrape cycle failed", "sd_path", s.SDPath, "err", err)
			}
		}
	}
}

// Stats returns the scrape and error counters.
func (s *Scraper) Stats() (scrapes, errs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrapes, s.errs
}
