// Package tsdb is a small labelled time-series database standing in for
// Prometheus in the testing workflow (Figure 2): metric samples carry label
// sets (including the EM record id, as in the paper's service-discovery
// snippet), a scraper pulls text-exposition metrics from registered targets,
// and an HTTP API serves range queries to the prediction pipeline.
package tsdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Labels is an immutable-by-convention label set attached to a series.
type Labels map[string]string

// Fingerprint renders the labels deterministically, for use as a series key.
func (l Labels) Fingerprint() string {
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	return b.String()
}

// Clone returns a copy of the label set.
func (l Labels) Clone() Labels {
	c := make(Labels, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// Matches reports whether every matcher key/value is present in l. An empty
// matcher matches everything.
func (l Labels) Matches(matcher Labels) bool {
	for k, v := range matcher {
		if l[k] != v {
			return false
		}
	}
	return true
}

// Sample is one timestamped value.
type Sample struct {
	T int64   // unix seconds
	V float64 // value
}

// Series is an ordered sample stream with a label identity.
type Series struct {
	Labels  Labels
	Samples []Sample
}

// DB is a concurrency-safe in-memory TSDB. Retention is bounded two
// ways: a time window enforced by GC (SetRetention) and a hard
// per-series sample cap enforced at append time
// (SetMaxSamplesPerSeries), so an unattended daemon cannot grow without
// limit.
type DB struct {
	mu           sync.RWMutex
	series       map[string]*Series
	retentionSec int64 // 0 = keep everything
	maxSamples   int   // 0 = unlimited
	evicted      uint64
}

// New returns an empty database with unlimited retention.
func New() *DB {
	return &DB{series: make(map[string]*Series)}
}

// SetRetention sets the time window GC keeps, in seconds; 0 disables
// time-based eviction.
func (db *DB) SetRetention(sec int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.retentionSec = sec
}

// SetMaxSamplesPerSeries caps each series' sample count; appends beyond
// the cap evict the oldest samples. 0 disables the cap.
func (db *DB) SetMaxSamplesPerSeries(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.maxSamples = n
}

// EvictedSamples returns the total number of samples dropped by the
// retention window and the per-series cap (exposed by tsdbd as
// tsdb_evicted_samples_total).
func (db *DB) EvictedSamples() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.evicted
}

// GC drops samples older than now minus the retention window, and
// deletes series left empty. It returns the number of samples evicted
// in this pass; a no-op without a configured retention.
func (db *DB) GC(now int64) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.retentionSec <= 0 {
		return 0
	}
	cutoff := now - db.retentionSec
	dropped := 0
	for fp, s := range db.series {
		lo := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T >= cutoff })
		if lo == 0 {
			continue
		}
		dropped += lo
		if lo == len(s.Samples) {
			delete(db.series, fp)
			continue
		}
		// Reallocate rather than re-slice so the evicted prefix is freed.
		s.Samples = append([]Sample(nil), s.Samples[lo:]...)
	}
	db.evicted += uint64(dropped)
	return dropped
}

// Append adds a sample to the series identified by labels, creating it on
// first use. Out-of-order samples (older than the series head) are rejected,
// matching the ingestion rule of real TSDBs.
func (db *DB) Append(labels Labels, t int64, v float64) error {
	fp := labels.Fingerprint()
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[fp]
	if !ok {
		s = &Series{Labels: labels.Clone()}
		db.series[fp] = s
	}
	if n := len(s.Samples); n > 0 && t < s.Samples[n-1].T {
		return fmt.Errorf("tsdb: out-of-order sample t=%d < head=%d for {%s}", t, s.Samples[n-1].T, fp)
	}
	s.Samples = append(s.Samples, Sample{T: t, V: v})
	if db.maxSamples > 0 && len(s.Samples) > db.maxSamples {
		over := len(s.Samples) - db.maxSamples
		s.Samples = append([]Sample(nil), s.Samples[over:]...)
		db.evicted += uint64(over)
	}
	return nil
}

// Query returns copies of all series whose labels contain matcher, with
// samples restricted to [from, to] (inclusive; pass from>to for none,
// from=0,to=MaxInt64 for all). Results are ordered by fingerprint.
func (db *DB) Query(matcher Labels, from, to int64) []Series {
	db.mu.RLock()
	defer db.mu.RUnlock()
	fps := make([]string, 0, len(db.series))
	for fp, s := range db.series {
		if s.Labels.Matches(matcher) {
			fps = append(fps, fp)
		}
	}
	sort.Strings(fps)
	var out []Series
	for _, fp := range fps {
		s := db.series[fp]
		lo := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T >= from })
		hi := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].T > to })
		if lo >= hi {
			continue
		}
		cp := Series{Labels: s.Labels.Clone(), Samples: append([]Sample(nil), s.Samples[lo:hi]...)}
		out = append(out, cp)
	}
	return out
}

// Latest returns the most recent sample of the single series matching the
// labels exactly; ok is false when the series is absent or empty.
func (db *DB) Latest(labels Labels) (Sample, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.series[labels.Fingerprint()]
	if !ok || len(s.Samples) == 0 {
		return Sample{}, false
	}
	return s.Samples[len(s.Samples)-1], true
}

// NumSeries returns the number of distinct series stored.
func (db *DB) NumSeries() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.series)
}

// LabelValues returns the sorted distinct values of a label key across all
// series.
func (db *DB) LabelValues(key string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	set := make(map[string]bool)
	for _, s := range db.series {
		if v, ok := s.Labels[key]; ok {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
