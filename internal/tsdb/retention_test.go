package tsdb

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetentionGC: samples older than the window are dropped, empty
// series deleted, and the eviction counter advances.
func TestRetentionGC(t *testing.T) {
	db := New()
	db.SetRetention(100)
	old := Labels{"__name__": "stale"}
	live := Labels{"__name__": "fresh"}
	for ts := int64(0); ts <= 50; ts += 10 {
		if err := db.Append(old, ts, 1); err != nil {
			t.Fatal(err)
		}
	}
	for ts := int64(0); ts <= 200; ts += 10 {
		if err := db.Append(live, ts, 2); err != nil {
			t.Fatal(err)
		}
	}

	dropped := db.GC(250) // cutoff 150: all of "stale", part of "fresh"
	if dropped == 0 {
		t.Fatal("GC dropped nothing")
	}
	if db.NumSeries() != 1 {
		t.Fatalf("empty series should be deleted, have %d", db.NumSeries())
	}
	got := db.Query(Labels{"__name__": "fresh"}, 0, 1<<62)
	if len(got) != 1 {
		t.Fatal("fresh series missing")
	}
	for _, s := range got[0].Samples {
		if s.T < 150 {
			t.Fatalf("sample t=%d survived cutoff 150", s.T)
		}
	}
	if db.EvictedSamples() != uint64(dropped) {
		t.Fatalf("evicted counter %d != dropped %d", db.EvictedSamples(), dropped)
	}
	// Appending after GC still works (head preserved).
	if err := db.Append(live, 260, 3); err != nil {
		t.Fatal(err)
	}
}

// TestMaxSamplesCap: the per-series cap evicts from the front at append
// time, keeping the newest samples.
func TestMaxSamplesCap(t *testing.T) {
	db := New()
	db.SetMaxSamplesPerSeries(5)
	lbl := Labels{"__name__": "capped"}
	for ts := int64(1); ts <= 20; ts++ {
		if err := db.Append(lbl, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	got := db.Query(Labels{}, 0, 1<<62)
	if len(got) != 1 || len(got[0].Samples) != 5 {
		t.Fatalf("want 5 samples, got %v", got)
	}
	if got[0].Samples[0].T != 16 || got[0].Samples[4].T != 20 {
		t.Fatalf("cap kept wrong window: %v", got[0].Samples)
	}
	if db.EvictedSamples() != 15 {
		t.Fatalf("evicted = %d, want 15", db.EvictedSamples())
	}
}

// TestScrapeParallel: targets are scraped concurrently (peak in-flight
// > 1), a slow target doesn't stall the cycle beyond its own timeout,
// and all samples still land with correct instance labels.
func TestScrapeParallel(t *testing.T) {
	const targets = 6
	var inflight, peak atomic.Int64
	var mu sync.Mutex
	updatePeak := func() {
		mu.Lock()
		defer mu.Unlock()
		if c := inflight.Load(); c > peak.Load() {
			peak.Store(c)
		}
	}
	release := make(chan struct{})
	var servers []*httptest.Server
	var addrs []string
	for i := 0; i < targets; i++ {
		i := i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			inflight.Add(1)
			updatePeak()
			<-release // hold all requests until every worker has arrived
			inflight.Add(-1)
			fmt.Fprintf(w, "probe_metric %d\n", i)
		}))
		defer srv.Close()
		servers = append(servers, srv)
		addrs = append(addrs, strings.TrimPrefix(srv.URL, "http://"))
	}
	// With all requests blocked, a serial scraper would deadlock here;
	// the pool lets `targets` requests arrive, then we release them.
	go func() {
		deadline := time.After(5 * time.Second)
		for {
			if inflight.Load() == targets {
				close(release)
				return
			}
			select {
			case <-deadline:
				close(release)
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()

	dir := t.TempDir()
	sd := filepath.Join(dir, "sd.json")
	if err := WriteSDConfig(sd, []SDEntry{{Targets: addrs, Labels: map[string]string{"env": "rec1"}}}); err != nil {
		t.Fatal(err)
	}
	s := NewScraper(New(), sd, time.Second)
	s.Concurrency = targets
	n, err := s.ScrapeOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != targets {
		t.Fatalf("ingested %d samples, want %d", n, targets)
	}
	if got := peak.Load(); got < 2 {
		t.Fatalf("peak in-flight %d; scrapes did not overlap", got)
	}
	for _, addr := range addrs {
		if _, ok := s.DB.Latest(Labels{"__name__": "probe_metric", "env": "rec1", "instance": addr}); !ok {
			t.Fatalf("no sample for instance %s", addr)
		}
	}
}

// TestScrapeTargetTimeout: a hung target is cut off by TargetTimeout
// and counted as an error while healthy targets still land.
func TestScrapeTargetTimeout(t *testing.T) {
	hung := make(chan struct{})
	defer close(hung)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-hung:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok_metric 1")
	}))
	defer fast.Close()

	dir := t.TempDir()
	sd := filepath.Join(dir, "sd.json")
	err := WriteSDConfig(sd, []SDEntry{{
		Targets: []string{strings.TrimPrefix(slow.URL, "http://"), strings.TrimPrefix(fast.URL, "http://")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := NewScraper(New(), sd, time.Second)
	s.TargetTimeout = 50 * time.Millisecond
	start := time.Now()
	n, err := s.ScrapeOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cycle took %v; timeout not applied", elapsed)
	}
	if n != 1 {
		t.Fatalf("ingested %d, want 1 (fast target only)", n)
	}
	if _, errs := s.Stats(); errs != 1 {
		t.Fatalf("errs = %d, want 1", errs)
	}
}

// TestScrapeGCIntegration: a retention-configured DB is pruned as part
// of the scrape cycle.
func TestScrapeGCIntegration(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "cycle_metric 1")
	}))
	defer srv.Close()
	dir := t.TempDir()
	sd := filepath.Join(dir, "sd.json")
	if err := WriteSDConfig(sd, []SDEntry{{Targets: []string{strings.TrimPrefix(srv.URL, "http://")}}}); err != nil {
		t.Fatal(err)
	}
	db := New()
	db.SetRetention(30)
	s := NewScraper(db, sd, time.Second)
	now := int64(1000)
	s.Now = func() int64 { return now }
	for i := 0; i < 5; i++ {
		if _, err := s.ScrapeOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		now += 60 // each cycle ages past the 30s window
	}
	// Only the newest sample can be within the window after the final GC.
	got := db.Query(Labels{"__name__": "cycle_metric"}, 0, 1<<62)
	if len(got) != 1 || len(got[0].Samples) != 1 {
		t.Fatalf("retention during scrape not applied: %v", got)
	}
	if db.EvictedSamples() == 0 {
		t.Fatal("no evictions recorded")
	}
}
