package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file is the query engine that turns the passive sample sink into a
// monitoring plane: a small PromQL-flavoured evaluator over stored series.
// Supported surface (see docs/observability.md "Monitoring plane"):
//
//	metric{label="v"}                     instant selector (staleness Lookback)
//	rate(sel[5m]) / increase(sel[5m])     counter semantics with reset detection
//	sum/avg/min/max/count by (l1,l2) (e)  label aggregation
//	histogram_quantile(0.99, e)           from cumulative _bucket series
//	e1 + - * / e2                         one-to-one on label identity
//	e1 > < >= <= == != e2                 filters (vector cmp scalar/vector)
//	e1 and e2                             intersection on label identity
//
// Deliberate deviations from Prometheus, chosen for a hand-checkable spec:
// rate() divides the reset-adjusted delta by the observed sample span (no
// range extrapolation), and increase() returns the reset-adjusted delta
// itself. Both need at least two samples in the window.

// Point is one element of an instant vector: a label identity and a value.
type Point struct {
	Labels Labels
	V      float64
}

// Vector is the result of evaluating an expression at one instant.
type Vector []Point

// Engine evaluates expressions against a DB.
type Engine struct {
	DB *DB
	// Lookback is the staleness window for instant selectors: the newest
	// sample within (t-Lookback, t] represents the series at t. Default 5m.
	Lookback time.Duration
}

// NewEngine returns an engine with the default staleness window.
func NewEngine(db *DB) *Engine { return &Engine{DB: db, Lookback: 5 * time.Minute} }

func (e *Engine) lookbackSec() int64 {
	if e.Lookback <= 0 {
		return 300
	}
	return int64(e.Lookback / time.Second)
}

// Instant parses and evaluates expr at time ts (unix seconds). A scalar
// result becomes a single point with empty labels.
func (e *Engine) Instant(expr string, ts int64) (Vector, error) {
	n, err := ParseExpr(expr)
	if err != nil {
		return nil, err
	}
	return e.evalInstant(n, ts)
}

// Range evaluates expr at each step in [from, to] (inclusive) and assembles
// the per-instant vectors into series keyed by label identity. NaN points
// are skipped.
func (e *Engine) Range(expr string, from, to, step int64) ([]Series, error) {
	if step <= 0 {
		return nil, fmt.Errorf("tsdb: query step must be positive, got %d", step)
	}
	if to < from {
		return nil, fmt.Errorf("tsdb: query range end %d before start %d", to, from)
	}
	if (to-from)/step > 10000 {
		return nil, fmt.Errorf("tsdb: query resolves to more than 10000 steps; raise step or narrow the range")
	}
	n, err := ParseExpr(expr)
	if err != nil {
		return nil, err
	}
	byFP := make(map[string]*Series)
	var order []string
	for ts := from; ts <= to; ts += step {
		vec, err := e.evalInstant(n, ts)
		if err != nil {
			return nil, err
		}
		for _, p := range vec {
			if math.IsNaN(p.V) {
				continue
			}
			fp := p.Labels.Fingerprint()
			s, ok := byFP[fp]
			if !ok {
				s = &Series{Labels: p.Labels.Clone()}
				byFP[fp] = s
				order = append(order, fp)
			}
			s.Samples = append(s.Samples, Sample{T: ts, V: p.V})
		}
	}
	sort.Strings(order)
	out := make([]Series, 0, len(order))
	for _, fp := range order {
		out = append(out, *byFP[fp])
	}
	return out, nil
}

// ── AST ─────────────────────────────────────────────────────────────────

type exprNode interface{ exprString() string }

type numberNode float64

type selectorNode struct {
	name     string
	matchers Labels
	rangeSec int64 // >0 only inside rate()/increase()
}

type callNode struct {
	fn  string // rate | increase | histogram_quantile
	q   float64
	arg exprNode
}

type aggNode struct {
	op  string // sum | avg | min | max | count
	by  []string
	arg exprNode
}

type binNode struct {
	op       string
	lhs, rhs exprNode
}

func (n numberNode) exprString() string { return strconv.FormatFloat(float64(n), 'g', -1, 64) }
func (n *selectorNode) exprString() string {
	s := n.name
	if len(n.matchers) > 0 {
		s += "{" + n.matchers.Fingerprint() + "}"
	}
	if n.rangeSec > 0 {
		s += "[" + strconv.FormatInt(n.rangeSec, 10) + "s]"
	}
	return s
}
func (n *callNode) exprString() string { return n.fn + "(...)" }
func (n *aggNode) exprString() string  { return n.op + "(...)" }
func (n *binNode) exprString() string {
	return "(" + n.lhs.exprString() + n.op + n.rhs.exprString() + ")"
}

// ── Lexer ───────────────────────────────────────────────────────────────

type token struct {
	kind string // ident, number, string, op, punct, eof
	text string
	pos  int
}

func isIdentStart(c byte) bool {
	return c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func lex(in string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(in) {
		c := in[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			j := i + 1
			for j < len(in) && isIdentPart(in[j]) {
				j++
			}
			toks = append(toks, token{"ident", in[i:j], i})
			i = j
		case c >= '0' && c <= '9' || c == '.':
			j := i + 1
			for j < len(in) && (in[j] >= '0' && in[j] <= '9' || in[j] == '.' || in[j] == 'e' || in[j] == 'E' ||
				((in[j] == '+' || in[j] == '-') && (in[j-1] == 'e' || in[j-1] == 'E'))) {
				j++
			}
			// A duration like 5m inside brackets: digits followed by a unit
			// letter. Lex the unit into the number token and sort it out in
			// the parser (only valid in a range selector).
			for j < len(in) && (in[j] == 's' || in[j] == 'm' || in[j] == 'h' || in[j] == 'd' ||
				(in[j] >= '0' && in[j] <= '9')) {
				j++
			}
			toks = append(toks, token{"number", in[i:j], i})
			i = j
		case c == '"':
			j := i + 1
			for j < len(in) && in[j] != '"' {
				if in[j] == '\\' {
					j++
				}
				j++
			}
			if j >= len(in) {
				return nil, fmt.Errorf("tsdb: unterminated string at %d", i)
			}
			toks = append(toks, token{"string", in[i+1 : j], i})
			i = j + 1
		case strings.ContainsRune("{}()[],", rune(c)):
			toks = append(toks, token{"punct", string(c), i})
			i++
		case strings.ContainsRune("+-*/=<>!", rune(c)):
			j := i + 1
			if j < len(in) && in[j] == '=' && (c == '<' || c == '>' || c == '=' || c == '!') {
				j++
			}
			toks = append(toks, token{"op", in[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("tsdb: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: "eof", pos: len(in)})
	return toks, nil
}

// ── Parser ──────────────────────────────────────────────────────────────

type parser struct {
	toks []token
	pos  int
}

// ParseExpr parses a query expression into an evaluable AST, validating
// function arities and range-selector placement.
func ParseExpr(in string) (exprNode, error) {
	if strings.TrimSpace(in) == "" {
		return nil, fmt.Errorf("tsdb: empty query expression")
	}
	toks, err := lex(in)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	n, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != "eof" {
		return nil, fmt.Errorf("tsdb: unexpected %q at %d", t.text, t.pos)
	}
	if err := validate(n, false); err != nil {
		return nil, err
	}
	return n, nil
}

// validate rejects range selectors anywhere but directly under rate() or
// increase().
func validate(n exprNode, underRange bool) error {
	switch v := n.(type) {
	case *selectorNode:
		if v.rangeSec > 0 && !underRange {
			return fmt.Errorf("tsdb: range selector %s only valid inside rate() or increase()", v.exprString())
		}
		if v.rangeSec == 0 && underRange {
			return fmt.Errorf("tsdb: rate()/increase() need a range selector like %s[5m]", v.name)
		}
	case *callNode:
		if v.fn == "rate" || v.fn == "increase" {
			sel, ok := v.arg.(*selectorNode)
			if !ok {
				return fmt.Errorf("tsdb: %s() takes a range selector argument", v.fn)
			}
			return validate(sel, true)
		}
		return validate(v.arg, false)
	case *aggNode:
		return validate(v.arg, false)
	case *binNode:
		if err := validate(v.lhs, false); err != nil {
			return err
		}
		return validate(v.rhs, false)
	}
	return nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) expect(kind, text string) (token, error) {
	t := p.next()
	if t.kind != kind || (text != "" && t.text != text) {
		return t, fmt.Errorf("tsdb: expected %q at %d, got %q", text, t.pos, t.text)
	}
	return t, nil
}

// Precedence (loosest to tightest): and, comparisons, + -, * /.
func (p *parser) parseExpr() (exprNode, error) { return p.parseAnd() }

func (p *parser) parseAnd() (exprNode, error) {
	lhs, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == "ident" && p.peek().text == "and" {
		p.next()
		rhs, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		lhs = &binNode{op: "and", lhs: lhs, rhs: rhs}
	}
	return lhs, nil
}

func (p *parser) parseCmp() (exprNode, error) {
	lhs, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == "op" && isCmpOp(t.text) {
		p.next()
		rhs, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &binNode{op: t.text, lhs: lhs, rhs: rhs}, nil
	}
	return lhs, nil
}

func isCmpOp(op string) bool {
	switch op {
	case ">", "<", ">=", "<=", "==", "!=":
		return true
	}
	return false
}

func (p *parser) parseAdd() (exprNode, error) {
	lhs, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != "op" || (t.text != "+" && t.text != "-") {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		lhs = &binNode{op: t.text, lhs: lhs, rhs: rhs}
	}
}

func (p *parser) parseMul() (exprNode, error) {
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != "op" || (t.text != "*" && t.text != "/") {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		lhs = &binNode{op: t.text, lhs: lhs, rhs: rhs}
	}
}

func (p *parser) parsePrimary() (exprNode, error) {
	t := p.peek()
	switch {
	case t.kind == "number":
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("tsdb: bad number %q at %d", t.text, t.pos)
		}
		return numberNode(v), nil
	case t.kind == "op" && t.text == "-":
		p.next()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		num, ok := inner.(numberNode)
		if !ok {
			return nil, fmt.Errorf("tsdb: unary minus only applies to numbers (at %d)", t.pos)
		}
		return numberNode(-float64(num)), nil
	case t.kind == "punct" && t.text == "(":
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("punct", ")"); err != nil {
			return nil, err
		}
		return inner, nil
	case t.kind == "ident":
		return p.parseIdent()
	}
	return nil, fmt.Errorf("tsdb: unexpected %q at %d", t.text, t.pos)
}

func (p *parser) parseIdent() (exprNode, error) {
	t := p.next()
	switch t.text {
	case "sum", "avg", "min", "max", "count":
		return p.parseAgg(t.text)
	case "rate", "increase":
		if _, err := p.expect("punct", "("); err != nil {
			return nil, err
		}
		sel, err := p.parseSelector()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("punct", ")"); err != nil {
			return nil, err
		}
		return &callNode{fn: t.text, arg: sel}, nil
	case "histogram_quantile":
		if _, err := p.expect("punct", "("); err != nil {
			return nil, err
		}
		qTok, err := p.expect("number", "")
		if err != nil {
			return nil, fmt.Errorf("tsdb: histogram_quantile wants a numeric quantile first: %w", err)
		}
		q, err := strconv.ParseFloat(qTok.text, 64)
		if err != nil || q < 0 || q > 1 {
			return nil, fmt.Errorf("tsdb: histogram_quantile quantile %q out of [0,1]", qTok.text)
		}
		if _, err := p.expect("punct", ","); err != nil {
			return nil, err
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("punct", ")"); err != nil {
			return nil, err
		}
		return &callNode{fn: "histogram_quantile", q: q, arg: arg}, nil
	default:
		p.pos-- // selector consumes its own name token
		return p.parseSelector()
	}
}

func (p *parser) parseAgg(op string) (exprNode, error) {
	n := &aggNode{op: op}
	if t := p.peek(); t.kind == "ident" && t.text == "by" {
		p.next()
		if _, err := p.expect("punct", "("); err != nil {
			return nil, err
		}
		for {
			lt, err := p.expect("ident", "")
			if err != nil {
				return nil, err
			}
			n.by = append(n.by, lt.text)
			if p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect("punct", ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect("punct", "("); err != nil {
		return nil, err
	}
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("punct", ")"); err != nil {
		return nil, err
	}
	n.arg = arg
	return n, nil
}

func (p *parser) parseSelector() (exprNode, error) {
	t, err := p.expect("ident", "")
	if err != nil {
		return nil, fmt.Errorf("tsdb: expected a metric name at %d", t.pos)
	}
	sel := &selectorNode{name: t.text, matchers: Labels{}}
	if p.peek().text == "{" {
		p.next()
		for p.peek().text != "}" {
			k, err := p.expect("ident", "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("op", "="); err != nil {
				return nil, fmt.Errorf("tsdb: label matchers are equality-only: %w", err)
			}
			v, err := p.expect("string", "")
			if err != nil {
				return nil, err
			}
			sel.matchers[k.text] = v.text
			if p.peek().text == "," {
				p.next()
			}
		}
		p.next() // consume }
	}
	if p.peek().text == "[" {
		p.next()
		d, err := p.expect("number", "")
		if err != nil {
			return nil, err
		}
		dur, err := parseDuration(d.text)
		if err != nil {
			return nil, err
		}
		sel.rangeSec = dur
		if _, err := p.expect("punct", "]"); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

// parseDuration understands 30s / 5m / 1h / 2d and bare seconds.
func parseDuration(s string) (int64, error) {
	mult := int64(1)
	num := s
	switch {
	case strings.HasSuffix(s, "s"):
		num = s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		num, mult = s[:len(s)-1], 60
	case strings.HasSuffix(s, "h"):
		num, mult = s[:len(s)-1], 3600
	case strings.HasSuffix(s, "d"):
		num, mult = s[:len(s)-1], 86400
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("tsdb: bad duration %q", s)
	}
	return n * mult, nil
}

// ── Evaluator ───────────────────────────────────────────────────────────

// value is either a scalar (float64) or a Vector.
type value struct {
	scalar float64
	vec    Vector
	isVec  bool
}

func scalarVal(v float64) value { return value{scalar: v} }
func vecVal(v Vector) value     { return value{vec: v, isVec: true} }

func (e *Engine) evalInstant(n exprNode, ts int64) (Vector, error) {
	v, err := e.eval(n, ts)
	if err != nil {
		return nil, err
	}
	if !v.isVec {
		return Vector{{Labels: Labels{}, V: v.scalar}}, nil
	}
	return v.vec, nil
}

func (e *Engine) eval(n exprNode, ts int64) (value, error) {
	switch node := n.(type) {
	case numberNode:
		return scalarVal(float64(node)), nil
	case *selectorNode:
		return vecVal(e.evalSelector(node, ts)), nil
	case *callNode:
		return e.evalCall(node, ts)
	case *aggNode:
		return e.evalAgg(node, ts)
	case *binNode:
		return e.evalBin(node, ts)
	}
	return value{}, fmt.Errorf("tsdb: unknown expression node %T", n)
}

// evalSelector resolves an instant selector: the newest sample of each
// matching series within the staleness window.
func (e *Engine) evalSelector(sel *selectorNode, ts int64) Vector {
	matcher := sel.matchers.Clone()
	matcher["__name__"] = sel.name
	series := e.DB.Query(matcher, ts-e.lookbackSec(), ts)
	var out Vector
	for _, s := range series {
		if len(s.Samples) == 0 {
			continue
		}
		out = append(out, Point{Labels: s.Labels, V: s.Samples[len(s.Samples)-1].V})
	}
	return out
}

func (e *Engine) evalCall(c *callNode, ts int64) (value, error) {
	switch c.fn {
	case "rate", "increase":
		sel := c.arg.(*selectorNode) // guaranteed by validate
		matcher := sel.matchers.Clone()
		matcher["__name__"] = sel.name
		series := e.DB.Query(matcher, ts-sel.rangeSec, ts)
		var out Vector
		for _, s := range series {
			if len(s.Samples) < 2 {
				continue
			}
			delta := counterDelta(s.Samples)
			dt := s.Samples[len(s.Samples)-1].T - s.Samples[0].T
			if dt <= 0 {
				continue
			}
			v := delta
			if c.fn == "rate" {
				v = delta / float64(dt)
			}
			out = append(out, Point{Labels: dropName(s.Labels), V: v})
		}
		return vecVal(out), nil
	case "histogram_quantile":
		arg, err := e.eval(c.arg, ts)
		if err != nil {
			return value{}, err
		}
		if !arg.isVec {
			return value{}, fmt.Errorf("tsdb: histogram_quantile needs a vector of _bucket series")
		}
		return vecVal(histogramQuantile(c.q, arg.vec)), nil
	}
	return value{}, fmt.Errorf("tsdb: unknown function %q", c.fn)
}

// counterDelta sums the increases of a counter over the window, detecting
// resets: whenever a sample is below its predecessor the counter restarted,
// so the predecessor's value is added to the running offset (the standard
// Prometheus adjustment).
func counterDelta(samples []Sample) float64 {
	first := samples[0].V
	prev := first
	offset := 0.0
	for _, s := range samples[1:] {
		if s.V < prev {
			offset += prev
		}
		prev = s.V
	}
	return prev - first + offset
}

func dropName(l Labels) Labels {
	out := make(Labels, len(l))
	for k, v := range l {
		if k != "__name__" {
			out[k] = v
		}
	}
	return out
}

// histogramQuantile reconstructs the q-quantile per bucket group. Input
// points carry an le label with the bucket's upper bound and cumulative
// counts (or cumulative rates — any monotone-in-le quantity works). The
// result interpolates linearly within the located bucket; a quantile landing
// in the +Inf bucket returns the highest finite bound.
func histogramQuantile(q float64, vec Vector) Vector {
	type bucket struct {
		le  float64
		cum float64
	}
	groups := make(map[string][]bucket)
	groupLabels := make(map[string]Labels)
	for _, p := range vec {
		leStr, ok := p.Labels["le"]
		if !ok {
			continue
		}
		le, err := parseLE(leStr)
		if err != nil {
			continue
		}
		rest := make(Labels, len(p.Labels))
		for k, v := range p.Labels {
			if k != "le" && k != "__name__" {
				rest[k] = v
			}
		}
		fp := rest.Fingerprint()
		groups[fp] = append(groups[fp], bucket{le: le, cum: p.V})
		groupLabels[fp] = rest
	}
	fps := make([]string, 0, len(groups))
	for fp := range groups {
		fps = append(fps, fp)
	}
	sort.Strings(fps)
	var out Vector
	for _, fp := range fps {
		bs := groups[fp]
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		// Enforce monotonicity: scraped cumulative counts can jitter when
		// buckets of one histogram land in different scrape cycles.
		for i := 1; i < len(bs); i++ {
			if bs[i].cum < bs[i-1].cum {
				bs[i].cum = bs[i-1].cum
			}
		}
		total := bs[len(bs)-1].cum
		if total <= 0 || len(bs) < 2 {
			continue
		}
		rank := q * total
		idx := sort.Search(len(bs), func(i int) bool { return bs[i].cum >= rank })
		if idx >= len(bs) {
			idx = len(bs) - 1
		}
		var v float64
		if math.IsInf(bs[idx].le, 1) {
			v = bs[idx-1].le // quantile beyond the last finite bound
		} else {
			lower, prevCum := 0.0, 0.0
			if idx > 0 {
				lower, prevCum = bs[idx-1].le, bs[idx-1].cum
			}
			width := bs[idx].le - lower
			inBucket := bs[idx].cum - prevCum
			if inBucket <= 0 {
				v = bs[idx].le
			} else {
				v = lower + width*(rank-prevCum)/inBucket
			}
		}
		out = append(out, Point{Labels: groupLabels[fp], V: v})
	}
	return out
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" || s == "Inf" || s == "inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func (e *Engine) evalAgg(a *aggNode, ts int64) (value, error) {
	arg, err := e.eval(a.arg, ts)
	if err != nil {
		return value{}, err
	}
	if !arg.isVec {
		return value{}, fmt.Errorf("tsdb: %s() aggregates a vector, got a scalar", a.op)
	}
	type group struct {
		labels        Labels
		sum, min, max float64
		n             int
	}
	groups := make(map[string]*group)
	var order []string
	for _, p := range arg.vec {
		kept := Labels{}
		for _, k := range a.by {
			if v, ok := p.Labels[k]; ok {
				kept[k] = v
			}
		}
		fp := kept.Fingerprint()
		g, ok := groups[fp]
		if !ok {
			g = &group{labels: kept, min: math.Inf(1), max: math.Inf(-1)}
			groups[fp] = g
			order = append(order, fp)
		}
		g.sum += p.V
		if p.V < g.min {
			g.min = p.V
		}
		if p.V > g.max {
			g.max = p.V
		}
		g.n++
	}
	sort.Strings(order)
	out := make(Vector, 0, len(order))
	for _, fp := range order {
		g := groups[fp]
		var v float64
		switch a.op {
		case "sum":
			v = g.sum
		case "avg":
			v = g.sum / float64(g.n)
		case "min":
			v = g.min
		case "max":
			v = g.max
		case "count":
			v = float64(g.n)
		}
		out = append(out, Point{Labels: g.labels, V: v})
	}
	return vecVal(out), nil
}

func (e *Engine) evalBin(b *binNode, ts int64) (value, error) {
	lhs, err := e.eval(b.lhs, ts)
	if err != nil {
		return value{}, err
	}
	rhs, err := e.eval(b.rhs, ts)
	if err != nil {
		return value{}, err
	}
	if b.op == "and" {
		if !lhs.isVec || !rhs.isVec {
			return value{}, fmt.Errorf("tsdb: 'and' needs vectors on both sides")
		}
		seen := make(map[string]bool, len(rhs.vec))
		for _, p := range rhs.vec {
			seen[dropName(p.Labels).Fingerprint()] = true
		}
		var out Vector
		for _, p := range lhs.vec {
			if seen[dropName(p.Labels).Fingerprint()] {
				out = append(out, p)
			}
		}
		return vecVal(out), nil
	}
	if isCmpOp(b.op) {
		return evalCmp(b.op, lhs, rhs)
	}
	return evalArith(b.op, lhs, rhs)
}

func applyArith(op string, l, r float64) (float64, bool) {
	switch op {
	case "+":
		return l + r, true
	case "-":
		return l - r, true
	case "*":
		return l * r, true
	case "/":
		if r == 0 {
			return 0, false // drop the element instead of emitting ±Inf/NaN
		}
		return l / r, true
	}
	return 0, false
}

func evalArith(op string, lhs, rhs value) (value, error) {
	switch {
	case !lhs.isVec && !rhs.isVec:
		v, ok := applyArith(op, lhs.scalar, rhs.scalar)
		if !ok && op == "/" {
			return scalarVal(math.NaN()), nil
		}
		return scalarVal(v), nil
	case lhs.isVec && !rhs.isVec:
		var out Vector
		for _, p := range lhs.vec {
			if v, ok := applyArith(op, p.V, rhs.scalar); ok {
				out = append(out, Point{Labels: dropName(p.Labels), V: v})
			}
		}
		return vecVal(out), nil
	case !lhs.isVec && rhs.isVec:
		var out Vector
		for _, p := range rhs.vec {
			if v, ok := applyArith(op, lhs.scalar, p.V); ok {
				out = append(out, Point{Labels: dropName(p.Labels), V: v})
			}
		}
		return vecVal(out), nil
	}
	// vector ∘ vector: one-to-one on label identity ignoring __name__.
	rIdx := make(map[string]float64, len(rhs.vec))
	for _, p := range rhs.vec {
		rIdx[dropName(p.Labels).Fingerprint()] = p.V
	}
	var out Vector
	for _, p := range lhs.vec {
		stripped := dropName(p.Labels)
		rv, ok := rIdx[stripped.Fingerprint()]
		if !ok {
			continue
		}
		if v, ok := applyArith(op, p.V, rv); ok {
			out = append(out, Point{Labels: stripped, V: v})
		}
	}
	return vecVal(out), nil
}

func cmpTrue(op string, l, r float64) bool {
	switch op {
	case ">":
		return l > r
	case "<":
		return l < r
	case ">=":
		return l >= r
	case "<=":
		return l <= r
	case "==":
		return l == r
	case "!=":
		return l != r
	}
	return false
}

// evalCmp filters: vector elements that satisfy the comparison survive with
// their value; non-satisfying elements are dropped (Prometheus semantics).
func evalCmp(op string, lhs, rhs value) (value, error) {
	switch {
	case !lhs.isVec && !rhs.isVec:
		if cmpTrue(op, lhs.scalar, rhs.scalar) {
			return scalarVal(1), nil
		}
		return scalarVal(0), nil
	case lhs.isVec && !rhs.isVec:
		var out Vector
		for _, p := range lhs.vec {
			if cmpTrue(op, p.V, rhs.scalar) {
				out = append(out, p)
			}
		}
		return vecVal(out), nil
	case !lhs.isVec && rhs.isVec:
		var out Vector
		for _, p := range rhs.vec {
			if cmpTrue(op, lhs.scalar, p.V) {
				out = append(out, p)
			}
		}
		return vecVal(out), nil
	}
	rIdx := make(map[string]float64, len(rhs.vec))
	for _, p := range rhs.vec {
		rIdx[dropName(p.Labels).Fingerprint()] = p.V
	}
	var out Vector
	for _, p := range lhs.vec {
		rv, ok := rIdx[dropName(p.Labels).Fingerprint()]
		if ok && cmpTrue(op, p.V, rv) {
			out = append(out, p)
		}
	}
	return vecVal(out), nil
}
