package tsdb

import (
	"strings"
	"testing"
)

// FuzzParseExposition checks the text-exposition parser never panics and
// that everything it accepts survives a write→parse round trip.
func FuzzParseExposition(f *testing.F) {
	f.Add("cpu_usage{env=\"e1\"} 42.5 1000\n")
	f.Add("m 1\n# comment\n\nm2{a=\"b\",c=\"d\"} 3 4\n")
	f.Add("{} 1")
	f.Add("name{unterminated 5")
	f.Add("x nan")
	f.Add("x 1 2 3")
	f.Fuzz(func(t *testing.T, input string) {
		series, err := ParseExposition(strings.NewReader(input), 7)
		if err != nil {
			return
		}
		var b strings.Builder
		if err := WriteExposition(&b, series); err != nil {
			t.Fatalf("accepted input failed to re-serialize: %v", err)
		}
		again, err := ParseExposition(strings.NewReader(b.String()), 7)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v\noriginal: %q\nwritten: %q", err, input, b.String())
		}
		count := func(ss []Series) int {
			n := 0
			for _, s := range ss {
				n += len(s.Samples)
			}
			return n
		}
		if count(again) != count(series) {
			t.Fatalf("round trip changed sample count: %d -> %d", count(series), count(again))
		}
	})
}
