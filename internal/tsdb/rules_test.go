package tsdb

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"env2vec/internal/anomaly"
)

// memSink collects pushed alarms for assertions.
type memSink struct {
	mu     sync.Mutex
	alarms []anomaly.Alarm
}

func (s *memSink) Push(a anomaly.Alarm, createdAt int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alarms = append(s.alarms, a)
	return nil
}

func (s *memSink) all() []anomaly.Alarm {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]anomaly.Alarm(nil), s.alarms...)
}

// fakeClock steps time manually for deterministic rule evaluation.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64      { return c.t }
func (c *fakeClock) advance(s int64) { c.t += s }

// TestRulesStateMachine: an alert goes inactive → pending → firing
// after For elapses, pushes exactly one slo alarm, and resolves when
// the condition clears.
func TestRulesStateMachine(t *testing.T) {
	db := New()
	clk := &fakeClock{t: 1000}
	sink := &memSink{}
	r := NewRules(NewEngine(db))
	r.Sink = sink
	r.Now = clk.now
	if err := r.Load(RuleFile{
		Alerting: []AlertingRule{{
			Name: "QueueDeep", Expr: "qd > 5", For: "30s",
			Annotations: map[string]string{"summary": "queue too deep"},
		}},
	}); err != nil {
		t.Fatal(err)
	}

	appendGauge := func(v float64) {
		if err := db.Append(Labels{"__name__": "qd", "instance": "a"}, clk.t, v); err != nil {
			t.Fatal(err)
		}
	}

	// Below threshold: no alert.
	appendGauge(3)
	r.EvalOnce()
	if got := r.ActiveAlerts(); len(got) != 0 {
		t.Fatalf("no alert expected, got %v", got)
	}

	// Crosses threshold: pending.
	clk.advance(15)
	appendGauge(9)
	r.EvalOnce()
	alerts := r.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].State != StatePending {
		t.Fatalf("want one pending alert, got %v", alerts)
	}
	if alerts[0].Labels["instance"] != "a" {
		t.Fatalf("alert should carry element labels, got %v", alerts[0].Labels)
	}
	if r.PendingAlerts() != 1 || r.FiringAlerts() != 0 {
		t.Fatalf("gauges: pending=%d firing=%d", r.PendingAlerts(), r.FiringAlerts())
	}
	if len(sink.all()) != 0 {
		t.Fatal("pending must not push an alarm")
	}

	// Still above threshold after For: firing, one alarm pushed.
	clk.advance(30)
	appendGauge(10)
	r.EvalOnce()
	alerts = r.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("want firing, got %v", alerts)
	}
	got := sink.all()
	if len(got) != 1 {
		t.Fatalf("want 1 alarm, got %d", len(got))
	}
	if got[0].Source != "slo" || got[0].Detector != "QueueDeep" || got[0].Testbed != "a" {
		t.Fatalf("alarm fields wrong: %+v", got[0])
	}
	if got[0].PeakDev != 10 {
		t.Fatalf("alarm value = %v, want 10", got[0].PeakDev)
	}

	// Stays firing: no duplicate alarm.
	clk.advance(15)
	appendGauge(12)
	r.EvalOnce()
	if len(sink.all()) != 1 {
		t.Fatal("firing alert must push exactly once")
	}

	// ALERTS synthetic series recorded the transition.
	series := db.Query(Labels{"__name__": "ALERTS", "alertname": "QueueDeep"}, 0, clk.t)
	if len(series) == 0 {
		t.Fatal("no ALERTS series recorded")
	}
	states := map[string]bool{}
	for _, s := range series {
		states[s.Labels["state"]] = true
	}
	if !states[StatePending] || !states[StateFiring] {
		t.Fatalf("ALERTS states seen: %v", states)
	}

	// Condition clears: alert resolves; recovering re-fires later.
	clk.advance(15)
	appendGauge(1)
	r.EvalOnce()
	if got := r.ActiveAlerts(); len(got) != 0 {
		t.Fatalf("alert should have resolved, got %v", got)
	}
	if r.FiringAlerts() != 0 {
		t.Fatal("firing gauge should be zero after resolve")
	}
}

// TestRecordingFeedsAlerting: a recording rule's output is visible to
// an alerting rule evaluated in the same cycle.
func TestRecordingFeedsAlerting(t *testing.T) {
	db := New()
	clk := &fakeClock{t: 500}
	r := NewRules(NewEngine(db))
	r.Now = clk.now
	if err := r.Load(RuleFile{
		Recording: []RecordingRule{{Name: "job:qd:doubled", Expr: "qd * 2"}},
		Alerting:  []AlertingRule{{Name: "Doubled", Expr: "job:qd:doubled > 10"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(Labels{"__name__": "qd"}, clk.t, 6); err != nil {
		t.Fatal(err)
	}
	r.EvalOnce()
	// Recorded series exists with the rule name...
	if s := db.Query(Labels{"__name__": "job:qd:doubled"}, 0, clk.t); len(s) != 1 || s[0].Samples[0].V != 12 {
		t.Fatalf("recorded series wrong: %v", s)
	}
	// ...and the alert over it is active (For defaults to 0 → firing).
	alerts := r.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("want immediate firing, got %v", alerts)
	}
}

func writeRules(t *testing.T, path string, rf RuleFile) {
	t.Helper()
	b, err := json.Marshal(rf)
	if err != nil {
		t.Fatal(err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
}

// TestRulesHotReload: editing the rule file on disk swaps the rule set
// on the next EvalOnce; a broken file keeps the previous set. EvalOnce
// runs concurrently with the rewrite to exercise the locking under
// -race.
func TestRulesHotReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.json")
	writeRules(t, path, RuleFile{
		Alerting: []AlertingRule{{Name: "V1", Expr: "qd > 100"}},
	})

	db := New()
	// Time stands still during the concurrent phase so the seeded
	// sample never goes stale, no matter how fast the eval loop spins.
	const now = int64(100)
	r := NewRules(NewEngine(db))
	r.Now = func() int64 { return now }
	if err := r.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if rec, al := r.RuleCounts(); rec != 0 || al != 1 {
		t.Fatalf("initial counts %d/%d", rec, al)
	}
	if err := db.Append(Labels{"__name__": "qd"}, now, 50); err != nil {
		t.Fatal(err)
	}

	// Concurrent evaluator, as in the tsdbd scrape loop.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.EvalOnce()
			}
		}
	}()

	// Rewrite with a V2 rule that fires on the seeded sample. File
	// mtime granularity can be coarse; size change makes the reload
	// definite.
	writeRules(t, path, RuleFile{
		Alerting: []AlertingRule{{Name: "V2RuleWithALongerName", Expr: "qd > 10"}},
	})
	deadline := time.Now().Add(5 * time.Second)
	for r.Reloads() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reload never happened")
		}
		time.Sleep(time.Millisecond)
	}
	for time.Now().Before(deadline) {
		alerts := r.ActiveAlerts()
		if len(alerts) == 1 && alerts[0].Name == "V2RuleWithALongerName" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	alerts := r.ActiveAlerts()
	if len(alerts) != 1 || alerts[0].Name != "V2RuleWithALongerName" {
		t.Fatalf("V2 rule not active after reload: %v", alerts)
	}

	// A corrupt file is rejected; the V2 set stays active.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	failsBefore := r.EvalFailures()
	r.EvalOnce()
	if r.EvalFailures() <= failsBefore {
		t.Fatal("corrupt reload should count as failure")
	}
	if rec, al := r.RuleCounts(); rec != 0 || al != 1 {
		t.Fatalf("corrupt reload must keep previous rules, got %d/%d", rec, al)
	}
}

// TestLoadRejectsBadRules: invalid expressions and durations fail
// atomically at load time.
func TestLoadRejectsBadRules(t *testing.T) {
	r := NewRules(NewEngine(New()))
	if err := r.Load(RuleFile{Recording: []RecordingRule{{Name: "x", Expr: "sum("}}}); err == nil {
		t.Fatal("bad recording expr should fail")
	}
	if err := r.Load(RuleFile{Alerting: []AlertingRule{{Name: "x", Expr: "m > 1", For: "5parsecs"}}}); err == nil {
		t.Fatal("bad for duration should fail")
	}
	if err := r.Load(RuleFile{Alerting: []AlertingRule{{Expr: "m > 1"}}}); err == nil {
		t.Fatal("empty name should fail")
	}
}

// TestDefaultSLORules: the built-in policy parses, and the fast-burn
// alert fires end-to-end from raw proxy counters pushed through the
// recording chain.
func TestDefaultSLORules(t *testing.T) {
	rf := DefaultSLORules(0.99, 250)
	if err := validateFile(rf); err != nil {
		t.Fatalf("default rules invalid: %v", err)
	}

	db := New()
	clk := &fakeClock{t: 0}
	sink := &memSink{}
	r := NewRules(NewEngine(db))
	r.Sink = sink
	r.Now = clk.now
	if err := r.Load(rf); err != nil {
		t.Fatal(err)
	}

	// 50% of requests fail: error ratio 0.5, burn rate 50 against a 1%
	// budget — far above both fast-burn thresholds. Counters grow 10
	// served + 10 failed per 15s cycle.
	var served, failed float64
	for cycle := 0; cycle < 20; cycle++ {
		served += 10
		failed += 10
		lbl := Labels{"__name__": "env2vec_proxy_requests_total", "outcome": "served", "instance": "p"}
		if err := db.Append(lbl, clk.t, served); err != nil {
			t.Fatal(err)
		}
		lbl = Labels{"__name__": "env2vec_proxy_requests_total", "outcome": "failed", "instance": "p"}
		if err := db.Append(lbl, clk.t, failed); err != nil {
			t.Fatal(err)
		}
		r.EvalOnce()
		clk.advance(15)
	}

	var fast *anomaly.Alarm
	for _, a := range sink.all() {
		if a.Detector == "ServeAvailabilityFastBurn" {
			fast = &a
			break
		}
	}
	if fast == nil {
		t.Fatalf("fast burn alarm never fired; alerts now: %v", r.ActiveAlerts())
	}
	if fast.Source != "slo" {
		t.Fatalf("alarm source = %q, want slo", fast.Source)
	}
	// Burn rate = 0.5 / 0.01 = 50, recorded by the rule chain.
	e := NewEngine(db)
	v, err := e.Instant("slo:serve:burn_rate:5m", clk.t-15)
	if err != nil || len(v) != 1 {
		t.Fatalf("burn rate series missing: %v %v", v, err)
	}
	if v[0].V < 49.9 || v[0].V > 50.1 {
		t.Fatalf("burn rate = %v, want ~50", v[0].V)
	}
}
