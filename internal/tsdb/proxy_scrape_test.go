// External test package: internal/proxy imports tsdb, so the fleet
// round-trip below must live outside package tsdb to avoid the cycle.
package tsdb_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/proxy"
	"env2vec/internal/quality"
	"env2vec/internal/serve"
	"env2vec/internal/tsdb"
)

func newScrapeBackend(t *testing.T, seed int64) *httptest.Server {
	t.Helper()
	cfg := core.Config{In: 3, Hidden: 8, GRUHidden: 4, EmbedDim: 3, Window: 2, Seed: seed}
	schema := envmeta.NewSchema()
	schema.Observe(envmeta.Environment{Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "B1"})
	schema.Freeze()
	s := serve.New(serve.Config{MaxBatch: 8, MaxLinger: time.Millisecond, QueueDepth: 64, Workers: 1, Quality: &quality.Config{}})
	t.Cleanup(s.Close)
	s.SetBundle(&serve.Bundle{
		Name: "test", Version: 1,
		Model:    core.New(cfg, schema),
		Schema:   schema,
		YScale:   dataset.YScaler{Mu: 50, Sigma: 10},
		Baseline: &quality.Baseline{Mu: 0, Sigma: 5, Samples: 100},
	})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

// TestScrapeProxyMergedExposition is the monitoring-pipeline round trip:
// tsdb's scraper pulls the proxy's fleet-merged /metrics page (its own
// series plus every backend's, tagged backend="host:port") into a DB, and
// queries must separate the two backends by label — no collisions where
// both backends' identically-named series merge into one.
func TestScrapeProxyMergedExposition(t *testing.T) {
	b0, b1 := newScrapeBackend(t, 7), newScrapeBackend(t, 11)
	p := proxy.New(proxy.Config{Backends: []string{b0.URL, b1.URL}, RetryBackoff: time.Millisecond})
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()

	// Spread some traffic so both backends have nonzero serve counters.
	for i := 0; i < 16; i++ {
		body := fmt.Sprintf(`{"cf":[1,2,3],"window":[50,51],"testbed":"tb1","sut":"fw","testcase":"load","build":"B%d"}`, i)
		resp, err := http.Post(front.URL+"/predict", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict %d: status %d", i, resp.StatusCode)
		}
	}

	sd := filepath.Join(t.TempDir(), "sd.json")
	proxyHost := strings.TrimPrefix(front.URL, "http://")
	if err := tsdb.WriteSDConfig(sd, []tsdb.SDEntry{{Targets: []string{proxyHost}, Labels: map[string]string{"env": "fleet-1"}}}); err != nil {
		t.Fatal(err)
	}
	db := tsdb.New()
	sc := tsdb.NewScraper(db, sd, time.Second)
	n, err := sc.ScrapeOnce(context.Background())
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	if n == 0 {
		t.Fatal("scrape ingested zero samples from the merged page")
	}

	// Each backend's serve counters land as distinct series under its
	// backend label; the discovery labels ride along.
	series := db.Query(tsdb.Labels{"__name__": "env2vec_serve_requests_total", "outcome": "served"}, 0, time.Now().Unix()+1)
	backends := map[string]bool{}
	for _, sr := range series {
		be := sr.Labels["backend"]
		if be == "" {
			t.Fatalf("backend-sourced series missing the backend label: %v", sr.Labels)
		}
		if backends[be] {
			t.Fatalf("backend %q appears in two series for one matcher — label collision: %v", be, series)
		}
		backends[be] = true
		if sr.Labels["instance"] != proxyHost || sr.Labels["env"] != "fleet-1" {
			t.Fatalf("scrape labels not attached: %v", sr.Labels)
		}
		if len(sr.Samples) == 0 || sr.Samples[0].V <= 0 {
			t.Fatalf("backend %q scraped a zero served counter: %+v", be, sr.Samples)
		}
	}
	if len(backends) != 2 {
		t.Fatalf("got %d backend-labelled series, want both backends: %v", len(backends), backends)
	}

	// The proxy's own telemetry is on the same page, un-tagged.
	own := db.Query(tsdb.Labels{"__name__": "env2vec_proxy_requests_total", "outcome": "served"}, 0, time.Now().Unix()+1)
	if len(own) != 1 {
		t.Fatalf("proxy's own served counter: %d series, want 1", len(own))
	}
	if own[0].Labels["backend"] != "" {
		t.Fatalf("proxy's own series wrongly tagged with a backend label: %v", own[0].Labels)
	}
	if own[0].Samples[0].V != 16 {
		t.Fatalf("proxy served counter scraped as %v, want 16", own[0].Samples[0].V)
	}
}
