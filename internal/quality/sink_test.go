package quality

import (
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"env2vec/internal/alarmstore"
	"env2vec/internal/anomaly"
	"env2vec/internal/obs"
)

// blockingSink holds every Push until released, so tests can saturate the
// queue deterministically.
type blockingSink struct {
	release chan struct{}
	pushed  atomic.Uint64
}

func (b *blockingSink) Push(anomaly.Alarm, int64) error {
	<-b.release
	b.pushed.Add(1)
	return nil
}

func TestAsyncOverflowDropsCounted(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &blockingSink{release: make(chan struct{})}
	a := NewAsync(sink, AsyncConfig{QueueDepth: 2}, reg)

	// First push is picked up by the worker (blocked in Push), leaving a
	// 2-slot queue. Give the worker a moment to drain slot one.
	if !a.Push(anomaly.Alarm{ChainID: "c0"}, 0) {
		t.Fatal("first push rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(a.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the first alarm")
		}
		time.Sleep(time.Millisecond)
	}
	accepted, droppedNow := 1, 0
	for i := 0; i < 9; i++ {
		if a.Push(anomaly.Alarm{ChainID: "cx"}, 0) {
			accepted++
		} else {
			droppedNow++
		}
	}
	// 1 in flight + 2 queued can be accepted; the other 7 must drop.
	if accepted != 3 || droppedNow != 7 {
		t.Fatalf("accepted %d dropped %d, want 3/7", accepted, droppedNow)
	}
	if a.Dropped() != 7 {
		t.Fatalf("drop counter %d, want 7", a.Dropped())
	}
	close(sink.release)
	a.Close()
	if a.Pushed() != 3 {
		t.Fatalf("pushed %d, want 3", a.Pushed())
	}
	var b strings.Builder
	_, _ = reg.WriteTo(&b)
	if !strings.Contains(b.String(), "env2vec_quality_alarms_dropped_total 7") {
		t.Fatalf("drop counter not exported:\n%s", b.String())
	}
	// Pushing after Close drops instead of panicking.
	if a.Push(anomaly.Alarm{}, 0) {
		t.Fatal("push after Close accepted")
	}
}

// flakySink fails the first n attempts, then succeeds.
type flakySink struct {
	failuresLeft atomic.Int64
	attempts     atomic.Uint64
}

func (f *flakySink) Push(anomaly.Alarm, int64) error {
	f.attempts.Add(1)
	if f.failuresLeft.Add(-1) >= 0 {
		return errors.New("transient")
	}
	return nil
}

func TestAsyncRetriesWithBackoff(t *testing.T) {
	sink := &flakySink{}
	sink.failuresLeft.Store(2)
	a := NewAsync(sink, AsyncConfig{QueueDepth: 4, Retries: 3, Backoff: time.Millisecond}, nil)
	a.Push(anomaly.Alarm{ChainID: "c1"}, 42)
	a.Close()
	if sink.attempts.Load() != 3 {
		t.Fatalf("attempts %d, want 3 (2 failures + 1 success)", sink.attempts.Load())
	}
	if a.Pushed() != 1 || a.Dropped() != 0 || a.Errors() != 2 {
		t.Fatalf("pushed=%d dropped=%d errors=%d, want 1/0/2", a.Pushed(), a.Dropped(), a.Errors())
	}
}

func TestAsyncExhaustedRetriesDrop(t *testing.T) {
	sink := &flakySink{}
	sink.failuresLeft.Store(1000)
	a := NewAsync(sink, AsyncConfig{QueueDepth: 4, Retries: 2, Backoff: time.Microsecond}, nil)
	a.Push(anomaly.Alarm{ChainID: "c1"}, 42)
	a.Close()
	if sink.attempts.Load() != 3 {
		t.Fatalf("attempts %d, want 3 (1 + 2 retries)", sink.attempts.Load())
	}
	if a.Pushed() != 0 || a.Dropped() != 1 || a.Errors() != 3 {
		t.Fatalf("pushed=%d dropped=%d errors=%d, want 0/1/3", a.Pushed(), a.Dropped(), a.Errors())
	}
}

// TestSinksDeliverToAlarmstore drives both sink flavours into a real store:
// in-process, and over the store's HTTP API via httptest.
func TestSinksDeliverToAlarmstore(t *testing.T) {
	alarm := anomaly.Alarm{
		Detector: "quality:exceed-rate", ChainID: "<tb1,fw,load,B7>",
		Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "B7",
		StartIdx: 10, EndIdx: 14, StartTime: 1000, EndTime: 1004, PeakDev: 20,
	}

	direct, err := alarmstore.Open(filepath.Join(t.TempDir(), "alarms.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := (StoreSink{Store: direct}).Push(alarm, 999); err != nil {
		t.Fatal(err)
	}
	got := direct.Find(alarmstore.Query{Testbed: "tb1"})
	if len(got) != 1 || got[0].Alarm.Detector != alarm.Detector || got[0].CreatedAt != 999 {
		t.Fatalf("store sink record wrong: %+v", got)
	}

	remote, err := alarmstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(&alarmstore.Handler{Store: remote, Now: func() int64 { return 1234 }})
	defer srv.Close()
	if err := (HTTPSink{URL: srv.URL}).Push(alarm, 0); err != nil {
		t.Fatal(err)
	}
	got = remote.Find(alarmstore.Query{ChainID: alarm.ChainID})
	if len(got) != 1 || got[0].Alarm.EndTime != 1004 || got[0].CreatedAt != 1234 {
		t.Fatalf("http sink record wrong: %+v", got)
	}

	// A dead endpoint errors instead of hanging forever.
	if err := (HTTPSink{URL: "http://127.0.0.1:1"}).Push(alarm, 0); err == nil {
		t.Fatal("push to dead store should fail")
	}
}

// alwaysFailSink simulates a permanently unreachable alarm store.
type alwaysFailSink struct {
	attempts atomic.Uint64
}

func (s *alwaysFailSink) Push(anomaly.Alarm, int64) error {
	s.attempts.Add(1)
	return errors.New("store unreachable")
}

// TestAsyncCloseUnderFailingSink is the shutdown regression test: Close used
// to sleep through the full exponential backoff ladder for every queued
// alarm — with the config below that is 4 alarms × (300+600+...+9600)ms ≈
// 76 s. Close must instead cancel the waits and return promptly while still
// performing every retry attempt.
func TestAsyncCloseUnderFailingSink(t *testing.T) {
	sink := &alwaysFailSink{}
	a := NewAsync(sink, AsyncConfig{
		QueueDepth: 8,
		Retries:    6,
		Backoff:    300 * time.Millisecond,
	}, nil)
	const alarms = 4
	for i := 0; i < alarms; i++ {
		if !a.Push(anomaly.Alarm{ChainID: "down"}, 0) {
			t.Fatalf("push %d rejected", i)
		}
	}

	done := make(chan struct{})
	start := time.Now()
	go func() {
		a.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("Close blocked past its deadline against a failing sink")
	}
	// Bound: at most one full backoff interval of waiting (the in-flight
	// alarm may have started a timer before stop closed) plus attempt time.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close took %v, want well under the backoff ladder", elapsed)
	}
	// Draining must keep full retry fidelity: every alarm gets its initial
	// attempt plus all retries even though the waits were skipped.
	if got, want := sink.attempts.Load(), uint64(alarms*7); got != want {
		t.Fatalf("sink saw %d attempts, want %d", got, want)
	}
	if a.Dropped() != alarms {
		t.Fatalf("dropped %d, want %d", a.Dropped(), alarms)
	}
}
