// Package quality is the online model-quality monitor of workflow step (4):
// while internal/serve answers prediction traffic, this package watches the
// predictor itself. Every request that comes back with ground truth (an
// inline actual or a follow-up /observe) feeds a per-environment rolling
// error model — a lifetime Welford Gaussian plus a windowed ring, mirroring
// the paper's per-chain N(μ_err, σ_err) — which is compared against the
// training-time error baseline embedded in the serving bundle. Sustained
// γ·σ exceedance, a window mean-shift, or deviations past the paper's
// absolute-CPU gate count as drift; drift becomes an anomaly.Alarm with
// environment and time-interval attribution, pushed asynchronously into the
// alarm store through a bounded, retrying queue.
package quality

import (
	"math"
	"sort"
	"sync"

	"env2vec/internal/anomaly"
	"env2vec/internal/envmeta"
	"env2vec/internal/obs"
)

// Baseline is the training-time prediction-error distribution the monitor
// compares live errors against — the serving-time stand-in for the paper's
// "errors on previous builds" Gaussian. It travels inside the serving
// bundle (see serve.AttachArtifacts).
type Baseline struct {
	Mu      float64 `json:"mu"`
	Sigma   float64 `json:"sigma"`
	Samples int     `json:"samples"`
}

// DefErrorBuckets are absolute-error upper bounds in CPU points, spanning
// noise-level misses to catastrophic ones.
var DefErrorBuckets = []float64{0.5, 1, 2.5, 5, 10, 25, 50, 100}

// Config tunes the monitor. The zero value is usable: every field defaults
// sensibly in NewMonitor.
type Config struct {
	// Gamma is the γ multiplier on σ_error for both per-sample exceedance
	// and window mean-shift (default 3).
	Gamma float64
	// AbsFilter additionally requires deviations to exceed this many
	// absolute units — the paper's 5-CPU-point false-alarm gate
	// (default 5; negative disables).
	AbsFilter float64
	// Window is the per-environment ring of recent errors drift is judged
	// over (default 64).
	Window int
	// MinSamples is how full the window must be before drift verdicts fire
	// (default 16).
	MinSamples int
	// ExceedRate is the fraction of windowed samples beyond γ·σ that
	// constitutes drift (default 0.5).
	ExceedRate float64
	// Cooldown is the minimum number of observations between successive
	// alarms for one environment, so sustained drift raises one alarm per
	// window rather than one per request (default Window).
	Cooldown int
	// MaxEnvGauges caps how many environments get per-env /metrics gauges;
	// environments beyond the cap are still monitored and alarmed, just not
	// exported as individual series (default 128).
	MaxEnvGauges int
}

func (c Config) withDefaults() Config {
	if c.Gamma <= 0 {
		c.Gamma = 3
	}
	if c.AbsFilter == 0 {
		c.AbsFilter = 5
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 16
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.ExceedRate <= 0 {
		c.ExceedRate = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Window
	}
	if c.MaxEnvGauges <= 0 {
		c.MaxEnvGauges = 128
	}
	return c
}

// sample is one ground-truth observation in an environment's window.
type sample struct {
	err    float64 // pred − actual
	at     int64   // unix seconds
	seq    int     // per-environment observation index
	exceed bool
}

// envState is the rolling error model of one environment tuple.
type envState struct {
	env envmeta.Environment

	// Lifetime Welford over non-exceeding errors: the self-calibrated
	// fallback baseline for bundles that carry none (the §4.3 unseen-
	// environment case). Exceeding errors are excluded so a sustained
	// problem cannot drag the baseline toward itself.
	n        int
	mean, m2 float64

	ring         []sample // capacity Config.Window, chronological via next
	next, filled int

	seq          int // observations ever seen for this env
	lastAlarmSeq int
	alarmCount   int
	lastAlarm    *anomaly.Alarm
	lastAt       int64
}

func (st *envState) welfordSigma() float64 {
	if st.n < 2 {
		return 0
	}
	return math.Sqrt(st.m2 / float64(st.n-1))
}

func (st *envState) push(s sample) {
	if st.filled < len(st.ring) {
		st.ring[st.next] = s
		st.filled++
	} else {
		st.ring[st.next] = s
	}
	st.next = (st.next + 1) % len(st.ring)
}

// chronological returns the window oldest-first.
func (st *envState) chronological() []sample {
	out := make([]sample, 0, st.filled)
	start := st.next - st.filled
	for i := 0; i < st.filled; i++ {
		out = append(out, st.ring[((start+i)%len(st.ring)+len(st.ring))%len(st.ring)])
	}
	return out
}

// windowStats returns the windowed error mean, unbiased sigma, and the
// fraction of windowed samples flagged as exceedances.
func (st *envState) windowStats() (mean, sigma, exceedRate float64) {
	if st.filled == 0 {
		return 0, 0, 0
	}
	var sum float64
	exceed := 0
	for i := 0; i < st.filled; i++ {
		sum += st.ring[i].err
		if st.ring[i].exceed {
			exceed++
		}
	}
	mean = sum / float64(st.filled)
	if st.filled > 1 {
		var m2 float64
		for i := 0; i < st.filled; i++ {
			d := st.ring[i].err - mean
			m2 += d * d
		}
		sigma = math.Sqrt(m2 / float64(st.filled-1))
	}
	return mean, sigma, float64(exceed) / float64(st.filled)
}

// Verdict is the monitor's judgement of one observation — returned to the
// caller and surfaced as the `quality` block of a /predict response.
type Verdict struct {
	Env           string  `json:"env"`
	Error         float64 `json:"error"` // pred − actual
	Exceeded      bool    `json:"exceeded"`
	Drift         bool    `json:"drift,omitempty"`
	DriftReason   string  `json:"drift_reason,omitempty"`
	Calibrating   bool    `json:"calibrating,omitempty"` // no baseline yet; no exceedance verdicts
	WindowMean    float64 `json:"window_mean"`
	WindowSigma   float64 `json:"window_sigma"`
	ExceedRate    float64 `json:"exceed_rate"`
	BaselineMu    float64 `json:"baseline_mu"`
	BaselineSigma float64 `json:"baseline_sigma"`
}

// Monitor maintains per-environment rolling error statistics, detects
// drift, and emits alarms. Safe for concurrent use.
type Monitor struct {
	cfg  Config
	sink *Async // optional async alarm pusher

	mu       sync.Mutex
	baseline *Baseline
	envs     map[string]*envState
	gauged   int

	reg                               *obs.Registry
	observations, exceedances, alarms *obs.Counter
	absErr                            *obs.Histogram
}

// NewMonitor builds a monitor instrumented into reg (nil gets a private
// registry, so counters still work) that pushes alarms through sink (nil
// sink = monitor-only: metrics, verdicts, and /quality snapshots, but no
// alarm delivery).
func NewMonitor(cfg Config, reg *obs.Registry, sink *Async) *Monitor {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Monitor{
		cfg:  cfg.withDefaults(),
		sink: sink,
		envs: make(map[string]*envState),
		reg:  reg,
	}
	m.observations = reg.Counter("env2vec_quality_observations_total", "Ground-truth observations fed to the quality monitor.", nil)
	m.exceedances = reg.Counter("env2vec_quality_exceedances_total", "Observations whose error exceeded γ·σ of the baseline (plus the absolute gate).", nil)
	m.alarms = reg.Counter("env2vec_quality_alarms_total", "Drift alarms emitted by the quality monitor.", nil)
	m.absErr = reg.Histogram("env2vec_quality_abs_error", "Absolute prediction error of observed requests, in CPU points.", DefErrorBuckets, nil)
	return m
}

// SetBaseline swaps the training-time baseline, typically on a hot model
// reload. A nil baseline switches every environment to self-calibration.
func (m *Monitor) SetBaseline(b *Baseline) {
	m.mu.Lock()
	m.baseline = b
	m.mu.Unlock()
}

// baselineForLocked resolves the comparison distribution for one
// environment: the bundle's training-time baseline when present, otherwise
// the environment's own lifetime Welford once it has enough samples.
func (m *Monitor) baselineForLocked(st *envState) (Baseline, bool) {
	if m.baseline != nil && m.baseline.Samples > 0 {
		return *m.baseline, true
	}
	if st.n >= m.cfg.MinSamples {
		return Baseline{Mu: st.mean, Sigma: st.welfordSigma(), Samples: st.n}, true
	}
	return Baseline{}, false
}

// driftReasonLocked applies the drift criteria to an environment's window:
// sustained γ·σ exceedance rate first, then a shift of the window mean away
// from the baseline beyond γ standard errors (σ/√n — a mean of n samples is
// that much tighter than one sample, which lets the monitor catch shifts
// too small to trip the per-sample threshold). Both honour the absolute
// gate. Empty string means no drift.
func (m *Monitor) driftReasonLocked(st *envState, base Baseline) string {
	if st.filled < m.cfg.MinSamples {
		return ""
	}
	mean, _, rate := st.windowStats()
	if rate >= m.cfg.ExceedRate {
		return "exceed-rate"
	}
	stderr := base.Sigma / math.Sqrt(float64(st.filled))
	if shift := math.Abs(mean - base.Mu); shift > m.cfg.Gamma*stderr && (m.cfg.AbsFilter <= 0 || shift >= m.cfg.AbsFilter) {
		return "mean-shift"
	}
	return ""
}

// Observe feeds one ground-truth observation and returns the monitor's
// verdict. at is the observation time in unix seconds (alarm attribution);
// requestID links the error into the exemplar histogram.
func (m *Monitor) Observe(env envmeta.Environment, requestID string, pred, actual float64, at int64) Verdict {
	e := pred - actual
	key := env.String()

	m.mu.Lock()
	st := m.envs[key]
	newEnv := st == nil
	if newEnv {
		st = &envState{env: env, ring: make([]sample, m.cfg.Window)}
		m.envs[key] = st
	}
	wantGauges := newEnv && m.gauged < m.cfg.MaxEnvGauges
	if wantGauges {
		m.gauged++
	}
	st.seq++
	st.lastAt = at

	base, haveBase := m.baselineForLocked(st)
	exceed := false
	if haveBase {
		dev := math.Abs(e - base.Mu)
		exceed = dev > m.cfg.Gamma*base.Sigma && (m.cfg.AbsFilter <= 0 || math.Abs(e) >= m.cfg.AbsFilter)
	}
	if !exceed {
		st.n++
		d := e - st.mean
		st.mean += d / float64(st.n)
		st.m2 += d * (e - st.mean)
	}
	st.push(sample{err: e, at: at, seq: st.seq, exceed: exceed})

	v := Verdict{Env: key, Error: e, Exceeded: exceed, Calibrating: !haveBase}
	v.WindowMean, v.WindowSigma, v.ExceedRate = st.windowStats()
	if haveBase {
		v.BaselineMu, v.BaselineSigma = base.Mu, base.Sigma
	}

	var alarm *anomaly.Alarm
	if haveBase {
		if reason := m.driftReasonLocked(st, base); reason != "" {
			v.Drift, v.DriftReason = true, reason
			if st.seq-st.lastAlarmSeq >= m.cfg.Cooldown {
				a := st.buildAlarmLocked(reason)
				st.lastAlarmSeq = st.seq
				st.alarmCount++
				st.lastAlarm = &a
				alarm = &a
			}
		}
	}
	m.mu.Unlock()

	// Metric writes happen outside m.mu: the per-env gauge callbacks take
	// m.mu at scrape time, so touching the registry under it would invert
	// lock order against a concurrent scrape.
	if wantGauges {
		m.registerEnvGauges(key)
	}
	m.observations.Inc()
	if exceed {
		m.exceedances.Inc()
	}
	m.absErr.ObserveExemplar(math.Abs(e), requestID)
	if alarm != nil {
		m.alarms.Inc()
		if m.sink != nil {
			m.sink.Push(*alarm, at)
		}
	}
	return v
}

// buildAlarmLocked converts the current window into one alarm interval:
// indices and times span the exceeding samples (or the whole window for a
// mean-shift without individual exceeders), peak is the worst |error|.
func (st *envState) buildAlarmLocked(reason string) anomaly.Alarm {
	a := anomaly.Alarm{
		Source:   "drift",
		Detector: "quality:" + reason,
		ChainID:  st.env.String(),
		Testbed:  st.env.Testbed, SUT: st.env.SUT,
		Testcase: st.env.Testcase, Build: st.env.Build,
	}
	window := st.chronological()
	var first, last *sample
	for i := range window {
		s := &window[i]
		if dev := math.Abs(s.err); dev > a.PeakDev {
			a.PeakDev = dev
		}
		if s.exceed {
			if first == nil {
				first = s
			}
			last = s
		}
	}
	if first == nil { // mean-shift drift: attribute the whole window
		first, last = &window[0], &window[len(window)-1]
	}
	a.StartIdx, a.EndIdx = first.seq, last.seq
	a.StartTime, a.EndTime = first.at, last.at
	return a
}

// registerEnvGauges exports one environment's rolling statistics as labelled
// gauges. Called without m.mu held (the callbacks take it at scrape time).
func (m *Monitor) registerEnvGauges(key string) {
	read := func(f func(*envState) float64) func() float64 {
		return func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			st := m.envs[key]
			if st == nil {
				return 0
			}
			return f(st)
		}
	}
	lbls := obs.Labels{"env": key}
	m.reg.GaugeFunc("env2vec_quality_error_mean", "Windowed prediction-error mean per environment.", lbls,
		read(func(st *envState) float64 { mean, _, _ := st.windowStats(); return mean }))
	m.reg.GaugeFunc("env2vec_quality_error_sigma", "Windowed prediction-error sigma per environment.", lbls,
		read(func(st *envState) float64 { _, sigma, _ := st.windowStats(); return sigma }))
	m.reg.GaugeFunc("env2vec_quality_exceed_rate", "Fraction of the window beyond γ·σ per environment.", lbls,
		read(func(st *envState) float64 { _, _, rate := st.windowStats(); return rate }))
}

// EnvSnapshot is one environment's entry in the /quality report.
type EnvSnapshot struct {
	Env         string              `json:"env"`
	Environment envmeta.Environment `json:"environment"`
	Samples     int                 `json:"samples"` // ground-truth observations ever seen
	Calibrating bool                `json:"calibrating,omitempty"`
	WindowMean  float64             `json:"window_mean"`
	WindowSigma float64             `json:"window_sigma"`
	ExceedRate  float64             `json:"exceed_rate"`
	Drift       bool                `json:"drift"`
	DriftReason string              `json:"drift_reason,omitempty"`
	Alarms      int                 `json:"alarms"`
	LastAlarm   *anomaly.Alarm      `json:"last_alarm,omitempty"`
	LastSeen    int64               `json:"last_seen"` // unix seconds
}

// Snapshot is the full /quality payload.
type Snapshot struct {
	Gamma         float64       `json:"gamma"`
	AbsFilter     float64       `json:"abs_filter"`
	Window        int           `json:"window"`
	ExceedRate    float64       `json:"exceed_rate_threshold"`
	Baseline      *Baseline     `json:"baseline,omitempty"`
	Environments  []EnvSnapshot `json:"environments"`
	Observations  uint64        `json:"observations"`
	Exceedances   uint64        `json:"exceedances"`
	AlarmsEmitted uint64        `json:"alarms_emitted"`
	AlarmsPushed  uint64        `json:"alarms_pushed"`
	AlarmsDropped uint64        `json:"alarms_dropped"`
	PushErrors    uint64        `json:"push_errors"`
}

// Snapshot reports every monitored environment plus pipeline counters,
// environments sorted by tuple for stable output.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	out := Snapshot{
		Gamma:      m.cfg.Gamma,
		AbsFilter:  m.cfg.AbsFilter,
		Window:     m.cfg.Window,
		ExceedRate: m.cfg.ExceedRate,
		Baseline:   m.baseline,
	}
	for key, st := range m.envs {
		es := EnvSnapshot{
			Env: key, Environment: st.env,
			Samples:   st.seq,
			Alarms:    st.alarmCount,
			LastAlarm: st.lastAlarm,
			LastSeen:  st.lastAt,
		}
		es.WindowMean, es.WindowSigma, es.ExceedRate = st.windowStats()
		base, haveBase := m.baselineForLocked(st)
		es.Calibrating = !haveBase
		if haveBase {
			if reason := m.driftReasonLocked(st, base); reason != "" {
				es.Drift, es.DriftReason = true, reason
			}
		}
		out.Environments = append(out.Environments, es)
	}
	m.mu.Unlock()
	sort.Slice(out.Environments, func(i, j int) bool { return out.Environments[i].Env < out.Environments[j].Env })
	out.Observations = m.observations.Value()
	out.Exceedances = m.exceedances.Value()
	out.AlarmsEmitted = m.alarms.Value()
	if m.sink != nil {
		out.AlarmsPushed = m.sink.Pushed()
		out.AlarmsDropped = m.sink.Dropped()
		out.PushErrors = m.sink.Errors()
	}
	return out
}

// AlarmsEmitted returns how many drift alarms the monitor has raised.
func (m *Monitor) AlarmsEmitted() uint64 { return m.alarms.Value() }
