package quality

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"env2vec/internal/anomaly"
	"env2vec/internal/envmeta"
	"env2vec/internal/obs"
	"env2vec/internal/stats"
)

var testEnv = envmeta.Environment{Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "B7"}

// recordingSink captures pushed alarms synchronously.
type recordingSink struct {
	alarms []anomaly.Alarm
	times  []int64
}

func (r *recordingSink) Push(a anomaly.Alarm, at int64) error {
	r.alarms = append(r.alarms, a)
	r.times = append(r.times, at)
	return nil
}

// TestWelfordMatchesBatchFit checks the monitor's online math against the
// batch estimators the offline path (internal/anomaly, internal/stats) uses
// on the same series: the windowed mean/σ must equal FitGaussian, and the
// self-calibrated baseline must equal FitErrorModel over the same errors.
func TestWelfordMatchesBatchFit(t *testing.T) {
	const n = 48
	rng := rand.New(rand.NewSource(7))
	pred := make([]float64, n)
	actual := make([]float64, n)
	errs := make([]float64, n)
	for i := range pred {
		pred[i] = 50 + rng.NormFloat64()*10
		actual[i] = pred[i] - rng.NormFloat64() // small errors: nothing exceeds
		errs[i] = pred[i] - actual[i]
	}

	// No bundle baseline → the monitor self-calibrates from its own errors.
	m := NewMonitor(Config{Gamma: 3, AbsFilter: 5, Window: n, MinSamples: 8}, nil, nil)
	var last Verdict
	for i := range pred {
		last = m.Observe(testEnv, "", pred[i], actual[i], int64(1000+i))
	}

	batch := stats.FitGaussian(errs)
	if math.Abs(last.WindowMean-batch.Mu) > 1e-12 {
		t.Fatalf("window mean %v, batch FitGaussian mu %v", last.WindowMean, batch.Mu)
	}
	if math.Abs(last.WindowSigma-batch.Sigma) > 1e-12 {
		t.Fatalf("window sigma %v, batch FitGaussian sigma %v", last.WindowSigma, batch.Sigma)
	}

	// The self-calibrated baseline reported for the LAST observation was
	// fitted on everything before it — exactly FitErrorModel on the prefix.
	em := anomaly.FitErrorModel(pred[:n-1], actual[:n-1])
	if math.Abs(last.BaselineMu-em.Dist.Mu) > 1e-12 || math.Abs(last.BaselineSigma-em.Dist.Sigma) > 1e-12 {
		t.Fatalf("self baseline N(%v,%v), FitErrorModel N(%v,%v)",
			last.BaselineMu, last.BaselineSigma, em.Dist.Mu, em.Dist.Sigma)
	}
}

// TestExceedMatchesAnomalyFlag replays one series through the monitor with a
// fixed baseline and checks each per-sample exceedance verdict against
// anomaly.Flag with the identical error model and config.
func TestExceedMatchesAnomalyFlag(t *testing.T) {
	base := &Baseline{Mu: 0.5, Sigma: 2, Samples: 100}
	det := anomaly.Config{Gamma: 2.5, AbsFilter: 5}
	rng := rand.New(rand.NewSource(11))
	const n = 200
	pred := make([]float64, n)
	actual := make([]float64, n)
	for i := range pred {
		pred[i] = 50
		// Mix benign errors with occasional large ones.
		e := rng.NormFloat64() * 2
		if rng.Intn(10) == 0 {
			e += 25
		}
		actual[i] = pred[i] - e
	}
	em := anomaly.ErrorModel{Dist: stats.Gaussian{Mu: base.Mu, Sigma: base.Sigma}, Samples: base.Samples}
	want := anomaly.Flag(pred, actual, em, det)

	m := NewMonitor(Config{Gamma: det.Gamma, AbsFilter: det.AbsFilter, Window: 32, MinSamples: 8}, nil, nil)
	m.SetBaseline(base)
	for i := range pred {
		v := m.Observe(testEnv, "", pred[i], actual[i], int64(i))
		if v.Exceeded != want[i] {
			t.Fatalf("sample %d: monitor exceed=%v, anomaly.Flag=%v (err %v)", i, v.Exceeded, want[i], v.Error)
		}
	}
}

// TestDriftExceedRateRaisesAttributedAlarm injects a sustained error shift
// and verifies the paper loop: exceedance rate climbs, drift is declared,
// and exactly one alarm per cooldown window arrives at the sink with full
// environment and time-interval attribution.
func TestDriftExceedRateRaisesAttributedAlarm(t *testing.T) {
	sinkRec := &recordingSink{}
	async := NewAsync(sinkRec, AsyncConfig{QueueDepth: 16}, nil)
	m := NewMonitor(Config{Gamma: 3, AbsFilter: 5, Window: 8, MinSamples: 4, ExceedRate: 0.5, Cooldown: 8}, nil, async)
	m.SetBaseline(&Baseline{Mu: 0, Sigma: 1, Samples: 500})

	// Healthy phase: accurate predictions, no drift.
	for i := 0; i < 8; i++ {
		v := m.Observe(testEnv, "", 50, 50, int64(100+i))
		if v.Drift || v.Exceeded {
			t.Fatalf("healthy sample %d flagged: %+v", i, v)
		}
	}
	// Failure phase: predictions start missing by ±20 points. The sign
	// alternates so the window mean stays near zero — only the exceedance
	// rate can catch this (a variance blow-up, not a mean shift).
	var sawDrift bool
	for i := 0; i < 8; i++ {
		actual := 70.0
		if i%2 == 1 {
			actual = 30
		}
		v := m.Observe(testEnv, "", 50, actual, int64(200+i))
		if v.Drift {
			sawDrift = true
		}
	}
	if !sawDrift {
		t.Fatal("sustained ±20-point misses never declared drift")
	}
	async.Close()
	if len(sinkRec.alarms) != 1 {
		t.Fatalf("alarms delivered %d, want exactly 1 (cooldown)", len(sinkRec.alarms))
	}
	a := sinkRec.alarms[0]
	if a.Detector != "quality:exceed-rate" {
		t.Fatalf("detector %q", a.Detector)
	}
	if a.Testbed != "tb1" || a.SUT != "fw" || a.Testcase != "load" || a.Build != "B7" || a.ChainID != testEnv.String() {
		t.Fatalf("environment attribution wrong: %+v", a)
	}
	if a.StartTime < 200 || a.EndTime < a.StartTime {
		t.Fatalf("time interval wrong: %d..%d (shift started at 200)", a.StartTime, a.EndTime)
	}
	if math.Abs(a.PeakDev-20) > 1e-9 {
		t.Fatalf("peak deviation %v, want 20", a.PeakDev)
	}
	if got := m.AlarmsEmitted(); got != 1 {
		t.Fatalf("alarms emitted %d, want 1", got)
	}

	snap := m.Snapshot()
	if len(snap.Environments) != 1 || !snap.Environments[0].Drift {
		t.Fatalf("snapshot should report the drifting environment: %+v", snap.Environments)
	}
	if snap.Environments[0].LastAlarm == nil {
		t.Fatal("snapshot lost the last alarm")
	}
}

// TestMeanShiftDetectsSubThresholdDrift: a consistent error too small to
// trip the per-sample γ·σ threshold must still raise drift once the window
// mean moves beyond γ standard errors.
func TestMeanShiftDetectsSubThresholdDrift(t *testing.T) {
	sinkRec := &recordingSink{}
	async := NewAsync(sinkRec, AsyncConfig{QueueDepth: 16}, nil)
	m := NewMonitor(Config{Gamma: 3, AbsFilter: 5, Window: 16, MinSamples: 16, ExceedRate: 0.5, Cooldown: 16}, nil, async)
	m.SetBaseline(&Baseline{Mu: 0, Sigma: 10, Samples: 500})

	// Per-sample threshold is 30; a constant error of 8 never exceeds, but
	// the window mean of 8 is far beyond 3·(10/√16)=7.5 and the 5-point gate.
	var v Verdict
	for i := 0; i < 16; i++ {
		v = m.Observe(testEnv, "", 50, 42, int64(i))
		if v.Exceeded {
			t.Fatalf("sample %d should not exceed per-sample threshold", i)
		}
	}
	if !v.Drift || v.DriftReason != "mean-shift" {
		t.Fatalf("sub-threshold sustained shift missed: %+v", v)
	}
	async.Close()
	if len(sinkRec.alarms) != 1 || sinkRec.alarms[0].Detector != "quality:mean-shift" {
		t.Fatalf("mean-shift alarm wrong: %+v", sinkRec.alarms)
	}
}

// TestAbsoluteGateSuppressesSmallErrors mirrors the paper's 5-point filter:
// with a near-zero baseline σ, tiny errors exceed γ·σ but must stay quiet.
func TestAbsoluteGateSuppressesSmallErrors(t *testing.T) {
	m := NewMonitor(Config{Gamma: 3, AbsFilter: 5, Window: 8, MinSamples: 4}, nil, nil)
	m.SetBaseline(&Baseline{Mu: 0, Sigma: 0.01, Samples: 100})
	for i := 0; i < 8; i++ {
		v := m.Observe(testEnv, "", 50, 49, int64(i)) // 1-point error: 100·σ but < 5 points
		if v.Exceeded || v.Drift {
			t.Fatalf("1-point error past the absolute gate: %+v", v)
		}
	}
	// A 10-point error passes the gate.
	if v := m.Observe(testEnv, "", 50, 40, 99); !v.Exceeded {
		t.Fatalf("10-point error should exceed: %+v", v)
	}
}

// TestWindowEvictsOldErrors: drift clears once the window rolls past the
// bad stretch.
func TestWindowEvictsOldErrors(t *testing.T) {
	m := NewMonitor(Config{Gamma: 3, AbsFilter: 5, Window: 8, MinSamples: 4, ExceedRate: 0.5, Cooldown: 1000}, nil, nil)
	m.SetBaseline(&Baseline{Mu: 0, Sigma: 1, Samples: 100})
	for i := 0; i < 8; i++ {
		m.Observe(testEnv, "", 50, 70, int64(i))
	}
	if v := m.Observe(testEnv, "", 50, 50, 8); !v.Drift {
		t.Fatalf("drift should persist while window is saturated: %+v", v)
	}
	// Recovery: accurate predictions push the bad samples out.
	var v Verdict
	for i := 0; i < 8; i++ {
		v = m.Observe(testEnv, "", 50, 50, int64(20+i))
	}
	if v.Drift || v.ExceedRate != 0 {
		t.Fatalf("window never recovered: %+v", v)
	}
}

// TestPerEnvMetricsAndExemplars: per-env gauges appear on the registry and
// the error histogram carries the offending request id as an exemplar.
func TestPerEnvMetricsAndExemplars(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMonitor(Config{Window: 8, MinSamples: 4}, reg, nil)
	m.SetBaseline(&Baseline{Mu: 0, Sigma: 1, Samples: 100})
	m.Observe(testEnv, "req-huge-error", 50, 10, 1) // 40-point error
	var b strings.Builder
	if _, err := reg.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	for _, want := range []string{
		"env2vec_quality_observations_total 1",
		"env2vec_quality_exceedances_total 1",
		`env2vec_quality_error_mean{env="<tb1,fw,load,B7>"}`,
		`env2vec_quality_exceed_rate{env="<tb1,fw,load,B7>"} 1`,
		`# {request_id="req-huge-error"} 40`,
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}
}

// TestEnvGaugeCardinalityCap: environments beyond MaxEnvGauges are
// monitored but not exported as per-env series.
func TestEnvGaugeCardinalityCap(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMonitor(Config{Window: 8, MaxEnvGauges: 2}, reg, nil)
	for i := 0; i < 5; i++ {
		env := testEnv
		env.Build = string(rune('A' + i))
		m.Observe(env, "", 50, 50, 1)
	}
	var b strings.Builder
	_, _ = reg.WriteTo(&b)
	if got := strings.Count(b.String(), "env2vec_quality_error_mean{"); got != 2 {
		t.Fatalf("per-env gauge series %d, want capped at 2", got)
	}
	if len(m.Snapshot().Environments) != 5 {
		t.Fatal("capped environments must still be monitored")
	}
}
