package quality

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"env2vec/internal/alarmstore"
	"env2vec/internal/anomaly"
	"env2vec/internal/obs"
)

// Sink delivers one alarm to the alarm store. Implementations: StoreSink
// (in-process) and HTTPSink (the store's HTTP API). Push may block and may
// fail; Async wraps any Sink with a bounded queue so the serving path never
// does either.
type Sink interface {
	Push(a anomaly.Alarm, createdAt int64) error
}

// StoreSink writes alarms straight into an in-process alarmstore.Store.
type StoreSink struct {
	Store *alarmstore.Store
}

// Push implements Sink.
func (s StoreSink) Push(a anomaly.Alarm, createdAt int64) error {
	_, err := s.Store.Push(a, createdAt)
	return err
}

// HTTPSink posts alarms to a remote alarm store's POST /alarms endpoint.
// The remote store stamps its own CreatedAt.
type HTTPSink struct {
	// URL is the store's base URL (e.g. http://alarms:7070).
	URL string
	// Client defaults to a 5-second-timeout client.
	Client *http.Client
}

var defaultHTTPClient = &http.Client{Timeout: 5 * time.Second}

// Push implements Sink.
func (s HTTPSink) Push(a anomaly.Alarm, _ int64) error {
	body, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("quality: encode alarm: %w", err)
	}
	client := s.Client
	if client == nil {
		client = defaultHTTPClient
	}
	resp, err := client.Post(strings.TrimRight(s.URL, "/")+"/alarms", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("quality: push alarm: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("quality: alarm store returned %d", resp.StatusCode)
	}
	return nil
}

// AsyncConfig tunes the asynchronous alarm pusher.
type AsyncConfig struct {
	// QueueDepth bounds queued alarms; overflow is dropped and counted
	// (default 64).
	QueueDepth int
	// Retries is how many delivery re-attempts follow a failed push
	// (default 3; negative means none).
	Retries int
	// Backoff is the initial retry delay, doubling per attempt
	// (default 50ms).
	Backoff time.Duration
	// Logger receives drop/failure records; nil discards them.
	Logger *slog.Logger
}

func (c AsyncConfig) withDefaults() AsyncConfig {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = obs.DiscardLogger()
	}
	return c
}

type queuedAlarm struct {
	a  anomaly.Alarm
	at int64
}

// Async delivers alarms to a Sink from a background goroutine behind a
// bounded queue: the observing path enqueues without blocking, delivery
// failures retry with exponential backoff, and overflow or undeliverable
// alarms are dropped with a counter (never a stall).
type Async struct {
	sink  Sink
	cfg   AsyncConfig
	queue chan queuedAlarm
	stop  chan struct{} // closed by Close; cancels backoff waits
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	pushed, dropped, errors atomic.Uint64
}

// NewAsync starts the delivery goroutine. The counters register into reg
// (nil skips registration; the accessors still work).
func NewAsync(sink Sink, cfg AsyncConfig, reg *obs.Registry) *Async {
	a := &Async{sink: sink, cfg: cfg.withDefaults(), stop: make(chan struct{})}
	a.queue = make(chan queuedAlarm, a.cfg.QueueDepth)
	reg.CounterFunc("env2vec_quality_alarms_pushed_total", "Alarms delivered to the alarm store.", nil, a.pushed.Load)
	reg.CounterFunc("env2vec_quality_alarms_dropped_total", "Alarms dropped on queue overflow or after exhausting retries.", nil, a.dropped.Load)
	reg.CounterFunc("env2vec_quality_alarm_push_errors_total", "Failed alarm delivery attempts (before retrying).", nil, a.errors.Load)
	a.wg.Add(1)
	go a.run()
	return a
}

// Push enqueues an alarm without blocking; a full queue (or a closed
// pusher) drops it, increments the drop counter, and returns false.
func (a *Async) Push(alarm anomaly.Alarm, createdAt int64) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		a.dropped.Add(1)
		return false
	}
	select {
	case a.queue <- queuedAlarm{a: alarm, at: createdAt}:
		return true
	default:
		a.dropped.Add(1)
		a.cfg.Logger.Warn("alarm dropped: queue full", "chain", alarm.ChainID, "detector", alarm.Detector, "queue_capacity", a.cfg.QueueDepth)
		return false
	}
}

func (a *Async) run() {
	defer a.wg.Done()
	for q := range a.queue {
		var err error
		backoff := a.cfg.Backoff
		for attempt := 0; attempt <= a.cfg.Retries; attempt++ {
			if err = a.sink.Push(q.a, q.at); err == nil {
				break
			}
			a.errors.Add(1)
			if attempt == a.cfg.Retries {
				break
			}
			// The backoff wait must not outlive Close: against an unreachable
			// store, an uncancellable sleep would stretch shutdown by the full
			// exponential ladder for every queued alarm. Once stop closes, the
			// waits are skipped but the attempts are not — deliverable alarms
			// still drain at full retry fidelity.
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
				backoff *= 2
			case <-a.stop:
				timer.Stop()
			}
		}
		if err != nil {
			a.dropped.Add(1)
			a.cfg.Logger.Error("alarm undeliverable", "chain", q.a.ChainID, "detector", q.a.Detector, "retries", a.cfg.Retries, "err", err)
		} else {
			a.pushed.Add(1)
		}
	}
}

// Close stops admission, drains queued alarms through the sink (including
// retries), and waits for delivery to finish. Draining skips the backoff
// waits: even with a permanently failing sink, Close returns within roughly
// one backoff interval plus the time the remaining Push attempts take.
func (a *Async) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	a.mu.Unlock()
	close(a.stop)
	close(a.queue)
	a.wg.Wait()
}

// Pushed returns alarms successfully delivered.
func (a *Async) Pushed() uint64 { return a.pushed.Load() }

// Dropped returns alarms lost to overflow or exhausted retries.
func (a *Async) Dropped() uint64 { return a.dropped.Load() }

// Errors returns individual failed delivery attempts.
func (a *Async) Errors() uint64 { return a.errors.Load() }
