package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSeriesCSV checks the CSV reader never panics and that accepted
// inputs survive a write→read round trip.
func FuzzReadSeriesCSV(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteSeriesCSV(&seed, demoSeries(), []string{"f1", "f2"})
	f.Add(seed.String())
	f.Add("time,testbed,sut,testcase,build,f1,ru,anomalous\n")
	f.Add("time,testbed,sut,testcase,build,f1,ru,anomalous\n1,a,b,c,d,1.5,50,1\n")
	f.Add("garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		s, names, err := ReadSeriesCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted series fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteSeriesCSV(&buf, s, names); err != nil {
			t.Fatalf("accepted series failed to write: %v", err)
		}
		s2, _, err := ReadSeriesCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if s2.Len() != s.Len() || s2.Env != s.Env {
			t.Fatalf("round trip changed series")
		}
	})
}
