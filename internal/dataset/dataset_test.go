package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"env2vec/internal/envmeta"
	"env2vec/internal/tensor"
)

func demoSeries() *Series {
	return &Series{
		Env:     envmeta.Environment{Testbed: "tb1", SUT: "db", Testcase: "load", Build: "S01"},
		ChainID: "tb1|db|load",
		Times:   []int64{100, 200, 300, 400, 500},
		CF:      tensor.FromRows([][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {5, 50}}),
		RU:      []float64{0.1, 0.2, 0.3, 0.4, 0.5},
		Anomalous: []bool{
			false, false, true, false, false,
		},
	}
}

func TestSeriesValidate(t *testing.T) {
	s := demoSeries()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := demoSeries()
	bad.RU = bad.RU[:3]
	if bad.Validate() == nil {
		t.Fatalf("CF/RU mismatch should error")
	}
	bad2 := demoSeries()
	bad2.Times = bad2.Times[:2]
	if bad2.Validate() == nil {
		t.Fatalf("times mismatch should error")
	}
	bad3 := demoSeries()
	bad3.Anomalous = bad3.Anomalous[:1]
	if bad3.Validate() == nil {
		t.Fatalf("labels mismatch should error")
	}
}

func TestWindowExamples(t *testing.T) {
	s := demoSeries()
	exs := WindowExamples(s, 2)
	if len(exs) != 3 {
		t.Fatalf("want 3 examples, got %d", len(exs))
	}
	first := exs[0]
	if first.Y != 0.3 || first.Window[0] != 0.1 || first.Window[1] != 0.2 {
		t.Fatalf("window assembly wrong: %+v", first)
	}
	if first.CF[0] != 3 || first.Time != 300 || !first.Anomalous {
		t.Fatalf("aligned fields wrong: %+v", first)
	}
	if len(WindowExamples(s, 10)) != 0 {
		t.Fatalf("too-long window should give no examples")
	}
	zero := WindowExamples(s, 0)
	if len(zero) != 5 || zero[0].Window != nil {
		t.Fatalf("window 0 should keep all steps with nil windows")
	}
}

func TestWindowExamplesNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	WindowExamples(demoSeries(), -1)
}

func TestToBatch(t *testing.T) {
	s := demoSeries()
	schema := envmeta.NewSchema()
	schema.Observe(s.Env)
	exs := WindowExamples(s, 1)
	b := ToBatch(exs, schema)
	if b.Len() != 4 || b.X.Cols != 2 || b.Window.Cols != 1 {
		t.Fatalf("batch shape wrong")
	}
	if len(b.EnvIDs) != envmeta.NumFeatures || b.EnvIDs[0][0] != 1 {
		t.Fatalf("env ids wrong: %v", b.EnvIDs)
	}
	noSchema := ToBatch(exs, nil)
	if noSchema.EnvIDs != nil {
		t.Fatalf("nil schema should skip env ids")
	}
	empty := ToBatch(nil, schema)
	if empty.Len() != 0 {
		t.Fatalf("empty examples should give empty batch")
	}
}

func TestDatasetHelpers(t *testing.T) {
	s1 := demoSeries()
	s2 := demoSeries()
	s2.BuildIndex = 1
	other := demoSeries()
	other.ChainID = "tb2|db|load"
	d := &Dataset{FeatureNames: []string{"a", "b"}, Series: []*Series{s1, s2, other}}
	if d.NumExamples(2) != 9 {
		t.Fatalf("NumExamples = %d", d.NumExamples(2))
	}
	chains := d.Chains()
	if len(chains) != 2 || len(chains["tb1|db|load"]) != 2 {
		t.Fatalf("Chains wrong: %v", chains)
	}
}

func TestStandardizer(t *testing.T) {
	x := tensor.FromRows([][]float64{{1, 5}, {3, 5}, {5, 5}})
	std := FitStandardizer(x.Clone())
	if std.Mean[0] != 3 || std.Mean[1] != 5 {
		t.Fatalf("mean wrong: %v", std.Mean)
	}
	if std.Std[1] != 1 {
		t.Fatalf("constant column must get Std 1, got %v", std.Std[1])
	}
	y := x.Clone()
	std.Apply(y)
	// Standardized first column has mean 0.
	if math.Abs(y.At(0, 0)+y.At(1, 0)+y.At(2, 0)) > 1e-12 {
		t.Fatalf("not centered: %v", y)
	}
	// Constant column centered to zero.
	if y.At(0, 1) != 0 {
		t.Fatalf("constant column should center to 0, got %v", y.At(0, 1))
	}
}

func TestStandardizerDimPanics(t *testing.T) {
	std := FitStandardizer(tensor.New(2, 3))
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	std.Apply(tensor.New(2, 4))
}

func TestSplitExamplesAndStandardize(t *testing.T) {
	s := demoSeries()
	exs := WindowExamples(s, 1)
	split, err := SplitExamples(exs, 2, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if split.Train.Len() != 2 || split.Val.Len() != 1 || split.Test.Len() != 1 {
		t.Fatalf("split sizes wrong")
	}
	if _, err := SplitExamples(exs, 3, 3, 3, nil); err == nil {
		t.Fatalf("oversized split should error")
	}
	std := StandardizeSplit(split)
	if len(std.Mean) != 2 {
		t.Fatalf("standardizer not fitted")
	}
	// Train columns are centered.
	if math.Abs(split.Train.X.At(0, 0)+split.Train.X.At(1, 0)) > 1e-12 {
		t.Fatalf("train not centered")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := demoSeries()
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, s, []string{"f1", "f2"}); err != nil {
		t.Fatal(err)
	}
	got, names, err := ReadSeriesCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "f1" {
		t.Fatalf("feature names wrong: %v", names)
	}
	if got.Env != s.Env || got.ChainID != s.ChainID {
		t.Fatalf("env/chain wrong: %+v", got)
	}
	if !tensor.Equal(got.CF, s.CF, 0) {
		t.Fatalf("CF wrong")
	}
	for i := range s.RU {
		if got.RU[i] != s.RU[i] || got.Times[i] != s.Times[i] || got.Anomalous[i] != s.Anomalous[i] {
			t.Fatalf("row %d wrong", i)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	s := demoSeries()
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, s, []string{"onlyone"}); err == nil {
		t.Fatalf("wrong feature-name count should error")
	}
	if _, _, err := ReadSeriesCSV(bytes.NewReader(nil)); err == nil {
		t.Fatalf("empty csv should error")
	}
	if _, _, err := ReadSeriesCSV(bytes.NewBufferString("time,testbed\n")); err == nil {
		t.Fatalf("short header should error")
	}
	badRU := "time,testbed,sut,testcase,build,f1,ru,anomalous\n1,a,b,c,d,1.0,notanumber,0\n"
	if _, _, err := ReadSeriesCSV(bytes.NewBufferString(badRU)); err == nil {
		t.Fatalf("bad ru should error")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	s := demoSeries()
	path := t.TempDir() + "/series.csv"
	if err := SaveSeriesFile(path, s, []string{"f1", "f2"}); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadSeriesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("length mismatch after file round trip")
	}
}

// Property: every example's window is exactly the RU values preceding its
// target position, for random series and window lengths.
func TestWindowAlignmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		w := rng.Intn(n)
		s := &Series{
			Env: envmeta.Environment{Testbed: "t", SUT: "s", Testcase: "c", Build: "B1"},
			CF:  tensor.New(n, 1),
			RU:  make([]float64, n),
		}
		for i := range s.RU {
			s.RU[i] = rng.Float64()
			s.CF.Set(i, 0, float64(i))
		}
		exs := WindowExamples(s, w)
		if len(exs) != n-w {
			return false
		}
		for k, ex := range exs {
			p := w + k
			if ex.Y != s.RU[p] || ex.CF[0] != float64(p) {
				return false
			}
			for j := 0; j < w; j++ {
				if ex.Window[j] != s.RU[p-w+j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatDataframe(t *testing.T) {
	s := demoSeries()
	exs := WindowExamples(s, 2)
	out := FormatDataframe(exs[0], []string{"demand", "sessions"})
	for _, want := range []string{"demand", "Testbed", "tb1", "S01", "cpu[t-1]", "cpu_usage", "Dataframe"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dataframe missing %q:\n%s", want, out)
		}
	}
	// Windowless example renders without RU history rows.
	zero := WindowExamples(s, 0)
	out0 := FormatDataframe(zero[0], []string{"demand", "sessions"})
	if strings.Contains(out0, "cpu[t-") {
		t.Fatalf("windowless dataframe should have no history rows")
	}
}
