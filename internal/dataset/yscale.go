package dataset

import (
	"env2vec/internal/nn"
	"env2vec/internal/stats"
	"env2vec/internal/tensor"
)

// YScaler standardizes regression targets (and the RU-history window, which
// shares the target's units) for neural-network training: raw CPU values of
// tens-to-hundreds would dwarf Glorot-scale initial outputs and slow Adam
// badly. Predictions are mapped back to raw units before metrics or anomaly
// thresholds are computed, so everything user-visible stays in CPU points.
type YScaler struct {
	Mu, Sigma float64
}

// FitYScaler learns the target scale from a training batch.
func FitYScaler(b *nn.Batch) YScaler {
	g := stats.FitGaussian(b.Y.Data)
	if g.Sigma == 0 {
		g.Sigma = 1
	}
	return YScaler{Mu: g.Mu, Sigma: g.Sigma}
}

// sigma returns the effective scale; a zero-valued YScaler acts as the
// identity transform so hand-assembled pipelines keep working.
func (ys YScaler) sigma() float64 {
	if ys.Sigma == 0 {
		return 1
	}
	return ys.Sigma
}

// Scale returns a batch view with standardized targets and window values;
// X and EnvIDs are shared with the input.
func (ys YScaler) Scale(b *nn.Batch) *nn.Batch {
	out := &nn.Batch{X: b.X, EnvIDs: b.EnvIDs}
	out.Y = tensor.New(b.Y.Rows, 1)
	for i, v := range b.Y.Data {
		out.Y.Data[i] = (v - ys.Mu) / ys.sigma()
	}
	if b.Window != nil {
		out.Window = tensor.New(b.Window.Rows, b.Window.Cols)
		for i, v := range b.Window.Data {
			out.Window.Data[i] = (v - ys.Mu) / ys.sigma()
		}
	}
	return out
}

// ScaleInPlace standardizes the batch's targets and window values where
// they sit — the allocation-free form of Scale for callers that own the
// batch outright (the serve worker builds a private batch per forward
// pass). Either tensor may be nil. The arithmetic matches Scale exactly,
// so the two paths agree bit-for-bit.
func (ys YScaler) ScaleInPlace(b *nn.Batch) {
	if b.Y != nil {
		for i, v := range b.Y.Data {
			b.Y.Data[i] = (v - ys.Mu) / ys.sigma()
		}
	}
	if b.Window != nil {
		for i, v := range b.Window.Data {
			b.Window.Data[i] = (v - ys.Mu) / ys.sigma()
		}
	}
}

// Unscale maps standardized predictions back to raw units.
func (ys YScaler) Unscale(pred []float64) []float64 {
	out := make([]float64, len(pred))
	for i, v := range pred {
		out[i] = v*ys.sigma() + ys.Mu
	}
	return out
}

// UnscaleInPlace maps standardized predictions back to raw units where they
// sit, for callers recycling the prediction slice.
func (ys YScaler) UnscaleInPlace(pred []float64) {
	for i, v := range pred {
		pred[i] = v*ys.sigma() + ys.Mu
	}
}
