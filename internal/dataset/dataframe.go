package dataset

import (
	"fmt"
	"strings"
)

// FormatDataframe renders one example as the Table 2-style dataframe the
// prediction pipeline assembles from the TSDB: contextual features (WMs +
// PMs), environment metadata, the RU history window, and the observed
// target. It is a debugging/observability aid for testing engineers
// inspecting what the model saw at an alarmed timestep.
func FormatDataframe(ex Example, featureNames []string) string {
	var b strings.Builder
	b.WriteString("┌ Dataframe ──────────────────────────────\n")
	b.WriteString("│ CFs\n")
	for j, name := range featureNames {
		v := 0.0
		if j < len(ex.CF) {
			v = ex.CF[j]
		}
		fmt.Fprintf(&b, "│   %-24s %12.4f\n", name, v)
	}
	b.WriteString("│ EM\n")
	fmt.Fprintf(&b, "│   %-24s %12s\n", "Testbed", ex.Env.Testbed)
	fmt.Fprintf(&b, "│   %-24s %12s\n", "System Under Test", ex.Env.SUT)
	fmt.Fprintf(&b, "│   %-24s %12s\n", "Test Case", ex.Env.Testcase)
	fmt.Fprintf(&b, "│   %-24s %12s\n", "Build Version", ex.Env.Build)
	b.WriteString("│ RU Hist\n")
	for k, v := range ex.Window {
		fmt.Fprintf(&b, "│   cpu[t-%d]%18s %10.4f\n", len(ex.Window)-k, "", v)
	}
	b.WriteString("│ RU\n")
	fmt.Fprintf(&b, "│   %-24s %12.4f\n", "cpu_usage", ex.Y)
	if ex.Time != 0 {
		fmt.Fprintf(&b, "│   %-24s %12d\n", "time", ex.Time)
	}
	b.WriteString("└─────────────────────────────────────────\n")
	return b.String()
}
