package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"env2vec/internal/envmeta"
	"env2vec/internal/tensor"
)

// WriteSeriesCSV writes a series as a flat table: time, the four EM tuple
// columns, the contextual features, the RU target, and the anomaly label.
// The layout mirrors the dataframe of Table 2 pulled from the TSDB.
func WriteSeriesCSV(w io.Writer, s *Series, featureNames []string) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if len(featureNames) != s.CF.Cols {
		return fmt.Errorf("dataset: %d feature names for %d columns", len(featureNames), s.CF.Cols)
	}
	cw := csv.NewWriter(w)
	header := append([]string{"time", "testbed", "sut", "testcase", "build"}, featureNames...)
	header = append(header, "ru", "anomalous")
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < s.Len(); i++ {
		row := make([]string, 0, len(header))
		var ts int64
		if len(s.Times) == s.Len() {
			ts = s.Times[i]
		}
		row = append(row, strconv.FormatInt(ts, 10),
			s.Env.Testbed, s.Env.SUT, s.Env.Testcase, s.Env.Build)
		for _, v := range s.CF.Row(i) {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		row = append(row, strconv.FormatFloat(s.RU[i], 'g', -1, 64))
		anom := "0"
		if s.Anomalous != nil && s.Anomalous[i] {
			anom = "1"
		}
		row = append(row, anom)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSeriesCSV parses a table written by WriteSeriesCSV, returning the
// series and the feature names from the header.
func ReadSeriesCSV(r io.Reader) (*Series, []string, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(rows) < 1 {
		return nil, nil, fmt.Errorf("dataset: csv has no header")
	}
	header := rows[0]
	const fixed = 5 // time + 4 EM columns
	if len(header) < fixed+2 {
		return nil, nil, fmt.Errorf("dataset: csv header too short (%d columns)", len(header))
	}
	featureNames := append([]string(nil), header[fixed:len(header)-2]...)
	nf := len(featureNames)
	s := &Series{CF: tensor.New(len(rows)-1, nf)}
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, nil, fmt.Errorf("dataset: csv row %d has %d fields, want %d", i+1, len(row), len(header))
		}
		ts, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: csv row %d time: %w", i+1, err)
		}
		s.Times = append(s.Times, ts)
		env := envmeta.Environment{Testbed: row[1], SUT: row[2], Testcase: row[3], Build: row[4]}
		if i == 0 {
			s.Env = env
		} else if env != s.Env {
			return nil, nil, fmt.Errorf("dataset: csv row %d environment %v differs from %v", i+1, env, s.Env)
		}
		for j := 0; j < nf; j++ {
			v, err := strconv.ParseFloat(row[fixed+j], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("dataset: csv row %d feature %q: %w", i+1, featureNames[j], err)
			}
			s.CF.Set(i, j, v)
		}
		ru, err := strconv.ParseFloat(row[len(header)-2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: csv row %d ru: %w", i+1, err)
		}
		s.RU = append(s.RU, ru)
		s.Anomalous = append(s.Anomalous, row[len(header)-1] == "1")
	}
	s.ChainID = s.Env.Testbed + "|" + s.Env.SUT + "|" + s.Env.Testcase
	return s, featureNames, nil
}

// SaveSeriesFile writes the series to a CSV file at path.
func SaveSeriesFile(path string, s *Series, featureNames []string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: save series: %w", err)
	}
	defer f.Close()
	if err := WriteSeriesCSV(f, s, featureNames); err != nil {
		return fmt.Errorf("dataset: save series: %w", err)
	}
	return f.Close()
}

// LoadSeriesFile reads a series CSV from path.
func LoadSeriesFile(path string) (*Series, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: load series: %w", err)
	}
	defer f.Close()
	return ReadSeriesCSV(f)
}

// LoadDir reads every .csv file in dir (sorted by name) into one dataset.
// All files must share the same feature schema.
func LoadDir(dir string) (*Dataset, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dataset: load dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	ds := &Dataset{}
	for _, name := range names {
		s, feats, err := LoadSeriesFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("dataset: load %s: %w", name, err)
		}
		if ds.FeatureNames == nil {
			ds.FeatureNames = feats
		} else if !equalStrings(ds.FeatureNames, feats) {
			return nil, fmt.Errorf("dataset: %s has a different feature schema", name)
		}
		ds.Series = append(ds.Series, s)
	}
	if len(ds.Series) == 0 {
		return nil, fmt.Errorf("dataset: no CSV files in %s", dir)
	}
	return ds, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
