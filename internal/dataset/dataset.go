// Package dataset provides the data plumbing between generators
// (internal/kdn, internal/telecom), the environment schema, and model
// batches: contextual time series as defined in §1 of the paper, sliding
// RU-history windows, feature standardization, train/val/test splits, and
// CSV import/export.
package dataset

import (
	"fmt"
	"math"

	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// Series is one test execution: the contextual time series of a single
// build in a build chain (Appendix A). CF rows align with RU values.
type Series struct {
	Env        envmeta.Environment
	ChainID    string // testbed|sut|testcase key identifying the build chain
	BuildIndex int    // position within the chain (0 = oldest build)
	Times      []int64
	CF         *tensor.Matrix // steps×features contextual features
	RU         []float64      // steps resource-usage targets
	Anomalous  []bool         // ground-truth anomaly labels; nil when unlabeled
}

// Len returns the number of timesteps in the series.
func (s *Series) Len() int { return len(s.RU) }

// Validate checks internal consistency.
func (s *Series) Validate() error {
	if s.CF.Rows != len(s.RU) {
		return fmt.Errorf("dataset: series %s CF rows %d != RU len %d", s.Env, s.CF.Rows, len(s.RU))
	}
	if len(s.Times) != 0 && len(s.Times) != len(s.RU) {
		return fmt.Errorf("dataset: series %s times len %d != RU len %d", s.Env, len(s.Times), len(s.RU))
	}
	if s.Anomalous != nil && len(s.Anomalous) != len(s.RU) {
		return fmt.Errorf("dataset: series %s labels len %d != RU len %d", s.Env, len(s.Anomalous), len(s.RU))
	}
	return nil
}

// Dataset is a collection of series sharing a contextual-feature schema.
type Dataset struct {
	FeatureNames []string
	Series       []*Series
}

// NumExamples returns the total number of window examples available with
// history length window (each series contributes len−window examples).
func (d *Dataset) NumExamples(window int) int {
	n := 0
	for _, s := range d.Series {
		if s.Len() > window {
			n += s.Len() - window
		}
	}
	return n
}

// Chains groups the series by ChainID, preserving build order within each
// chain.
func (d *Dataset) Chains() map[string][]*Series {
	out := make(map[string][]*Series)
	for _, s := range d.Series {
		out[s.ChainID] = append(out[s.ChainID], s)
	}
	return out
}

// Example is one supervised instance assembled from a series.
type Example struct {
	Env       envmeta.Environment
	ChainID   string
	Time      int64
	CF        []float64
	Window    []float64 // previous `window` RU values, oldest first
	Y         float64
	Anomalous bool
}

// WindowExamples slides a window of length window over the series, emitting
// one example per timestep p ∈ [window, len).
func WindowExamples(s *Series, window int) []Example {
	if window < 0 {
		panic(fmt.Sprintf("dataset: negative window %d", window))
	}
	n := s.Len()
	if n <= window {
		return nil
	}
	out := make([]Example, 0, n-window)
	for p := window; p < n; p++ {
		ex := Example{
			Env:     s.Env,
			ChainID: s.ChainID,
			CF:      append([]float64(nil), s.CF.Row(p)...),
			Y:       s.RU[p],
		}
		if window > 0 {
			ex.Window = append([]float64(nil), s.RU[p-window:p]...)
		}
		if len(s.Times) == n {
			ex.Time = s.Times[p]
		}
		if s.Anomalous != nil {
			ex.Anomalous = s.Anomalous[p]
		}
		out = append(out, ex)
	}
	return out
}

// ToBatch converts examples to an nn.Batch, encoding environments through
// the schema (without growing it). Window and EnvIDs are omitted when,
// respectively, the examples carry no window or schema is nil.
func ToBatch(examples []Example, schema *envmeta.Schema) *nn.Batch {
	if len(examples) == 0 {
		return &nn.Batch{X: tensor.New(0, 0), Y: tensor.New(0, 1)}
	}
	f := len(examples[0].CF)
	w := len(examples[0].Window)
	b := &nn.Batch{X: tensor.New(len(examples), f), Y: tensor.New(len(examples), 1)}
	if w > 0 {
		b.Window = tensor.New(len(examples), w)
	}
	if schema != nil {
		b.EnvIDs = make([][]int, envmeta.NumFeatures)
		for k := range b.EnvIDs {
			b.EnvIDs[k] = make([]int, len(examples))
		}
	}
	for i, ex := range examples {
		if len(ex.CF) != f {
			panic(fmt.Sprintf("dataset: example %d has %d features, want %d", i, len(ex.CF), f))
		}
		copy(b.X.Row(i), ex.CF)
		b.Y.Data[i] = ex.Y
		if w > 0 {
			if len(ex.Window) != w {
				panic(fmt.Sprintf("dataset: example %d has window %d, want %d", i, len(ex.Window), w))
			}
			copy(b.Window.Row(i), ex.Window)
		}
		if schema != nil {
			ids := schema.Encode(ex.Env)
			for k := range b.EnvIDs {
				b.EnvIDs[k][i] = ids[k]
			}
		}
	}
	return b
}

// Standardizer scales features to zero mean and unit variance using
// statistics from the training set only (the usual leakage-free protocol).
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-column statistics of x. Columns with zero
// variance get Std 1 so they pass through unchanged after centering.
func FitStandardizer(x *tensor.Matrix) *Standardizer {
	s := &Standardizer{Mean: make([]float64, x.Cols), Std: make([]float64, x.Cols)}
	n := float64(x.Rows)
	if n == 0 {
		for j := range s.Std {
			s.Std[j] = 1
		}
		return s
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.Row(i) {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply standardizes x in place.
func (s *Standardizer) Apply(x *tensor.Matrix) {
	if x.Cols != len(s.Mean) {
		panic(fmt.Sprintf("dataset: standardizer fitted on %d cols, got %d", len(s.Mean), x.Cols))
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = (row[j] - s.Mean[j]) / s.Std[j]
		}
	}
}

// Split holds the three standard partitions as ready model batches.
type Split struct {
	Train, Val, Test *nn.Batch
}

// SplitExamples partitions examples by count into train/val/test in order
// (time-respecting, as the paper treats the latest build as test data).
func SplitExamples(examples []Example, nTrain, nVal, nTest int, schema *envmeta.Schema) (*Split, error) {
	if nTrain+nVal+nTest > len(examples) {
		return nil, fmt.Errorf("dataset: split %d+%d+%d exceeds %d examples", nTrain, nVal, nTest, len(examples))
	}
	return &Split{
		Train: ToBatch(examples[:nTrain], schema),
		Val:   ToBatch(examples[nTrain:nTrain+nVal], schema),
		Test:  ToBatch(examples[nTrain+nVal:nTrain+nVal+nTest], schema),
	}, nil
}

// StandardizeSplit fits on the training features and applies the same
// transform to all three partitions, returning the fitted standardizer.
func StandardizeSplit(s *Split) *Standardizer {
	std := FitStandardizer(s.Train.X)
	std.Apply(s.Train.X)
	if s.Val != nil && s.Val.Len() > 0 {
		std.Apply(s.Val.X)
	}
	if s.Test != nil && s.Test.Len() > 0 {
		std.Apply(s.Test.X)
	}
	return std
}
