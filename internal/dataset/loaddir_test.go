package dataset

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	s1 := demoSeries()
	s2 := demoSeries()
	s2.Env.Build = "S02"
	if err := SaveSeriesFile(filepath.Join(dir, "b.csv"), s2, []string{"f1", "f2"}); err != nil {
		t.Fatal(err)
	}
	if err := SaveSeriesFile(filepath.Join(dir, "a.csv"), s1, []string{"f1", "f2"}); err != nil {
		t.Fatal(err)
	}
	// Non-CSV files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Series) != 2 {
		t.Fatalf("loaded %d series", len(ds.Series))
	}
	// Sorted by filename: a.csv (S01) first.
	if ds.Series[0].Env.Build != "S01" || ds.Series[1].Env.Build != "S02" {
		t.Fatalf("order wrong: %v %v", ds.Series[0].Env, ds.Series[1].Env)
	}
	if len(ds.FeatureNames) != 2 {
		t.Fatalf("feature names missing")
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatalf("missing dir should error")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil {
		t.Fatalf("empty dir should error")
	}
	// Mismatched schemas are rejected.
	dir := t.TempDir()
	s := demoSeries()
	if err := SaveSeriesFile(filepath.Join(dir, "a.csv"), s, []string{"f1", "f2"}); err != nil {
		t.Fatal(err)
	}
	if err := SaveSeriesFile(filepath.Join(dir, "b.csv"), s, []string{"g1", "g2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir); err == nil {
		t.Fatalf("schema mismatch should error")
	}
	// Corrupt CSV is rejected.
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "bad.csv"), []byte("nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(dir2); err == nil {
		t.Fatalf("corrupt csv should error")
	}
}
