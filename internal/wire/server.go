package wire

import (
	"bufio"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"

	"env2vec/internal/obs"
	"env2vec/internal/serve"
)

// ServerConfig sizes the binary-protocol listener.
type ServerConfig struct {
	// MaxPayload caps one frame's payload (default DefaultMaxPayload).
	// Larger frames are rejected with a connection-level error — the
	// binary-path twin of the JSON handlers' MaxBytesReader.
	MaxPayload int
	// StreamInflight caps pipelined windows per subscribed connection
	// (default 64); the cap is what bounds a runaway subscriber to one
	// connection's worth of queue slots.
	StreamInflight int
	// Obs is the metrics registry (nil gets a private one); Logger
	// receives structured connection events (nil discards).
	Obs    *obs.Registry
	Logger *slog.Logger
}

// Server serves the wire protocol beside a serve.Server's JSON listener.
// Decoded batches enter the same micro-batcher through DoBatch; subscribed
// connections stream windows in and predictions out over one persistent
// connection per environment.
type Server struct {
	dispatch *serve.Server
	cfg      ServerConfig
	log      *slog.Logger

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup

	connsTotal, subsTotal    *obs.Counter
	framesIn, framesOut      *obs.Counter
	batchReqs, streamWindows *obs.Counter
	protoErrors              *obs.Counter
}

// NewServer builds a wire server over the prediction engine.
func NewServer(dispatch *serve.Server, cfg ServerConfig) *Server {
	if dispatch == nil {
		panic("wire: NewServer(nil dispatcher)")
	}
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	if cfg.StreamInflight <= 0 {
		cfg.StreamInflight = 64
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.DiscardLogger()
	}
	s := &Server{
		dispatch:  dispatch,
		cfg:       cfg,
		log:       logger,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.connsTotal = reg.Counter("env2vec_wire_connections_total", "Wire-protocol connections accepted.", nil)
	s.subsTotal = reg.Counter("env2vec_wire_subscriptions_total", "Subscribe-mode sessions opened.", nil)
	s.framesIn = reg.Counter("env2vec_wire_frames_total", "Wire frames by direction.", obs.Labels{"dir": "in"})
	s.framesOut = reg.Counter("env2vec_wire_frames_total", "Wire frames by direction.", obs.Labels{"dir": "out"})
	s.batchReqs = reg.Counter("env2vec_wire_batch_requests_total", "Predict requests carried by batch frames.", nil)
	s.streamWindows = reg.Counter("env2vec_wire_stream_windows_total", "Windows carried by subscribe-mode streams.", nil)
	s.protoErrors = reg.Counter("env2vec_wire_protocol_errors_total", "Connections dropped for malformed or out-of-order frames.", nil)
	return s
}

// Serve accepts connections on ln until the listener or the server closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server closed")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.connsTotal.Inc()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listeners, severs live connections, and waits for
// connection handlers to unwind. In-flight forward passes complete inside
// the serve.Server; this only tears down the transport.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// connWriter serializes frame writes from the read loop and the pipelined
// stream responders onto one buffered connection.
type connWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	out *obs.Counter
}

func (cw *connWriter) write(typ byte, payload []byte) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if err := WriteFrame(cw.bw, typ, payload); err != nil {
		return err
	}
	cw.out.Inc()
	return cw.bw.Flush()
}

// handleConn speaks the protocol on one connection: Hello negotiation,
// then batch predicts and/or one subscribe-mode stream.
func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	cw := &connWriter{bw: bufio.NewWriterSize(conn, 64<<10), out: s.framesOut}
	fail := func(code int, msg string) {
		s.protoErrors.Inc()
		_ = cw.write(FrameError, AppendError(nil, ErrorFrame{Code: code, Message: msg}))
	}

	// Handshake: the first frame must be a Hello whose version we speak.
	f, err := ReadFrame(br, s.cfg.MaxPayload)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			fail(http.StatusBadRequest, err.Error())
		}
		return
	}
	s.framesIn.Inc()
	if f.Type != FrameHello {
		fail(http.StatusBadRequest, "wire: expected Hello")
		return
	}
	hello, err := DecodeHello(f.Payload)
	if err != nil {
		fail(http.StatusBadRequest, err.Error())
		return
	}
	if hello.Version != ProtocolVersion {
		fail(http.StatusHTTPVersionNotSupported, ErrVersion.Error())
		return
	}
	if err := cw.write(FrameHelloAck, AppendHello(nil, Hello{
		Version: ProtocolVersion, Features: FeatureBatch | FeatureSubscribe,
	})); err != nil {
		return
	}

	// Stream state: one subscription per connection, windows pipelined up
	// to StreamInflight. The WaitGroup keeps responders alive past a read
	// error so already-enqueued windows still answer.
	var sub *Subscribe
	sem := make(chan struct{}, s.cfg.StreamInflight)
	var wg sync.WaitGroup
	defer wg.Wait()

	for {
		f, err := ReadFrame(br, s.cfg.MaxPayload)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				fail(http.StatusBadRequest, err.Error())
			}
			return
		}
		s.framesIn.Inc()
		switch f.Type {
		case FramePredictBatch:
			reqs, err := DecodePredictBatch(f.Payload)
			if err != nil {
				fail(http.StatusBadRequest, err.Error())
				return
			}
			s.batchReqs.Add(uint64(len(reqs)))
			results := s.dispatch.DoBatch(reqs)
			replies := make([]Reply, len(results))
			for i, res := range results {
				replies[i] = ReplyFromResult(reqs[i].RequestID, res.Resp, res.Code, res.Err)
			}
			if err := cw.write(FramePredictReply, AppendPredictReplies(nil, replies)); err != nil {
				return
			}

		case FrameSubscribe:
			req, err := DecodeSubscribe(f.Payload)
			if err != nil {
				fail(http.StatusBadRequest, err.Error())
				return
			}
			if sub != nil {
				fail(http.StatusBadRequest, "wire: already subscribed")
				return
			}
			b := s.dispatch.Bundle()
			if b == nil {
				fail(http.StatusServiceUnavailable, serve.ErrNoModel.Error())
				return
			}
			sub = &req
			s.subsTotal.Inc()
			cfg := b.Model.Config()
			if err := cw.write(FrameSubscribeAck, AppendSubscribeAck(nil, SubscribeAck{
				Model: b.Name, Version: b.Version, In: cfg.In, Window: cfg.Window,
			})); err != nil {
				return
			}

		case FrameWindow:
			if sub == nil {
				fail(http.StatusBadRequest, "wire: Window before Subscribe")
				return
			}
			wnd, err := DecodeWindow(f.Payload)
			if err != nil {
				fail(http.StatusBadRequest, err.Error())
				return
			}
			s.streamWindows.Inc()
			env, chain := sub.Env, sub.ChainID
			sem <- struct{}{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				req := &serve.Request{
					CF: wnd.CF, Window: wnd.Window,
					Testbed: env.Testbed, SUT: env.SUT,
					Testcase: env.Testcase, Build: env.Build,
					ChainID: chain, Actual: wnd.Actual,
					RequestID: wnd.RequestID,
				}
				resp, code, err := s.dispatch.Do(req)
				pred := Prediction{Seq: wnd.Seq, Status: code}
				if err != nil {
					pred.Error = err.Error()
				} else {
					pred.Status = http.StatusOK
					pred.Value = resp.Prediction
					pred.ModelVersion = resp.ModelVersion
					pred.Anomalous = resp.Anomalous
					pred.Deviation = resp.Deviation
				}
				_ = cw.write(FramePrediction, AppendPrediction(nil, pred))
			}()

		default:
			fail(http.StatusBadRequest, "wire: unexpected frame type")
			return
		}
	}
}
