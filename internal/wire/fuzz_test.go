package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"

	"env2vec/internal/obs"
	"env2vec/internal/serve"
)

// decodeErrs are the only errors the decoders are allowed to return: every
// failure must be typed, never a panic and never an unwrapped fmt error.
var decodeErrs = []error{ErrBadMagic, ErrBadCRC, ErrTooLarge, ErrTruncated, ErrCorrupt, ErrVersion}

func isTyped(err error) bool {
	for _, sentinel := range decodeErrs {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// FuzzWireDecode throws arbitrary bytes at the frame reader and every
// payload decoder. Truncated, bit-flipped, oversized, and interleaved
// frames must come back as typed errors — a panic or an untyped error
// fails the run.
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: valid frames of every type, concatenations, and a few
	// deliberately broken variants so the fuzzer starts near the
	// interesting boundaries.
	actual := 51.5
	reqs := []*serve.Request{{
		CF: []float64{1, 2, 3}, Window: []float64{4, 5},
		Testbed: "tb", SUT: "s", Testcase: "tc", Build: "b",
		ChainID: "c", Actual: &actual, RequestID: "0123456789abcdef",
	}}
	anom := true
	replies := []Reply{{
		RequestID: "0123456789abcdef", Status: 200, Prediction: 49.5,
		Model: "m", ModelVersion: 2, BatchSize: 4, Anomalous: &anom,
		Spans: []obs.Span{{TraceID: "0123456789abcdef", SpanID: "aa", Name: "serve.request"}},
	}}
	seeds := [][]byte{
		AppendFrame(nil, FrameHello, AppendHello(nil, Hello{Version: 1, Features: 3})),
		AppendFrame(nil, FramePredictBatch, AppendPredictBatch(nil, reqs)),
		AppendFrame(nil, FramePredictReply, AppendPredictReplies(nil, replies)),
		AppendFrame(nil, FrameSubscribe, AppendSubscribe(nil, Subscribe{Env: testEnv, ChainID: "c1"})),
		AppendFrame(nil, FrameSubscribeAck, AppendSubscribeAck(nil, SubscribeAck{Model: "m", Version: 1, In: 6, Window: 20})),
		AppendFrame(nil, FrameWindow, AppendWindow(nil, Window{Seq: 1, CF: []float64{1}, Window: []float64{2}})),
		AppendFrame(nil, FramePrediction, AppendPrediction(nil, Prediction{Seq: 1, Status: 200, Value: 3.5})),
		AppendFrame(nil, FrameError, AppendError(nil, ErrorFrame{Code: 429, Seq: 7, Message: "shed"})),
		{},
		bytes.Repeat([]byte{0xFF}, 64),
	}
	// Interleaved frames and a torn tail.
	multi := append(append([]byte(nil), seeds[1]...), seeds[6]...)
	seeds = append(seeds, multi, multi[:len(multi)-3])
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxPayload = 1 << 20
		// Walk the buffer frame by frame, as the server's read loop does.
		rest := data
		for i := 0; i < 64 && len(rest) > 0; i++ {
			fr, next, err := DecodeFrame(rest, maxPayload)
			if err != nil {
				if !isTyped(err) {
					t.Fatalf("untyped frame error: %v", err)
				}
				break
			}
			if len(next) >= len(rest) {
				t.Fatalf("DecodeFrame made no progress (%d -> %d bytes)", len(rest), len(next))
			}
			rest = next
			// Every payload decoder must hold against a CRC-valid but
			// adversarial payload too (the fuzzer can forge checksums).
			var perr error
			switch fr.Type {
			case FrameHello, FrameHelloAck:
				_, perr = DecodeHello(fr.Payload)
			case FramePredictBatch:
				_, perr = DecodePredictBatch(fr.Payload)
			case FramePredictReply:
				_, perr = DecodePredictReplies(fr.Payload)
			case FrameSubscribe:
				_, perr = DecodeSubscribe(fr.Payload)
			case FrameSubscribeAck:
				_, perr = DecodeSubscribeAck(fr.Payload)
			case FrameWindow:
				_, perr = DecodeWindow(fr.Payload)
			case FramePrediction:
				_, perr = DecodePrediction(fr.Payload)
			case FrameError:
				_, perr = DecodeError(fr.Payload)
			}
			if perr != nil && !isTyped(perr) {
				t.Fatalf("untyped payload error for frame 0x%02x: %v", fr.Type, perr)
			}
		}

		// The streaming reader classifies the same bytes without hanging or
		// panicking; io.EOF only on a clean frame boundary.
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			_, err := ReadFrame(br, maxPayload)
			if err == nil {
				continue
			}
			if err != io.EOF && !isTyped(err) {
				t.Fatalf("untyped ReadFrame error: %v", err)
			}
			break
		}
	})
}
