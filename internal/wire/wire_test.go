package wire

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"math/rand"
	"net"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/obs"
	"env2vec/internal/serve"
)

var testEnv = envmeta.Environment{Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "B1"}

// newTestServe stands up a real serve.Server with a small deterministic
// bundle — the wire server dispatches into the same micro-batcher the
// JSON path uses.
func newTestServe(t *testing.T, seed int64) *serve.Server {
	t.Helper()
	cfg := core.Config{In: 3, Hidden: 8, GRUHidden: 4, EmbedDim: 3, Window: 2, Seed: seed}
	schema := envmeta.NewSchema()
	schema.Observe(testEnv)
	schema.Freeze()
	b := &serve.Bundle{
		Name: "test", Version: 1,
		Model:  core.New(cfg, schema),
		Schema: schema,
		YScale: dataset.YScaler{Mu: 50, Sigma: 10},
	}
	s := serve.New(serve.Config{MaxBatch: 8, MaxLinger: time.Millisecond, QueueDepth: 256, Workers: 2})
	t.Cleanup(s.Close)
	s.SetBundle(b)
	return s
}

// newTestWire wires a wire.Server to a TCP listener; returns its address.
func newTestWire(t *testing.T, dispatch *serve.Server, cfg ServerConfig) string {
	t.Helper()
	ws := NewServer(dispatch, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ws.Serve(ln) }()
	t.Cleanup(ws.Close)
	return ln.Addr().String()
}

func testRequest(rng *rand.Rand, id string) *serve.Request {
	req := &serve.Request{
		CF:      []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
		Window:  []float64{50 + rng.NormFloat64(), 50 + rng.NormFloat64()},
		Testbed: testEnv.Testbed, SUT: testEnv.SUT, Testcase: testEnv.Testcase, Build: testEnv.Build,
		RequestID: id,
	}
	return req
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 4096)}
	for _, p := range payloads {
		raw := AppendFrame(nil, FramePredictBatch, p)
		f, rest, err := DecodeFrame(raw, 0)
		if err != nil {
			t.Fatalf("DecodeFrame(%d bytes): %v", len(p), err)
		}
		if f.Type != FramePredictBatch || !bytes.Equal(f.Payload, p) || len(rest) != 0 {
			t.Fatalf("round trip mismatch: type=%#x payload=%d rest=%d", f.Type, len(f.Payload), len(rest))
		}
		// The streaming reader agrees with the bytes decoder.
		rf, err := ReadFrame(bufio.NewReader(bytes.NewReader(raw)), 0)
		if err != nil || rf.Type != f.Type || !bytes.Equal(rf.Payload, p) {
			t.Fatalf("ReadFrame disagrees: %v", err)
		}
	}
	// Two frames back to back: rest carries the second intact.
	raw := AppendFrame(AppendFrame(nil, FrameHello, []byte("a")), FrameError, []byte("b"))
	f1, rest, err := DecodeFrame(raw, 0)
	if err != nil || f1.Type != FrameHello {
		t.Fatalf("first frame: %v", err)
	}
	f2, rest, err := DecodeFrame(rest, 0)
	if err != nil || f2.Type != FrameError || len(rest) != 0 {
		t.Fatalf("second frame: %v", err)
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	good := AppendFrame(nil, FramePredictBatch, []byte("payload"))

	if _, _, err := DecodeFrame(good[:5], 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short header: %v", err)
	}
	if _, _, err := DecodeFrame(good[:len(good)-1], 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short payload: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0x01 // flip one payload bit
	if _, _, err := DecodeFrame(bad, 0); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("flipped payload bit: %v", err)
	}
	if _, _, err := DecodeFrame(good, 3); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize: %v", err)
	}
	// Streaming reader classifies the same defects.
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(good[:7])), 0); !errors.Is(err, ErrTruncated) {
		t.Fatalf("streaming truncation: %v", err)
	}
}

func TestPredictBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	actual := 51.5
	reqs := []*serve.Request{
		testRequest(rng, "0123456789abcdef"),
		{
			CF: []float64{1}, Window: []float64{2, 3},
			Testbed: "tb2", SUT: "s", Testcase: "tc", Build: "b",
			ChainID: "chain-1", Actual: &actual,
			RequestID:   "fedcba9876543210",
			TraceParent: obs.FormatTraceParent("fedcba9876543210", "00000000000000aa"),
		},
	}
	got, err := DecodePredictBatch(AppendPredictBatch(nil, reqs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, reqs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got[1], reqs[1])
	}

	// Trailing garbage is corruption, not tolerated slack.
	raw := append(AppendPredictBatch(nil, reqs), 0x00)
	if _, err := DecodePredictBatch(raw); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage: %v", err)
	}
	if _, err := DecodePredictBatch(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty payload: %v", err)
	}
}

func TestPredictRepliesRoundTrip(t *testing.T) {
	anom, dev := true, 1.25
	replies := []Reply{
		{
			RequestID: "0123456789abcdef", Status: 200,
			Prediction: 49.75, Model: "env2vec", ModelVersion: 7, BatchSize: 8,
			Anomalous: &anom, Deviation: &dev,
			Spans: []obs.Span{
				{TraceID: "0123456789abcdef", SpanID: "aa", Name: "serve.request", StartUnixUS: 123456, DurationMS: 1.5,
					Attrs: map[string]string{"outcome": "served"}},
				{TraceID: "0123456789abcdef", SpanID: "bb", ParentID: "aa", Name: "serve.forward", StartUnixUS: 123460, DurationMS: 0.5},
			},
		},
		{RequestID: "ffff", Status: 429, Error: "serve: queue full"},
	}
	got, err := DecodePredictReplies(AppendPredictReplies(nil, replies))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, replies) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, replies)
	}
}

func TestStreamPayloadRoundTrips(t *testing.T) {
	sub := Subscribe{Env: testEnv, ChainID: "c1"}
	if got, err := DecodeSubscribe(AppendSubscribe(nil, sub)); err != nil || got != sub {
		t.Fatalf("subscribe: %+v %v", got, err)
	}
	ack := SubscribeAck{Model: "env2vec", Version: 3, In: 6, Window: 20}
	if got, err := DecodeSubscribeAck(AppendSubscribeAck(nil, ack)); err != nil || got != ack {
		t.Fatalf("ack: %+v %v", got, err)
	}
	a := 50.5
	w := Window{Seq: 42, RequestID: "r1", CF: []float64{1, 2}, Window: []float64{3, 4}, Actual: &a}
	got, err := DecodeWindow(AppendWindow(nil, w))
	if err != nil || !reflect.DeepEqual(got, w) {
		t.Fatalf("window: %+v %v", got, err)
	}
	anom := false
	dev := 0.25
	p := Prediction{Seq: 42, Status: 200, Value: 51.25, ModelVersion: 3, Anomalous: &anom, Deviation: &dev}
	gp, err := DecodePrediction(AppendPrediction(nil, p))
	if err != nil || !reflect.DeepEqual(gp, p) {
		t.Fatalf("prediction: %+v %v", gp, err)
	}
	pe := Prediction{Seq: 43, Status: 503, Error: "serve: no model loaded"}
	if gp, err = DecodePrediction(AppendPrediction(nil, pe)); err != nil || gp != pe {
		t.Fatalf("error prediction: %+v %v", gp, err)
	}
	ef := ErrorFrame{Code: 400, Seq: 9, Message: "nope"}
	if got, err := DecodeError(AppendError(nil, ef)); err != nil || got != ef {
		t.Fatalf("error frame: %+v %v", got, err)
	}
}

// TestClientServerBatch drives batched predicts through a live wire server
// and checks the answers bit-match the JSON path's Do.
func TestClientServerBatch(t *testing.T) {
	s := newTestServe(t, 3)
	addr := newTestWire(t, s, ServerConfig{})
	c, err := Dial(addr, ClientConfig{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Features()&FeatureBatch == 0 || c.Features()&FeatureSubscribe == 0 {
		t.Fatalf("server features = %b, want batch|subscribe", c.Features())
	}

	rng := rand.New(rand.NewSource(7))
	reqs := make([]*serve.Request, 8)
	want := make([]float64, len(reqs))
	for i := range reqs {
		reqs[i] = testRequest(rng, "")
		// Reference answer through the same engine; a fresh copy so request
		// ids do not collide.
		cp := *reqs[i]
		resp, _, err := s.Do(&cp)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resp.Prediction
	}
	replies, err := c.Predict(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range replies {
		if rep.Status != 200 {
			t.Fatalf("reply %d: status %d (%s)", i, rep.Status, rep.Error)
		}
		if math.Abs(rep.Prediction-want[i]) > 1e-12 {
			t.Fatalf("reply %d: prediction %v, want %v", i, rep.Prediction, want[i])
		}
		if rep.RequestID == "" {
			t.Fatalf("reply %d: empty request id", i)
		}
		if len(rep.Spans) == 0 || rep.Spans[0].Name != "serve.request" {
			t.Fatalf("reply %d: missing stage spans: %+v", i, rep.Spans)
		}
	}

	// A malformed request inside a batch fails alone.
	bad := testRequest(rng, "")
	bad.Window = []float64{1} // wrong arity
	mixed := []*serve.Request{testRequest(rng, ""), bad}
	replies, err = c.Predict(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if replies[0].Status != 200 {
		t.Fatalf("good half of batch got %d (%s)", replies[0].Status, replies[0].Error)
	}
	if replies[1].Status != http.StatusBadRequest || replies[1].Error == "" {
		t.Fatalf("bad half of batch got %d (%s), want 400", replies[1].Status, replies[1].Error)
	}
}

// TestClientServerStream covers the subscribe lifecycle: ack carries the
// model shape, pipelined windows answer with correlated seqs, and inline
// actuals flow through.
func TestClientServerStream(t *testing.T) {
	s := newTestServe(t, 5)
	addr := newTestWire(t, s, ServerConfig{StreamInflight: 8})
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Subscribe(testEnv, "")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ack := st.Ack()
	if ack.Model != "test" || ack.Version != 1 || ack.In != 3 || ack.Window != 2 {
		t.Fatalf("ack = %+v", ack)
	}

	rng := rand.New(rand.NewSource(9))
	const n = 32
	want := make(map[uint64]float64, n)
	var recvWG sync.WaitGroup
	recvWG.Add(1)
	got := make(map[uint64]Prediction, n)
	go func() {
		defer recvWG.Done()
		for i := 0; i < n; i++ {
			p, err := st.Recv()
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			got[p.Seq] = p
		}
	}()
	for i := 0; i < n; i++ {
		cf := make([]float64, ack.In)
		win := make([]float64, ack.Window)
		for j := range cf {
			cf[j] = rng.NormFloat64()
		}
		for j := range win {
			win[j] = 50 + rng.NormFloat64()
		}
		req := &serve.Request{
			CF: append([]float64(nil), cf...), Window: append([]float64(nil), win...),
			Testbed: testEnv.Testbed, SUT: testEnv.SUT, Testcase: testEnv.Testcase, Build: testEnv.Build,
		}
		resp, _, err := s.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		seq := st.NextSeq()
		want[seq] = resp.Prediction
		if err := st.Send(Window{Seq: seq, CF: cf, Window: win}); err != nil {
			t.Fatal(err)
		}
	}
	recvWG.Wait()
	if len(got) != n {
		t.Fatalf("received %d predictions, want %d", len(got), n)
	}
	for seq, p := range got {
		if err := p.Err(); err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if math.Abs(p.Value-want[seq]) > 1e-12 {
			t.Fatalf("seq %d: %v, want %v", seq, p.Value, want[seq])
		}
	}
}

// TestProtocolViolations exercises the server's error paths: wrong
// version, window before subscribe, garbage frames.
func TestProtocolViolations(t *testing.T) {
	s := newTestServe(t, 11)
	addr := newTestWire(t, s, ServerConfig{})

	// Wrong protocol version → FrameError carrying 505.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, FrameHello, AppendHello(nil, Hello{Version: 99})); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(bufio.NewReader(conn), 0)
	if err != nil || f.Type != FrameError {
		t.Fatalf("version mismatch answer: %+v %v", f, err)
	}
	if ef, err := DecodeError(f.Payload); err != nil || ef.Code != http.StatusHTTPVersionNotSupported {
		t.Fatalf("version error = %+v %v", ef, err)
	}

	// Window before Subscribe → FrameError 400.
	c, err := Dial(addr, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.writeFrame(FrameWindow, AppendWindow(nil, Window{Seq: 1, CF: []float64{1}, Window: []float64{1, 2}})); err != nil {
		t.Fatal(err)
	}
	rf, err := ReadFrame(c.br, 0)
	if err != nil || rf.Type != FrameError {
		t.Fatalf("window-before-subscribe answer: %+v %v", rf, err)
	}

	// Garbage bytes instead of a handshake: the connection just dies —
	// no panic, no hang.
	g, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Write(bytes.Repeat([]byte{0xFF}, 256)); err != nil {
		t.Fatal(err)
	}
	_ = g.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1024)
	for {
		if _, err := g.Read(buf); err != nil {
			break // closed (possibly after an error frame) — the point is it terminates
		}
	}
}
