// Package wire is the binary serving protocol: a length-prefixed,
// CRC-32C-framed exchange that carries batched predict requests and
// responses with no JSON on the hot path, plus a subscribe mode where a
// client holds one persistent connection per environment and streams
// windows in / predictions out — the natural shape for a testbed agent
// sampling every 15 minutes at fleet scale.
//
// The framing reuses the idiom proven in the model registry's on-disk log
// (internal/modelserver/store.go): a fixed header carrying magic, length,
// and a Castagnoli checksum, followed by a uvarint/fixed-width payload
// whose decoder bounds-checks every length so arbitrary bytes can never
// panic or over-allocate (FuzzWireDecode holds it to that).
//
// Frame layout (header 14 bytes, big-endian):
//
//	magic   uint32  "E2VW"
//	type    uint8   frame type (FrameHello ... FramePrediction)
//	flags   uint8   reserved, must be 0
//	length  uint32  payload bytes (bounded by MaxPayload)
//	crc     uint32  CRC-32C (Castagnoli) of the payload
//	payload length bytes
//
// A connection opens with Hello/HelloAck version-and-feature negotiation,
// then speaks either batched request/response (FramePredictBatch →
// FramePredictReplies) or, after FrameSubscribe/FrameSubscribeAck pins an
// environment tuple, streaming windows (FrameWindow → FramePrediction,
// correlated by sequence number, pipelined). Request ids and traceparent
// fields travel in the payloads, so distributed-trace stitching works
// exactly as on the JSON path.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ProtocolVersion is negotiated in Hello/HelloAck. A server rejects a
// client whose version it does not speak with FrameError + ErrVersion.
const ProtocolVersion = 1

// Feature bits advertised in HelloAck.
const (
	// FeatureBatch: the peer serves FramePredictBatch.
	FeatureBatch uint64 = 1 << 0
	// FeatureSubscribe: the peer serves FrameSubscribe streaming.
	FeatureSubscribe uint64 = 1 << 1
)

// Frame types.
const (
	FrameHello        = 0x01 // c→s: uvarint version, uvarint features
	FrameHelloAck     = 0x02 // s→c: uvarint version, uvarint features
	FrameError        = 0x0f // s→c: uvarint code, uvarint seq (0 = connection-level), string message
	FramePredictBatch = 0x10 // c→s: batched predict requests
	FramePredictReply = 0x11 // s→c: batched predict responses
	FrameSubscribe    = 0x20 // c→s: environment tuple + chain id
	FrameSubscribeAck = 0x21 // s→c: model name, version, in, window
	FrameWindow       = 0x22 // c→s: seq, request id, cf, window, optional actual
	FramePrediction   = 0x23 // s→c: seq, status, prediction or error
)

const (
	frameMagic      = 0x45325657 // "E2VW"
	frameHeaderSize = 14

	// DefaultMaxPayload bounds one frame's payload; anything larger in a
	// header is treated as hostile rather than attempted as an allocation.
	DefaultMaxPayload = 16 << 20

	// MaxBatchItems bounds the requests one FramePredictBatch may carry;
	// larger counts are corrupt or hostile, not a bigger allocation.
	MaxBatchItems = 4096
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed protocol errors. Every decode failure surfaces as (or wraps) one
// of these — never a panic, never a silent zero value.
var (
	ErrBadMagic  = errors.New("wire: bad frame magic")
	ErrBadCRC    = errors.New("wire: frame checksum mismatch")
	ErrTooLarge  = errors.New("wire: frame payload exceeds cap")
	ErrTruncated = errors.New("wire: truncated frame")
	ErrCorrupt   = errors.New("wire: corrupt payload")
	ErrVersion   = errors.New("wire: unsupported protocol version")
)

// Frame is one decoded frame: its type byte and raw payload.
type Frame struct {
	Type    byte
	Payload []byte
}

// AppendFrame renders one frame (header + payload) onto dst.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], frameMagic)
	hdr[4] = typ
	hdr[5] = 0
	binary.BigEndian.PutUint32(hdr[6:10], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[10:14], crc32.Checksum(payload, castagnoli))
	return append(append(dst, hdr[:]...), payload...)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	_, err := w.Write(AppendFrame(nil, typ, payload))
	return err
}

// ReadFrame reads exactly one frame from r, enforcing maxPayload (≤ 0
// means DefaultMaxPayload). io.EOF is returned untouched on a clean
// boundary; a partial frame surfaces as ErrTruncated.
func ReadFrame(r *bufio.Reader, maxPayload int) (Frame, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != frameMagic {
		return Frame{}, ErrBadMagic
	}
	length := int(binary.BigEndian.Uint32(hdr[6:10]))
	if length > maxPayload {
		return Frame{}, fmt.Errorf("%w: %d bytes (cap %d)", ErrTooLarge, length, maxPayload)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if binary.BigEndian.Uint32(hdr[10:14]) != crc32.Checksum(payload, castagnoli) {
		return Frame{}, ErrBadCRC
	}
	return Frame{Type: hdr[4], Payload: payload}, nil
}

// DecodeFrame decodes the first frame in b, returning the remaining bytes.
// This is the pure-bytes twin of ReadFrame that the fuzzer drives.
func DecodeFrame(b []byte, maxPayload int) (Frame, []byte, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(b) < frameHeaderSize {
		return Frame{}, b, ErrTruncated
	}
	if binary.BigEndian.Uint32(b[0:4]) != frameMagic {
		return Frame{}, b, ErrBadMagic
	}
	length := int(binary.BigEndian.Uint32(b[6:10]))
	if length > maxPayload {
		return Frame{}, b, fmt.Errorf("%w: %d bytes (cap %d)", ErrTooLarge, length, maxPayload)
	}
	if length > len(b)-frameHeaderSize {
		return Frame{}, b, ErrTruncated
	}
	payload := b[frameHeaderSize : frameHeaderSize+length]
	if binary.BigEndian.Uint32(b[10:14]) != crc32.Checksum(payload, castagnoli) {
		return Frame{}, b, ErrBadCRC
	}
	return Frame{Type: b[4], Payload: payload}, b[frameHeaderSize+length:], nil
}
