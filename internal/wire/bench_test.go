package wire

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/serve"
)

// benchRequests builds a deterministic batch shaped like the paper's
// serving experiments: In=6 context features, Window=20 timesteps.
func benchRequests(n, in, window int) []*serve.Request {
	rng := rand.New(rand.NewSource(42))
	reqs := make([]*serve.Request, n)
	for i := range reqs {
		r := &serve.Request{
			CF:      make([]float64, in),
			Window:  make([]float64, window),
			Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "B1",
			RequestID: "0123456789abcdef",
		}
		for j := range r.CF {
			r.CF[j] = rng.NormFloat64()
		}
		for j := range r.Window {
			r.Window[j] = 50 + rng.NormFloat64()
		}
		reqs[i] = r
	}
	return reqs
}

func benchReplies(n int) []Reply {
	replies := make([]Reply, n)
	for i := range replies {
		replies[i] = Reply{
			RequestID: "0123456789abcdef", Status: 200,
			Prediction: 49.5, Model: "env2vec", ModelVersion: 3, BatchSize: 8,
		}
	}
	return replies
}

// BenchmarkEncodeDecodeJSON_B8W20 is the JSON baseline the wire codec is
// measured against: one 8-request batch (In=6, Window=20) plus its replies,
// marshalled and unmarshalled.
func BenchmarkEncodeDecodeJSON_B8W20(b *testing.B) {
	reqs := benchRequests(8, 6, 20)
	replies := benchReplies(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqRaw, err := json.Marshal(reqs)
		if err != nil {
			b.Fatal(err)
		}
		var gotReqs []*serve.Request
		if err := json.Unmarshal(reqRaw, &gotReqs); err != nil {
			b.Fatal(err)
		}
		repRaw, err := json.Marshal(replies)
		if err != nil {
			b.Fatal(err)
		}
		var gotReps []Reply
		if err := json.Unmarshal(repRaw, &gotReps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeDecodeWire_B8W20 is the same batch through the binary
// frame codec, buffers reused as the client and server do.
func BenchmarkEncodeDecodeWire_B8W20(b *testing.B) {
	reqs := benchRequests(8, 6, 20)
	replies := benchReplies(8)
	var reqBuf, repBuf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reqBuf = AppendPredictBatch(reqBuf[:0], reqs)
		if _, err := DecodePredictBatch(reqBuf); err != nil {
			b.Fatal(err)
		}
		repBuf = AppendPredictReplies(repBuf[:0], replies)
		if _, err := DecodePredictReplies(repBuf); err != nil {
			b.Fatal(err)
		}
	}
}

// benchServe stands up a serve.Server with the benchmark model shape.
func benchServe(b *testing.B, in, window int) *serve.Server {
	b.Helper()
	cfg := core.Config{In: in, Hidden: 16, GRUHidden: 8, EmbedDim: 4, Window: window, Seed: 1}
	schema := envmeta.NewSchema()
	schema.Observe(testEnv)
	schema.Freeze()
	bundle := &serve.Bundle{
		Name: "bench", Version: 1,
		Model:  core.New(cfg, schema),
		Schema: schema,
		YScale: dataset.YScaler{Mu: 50, Sigma: 10},
	}
	s := serve.New(serve.Config{MaxBatch: 16, MaxLinger: 50 * time.Microsecond, QueueDepth: 1024, Workers: 2})
	b.Cleanup(s.Close)
	s.SetBundle(bundle)
	return s
}

// reportP99 attaches the tail to the benchmark line; benchjson keeps the
// ns/op and skips unknown units, so the p99 lives in the text output.
func reportP99(b *testing.B, samples []float64) {
	if len(samples) == 0 {
		return
	}
	sort.Float64s(samples)
	b.ReportMetric(samples[len(samples)*99/100], "p99ms")
}

// BenchmarkRoundTripJSON_W20 is one HTTP POST /predict per op against a
// live server — the transport the wire protocol replaces.
func BenchmarkRoundTripJSON_W20(b *testing.B) {
	s := benchServe(b, 6, 20)
	srv := httptest.NewServer(s)
	defer srv.Close()
	req := benchRequests(1, 6, 20)[0]
	req.RequestID = ""
	body, _ := json.Marshal(req)
	client := &http.Client{}
	samples := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		resp, err := client.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out serve.Response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		samples = append(samples, float64(time.Since(t0).Microseconds())/1000)
	}
	b.StopTimer()
	reportP99(b, samples)
}

// BenchmarkRoundTripBinary_B8W20 is one 8-request batch frame per op over
// a persistent wire connection; ns/op covers the whole batch.
func BenchmarkRoundTripBinary_B8W20(b *testing.B) {
	s := benchServe(b, 6, 20)
	addr := newBenchWire(b, s)
	c, err := Dial(addr, ClientConfig{Timeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	reqs := benchRequests(8, 6, 20)
	for _, r := range reqs {
		r.RequestID = ""
	}
	samples := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		replies, err := c.Predict(reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, rep := range replies {
			if rep.Status != http.StatusOK {
				b.Fatalf("status %d (%s)", rep.Status, rep.Error)
			}
		}
		for _, r := range reqs {
			r.RequestID = "" // fresh ids per round, as a client would send
		}
		samples = append(samples, float64(time.Since(t0).Microseconds())/1000)
	}
	b.StopTimer()
	reportP99(b, samples)
}

// BenchmarkRoundTripStream_W20 is one subscribe-mode window→prediction
// round trip per op: the per-timestep serving loop with no per-request
// connection, header, or envelope cost.
func BenchmarkRoundTripStream_W20(b *testing.B) {
	s := benchServe(b, 6, 20)
	addr := newBenchWire(b, s)
	c, err := Dial(addr, ClientConfig{Timeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	st, err := c.Subscribe(testEnv, "")
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	req := benchRequests(1, 6, 20)[0]
	samples := make([]float64, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := st.Send(Window{Seq: st.NextSeq(), CF: req.CF, Window: req.Window}); err != nil {
			b.Fatal(err)
		}
		pred, err := st.Recv()
		if err != nil {
			b.Fatal(err)
		}
		if pred.Status != http.StatusOK {
			b.Fatalf("status %d (%s)", pred.Status, pred.Error)
		}
		samples = append(samples, float64(time.Since(t0).Microseconds())/1000)
	}
	b.StopTimer()
	reportP99(b, samples)
}

func newBenchWire(b *testing.B, dispatch *serve.Server) string {
	b.Helper()
	ws := NewServer(dispatch, ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = ws.Serve(ln) }()
	b.Cleanup(ws.Close)
	return ln.Addr().String()
}
