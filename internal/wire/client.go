package wire

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"env2vec/internal/envmeta"
	"env2vec/internal/serve"
)

// ClientConfig tunes a wire client.
type ClientConfig struct {
	// MaxPayload caps inbound frame payloads (default DefaultMaxPayload).
	MaxPayload int
	// DialTimeout bounds the TCP connect (default 5s).
	DialTimeout time.Duration
	// Timeout bounds one Predict exchange end to end (0 = none). Streams
	// manage their own pacing and are not subject to it.
	Timeout time.Duration
}

// RemoteError is a FrameError surfaced by the peer: an HTTP-shaped status
// code plus message. A 429 here is the same shed the JSON path reports.
type RemoteError struct {
	Code    int
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote error %d: %s", e.Code, e.Message)
}

// Client is one wire-protocol connection. Predict exchanges are serialized
// per client (one outstanding batch); open one client per worker — or per
// pooled slot — for concurrency. After Subscribe the connection belongs to
// the returned Stream and Predict must not be used again.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	cfg  ClientConfig

	features uint64

	mu  sync.Mutex // serializes Predict exchanges and Stream sends
	buf []byte     // encode scratch, reused across exchanges
}

// Dial connects, performs the Hello handshake, and returns a ready client.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	dt := cfg.DialTimeout
	if dt <= 0 {
		dt = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, dt)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the Hello handshake over an existing connection.
func NewClient(conn net.Conn, cfg ClientConfig) (*Client, error) {
	if cfg.MaxPayload <= 0 {
		cfg.MaxPayload = DefaultMaxPayload
	}
	c := &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
		cfg:  cfg,
	}
	if cfg.Timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(cfg.Timeout))
		defer conn.SetDeadline(time.Time{})
	}
	if err := c.writeFrame(FrameHello, AppendHello(nil, Hello{Version: ProtocolVersion})); err != nil {
		return nil, err
	}
	f, err := ReadFrame(c.br, cfg.MaxPayload)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case FrameHelloAck:
		ack, err := DecodeHello(f.Payload)
		if err != nil {
			return nil, err
		}
		if ack.Version != ProtocolVersion {
			return nil, fmt.Errorf("%w: server speaks v%d", ErrVersion, ack.Version)
		}
		c.features = ack.Features
		return c, nil
	case FrameError:
		return nil, remoteError(f.Payload)
	default:
		return nil, fmt.Errorf("%w: unexpected frame 0x%02x in handshake", ErrCorrupt, f.Type)
	}
}

// Features returns the server's advertised feature bits.
func (c *Client) Features() uint64 { return c.features }

// Close severs the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) writeFrame(typ byte, payload []byte) error {
	if err := WriteFrame(c.bw, typ, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// remoteError decodes a FrameError payload into a *RemoteError; payloads
// that fail to decode still produce a usable error.
func remoteError(payload []byte) error {
	ef, err := DecodeError(payload)
	if err != nil {
		return fmt.Errorf("wire: undecodable remote error: %w", err)
	}
	return &RemoteError{Code: ef.Code, Message: ef.Message}
}

// Predict sends one batch of requests and waits for the batched replies,
// in request order. The zero-JSON round trip: requests are framed binary,
// replies decode straight into prediction values and stage spans.
func (c *Client) Predict(reqs []*serve.Request) ([]Reply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	c.buf = AppendPredictBatch(c.buf[:0], reqs)
	if err := c.writeFrame(FramePredictBatch, c.buf); err != nil {
		return nil, err
	}
	f, err := ReadFrame(c.br, c.cfg.MaxPayload)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case FramePredictReply:
		replies, err := DecodePredictReplies(f.Payload)
		if err != nil {
			return nil, err
		}
		if len(replies) != len(reqs) {
			return nil, fmt.Errorf("%w: %d replies for %d requests", ErrCorrupt, len(replies), len(reqs))
		}
		return replies, nil
	case FrameError:
		return nil, remoteError(f.Payload)
	default:
		return nil, fmt.Errorf("%w: unexpected frame 0x%02x", ErrCorrupt, f.Type)
	}
}

// Stream is a subscribe-mode session: one persistent connection pinned to
// one environment, windows streamed in (Send, pipelined) and predictions
// streamed out (Recv, correlated by Seq). Send and Recv may run from
// different goroutines; neither may race itself.
type Stream struct {
	c   *Client
	ack SubscribeAck
	seq atomic.Uint64
}

// Subscribe pins the connection to env and returns the stream. The
// connection speaks only Window/Prediction frames afterwards.
func (c *Client) Subscribe(env envmeta.Environment, chainID string) (*Stream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.Timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.cfg.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := c.writeFrame(FrameSubscribe, AppendSubscribe(nil, Subscribe{Env: env, ChainID: chainID})); err != nil {
		return nil, err
	}
	f, err := ReadFrame(c.br, c.cfg.MaxPayload)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case FrameSubscribeAck:
		ack, err := DecodeSubscribeAck(f.Payload)
		if err != nil {
			return nil, err
		}
		return &Stream{c: c, ack: ack}, nil
	case FrameError:
		return nil, remoteError(f.Payload)
	default:
		return nil, fmt.Errorf("%w: unexpected frame 0x%02x", ErrCorrupt, f.Type)
	}
}

// Ack returns the subscription acknowledgement: the served model's
// identity and input shape.
func (st *Stream) Ack() SubscribeAck { return st.ack }

// SetDeadline bounds all future Send and Recv calls (zero clears it) —
// load generators and tests use it so a wedged peer cannot park them
// forever.
func (st *Stream) SetDeadline(t time.Time) error { return st.c.conn.SetDeadline(t) }

// NextSeq issues the next window sequence number (starting at 1).
func (st *Stream) NextSeq() uint64 { return st.seq.Add(1) }

// Send streams one window. Safe to call while a Recv is blocked.
func (st *Stream) Send(w Window) error {
	st.c.mu.Lock()
	defer st.c.mu.Unlock()
	st.c.buf = AppendWindow(st.c.buf[:0], w)
	return st.c.writeFrame(FrameWindow, st.c.buf)
}

// Recv blocks for the next prediction (or stream-level error frame, which
// surfaces as *RemoteError).
func (st *Stream) Recv() (Prediction, error) {
	f, err := ReadFrame(st.c.br, st.c.cfg.MaxPayload)
	if err != nil {
		return Prediction{}, err
	}
	switch f.Type {
	case FramePrediction:
		return DecodePrediction(f.Payload)
	case FrameError:
		return Prediction{}, remoteError(f.Payload)
	default:
		return Prediction{}, fmt.Errorf("%w: unexpected frame 0x%02x", ErrCorrupt, f.Type)
	}
}

// Close severs the underlying connection.
func (st *Stream) Close() error { return st.c.Close() }

// Err maps a non-200 wire status onto an error for callers that want
// Go-error semantics; 200 maps to nil.
func (p Prediction) Err() error {
	if p.Status == http.StatusOK {
		return nil
	}
	return &RemoteError{Code: p.Status, Message: p.Error}
}
