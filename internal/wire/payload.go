package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"env2vec/internal/envmeta"
	"env2vec/internal/obs"
	"env2vec/internal/serve"
)

// Payload limits. Everything a decoder allocates is bounded up front, so a
// corrupt or hostile length can cost at most the frame it arrived in.
const (
	maxStringLen = 64 << 10 // ids, names, error messages
	maxSpans     = 1024
	maxAttrs     = 64
)

// ── primitive readers ──────────────────────────────────────────────────

// reader walks a payload with bounds-checked reads; every failure is
// ErrCorrupt-wrapped, never a panic.
type reader struct {
	b []byte
}

func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: %s", ErrCorrupt, what)
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) varint(what string) (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: %s", ErrCorrupt, what)
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) str(what string) (string, error) {
	n, err := r.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > maxStringLen || n > uint64(len(r.b)) {
		return "", fmt.Errorf("%w: %s length %d", ErrCorrupt, what, n)
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *reader) f64(what string) (float64, error) {
	if len(r.b) < 8 {
		return 0, fmt.Errorf("%w: %s", ErrCorrupt, what)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v, nil
}

func (r *reader) floats(what string) ([]float64, error) {
	n, err := r.uvarint(what + " count")
	if err != nil {
		return nil, err
	}
	if n*8 > uint64(len(r.b)) {
		return nil, fmt.Errorf("%w: %s count %d", ErrCorrupt, what, n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.b[i*8:]))
	}
	r.b = r.b[n*8:]
	return out, nil
}

func (r *reader) byteVal(what string) (byte, error) {
	if len(r.b) == 0 {
		return 0, fmt.Errorf("%w: %s", ErrCorrupt, what)
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

// done rejects trailing garbage: a payload must be consumed exactly.
func (r *reader) done() error {
	if len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b))
	}
	return nil
}

// ── primitive writers ──────────────────────────────────────────────────

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendFloats(dst []byte, vs []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = appendF64(dst, v)
	}
	return dst
}

// ── Hello / HelloAck ───────────────────────────────────────────────────

// Hello is the FrameHello / FrameHelloAck payload: version plus a feature
// bitmask (the ack advertises what the server serves).
type Hello struct {
	Version  int
	Features uint64
}

// AppendHello renders h as a Hello/HelloAck payload.
func AppendHello(dst []byte, h Hello) []byte {
	dst = binary.AppendUvarint(dst, uint64(h.Version))
	return binary.AppendUvarint(dst, h.Features)
}

// DecodeHello parses a Hello/HelloAck payload.
func DecodeHello(p []byte) (Hello, error) {
	r := reader{p}
	v, err := r.uvarint("hello version")
	if err != nil {
		return Hello{}, err
	}
	f, err := r.uvarint("hello features")
	if err != nil {
		return Hello{}, err
	}
	if v > math.MaxInt32 {
		return Hello{}, fmt.Errorf("%w: hello version %d", ErrCorrupt, v)
	}
	return Hello{Version: int(v), Features: f}, r.done()
}

// ── Error frame ────────────────────────────────────────────────────────

// ErrorFrame is the FrameError payload: an HTTP-shaped status code, the
// stream sequence it refers to (0 = connection-level), and a message.
type ErrorFrame struct {
	Code    int
	Seq     uint64
	Message string
}

// AppendError renders e as a FrameError payload.
func AppendError(dst []byte, e ErrorFrame) []byte {
	dst = binary.AppendUvarint(dst, uint64(e.Code))
	dst = binary.AppendUvarint(dst, e.Seq)
	return appendString(dst, e.Message)
}

// DecodeError parses a FrameError payload.
func DecodeError(p []byte) (ErrorFrame, error) {
	r := reader{p}
	code, err := r.uvarint("error code")
	if err != nil {
		return ErrorFrame{}, err
	}
	if code > 599 {
		return ErrorFrame{}, fmt.Errorf("%w: error code %d", ErrCorrupt, code)
	}
	seq, err := r.uvarint("error seq")
	if err != nil {
		return ErrorFrame{}, err
	}
	msg, err := r.str("error message")
	if err != nil {
		return ErrorFrame{}, err
	}
	return ErrorFrame{Code: int(code), Seq: seq, Message: msg}, r.done()
}

// ── PredictBatch ───────────────────────────────────────────────────────

// Per-request flag bits.
const (
	reqHasActual = 1 << 0
)

// AppendPredictBatch renders reqs as a FramePredictBatch payload. The
// requests decode back into the exact serve.Request structs the
// micro-batcher consumes — no intermediate representation, no re-marshal.
func AppendPredictBatch(dst []byte, reqs []*serve.Request) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(reqs)))
	for _, req := range reqs {
		dst = appendString(dst, req.RequestID)
		dst = appendString(dst, req.TraceParent)
		dst = appendString(dst, req.Testbed)
		dst = appendString(dst, req.SUT)
		dst = appendString(dst, req.Testcase)
		dst = appendString(dst, req.Build)
		dst = appendString(dst, req.ChainID)
		dst = appendFloats(dst, req.CF)
		dst = appendFloats(dst, req.Window)
		var flags byte
		if req.Actual != nil {
			flags |= reqHasActual
		}
		dst = append(dst, flags)
		if req.Actual != nil {
			dst = appendF64(dst, *req.Actual)
		}
	}
	return dst
}

// DecodePredictBatch parses a FramePredictBatch payload.
func DecodePredictBatch(p []byte) ([]*serve.Request, error) {
	r := reader{p}
	n, err := r.uvarint("batch count")
	if err != nil {
		return nil, err
	}
	if n == 0 || n > MaxBatchItems {
		return nil, fmt.Errorf("%w: batch count %d", ErrCorrupt, n)
	}
	reqs := make([]*serve.Request, 0, n)
	for i := uint64(0); i < n; i++ {
		req := &serve.Request{}
		if req.RequestID, err = r.str("request id"); err != nil {
			return nil, err
		}
		if req.TraceParent, err = r.str("traceparent"); err != nil {
			return nil, err
		}
		if req.Testbed, err = r.str("testbed"); err != nil {
			return nil, err
		}
		if req.SUT, err = r.str("sut"); err != nil {
			return nil, err
		}
		if req.Testcase, err = r.str("testcase"); err != nil {
			return nil, err
		}
		if req.Build, err = r.str("build"); err != nil {
			return nil, err
		}
		if req.ChainID, err = r.str("chain id"); err != nil {
			return nil, err
		}
		if req.CF, err = r.floats("cf"); err != nil {
			return nil, err
		}
		if req.Window, err = r.floats("window"); err != nil {
			return nil, err
		}
		flags, err := r.byteVal("request flags")
		if err != nil {
			return nil, err
		}
		if flags&reqHasActual != 0 {
			a, err := r.f64("actual")
			if err != nil {
				return nil, err
			}
			req.Actual = &a
		}
		reqs = append(reqs, req)
	}
	return reqs, r.done()
}

// ── PredictReplies ─────────────────────────────────────────────────────

// Per-reply flag bits.
const (
	replyHasAnomalous = 1 << 0
	replyAnomalous    = 1 << 1
	replyHasDeviation = 1 << 2
)

// Reply is one request's outcome within a batched exchange: either a
// served prediction (Status 200) or an HTTP-shaped error. Spans carry the
// server's stage span tree so a front tier stitches wire responses into
// distributed traces exactly like JSON ones.
type Reply struct {
	RequestID    string
	Status       int
	Error        string // non-empty when Status is not 2xx
	Prediction   float64
	Model        string
	ModelVersion int
	BatchSize    int
	Anomalous    *bool
	Deviation    *float64
	Spans        []obs.Span
}

// ReplyFromResult converts one serve outcome into a wire reply.
func ReplyFromResult(id string, resp *serve.Response, code int, err error) Reply {
	rep := Reply{RequestID: id, Status: code}
	if err != nil || resp == nil {
		if err != nil {
			rep.Error = err.Error()
		} else {
			rep.Error = "serve: no response"
		}
		if rep.Status == 0 {
			rep.Status = 500
		}
		return rep
	}
	rep.Status = 200
	rep.Prediction = resp.Prediction
	rep.Model = resp.Model
	rep.ModelVersion = resp.ModelVersion
	rep.BatchSize = resp.BatchSize
	rep.Anomalous = resp.Anomalous
	rep.Deviation = resp.Deviation
	if resp.Trace != nil {
		rep.Spans = resp.Trace.Spans
	}
	return rep
}

// AppendPredictReplies renders replies as a FramePredictReply payload.
func AppendPredictReplies(dst []byte, replies []Reply) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(replies)))
	for _, rep := range replies {
		dst = appendString(dst, rep.RequestID)
		dst = binary.AppendUvarint(dst, uint64(rep.Status))
		if rep.Status != 200 {
			dst = appendString(dst, rep.Error)
			continue
		}
		dst = appendF64(dst, rep.Prediction)
		dst = appendString(dst, rep.Model)
		dst = binary.AppendUvarint(dst, uint64(rep.ModelVersion))
		dst = binary.AppendUvarint(dst, uint64(rep.BatchSize))
		var flags byte
		if rep.Anomalous != nil {
			flags |= replyHasAnomalous
			if *rep.Anomalous {
				flags |= replyAnomalous
			}
		}
		if rep.Deviation != nil {
			flags |= replyHasDeviation
		}
		dst = append(dst, flags)
		if rep.Deviation != nil {
			dst = appendF64(dst, *rep.Deviation)
		}
		dst = appendSpans(dst, rep.Spans)
	}
	return dst
}

// DecodePredictReplies parses a FramePredictReply payload.
func DecodePredictReplies(p []byte) ([]Reply, error) {
	r := reader{p}
	n, err := r.uvarint("reply count")
	if err != nil {
		return nil, err
	}
	if n > MaxBatchItems {
		return nil, fmt.Errorf("%w: reply count %d", ErrCorrupt, n)
	}
	replies := make([]Reply, 0, n)
	for i := uint64(0); i < n; i++ {
		var rep Reply
		if rep.RequestID, err = r.str("reply id"); err != nil {
			return nil, err
		}
		status, err := r.uvarint("reply status")
		if err != nil {
			return nil, err
		}
		if status > 599 {
			return nil, fmt.Errorf("%w: reply status %d", ErrCorrupt, status)
		}
		rep.Status = int(status)
		if rep.Status != 200 {
			if rep.Error, err = r.str("reply error"); err != nil {
				return nil, err
			}
			replies = append(replies, rep)
			continue
		}
		if rep.Prediction, err = r.f64("prediction"); err != nil {
			return nil, err
		}
		if rep.Model, err = r.str("model"); err != nil {
			return nil, err
		}
		ver, err := r.uvarint("model version")
		if err != nil {
			return nil, err
		}
		if ver > math.MaxInt32 {
			return nil, fmt.Errorf("%w: model version %d", ErrCorrupt, ver)
		}
		rep.ModelVersion = int(ver)
		bs, err := r.uvarint("batch size")
		if err != nil {
			return nil, err
		}
		if bs > MaxBatchItems {
			return nil, fmt.Errorf("%w: batch size %d", ErrCorrupt, bs)
		}
		rep.BatchSize = int(bs)
		flags, err := r.byteVal("reply flags")
		if err != nil {
			return nil, err
		}
		if flags&replyHasAnomalous != 0 {
			a := flags&replyAnomalous != 0
			rep.Anomalous = &a
		}
		if flags&replyHasDeviation != 0 {
			d, err := r.f64("deviation")
			if err != nil {
				return nil, err
			}
			rep.Deviation = &d
		}
		if rep.Spans, err = decodeSpans(&r, rep.RequestID); err != nil {
			return nil, err
		}
		replies = append(replies, rep)
	}
	return replies, r.done()
}

// ── span encoding ──────────────────────────────────────────────────────

// appendSpans renders a span tree compactly: the trace id is implied by
// the enclosing reply's request id and restored on decode.
func appendSpans(dst []byte, spans []obs.Span) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(spans)))
	for _, sp := range spans {
		dst = appendString(dst, sp.SpanID)
		dst = appendString(dst, sp.ParentID)
		dst = appendString(dst, sp.Name)
		dst = binary.AppendVarint(dst, sp.StartUnixUS)
		dst = appendF64(dst, sp.DurationMS)
		dst = binary.AppendUvarint(dst, uint64(len(sp.Attrs)))
		for k, v := range sp.Attrs {
			dst = appendString(dst, k)
			dst = appendString(dst, v)
		}
	}
	return dst
}

func decodeSpans(r *reader, traceID string) ([]obs.Span, error) {
	n, err := r.uvarint("span count")
	if err != nil {
		return nil, err
	}
	if n > maxSpans {
		return nil, fmt.Errorf("%w: span count %d", ErrCorrupt, n)
	}
	if n == 0 {
		return nil, nil
	}
	spans := make([]obs.Span, 0, n)
	for i := uint64(0); i < n; i++ {
		sp := obs.Span{TraceID: traceID}
		if sp.SpanID, err = r.str("span id"); err != nil {
			return nil, err
		}
		if sp.ParentID, err = r.str("span parent"); err != nil {
			return nil, err
		}
		if sp.Name, err = r.str("span name"); err != nil {
			return nil, err
		}
		if sp.StartUnixUS, err = r.varint("span start"); err != nil {
			return nil, err
		}
		if sp.DurationMS, err = r.f64("span duration"); err != nil {
			return nil, err
		}
		na, err := r.uvarint("span attr count")
		if err != nil {
			return nil, err
		}
		if na > maxAttrs {
			return nil, fmt.Errorf("%w: span attr count %d", ErrCorrupt, na)
		}
		for j := uint64(0); j < na; j++ {
			k, err := r.str("span attr key")
			if err != nil {
				return nil, err
			}
			v, err := r.str("span attr value")
			if err != nil {
				return nil, err
			}
			sp.SetAttr(k, v)
		}
		spans = append(spans, sp)
	}
	return spans, nil
}

// ── Subscribe / SubscribeAck ───────────────────────────────────────────

// Subscribe is the FrameSubscribe payload: the environment tuple this
// connection streams for, plus the optional anomaly chain id.
type Subscribe struct {
	Env     envmeta.Environment
	ChainID string
}

// AppendSubscribe renders s as a FrameSubscribe payload.
func AppendSubscribe(dst []byte, s Subscribe) []byte {
	dst = appendString(dst, s.Env.Testbed)
	dst = appendString(dst, s.Env.SUT)
	dst = appendString(dst, s.Env.Testcase)
	dst = appendString(dst, s.Env.Build)
	return appendString(dst, s.ChainID)
}

// DecodeSubscribe parses a FrameSubscribe payload.
func DecodeSubscribe(p []byte) (Subscribe, error) {
	r := reader{p}
	var s Subscribe
	var err error
	if s.Env.Testbed, err = r.str("testbed"); err != nil {
		return s, err
	}
	if s.Env.SUT, err = r.str("sut"); err != nil {
		return s, err
	}
	if s.Env.Testcase, err = r.str("testcase"); err != nil {
		return s, err
	}
	if s.Env.Build, err = r.str("build"); err != nil {
		return s, err
	}
	if s.ChainID, err = r.str("chain id"); err != nil {
		return s, err
	}
	return s, r.done()
}

// SubscribeAck is the FrameSubscribeAck payload: the served model's
// identity and input shape, so the subscriber can size its windows without
// a side-channel /statz call.
type SubscribeAck struct {
	Model   string
	Version int
	In      int
	Window  int
}

// AppendSubscribeAck renders a as a FrameSubscribeAck payload.
func AppendSubscribeAck(dst []byte, a SubscribeAck) []byte {
	dst = appendString(dst, a.Model)
	dst = binary.AppendUvarint(dst, uint64(a.Version))
	dst = binary.AppendUvarint(dst, uint64(a.In))
	return binary.AppendUvarint(dst, uint64(a.Window))
}

// DecodeSubscribeAck parses a FrameSubscribeAck payload.
func DecodeSubscribeAck(p []byte) (SubscribeAck, error) {
	r := reader{p}
	var a SubscribeAck
	var err error
	if a.Model, err = r.str("model"); err != nil {
		return a, err
	}
	for _, f := range []struct {
		what string
		dst  *int
	}{{"version", &a.Version}, {"in", &a.In}, {"window", &a.Window}} {
		v, err := r.uvarint(f.what)
		if err != nil {
			return a, err
		}
		if v > math.MaxInt32 {
			return a, fmt.Errorf("%w: %s %d", ErrCorrupt, f.what, v)
		}
		*f.dst = int(v)
	}
	return a, r.done()
}

// ── Window / Prediction (stream mode) ──────────────────────────────────

// Window is one streamed timestep: the client's next observation window
// (and contextual features) for the subscribed environment. Seq correlates
// the prediction that answers it; predictions may return out of order when
// windows are pipelined.
type Window struct {
	Seq       uint64
	RequestID string
	CF        []float64
	Window    []float64
	Actual    *float64
}

// AppendWindow renders w as a FrameWindow payload.
func AppendWindow(dst []byte, w Window) []byte {
	dst = binary.AppendUvarint(dst, w.Seq)
	dst = appendString(dst, w.RequestID)
	dst = appendFloats(dst, w.CF)
	dst = appendFloats(dst, w.Window)
	var flags byte
	if w.Actual != nil {
		flags |= reqHasActual
	}
	dst = append(dst, flags)
	if w.Actual != nil {
		dst = appendF64(dst, *w.Actual)
	}
	return dst
}

// DecodeWindow parses a FrameWindow payload.
func DecodeWindow(p []byte) (Window, error) {
	r := reader{p}
	var w Window
	var err error
	if w.Seq, err = r.uvarint("window seq"); err != nil {
		return w, err
	}
	if w.RequestID, err = r.str("window request id"); err != nil {
		return w, err
	}
	if w.CF, err = r.floats("window cf"); err != nil {
		return w, err
	}
	if w.Window, err = r.floats("window values"); err != nil {
		return w, err
	}
	flags, err := r.byteVal("window flags")
	if err != nil {
		return w, err
	}
	if flags&reqHasActual != 0 {
		a, err := r.f64("window actual")
		if err != nil {
			return w, err
		}
		w.Actual = &a
	}
	return w, r.done()
}

// Prediction is one streamed answer, correlated to its Window by Seq.
type Prediction struct {
	Seq          uint64
	Status       int
	Error        string // non-empty when Status is not 200
	Value        float64
	ModelVersion int
	Anomalous    *bool
	Deviation    *float64
}

// AppendPrediction renders p as a FramePrediction payload.
func AppendPrediction(dst []byte, p Prediction) []byte {
	dst = binary.AppendUvarint(dst, p.Seq)
	dst = binary.AppendUvarint(dst, uint64(p.Status))
	if p.Status != 200 {
		return appendString(dst, p.Error)
	}
	dst = appendF64(dst, p.Value)
	dst = binary.AppendUvarint(dst, uint64(p.ModelVersion))
	var flags byte
	if p.Anomalous != nil {
		flags |= replyHasAnomalous
		if *p.Anomalous {
			flags |= replyAnomalous
		}
	}
	if p.Deviation != nil {
		flags |= replyHasDeviation
	}
	dst = append(dst, flags)
	if p.Deviation != nil {
		dst = appendF64(dst, *p.Deviation)
	}
	return dst
}

// DecodePrediction parses a FramePrediction payload.
func DecodePrediction(b []byte) (Prediction, error) {
	r := reader{b}
	var p Prediction
	var err error
	if p.Seq, err = r.uvarint("prediction seq"); err != nil {
		return p, err
	}
	status, err := r.uvarint("prediction status")
	if err != nil {
		return p, err
	}
	if status > 599 {
		return p, fmt.Errorf("%w: prediction status %d", ErrCorrupt, status)
	}
	p.Status = int(status)
	if p.Status != 200 {
		if p.Error, err = r.str("prediction error"); err != nil {
			return p, err
		}
		return p, r.done()
	}
	if p.Value, err = r.f64("prediction value"); err != nil {
		return p, err
	}
	ver, err := r.uvarint("prediction model version")
	if err != nil {
		return p, err
	}
	if ver > math.MaxInt32 {
		return p, fmt.Errorf("%w: prediction model version %d", ErrCorrupt, ver)
	}
	p.ModelVersion = int(ver)
	flags, err := r.byteVal("prediction flags")
	if err != nil {
		return p, err
	}
	if flags&replyHasAnomalous != 0 {
		a := flags&replyAnomalous != 0
		p.Anomalous = &a
	}
	if flags&replyHasDeviation != 0 {
		d, err := r.f64("prediction deviation")
		if err != nil {
			return p, err
		}
		p.Deviation = &d
	}
	return p, r.done()
}
