package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"env2vec/internal/quality"
)

// postJSON posts raw bytes to path and returns the status plus body.
func postRaw(t *testing.T, url string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

func TestBodyLimits(t *testing.T) {
	s := New(Config{MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 16, Workers: 1, MaxBodyBytes: 1 << 10,
		Quality: &quality.Config{Gamma: 3, Window: 8, MinSamples: 2, ExceedRate: 0.5}})
	defer s.Close()
	s.SetBundle(testBundle(1, 1))
	srv := httptest.NewServer(s)
	defer srv.Close()

	rng := rand.New(rand.NewSource(1))
	req := randomRequest(rng)
	good, _ := json.Marshal(req)
	if code, body := postRaw(t, srv.URL+"/predict", good); code != http.StatusOK {
		t.Fatalf("in-bounds predict: %d %s", code, body)
	}

	// One byte past the cap → 413, on both ingest handlers.
	huge := append(append([]byte(`{"pad":"`), bytes.Repeat([]byte("x"), 2<<10)...), []byte(`"}`)...)
	if code, _ := postRaw(t, srv.URL+"/predict", huge); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized predict: %d, want 413", code)
	}
	if code, _ := postRaw(t, srv.URL+"/observe", huge); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized observe: %d, want 413", code)
	}
}

func TestStrictDecoding(t *testing.T) {
	s := New(Config{MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 16, Workers: 1,
		Quality: &quality.Config{Gamma: 3, Window: 8, MinSamples: 2, ExceedRate: 0.5}})
	defer s.Close()
	s.SetBundle(testBundle(1, 1))
	srv := httptest.NewServer(s)
	defer srv.Close()

	rng := rand.New(rand.NewSource(2))
	req := randomRequest(rng)
	good, _ := json.Marshal(req)

	// Unknown fields are a client bug (typo'd key silently dropping a
	// field), not tolerated slack.
	unknown := append([]byte(`{"cff":[1,2,3],`), good[1:]...)
	if code, body := postRaw(t, srv.URL+"/predict", unknown); code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s, want 400", code, body)
	}

	// Trailing garbage after the JSON value likewise.
	trailing := append(append([]byte(nil), good...), []byte(`{"again":true}`)...)
	if code, body := postRaw(t, srv.URL+"/predict", trailing); code != http.StatusBadRequest {
		t.Fatalf("trailing garbage: %d %s, want 400", code, body)
	}
	if code, _ := postRaw(t, srv.URL+"/observe", []byte(`{"request_id":"x"}junk`)); code != http.StatusBadRequest {
		t.Fatalf("observe trailing garbage: want 400")
	}

	// The well-formed request still round-trips after the rejects.
	if code, body := postRaw(t, srv.URL+"/predict", good); code != http.StatusOK {
		t.Fatalf("clean predict after rejects: %d %s", code, body)
	}
}

// TestDoBatch checks the wire path's entry point: per-item validation and
// shedding, predictions matching the single-request path exactly.
func TestDoBatch(t *testing.T) {
	s := New(Config{MaxBatch: 8, MaxLinger: time.Millisecond, QueueDepth: 64, Workers: 2})
	defer s.Close()
	b := testBundle(5, 1)
	s.SetBundle(b)

	rng := rand.New(rand.NewSource(3))
	reqs := make([]*Request, 6)
	for i := range reqs {
		reqs[i] = randomRequest(rng)
	}
	bad := randomRequest(rng)
	bad.CF = nil // fails validation
	reqs = append(reqs, bad)

	results := s.DoBatch(reqs)
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	for i, res := range results[:6] {
		if res.Err != nil {
			t.Fatalf("item %d: %v", i, res.Err)
		}
		if want := directPredict(b, reqs[i]); math.Abs(res.Resp.Prediction-want) > 1e-9 {
			t.Fatalf("item %d: %v, want %v", i, res.Resp.Prediction, want)
		}
		if reqs[i].RequestID == "" {
			t.Fatalf("item %d: no request id assigned", i)
		}
	}
	last := results[len(results)-1]
	if last.Err == nil || last.Code != http.StatusBadRequest {
		t.Fatalf("invalid item: code=%d err=%v, want 400", last.Code, last.Err)
	}
}
