// Package serve is the online prediction service: it turns the trained
// Env2Vec model — reachable only through batch pipeline runs in the paper's
// workflow (Fig. 2, steps 3–5) — into a low-latency HTTP daemon. Concurrent
// per-timestep requests are micro-batched into single forward passes, run on
// a worker pool, and protected by a bounded queue that sheds load with 429
// instead of collapsing. Model snapshots hot-reload from the registry via an
// atomic pointer swap, so a retrain published by the training pipeline
// reaches serving traffic with zero downtime.
package serve

import (
	"encoding/json"
	"fmt"

	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/infer"
	"env2vec/internal/nn"
	"env2vec/internal/quality"
)

// Precision selects the numeric path a bundle's forward stage runs on.
// Training, the tape, and snapshots are always float64; precision is purely
// a serving-time choice made when the bundle is constructed.
type Precision string

// Supported serving precisions.
const (
	// PrecisionFloat64 is the default: the fused float64 path, bit-identical
	// (≤1e-12 relative) to the training tape.
	PrecisionFloat64 Precision = "float64"
	// PrecisionFloat32 converts the weights once at bundle load and serves
	// through vectorized float32 kernels — about 2× faster at the paper's
	// serving shape, within 1e-4 relative of the tape (docs/performance.md).
	PrecisionFloat32 Precision = "float32"
)

// ParsePrecision validates a -precision flag value.
func ParsePrecision(s string) (Precision, error) {
	switch Precision(s) {
	case "", PrecisionFloat64:
		return PrecisionFloat64, nil
	case PrecisionFloat32:
		return PrecisionFloat32, nil
	}
	return "", fmt.Errorf("serve: unknown precision %q (want float64 or float32)", s)
}

// ArtifactsKey is the snapshot-metadata key under which serving artifacts
// are stored.
const ArtifactsKey = "serve.artifacts"

// artifacts is everything beyond the weights needed to reconstruct a
// serving-ready model from a registry snapshot: the architecture config, the
// frozen metadata vocabularies, the input/target scalers, and the
// training-time prediction-error baseline the online quality monitor
// compares live errors against.
type artifacts struct {
	Config   core.Config       `json:"config"`
	Vocab    [][]string        `json:"vocab"` // per-feature values in id order
	XMean    []float64         `json:"xmean"`
	XStd     []float64         `json:"xstd"`
	YMu      float64           `json:"ymu"`
	YSigma   float64           `json:"ysigma"`
	Baseline *quality.Baseline `json:"baseline,omitempty"`
}

// AttachArtifacts embeds the serving artifacts into a snapshot's metadata so
// the snapshot alone suffices to stand up a predictor. The training pipeline
// calls this before publishing to the registry. baseline may be nil (older
// training runs); the quality monitor then self-calibrates per environment.
func AttachArtifacts(snap *nn.Snapshot, cfg core.Config, schema *envmeta.Schema, std *dataset.Standardizer, ys dataset.YScaler, baseline *quality.Baseline) error {
	a := artifacts{Config: cfg, Vocab: make([][]string, envmeta.NumFeatures), YMu: ys.Mu, YSigma: ys.Sigma, Baseline: baseline}
	for k, v := range schema.Vocabs {
		a.Vocab[k] = v.Values()
	}
	if std != nil {
		a.XMean, a.XStd = std.Mean, std.Std
	}
	data, err := json.Marshal(a)
	if err != nil {
		return fmt.Errorf("serve: encode artifacts: %w", err)
	}
	if snap.Meta == nil {
		snap.Meta = make(map[string]string)
	}
	snap.Meta[ArtifactsKey] = string(data)
	return nil
}

// Bundle is one immutable, serving-ready model version: the restored
// network plus the preprocessing artifacts it was trained with. Bundles are
// swapped atomically on reload and never mutated afterwards, which is what
// makes lock-free concurrent prediction sound.
type Bundle struct {
	Name    string
	Version int
	Model   *core.Model
	Schema  *envmeta.Schema
	Std     *dataset.Standardizer
	YScale  dataset.YScaler
	// Baseline is the training-time prediction-error distribution (nil when
	// the snapshot predates baselines); the quality monitor thresholds live
	// errors against it.
	Baseline *quality.Baseline

	// pred32 is the frozen float32 predictor when the bundle was configured
	// with PrecisionFloat32; nil means the float64 path. Set once by
	// SetPrecision before the bundle is swapped in, never after.
	pred32 *infer.Predictor32
}

// SetPrecision fixes the numeric path the bundle serves on. For float32 it
// converts the model's weights into a frozen float32 predictor — the one
// mutation a Bundle ever sees, so it must happen before the bundle is
// published to the server's atomic pointer. Float64 (the zero value) is a
// no-op.
func (b *Bundle) SetPrecision(p Precision) error {
	switch p {
	case "", PrecisionFloat64:
		b.pred32 = nil
		return nil
	case PrecisionFloat32:
		b.pred32 = b.Model.NewPredictor32()
		return nil
	}
	return fmt.Errorf("serve: unknown precision %q", p)
}

// ActivePrecision reports the numeric path this bundle serves on.
func (b *Bundle) ActivePrecision() Precision {
	if b.pred32 != nil {
		return PrecisionFloat32
	}
	return PrecisionFloat64
}

// BundleFromSnapshot reconstructs a serving bundle from a snapshot that
// carries artifacts (see AttachArtifacts).
func BundleFromSnapshot(name string, version int, snap *nn.Snapshot) (*Bundle, error) {
	raw, ok := snap.Meta[ArtifactsKey]
	if !ok {
		return nil, fmt.Errorf("serve: snapshot of %q has no %s metadata; publish with serving artifacts attached", name, ArtifactsKey)
	}
	var a artifacts
	if err := json.Unmarshal([]byte(raw), &a); err != nil {
		return nil, fmt.Errorf("serve: decode artifacts: %w", err)
	}
	if len(a.Vocab) != envmeta.NumFeatures {
		return nil, fmt.Errorf("serve: artifacts carry %d vocabularies, want %d", len(a.Vocab), envmeta.NumFeatures)
	}
	schema := envmeta.NewSchema()
	for k, values := range a.Vocab {
		for _, v := range values {
			schema.Vocabs[k].Add(v)
		}
	}
	schema.Freeze()
	model := core.New(a.Config, schema)
	if err := model.Restore(snap); err != nil {
		return nil, fmt.Errorf("serve: restore weights: %w", err)
	}
	b := &Bundle{
		Name:     name,
		Version:  version,
		Model:    model,
		Schema:   schema,
		YScale:   dataset.YScaler{Mu: a.YMu, Sigma: a.YSigma},
		Baseline: a.Baseline,
	}
	if len(a.XMean) > 0 {
		b.Std = &dataset.Standardizer{Mean: a.XMean, Std: a.XStd}
	}
	return b, nil
}

// PredictInto runs the bundle's full forward stage — feature
// standardization, target scaling, the fused tape-free forward pass, and
// the map back to raw units — writing one prediction per batch row into
// out (which must be batch-sized). It allocates nothing: the batch is
// consumed, with X and Window rewritten in place, so callers must own the
// batch outright (the serve worker builds a private one per forward pass).
func (b *Bundle) PredictInto(out []float64, batch *nn.Batch) {
	if b.Std != nil {
		b.Std.Apply(batch.X)
	}
	b.YScale.ScaleInPlace(batch)
	if b.pred32 != nil {
		b.pred32.PredictInto(out, batch)
	} else {
		b.Model.PredictInto(out, batch)
	}
	b.YScale.UnscaleInPlace(out)
}
