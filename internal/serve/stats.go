package serve

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencyRing keeps the most recent request latencies for percentile
// estimates without unbounded growth.
type latencyRing struct {
	mu      sync.Mutex
	samples [2048]float64 // milliseconds
	next    int
	filled  int
}

func (r *latencyRing) record(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.samples[r.next] = ms
	r.next = (r.next + 1) % len(r.samples)
	if r.filled < len(r.samples) {
		r.filled++
	}
	r.mu.Unlock()
}

// percentiles returns (p50, p99) over the retained window, zeros when empty.
func (r *latencyRing) percentiles() (p50, p99 float64) {
	r.mu.Lock()
	n := r.filled
	buf := make([]float64, n)
	copy(buf, r.samples[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Float64s(buf)
	at := func(q float64) float64 {
		i := int(q * float64(n-1))
		return buf[i]
	}
	return at(0.50), at(0.99)
}

// batchBuckets are the upper bounds of the batch-size histogram buckets;
// the final bucket is open-ended.
var batchBuckets = [...]int{1, 2, 4, 8, 16, 32, 64}

// batchObserver tracks the distribution of forward-pass batch sizes — the
// direct measure of how much micro-batching is amortizing.
type batchObserver struct {
	mu     sync.Mutex
	counts [len(batchBuckets) + 1]uint64
	max    int
}

func (o *batchObserver) observe(size int) {
	i := 0
	for i < len(batchBuckets) && size > batchBuckets[i] {
		i++
	}
	o.mu.Lock()
	o.counts[i]++
	if size > o.max {
		o.max = size
	}
	o.mu.Unlock()
}

// Stats is the /statz payload.
type Stats struct {
	Model         string  `json:"model"`
	ModelVersion  int     `json:"model_version"`
	Workers       int     `json:"workers"`
	MaxBatch      int     `json:"max_batch"`
	MaxLingerMS   float64 `json:"max_linger_ms"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`

	Served   uint64 `json:"requests_served"`
	Rejected uint64 `json:"requests_rejected"` // 429s from the bounded queue
	Failed   uint64 `json:"requests_failed"`
	Batches  uint64 `json:"batches"`
	Reloads  uint64 `json:"model_reloads"`

	MaxBatchObserved int               `json:"max_batch_observed"`
	BatchHistogram   map[string]uint64 `json:"batch_histogram"`
	P50LatencyMS     float64           `json:"p50_latency_ms"`
	P99LatencyMS     float64           `json:"p99_latency_ms"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Workers:        s.cfg.Workers,
		MaxBatch:       s.cfg.MaxBatch,
		MaxLingerMS:    float64(s.cfg.MaxLinger) / float64(time.Millisecond),
		QueueDepth:     len(s.queue),
		QueueCapacity:  s.cfg.QueueDepth,
		Served:         s.served.Load(),
		Rejected:       s.rejected.Load(),
		Failed:         s.failed.Load(),
		Batches:        s.numBatches.Load(),
		Reloads:        s.reloads.Load(),
		BatchHistogram: make(map[string]uint64),
	}
	if b := s.bundle.Load(); b != nil {
		st.Model, st.ModelVersion = b.Name, b.Version
	}
	s.batchStats.mu.Lock()
	st.MaxBatchObserved = s.batchStats.max
	lo := 1
	for i, hi := range batchBuckets {
		label := strconv.Itoa(hi)
		if lo < hi {
			label = strconv.Itoa(lo) + "-" + strconv.Itoa(hi)
		}
		if c := s.batchStats.counts[i]; c > 0 {
			st.BatchHistogram[label] = c
		}
		lo = hi + 1
	}
	if c := s.batchStats.counts[len(batchBuckets)]; c > 0 {
		st.BatchHistogram[strconv.Itoa(lo)+"+"] = c
	}
	s.batchStats.mu.Unlock()
	st.P50LatencyMS, st.P99LatencyMS = s.latencies.percentiles()
	return st
}
