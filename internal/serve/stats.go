package serve

import (
	"strconv"
	"time"

	"env2vec/internal/obs"
)

// batchBounds are the upper bounds of the batch-size histogram buckets;
// the overflow bucket is open-ended. They double as the Prometheus le
// bounds of env2vec_serve_batch_size.
var batchBounds = []float64{1, 2, 4, 8, 16, 32, 64}

// Stats is the /statz payload. The counters and histograms behind it are
// the same obs metrics served at /metrics; /statz is their JSON projection
// and stays backward-compatible with the pre-obs shape.
type Stats struct {
	Model        string `json:"model"`
	ModelVersion int    `json:"model_version"`
	// ModelIn and ModelWindow are the loaded model's input arity (contextual
	// features) and RU-history window, so load generators can shape valid
	// requests from /statz alone.
	ModelIn     int `json:"model_in"`
	ModelWindow int `json:"model_window"`
	// Precision is the numeric path the active bundle serves on ("float64"
	// or "float32"); empty until a bundle is loaded.
	Precision     string  `json:"precision,omitempty"`
	Workers       int     `json:"workers"`
	MaxBatch      int     `json:"max_batch"`
	MaxLingerMS   float64 `json:"max_linger_ms"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`

	Served   uint64 `json:"requests_served"`
	Rejected uint64 `json:"requests_rejected"` // 429s from the bounded queue
	Failed   uint64 `json:"requests_failed"`
	Batches  uint64 `json:"batches"`
	Reloads  uint64 `json:"model_reloads"`

	MaxBatchObserved int               `json:"max_batch_observed"`
	BatchHistogram   map[string]uint64 `json:"batch_histogram"`
	P50LatencyMS     float64           `json:"p50_latency_ms"`
	P99LatencyMS     float64           `json:"p99_latency_ms"`

	// Per-stage p99s attribute the tail: a slow P99LatencyMS decomposes
	// into time spent queued, lingering for batch-mates, or in the forward
	// pass itself.
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`
	LingerP99MS    float64 `json:"linger_p99_ms"`
	ForwardP99MS   float64 `json:"forward_p99_ms"`

	// LatencyExemplars link each end-to-end latency bucket to the request id
	// last observed in it, so a bad p99 bucket leads straight to a concrete
	// request trace.
	LatencyExemplars []obs.BucketExemplar `json:"latency_exemplars,omitempty"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Workers:        s.cfg.Workers,
		MaxBatch:       s.cfg.MaxBatch,
		MaxLingerMS:    float64(s.cfg.MaxLinger) / float64(time.Millisecond),
		QueueDepth:     len(s.queue),
		QueueCapacity:  s.cfg.QueueDepth,
		Served:         s.served.Value(),
		Rejected:       s.rejected.Value(),
		Failed:         s.failed.Value(),
		Batches:        s.batchSeq.Load(),
		Reloads:        s.reloads.Value(),
		BatchHistogram: make(map[string]uint64),
	}
	if b := s.bundle.Load(); b != nil {
		st.Model, st.ModelVersion = b.Name, b.Version
		st.Precision = string(b.ActivePrecision())
		cfg := b.Model.Config()
		st.ModelIn, st.ModelWindow = cfg.In, cfg.Window
	}
	bounds, counts := s.batchSizes.Snapshot()
	lo := 1
	for i, b := range bounds {
		hi := int(b)
		label := strconv.Itoa(hi)
		if lo < hi {
			label = strconv.Itoa(lo) + "-" + strconv.Itoa(hi)
		}
		if c := counts[i]; c > 0 {
			st.BatchHistogram[label] = c
		}
		lo = hi + 1
	}
	if c := counts[len(bounds)]; c > 0 {
		st.BatchHistogram[strconv.Itoa(lo)+"+"] = c
	}
	st.MaxBatchObserved = int(s.batchSizes.Max())
	qs := s.latency.Quantiles(0.50, 0.99)
	st.P50LatencyMS, st.P99LatencyMS = qs[0], qs[1]
	st.QueueWaitP99MS = s.stageQueue.Quantile(0.99)
	st.LingerP99MS = s.stageLinger.Quantile(0.99)
	st.ForwardP99MS = s.stageFwd.Quantile(0.99)
	st.LatencyExemplars = s.latency.Exemplars()
	return st
}
