package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"env2vec/internal/anomaly"
	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
	"env2vec/internal/stats"
	"env2vec/internal/tensor"
)

// Config sizes the prediction service.
type Config struct {
	// MaxBatch caps how many queued requests one forward pass may combine
	// (default 32).
	MaxBatch int
	// MaxLinger bounds how long an under-full batch waits for company
	// (default 2ms). With MaxBatch 1 no lingering ever happens.
	MaxLinger time.Duration
	// QueueDepth bounds the admission queue; requests arriving with the
	// queue full are rejected with 429 (default 256).
	QueueDepth int
	// Workers is the number of concurrent forward-pass workers
	// (default GOMAXPROCS).
	Workers int
	// Detect enables inline anomaly verdicts for requests that carry the
	// observed value: the per-chain prediction-error distribution is
	// maintained online and each error is thresholded at γ·σ plus the
	// absolute filter, as in §3.2. Nil disables verdicts.
	Detect *anomaly.Config
	// MinCalibration is how many error samples a chain needs before
	// verdicts fire (default 8); until then responses carry no verdict.
	MinCalibration int

	// stall, when non-nil, blocks every forward pass until the channel is
	// closed. Tests use it to hold workers busy deterministically.
	stall chan struct{}
}

// Request is one per-timestep prediction request.
type Request struct {
	CF     []float64 `json:"cf"`     // contextual features, model-In long
	Window []float64 `json:"window"` // previous RU values, oldest first, model-Window long

	// Environment tuple; unseen values fall back to the learned <unk>
	// embedding rows (the §4.3 capability).
	Testbed  string `json:"testbed"`
	SUT      string `json:"sut"`
	Testcase string `json:"testcase"`
	Build    string `json:"build"`

	// Actual, when set, is the observed RU value for this timestep and
	// requests an inline anomaly verdict against the chain's error model.
	Actual *float64 `json:"actual,omitempty"`
	// ChainID keys the online error model; defaults to the environment
	// tuple rendered as a string.
	ChainID string `json:"chain_id,omitempty"`
}

// Response is the service's answer for one request.
type Response struct {
	Prediction   float64  `json:"prediction"`
	Model        string   `json:"model"`
	ModelVersion int      `json:"model_version"`
	BatchSize    int      `json:"batch_size"` // size of the forward pass that served this request
	Anomalous    *bool    `json:"anomalous,omitempty"`
	Deviation    *float64 `json:"deviation,omitempty"` // |prediction−actual|, with a verdict
}

// item is one in-flight request inside the batching machinery.
type item struct {
	req  *Request
	enq  time.Time
	resp *Response
	code int
	err  error
	done chan struct{}
}

// calibration is an online Gaussian (Welford) over a chain's prediction
// errors — the serving-time analogue of anomaly.FitErrorModel.
type calibration struct {
	n        int
	mean, m2 float64
}

func (c *calibration) add(e float64) {
	c.n++
	d := e - c.mean
	c.mean += d / float64(c.n)
	c.m2 += d * (e - c.mean)
}

func (c *calibration) sigma() float64 {
	if c.n == 0 {
		return 0
	}
	return math.Sqrt(c.m2 / float64(c.n))
}

// Server micro-batches concurrent prediction requests into shared forward
// passes. Create with New, feed it bundles with SetBundle, and shut down
// with Close (which drains in-flight work).
type Server struct {
	cfg     Config
	bundle  atomic.Pointer[Bundle]
	queue   chan *item
	batches chan []*item
	mux     *http.ServeMux
	wg      sync.WaitGroup

	mu     sync.RWMutex // guards closed against concurrent enqueues
	closed bool

	served, rejected, failed, numBatches, reloads atomic.Uint64
	batchStats                                    batchObserver
	latencies                                     latencyRing

	calMu sync.Mutex
	cal   map[string]*calibration
}

// New starts the batching and worker goroutines and returns a server with
// no model loaded yet (healthz reports 503 until SetBundle).
func New(cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxLinger <= 0 {
		cfg.MaxLinger = 2 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MinCalibration <= 0 {
		cfg.MinCalibration = 8
	}
	if cfg.Detect != nil && cfg.Detect.Gamma <= 0 {
		panic(fmt.Sprintf("serve: detection gamma must be positive, got %v", cfg.Detect.Gamma))
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *item, cfg.QueueDepth),
		batches: make(chan []*item),
		cal:     make(map[string]*calibration),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	s.wg.Add(1 + cfg.Workers)
	go s.batcher()
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// SetBundle atomically swaps in a new model version; in-flight batches keep
// the bundle they loaded, new batches see the new one. Zero downtime.
func (s *Server) SetBundle(b *Bundle) {
	if b == nil {
		panic("serve: SetBundle(nil)")
	}
	if old := s.bundle.Swap(b); old != nil {
		s.reloads.Add(1)
	}
}

// Bundle returns the currently served model bundle (nil before the first
// SetBundle).
func (s *Server) Bundle() *Bundle { return s.bundle.Load() }

// Close stops admission, drains every queued request through the workers,
// and waits for them to finish. Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// Errors distinguishing Do outcomes; the HTTP handler maps them to codes.
var (
	ErrOverloaded = errors.New("serve: queue full")
	ErrNoModel    = errors.New("serve: no model loaded")
	ErrClosed     = errors.New("serve: server shutting down")
)

// Do submits one request and blocks until a worker has served it (or it was
// rejected). It returns the response and an HTTP-shaped status code; this is
// also the non-HTTP entry point the benchmarks drive.
func (s *Server) Do(req *Request) (*Response, int, error) {
	b := s.bundle.Load()
	if b == nil {
		return nil, http.StatusServiceUnavailable, ErrNoModel
	}
	if err := validate(req, b); err != nil {
		return nil, http.StatusBadRequest, err
	}
	it := &item{req: req, enq: time.Now(), done: make(chan struct{})}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, http.StatusServiceUnavailable, ErrClosed
	}
	select {
	case s.queue <- it:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.rejected.Add(1)
		return nil, http.StatusTooManyRequests, ErrOverloaded
	}
	<-it.done
	return it.resp, it.code, it.err
}

func validate(req *Request, b *Bundle) error {
	cfg := b.Model.Config()
	if len(req.CF) != cfg.In {
		return fmt.Errorf("serve: request has %d contextual features, model %s/v%d wants %d", len(req.CF), b.Name, b.Version, cfg.In)
	}
	if len(req.Window) != cfg.Window {
		return fmt.Errorf("serve: request has window %d, model %s/v%d wants %d", len(req.Window), b.Name, b.Version, cfg.Window)
	}
	return nil
}

// batcher assembles queued items into batches: a batch closes when it
// reaches MaxBatch or when MaxLinger elapses after its first item.
func (s *Server) batcher() {
	defer s.wg.Done()
	defer close(s.batches)
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch := []*item{first}
		timer := time.NewTimer(s.cfg.MaxLinger)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case it, ok := <-s.queue:
				if !ok {
					break collect // drained; flush what we have, exit next loop
				}
				batch = append(batch, it)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		s.batches <- batch
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for batch := range s.batches {
		s.runBatch(batch)
	}
}

// runBatch executes one shared forward pass for a batch of requests.
func (s *Server) runBatch(items []*item) {
	finish := func(it *item, resp *Response, code int, err error) {
		it.resp, it.code, it.err = resp, code, err
		if err != nil {
			s.failed.Add(1)
		} else {
			s.served.Add(1)
			s.latencies.record(time.Since(it.enq))
		}
		close(it.done)
	}
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: forward pass panicked: %v", r)
			for _, it := range items {
				if it.done != nil && !done(it) {
					finish(it, nil, http.StatusInternalServerError, err)
				}
			}
		}
	}()
	if s.cfg.stall != nil {
		<-s.cfg.stall
	}

	b := s.bundle.Load()
	if b == nil {
		for _, it := range items {
			finish(it, nil, http.StatusServiceUnavailable, ErrNoModel)
		}
		return
	}
	// Revalidate against the loaded bundle: a hot reload between admission
	// and execution could (in principle) change the model's shape.
	valid := items[:0:0]
	for _, it := range items {
		if err := validate(it.req, b); err != nil {
			finish(it, nil, http.StatusBadRequest, err)
			continue
		}
		valid = append(valid, it)
	}
	if len(valid) == 0 {
		return
	}

	cfg := b.Model.Config()
	n := len(valid)
	batch := &nn.Batch{
		X:      tensor.New(n, cfg.In),
		Window: tensor.New(n, cfg.Window),
		Y:      tensor.New(n, 1),
		EnvIDs: make([][]int, envmeta.NumFeatures),
	}
	for k := range batch.EnvIDs {
		batch.EnvIDs[k] = make([]int, n)
	}
	for i, it := range valid {
		copy(batch.X.Row(i), it.req.CF)
		copy(batch.Window.Row(i), it.req.Window)
		ids := b.Schema.Encode(envmeta.Environment{
			Testbed: it.req.Testbed, SUT: it.req.SUT,
			Testcase: it.req.Testcase, Build: it.req.Build,
		})
		for k := range batch.EnvIDs {
			batch.EnvIDs[k][i] = ids[k]
		}
	}
	if b.Std != nil {
		b.Std.Apply(batch.X)
	}
	preds := b.YScale.Unscale(b.Model.Predict(b.YScale.Scale(batch)))

	s.numBatches.Add(1)
	s.batchStats.observe(n)
	for i, it := range valid {
		resp := &Response{
			Prediction:   preds[i],
			Model:        b.Name,
			ModelVersion: b.Version,
			BatchSize:    n,
		}
		if s.cfg.Detect != nil && it.req.Actual != nil {
			s.scoreAnomaly(it.req, preds[i], resp)
		}
		finish(it, resp, http.StatusOK, nil)
	}
}

func done(it *item) bool {
	select {
	case <-it.done:
		return true
	default:
		return false
	}
}

// scoreAnomaly thresholds the prediction error against the chain's online
// error model. Flagged errors are NOT folded back into the calibration, so
// a sustained problem cannot drag the baseline toward itself.
func (s *Server) scoreAnomaly(req *Request, pred float64, resp *Response) {
	key := req.ChainID
	if key == "" {
		key = envmeta.Environment{Testbed: req.Testbed, SUT: req.SUT, Testcase: req.Testcase, Build: req.Build}.String()
	}
	e := pred - *req.Actual
	s.calMu.Lock()
	defer s.calMu.Unlock()
	c := s.cal[key]
	if c == nil {
		c = &calibration{}
		s.cal[key] = c
	}
	if c.n < s.cfg.MinCalibration {
		c.add(e) // still calibrating; no verdict yet
		return
	}
	em := anomaly.ErrorModel{Dist: stats.Gaussian{Mu: c.mean, Sigma: c.sigma()}, Samples: c.n}
	flagged := anomaly.Flag([]float64{pred}, []float64{*req.Actual}, em, *s.cfg.Detect)[0]
	dev := math.Abs(e)
	resp.Anomalous = &flagged
	resp.Deviation = &dev
	if !flagged {
		c.add(e)
	}
}

// ── HTTP surface ────────────────────────────────────────────────────────

// ServeHTTP implements http.Handler: POST /predict, GET /healthz, GET /statz.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "invalid request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, code, err := s.Do(&req)
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.bundle.Load() == nil {
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}
