package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"env2vec/internal/anomaly"
	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
	"env2vec/internal/obs"
	"env2vec/internal/quality"
	"env2vec/internal/stats"
	"env2vec/internal/tensor"
)

// Config sizes the prediction service.
type Config struct {
	// MaxBatch caps how many queued requests one forward pass may combine
	// (default 32).
	MaxBatch int
	// MaxLinger bounds how long an under-full batch waits for company
	// (default 2ms). With MaxBatch 1 no lingering ever happens.
	MaxLinger time.Duration
	// QueueDepth bounds the admission queue; requests arriving with the
	// queue full are rejected with 429 (default 256).
	QueueDepth int
	// Workers is the number of concurrent forward-pass workers
	// (default GOMAXPROCS).
	Workers int
	// Detect enables inline anomaly verdicts for requests that carry the
	// observed value: the per-chain prediction-error distribution is
	// maintained online and each error is thresholded at γ·σ plus the
	// absolute filter, as in §3.2. Nil disables verdicts.
	Detect *anomaly.Config
	// MinCalibration is how many error samples a chain needs before
	// verdicts fire (default 8); until then responses carry no verdict.
	MinCalibration int

	// Quality, when non-nil, enables the online model-quality monitor:
	// every observed request (inline Actual or follow-up POST /observe)
	// feeds per-environment rolling error statistics that are compared
	// against the bundle's training-time baseline; sustained drift raises
	// alarms. The monitor also serves GET /quality.
	Quality *quality.Config
	// AlarmSink, when non-nil, receives the monitor's drift alarms through
	// an async bounded queue (see AlarmAsync). Nil keeps alarms local:
	// counted, reported at /quality, but delivered nowhere.
	AlarmSink quality.Sink
	// AlarmAsync tunes the asynchronous alarm pusher wrapped around
	// AlarmSink: queue depth, retries, backoff.
	AlarmAsync quality.AsyncConfig
	// PendingCap bounds the request-id → prediction map backing POST
	// /observe (default 4096). Oldest entries are evicted first; observing
	// an evicted id returns 404.
	PendingCap int

	// MaxBodyBytes caps how much of a request body the JSON handlers will
	// read (default 4 MiB; negative disables the cap). Oversized bodies
	// are rejected with 413 instead of being buffered to OOM.
	MaxBodyBytes int64

	// Trace sizes the tail-sampled trace store behind GET /traces: every
	// HTTP request's span tree is offered to it on completion, and failed,
	// shed, or slow traces are retained preferentially. Zero-value fields
	// get the obs.TraceStoreConfig defaults.
	Trace obs.TraceStoreConfig

	// Obs, when non-nil, is the metrics registry the server instruments
	// itself into; nil gets a private registry. Either way the metrics are
	// served at GET /metrics in Prometheus text format.
	Obs *obs.Registry
	// Logger receives structured request-path events (shed requests, panic
	// recoveries, model swaps). Nil discards them.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the server's
	// mux. Off by default: profiles expose internals.
	EnablePprof bool

	// stall, when non-nil, blocks every forward pass until the channel is
	// closed. Tests use it to hold workers busy deterministically.
	stall chan struct{}
}

// Request is one per-timestep prediction request.
type Request struct {
	CF     []float64 `json:"cf"`     // contextual features, model-In long
	Window []float64 `json:"window"` // previous RU values, oldest first, model-Window long

	// Environment tuple; unseen values fall back to the learned <unk>
	// embedding rows (the §4.3 capability).
	Testbed  string `json:"testbed"`
	SUT      string `json:"sut"`
	Testcase string `json:"testcase"`
	Build    string `json:"build"`

	// Actual, when set, is the observed RU value for this timestep and
	// requests an inline anomaly verdict against the chain's error model.
	Actual *float64 `json:"actual,omitempty"`
	// ChainID keys the online error model; defaults to the environment
	// tuple rendered as a string.
	ChainID string `json:"chain_id,omitempty"`

	// RequestID is the trace id for this request. The HTTP handler fills it
	// from an inbound X-Request-ID header; when still empty at admission,
	// Do generates one. It is echoed in the response trace block (and the
	// X-Request-ID response header on the HTTP path).
	RequestID string `json:"request_id,omitempty"`

	// TraceParent carries the caller's traceparent-style propagation header
	// (see obs.TraceParentHeader): the server's spans parent onto the named
	// caller-side span, so a front tier can stitch this process's stage
	// spans into its own trace tree. Header-only — never part of the body.
	TraceParent string `json:"-"`
}

// Response is the service's answer for one request.
type Response struct {
	Prediction   float64  `json:"prediction"`
	Model        string   `json:"model"`
	ModelVersion int      `json:"model_version"`
	BatchSize    int      `json:"batch_size"` // size of the forward pass that served this request
	Anomalous    *bool    `json:"anomalous,omitempty"`
	Deviation    *float64 `json:"deviation,omitempty"` // |prediction−actual|, with a verdict
	// Quality is the model-quality monitor's verdict, present when the
	// monitor is enabled and the request carried an inline Actual.
	Quality *quality.Verdict `json:"quality,omitempty"`
	Trace   *Trace           `json:"trace,omitempty"`
}

// Trace is the per-request timing breakdown: where this request's latency
// went, stage by stage. The same durations feed the per-stage histograms,
// so an opaque p99 can be attributed to queue wait vs linger vs forward
// pass in aggregate, and to one request here.
type Trace struct {
	RequestID   string  `json:"request_id"`
	BatchID     uint64  `json:"batch_id"`            // forward pass that served this request
	QueueWaitMS float64 `json:"queue_wait_ms"`       // admission queue → batcher pickup
	LingerMS    float64 `json:"linger_ms"`           // batcher pickup → worker starts the batch
	ForwardMS   float64 `json:"forward_ms"`          // batch assembly + shared forward pass
	EncodeMS    float64 `json:"encode_ms,omitempty"` // response JSON encoding (HTTP path only)
	TotalMS     float64 `json:"total_ms"`            // admission → response ready

	// Spans recasts the stage timings above as a span tree: a serve.request
	// root (parented onto the caller's span when the request carried a
	// traceparent header) with one child per stage. Additive — the flat
	// fields stay wire-compatible for existing clients.
	Spans []obs.Span `json:"spans,omitempty"`
}

// item is one in-flight request inside the batching machinery.
type item struct {
	req  *Request
	id   string    // request id (trace correlation)
	enq  time.Time // admission into the queue
	deq  time.Time // pickup by the batcher
	resp *Response
	code int
	err  error
	done chan struct{}
}

// calibration is an online Gaussian (Welford) over a chain's prediction
// errors — the serving-time analogue of anomaly.FitErrorModel.
type calibration struct {
	n        int
	mean, m2 float64
}

func (c *calibration) add(e float64) {
	c.n++
	d := e - c.mean
	c.mean += d / float64(c.n)
	c.m2 += d * (e - c.mean)
}

func (c *calibration) sigma() float64 {
	if c.n == 0 {
		return 0
	}
	return math.Sqrt(c.m2 / float64(c.n))
}

// Server micro-batches concurrent prediction requests into shared forward
// passes. Create with New, feed it bundles with SetBundle, and shut down
// with Close (which drains in-flight work).
type Server struct {
	cfg     Config
	bundle  atomic.Pointer[Bundle]
	queue   chan *item
	batches chan []*item
	mux     *http.ServeMux
	wg      sync.WaitGroup
	reg     *obs.Registry
	log     *slog.Logger

	mu     sync.RWMutex // guards closed against concurrent enqueues
	closed bool

	batchSeq                          atomic.Uint64 // forward passes executed; also issues batch ids
	served, rejected, failed, reloads *obs.Counter
	batchSizes                        *obs.Histogram
	latency                           *obs.Histogram // total admission→response
	stageQueue, stageLinger, stageFwd *obs.Histogram
	stageEncode                       *obs.Histogram

	calMu sync.Mutex
	cal   map[string]*calibration

	// Model-quality monitoring (nil when Config.Quality is nil).
	monitor *quality.Monitor
	pusher  *quality.Async

	// traces retains completed span trees with tail-based sampling,
	// served at GET /traces and GET /traces/{id}.
	traces *obs.TraceStore

	// pending maps request ids of unobserved predictions to what POST
	// /observe needs to close the loop; bounded FIFO eviction at PendingCap.
	pendMu    sync.Mutex
	pending   map[string]pendingPrediction
	pendOrder []string
}

// pendingPrediction is one served prediction awaiting ground truth.
type pendingPrediction struct {
	env  envmeta.Environment
	pred float64
}

// New starts the batching and worker goroutines and returns a server with
// no model loaded yet (healthz reports 503 until SetBundle).
func New(cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxLinger <= 0 {
		cfg.MaxLinger = 2 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MinCalibration <= 0 {
		cfg.MinCalibration = 8
	}
	if cfg.PendingCap <= 0 {
		cfg.PendingCap = 4096
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.Detect != nil && cfg.Detect.Gamma <= 0 {
		panic(fmt.Sprintf("serve: detection gamma must be positive, got %v", cfg.Detect.Gamma))
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.DiscardLogger()
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *item, cfg.QueueDepth),
		batches: make(chan []*item),
		cal:     make(map[string]*calibration),
		reg:     reg,
		log:     logger,
	}
	s.served = reg.Counter("env2vec_serve_requests_total", "Prediction requests by outcome.", obs.Labels{"outcome": "served"})
	s.rejected = reg.Counter("env2vec_serve_requests_total", "Prediction requests by outcome.", obs.Labels{"outcome": "rejected"})
	s.failed = reg.Counter("env2vec_serve_requests_total", "Prediction requests by outcome.", obs.Labels{"outcome": "failed"})
	s.reloads = reg.Counter("env2vec_serve_model_reloads_total", "Hot model swaps after the initial load.", nil)
	reg.CounterFunc("env2vec_serve_batches_total", "Forward-pass batches executed.", nil, s.batchSeq.Load)
	s.batchSizes = reg.Histogram("env2vec_serve_batch_size", "Requests combined per forward pass.", batchBounds, nil)
	s.latency = reg.Histogram("env2vec_serve_request_latency_ms", "End-to-end latency, admission to response.", obs.DefLatencyBuckets, nil)
	stageHelp := "Per-stage request latency; stage attributes where time went."
	s.stageQueue = reg.Histogram("env2vec_serve_stage_latency_ms", stageHelp, obs.DefLatencyBuckets, obs.Labels{"stage": "queue_wait"})
	s.stageLinger = reg.Histogram("env2vec_serve_stage_latency_ms", stageHelp, obs.DefLatencyBuckets, obs.Labels{"stage": "linger"})
	s.stageFwd = reg.Histogram("env2vec_serve_stage_latency_ms", stageHelp, obs.DefLatencyBuckets, obs.Labels{"stage": "forward"})
	s.stageEncode = reg.Histogram("env2vec_serve_stage_latency_ms", stageHelp, obs.DefLatencyBuckets, obs.Labels{"stage": "encode"})
	reg.GaugeFunc("env2vec_serve_queue_depth", "Requests waiting in the admission queue.", nil, func() float64 { return float64(len(s.queue)) })
	reg.Gauge("env2vec_serve_queue_capacity", "Admission queue bound; overflow is shed with 429.", nil).Set(float64(cfg.QueueDepth))
	reg.Gauge("env2vec_serve_workers", "Concurrent forward-pass workers.", nil).Set(float64(cfg.Workers))
	reg.GaugeFunc("env2vec_serve_model_version", "Version of the bundle currently served (0 = none).", nil, func() float64 {
		if b := s.bundle.Load(); b != nil {
			return float64(b.Version)
		}
		return 0
	})
	reg.GaugeFunc("env2vec_infer_precision", "Bits of the serving forward pass: 64 (float64) or 32 (float32); 0 = no bundle.", nil, func() float64 {
		if b := s.bundle.Load(); b != nil {
			if b.ActivePrecision() == PrecisionFloat32 {
				return 32
			}
			return 64
		}
		return 0
	})
	if cfg.Quality != nil {
		if cfg.AlarmSink != nil {
			ac := cfg.AlarmAsync
			if ac.Logger == nil {
				ac.Logger = logger
			}
			s.pusher = quality.NewAsync(cfg.AlarmSink, ac, reg)
		}
		s.monitor = quality.NewMonitor(*cfg.Quality, reg, s.pusher)
		s.pending = make(map[string]pendingPrediction)
	}
	s.traces = obs.NewTraceStore(cfg.Trace, reg)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/predict", s.handlePredict)
	s.mux.Handle("/traces", s.traces)
	s.mux.Handle("/traces/", s.traces)
	s.mux.HandleFunc("/observe", s.handleObserve)
	s.mux.HandleFunc("/quality", s.handleQuality)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	s.mux.Handle("/metrics", reg)
	if cfg.EnablePprof {
		obs.RegisterPprof(s.mux)
	}
	s.wg.Add(1 + cfg.Workers)
	go s.batcher()
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// SetBundle atomically swaps in a new model version; in-flight batches keep
// the bundle they loaded, new batches see the new one. Zero downtime.
func (s *Server) SetBundle(b *Bundle) {
	if b == nil {
		panic("serve: SetBundle(nil)")
	}
	if old := s.bundle.Swap(b); old != nil {
		s.reloads.Inc()
		s.log.Info("model swapped", "model", b.Name, "version", b.Version, "previous_version", old.Version)
	} else {
		s.log.Info("model loaded", "model", b.Name, "version", b.Version)
	}
	if s.monitor != nil {
		s.monitor.SetBaseline(b.Baseline)
	}
}

// Quality returns the model-quality monitor (nil when Config.Quality was
// nil), so the embedding daemon can snapshot it directly.
func (s *Server) Quality() *quality.Monitor { return s.monitor }

// Bundle returns the currently served model bundle (nil before the first
// SetBundle).
func (s *Server) Bundle() *Bundle { return s.bundle.Load() }

// Metrics returns the registry the server instruments itself into, so the
// embedding daemon can add its own metrics to the same /metrics page.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Traces returns the tail-sampled trace store behind GET /traces.
func (s *Server) Traces() *obs.TraceStore { return s.traces }

// Close stops admission, drains every queued request through the workers,
// and waits for them to finish. Safe to call once.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
	if s.pusher != nil {
		s.pusher.Close() // drain queued alarms after the last batch ran
	}
}

// Errors distinguishing Do outcomes; the HTTP handler maps them to codes.
var (
	ErrOverloaded = errors.New("serve: queue full")
	ErrNoModel    = errors.New("serve: no model loaded")
	ErrClosed     = errors.New("serve: server shutting down")
)

// submit validates and enqueues one request without waiting for its
// result. On success the returned item's done channel closes when a worker
// has served it.
func (s *Server) submit(req *Request) (*item, int, error) {
	b := s.bundle.Load()
	if b == nil {
		return nil, http.StatusServiceUnavailable, ErrNoModel
	}
	if err := validate(req, b); err != nil {
		return nil, http.StatusBadRequest, err
	}
	if req.RequestID == "" {
		req.RequestID = obs.NewRequestID()
	}
	it := &item{req: req, id: req.RequestID, enq: time.Now(), done: make(chan struct{})}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, http.StatusServiceUnavailable, ErrClosed
	}
	select {
	case s.queue <- it:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.rejected.Inc()
		s.log.Debug("request shed: queue full", "request_id", it.id, "queue_capacity", s.cfg.QueueDepth)
		return nil, http.StatusTooManyRequests, ErrOverloaded
	}
	return it, 0, nil
}

// Do submits one request and blocks until a worker has served it (or it was
// rejected). It returns the response and an HTTP-shaped status code; this is
// also the non-HTTP entry point the benchmarks drive.
func (s *Server) Do(req *Request) (*Response, int, error) {
	it, code, err := s.submit(req)
	if err != nil {
		return nil, code, err
	}
	<-it.done
	return it.resp, it.code, it.err
}

// BatchResult is one request's outcome in a DoBatch call.
type BatchResult struct {
	Resp *Response
	Code int
	Err  error
}

// DoBatch submits many requests in one admission pass and waits for all of
// them. The requests enter the same bounded queue Do uses — they flow
// straight into the micro-batcher as individual items, so a wire-protocol
// batch maps 1:1 onto forward-pass batches with no re-marshal between
// transport and batching. Each request is admitted (or shed) independently:
// one oversized or invalid request fails alone, and queue overflow sheds
// the tail of the batch, not the whole thing.
func (s *Server) DoBatch(reqs []*Request) []BatchResult {
	results := make([]BatchResult, len(reqs))
	items := make([]*item, len(reqs))
	for i, req := range reqs {
		it, code, err := s.submit(req)
		if err != nil {
			results[i] = BatchResult{Code: code, Err: err}
			continue
		}
		items[i] = it
	}
	for i, it := range items {
		if it == nil {
			continue
		}
		<-it.done
		results[i] = BatchResult{Resp: it.resp, Code: it.code, Err: it.err}
	}
	return results
}

func validate(req *Request, b *Bundle) error {
	cfg := b.Model.Config()
	if len(req.CF) != cfg.In {
		return fmt.Errorf("serve: request has %d contextual features, model %s/v%d wants %d", len(req.CF), b.Name, b.Version, cfg.In)
	}
	if len(req.Window) != cfg.Window {
		return fmt.Errorf("serve: request has window %d, model %s/v%d wants %d", len(req.Window), b.Name, b.Version, cfg.Window)
	}
	return nil
}

// batcher assembles queued items into batches: a batch closes when it
// reaches MaxBatch or when MaxLinger elapses after its first item.
func (s *Server) batcher() {
	defer s.wg.Done()
	defer close(s.batches)
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		first.deq = time.Now()
		batch := []*item{first}
		timer := time.NewTimer(s.cfg.MaxLinger)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case it, ok := <-s.queue:
				if !ok {
					break collect // drained; flush what we have, exit next loop
				}
				it.deq = time.Now()
				batch = append(batch, it)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		s.batches <- batch
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for batch := range s.batches {
		s.runBatch(batch)
	}
}

// runBatch executes one shared forward pass for a batch of requests. The
// forward span opens here: everything from worker pickup through the shared
// Predict call is attributed to the forward stage.
func (s *Server) runBatch(items []*item) {
	start := time.Now()
	finish := func(it *item, resp *Response, code int, err error) {
		it.resp, it.code, it.err = resp, code, err
		if err != nil {
			s.failed.Inc()
			s.log.Warn("request failed", "request_id", it.id, "code", code, "err", err)
		} else {
			s.served.Inc()
			total := time.Since(it.enq)
			s.latency.ObserveExemplar(obs.MS(total), it.id)
			if resp.Trace != nil {
				resp.Trace.TotalMS = obs.MS(total)
			}
		}
		close(it.done)
	}
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("serve: forward pass panicked: %v", r)
			s.log.Error("forward pass panicked", "err", r, "batch_size", len(items))
			for _, it := range items {
				if it.done != nil && !done(it) {
					finish(it, nil, http.StatusInternalServerError, err)
				}
			}
		}
	}()
	if s.cfg.stall != nil {
		<-s.cfg.stall
	}

	b := s.bundle.Load()
	if b == nil {
		for _, it := range items {
			finish(it, nil, http.StatusServiceUnavailable, ErrNoModel)
		}
		return
	}
	// Revalidate against the loaded bundle: a hot reload between admission
	// and execution could (in principle) change the model's shape.
	valid := items[:0:0]
	for _, it := range items {
		if err := validate(it.req, b); err != nil {
			finish(it, nil, http.StatusBadRequest, err)
			continue
		}
		valid = append(valid, it)
	}
	if len(valid) == 0 {
		return
	}

	cfg := b.Model.Config()
	n := len(valid)
	batch := &nn.Batch{
		X:      tensor.New(n, cfg.In),
		Window: tensor.New(n, cfg.Window),
		EnvIDs: make([][]int, envmeta.NumFeatures),
	}
	for k := range batch.EnvIDs {
		batch.EnvIDs[k] = make([]int, n)
	}
	for i, it := range valid {
		copy(batch.X.Row(i), it.req.CF)
		copy(batch.Window.Row(i), it.req.Window)
		ids := b.Schema.Encode(envmeta.Environment{
			Testbed: it.req.Testbed, SUT: it.req.SUT,
			Testcase: it.req.Testcase, Build: it.req.Build,
		})
		for k := range batch.EnvIDs {
			batch.EnvIDs[k][i] = ids[k]
		}
	}
	preds := make([]float64, n)
	b.PredictInto(preds, batch)

	batchID := s.batchSeq.Add(1)
	s.batchSizes.Observe(float64(n))
	fwdEnd := time.Now()
	fwdMS := obs.MS(fwdEnd.Sub(start))
	for i, it := range valid {
		queueMS, lingerMS := obs.MS(it.deq.Sub(it.enq)), obs.MS(start.Sub(it.deq))
		s.stageQueue.ObserveExemplar(queueMS, it.id)
		s.stageLinger.ObserveExemplar(lingerMS, it.id)
		s.stageFwd.ObserveExemplar(fwdMS, it.id)
		// The same stage timings, recast as a span tree: the root parents
		// onto the caller's span when the request carried a traceparent
		// header, so a front tier can stitch these into its own trace.
		root := obs.NewSpan(it.id, parentSpan(it.req), "serve.request", it.enq, fwdEnd)
		root.SetAttr("outcome", obs.OutcomeServed)
		fwd := obs.NewSpan(it.id, root.SpanID, "serve.forward", start, fwdEnd)
		fwd.SetAttr("batch_id", strconv.FormatUint(batchID, 10))
		fwd.SetAttr("batch_size", strconv.Itoa(n))
		resp := &Response{
			Prediction:   preds[i],
			Model:        b.Name,
			ModelVersion: b.Version,
			BatchSize:    n,
			Trace: &Trace{
				RequestID:   it.id,
				BatchID:     batchID,
				QueueWaitMS: queueMS,
				LingerMS:    lingerMS,
				ForwardMS:   fwdMS,
				Spans: []obs.Span{
					root,
					obs.NewSpan(it.id, root.SpanID, "serve.queue_wait", it.enq, it.deq),
					obs.NewSpan(it.id, root.SpanID, "serve.linger", it.deq, start),
					fwd,
				},
			},
		}
		if s.cfg.Detect != nil && it.req.Actual != nil {
			s.scoreAnomaly(it.req, preds[i], resp)
		}
		if s.monitor != nil {
			env := envmeta.Environment{
				Testbed: it.req.Testbed, SUT: it.req.SUT,
				Testcase: it.req.Testcase, Build: it.req.Build,
			}
			if it.req.Actual != nil {
				// Ground truth arrived inline: feed the monitor now, no
				// pending entry to keep.
				v := s.monitor.Observe(env, it.id, preds[i], *it.req.Actual, time.Now().Unix())
				resp.Quality = &v
			} else {
				s.rememberPending(it.id, env, preds[i])
			}
		}
		finish(it, resp, http.StatusOK, nil)
	}
}

// rememberPending records a served-but-unobserved prediction so a later
// POST /observe can attribute its ground truth; the map is bounded by
// PendingCap with oldest-first eviction.
func (s *Server) rememberPending(id string, env envmeta.Environment, pred float64) {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	if _, exists := s.pending[id]; !exists {
		for len(s.pending) >= s.cfg.PendingCap && len(s.pendOrder) > 0 {
			old := s.pendOrder[0]
			s.pendOrder = s.pendOrder[1:]
			delete(s.pending, old) // no-op if already observed
		}
		s.pendOrder = append(s.pendOrder, id)
	}
	s.pending[id] = pendingPrediction{env: env, pred: pred}
}

// takePending removes and returns the pending prediction for a request id.
func (s *Server) takePending(id string) (pendingPrediction, bool) {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	p, ok := s.pending[id]
	if ok {
		delete(s.pending, id)
	}
	return p, ok
}

// parentSpan extracts the caller-side parent span id from a request's
// traceparent header, empty when absent or malformed (fresh root).
func parentSpan(req *Request) string {
	if req.TraceParent == "" {
		return ""
	}
	_, spanID, ok := obs.ParseTraceParent(req.TraceParent)
	if !ok {
		return ""
	}
	return spanID
}

// storeTrace offers one completed span tree to the tail-sampled store.
func (s *Server) storeTrace(id, outcome string, spans []obs.Span) {
	if len(spans) == 0 {
		return
	}
	root := spans[0]
	s.traces.Add(obs.Trace{
		TraceID: id, Root: root.Name, Outcome: outcome,
		StartUnixUS: root.StartUnixUS, DurationMS: root.DurationMS,
		Spans: append([]obs.Span(nil), spans...),
	})
}

func done(it *item) bool {
	select {
	case <-it.done:
		return true
	default:
		return false
	}
}

// scoreAnomaly thresholds the prediction error against the chain's online
// error model. Flagged errors are NOT folded back into the calibration, so
// a sustained problem cannot drag the baseline toward itself.
func (s *Server) scoreAnomaly(req *Request, pred float64, resp *Response) {
	key := req.ChainID
	if key == "" {
		key = envmeta.Environment{Testbed: req.Testbed, SUT: req.SUT, Testcase: req.Testcase, Build: req.Build}.String()
	}
	e := pred - *req.Actual
	s.calMu.Lock()
	defer s.calMu.Unlock()
	c := s.cal[key]
	if c == nil {
		c = &calibration{}
		s.cal[key] = c
	}
	if c.n < s.cfg.MinCalibration {
		c.add(e) // still calibrating; no verdict yet
		return
	}
	em := anomaly.ErrorModel{Dist: stats.Gaussian{Mu: c.mean, Sigma: c.sigma()}, Samples: c.n}
	flagged := anomaly.Flag([]float64{pred}, []float64{*req.Actual}, em, *s.cfg.Detect)[0]
	dev := math.Abs(e)
	resp.Anomalous = &flagged
	resp.Deviation = &dev
	if !flagged {
		c.add(e)
	}
}

// ── HTTP surface ────────────────────────────────────────────────────────

// DefaultMaxBodyBytes is the request-body cap applied when
// Config.MaxBodyBytes is zero: large enough for any real predict or
// observe payload, small enough that a hostile client cannot make the
// handler buffer gigabytes.
const DefaultMaxBodyBytes int64 = 4 << 20

// ServeHTTP implements http.Handler: POST /predict, GET /healthz, GET /statz.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// limitBody wraps the request body with http.MaxBytesReader so a hostile
// or buggy client gets 413 instead of OOMing the daemon.
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	if s.cfg.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
}

// decodeStrict decodes exactly one JSON value from body: unknown fields
// and trailing garbage are errors, so a protocol typo ("windows" for
// "window") fails loudly instead of silently zero-filling the request.
func decodeStrict(body io.Reader, v any) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); !errors.Is(err, io.EOF) {
		if err == nil {
			err = errors.New("trailing data after JSON value")
		}
		return err
	}
	return nil
}

// isBodyTooLarge reports whether a decode error came from MaxBytesReader.
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	t0 := time.Now()
	s.limitBody(w, r)
	var req Request
	if err := decodeStrict(r.Body, &req); err != nil {
		if isBodyTooLarge(err) {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "invalid request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// An inbound X-Request-ID wins over any id in the body; absent both, Do
	// generates one. Either way the id the request was served under is
	// echoed back in the response header and the trace block.
	if id := r.Header.Get(obs.RequestIDHeader); id != "" {
		req.RequestID = id
	}
	req.TraceParent = r.Header.Get(obs.TraceParentHeader)
	resp, code, err := s.Do(&req)
	if req.RequestID != "" {
		w.Header().Set(obs.RequestIDHeader, req.RequestID)
	}
	if err != nil {
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		// Shed and failed requests are exactly the tail the trace store
		// keeps preferentially; record a root-only trace for them.
		if req.RequestID != "" {
			outcome := obs.OutcomeFailed
			if code == http.StatusTooManyRequests {
				outcome = obs.OutcomeShed
			}
			root := obs.NewSpan(req.RequestID, parentSpan(&req), "serve.request", t0, time.Now())
			root.SetAttr("outcome", outcome)
			root.SetAttr("error", err.Error())
			s.storeTrace(req.RequestID, outcome, []obs.Span{root})
		}
		http.Error(w, err.Error(), code)
		return
	}
	// Encode span: marshal once to measure, fold the measurement into the
	// trace block, marshal again. Responses are small, so the second pass
	// costs little and keeps the reported trace self-consistent.
	encStart := time.Now()
	buf, merr := json.Marshal(resp)
	encEnd := time.Now()
	encMS := obs.MS(encEnd.Sub(encStart))
	s.stageEncode.Observe(encMS)
	if merr != nil {
		http.Error(w, merr.Error(), http.StatusInternalServerError)
		return
	}
	if resp.Trace != nil {
		resp.Trace.EncodeMS = encMS
		if len(resp.Trace.Spans) > 0 {
			root := &resp.Trace.Spans[0]
			root.DurationMS += encMS // the root covers encoding too
			resp.Trace.Spans = append(resp.Trace.Spans,
				obs.NewSpan(req.RequestID, root.SpanID, "serve.encode", encStart, encEnd))
		}
		if buf2, err2 := json.Marshal(resp); err2 == nil {
			buf = buf2
		}
		s.storeTrace(req.RequestID, obs.OutcomeServed, resp.Trace.Spans)
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(buf, '\n'))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.bundle.Load() == nil {
		http.Error(w, "no model loaded", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// Ready reports whether the server can usefully take traffic right now: a
// bundle is loaded AND the admission queue is below the shed threshold.
// This is the liveness/readiness split: /healthz answers "is the process
// up with a model", /readyz answers "should a front tier route here" —
// a saturated queue means new requests would be shed with 429, so the
// proxy's failover deserves a truthful 503 instead.
func (s *Server) Ready() error {
	if s.bundle.Load() == nil {
		return ErrNoModel
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		return ErrOverloaded
	}
	return nil
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := s.Ready(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

// ObserveRequest is the POST /observe payload: ground truth for an earlier
// prediction, keyed by its request id.
type ObserveRequest struct {
	RequestID string  `json:"request_id"`
	Actual    float64 `json:"actual"`
	// At is the observation time in unix seconds (alarm attribution);
	// 0 means now.
	At int64 `json:"at,omitempty"`
}

// ObserveResponse echoes the quality verdict for the closed loop.
type ObserveResponse struct {
	Quality quality.Verdict `json:"quality"`
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if s.monitor == nil {
		jsonError(w, http.StatusServiceUnavailable, "quality monitor disabled")
		return
	}
	s.limitBody(w, r)
	var req ObserveRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		if isBodyTooLarge(err) {
			jsonError(w, http.StatusRequestEntityTooLarge, "request body too large")
			return
		}
		jsonError(w, http.StatusBadRequest, "invalid request: "+err.Error())
		return
	}
	if req.RequestID == "" {
		jsonError(w, http.StatusBadRequest, "request_id is required")
		return
	}
	p, ok := s.takePending(req.RequestID)
	if !ok {
		jsonError(w, http.StatusNotFound, "unknown or expired request id")
		return
	}
	at := req.At
	if at == 0 {
		at = time.Now().Unix()
	}
	v := s.monitor.Observe(p.env, req.RequestID, p.pred, req.Actual, at)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(ObserveResponse{Quality: v})
}

func (s *Server) handleQuality(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	if s.monitor == nil {
		jsonError(w, http.StatusServiceUnavailable, "quality monitor disabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.monitor.Snapshot())
}

// jsonError writes an {"error": ...} body, matching the alarm store's error
// shape so clients parse one format everywhere.
func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
