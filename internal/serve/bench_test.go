package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/quality"
)

// benchServer builds a realistic serving stack (model, schema, quality
// monitor) sized like the paper's production model so ns/op tracks the
// real forward cost, not a toy.
func benchServer(b *testing.B, workers int) *Server {
	b.Helper()
	cfg := core.Config{In: 8, Hidden: 64, GRUHidden: 32, EmbedDim: 8, Window: 16, Seed: 42}
	schema := envmeta.NewSchema()
	schema.Observe(envmeta.Environment{Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "B1"})
	schema.Freeze()
	s := New(Config{
		MaxBatch: 32, MaxLinger: 100 * time.Microsecond,
		QueueDepth: 1024, Workers: workers,
		Quality: &quality.Config{},
	})
	b.Cleanup(s.Close)
	s.SetBundle(&Bundle{
		Name: "bench", Version: 1,
		Model:    core.New(cfg, schema),
		Schema:   schema,
		YScale:   dataset.YScaler{Mu: 50, Sigma: 10},
		Baseline: &quality.Baseline{Mu: 0, Sigma: 5, Samples: 100},
	})
	return s
}

func benchRequest() *Request {
	cf := make([]float64, 8)
	window := make([]float64, 16)
	for i := range cf {
		cf[i] = float64(i) * 0.1
	}
	for i := range window {
		window[i] = 50 + float64(i)
	}
	return &Request{
		CF: cf, Window: window,
		Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "B1",
	}
}

// BenchmarkServeDo measures the in-process serving path: admission,
// batching, model forward, and response assembly — no HTTP.
func BenchmarkServeDo(b *testing.B) {
	s := benchServer(b, 1)
	req := benchRequest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, code, err := s.Do(req); err != nil || code != 200 {
			b.Fatalf("do: code=%d err=%v", code, err)
		}
	}
}

// BenchmarkServeDoParallel drives the batcher from many goroutines, the
// shape under which MaxBatch>1 actually forms batches.
func BenchmarkServeDoParallel(b *testing.B) {
	s := benchServer(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		req := benchRequest()
		for pb.Next() {
			if _, code, err := s.Do(req); err != nil || code != 200 {
				b.Fatalf("do: code=%d err=%v", code, err)
			}
		}
	})
}

// BenchmarkServePredictHTTP adds the /predict edge: JSON decode, the
// serving path, and response encode — the cost a proxy or client sees
// minus the network.
func BenchmarkServePredictHTTP(b *testing.B) {
	s := benchServer(b, 1)
	body := []byte(`{"cf":[0,0.1,0.2,0.3,0.4,0.5,0.6,0.7],"window":[50,51,52,53,54,55,56,57,58,59,60,61,62,63,64,65],"testbed":"tb1","sut":"fw","testcase":"load","build":"B1"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("POST", "/predict", bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if w.Code != 200 {
			b.Fatalf("predict: status %d body %s", w.Code, w.Body.String())
		}
	}
}

// BenchmarkServePredictEncode isolates request marshalling: how much of
// the HTTP path is JSON, not model.
func BenchmarkServePredictEncode(b *testing.B) {
	req := benchRequest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := json.Marshal(req)
		if err != nil || len(buf) == 0 {
			b.Fatalf("encode: %v", err)
		}
	}
}
