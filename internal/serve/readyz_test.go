package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// Liveness vs readiness: /readyz must gate on "can actually take traffic"
// (bundle loaded, queue below the shed threshold) while /healthz keeps its
// pre-split meaning for old health checkers.
func TestReadyzGatesOnBundle(t *testing.T) {
	s := New(Config{MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 8, Workers: 1})
	t.Cleanup(s.Close)

	get := func(path string) int {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w.Code
	}

	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetBundle: %d, want 503", code)
	}
	s.SetBundle(testBundle(1, 1))
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz with a bundle: %d, want 200", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz with a bundle: %d, want 200", code)
	}
}

func TestReadyDistinguishesOverloadFromNoModel(t *testing.T) {
	s := New(Config{MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 8, Workers: 1})
	t.Cleanup(s.Close)

	if err := s.Ready(); err != ErrNoModel {
		t.Fatalf("Ready without a bundle = %v, want ErrNoModel", err)
	}
	s.SetBundle(testBundle(1, 1))
	if err := s.Ready(); err != nil {
		t.Fatalf("Ready with a bundle = %v, want nil", err)
	}
	// Shrink the configured depth under the (empty) queue's length so the
	// saturation branch is reachable without racing the workers.
	s.cfg.QueueDepth = 0
	if err := s.Ready(); err != ErrOverloaded {
		t.Fatalf("Ready at the shed threshold = %v, want ErrOverloaded", err)
	}
}
