package serve

import (
	"math"
	"math/rand"
	"testing"

	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// TestForwardStageAllocs is the PR-4 follow-up gate: the serve worker's
// forward stage (Bundle.PredictInto — standardize, scale, fused forward,
// unscale) must not allocate in steady state now that it rides
// infer.PredictInto with caller-owned result storage. The bound allows one
// stray allocation because GC can steal pooled scratch arenas mid-run; the
// regression being guarded against is the old Scale/Predict/Unscale chain's
// four-plus slices per pass.
func TestForwardStageAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; gate runs in the non-race pass")
	}
	b := testBundle(7, 1)
	const n = 8
	cfg := b.Model.Config()
	rng := rand.New(rand.NewSource(9))
	batch := &nn.Batch{
		X:      tensor.New(n, cfg.In),
		Window: tensor.New(n, cfg.Window),
		EnvIDs: make([][]int, envmeta.NumFeatures),
	}
	for i := range batch.X.Data {
		batch.X.Data[i] = rng.NormFloat64()
	}
	for i := range batch.Window.Data {
		batch.Window.Data[i] = 50 + rng.NormFloat64()
	}
	ids := b.Schema.Encode(testEnvs[0])
	for k := range batch.EnvIDs {
		batch.EnvIDs[k] = make([]int, n)
		for i := range batch.EnvIDs[k] {
			batch.EnvIDs[k][i] = ids[k]
		}
	}
	preds := make([]float64, n)

	b.PredictInto(preds, batch) // warm the arena pool
	for _, p := range preds {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatalf("warmup produced %v", preds)
		}
	}
	allocs := testing.AllocsPerRun(100, func() { b.PredictInto(preds, batch) })
	t.Logf("forward stage allocs/op: %.1f", allocs)
	if allocs > 1 {
		t.Fatalf("forward stage allocates %.1f/op in steady state; want ≤1", allocs)
	}
}

// TestBundlePredictIntoMatchesScalePredictUnscale pins the in-place path to
// the allocating reference arithmetic bit-for-bit.
func TestBundlePredictIntoMatchesScalePredictUnscale(t *testing.T) {
	b := testBundle(11, 1)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		req := randomRequest(rng)
		want := directPredict(b, req) // Scale → Predict → Unscale chain

		batch := &nn.Batch{
			X:      tensor.FromSlice(1, len(req.CF), append([]float64(nil), req.CF...)),
			Window: tensor.FromSlice(1, len(req.Window), append([]float64(nil), req.Window...)),
			EnvIDs: make([][]int, envmeta.NumFeatures),
		}
		ids := b.Schema.Encode(envmeta.Environment{Testbed: req.Testbed, SUT: req.SUT, Testcase: req.Testcase, Build: req.Build})
		for k := range batch.EnvIDs {
			batch.EnvIDs[k] = []int{ids[k]}
		}
		got := make([]float64, 1)
		b.PredictInto(got, batch)
		if got[0] != want {
			t.Fatalf("trial %d: in-place %v, reference %v", trial, got[0], want)
		}
	}
}
