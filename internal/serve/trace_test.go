package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"env2vec/internal/obs"
)

// traceTestServer hosts a server whose trace store keeps everything, so
// assertions don't depend on the sampling coin.
func traceTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Trace = obs.TraceStoreConfig{Capacity: 64, SampleRate: 1}
	s := New(cfg)
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

// TestPredictSpansParentOntoTraceparent is the serve-side half of the
// cross-process story: a request arriving with a traceparent header must
// come back with a span tree whose root parents onto the caller's span,
// with the four stage timings recast as children — and the same tree must
// be retrievable from GET /traces/{id}.
func TestPredictSpansParentOntoTraceparent(t *testing.T) {
	s, srv := traceTestServer(t, Config{MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 16, Workers: 1})
	s.SetBundle(testBundle(1, 1))

	const reqID, callerSpan = "feedcafe00000001", "aabbccdd00000001"
	body := `{"cf":[0.1,0.2,0.3],"window":[50,51],"testbed":"tb1","sut":"fw","testcase":"tc","build":"B1"}`
	httpReq, _ := http.NewRequest(http.MethodPost, srv.URL+"/predict", bytes.NewReader([]byte(body)))
	httpReq.Header.Set("Content-Type", "application/json")
	httpReq.Header.Set(obs.RequestIDHeader, reqID)
	httpReq.Header.Set(obs.TraceParentHeader, obs.FormatTraceParent(reqID, callerSpan))
	httpResp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", httpResp.StatusCode)
	}
	var resp Response
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("response has no trace block")
	}
	// Flat stage fields stay wire-compatible beside the new span tree.
	if resp.Trace.RequestID != reqID || resp.Trace.TotalMS <= 0 {
		t.Fatalf("flat trace fields broken: %+v", resp.Trace)
	}
	spans := resp.Trace.Spans
	byName := map[string]obs.Span{}
	for _, sp := range spans {
		if sp.TraceID != reqID {
			t.Fatalf("span %s has trace id %q, want %q", sp.Name, sp.TraceID, reqID)
		}
		byName[sp.Name] = sp
	}
	root, ok := byName["serve.request"]
	if !ok {
		t.Fatalf("no serve.request root span in %v", spans)
	}
	if root.ParentID != callerSpan {
		t.Fatalf("root parent = %q, want the caller's span %q", root.ParentID, callerSpan)
	}
	for _, stage := range []string{"serve.queue_wait", "serve.linger", "serve.forward", "serve.encode"} {
		sp, ok := byName[stage]
		if !ok {
			t.Fatalf("missing stage span %s in %v", stage, spans)
		}
		if sp.ParentID != root.SpanID {
			t.Fatalf("%s parent = %q, want root %q", stage, sp.ParentID, root.SpanID)
		}
	}
	if byName["serve.forward"].Attrs["batch_size"] == "" {
		t.Fatal("forward span missing batch_size attr")
	}

	// The completed tree is retrievable after the response was read.
	stored, ok := s.Traces().Get(reqID)
	if !ok {
		t.Fatal("trace not retained in the store")
	}
	if stored.Outcome != obs.OutcomeServed || len(stored.Spans) != len(spans) {
		t.Fatalf("stored trace = outcome %q, %d spans; want served, %d", stored.Outcome, len(stored.Spans), len(spans))
	}
	httpGet, err := http.Get(srv.URL + "/traces/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	var fetched obs.Trace
	err = json.NewDecoder(httpGet.Body).Decode(&fetched)
	httpGet.Body.Close()
	if err != nil || fetched.TraceID != reqID || fetched.Root != "serve.request" {
		t.Fatalf("GET /traces/{id} = %+v, err %v", fetched, err)
	}
}

// TestShedRequestTraceRetained: a 429 at admission leaves a root-only shed
// trace in the store — the tail the sampler must never drop.
func TestShedRequestTraceRetained(t *testing.T) {
	stall := make(chan struct{})
	s, srv := traceTestServer(t, Config{MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 1, Workers: 1, stall: stall})
	defer close(stall)
	s.SetBundle(testBundle(1, 1))

	body := `{"cf":[0.1,0.2,0.3],"window":[50,51],"testbed":"tb1","sut":"fw","testcase":"tc","build":"B1"}`
	post := func(id string) int {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/predict", bytes.NewReader([]byte(body)))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(obs.RequestIDHeader, id)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return -1 // goroutines can outlive the test body; no t.Fatal here
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// With the worker stalled, hammer until one request sheds. The stalled
	// ones complete only after close(stall), so fire them from goroutines.
	codes := make(chan int, 64)
	ids := make(chan string, 64)
	for i := 0; i < 64; i++ {
		go func(i int) {
			id := obs.NewRequestID()
			code := post(id)
			codes <- code
			if code == http.StatusTooManyRequests {
				ids <- id
			}
		}(i)
	}
	var shedID string
	deadline := time.After(30 * time.Second)
	for shedID == "" {
		select {
		case id := <-ids:
			shedID = id
		case <-deadline:
			t.Fatal("no request shed despite a stalled worker")
		}
	}
	tr, ok := s.Traces().Get(shedID)
	if !ok {
		t.Fatalf("shed request %s has no trace in the store", shedID)
	}
	if tr.Outcome != obs.OutcomeShed {
		t.Fatalf("shed trace outcome = %q, want shed", tr.Outcome)
	}
	if len(tr.Spans) == 0 || tr.Spans[0].Attrs["error"] == "" {
		t.Fatalf("shed trace should carry a root span with the error attr: %+v", tr.Spans)
	}
}
