//go:build race

package serve

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, which would trip absolute allocation gates.
const raceEnabled = true
