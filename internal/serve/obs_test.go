package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"env2vec/internal/obs"
	"env2vec/internal/tsdb"
)

// postPredict runs one /predict round trip, optionally with an inbound
// X-Request-ID header, and returns the response and decoded body.
func postPredict(t *testing.T, url string, req *Request, requestID string) (*http.Response, Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	hreq, err := http.NewRequest(http.MethodPost, url+"/predict", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if requestID != "" {
		hreq.Header.Set(obs.RequestIDHeader, requestID)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestRequestIDPropagation(t *testing.T) {
	s := New(Config{MaxBatch: 2, MaxLinger: time.Millisecond, QueueDepth: 8, Workers: 1})
	defer s.Close()
	s.SetBundle(testBundle(1, 1))
	srv := httptest.NewServer(s)
	defer srv.Close()
	rng := rand.New(rand.NewSource(7))

	// Inbound X-Request-ID is echoed in both the response header and the
	// trace block.
	resp, out := postPredict(t, srv.URL, randomRequest(rng), "trace-me-42")
	if got := resp.Header.Get(obs.RequestIDHeader); got != "trace-me-42" {
		t.Fatalf("response header id %q, want trace-me-42", got)
	}
	if out.Trace == nil || out.Trace.RequestID != "trace-me-42" {
		t.Fatalf("trace block id wrong: %+v", out.Trace)
	}

	// Absent an inbound id, one is generated and still echoed consistently.
	resp, out = postPredict(t, srv.URL, randomRequest(rng), "")
	hdr := resp.Header.Get(obs.RequestIDHeader)
	if len(hdr) != 16 {
		t.Fatalf("generated id %q, want 16 hex chars", hdr)
	}
	if out.Trace == nil || out.Trace.RequestID != hdr {
		t.Fatalf("trace id %v does not match header %q", out.Trace, hdr)
	}

	// The header also rides on rejected requests: a full queue still
	// answers with the id the client can correlate.
	if out.Trace.TotalMS <= 0 || out.Trace.ForwardMS <= 0 {
		t.Fatalf("trace durations not populated: %+v", out.Trace)
	}
	if out.Trace.EncodeMS <= 0 {
		t.Fatalf("encode span not populated: %+v", out.Trace)
	}

	// The non-HTTP path generates ids too.
	req := randomRequest(rng)
	r2, _, err := s.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if req.RequestID == "" || r2.Trace == nil || r2.Trace.RequestID != req.RequestID {
		t.Fatalf("Do path id mismatch: req=%q trace=%+v", req.RequestID, r2.Trace)
	}
}

// TestSlowForwardAttribution is the acceptance scenario: when the forward
// pass is the slow stage, the delay must land in the forward-pass histogram
// (and the trace block's forward span), not in queue-wait.
func TestSlowForwardAttribution(t *testing.T) {
	stall := make(chan struct{})
	s := New(Config{MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 8, Workers: 1, stall: stall})
	defer s.Close()
	s.SetBundle(testBundle(1, 1))

	rng := rand.New(rand.NewSource(13))
	req := randomRequest(rng)
	type result struct {
		resp *Response
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, _, err := s.Do(req)
		resc <- result{resp, err}
	}()
	time.Sleep(60 * time.Millisecond) // hold the worker: simulated slow forward
	close(stall)
	res := <-resc
	if res.err != nil {
		t.Fatal(res.err)
	}

	tr := res.resp.Trace
	if tr == nil {
		t.Fatal("no trace block")
	}
	if tr.ForwardMS < 40 {
		t.Fatalf("slow forward not attributed to the forward span: %+v", tr)
	}
	if tr.QueueWaitMS > 20 {
		t.Fatalf("idle queue charged with the delay: %+v", tr)
	}

	st := s.Stats()
	if st.ForwardP99MS < 40 {
		t.Fatalf("forward p99 %.2fms, want >= 40 (stats: %+v)", st.ForwardP99MS, st)
	}
	if st.QueueWaitP99MS > 20 {
		t.Fatalf("queue-wait p99 %.2fms should stay small (stats: %+v)", st.QueueWaitP99MS, st)
	}
	if st.P99LatencyMS < st.ForwardP99MS {
		t.Fatalf("total p99 %.2f < forward p99 %.2f", st.P99LatencyMS, st.ForwardP99MS)
	}
}

// TestMetricsEndpoint asserts GET /metrics is valid Prometheus text
// exposition (parsed by our own tsdb parser, the same code path a scraper
// would use) and carries the per-stage latency histograms.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 16, Workers: 1})
	defer s.Close()
	s.SetBundle(testBundle(1, 1))
	srv := httptest.NewServer(s)
	defer srv.Close()

	rng := rand.New(rand.NewSource(21))
	const n = 5
	for i := 0; i < n; i++ {
		if _, _, err := s.Do(randomRequest(rng)); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	// Served traffic leaves request-id exemplars on the latency buckets,
	// and the page must still parse as exposition text with them present.
	if !strings.Contains(string(page), `# {request_id="`) {
		t.Fatalf("no exemplar suffix on the metrics page:\n%s", page)
	}
	series, err := tsdb.ParseExposition(bytes.NewReader(page), 0)
	if err != nil {
		t.Fatalf("metrics page is not valid exposition format: %v", err)
	}
	byKey := map[string]float64{}
	for _, sr := range series {
		key := sr.Labels["__name__"]
		if st := sr.Labels["stage"]; st != "" {
			key += "/" + st
		}
		if out := sr.Labels["outcome"]; out != "" {
			key += "/" + out
		}
		byKey[key] = sr.Samples[len(sr.Samples)-1].V
	}
	if got := byKey["env2vec_serve_requests_total/served"]; got != n {
		t.Fatalf("served counter %v, want %d (have %v)", got, n, byKey)
	}
	for _, stage := range []string{"queue_wait", "linger", "forward"} {
		if c := byKey["env2vec_serve_stage_latency_ms_count/"+stage]; c != n {
			t.Fatalf("stage %s histogram count %v, want %d", stage, c, n)
		}
	}
	if byKey["env2vec_serve_model_version"] != 1 {
		t.Fatalf("model version gauge %v, want 1", byKey["env2vec_serve_model_version"])
	}
	if byKey["env2vec_serve_queue_capacity"] != 16 {
		t.Fatalf("queue capacity gauge %v, want 16", byKey["env2vec_serve_queue_capacity"])
	}
	if byKey["env2vec_serve_batches_total"] < 1 {
		t.Fatalf("batches counter %v, want >= 1", byKey["env2vec_serve_batches_total"])
	}
	if byKey["env2vec_serve_request_latency_ms_count"] != n {
		t.Fatalf("latency histogram count %v, want %d", byKey["env2vec_serve_request_latency_ms_count"], n)
	}
}
