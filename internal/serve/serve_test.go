package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"env2vec/internal/anomaly"
	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
	"env2vec/internal/quality"
	"env2vec/internal/tensor"
)

var testEnvs = []envmeta.Environment{
	{Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "S01"},
	{Testbed: "tb2", SUT: "fw", Testcase: "load", Build: "S02"},
}

// testBundle builds a small serving bundle around an untrained (but
// deterministic) model. seed varies the weights so distinct versions give
// distinct predictions.
func testBundle(seed int64, version int) *Bundle {
	cfg := core.Config{In: 3, Hidden: 8, GRUHidden: 4, EmbedDim: 3, Window: 2, Seed: seed}
	schema := envmeta.NewSchema()
	for _, e := range testEnvs {
		schema.Observe(e)
	}
	schema.Freeze()
	return &Bundle{
		Name:    "test",
		Version: version,
		Model:   core.New(cfg, schema),
		Schema:  schema,
		Std:     &dataset.Standardizer{Mean: []float64{0.1, -0.2, 0.3}, Std: []float64{1, 2, 0.5}},
		YScale:  dataset.YScaler{Mu: 50, Sigma: 10},
	}
}

// randomRequest draws a request targeting one of the known environments.
func randomRequest(rng *rand.Rand) *Request {
	e := testEnvs[rng.Intn(len(testEnvs))]
	req := &Request{
		CF:      []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
		Window:  []float64{50 + rng.NormFloat64(), 50 + rng.NormFloat64()},
		Testbed: e.Testbed, SUT: e.SUT, Testcase: e.Testcase, Build: e.Build,
	}
	return req
}

// directPredict runs the same request through the model without the serving
// machinery — the reference the micro-batched path must match exactly.
func directPredict(b *Bundle, req *Request) float64 {
	batch := &nn.Batch{
		X:      tensor.FromSlice(1, len(req.CF), append([]float64(nil), req.CF...)),
		Window: tensor.FromSlice(1, len(req.Window), append([]float64(nil), req.Window...)),
		Y:      tensor.New(1, 1),
		EnvIDs: make([][]int, envmeta.NumFeatures),
	}
	ids := b.Schema.Encode(envmeta.Environment{Testbed: req.Testbed, SUT: req.SUT, Testcase: req.Testcase, Build: req.Build})
	for k := range batch.EnvIDs {
		batch.EnvIDs[k] = []int{ids[k]}
	}
	if b.Std != nil {
		b.Std.Apply(batch.X)
	}
	return b.YScale.Unscale(b.Model.Predict(b.YScale.Scale(batch)))[0]
}

func TestBundleSnapshotRoundTrip(t *testing.T) {
	b := testBundle(3, 1)
	b.Baseline = &quality.Baseline{Mu: 0.4, Sigma: 2.5, Samples: 321}
	snap := b.Model.Snapshot()
	if err := AttachArtifacts(snap, b.Model.Config(), b.Schema, b.Std, b.YScale, b.Baseline); err != nil {
		t.Fatal(err)
	}
	// Serialize through gob like the registry does.
	data, err := snap.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := nn.DecodeSnapshot(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := BundleFromSnapshot("test", 1, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Baseline == nil || *restored.Baseline != *b.Baseline {
		t.Fatalf("error baseline lost in round trip: %+v", restored.Baseline)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10; i++ {
		req := randomRequest(rng)
		want := directPredict(b, req)
		got := directPredict(restored, req)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("restored bundle diverges: got %v want %v", got, want)
		}
	}

	// Snapshot without artifacts must be rejected with a clear error.
	if _, err := BundleFromSnapshot("test", 1, b.Model.Snapshot()); err == nil {
		t.Fatalf("snapshot without artifacts should fail")
	}
}

func TestServeMatchesDirectPredictAndBatches(t *testing.T) {
	b := testBundle(1, 1)
	s := New(Config{MaxBatch: 16, MaxLinger: 20 * time.Millisecond, QueueDepth: 256, Workers: 2})
	defer s.Close()
	s.SetBundle(b)

	const n = 64
	rng := rand.New(rand.NewSource(9))
	reqs := make([]*Request, n)
	want := make([]float64, n)
	for i := range reqs {
		reqs[i] = randomRequest(rng)
		want[i] = directPredict(b, reqs[i])
	}
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, code, err := s.Do(reqs[i])
			if err != nil || code != http.StatusOK {
				errs <- err
				return
			}
			if math.Abs(resp.Prediction-want[i]) > 1e-9 {
				t.Errorf("request %d: got %v want %v", i, resp.Prediction, want[i])
			}
			if resp.ModelVersion != 1 || resp.Model != "test" {
				t.Errorf("request %d: wrong model identity %s/v%d", i, resp.Model, resp.ModelVersion)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("request failed: %v", err)
	}
	st := s.Stats()
	if st.Served != n {
		t.Fatalf("served %d, want %d", st.Served, n)
	}
	if st.MaxBatchObserved < 2 {
		t.Fatalf("micro-batching never combined requests (max batch %d over %d batches)", st.MaxBatchObserved, st.Batches)
	}
	if st.Batches >= n {
		t.Fatalf("every request got its own forward pass (%d batches for %d requests)", st.Batches, n)
	}
}

func TestBackpressureRejectsInsteadOfHanging(t *testing.T) {
	// Hold the single worker on the stall hook so the bounded queue must
	// genuinely fill: admitted requests block, everyone else must be
	// rejected immediately rather than queued unboundedly.
	stall := make(chan struct{})
	s := New(Config{MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 4, Workers: 1, stall: stall})
	defer s.Close()
	s.SetBundle(testBundle(1, 1))

	rng := rand.New(rand.NewSource(3))
	const n = 128
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		req := randomRequest(rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, code, _ := s.Do(req)
			codes <- code
		}()
	}
	// While the worker is stalled no request can complete, so the first
	// arrival proves the queue overflowed into a 429.
	select {
	case first := <-codes:
		if first != http.StatusTooManyRequests {
			t.Fatalf("first completion while stalled was %d, want 429", first)
		}
		codes <- first
	case <-time.After(30 * time.Second):
		t.Fatal("no request was shed despite a stalled worker")
	}
	close(stall) // release the worker; admitted requests drain
	fin := make(chan struct{})
	go func() { wg.Wait(); close(fin) }()
	select {
	case <-fin:
	case <-time.After(30 * time.Second):
		t.Fatal("overload hung instead of shedding")
	}
	close(codes)
	var ok, rejected int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if rejected == 0 {
		t.Fatalf("queue bound 4 with %d concurrent requests produced no 429s (%d ok)", n, ok)
	}
	if ok == 0 {
		t.Fatalf("overload starved every request")
	}
	if got := s.Stats().Rejected; got != uint64(rejected) {
		t.Fatalf("stats rejected %d, observed %d", got, rejected)
	}
}

func TestHotReloadSwapsVersions(t *testing.T) {
	b1, b2 := testBundle(1, 1), testBundle(2, 2)
	s := New(Config{MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 64, Workers: 2})
	defer s.Close()
	s.SetBundle(b1)

	rng := rand.New(rand.NewSource(2))
	req := randomRequest(rng)
	resp, _, err := s.Do(req)
	if err != nil || resp.ModelVersion != 1 {
		t.Fatalf("v1 serve failed: %+v %v", resp, err)
	}
	want1, want2 := directPredict(b1, req), directPredict(b2, req)
	if math.Abs(want1-want2) < 1e-9 {
		t.Fatalf("test bundles should predict differently")
	}

	// Keep traffic flowing while the swap happens; every response must be
	// exactly right for whichever version it reports.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r := *req
				resp, code, err := s.Do(&r)
				if err != nil || code != http.StatusOK {
					t.Errorf("request dropped during reload: %d %v", code, err)
					return
				}
				want := want1
				if resp.ModelVersion == 2 {
					want = want2
				}
				if math.Abs(resp.Prediction-want) > 1e-9 {
					t.Errorf("v%d response wrong: got %v", resp.ModelVersion, resp.Prediction)
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	s.SetBundle(b2)
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()

	resp, _, err = s.Do(req)
	if err != nil || resp.ModelVersion != 2 {
		t.Fatalf("v2 not serving after swap: %+v %v", resp, err)
	}
	if got := s.Stats().Reloads; got != 1 {
		t.Fatalf("reload count %d, want 1", got)
	}
}

func TestRequestValidationAndLifecycle(t *testing.T) {
	s := New(Config{MaxBatch: 2, MaxLinger: time.Millisecond, QueueDepth: 8, Workers: 1})
	// No model yet.
	if _, code, err := s.Do(&Request{}); code != http.StatusServiceUnavailable || err != ErrNoModel {
		t.Fatalf("expected 503/no-model, got %d %v", code, err)
	}
	s.SetBundle(testBundle(1, 1))
	// Wrong feature arity.
	if _, code, _ := s.Do(&Request{CF: []float64{1}, Window: []float64{1, 2}}); code != http.StatusBadRequest {
		t.Fatalf("bad CF accepted: %d", code)
	}
	// Wrong window length.
	if _, code, _ := s.Do(&Request{CF: []float64{1, 2, 3}, Window: []float64{1}}); code != http.StatusBadRequest {
		t.Fatalf("bad window accepted: %d", code)
	}
	// Unknown environment values flow through <unk>, not an error.
	if _, code, err := s.Do(&Request{CF: []float64{1, 2, 3}, Window: []float64{1, 2}, Testbed: "never-seen"}); code != http.StatusOK {
		t.Fatalf("unseen environment rejected: %d %v", code, err)
	}
	s.Close()
	s.Close() // idempotent
	if _, code, err := s.Do(&Request{CF: []float64{1, 2, 3}, Window: []float64{1, 2}}); code != http.StatusServiceUnavailable || err != ErrClosed {
		t.Fatalf("closed server accepted work: %d %v", code, err)
	}
}

func TestInlineAnomalyVerdicts(t *testing.T) {
	b := testBundle(1, 1)
	s := New(Config{
		MaxBatch: 1, QueueDepth: 8, Workers: 1,
		Detect:         &anomaly.Config{Gamma: 2, AbsFilter: 5},
		MinCalibration: 4,
	})
	defer s.Close()
	s.SetBundle(b)

	rng := rand.New(rand.NewSource(5))
	base := randomRequest(rng)
	pred := directPredict(b, base)

	// Calibration phase: accurate observations, no verdicts yet.
	for i := 0; i < 4; i++ {
		r := *base
		actual := pred
		r.Actual = &actual
		resp, _, err := s.Do(&r)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Anomalous != nil {
			t.Fatalf("verdict before calibration completed (sample %d)", i)
		}
	}
	// Accurate observation → not anomalous.
	r := *base
	actual := pred
	r.Actual = &actual
	resp, _, err := s.Do(&r)
	if err != nil || resp.Anomalous == nil {
		t.Fatalf("calibrated chain gave no verdict: %+v %v", resp, err)
	}
	if *resp.Anomalous {
		t.Fatalf("accurate observation flagged anomalous")
	}
	// Large deviation → anomalous, with the deviation reported.
	r2 := *base
	bad := pred - 40
	r2.Actual = &bad
	resp, _, err = s.Do(&r2)
	if err != nil || resp.Anomalous == nil || !*resp.Anomalous {
		t.Fatalf("40-point deviation not flagged: %+v %v", resp, err)
	}
	if resp.Deviation == nil || math.Abs(*resp.Deviation-40) > 1e-9 {
		t.Fatalf("deviation wrong: %+v", resp.Deviation)
	}
	// Sub-filter deviation (< 5 points) stays unflagged even if γ·σ≈0.
	r3 := *base
	small := pred - 3
	r3.Actual = &small
	resp, _, err = s.Do(&r3)
	if err != nil || resp.Anomalous == nil || *resp.Anomalous {
		t.Fatalf("3-point deviation should pass the absolute filter: %+v %v", resp, err)
	}
}

func TestHTTPSurface(t *testing.T) {
	s := New(Config{MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 16, Workers: 1})
	defer s.Close()
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Health before a model loads.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz without model: %d", resp.StatusCode)
	}

	b := testBundle(1, 1)
	s.SetBundle(b)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with model: %d", resp.StatusCode)
	}

	// A prediction round trip.
	rng := rand.New(rand.NewSource(11))
	req := randomRequest(rng)
	body, _ := json.Marshal(req)
	post, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out Response
	if err := json.NewDecoder(post.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", post.StatusCode)
	}
	if want := directPredict(b, req); math.Abs(out.Prediction-want) > 1e-9 {
		t.Fatalf("HTTP prediction %v, want %v", out.Prediction, want)
	}

	// Malformed body → 400; wrong method → 405.
	bad, _ := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader([]byte("{")))
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed predict: %d", bad.StatusCode)
	}
	get, _ := http.Get(srv.URL + "/predict")
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict: %d", get.StatusCode)
	}

	// Stats endpoint reflects the traffic.
	statz, err := http.Get(srv.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(statz.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	statz.Body.Close()
	if st.Served != 1 || st.Model != "test" || st.ModelVersion != 1 {
		t.Fatalf("statz wrong: %+v", st)
	}
	if st.QueueCapacity != 16 || st.Workers != 1 {
		t.Fatalf("statz config wrong: %+v", st)
	}
}
