// Tests for the float32 serving path at the bundle/server layer: precision
// parsing, PredictInto routing through the frozen float32 predictor, and
// the /statz + /metrics surfaces that report which path is live. Numeric
// parity itself is proven exhaustively by the cross-precision battery in
// internal/core; here the tolerance checks only guard the routing.
package serve

import (
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"env2vec/internal/envmeta"
	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

func TestParsePrecision(t *testing.T) {
	for s, want := range map[string]Precision{
		"":        PrecisionFloat64,
		"float64": PrecisionFloat64,
		"float32": PrecisionFloat32,
	} {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"f32", "float16", "double", "32"} {
		if _, err := ParsePrecision(s); err == nil {
			t.Fatalf("ParsePrecision(%q) should fail", s)
		}
	}
}

// requestBatch builds the single-row batch directPredict would, for driving
// Bundle.PredictInto directly (which consumes the batch).
func requestBatch(b *Bundle, req *Request) *nn.Batch {
	batch := &nn.Batch{
		X:      tensor.FromSlice(1, len(req.CF), append([]float64(nil), req.CF...)),
		Window: tensor.FromSlice(1, len(req.Window), append([]float64(nil), req.Window...)),
		Y:      tensor.New(1, 1),
		EnvIDs: make([][]int, envmeta.NumFeatures),
	}
	ids := b.Schema.Encode(envmeta.Environment{Testbed: req.Testbed, SUT: req.SUT, Testcase: req.Testcase, Build: req.Build})
	for k := range batch.EnvIDs {
		batch.EnvIDs[k] = []int{ids[k]}
	}
	return batch
}

func TestBundlePrecisionRouting(t *testing.T) {
	b64 := testBundle(5, 1)
	b32 := testBundle(5, 1)
	if got := b64.ActivePrecision(); got != PrecisionFloat64 {
		t.Fatalf("default precision %v, want float64", got)
	}
	if err := b32.SetPrecision(PrecisionFloat32); err != nil {
		t.Fatal(err)
	}
	if got := b32.ActivePrecision(); got != PrecisionFloat32 {
		t.Fatalf("precision after SetPrecision(float32): %v", got)
	}
	if err := b32.SetPrecision("float16"); err == nil {
		t.Fatal("SetPrecision(float16) should fail")
	}

	rng := rand.New(rand.NewSource(11))
	out64 := make([]float64, 1)
	out32 := make([]float64, 1)
	for i := 0; i < 20; i++ {
		req := randomRequest(rng)
		b64.PredictInto(out64, requestBatch(b64, req))
		b32.PredictInto(out32, requestBatch(b32, req))
		// Predictions are in raw RU units (YScale sigma=10 here), so the
		// float32 path's 1e-4 relative model-output contract widens by the
		// unscaling; 1e-3 absolute-ish slack is still ~1000× tighter than
		// any real quality threshold.
		scale := math.Max(1, math.Abs(out64[0]))
		if d := math.Abs(out32[0] - out64[0]); d > 1e-3*scale {
			t.Fatalf("req %d: float32 bundle %v vs float64 bundle %v (diff %g)", i, out32[0], out64[0], d)
		}
		if out32[0] == out64[0] {
			continue // identical is fine too, just means tiny round-off
		}
	}

	// Reverting to float64 drops the frozen predictor.
	if err := b32.SetPrecision(PrecisionFloat64); err != nil {
		t.Fatal(err)
	}
	if got := b32.ActivePrecision(); got != PrecisionFloat64 {
		t.Fatalf("precision after reverting: %v", got)
	}
}

// TestServerReportsPrecision boots a server on a float32 bundle and asserts
// the precision is visible everywhere an operator would look: /statz
// (Stats.Precision) and the env2vec_infer_precision gauge on /metrics.
func TestServerReportsPrecision(t *testing.T) {
	b := testBundle(1, 1)
	if err := b.SetPrecision(PrecisionFloat32); err != nil {
		t.Fatal(err)
	}
	s := New(Config{MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 16, Workers: 1})
	defer s.Close()
	s.SetBundle(b)
	srv := httptest.NewServer(s)
	defer srv.Close()

	rng := rand.New(rand.NewSource(3))
	if _, _, err := s.Do(randomRequest(rng)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Precision != "float32" {
		t.Fatalf("Stats().Precision = %q, want float32", st.Precision)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "env2vec_infer_precision 32") {
		t.Fatalf("metrics page missing env2vec_infer_precision 32:\n%s", page)
	}

	// Swapping in a float64 bundle moves the gauge with it.
	s.SetBundle(testBundle(2, 2))
	if st := s.Stats(); st.Precision != "float64" {
		t.Fatalf("Stats().Precision after float64 swap = %q", st.Precision)
	}
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "env2vec_infer_precision 64") {
		t.Fatalf("metrics page missing env2vec_infer_precision 64 after swap:\n%s", page)
	}
}
