package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"env2vec/internal/alarmstore"
	"env2vec/internal/quality"
)

// postJSON round-trips one JSON request against the test server.
func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestQualityLoopInlineActuals is the end-to-end drift loop with ground
// truth arriving inline: a sustained error shift on one environment must be
// detected within the window, raise an attributed alarm that lands in the
// alarm store, increment env2vec_quality_alarms_total, and show up in the
// /quality report.
func TestQualityLoopInlineActuals(t *testing.T) {
	store, err := alarmstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	b := testBundle(7, 1)
	b.Baseline = &quality.Baseline{Mu: 0, Sigma: 1, Samples: 200}
	s := New(Config{
		MaxBatch: 1, QueueDepth: 64, Workers: 1,
		Quality:   &quality.Config{Window: 8, MinSamples: 4, Cooldown: 4},
		AlarmSink: quality.StoreSink{Store: store},
	})
	s.SetBundle(b)
	srv := httptest.NewServer(s)
	defer srv.Close()

	rng := rand.New(rand.NewSource(21))
	base := randomRequest(rng)
	want := directPredict(b, base)

	// Inject a constant +20 error shift (alternating sign so the exceed-rate
	// criterion, not the mean-shift one, is what fires).
	var out Response
	for i := 0; i < 8; i++ {
		r := *base
		actual := want - 20
		if i%2 == 1 {
			actual = want + 20
		}
		r.Actual = &actual
		if code := postJSON(t, srv.URL+"/predict", &r, &out); code != http.StatusOK {
			t.Fatalf("predict %d: status %d", i, code)
		}
		if out.Quality == nil {
			t.Fatalf("predict %d: no quality block with inline actual", i)
		}
		if !out.Quality.Exceeded {
			t.Fatalf("predict %d: 20-point error not marked exceeding: %+v", i, out.Quality)
		}
	}
	if !out.Quality.Drift || out.Quality.DriftReason != "exceed-rate" {
		t.Fatalf("sustained exceedance not reported as drift: %+v", out.Quality)
	}
	if got := s.Quality().AlarmsEmitted(); got < 1 {
		t.Fatalf("no alarm emitted after sustained drift")
	}

	// The /quality report names the affected environment.
	resp, err := http.Get(srv.URL + "/quality")
	if err != nil {
		t.Fatal(err)
	}
	var snap quality.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Environments) != 1 {
		t.Fatalf("quality report has %d environments, want 1", len(snap.Environments))
	}
	es := snap.Environments[0]
	if es.Environment.Testbed != base.Testbed || es.Environment.Build != base.Build {
		t.Fatalf("wrong environment in report: %+v", es)
	}
	if !es.Drift || es.Alarms < 1 || es.LastAlarm == nil {
		t.Fatalf("report misses the drift: %+v", es)
	}

	// The alarm counter is on the /metrics page.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "env2vec_quality_alarms_total") {
		t.Fatalf("alarm counter missing from /metrics")
	}

	// Close drains the async pusher; the alarm must be in the store with
	// environment and time-interval attribution.
	s.Close()
	got := store.Find(alarmstore.Query{Testbed: base.Testbed})
	if len(got) < 1 {
		t.Fatalf("no alarm reached the store")
	}
	a := got[0].Alarm
	if !strings.HasPrefix(a.Detector, "quality:") {
		t.Fatalf("alarm detector %q lacks quality: prefix", a.Detector)
	}
	if a.SUT != base.SUT || a.Testcase != base.Testcase || a.Build != base.Build {
		t.Fatalf("alarm attribution wrong: %+v", a)
	}
	if a.StartTime == 0 || a.EndTime < a.StartTime {
		t.Fatalf("alarm time interval wrong: %+v", a)
	}
}

// TestObserveClosesTheLoop exercises the deferred-ground-truth path over
// HTTP end to end: /predict without an actual, then POST /observe with the
// request id, drifting errors, and an alarm delivered to an alarm store
// reached through its own HTTP API.
func TestObserveClosesTheLoop(t *testing.T) {
	remote, err := alarmstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	storeSrv := httptest.NewServer(&alarmstore.Handler{Store: remote})
	defer storeSrv.Close()

	b := testBundle(9, 1)
	b.Baseline = &quality.Baseline{Mu: 0, Sigma: 1, Samples: 200}
	s := New(Config{
		MaxBatch: 1, QueueDepth: 64, Workers: 1,
		Quality:    &quality.Config{Window: 8, MinSamples: 4, Cooldown: 4},
		AlarmSink:  quality.HTTPSink{URL: storeSrv.URL},
		AlarmAsync: quality.AsyncConfig{Backoff: time.Millisecond},
	})
	s.SetBundle(b)
	srv := httptest.NewServer(s)
	defer srv.Close()

	rng := rand.New(rand.NewSource(33))
	base := randomRequest(rng)

	for i := 0; i < 8; i++ {
		r := *base
		var pred Response
		if code := postJSON(t, srv.URL+"/predict", &r, &pred); code != http.StatusOK {
			t.Fatalf("predict %d: status %d", i, code)
		}
		if pred.Quality != nil {
			t.Fatalf("predict %d: quality verdict without ground truth", i)
		}
		if pred.Trace == nil || pred.Trace.RequestID == "" {
			t.Fatalf("predict %d: no request id to observe against", i)
		}
		actual := pred.Prediction - 20
		if i%2 == 1 {
			actual = pred.Prediction + 20
		}
		var obs ObserveResponse
		code := postJSON(t, srv.URL+"/observe", &ObserveRequest{
			RequestID: pred.Trace.RequestID, Actual: actual, At: int64(1000 + i),
		}, &obs)
		if code != http.StatusOK {
			t.Fatalf("observe %d: status %d", i, code)
		}
		if !obs.Quality.Exceeded {
			t.Fatalf("observe %d: 20-point error not exceeding: %+v", i, obs.Quality)
		}
		// Observing the same id twice must 404: the entry was consumed.
		if code := postJSON(t, srv.URL+"/observe", &ObserveRequest{RequestID: pred.Trace.RequestID, Actual: actual}, nil); code != http.StatusNotFound {
			t.Fatalf("observe %d replay: status %d, want 404", i, code)
		}
	}

	// Unknown ids and bad payloads come back as JSON errors.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/observe", strings.NewReader(`{"request_id":"nope","actual":1}`))
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var errBody map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || errBody["error"] == "" {
		t.Fatalf("unknown id: %d %v", resp.StatusCode, errBody)
	}

	// Close drains delivery; the drift alarm crossed the HTTP sink into the
	// remote store with attribution intact.
	s.Close()
	got := remote.Find(alarmstore.Query{Testbed: base.Testbed})
	if len(got) < 1 {
		t.Fatalf("no alarm reached the remote store")
	}
	a := got[0].Alarm
	if a.Detector != "quality:exceed-rate" || a.Build != base.Build {
		t.Fatalf("remote alarm wrong: %+v", a)
	}
	if a.StartTime < 1000 || a.EndTime < a.StartTime {
		t.Fatalf("alarm interval lost over HTTP: start=%d end=%d", a.StartTime, a.EndTime)
	}
}

// TestQualityEndpointsDisabled: without a quality config the endpoints
// refuse cleanly instead of panicking on a nil monitor.
func TestQualityEndpointsDisabled(t *testing.T) {
	s := New(Config{MaxBatch: 1, QueueDepth: 8, Workers: 1})
	defer s.Close()
	s.SetBundle(testBundle(1, 1))
	srv := httptest.NewServer(s)
	defer srv.Close()

	if code := postJSON(t, srv.URL+"/observe", &ObserveRequest{RequestID: "x", Actual: 1}, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("observe on disabled monitor: %d", code)
	}
	resp, err := http.Get(srv.URL + "/quality")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quality on disabled monitor: %d", resp.StatusCode)
	}
}

// TestPendingEviction: the pending map stays bounded, evicting oldest ids.
func TestPendingEviction(t *testing.T) {
	s := New(Config{
		MaxBatch: 4, MaxLinger: time.Millisecond, QueueDepth: 64, Workers: 1,
		Quality: &quality.Config{}, PendingCap: 4,
	})
	defer s.Close()
	s.SetBundle(testBundle(1, 1))

	rng := rand.New(rand.NewSource(17))
	var ids []string
	for i := 0; i < 8; i++ {
		resp, code, err := s.Do(randomRequest(rng))
		if err != nil || code != http.StatusOK {
			t.Fatalf("request %d: %d %v", i, code, err)
		}
		ids = append(ids, resp.Trace.RequestID)
	}
	// The four oldest ids are evicted, the four newest observable.
	for i, id := range ids {
		_, ok := s.takePending(id)
		if want := i >= 4; ok != want {
			t.Fatalf("pending[%d] present=%v, want %v", i, ok, want)
		}
	}
}
