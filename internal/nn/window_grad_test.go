package nn

import (
	"math"
	"math/rand"
	"testing"

	"env2vec/internal/autodiff"
	"env2vec/internal/tensor"
)

// TestWindowGradientFlow is the regression test for the severed-window bug:
// ForwardWindow used to wrap each window column in a tape constant, which
// silently zeroed every gradient flowing into the window producer. With
// SliceColsNode the gradient path stays intact, so a window bound as a tape
// parameter must receive gradients that match central finite differences.
func TestWindowGradientFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gru := NewGRU("g", 1, 3, rng)
	for _, p := range []*Param{gru.Bz, gru.Br, gru.Bh} {
		p.Value.RandNormal(rng, 0.1)
	}
	window := tensor.New(4, 3)
	window.RandNormal(rng, 1)
	target := tensor.New(4, 3)
	target.RandNormal(rng, 1)

	variants := []struct {
		name    string
		forward func(tape *autodiff.Tape, w *autodiff.Node) *autodiff.Node
	}{
		{"ForwardWindow", func(tape *autodiff.Tape, w *autodiff.Node) *autodiff.Node {
			return gru.ForwardWindow(tape, w)
		}},
		{"ForwardWindowAll", func(tape *autodiff.Tape, w *autodiff.Node) *autodiff.Node {
			states := gru.ForwardWindowAll(tape, w)
			out := states[0]
			for _, s := range states[1:] {
				out = tape.Add(out, s)
			}
			return out
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			loss := func() float64 {
				tape := autodiff.NewTape()
				return tape.MSE(v.forward(tape, tape.Param(window)), target).Value.Data[0]
			}

			tape := autodiff.NewTape()
			w := tape.Param(window)
			tape.Backward(tape.MSE(v.forward(tape, w), target))
			if w.Grad == nil {
				t.Fatalf("window received no gradient")
			}
			grad := append([]float64(nil), w.Grad.Data...)

			nonzero := false
			const h = 1e-6
			for i := range window.Data {
				orig := window.Data[i]
				window.Data[i] = orig + h
				up := loss()
				window.Data[i] = orig - h
				down := loss()
				window.Data[i] = orig
				numeric := (up - down) / (2 * h)
				if numeric != 0 {
					nonzero = true
				}
				if math.Abs(grad[i]-numeric) > 1e-4*(1+math.Abs(numeric)) {
					t.Fatalf("window elem %d: analytic %g vs numeric %g", i, grad[i], numeric)
				}
			}
			if !nonzero {
				t.Fatalf("degenerate test: loss is flat in the window")
			}
		})
	}
}
