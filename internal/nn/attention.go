package nn

import (
	"math/rand"

	"env2vec/internal/autodiff"
	"env2vec/internal/tensor"
)

// Attention implements the additive-attention extension the paper proposes
// as future work (§6, citing Bahdanau et al.): instead of summarizing the
// RU-history window by the GRU's final hidden state, every step's hidden
// state h_t is scored
//
//	s_t = v · tanh(W·h_t + b)
//
// and the summary is the softmax-weighted mixture Σ softmax(s)_t · h_t,
// letting the model focus on the most relevant previous timesteps.
type Attention struct {
	W *Param // hidden×attn projection
	B *Param // 1×attn bias
	V *Param // attn×1 scoring vector
}

// NewAttention creates an attention module over hidden-dim states with an
// attn-dim scoring space.
func NewAttention(name string, hidden, attn int, rng *rand.Rand) *Attention {
	a := &Attention{
		W: NewParam(name+".W", hidden, attn),
		B: NewParam(name+".b", 1, attn),
		V: NewParam(name+".v", attn, 1),
	}
	a.W.Value.GlorotUniform(rng)
	a.V.Value.GlorotUniform(rng)
	return a
}

// Forward mixes the per-step hidden states (each batch×hidden) into a
// single batch×hidden summary.
func (a *Attention) Forward(t *autodiff.Tape, states []*autodiff.Node) *autodiff.Node {
	if len(states) == 0 {
		panic("nn: Attention.Forward requires at least one state")
	}
	w, b, v := a.W.Bind(t), a.B.Bind(t), a.V.Bind(t)
	// Unnormalized weights e_t = exp(s_t), accumulated for the softmax
	// denominator. Scores are O(1) at Glorot init, so the unstabilized
	// exponential is safe here.
	exps := make([]*autodiff.Node, len(states))
	var total *autodiff.Node
	for i, h := range states {
		score := t.MatMul(t.Tanh(t.AddRowBroadcast(t.MatMul(h, w), b)), v)
		exps[i] = t.Exp(score)
		if total == nil {
			total = exps[i]
		} else {
			total = t.Add(total, exps[i])
		}
	}
	inv := t.Reciprocal(total) // batch×1
	var out *autodiff.Node
	for i, h := range states {
		alpha := t.Mul(exps[i], inv)                               // batch×1
		weighted := t.Mul(h, broadcastCol(t, alpha, h.Value.Cols)) // batch×hidden
		if out == nil {
			out = weighted
		} else {
			out = t.Add(out, weighted)
		}
	}
	return out
}

// Weights returns the softmax attention weights per step for a window
// (inference-time introspection; no gradients).
func (a *Attention) Weights(states []*tensor.Matrix) []*tensor.Matrix {
	t := autodiff.NewTape()
	nodes := make([]*autodiff.Node, len(states))
	for i, s := range states {
		nodes[i] = t.Constant(s)
	}
	w, b, v := t.Constant(a.W.Value), t.Constant(a.B.Value), t.Constant(a.V.Value)
	exps := make([]*autodiff.Node, len(states))
	var total *autodiff.Node
	for i, h := range nodes {
		score := t.MatMul(t.Tanh(t.AddRowBroadcast(t.MatMul(h, w), b)), v)
		exps[i] = t.Exp(score)
		if total == nil {
			total = exps[i]
		} else {
			total = t.Add(total, exps[i])
		}
	}
	inv := t.Reciprocal(total)
	out := make([]*tensor.Matrix, len(states))
	for i := range states {
		out[i] = t.Mul(exps[i], inv).Value
	}
	return out
}

// Params implements Layer.
func (a *Attention) Params() []*Param { return []*Param{a.W, a.B, a.V} }

// broadcastCol replicates a batch×1 column node across cols columns so it
// can gate a batch×cols activation elementwise.
func broadcastCol(t *autodiff.Tape, col *autodiff.Node, cols int) *autodiff.Node {
	out := col
	for out.Value.Cols < cols {
		// Double by self-concatenation, then trim: O(log cols) graph nodes.
		need := cols - out.Value.Cols
		chunk := out
		if chunk.Value.Cols > need {
			chunk = t.SliceColsNode(chunk, 0, need)
		}
		out = t.ConcatCols(out, chunk)
	}
	return out
}

// ForwardWindowAll unrolls the GRU like ForwardWindow but returns every
// step's hidden state, for attention-based summaries.
func (g *GRU) ForwardWindowAll(t *autodiff.Tape, window *autodiff.Node) []*autodiff.Node {
	if g.In != 1 {
		panic("nn: ForwardWindowAll requires a GRU with scalar inputs")
	}
	n := window.Value.Cols
	if n == 0 {
		panic("nn: ForwardWindowAll requires at least one timestep")
	}
	batch := window.Value.Rows
	wz, uz, bz := g.Wz.Bind(t), g.Uz.Bind(t), g.Bz.Bind(t)
	wr, ur, br := g.Wr.Bind(t), g.Ur.Bind(t), g.Br.Bind(t)
	wh, uh, bh := g.Wh.Bind(t), g.Uh.Bind(t), g.Bh.Bind(t)
	h := t.Constant(tensor.New(batch, g.Hidden))
	out := make([]*autodiff.Node, 0, n)
	for j := 0; j < n; j++ {
		// As in ForwardWindow, slice through the tape so gradients reach a
		// non-constant window producer.
		x := t.SliceColsNode(window, j, j+1)
		z := t.Sigmoid(t.AddRowBroadcast(t.Add(t.MatMul(x, wz), t.MatMul(h, uz)), bz))
		r := t.Sigmoid(t.AddRowBroadcast(t.Add(t.MatMul(x, wr), t.MatMul(h, ur)), br))
		hc := g.CandidateAct.Apply(t, t.AddRowBroadcast(t.Add(t.MatMul(x, wh), t.MatMul(t.Mul(r, h), uh)), bh))
		h = t.Add(t.Mul(t.OneMinus(z), hc), t.Mul(z, h))
		out = append(out, h)
	}
	return out
}
