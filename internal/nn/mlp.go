package nn

import (
	"math/rand"

	"env2vec/internal/autodiff"
	"env2vec/internal/tensor"
)

// MLP is a one-hidden-layer feed-forward regressor with dropout on the
// hidden activations. It is both the FNN baseline from the paper (§4.1.3)
// and the contextual-feature tower reused inside RFNN and Env2Vec.
type MLP struct {
	Hidden  *Dense
	Out     *Dense
	Dropout float64
}

// NewMLP builds an MLP with in inputs, hidden units, and a linear scalar
// output head.
func NewMLP(name string, in, hidden int, act Activation, dropout float64, rng *rand.Rand) *MLP {
	return &MLP{
		Hidden:  NewDense(name+".hidden", in, hidden, act, rng),
		Out:     NewDense(name+".out", hidden, 1, Linear, rng),
		Dropout: dropout,
	}
}

// HiddenForward runs only the hidden layer (plus dropout when training),
// returning the batch×hidden representation v_fs.
func (m *MLP) HiddenForward(t *autodiff.Tape, x *autodiff.Node, train bool, rng *rand.Rand) *autodiff.Node {
	h := m.Hidden.Forward(t, x)
	if train && m.Dropout > 0 {
		mask := DropoutMask(rng, h.Value.Rows, h.Value.Cols, m.Dropout)
		h = t.Dropout(h, mask, 1-m.Dropout)
	}
	return h
}

// Forward runs the full network to a batch×1 prediction node.
func (m *MLP) Forward(t *autodiff.Tape, x *autodiff.Node, train bool, rng *rand.Rand) *autodiff.Node {
	return m.Out.Forward(t, m.HiddenForward(t, x, train, rng))
}

// Loss implements Model.
func (m *MLP) Loss(t *autodiff.Tape, b *Batch, train bool, rng *rand.Rand) *autodiff.Node {
	pred := m.Forward(t, t.Constant(b.X), train, rng)
	return t.MSE(pred, b.Y)
}

// Predict implements Model. It runs on an inference tape, so it is safe to
// call concurrently from multiple goroutines.
func (m *MLP) Predict(b *Batch) []float64 {
	t := autodiff.NewInferenceTape()
	pred := m.Forward(t, t.Constant(b.X), false, nil)
	out := make([]float64, pred.Value.Rows)
	copy(out, pred.Value.Data)
	return out
}

// Params implements Model.
func (m *MLP) Params() []*Param { return CollectParams(m.Hidden, m.Out) }

// PredictMatrix is a convenience that predicts for a plain feature matrix.
func (m *MLP) PredictMatrix(x *tensor.Matrix) []float64 {
	return m.Predict(&Batch{X: x, Y: tensor.New(x.Rows, 1)})
}
