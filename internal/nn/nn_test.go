package nn

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"env2vec/internal/autodiff"
	"env2vec/internal/tensor"
)

func TestDenseForwardMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense("d", 2, 3, Sigmoid, rng)
	d.W.Value = tensor.FromRows([][]float64{{1, 0, -1}, {0.5, 2, 1}})
	d.B.Value = tensor.FromRows([][]float64{{0.1, -0.2, 0.3}})
	x := tensor.FromRows([][]float64{{1, 2}})
	tape := autodiff.NewTape()
	out := d.Forward(tape, tape.Constant(x))
	sig := func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }
	want := []float64{sig(1*1 + 2*0.5 + 0.1), sig(2*2 - 0.2), sig(-1 + 2 + 0.3)}
	for i, w := range want {
		if math.Abs(out.Value.Data[i]-w) > 1e-12 {
			t.Fatalf("elem %d: got %v want %v", i, out.Value.Data[i], w)
		}
	}
}

// TestGRUForwardMatchesManual hand-computes a single GRU step with known
// weights and verifies the layer reproduces it.
func TestGRUForwardMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewGRU("g", 1, 2, rng)
	g.CandidateAct = Tanh
	set := func(p *Param, rows [][]float64) { p.Value = tensor.FromRows(rows) }
	set(g.Wz, [][]float64{{0.5, -0.5}})
	set(g.Uz, [][]float64{{0, 0}, {0, 0}})
	set(g.Bz, [][]float64{{0.1, 0.1}})
	set(g.Wr, [][]float64{{1, 1}})
	set(g.Ur, [][]float64{{0, 0}, {0, 0}})
	set(g.Br, [][]float64{{0, 0}})
	set(g.Wh, [][]float64{{2, -2}})
	set(g.Uh, [][]float64{{0, 0}, {0, 0}})
	set(g.Bh, [][]float64{{0, 0}})

	x := 0.3
	tape := autodiff.NewTape()
	out := g.Forward(tape, []*autodiff.Node{tape.Constant(tensor.FromRows([][]float64{{x}}))})

	sig := func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }
	// h0 = 0, so r has no effect and h1 = (1-z)*tanh(Wh*x) + z*0.
	z := []float64{sig(0.5*x + 0.1), sig(-0.5*x + 0.1)}
	hc := []float64{math.Tanh(2 * x), math.Tanh(-2 * x)}
	want := []float64{(1 - z[0]) * hc[0], (1 - z[1]) * hc[1]}
	for i, w := range want {
		if math.Abs(out.Value.Data[i]-w) > 1e-12 {
			t.Fatalf("hidden %d: got %v want %v", i, out.Value.Data[i], w)
		}
	}
}

func TestGRUForwardWindowEqualsSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGRU("g", 1, 4, rng)
	window := tensor.FromRows([][]float64{{0.1, 0.2, 0.3}, {0.4, 0.5, 0.6}})
	tape1 := autodiff.NewTape()
	viaWindow := g.ForwardWindow(tape1, tape1.Constant(window))
	tape2 := autodiff.NewTape()
	steps := []*autodiff.Node{
		tape2.Constant(window.SliceCols(0, 1)),
		tape2.Constant(window.SliceCols(1, 2)),
		tape2.Constant(window.SliceCols(2, 3)),
	}
	viaSteps := g.Forward(tape2, steps)
	if !tensor.Equal(viaWindow.Value, viaSteps.Value, 1e-12) {
		t.Fatalf("ForwardWindow and Forward disagree")
	}
}

func TestGRUEmptyStepsPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewGRU("g", 1, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	g.Forward(autodiff.NewTape(), nil)
}

func TestEmbeddingLookupAndUnknownClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewEmbedding("e", 3, 4, rng) // rows: unk + 3 vocab
	tape := autodiff.NewTape()
	out := e.Forward(tape, []int{1, 99, -5, UnknownIndex})
	if out.Value.Rows != 4 || out.Value.Cols != 4 {
		t.Fatalf("bad shape %dx%d", out.Value.Rows, out.Value.Cols)
	}
	unk := e.Table.Value.Row(UnknownIndex)
	for _, row := range []int{1, 2, 3} {
		for j := range unk {
			if out.Value.At(row, j) != unk[j] {
				t.Fatalf("row %d should be <unk> embedding", row)
			}
		}
	}
	for j := range unk {
		if out.Value.At(0, j) != e.Table.Value.At(1, j) {
			t.Fatalf("row 0 should be vocab id 1")
		}
	}
}

func TestAdamFitsLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// y = 2*x0 - 3*x1 + 1
	n := 200
	x := tensor.New(n, 2)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, 2*a-3*b+1)
	}
	m := NewMLP("m", 2, 8, Tanh, 0, rng)
	opt := NewAdam(0.01)
	batch := &Batch{X: x, Y: y}
	res := Train(m, opt, batch, nil, TrainConfig{Epochs: 300, BatchSize: 32, Seed: 1})
	mse := EvalMSE(m, batch)
	if mse > 0.01 {
		t.Fatalf("Adam failed to fit linear function: mse=%v after %d epochs", mse, res.Epochs)
	}
}

func TestSGDDecreasesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 100
	x := tensor.New(n, 3)
	x.RandNormal(rng, 1)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		y.Set(i, 0, x.At(i, 0)-x.At(i, 1))
	}
	m := NewMLP("m", 3, 4, ReLU, 0, rng)
	b := &Batch{X: x, Y: y}
	before := EvalMSE(m, b)
	Train(m, &SGD{LR: 0.05}, b, nil, TrainConfig{Epochs: 50, BatchSize: 20, Seed: 2})
	after := EvalMSE(m, b)
	if after >= before {
		t.Fatalf("SGD did not reduce loss: %v -> %v", before, after)
	}
}

func TestEarlyStoppingTriggersAndRestoresBest(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 60
	x := tensor.New(n, 2)
	x.RandNormal(rng, 1)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		y.Set(i, 0, x.At(i, 0))
	}
	train := &Batch{X: x.SliceRows(0, 40), Y: y.SliceRows(0, 40)}
	val := &Batch{X: x.SliceRows(40, 60), Y: y.SliceRows(40, 60)}
	m := NewMLP("m", 2, 4, Tanh, 0, rng)
	res := Train(m, NewAdam(0.05), train, val, TrainConfig{
		Epochs: 500, BatchSize: 16, Patience: 5, MinDelta: 1e-9, Seed: 3,
	})
	if res.Epochs >= 500 && !res.StoppedEarly {
		t.Logf("warning: never stopped early (epochs=%d)", res.Epochs)
	}
	got := EvalMSE(m, val)
	if math.Abs(got-res.FinalValLoss) > 1e-9 {
		t.Fatalf("best weights not restored: eval %v vs reported %v", got, res.FinalValLoss)
	}
	if !(res.BestValLoss <= res.FinalValLoss+1e-12) {
		t.Fatalf("best %v should be <= final %v", res.BestValLoss, res.FinalValLoss)
	}
}

func TestTrainDeterministicGivenSeed(t *testing.T) {
	build := func() float64 {
		rng := rand.New(rand.NewSource(9))
		n := 50
		x := tensor.New(n, 2)
		x.RandNormal(rng, 1)
		y := tensor.New(n, 1)
		for i := 0; i < n; i++ {
			y.Set(i, 0, x.At(i, 0)*x.At(i, 1))
		}
		m := NewMLP("m", 2, 6, Tanh, 0.2, rng)
		b := &Batch{X: x, Y: y}
		Train(m, NewAdam(0.01), b, nil, TrainConfig{Epochs: 20, BatchSize: 10, Seed: 4})
		return EvalMSE(m, b)
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("training not deterministic: %v vs %v", a, b)
	}
}

func TestDropoutMaskStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if DropoutMask(rng, 10, 10, 0) != nil {
		t.Fatalf("rate 0 should return nil mask")
	}
	m := DropoutMask(rng, 100, 100, 0.3)
	kept := 0
	for _, v := range m.Data {
		if v != 0 && v != 1 {
			t.Fatalf("mask must be binary, got %v", v)
		}
		if v == 1 {
			kept++
		}
	}
	frac := float64(kept) / 10000
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("keep fraction %v far from 0.7", frac)
	}
}

func TestDropoutMaskPanicsOnRateOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	DropoutMask(rand.New(rand.NewSource(1)), 2, 2, 1.0)
}

func TestBatchSubset(t *testing.T) {
	b := &Batch{
		X:      tensor.FromRows([][]float64{{1}, {2}, {3}}),
		Window: tensor.FromRows([][]float64{{10}, {20}, {30}}),
		EnvIDs: [][]int{{7, 8, 9}},
		Y:      tensor.FromRows([][]float64{{0.1}, {0.2}, {0.3}}),
	}
	s := b.Subset([]int{2, 0})
	if s.Len() != 2 || s.X.At(0, 0) != 3 || s.X.At(1, 0) != 1 {
		t.Fatalf("X subset wrong: %v", s.X)
	}
	if s.Window.At(0, 0) != 30 || s.EnvIDs[0][0] != 9 || s.EnvIDs[0][1] != 7 {
		t.Fatalf("Window/EnvIDs subset wrong")
	}
	if s.Y.At(1, 0) != 0.1 {
		t.Fatalf("Y subset wrong")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := NewMLP("m", 3, 4, ReLU, 0, rng)
	snap := TakeSnapshot(m.Params(), map[string]string{"kind": "mlp"})
	data, err := snap.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(bytesReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Meta["kind"] != "mlp" {
		t.Fatalf("meta lost")
	}
	m2 := NewMLP("m", 3, 4, ReLU, 0, rand.New(rand.NewSource(99)))
	if err := decoded.Restore(m2.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Params() {
		if !tensor.Equal(p.Value, m2.Params()[i].Value, 0) {
			t.Fatalf("param %s not restored", p.Name)
		}
	}
}

func TestSnapshotRestoreErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := NewMLP("m", 2, 3, ReLU, 0, rng)
	snap := TakeSnapshot(m.Params(), nil)
	other := NewMLP("other", 2, 3, ReLU, 0, rng)
	if err := snap.Restore(other.Params()); err == nil {
		t.Fatalf("expected missing-name error")
	}
	bad := NewMLP("m", 2, 5, ReLU, 0, rng) // wrong hidden width
	if err := snap.Restore(bad.Params()); err == nil {
		t.Fatalf("expected shape error")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewMLP("m", 2, 2, Tanh, 0, rng)
	path := t.TempDir() + "/model.gob"
	if err := TakeSnapshot(m.Params(), nil).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Restore(m.Params()); err != nil {
		t.Fatal(err)
	}
}

func TestClipScale(t *testing.T) {
	p := NewParam("p", 1, 2)
	tape := autodiff.NewTape()
	node := p.Bind(tape)
	node.Grad.Data[0] = 3
	node.Grad.Data[1] = 4 // norm 5
	if s := clipScale([]*Param{p}, 10); s != 1 {
		t.Fatalf("norm within clip should give scale 1, got %v", s)
	}
	if s := clipScale([]*Param{p}, 2.5); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("scale should be 0.5, got %v", s)
	}
	if s := clipScale([]*Param{p}, 0); s != 1 {
		t.Fatalf("disabled clipping should give 1")
	}
}

func TestActivationString(t *testing.T) {
	for a, want := range map[Activation]string{Linear: "linear", Sigmoid: "sigmoid", Tanh: "tanh", ReLU: "relu"} {
		if a.String() != want {
			t.Fatalf("String(%d) = %q", int(a), a.String())
		}
	}
}

// Property: a Snapshot round-trip through gob preserves every weight bitwise.
func TestSnapshotRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewParam("w", 1+rng.Intn(4), 1+rng.Intn(4))
		p.Value.RandNormal(rng, 2)
		snap := TakeSnapshot([]*Param{p}, nil)
		data, err := snap.Bytes()
		if err != nil {
			return false
		}
		dec, err := DecodeSnapshot(bytesReader(data))
		if err != nil {
			return false
		}
		q := NewParam("w", p.Value.Rows, p.Value.Cols)
		if err := dec.Restore([]*Param{q}); err != nil {
			return false
		}
		return tensor.Equal(p.Value, q.Value, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

func TestLRDecayApplied(t *testing.T) {
	opt := NewAdam(0.1)
	rng := rand.New(rand.NewSource(20))
	n := 40
	x := tensor.New(n, 2)
	x.RandNormal(rng, 1)
	y := tensor.New(n, 1)
	m := NewMLP("m", 2, 4, Tanh, 0, rng)
	Train(m, opt, &Batch{X: x, Y: y}, nil, TrainConfig{Epochs: 10, BatchSize: 20, Seed: 1, LRDecay: 0.5})
	want := 0.1 * math.Pow(0.5, 10)
	if math.Abs(opt.LR-want) > 1e-12 {
		t.Fatalf("LR after decay %v, want %v", opt.LR, want)
	}
	sgd := &SGD{LR: 1}
	sgd.ScaleLR(0.25)
	if sgd.LR != 0.25 {
		t.Fatalf("SGD ScaleLR wrong")
	}
}
