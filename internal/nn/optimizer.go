package nn

import (
	"math"

	"env2vec/internal/tensor"
)

// Optimizer updates parameters from the gradients of the latest backward
// pass.
type Optimizer interface {
	// Step applies one update to every parameter with a bound gradient.
	Step(params []*Param)
}

// LRScalable is implemented by optimizers whose learning rate can be
// decayed by the training loop (TrainConfig.LRDecay).
type LRScalable interface {
	ScaleLR(factor float64)
}

// SGD is plain stochastic gradient descent with optional gradient clipping.
type SGD struct {
	LR       float64
	ClipNorm float64 // 0 disables clipping
}

// ScaleLR implements LRScalable.
func (s *SGD) ScaleLR(factor float64) { s.LR *= factor }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	scale := clipScale(params, s.ClipNorm)
	for _, p := range params {
		g := p.Grad()
		if g == nil {
			continue
		}
		for i := range p.Value.Data {
			p.Value.Data[i] -= s.LR * scale * g.Data[i]
		}
	}
}

// Adam implements the Adam update rule (Kingma & Ba, 2014), the optimizer
// the paper trains Env2Vec with.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	ClipNorm              float64 // 0 disables clipping

	t int
	m map[*Param]*tensor.Matrix
	v map[*Param]*tensor.Matrix
}

// NewAdam returns an Adam optimizer with the conventional defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Matrix),
		v: make(map[*Param]*tensor.Matrix),
	}
}

// ScaleLR implements LRScalable.
func (a *Adam) ScaleLR(factor float64) { a.LR *= factor }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	scale := clipScale(params, a.ClipNorm)
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		g := p.Grad()
		if g == nil {
			continue
		}
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Rows, p.Value.Cols)
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = tensor.New(p.Value.Rows, p.Value.Cols)
			a.v[p] = v
		}
		for i := range p.Value.Data {
			gi := g.Data[i] * scale
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*gi
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*gi*gi
			mhat := m.Data[i] / bc1
			vhat := v.Data[i] / bc2
			p.Value.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}

// clipScale returns the multiplier implementing global-norm gradient
// clipping; 1 when clipping is disabled or the norm is within bounds.
func clipScale(params []*Param, clip float64) float64 {
	if clip <= 0 {
		return 1
	}
	total := 0.0
	for _, p := range params {
		g := p.Grad()
		if g == nil {
			continue
		}
		for _, x := range g.Data {
			total += x * x
		}
	}
	norm := math.Sqrt(total)
	if norm <= clip || norm == 0 {
		return 1
	}
	return clip / norm
}
