// Package nn builds neural-network layers and training utilities on top of
// the autodiff engine. It provides the components Env2Vec is assembled from
// (Dense/FNN layers, GRUs, embedding lookup tables), the Adam optimizer, a
// mini-batch trainer with dropout and early stopping, and gob-based model
// snapshots for the model-serving substrate.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"env2vec/internal/autodiff"
	"env2vec/internal/tensor"
)

// Param is a named trainable matrix. Binding it to a tape makes it a leaf
// node whose gradient is populated by Tape.Backward; the most recent binding
// is retained so optimizers can read gradients after the backward pass.
type Param struct {
	Name  string
	Value *tensor.Matrix
	node  *autodiff.Node
}

// NewParam allocates a named parameter with the given shape.
func NewParam(name string, rows, cols int) *Param {
	return &Param{Name: name, Value: tensor.New(rows, cols)}
}

// Bind registers the parameter on the tape for the current forward pass and
// returns the graph node to use in layer math. On an inference tape the
// parameter enters as a read-only constant and the binding is NOT retained:
// nothing is written into the Param, so concurrent forward passes over a
// shared model are safe.
func (p *Param) Bind(t *autodiff.Tape) *autodiff.Node {
	n := t.Param(p.Value)
	if t.Inference() {
		return n
	}
	p.node = n
	return n
}

// Value32 exports a float32 snapshot of the parameter's current value —
// the load-time weight conversion of the float32 serving path. The copy is
// independent: later optimizer steps or restores do not touch it, which is
// what lets a frozen float32 predictor run concurrently with training.
func (p *Param) Value32() *tensor.Matrix32 { return p.Value.To32() }

// Grad returns the gradient from the most recent bound backward pass, or
// nil if the parameter was never bound.
func (p *Param) Grad() *tensor.Matrix {
	if p.node == nil {
		return nil
	}
	return p.node.Grad
}

// Activation identifies an elementwise nonlinearity.
type Activation int

// Supported activations.
const (
	Linear Activation = iota
	Sigmoid
	Tanh
	ReLU
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Linear:
		return "linear"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case ReLU:
		return "relu"
	}
	return fmt.Sprintf("Activation(%d)", int(a))
}

// Apply adds the activation to the graph.
func (a Activation) Apply(t *autodiff.Tape, x *autodiff.Node) *autodiff.Node {
	switch a {
	case Linear:
		return x
	case Sigmoid:
		return t.Sigmoid(x)
	case Tanh:
		return t.Tanh(x)
	case ReLU:
		return t.ReLU(x)
	}
	panic(fmt.Sprintf("nn: unknown activation %d", int(a)))
}

// Layer is anything owning trainable parameters.
type Layer interface {
	// Params returns the layer's trainable parameters.
	Params() []*Param
}

// Dense is a fully connected layer: act(x·W + b).
type Dense struct {
	W, B *Param
	Act  Activation
}

// NewDense creates a Dense layer with Glorot-initialized weights.
func NewDense(name string, in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		W:   NewParam(name+".W", in, out),
		B:   NewParam(name+".b", 1, out),
		Act: act,
	}
	d.W.Value.GlorotUniform(rng)
	return d
}

// Forward applies the layer to a batch×in input node.
func (d *Dense) Forward(t *autodiff.Tape, x *autodiff.Node) *autodiff.Node {
	h := t.AddRowBroadcast(t.MatMul(x, d.W.Bind(t)), d.B.Bind(t))
	return d.Act.Apply(t, h)
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// GRU is a gated recurrent unit over a sequence of scalar (or low-dim)
// inputs; it follows the formulation in the Env2Vec appendix: update gate z,
// reset gate r, candidate state h' with a configurable activation (ReLU in
// the paper), and h_t = (1−z)⊙h' + z⊙h_{t−1}.
type GRU struct {
	In, Hidden                         int
	Wz, Uz, Bz, Wr, Ur, Br, Wh, Uh, Bh *Param
	CandidateAct                       Activation
}

// NewGRU creates a GRU layer mapping sequences of in-dim vectors to a
// hidden-dim summary vector.
func NewGRU(name string, in, hidden int, rng *rand.Rand) *GRU {
	g := &GRU{
		In: in, Hidden: hidden,
		Wz: NewParam(name+".Wz", in, hidden), Uz: NewParam(name+".Uz", hidden, hidden), Bz: NewParam(name+".bz", 1, hidden),
		Wr: NewParam(name+".Wr", in, hidden), Ur: NewParam(name+".Ur", hidden, hidden), Br: NewParam(name+".br", 1, hidden),
		Wh: NewParam(name+".Wh", in, hidden), Uh: NewParam(name+".Uh", hidden, hidden), Bh: NewParam(name+".bh", 1, hidden),
		CandidateAct: ReLU,
	}
	for _, p := range []*Param{g.Wz, g.Uz, g.Wr, g.Ur, g.Wh, g.Uh} {
		p.Value.GlorotUniform(rng)
	}
	return g
}

// Forward unrolls the GRU over steps, where each step is a batch×in node,
// and returns the final hidden state (batch×hidden).
func (g *GRU) Forward(t *autodiff.Tape, steps []*autodiff.Node) *autodiff.Node {
	if len(steps) == 0 {
		panic("nn: GRU.Forward requires at least one timestep")
	}
	batch := steps[0].Value.Rows
	wz, uz, bz := g.Wz.Bind(t), g.Uz.Bind(t), g.Bz.Bind(t)
	wr, ur, br := g.Wr.Bind(t), g.Ur.Bind(t), g.Br.Bind(t)
	wh, uh, bh := g.Wh.Bind(t), g.Uh.Bind(t), g.Bh.Bind(t)
	h := t.Constant(tensor.New(batch, g.Hidden))
	for _, x := range steps {
		z := t.Sigmoid(t.AddRowBroadcast(t.Add(t.MatMul(x, wz), t.MatMul(h, uz)), bz))
		r := t.Sigmoid(t.AddRowBroadcast(t.Add(t.MatMul(x, wr), t.MatMul(h, ur)), br))
		hc := g.CandidateAct.Apply(t, t.AddRowBroadcast(t.Add(t.MatMul(x, wh), t.MatMul(t.Mul(r, h), uh)), bh))
		h = t.Add(t.Mul(t.OneMinus(z), hc), t.Mul(z, h))
	}
	return h
}

// ForwardWindow is a convenience for scalar sequences: window is batch×n
// where column j is the value at relative timestep j; each column becomes
// one GRU input step.
func (g *GRU) ForwardWindow(t *autodiff.Tape, window *autodiff.Node) *autodiff.Node {
	if g.In != 1 {
		panic("nn: ForwardWindow requires a GRU with scalar inputs")
	}
	n := window.Value.Cols
	steps := make([]*autodiff.Node, n)
	for j := 0; j < n; j++ {
		// SliceColsNode keeps the gradient path to the window intact: a
		// non-constant upstream producer (e.g. a learned input transform)
		// receives its gradients, while a constant window adds no backward
		// cost and an inference tape records nothing at all.
		steps[j] = t.SliceColsNode(window, j, j+1)
	}
	return g.Forward(t, steps)
}

// Params implements Layer.
func (g *GRU) Params() []*Param {
	return []*Param{g.Wz, g.Uz, g.Bz, g.Wr, g.Ur, g.Br, g.Wh, g.Uh, g.Bh}
}

// Embedding is a lookup table mapping categorical ids to dense vectors. Row
// 0 is reserved for the <unk> value so previously unseen metadata labels
// still map to a learned fallback vector, as in the paper.
type Embedding struct {
	Table *Param
	Dim   int
}

// UnknownIndex is the reserved row for out-of-vocabulary values.
const UnknownIndex = 0

// NewEmbedding creates an embedding table with vocab+1 rows (row 0 = <unk>).
// Rows initialize at ±1/√dim: in the Hadamard prediction head the
// embedding multiplies the dense features, so a too-small initialization
// (the usual ±0.05 word-embedding convention) would shrink both the output
// scale and every gradient flowing through the product, starving the rest
// of the network early in training.
func NewEmbedding(name string, vocab, dim int, rng *rand.Rand) *Embedding {
	e := &Embedding{Table: NewParam(name+".E", vocab+1, dim), Dim: dim}
	e.Table.Value.RandUniform(rng, 1/math.Sqrt(float64(dim)))
	return e
}

// Forward looks up the embedding rows for ids (batch-sized).
func (e *Embedding) Forward(t *autodiff.Tape, ids []int) *autodiff.Node {
	clamped := make([]int, len(ids))
	for i, id := range ids {
		if id < 0 || id >= e.Table.Value.Rows {
			id = UnknownIndex
		}
		clamped[i] = id
	}
	return t.GatherRows(e.Table.Bind(t), clamped)
}

// Params implements Layer.
func (e *Embedding) Params() []*Param { return []*Param{e.Table} }

// CollectParams flattens the parameters of several layers.
func CollectParams(layers ...Layer) []*Param {
	var ps []*Param
	for _, l := range layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// DropoutMask returns a binary batch×cols mask with keep probability keep,
// or nil (no-op) when rate is zero.
func DropoutMask(rng *rand.Rand, rows, cols int, rate float64) *tensor.Matrix {
	if rate <= 0 {
		return nil
	}
	if rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v >= 1", rate))
	}
	m := tensor.New(rows, cols)
	for i := range m.Data {
		if rng.Float64() >= rate {
			m.Data[i] = 1
		}
	}
	return m
}
