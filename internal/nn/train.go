package nn

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"env2vec/internal/autodiff"
	"env2vec/internal/tensor"
)

// Batch groups the three Env2Vec input families for a set of examples:
// contextual features (CFs), the RU-history window, and the environment
// metadata ids. Window and EnvIDs are nil for models that do not use them
// (e.g. the FNN baseline).
type Batch struct {
	X      *tensor.Matrix // batch×f contextual features
	Window *tensor.Matrix // batch×n RU history, oldest first; may be nil
	EnvIDs [][]int        // EnvIDs[k][i] = id of env feature k for example i; may be nil
	Y      *tensor.Matrix // batch×1 targets
}

// Len returns the number of examples in the batch.
func (b *Batch) Len() int { return b.X.Rows }

// Subset extracts the examples at idx into a new batch.
func (b *Batch) Subset(idx []int) *Batch {
	sub := &Batch{X: tensor.GatherRows(b.X, idx), Y: tensor.GatherRows(b.Y, idx)}
	if b.Window != nil {
		sub.Window = tensor.GatherRows(b.Window, idx)
	}
	if b.EnvIDs != nil {
		sub.EnvIDs = make([][]int, len(b.EnvIDs))
		for k, ids := range b.EnvIDs {
			sel := make([]int, len(idx))
			for i, r := range idx {
				sel[i] = ids[r]
			}
			sub.EnvIDs[k] = sel
		}
	}
	return sub
}

// Model is a trainable regressor: it can build its loss graph on a tape and
// expose its parameters to an optimizer.
type Model interface {
	// Loss constructs the scalar training loss for the batch. When train is
	// true the model may apply dropout using rng.
	Loss(t *autodiff.Tape, b *Batch, train bool, rng *rand.Rand) *autodiff.Node
	// Predict returns point predictions for every example in the batch.
	Predict(b *Batch) []float64
	// Params returns all trainable parameters.
	Params() []*Param
}

// TrainConfig controls the mini-batch training loop.
type TrainConfig struct {
	Epochs    int     // maximum epochs
	BatchSize int     // examples per step
	Patience  int     // early-stopping patience in epochs (0 disables)
	MinDelta  float64 // minimum val-loss improvement to reset patience
	Seed      int64   // shuffling / dropout seed
	Verbose   bool    // log per-epoch losses to stdout
	// LRDecay multiplies the learning rate after every epoch when the
	// optimizer implements LRScalable (1 or 0 disables). Exponential decay
	// helps the multiplicative Env2Vec head settle after its fast start.
	LRDecay float64
	// OnEpoch, when non-nil, observes each completed epoch: the 1-based
	// epoch number, mean training loss, validation loss (NaN without a
	// validation set), and the epoch's wall-clock duration including
	// validation. The training pipeline uses it to drive loss-curve gauges
	// and epoch-timing histograms.
	OnEpoch func(epoch int, trainLoss, valLoss float64, d time.Duration)
}

// DefaultTrainConfig mirrors the paper's training regime: Adam, early
// stopping on a validation set, dropout handled by the model itself.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 200, BatchSize: 32, Patience: 10, MinDelta: 1e-4, Seed: 1}
}

// TrainResult reports what the loop did.
type TrainResult struct {
	Epochs        int     // epochs actually run
	BestValLoss   float64 // best validation MSE observed
	FinalValLoss  float64 // validation MSE at stop time
	StoppedEarly  bool
	TrainLossLast float64
}

// Train fits the model on train, early-stopping on val (val may be nil to
// disable validation; then the loop runs all epochs). The best-validation
// weights are restored before returning.
func Train(m Model, opt Optimizer, train, val *Batch, cfg TrainConfig) TrainResult {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := train.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	best := math.Inf(1)
	bad := 0
	var bestSnapshot [][]float64
	res := TrainResult{BestValLoss: math.Inf(1), FinalValLoss: math.Inf(1)}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := time.Now()
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss, steps := 0.0, 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			mb := train.Subset(order[start:end])
			tape := autodiff.NewTape()
			loss := m.Loss(tape, mb, true, rng)
			tape.Backward(loss)
			opt.Step(m.Params())
			epochLoss += loss.Value.Data[0]
			steps++
		}
		res.Epochs = epoch + 1
		res.TrainLossLast = epochLoss / float64(steps)
		if cfg.LRDecay > 0 && cfg.LRDecay != 1 {
			if sc, ok := opt.(LRScalable); ok {
				sc.ScaleLR(cfg.LRDecay)
			}
		}

		if val == nil || val.Len() == 0 {
			if cfg.OnEpoch != nil {
				cfg.OnEpoch(epoch+1, res.TrainLossLast, math.NaN(), time.Since(epochStart))
			}
			continue
		}
		vl := EvalMSE(m, val)
		res.FinalValLoss = vl
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch+1, res.TrainLossLast, vl, time.Since(epochStart))
		}
		if cfg.Verbose {
			fmt.Printf("epoch %3d train=%.5f val=%.5f\n", epoch, res.TrainLossLast, vl)
		}
		if vl < best-cfg.MinDelta {
			best = vl
			res.BestValLoss = vl
			bad = 0
			bestSnapshot = snapshot(m.Params())
		} else {
			bad++
			if cfg.Patience > 0 && bad >= cfg.Patience {
				res.StoppedEarly = true
				break
			}
		}
	}
	if bestSnapshot != nil {
		restore(m.Params(), bestSnapshot)
		res.FinalValLoss = best
	}
	if math.IsInf(res.BestValLoss, 1) && !math.IsInf(res.FinalValLoss, 1) {
		res.BestValLoss = res.FinalValLoss
	}
	return res
}

// EvalMSE computes the mean squared error of the model on the batch.
func EvalMSE(m Model, b *Batch) float64 {
	preds := m.Predict(b)
	s := 0.0
	for i, p := range preds {
		d := p - b.Y.Data[i]
		s += d * d
	}
	return s / float64(len(preds))
}

// EvalMAE computes the mean absolute error of the model on the batch.
func EvalMAE(m Model, b *Batch) float64 {
	preds := m.Predict(b)
	s := 0.0
	for i, p := range preds {
		s += math.Abs(p - b.Y.Data[i])
	}
	return s / float64(len(preds))
}

func snapshot(params []*Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		cp := make([]float64, len(p.Value.Data))
		copy(cp, p.Value.Data)
		out[i] = cp
	}
	return out
}

func restore(params []*Param, snap [][]float64) {
	for i, p := range params {
		copy(p.Value.Data, snap[i])
	}
}
