package nn

import (
	"math"
	"math/rand"
	"testing"

	"env2vec/internal/autodiff"
	"env2vec/internal/tensor"
)

func TestAttentionWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAttention("a", 4, 4, rng)
	states := []*tensor.Matrix{}
	for i := 0; i < 3; i++ {
		m := tensor.New(5, 4)
		m.RandNormal(rng, 1)
		states = append(states, m)
	}
	ws := a.Weights(states)
	if len(ws) != 3 {
		t.Fatalf("expected one weight matrix per step")
	}
	for row := 0; row < 5; row++ {
		sum := 0.0
		for _, w := range ws {
			v := w.At(row, 0)
			if v < 0 || v > 1 {
				t.Fatalf("weight out of [0,1]: %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d weights sum to %v", row, sum)
		}
	}
}

func TestAttentionForwardIsConvexMixture(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAttention("a", 3, 3, rng)
	tape := autodiff.NewTape()
	s1 := tensor.FromRows([][]float64{{1, 1, 1}})
	s2 := tensor.FromRows([][]float64{{3, 3, 3}})
	out := a.Forward(tape, []*autodiff.Node{tape.Constant(s1), tape.Constant(s2)})
	for _, v := range out.Value.Data {
		if v < 1-1e-9 || v > 3+1e-9 {
			t.Fatalf("mixture must stay within the state hull: %v", v)
		}
	}
}

func TestAttentionSingleStateIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAttention("a", 3, 2, rng)
	tape := autodiff.NewTape()
	s := tensor.FromRows([][]float64{{0.5, -1, 2}, {1, 2, 3}})
	out := a.Forward(tape, []*autodiff.Node{tape.Constant(s)})
	if !tensor.Equal(out.Value, s, 1e-12) {
		t.Fatalf("single-state attention must return the state")
	}
}

func TestAttentionForwardEmptyPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAttention("a", 3, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	a.Forward(autodiff.NewTape(), nil)
}

func TestAttentionTrainsToFocusOnInformativeStep(t *testing.T) {
	// Target depends only on the FIRST window value; the GRU's final state
	// mostly reflects the LAST. Attention should outperform plain GRU.
	rng := rand.New(rand.NewSource(5))
	n := 300
	window := tensor.New(n, 4)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			window.Set(i, j, rng.NormFloat64())
		}
		y.Set(i, 0, window.At(i, 0))
	}

	train := func(useAttn bool) float64 {
		gr := rand.New(rand.NewSource(7))
		g := NewGRU("g", 1, 8, gr)
		var attn *Attention
		if useAttn {
			attn = NewAttention("attn", 8, 8, gr)
		}
		out := NewDense("out", 8, 1, Linear, gr)
		params := append(g.Params(), out.Params()...)
		if attn != nil {
			params = append(params, attn.Params()...)
		}
		forward := func(tp *autodiff.Tape) *autodiff.Node {
			var h *autodiff.Node
			if attn != nil {
				h = attn.Forward(tp, g.ForwardWindowAll(tp, tp.Constant(window)))
			} else {
				h = g.ForwardWindow(tp, tp.Constant(window))
			}
			return out.Forward(tp, h)
		}
		opt := NewAdam(0.02)
		for epoch := 0; epoch < 120; epoch++ {
			tp := autodiff.NewTape()
			loss := tp.MSE(forward(tp), y)
			tp.Backward(loss)
			opt.Step(params)
		}
		tp := autodiff.NewTape()
		return tp.MSE(forward(tp), y).Value.Data[0]
	}

	plain := train(false)
	attn := train(true)
	if attn >= plain {
		t.Fatalf("attention should beat final-state GRU on first-step signal: %v vs %v", attn, plain)
	}
}

func TestGRUForwardWindowAllConsistentWithFinal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := NewGRU("g", 1, 5, rng)
	window := tensor.New(3, 4)
	window.RandNormal(rng, 1)
	t1 := autodiff.NewTape()
	final := g.ForwardWindow(t1, t1.Constant(window))
	t2 := autodiff.NewTape()
	all := g.ForwardWindowAll(t2, t2.Constant(window))
	if len(all) != 4 {
		t.Fatalf("expected one state per step")
	}
	if !tensor.Equal(all[len(all)-1].Value, final.Value, 1e-12) {
		t.Fatalf("last state must match ForwardWindow")
	}
}

func TestGRUForwardWindowAllPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGRU("g", 2, 3, rng) // non-scalar input
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("expected panic for non-scalar GRU")
			}
		}()
		tp := autodiff.NewTape()
		g.ForwardWindowAll(tp, tp.Constant(tensor.New(1, 3)))
	}()
	gs := NewGRU("g", 1, 3, rng)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("expected panic for empty window")
			}
		}()
		tp := autodiff.NewTape()
		gs.ForwardWindowAll(tp, tp.Constant(tensor.New(1, 0)))
	}()
}

func TestBroadcastColWidths(t *testing.T) {
	tape := autodiff.NewTape()
	col := tape.Constant(tensor.FromRows([][]float64{{2}, {3}}))
	for _, width := range []int{1, 2, 3, 5, 8} {
		out := broadcastCol(tape, col, width)
		if out.Value.Cols != width && width != 1 {
			// broadcastCol may overshoot only when width==1 (no-op).
			t.Fatalf("width %d: got %d cols", width, out.Value.Cols)
		}
		for i := 0; i < out.Value.Rows; i++ {
			for j := 0; j < out.Value.Cols; j++ {
				if out.Value.At(i, j) != col.Value.At(i, 0) {
					t.Fatalf("broadcast value wrong at %d,%d", i, j)
				}
			}
		}
	}
}
