package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// Snapshot is a serializable set of named weight matrices plus free-form
// metadata; it is the unit stored and served by the model registry (the
// paper ships "essentially a weight matrix" over HTTP).
type Snapshot struct {
	Meta    map[string]string
	Weights []WeightEntry
}

// WeightEntry is one named matrix in a snapshot.
type WeightEntry struct {
	Name       string
	Rows, Cols int
	Data       []float64
}

// TakeSnapshot copies the current values of params into a Snapshot.
func TakeSnapshot(params []*Param, meta map[string]string) *Snapshot {
	s := &Snapshot{Meta: meta}
	for _, p := range params {
		data := make([]float64, len(p.Value.Data))
		copy(data, p.Value.Data)
		s.Weights = append(s.Weights, WeightEntry{
			Name: p.Name, Rows: p.Value.Rows, Cols: p.Value.Cols, Data: data,
		})
	}
	return s
}

// Restore copies snapshot weights back into params, matching by name and
// verifying shapes. Every parameter must be present in the snapshot.
func (s *Snapshot) Restore(params []*Param) error {
	byName := make(map[string]*WeightEntry, len(s.Weights))
	for i := range s.Weights {
		byName[s.Weights[i].Name] = &s.Weights[i]
	}
	for _, p := range params {
		w, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: snapshot missing parameter %q", p.Name)
		}
		if w.Rows != p.Value.Rows || w.Cols != p.Value.Cols {
			return fmt.Errorf("nn: snapshot parameter %q has shape %dx%d, want %dx%d",
				p.Name, w.Rows, w.Cols, p.Value.Rows, p.Value.Cols)
		}
		copy(p.Value.Data, w.Data)
	}
	return nil
}

// Encode writes the snapshot in gob format.
func (s *Snapshot) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s)
}

// DecodeSnapshot reads a gob-encoded snapshot.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: decode snapshot: %w", err)
	}
	return &s, nil
}

// Bytes serializes the snapshot to a byte slice.
func (s *Snapshot) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// SaveFile writes the snapshot to path.
func (s *Snapshot) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: save snapshot: %w", err)
	}
	defer f.Close()
	if err := s.Encode(f); err != nil {
		return fmt.Errorf("nn: save snapshot: %w", err)
	}
	return f.Close()
}

// LoadSnapshotFile reads a snapshot from path.
func LoadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load snapshot: %w", err)
	}
	defer f.Close()
	return DecodeSnapshot(f)
}
