package telecom

import (
	"math"
	"strings"
	"testing"

	"env2vec/internal/stats"
)

func TestGenerateSmallShapes(t *testing.T) {
	cfg := SmallConfig()
	c := Generate(cfg)
	if len(c.ChainOrder) != cfg.Chains {
		t.Fatalf("chains: %d want %d", len(c.ChainOrder), cfg.Chains)
	}
	if len(c.Dataset.Series) != cfg.Chains*cfg.BuildsPerChain {
		t.Fatalf("series: %d", len(c.Dataset.Series))
	}
	for _, id := range c.ChainOrder {
		chain := c.ChainSeries[id]
		if len(chain) != cfg.BuildsPerChain {
			t.Fatalf("chain %s has %d builds", id, len(chain))
		}
		for b, s := range chain {
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			if s.BuildIndex != b {
				t.Fatalf("build order wrong")
			}
			if s.Len() != cfg.StepsPerBuild {
				t.Fatalf("series length %d", s.Len())
			}
			if s.CF.Cols != NumFeatures {
				t.Fatalf("feature count %d", s.CF.Cols)
			}
		}
		if c.Current[id] != chain[len(chain)-1] {
			t.Fatalf("Current must be the newest build")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SmallConfig())
	b := Generate(SmallConfig())
	for i, s := range a.Dataset.Series {
		s2 := b.Dataset.Series[i]
		if s.Env != s2.Env {
			t.Fatalf("series %d env mismatch", i)
		}
		for j := range s.RU {
			if s.RU[j] != s2.RU[j] {
				t.Fatalf("series %d RU mismatch at %d", i, j)
			}
		}
	}
}

func TestCPUBounds(t *testing.T) {
	c := Generate(SmallConfig())
	for _, s := range c.Dataset.Series {
		for _, v := range s.RU {
			if v < 0 || v > 100 {
				t.Fatalf("CPU out of [0,100]: %v", v)
			}
		}
	}
}

func TestBuildVersionsIncreaseWithinChain(t *testing.T) {
	c := Generate(SmallConfig())
	for _, id := range c.ChainOrder {
		chain := c.ChainSeries[id]
		family := chain[0].Env.BuildType()
		for i, s := range chain {
			if s.Env.BuildType() != family {
				t.Fatalf("chain %s changes build family", id)
			}
			if i > 0 && !(s.Env.Build > chain[i-1].Env.Build) {
				t.Fatalf("chain %s build versions not increasing: %s then %s",
					id, chain[i-1].Env.Build, s.Env.Build)
			}
		}
	}
}

func TestFaultInjection(t *testing.T) {
	cfg := SmallConfig()
	c := Generate(cfg)
	if len(c.FaultTargets) != cfg.FaultExecutions {
		t.Fatalf("fault targets: %d want %d", len(c.FaultTargets), cfg.FaultExecutions)
	}
	totalLabelled := 0
	for _, exec := range c.FaultTargets {
		if exec.Series.BuildIndex != cfg.BuildsPerChain-1 {
			t.Fatalf("faults must hit newest builds")
		}
		hasSilent := false
		for _, f := range exec.Faults {
			if f.Kind == FaultSilent {
				hasSilent = true
				if f.Magnitude != 0 {
					t.Fatalf("silent fault must have zero magnitude")
				}
			}
			if f.Start < 0 || f.Start+f.Duration > exec.Series.Len() {
				t.Fatalf("fault interval out of range: %+v", f)
			}
		}
		if !hasSilent {
			t.Fatalf("every faulty execution carries one silent problem")
		}
		for _, a := range exec.Series.Anomalous {
			if a {
				totalLabelled++
			}
		}
	}
	if totalLabelled == 0 {
		t.Fatalf("no ground-truth anomalous timesteps were labelled")
	}
	// Non-target series must be unlabelled.
	targets := map[*Execution]bool{}
	for _, e := range c.FaultTargets {
		targets[e] = true
	}
	targetSeries := map[string]bool{}
	for _, e := range c.FaultTargets {
		targetSeries[e.Series.ChainID] = true
	}
	for _, s := range c.Dataset.Series {
		if targetSeries[s.ChainID] && s.BuildIndex == cfg.BuildsPerChain-1 {
			continue
		}
		for _, a := range s.Anomalous {
			if a {
				t.Fatalf("non-target series %s labelled anomalous", s.Env)
			}
		}
	}
}

func TestSilentFaultMovesOnlyCF(t *testing.T) {
	// Regenerate a corpus and verify silent fault windows show elevated
	// jitter relative to a no-fault generation of the same seed... Here we
	// simply verify the labelled impact threshold: all labelled steps must
	// coincide with CPU-affecting fault kinds.
	c := Generate(SmallConfig())
	for _, exec := range c.FaultTargets {
		for _, f := range exec.Faults {
			if f.Kind != FaultSilent {
				continue
			}
			for i := f.Start; i < f.Start+f.Duration; i++ {
				// The silent window may overlap labelled episodes from
				// other faults, so only check jitter moved upward.
				if exec.Series.CF.At(i, 11) <= 0 {
					t.Fatalf("silent fault should raise jitter at %d", i)
				}
			}
		}
	}
}

func TestSharedEntitiesCorrelateResponses(t *testing.T) {
	// Two chains sharing testbed+SUT+buildtype should have more similar
	// CPU levels than two chains differing in everything. We verify the
	// weaker invariant that the per-entity effect cache is shared.
	c := Generate(SmallConfig())
	if len(c.envEffects["sut"]) == 0 || len(c.envEffects["testbed"]) == 0 {
		t.Fatalf("effect caches not populated")
	}
	for kind, byName := range c.envEffects {
		for name, v := range byName {
			if len(v) != 6 {
				t.Fatalf("%s/%s effect dim %d", kind, name, len(v))
			}
		}
	}
}

func TestChainOrderSortedAndComplete(t *testing.T) {
	c := Generate(SmallConfig())
	for i := 1; i < len(c.ChainOrder); i++ {
		if c.ChainOrder[i-1] >= c.ChainOrder[i] {
			t.Fatalf("ChainOrder not sorted/unique")
		}
	}
	for _, id := range c.ChainOrder {
		if _, ok := c.ChainSeries[id]; !ok {
			t.Fatalf("missing chain %s", id)
		}
	}
}

func TestDefaultConfigScale(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Chains != 125 {
		t.Fatalf("default must match the paper's 125 chains")
	}
	if cfg.FaultExecutions != 11 {
		t.Fatalf("default must match the paper's 11 test executions")
	}
	if cfg.StepSeconds != 900 {
		t.Fatalf("samples must be 15-minute")
	}
}

func TestCPUVariesAcrossChains(t *testing.T) {
	c := Generate(SmallConfig())
	var means []float64
	for _, id := range c.ChainOrder {
		s := c.ChainSeries[id][0]
		means = append(means, stats.Mean(s.RU))
	}
	if stats.StdDev(means) < 1 {
		t.Fatalf("chains should have diverse CPU levels, std=%v", stats.StdDev(means))
	}
}

func TestFaultKindString(t *testing.T) {
	for k, want := range map[FaultKind]string{
		FaultCPUSpike: "cpu-spike", FaultLeak: "leak",
		FaultRegression: "regression", FaultSilent: "silent",
	} {
		if k.String() != want {
			t.Fatalf("String(%d)=%q", int(k), k.String())
		}
	}
	if !strings.Contains(FaultKind(9).String(), "9") {
		t.Fatalf("unknown kind should render number")
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Generate(Config{Chains: 0})
}

func TestTimesAreUniform15Min(t *testing.T) {
	c := Generate(SmallConfig())
	s := c.Dataset.Series[0]
	for i := 1; i < len(s.Times); i++ {
		if s.Times[i]-s.Times[i-1] != 900 {
			t.Fatalf("non-uniform timestamps")
		}
	}
}

func TestMaskedMetricsAreZeroConsistently(t *testing.T) {
	c := Generate(SmallConfig())
	// For each testbed, a masked column must be zero across all its series.
	byTestbed := map[string][]int{}
	seriesByTestbed := map[string][]int{}
	for si, s := range c.Dataset.Series {
		seriesByTestbed[s.Env.Testbed] = append(seriesByTestbed[s.Env.Testbed], si)
	}
	_ = byTestbed
	for tb, idxs := range seriesByTestbed {
		zeroCols := map[int]bool{}
		first := c.Dataset.Series[idxs[0]]
		for j := 0; j < NumFeatures; j++ {
			allZero := true
			for i := 0; i < first.Len(); i++ {
				if first.CF.At(i, j) != 0 {
					allZero = false
					break
				}
			}
			zeroCols[j] = allZero
		}
		for _, si := range idxs[1:] {
			s := c.Dataset.Series[si]
			for j := 0; j < NumFeatures; j++ {
				if !zeroCols[j] {
					continue
				}
				for i := 0; i < s.Len(); i++ {
					v := s.CF.At(i, j)
					// Silent faults can perturb jitter (col 11) even on a
					// masked testbed; tolerate that column.
					if v != 0 && j != 11 {
						t.Fatalf("testbed %s: masked column %d nonzero in another series", tb, j)
					}
				}
			}
		}
	}
	// demand_mbps (col 2) is never masked.
	for _, s := range c.Dataset.Series {
		sum := 0.0
		for i := 0; i < s.Len(); i++ {
			sum += math.Abs(s.CF.At(i, 2))
		}
		if sum == 0 {
			t.Fatalf("demand column should never be masked")
		}
	}
}
