// Package telecom simulates the proprietary carrier-grade VNF testing
// corpus of §4.2: many build chains — (testbed, SUT, test case) combinations
// tested across a sequence of software builds — each producing a contextual
// time series of workload/performance metrics and network-card CPU usage at
// 15-minute intervals.
//
// The generator reproduces the statistical structure the paper's
// experiments rely on, rather than any particular confidential trace:
//
//   - Environment-dependent response: the mapping from contextual features
//     to CPU varies per chain, but chains sharing EM components (testbed,
//     SUT, test case, build family) have correlated response coefficients —
//     this is what makes environment embeddings learnable (Figure 6) and
//     per-chain weight heatmaps diverse (Figure 1).
//   - Partial metric availability: each testbed is missing a subset of
//     metrics (the white cells of Figure 1).
//   - Fault injection: the newest build of selected executions carries
//     labelled problem episodes (CPU spikes, leaks, regressions) plus
//     "silent" problems that perturb only non-CPU metrics, mirroring the
//     paper's note that most simulated problems have no metric impact.
package telecom

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/tensor"
	"env2vec/internal/workload"
)

// FeatureNamesList is the contextual-feature schema of the corpus,
// mirroring the dataframe of Table 2 (workload metrics first, then
// performance metrics).
var FeatureNamesList = []string{
	"client_ue", "burst_period", "demand_mbps", "pkt_cnt_ingress", "pkt_cnt_egress",
	"success_ratio_mod1", "success_ratio_mod2", "resp_code_2xx", "resp_code_50x",
	"active_sessions", "setup_rate", "jitter_ms", "retrans_cnt", "queue_depth",
}

// NumFeatures is the contextual-feature dimensionality.
var NumFeatures = len(FeatureNamesList)

// Config sizes the corpus. The defaults are a laptop-scale version of the
// paper's dataset (125 chains, ~400k points at full scale); scale
// StepsPerBuild and BuildsPerChain up to match the paper exactly.
type Config struct {
	Seed            int64
	Testbeds        int // distinct testbeds (paper: ~100)
	SUTs            int // distinct systems under test
	Testcases       int // distinct test cases
	Chains          int // build chains (paper: 125)
	BuildsPerChain  int // builds per chain, oldest → newest
	StepsPerBuild   int // 15-minute samples per test execution
	FaultExecutions int // newest-build executions receiving labelled faults (paper: 11)
	StepSeconds     int64
}

// DefaultConfig returns the evaluation-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Testbeds:        20,
		SUTs:            6,
		Testcases:       10,
		Chains:          125,
		BuildsPerChain:  4,
		StepsPerBuild:   80,
		FaultExecutions: 11,
		StepSeconds:     15 * 60,
	}
}

// SmallConfig returns a fast configuration for unit tests.
func SmallConfig() Config {
	return Config{
		Seed:            1,
		Testbeds:        5,
		SUTs:            3,
		Testcases:       4,
		Chains:          12,
		BuildsPerChain:  3,
		StepsPerBuild:   40,
		FaultExecutions: 3,
		StepSeconds:     15 * 60,
	}
}

// buildFamilies are the build-type letters whose embeddings should cluster
// in Figure 6 (S=stable, B=beta, D=debug, T=test, R=release-candidate).
var buildFamilies = []string{"S", "B", "D", "T", "R"}

// FaultKind enumerates injected problem scenarios.
type FaultKind int

// Injected fault scenarios.
const (
	FaultCPUSpike   FaultKind = iota // sudden sustained CPU elevation
	FaultLeak                        // slow upward drift (resource leak)
	FaultRegression                  // level shift across the whole run
	FaultSilent                      // perturbs only non-CPU metrics (no label)
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCPUSpike:
		return "cpu-spike"
	case FaultLeak:
		return "leak"
	case FaultRegression:
		return "regression"
	case FaultSilent:
		return "silent"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one injected problem episode.
type Fault struct {
	Kind      FaultKind
	Start     int     // timestep index within the execution
	Duration  int     // timesteps
	Magnitude float64 // CPU percentage points at peak (0 for silent faults)
}

// Execution pairs the newest build's series with its injected faults.
type Execution struct {
	Series *dataset.Series
	Faults []Fault
}

// Corpus is the generated dataset plus evaluation bookkeeping.
type Corpus struct {
	Config       Config
	Dataset      *dataset.Dataset
	ChainOrder   []string                        // deterministic chain iteration order
	ChainSeries  map[string][]*dataset.Series    // build order within each chain
	Current      map[string]*dataset.Series      // newest build per chain
	FaultTargets []*Execution                    // executions with injected faults
	envEffects   map[string]map[string][]float64 // entity kind → name → effect vector
}

// chainSpec is the sampled identity of one build chain.
type chainSpec struct {
	testbed, sut, testcase string
	family                 string
	startVersion           int
}

// Generate builds the corpus deterministically from cfg.Seed.
func Generate(cfg Config) *Corpus {
	if cfg.Chains <= 0 || cfg.BuildsPerChain <= 0 || cfg.StepsPerBuild <= 1 {
		panic(fmt.Sprintf("telecom: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{
		Config:      cfg,
		Dataset:     &dataset.Dataset{FeatureNames: append([]string(nil), FeatureNamesList...)},
		ChainSeries: make(map[string][]*dataset.Series),
		Current:     make(map[string]*dataset.Series),
		envEffects:  make(map[string]map[string][]float64),
	}

	// Entity effect vectors: chains sharing an entity share its effect.
	effect := func(kind, name string, dim int, scale float64) []float64 {
		byName, ok := c.envEffects[kind]
		if !ok {
			byName = make(map[string][]float64)
			c.envEffects[kind] = byName
		}
		if v, ok := byName[name]; ok {
			return v
		}
		// Derive from a name-seeded RNG so the effect is stable however
		// chains are ordered.
		h := int64(0)
		for _, b := range []byte(kind + "/" + name) {
			h = h*131 + int64(b)
		}
		erng := rand.New(rand.NewSource(cfg.Seed ^ h))
		v := make([]float64, dim)
		for i := range v {
			v[i] = erng.NormFloat64() * scale
		}
		byName[name] = v
		return v
	}

	// Per-testbed metric availability mask (Figure 1's white cells).
	maskFor := func(testbed string) []bool {
		m := make([]bool, NumFeatures)
		h := int64(0)
		for _, b := range []byte(testbed) {
			h = h*131 + int64(b)
		}
		mrng := rand.New(rand.NewSource(cfg.Seed ^ (h * 7)))
		for i := range m {
			m[i] = mrng.Float64() > 0.15 // ~15% of metrics unavailable
		}
		// The demand metric is always available: it anchors the workload.
		m[2] = true
		return m
	}

	// Sample distinct chains.
	specs := make([]chainSpec, 0, cfg.Chains)
	seen := make(map[string]bool)
	for len(specs) < cfg.Chains {
		spec := chainSpec{
			testbed:      fmt.Sprintf("tb%02d", rng.Intn(cfg.Testbeds)),
			sut:          fmt.Sprintf("SUT_%c", 'A'+rng.Intn(cfg.SUTs)),
			testcase:     testcaseName(rng.Intn(cfg.Testcases)),
			family:       buildFamilies[rng.Intn(len(buildFamilies))],
			startVersion: 1 + rng.Intn(8),
		}
		key := spec.testbed + "|" + spec.sut + "|" + spec.testcase
		if seen[key] {
			continue
		}
		seen[key] = true
		specs = append(specs, spec)
	}

	baseTime := int64(1_500_000_000)
	for ci, spec := range specs {
		chainID := spec.testbed + "|" + spec.sut + "|" + spec.testcase
		c.ChainOrder = append(c.ChainOrder, chainID)
		mask := maskFor(spec.testbed)
		for b := 0; b < cfg.BuildsPerChain; b++ {
			env := envmeta.Environment{
				Testbed:  spec.testbed,
				SUT:      spec.sut,
				Testcase: spec.testcase,
				Build:    fmt.Sprintf("%s%02d", spec.family, spec.startVersion+b),
			}
			srng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*977 + int64(b)*13))
			series := c.generateSeries(env, chainID, b, mask, effect, baseTime, srng)
			c.Dataset.Series = append(c.Dataset.Series, series)
			c.ChainSeries[chainID] = append(c.ChainSeries[chainID], series)
			c.Current[chainID] = series
			baseTime += int64(cfg.StepsPerBuild) * cfg.StepSeconds
		}
	}
	sort.Strings(c.ChainOrder)

	c.injectFaults(rng)
	return c
}

func testcaseName(i int) string {
	kinds := []string{"endurance", "regression", "load", "volume", "surge", "soak",
		"failover", "upgrade", "slicing", "elasticity", "stress", "longevity"}
	return kinds[i%len(kinds)]
}

// generateSeries produces one test execution: CF matrix + CPU series whose
// response coefficients blend the shared entity effects.
func (c *Corpus) generateSeries(env envmeta.Environment, chainID string, buildIdx int,
	mask []bool, effect func(kind, name string, dim int, scale float64) []float64,
	baseTime int64, rng *rand.Rand) *dataset.Series {

	cfg := c.Config
	n := cfg.StepsPerBuild
	s := &dataset.Series{
		Env:        env,
		ChainID:    chainID,
		BuildIndex: buildIdx,
		Times:      make([]int64, n),
		CF:         tensor.New(n, NumFeatures),
		RU:         make([]float64, n),
		Anomalous:  make([]bool, n),
	}

	// Response coefficients: base + entity effects. dim = 6 response terms.
	const respDim = 6
	// Nonlinear terms (interaction, saturation knee, burst signalling)
	// carry substantial weight so per-chain linear models mispredict in
	// heavy-load regimes — the false-alarm source Table 5 exposes.
	base := []float64{14, 7, 9, 8, 6, 4} // term scales in CPU percentage points
	tb := effect("testbed", env.Testbed, respDim, 0.25)
	sut := effect("sut", env.SUT, respDim, 0.35)
	tc := effect("testcase", env.Testcase, respDim, 0.25)
	bt := effect("buildtype", env.BuildType(), respDim, 0.70)
	bv := effect("buildvers", env.Build, respDim, 0.10) // version-level drift
	coef := make([]float64, respDim)
	for i := range coef {
		coef[i] = base[i] * (1 + tb[i] + sut[i] + tc[i] + bt[i] + bv[i])
	}
	// Debug builds burn extra CPU; stable builds are lean.
	baseline := 20.0
	switch env.BuildType() {
	case "D":
		baseline += 10
	case "S":
		baseline -= 3
	}

	// Traffic model depends on the test case.
	model := workload.ModelDaily
	switch env.Testcase {
	case "surge", "stress":
		model = workload.ModelSurge
	case "load", "volume":
		model = workload.ModelSelfSimilar
	case "soak", "longevity":
		model = workload.ModelConstant
	}
	stepsPerDay := int(86400 / cfg.StepSeconds)
	load := model.Generate(rng, n, stepsPerDay)
	// Legitimate load excursions: short windows of unusually high demand.
	// They are benign (the CPU rise is workload-driven, not a defect), but
	// they sit in the saturating region of the response where per-chain
	// linear models extrapolate badly and context-free detectors see only
	// an unexplained CPU shift — the false-alarm source behind the A_T
	// gaps of Table 5. Newer builds see more of them, mirroring testing
	// campaigns that push load limits on release candidates.
	nExc := 1 + buildIdx
	for e := 0; e < nExc; e++ {
		dur := 4 + rng.Intn(n/8)
		at := rng.Intn(n - dur)
		factor := 1.5 + rng.Float64()*0.9
		for i := at; i < at+dur; i++ {
			load[i] *= factor
		}
	}
	ar := &workload.AR1{Phi: 0.55, Std: 0.6}

	for i := 0; i < n; i++ {
		s.Times[i] = baseTime + int64(i)*cfg.StepSeconds
		l := load[i]
		sessions := math.Max(0, l*(0.9+0.2*rng.Float64()))
		burst := 0.5 + 0.5*math.Sin(float64(i)/11+float64(buildIdx))
		success := clamp01(0.995 - 0.02*math.Max(0, l-1.4) + rng.NormFloat64()*0.002)
		jitter := math.Max(0.1, 2+3*math.Max(0, l-1.2)+rng.NormFloat64()*0.3)

		row := s.CF.Row(i)
		row[0] = math.Round(1000 * sessions * (1 + rng.NormFloat64()*0.02)) // client_ue
		row[1] = burst                                                      // burst_period
		row[2] = 900 * l * (1 + rng.NormFloat64()*0.02)                     // demand_mbps
		row[3] = 52000 * l * (1 + rng.NormFloat64()*0.03)                   // pkt ingress
		row[4] = 50000 * l * success * (1 + rng.NormFloat64()*0.03)         // pkt egress
		row[5] = success
		row[6] = clamp01(success - 0.001 + rng.NormFloat64()*0.002)
		row[7] = 8000 * sessions * success * (1 + rng.NormFloat64()*0.05) // 2xx
		row[8] = math.Max(0, 8000*sessions*(1-success)*(1+rng.NormFloat64()*0.2))
		row[9] = 400 * sessions * (1 + rng.NormFloat64()*0.03)
		row[10] = 30 * sessions * burst * (1 + rng.NormFloat64()*0.08)
		row[11] = jitter
		row[12] = math.Max(0, 200*l*(1-success)*50*(1+rng.NormFloat64()*0.3))
		row[13] = math.Max(0, 40*math.Max(0, l-0.8)*(1+rng.NormFloat64()*0.1))

		// Response terms over the latent workload.
		terms := []float64{
			l,                         // linear load
			sessions,                  // session handling
			l * sessions,              // interaction
			sigmoid(4 * (l - 1.3)),    // saturation knee
			burst * l,                 // bursty signalling
			math.Max(0, jitter-3) / 3, // congestion follow-on
		}
		cpu := baseline
		for t, term := range terms {
			cpu += coef[t] * term
		}
		cpu += ar.Next(rng)
		s.RU[i] = clampCPU(cpu)

		// Apply the availability mask after the response so hidden metrics
		// still influence CPU (they are real, just not collected).
		for j := range row {
			if !mask[j] {
				row[j] = 0
			}
		}
	}
	return s
}

// injectFaults picks FaultExecutions newest-build executions and injects
// labelled problem episodes, plus silent perturbations.
func (c *Corpus) injectFaults(rng *rand.Rand) {
	chains := append([]string(nil), c.ChainOrder...)
	rng.Shuffle(len(chains), func(i, j int) { chains[i], chains[j] = chains[j], chains[i] })
	nTargets := c.Config.FaultExecutions
	if nTargets > len(chains) {
		nTargets = len(chains)
	}
	for _, chainID := range chains[:nTargets] {
		series := c.Current[chainID]
		exec := &Execution{Series: series}
		nEpisodes := 2 + rng.Intn(3) // 2–4 labelled episodes per faulty execution
		for e := 0; e < nEpisodes; e++ {
			kind := []FaultKind{FaultCPUSpike, FaultLeak, FaultRegression}[rng.Intn(3)]
			f := c.injectOne(series, kind, rng)
			exec.Faults = append(exec.Faults, f)
		}
		// One silent problem that moves only non-CPU metrics.
		exec.Faults = append(exec.Faults, c.injectOne(series, FaultSilent, rng))
		c.FaultTargets = append(c.FaultTargets, exec)
	}
}

// labelThreshold is the CPU impact (percentage points) above which an
// injected deviation counts as a ground-truth performance problem.
const labelThreshold = 3.0

func (c *Corpus) injectOne(s *dataset.Series, kind FaultKind, rng *rand.Rand) Fault {
	n := s.Len()
	dur := 3 + rng.Intn(n/4)
	start := rng.Intn(n - dur)
	f := Fault{Kind: kind, Start: start, Duration: dur}
	switch kind {
	case FaultCPUSpike:
		f.Magnitude = 5 + rng.Float64()*9
		for i := start; i < start+dur; i++ {
			s.RU[i] = clampCPU(s.RU[i] + f.Magnitude)
			s.Anomalous[i] = f.Magnitude >= labelThreshold
		}
	case FaultLeak:
		f.Magnitude = 7 + rng.Float64()*9
		for i := start; i < start+dur; i++ {
			impact := f.Magnitude * float64(i-start+1) / float64(dur)
			s.RU[i] = clampCPU(s.RU[i] + impact)
			if impact >= labelThreshold {
				s.Anomalous[i] = true
			}
		}
	case FaultRegression:
		f.Magnitude = 4 + rng.Float64()*6
		dur = n - start
		f.Duration = dur
		for i := start; i < n; i++ {
			s.RU[i] = clampCPU(s.RU[i] + f.Magnitude)
			s.Anomalous[i] = f.Magnitude >= labelThreshold
		}
	case FaultSilent:
		// Latency surge visible only in jitter/success metrics.
		for i := start; i < start+dur; i++ {
			row := s.CF.Row(i)
			row[11] += 5 // jitter_ms
			row[5] = clamp01(row[5] - 0.01)
		}
	}
	return f
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clampCPU(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 100 {
		return 100
	}
	return x
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
