// Package baselines implements the comparison methods of §4.1.3: Ridge and
// Ridge_ts regression, a Random Forest regressor, kernel support-vector
// regression, the FNN baseline (via internal/nn.MLP), and RFNN — the
// Env2Vec variant without environment embeddings that also powers the
// RFNN_all ablation.
package baselines

import (
	"fmt"
	"math"

	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// Predictor is a fitted point-prediction model over feature batches.
type Predictor interface {
	Predict(b *nn.Batch) []float64
}

// Ridge is L2-regularized linear regression fitted in closed form via the
// normal equations and a Cholesky solve. The intercept is unpenalized
// (handled by centering). UseWindow=true gives the paper's Ridge_ts
// variant, which appends the n previous RU values to the features.
type Ridge struct {
	Alpha     float64
	UseWindow bool

	weights   []float64 // per (augmented) feature
	intercept float64
}

// NewRidge returns an unfitted Ridge model.
func NewRidge(alpha float64, useWindow bool) *Ridge {
	return &Ridge{Alpha: alpha, UseWindow: useWindow}
}

// designMatrix builds the (optionally window-augmented) feature matrix.
func (r *Ridge) designMatrix(b *nn.Batch) *tensor.Matrix {
	if !r.UseWindow {
		return b.X
	}
	if b.Window == nil {
		panic("baselines: Ridge_ts requires a window in the batch")
	}
	return tensor.ConcatCols(b.X, b.Window)
}

// Fit solves the penalized normal equations on the batch.
func (r *Ridge) Fit(b *nn.Batch) error {
	x := r.designMatrix(b)
	n, d := x.Rows, x.Cols
	if n == 0 {
		return fmt.Errorf("baselines: ridge fit on empty batch")
	}
	// Center features and target so the intercept is unpenalized.
	xm := make([]float64, d)
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			xm[j] += v
		}
	}
	for j := range xm {
		xm[j] /= float64(n)
	}
	ym := 0.0
	for i := 0; i < n; i++ {
		ym += b.Y.Data[i]
	}
	ym /= float64(n)

	// A = XcᵀXc + αI, rhs = Xcᵀyc.
	a := tensor.New(d, d)
	rhs := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		yc := b.Y.Data[i] - ym
		for p := 0; p < d; p++ {
			xp := row[p] - xm[p]
			if xp == 0 {
				continue
			}
			arow := a.Row(p)
			for q := p; q < d; q++ {
				arow[q] += xp * (row[q] - xm[q])
			}
			rhs[p] += xp * yc
		}
	}
	for p := 0; p < d; p++ {
		for q := 0; q < p; q++ {
			a.Set(p, q, a.At(q, p))
		}
		a.Set(p, p, a.At(p, p)+r.Alpha)
	}
	w, err := solveSPD(a, rhs)
	if err != nil {
		return fmt.Errorf("baselines: ridge solve: %w", err)
	}
	r.weights = w
	r.intercept = ym
	for j, wj := range w {
		r.intercept -= wj * xm[j]
	}
	return nil
}

// Predict implements Predictor.
func (r *Ridge) Predict(b *nn.Batch) []float64 {
	if r.weights == nil {
		panic("baselines: Ridge.Predict before Fit")
	}
	x := r.designMatrix(b)
	if x.Cols != len(r.weights) {
		panic(fmt.Sprintf("baselines: ridge fitted on %d features, got %d", len(r.weights), x.Cols))
	}
	out := make([]float64, x.Rows)
	for i := range out {
		s := r.intercept
		for j, v := range x.Row(i) {
			s += v * r.weights[j]
		}
		out[i] = s
	}
	return out
}

// Coefficients returns the fitted weights (augmented features for
// Ridge_ts) and intercept; Figure 1's heatmap is built from these.
func (r *Ridge) Coefficients() (weights []float64, intercept float64) {
	return append([]float64(nil), r.weights...), r.intercept
}

// FitRidgeCV fits Ridge over the alpha grid of §4.1.3 ({0.001 … 1000}) and
// keeps the model with the lowest validation MSE.
func FitRidgeCV(train, val *nn.Batch, useWindow bool) (*Ridge, error) {
	alphas := []float64{0.001, 0.01, 0.1, 1, 10, 100, 1000}
	var best *Ridge
	bestMSE := math.Inf(1)
	for _, a := range alphas {
		m := NewRidge(a, useWindow)
		if err := m.Fit(train); err != nil {
			return nil, err
		}
		mse := batchMSE(m, val)
		if mse < bestMSE {
			bestMSE = mse
			best = m
		}
	}
	return best, nil
}

func batchMSE(p Predictor, b *nn.Batch) float64 {
	if b == nil || b.Len() == 0 {
		return 0
	}
	pred := p.Predict(b)
	s := 0.0
	for i, v := range pred {
		d := v - b.Y.Data[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// solveSPD solves A·x = b for symmetric positive-definite A using Cholesky
// decomposition with a tiny diagonal bump retry for near-singular systems.
func solveSPD(a *tensor.Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	for attempt := 0; attempt < 3; attempt++ {
		l, ok := cholesky(a)
		if !ok {
			for i := 0; i < n; i++ {
				a.Set(i, i, a.At(i, i)+1e-8*(1+a.At(i, i)))
			}
			continue
		}
		// Forward solve L·y = b.
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			s := b[i]
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * y[k]
			}
			y[i] = s / l.At(i, i)
		}
		// Back solve Lᵀ·x = y.
		x := make([]float64, n)
		for i := n - 1; i >= 0; i-- {
			s := y[i]
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * x[k]
			}
			x[i] = s / l.At(i, i)
		}
		return x, nil
	}
	return nil, fmt.Errorf("matrix not positive definite after regularization")
}

// cholesky returns the lower-triangular factor of a, or ok=false when the
// matrix is not positive definite.
func cholesky(a *tensor.Matrix) (*tensor.Matrix, bool) {
	n := a.Rows
	l := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, false
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, true
}
