package baselines

import (
	"math/rand"

	"env2vec/internal/autodiff"
	"env2vec/internal/nn"
)

// RFNNConfig sizes the RFNN network.
type RFNNConfig struct {
	In        int     // contextual-feature dimensionality
	Hidden    int     // FNN hidden units (v_fs size)
	GRUHidden int     // GRU state size (v_ts size)
	DenseDim  int     // combined dense layer width (v_d size)
	Dropout   float64 // dropout on the FNN hidden layer
	Seed      int64
}

// RFNN is the recurrent+feed-forward variant of Env2Vec without environment
// embeddings (§4.1.3): a GRU summarizes the RU-history window into v_ts, an
// FNN summarizes contextual features into v_fs, and a dense layer over the
// concatenation regresses the next RU value. Trained per environment it is
// the paper's RFNN baseline; trained once on pooled data it is RFNN_all.
type RFNN struct {
	cfg   RFNNConfig
	fnn   *nn.MLP
	gru   *nn.GRU
	dense *nn.Dense
	out   *nn.Dense
}

// NewRFNN builds an RFNN with Glorot initialization from cfg.Seed.
func NewRFNN(cfg RFNNConfig) *RFNN {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &RFNN{
		cfg: cfg,
		fnn: nn.NewMLP("rfnn.fnn", cfg.In, cfg.Hidden, nn.Sigmoid, cfg.Dropout, rng),
		gru: nn.NewGRU("rfnn.gru", 1, cfg.GRUHidden, rng),
	}
	m.dense = nn.NewDense("rfnn.dense", cfg.Hidden+cfg.GRUHidden, cfg.DenseDim, nn.ReLU, rng)
	m.out = nn.NewDense("rfnn.out", cfg.DenseDim, 1, nn.Linear, rng)
	return m
}

// forward builds the prediction subgraph for the batch.
func (m *RFNN) forward(t *autodiff.Tape, b *nn.Batch, train bool, rng *rand.Rand) *autodiff.Node {
	if b.Window == nil {
		panic("baselines: RFNN requires an RU-history window")
	}
	vfs := m.fnn.HiddenForward(t, t.Constant(b.X), train, rng)
	vts := m.gru.ForwardWindow(t, t.Constant(b.Window))
	vs := t.ConcatCols(vts, vfs)
	vd := m.dense.Forward(t, vs)
	return m.out.Forward(t, vd)
}

// Loss implements nn.Model.
func (m *RFNN) Loss(t *autodiff.Tape, b *nn.Batch, train bool, rng *rand.Rand) *autodiff.Node {
	return t.MSE(m.forward(t, b, train, rng), b.Y)
}

// Predict implements nn.Model and Predictor; it runs on an inference tape
// and is safe for concurrent use.
func (m *RFNN) Predict(b *nn.Batch) []float64 {
	t := autodiff.NewInferenceTape()
	pred := m.forward(t, b, false, nil)
	out := make([]float64, pred.Value.Rows)
	copy(out, pred.Value.Data)
	return out
}

// Params implements nn.Model.
func (m *RFNN) Params() []*nn.Param {
	return nn.CollectParams(m.fnn, m.gru, m.dense, m.out)
}
