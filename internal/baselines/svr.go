package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// Kernel identifies an SVR kernel function (the paper tunes over
// {linear, poly, rbf}).
type Kernel int

// Supported kernels.
const (
	KernelLinear Kernel = iota
	KernelPoly
	KernelRBF
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case KernelLinear:
		return "linear"
	case KernelPoly:
		return "poly"
	case KernelRBF:
		return "rbf"
	}
	return fmt.Sprintf("Kernel(%d)", int(k))
}

// SVR is ε-insensitive support vector regression in representer form:
// f(x) = Σ βᵢ·K(xᵢ,x) + b, trained with kernelized stochastic subgradient
// descent (a Pegasos-style solver). This replaces scikit-learn's SMO solver
// with identical model class and hyper-parameters: regularization Alpha,
// kernel choice, and tube width Epsilon (§4.1.3).
type SVR struct {
	Alpha   float64 // L2 regularization strength
	Epsilon float64 // insensitive-tube half-width
	Kern    Kernel
	Gamma   float64 // kernel coefficient; 0 → 1/d
	Epochs  int
	LR      float64
	Seed    int64

	support *tensor.Matrix // training inputs
	beta    []float64
	bias    float64
}

// NewSVR returns an unfitted SVR with solver defaults.
func NewSVR(alpha, epsilon float64, kern Kernel) *SVR {
	return &SVR{Alpha: alpha, Epsilon: epsilon, Kern: kern, Epochs: 60, LR: 0.05, Seed: 1}
}

func (s *SVR) kernel(a, b []float64) float64 {
	switch s.Kern {
	case KernelLinear:
		return dot(a, b)
	case KernelPoly:
		return math.Pow(s.Gamma*dot(a, b)+1, 3)
	case KernelRBF:
		d := 0.0
		for i := range a {
			x := a[i] - b[i]
			d += x * x
		}
		return math.Exp(-s.Gamma * d)
	}
	panic(fmt.Sprintf("baselines: unknown kernel %d", int(s.Kern)))
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Fit trains on the batch. Targets are internally centered so the bias
// starts near the solution.
func (s *SVR) Fit(b *nn.Batch) error {
	n := b.Len()
	if n == 0 {
		return fmt.Errorf("baselines: svr fit on empty batch")
	}
	if s.Gamma == 0 {
		s.Gamma = 1 / float64(b.X.Cols)
	}
	s.support = b.X.Clone()
	s.beta = make([]float64, n)
	s.bias = 0
	for i := 0; i < n; i++ {
		s.bias += b.Y.Data[i]
	}
	s.bias /= float64(n)

	// Precompute the kernel matrix (n ≤ ~1k in our workloads).
	k := tensor.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := s.kernel(b.X.Row(i), b.X.Row(j))
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	// f cache: f[i] = Σ β_j K(i,j) + bias, maintained incrementally.
	f := make([]float64, n)
	for i := range f {
		f[i] = s.bias
	}
	rng := rand.New(rand.NewSource(s.Seed))
	order := rng.Perm(n)
	decay := 1 - s.LR*s.Alpha/float64(n)
	if decay < 0.5 {
		decay = 0.5
	}
	for epoch := 0; epoch < s.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, i := range order {
			resid := b.Y.Data[i] - f[i]
			if math.Abs(resid) <= s.Epsilon {
				continue
			}
			step := s.LR
			if resid < 0 {
				step = -step
			}
			s.beta[i] += step
			s.bias += step * 0.1
			krow := k.Row(i)
			for j := 0; j < n; j++ {
				f[j] += step*krow[j] + step*0.1
			}
		}
		// L2 shrinkage on the dual coefficients.
		for i := range s.beta {
			s.beta[i] *= decay
		}
		for j := 0; j < n; j++ {
			f[j] = s.bias
		}
		for i, bi := range s.beta {
			if bi == 0 {
				continue
			}
			krow := k.Row(i)
			for j := 0; j < n; j++ {
				f[j] += bi * krow[j]
			}
		}
	}
	return nil
}

// Predict implements Predictor.
func (s *SVR) Predict(b *nn.Batch) []float64 {
	if s.support == nil {
		panic("baselines: SVR.Predict before Fit")
	}
	out := make([]float64, b.Len())
	for i := range out {
		row := b.X.Row(i)
		v := s.bias
		for j := 0; j < s.support.Rows; j++ {
			if s.beta[j] == 0 {
				continue
			}
			v += s.beta[j] * s.kernel(s.support.Row(j), row)
		}
		out[i] = v
	}
	return out
}

// FitSVRCV searches a reduced version of the paper's SVR grid
// (α ∈ {0.001…1000}, kernel ∈ {linear, poly, rbf}, ε ∈ {0.1…1}) on the
// validation set.
func FitSVRCV(train, val *nn.Batch) (*SVR, error) {
	alphas := []float64{0.001, 0.1, 10, 1000}
	kernels := []Kernel{KernelLinear, KernelPoly, KernelRBF}
	epsilons := []float64{0.1, 0.5, 1}
	var best *SVR
	bestMSE := math.Inf(1)
	for _, a := range alphas {
		for _, k := range kernels {
			for _, e := range epsilons {
				m := NewSVR(a, e, k)
				if err := m.Fit(train); err != nil {
					return nil, err
				}
				mse := batchMSE(m, val)
				if mse < bestMSE {
					bestMSE = mse
					best = m
				}
			}
		}
	}
	return best, nil
}
