package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// RandomForest is a bagged ensemble of CART regression trees, the RFReg
// baseline of §4.1.3. Hyper-parameters follow the paper's grid: MaxDepth
// {3..10} and NEstimators {10,50,100,1000}.
type RandomForest struct {
	NEstimators int
	MaxDepth    int
	MinLeaf     int     // minimum samples per leaf
	FeatureFrac float64 // fraction of features considered per split (1 = all)
	Seed        int64

	trees []*cartNode
}

// NewRandomForest returns an unfitted forest with sklearn-like defaults for
// the knobs the paper does not tune.
func NewRandomForest(nEstimators, maxDepth int, seed int64) *RandomForest {
	return &RandomForest{
		NEstimators: nEstimators,
		MaxDepth:    maxDepth,
		MinLeaf:     2,
		FeatureFrac: 1.0,
		Seed:        seed,
	}
}

// cartNode is one node of a regression tree.
type cartNode struct {
	feature     int
	threshold   float64
	value       float64
	left, right *cartNode
}

func (n *cartNode) isLeaf() bool { return n.left == nil }

// Fit trains the ensemble on bootstrap resamples of the batch.
func (f *RandomForest) Fit(b *nn.Batch) error {
	if b.Len() == 0 {
		return fmt.Errorf("baselines: forest fit on empty batch")
	}
	rng := rand.New(rand.NewSource(f.Seed))
	f.trees = make([]*cartNode, f.NEstimators)
	n := b.Len()
	for t := range f.trees {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		f.trees[t] = buildTree(b.X, b.Y, idx, f.MaxDepth, f.MinLeaf, f.FeatureFrac, rng)
	}
	return nil
}

// Predict implements Predictor by averaging tree outputs.
func (f *RandomForest) Predict(b *nn.Batch) []float64 {
	if f.trees == nil {
		panic("baselines: RandomForest.Predict before Fit")
	}
	out := make([]float64, b.Len())
	for i := range out {
		row := b.X.Row(i)
		s := 0.0
		for _, tr := range f.trees {
			s += predictTree(tr, row)
		}
		out[i] = s / float64(len(f.trees))
	}
	return out
}

func predictTree(n *cartNode, row []float64) float64 {
	for !n.isLeaf() {
		if row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// buildTree grows a CART regression tree by variance-reduction splitting.
func buildTree(x, y *tensor.Matrix, idx []int, depth, minLeaf int, featureFrac float64, rng *rand.Rand) *cartNode {
	node := &cartNode{value: meanAt(y, idx)}
	if depth <= 0 || len(idx) < 2*minLeaf {
		return node
	}
	bestGain := 0.0
	bestFeature, bestThreshold := -1, 0.0
	baseSSE := sseAt(y, idx, node.value)

	features := featureSample(x.Cols, featureFrac, rng)
	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	for _, fi := range features {
		for k, i := range idx {
			vals[k] = x.At(i, fi)
			order[k] = k
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
		// Prefix sums over the sorted order for O(n) split evaluation.
		var sumL, sumSqL float64
		sumR, sumSqR := 0.0, 0.0
		for _, k := range order {
			v := y.Data[idx[k]]
			sumR += v
			sumSqR += v * v
		}
		nl, nr := 0, len(idx)
		for pos := 0; pos < len(order)-1; pos++ {
			k := order[pos]
			v := y.Data[idx[k]]
			sumL += v
			sumSqL += v * v
			sumR -= v
			sumSqR -= v * v
			nl++
			nr--
			if vals[order[pos]] == vals[order[pos+1]] {
				continue // cannot split between equal values
			}
			if nl < minLeaf || nr < minLeaf {
				continue
			}
			sseL := sumSqL - sumL*sumL/float64(nl)
			sseR := sumSqR - sumR*sumR/float64(nr)
			gain := baseSSE - (sseL + sseR)
			if gain > bestGain {
				bestGain = gain
				bestFeature = fi
				bestThreshold = (vals[order[pos]] + vals[order[pos+1]]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return node
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if x.At(i, bestFeature) <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return node
	}
	node.feature = bestFeature
	node.threshold = bestThreshold
	node.left = buildTree(x, y, leftIdx, depth-1, minLeaf, featureFrac, rng)
	node.right = buildTree(x, y, rightIdx, depth-1, minLeaf, featureFrac, rng)
	return node
}

func featureSample(d int, frac float64, rng *rand.Rand) []int {
	k := int(math.Ceil(frac * float64(d)))
	if k >= d {
		out := make([]int, d)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(d)
	return perm[:k]
}

func meanAt(y *tensor.Matrix, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += y.Data[i]
	}
	return s / float64(len(idx))
}

func sseAt(y *tensor.Matrix, idx []int, mean float64) float64 {
	s := 0.0
	for _, i := range idx {
		d := y.Data[i] - mean
		s += d * d
	}
	return s
}

// FitForestCV searches the paper's hyper-parameter grid (max_depth 3..10,
// n_estimators {10,50,100,1000}) on the validation set. The estimator grid
// is capped at maxEstimators to keep harness runtimes sane; pass 1000 to
// match the paper exactly.
func FitForestCV(train, val *nn.Batch, maxEstimators int, seed int64) (*RandomForest, error) {
	depths := []int{3, 4, 5, 6, 7, 8, 9, 10}
	ests := []int{10, 50, 100, 1000}
	var best *RandomForest
	bestMSE := math.Inf(1)
	for _, d := range depths {
		for _, e := range ests {
			if e > maxEstimators {
				continue
			}
			m := NewRandomForest(e, d, seed)
			if err := m.Fit(train); err != nil {
				return nil, err
			}
			mse := batchMSE(m, val)
			if mse < bestMSE {
				bestMSE = mse
				best = m
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("baselines: empty forest grid (maxEstimators=%d)", maxEstimators)
	}
	return best, nil
}
