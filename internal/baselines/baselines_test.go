package baselines

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// linearBatch builds y = 3·x0 − 2·x1 + 0.5 + noise.
func linearBatch(rng *rand.Rand, n int, noise float64) *nn.Batch {
	x := tensor.New(n, 2)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, 3*a-2*b+0.5+rng.NormFloat64()*noise)
	}
	return &nn.Batch{X: x, Y: y}
}

func TestRidgeRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := linearBatch(rng, 500, 0.01)
	r := NewRidge(1e-6, false)
	if err := r.Fit(b); err != nil {
		t.Fatal(err)
	}
	w, c := r.Coefficients()
	if math.Abs(w[0]-3) > 0.02 || math.Abs(w[1]+2) > 0.02 || math.Abs(c-0.5) > 0.02 {
		t.Fatalf("coefficients wrong: w=%v c=%v", w, c)
	}
	if mse := batchMSE(r, b); mse > 0.01 {
		t.Fatalf("fit mse too high: %v", mse)
	}
}

func TestRidgeShrinkageWithLargeAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := linearBatch(rng, 200, 0.01)
	small := NewRidge(1e-6, false)
	big := NewRidge(1e6, false)
	if err := small.Fit(b); err != nil {
		t.Fatal(err)
	}
	if err := big.Fit(b); err != nil {
		t.Fatal(err)
	}
	ws, _ := small.Coefficients()
	wb, _ := big.Coefficients()
	if math.Abs(wb[0]) >= math.Abs(ws[0]) {
		t.Fatalf("large alpha should shrink weights: %v vs %v", wb, ws)
	}
}

func TestRidgeTSUsesWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// y depends only on the previous value (AR signal); plain Ridge on x
	// can't learn it, Ridge_ts can.
	n := 400
	x := tensor.New(n, 1)
	x.RandNormal(rng, 1)
	w := tensor.New(n, 2)
	y := tensor.New(n, 1)
	prev, prev2 := 0.3, 0.1
	for i := 0; i < n; i++ {
		cur := 0.9*prev + 0.05*rng.NormFloat64()
		w.Set(i, 0, prev2)
		w.Set(i, 1, prev)
		y.Set(i, 0, cur)
		prev2, prev = prev, cur
	}
	b := &nn.Batch{X: x, Window: w, Y: y}
	plain := NewRidge(0.001, false)
	ts := NewRidge(0.001, true)
	if err := plain.Fit(b); err != nil {
		t.Fatal(err)
	}
	if err := ts.Fit(b); err != nil {
		t.Fatal(err)
	}
	if batchMSE(ts, b) >= batchMSE(plain, b) {
		t.Fatalf("Ridge_ts should beat Ridge on AR data: %v vs %v", batchMSE(ts, b), batchMSE(plain, b))
	}
}

func TestRidgeErrorsAndPanics(t *testing.T) {
	r := NewRidge(1, false)
	if err := r.Fit(&nn.Batch{X: tensor.New(0, 2), Y: tensor.New(0, 1)}); err == nil {
		t.Fatalf("empty fit should error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("predict before fit should panic")
			}
		}()
		NewRidge(1, false).Predict(&nn.Batch{X: tensor.New(1, 2), Y: tensor.New(1, 1)})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("Ridge_ts without window should panic")
			}
		}()
		r2 := NewRidge(1, true)
		_ = r2.Fit(&nn.Batch{X: tensor.New(2, 2), Y: tensor.New(2, 1)})
	}()
}

func TestFitRidgeCVPicksReasonableAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := linearBatch(rng, 300, 0.05)
	val := linearBatch(rng, 100, 0.05)
	m, err := FitRidgeCV(train, val, false)
	if err != nil {
		t.Fatal(err)
	}
	if mse := batchMSE(m, val); mse > 0.05 {
		t.Fatalf("CV ridge val mse %v", mse)
	}
}

func TestCholeskySolve(t *testing.T) {
	// A = [[4,2],[2,3]], b = [1, 2] → x = A⁻¹b = [-(1/8), 3/4].
	a := tensor.FromRows([][]float64{{4, 2}, {2, 3}})
	x, err := solveSPD(a, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]+0.125) > 1e-10 || math.Abs(x[1]-0.75) > 1e-10 {
		t.Fatalf("solve wrong: %v", x)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := tensor.FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, ok := cholesky(a); ok {
		t.Fatalf("indefinite matrix should fail")
	}
	// solveSPD should recover by diagonal bumping only when it becomes PD;
	// [[0,0],[0,0]] becomes PD after bump.
	z := tensor.New(2, 2)
	if _, err := solveSPD(z, []float64{0, 0}); err != nil {
		t.Fatalf("zero matrix should solve after regularization: %v", err)
	}
}

// Property: solveSPD actually solves the system for random SPD matrices.
func TestSolveSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := tensor.New(n, n)
		m.RandNormal(rng, 1)
		a := tensor.MatMul(m.Transpose(), m) // PSD
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1) // make PD
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := solveSPD(a.Clone(), b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			if math.Abs(s-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestForestFitsNonlinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 600
	x := tensor.New(n, 2)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, a*b+math.Abs(a)) // nonlinear
	}
	b := &nn.Batch{X: x, Y: y}
	f := NewRandomForest(50, 8, 1)
	if err := f.Fit(b); err != nil {
		t.Fatal(err)
	}
	if mse := batchMSE(f, b); mse > 0.02 {
		t.Fatalf("forest training mse %v", mse)
	}
	// Linear ridge cannot fit this function nearly as well.
	r := NewRidge(0.001, false)
	if err := r.Fit(b); err != nil {
		t.Fatal(err)
	}
	if batchMSE(f, b) >= batchMSE(r, b) {
		t.Fatalf("forest should beat ridge on nonlinear data")
	}
}

func TestForestDepthLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := linearBatch(rng, 200, 0.1)
	shallow := NewRandomForest(10, 1, 1)
	deep := NewRandomForest(10, 8, 1)
	if err := shallow.Fit(b); err != nil {
		t.Fatal(err)
	}
	if err := deep.Fit(b); err != nil {
		t.Fatal(err)
	}
	if batchMSE(deep, b) >= batchMSE(shallow, b) {
		t.Fatalf("deeper forest should fit training data better")
	}
	maxDepth := func(n *cartNode) int {
		var rec func(*cartNode) int
		rec = func(n *cartNode) int {
			if n.isLeaf() {
				return 0
			}
			l, r := rec(n.left), rec(n.right)
			if r > l {
				l = r
			}
			return 1 + l
		}
		return rec(n)
	}
	for _, tr := range shallow.trees {
		if d := maxDepth(tr); d > 1 {
			t.Fatalf("depth limit violated: %d", d)
		}
	}
}

func TestForestDeterministicAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := linearBatch(rng, 100, 0.1)
	f1 := NewRandomForest(5, 4, 9)
	f2 := NewRandomForest(5, 4, 9)
	if err := f1.Fit(b); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(b); err != nil {
		t.Fatal(err)
	}
	p1, p2 := f1.Predict(b), f2.Predict(b)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("same seed should give identical forests")
		}
	}
	if err := NewRandomForest(5, 4, 1).Fit(&nn.Batch{X: tensor.New(0, 1), Y: tensor.New(0, 1)}); err == nil {
		t.Fatalf("empty fit should error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("predict before fit should panic")
			}
		}()
		NewRandomForest(5, 4, 1).Predict(b)
	}()
}

func TestFitForestCV(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	train := linearBatch(rng, 200, 0.1)
	val := linearBatch(rng, 80, 0.1)
	m, err := FitForestCV(train, val, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mse := batchMSE(m, val); mse > 1.5 {
		t.Fatalf("forest CV val mse %v", mse)
	}
	if _, err := FitForestCV(train, val, 5, 1); err == nil {
		t.Fatalf("empty grid should error")
	}
}

func TestSVRFitsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	train := linearBatch(rng, 200, 0.05)
	test := linearBatch(rng, 80, 0.05)
	s := NewSVR(0.01, 0.1, KernelLinear)
	if err := s.Fit(train); err != nil {
		t.Fatal(err)
	}
	mse := batchMSE(s, test)
	// Targets have variance ≈ 13; anything ≪ variance means it learned.
	if mse > 1.5 {
		t.Fatalf("linear SVR test mse %v", mse)
	}
}

func TestSVRRBFFitsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 250
	x := tensor.New(n, 1)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		v := rng.Float64()*4 - 2
		x.Set(i, 0, v)
		y.Set(i, 0, math.Sin(2*v))
	}
	b := &nn.Batch{X: x, Y: y}
	s := NewSVR(0.01, 0.05, KernelRBF)
	s.Gamma = 2
	if err := s.Fit(b); err != nil {
		t.Fatal(err)
	}
	if mse := batchMSE(s, b); mse > 0.1 {
		t.Fatalf("rbf SVR mse %v", mse)
	}
	lin := NewSVR(0.01, 0.05, KernelLinear)
	if err := lin.Fit(b); err != nil {
		t.Fatal(err)
	}
	if batchMSE(s, b) >= batchMSE(lin, b) {
		t.Fatalf("rbf should beat linear on sin data")
	}
}

func TestSVRErrorsAndStrings(t *testing.T) {
	if err := NewSVR(1, 0.1, KernelRBF).Fit(&nn.Batch{X: tensor.New(0, 1), Y: tensor.New(0, 1)}); err == nil {
		t.Fatalf("empty fit should error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("predict before fit should panic")
			}
		}()
		NewSVR(1, 0.1, KernelRBF).Predict(&nn.Batch{X: tensor.New(1, 1), Y: tensor.New(1, 1)})
	}()
	if KernelLinear.String() != "linear" || KernelPoly.String() != "poly" || KernelRBF.String() != "rbf" {
		t.Fatalf("kernel strings wrong")
	}
}

func TestRFNNLearnsARPlusFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 400
	x := tensor.New(n, 2)
	w := tensor.New(n, 2)
	y := tensor.New(n, 1)
	prev, prev2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		f0, f1 := rng.NormFloat64(), rng.NormFloat64()
		cur := 0.5*prev + 0.7*f0 - 0.3*f1 + 0.02*rng.NormFloat64()
		x.Set(i, 0, f0)
		x.Set(i, 1, f1)
		w.Set(i, 0, prev2)
		w.Set(i, 1, prev)
		y.Set(i, 0, cur)
		prev2, prev = prev, cur
	}
	b := &nn.Batch{X: x, Window: w, Y: y}
	m := NewRFNN(RFNNConfig{In: 2, Hidden: 16, GRUHidden: 8, DenseDim: 8, Seed: 1})
	nn.Train(m, nn.NewAdam(0.01), b, nil, nn.TrainConfig{Epochs: 60, BatchSize: 32, Seed: 1})
	if mse := nn.EvalMSE(m, b); mse > 0.05 {
		t.Fatalf("RFNN mse %v", mse)
	}
}

func TestRFNNRequiresWindow(t *testing.T) {
	m := NewRFNN(RFNNConfig{In: 2, Hidden: 4, GRUHidden: 2, DenseDim: 4, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.Predict(&nn.Batch{X: tensor.New(1, 2), Y: tensor.New(1, 1)})
}

func TestRFNNParamCount(t *testing.T) {
	m := NewRFNN(RFNNConfig{In: 3, Hidden: 4, GRUHidden: 2, DenseDim: 5, Seed: 1})
	// MLP hidden W+b and out W+b (unused out head still counted), GRU 9,
	// dense W+b, out W+b.
	if got := len(m.Params()); got != 17 {
		t.Fatalf("param groups = %d, want 17", got)
	}
}
