package proxy

import (
	"fmt"
	"testing"
)

func makeBackends(urls ...string) []*Backend {
	bs := make([]*Backend, 0, len(urls))
	for _, u := range urls {
		b := &Backend{URL: u, name: backendName(u)}
		b.alive.Store(true)
		bs = append(bs, b)
	}
	return bs
}

func TestRingDeterministic(t *testing.T) {
	bs := makeBackends("http://a:1", "http://b:1", "http://c:1")
	r1 := newRing(bs, 64)
	r2 := newRing(makeBackends("http://a:1", "http://b:1", "http://c:1"), 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("tb%d|fw|load|B%d", i%7, i)
		o1, o2 := r1.order(key), r2.order(key)
		if len(o1) != 3 || len(o2) != 3 {
			t.Fatalf("order(%q) incomplete: %d vs %d backends", key, len(o1), len(o2))
		}
		for j := range o1 {
			if o1[j].URL != o2[j].URL {
				t.Fatalf("order(%q)[%d] differs between identical rings: %s vs %s", key, j, o1[j].URL, o2[j].URL)
			}
		}
	}
}

func TestRingCoversAllBackendsOnce(t *testing.T) {
	bs := makeBackends("http://a:1", "http://b:1", "http://c:1", "http://d:1")
	r := newRing(bs, 32)
	order := r.order("tb1|fw|load|B1")
	if len(order) != len(bs) {
		t.Fatalf("order yielded %d backends, want %d", len(order), len(bs))
	}
	seen := map[*Backend]bool{}
	for _, b := range order {
		if seen[b] {
			t.Fatalf("backend %s yielded twice", b.URL)
		}
		seen[b] = true
	}
}

func TestRingBalance(t *testing.T) {
	bs := makeBackends("http://a:1", "http://b:1", "http://c:1")
	r := newRing(bs, 128)
	counts := map[*Backend]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		var home *Backend
		r.walk(fmt.Sprintf("tb%d|sut%d|tc|B%d", i%11, i%5, i), func(b *Backend) bool { home = b; return false })
		counts[home]++
	}
	for b, n := range counts {
		frac := float64(n) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("backend %s owns %.0f%% of keys — ring badly unbalanced", b.URL, 100*frac)
		}
	}
}

// TestRingRehomingIsMinimal is the property the whole design leans on:
// removing one backend moves only the keys it owned (each to its next
// clockwise neighbour), and its return restores the original map exactly.
func TestRingRehomingIsMinimal(t *testing.T) {
	bs := makeBackends("http://a:1", "http://b:1", "http://c:1")
	r := newRing(bs, 64)
	dead := bs[1]

	homeWith := func(key string, skip *Backend) *Backend {
		var home *Backend
		r.walk(key, func(b *Backend) bool {
			if b == skip {
				return true // keep walking, as route() does for !Alive()
			}
			home = b
			return false
		})
		return home
	}

	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("tb%d|fw|load|B%d", i%7, i)
		before := homeWith(key, nil)
		during := homeWith(key, dead)
		after := homeWith(key, nil)
		if before != after {
			t.Fatalf("key %q did not re-home back after rejoin: %s -> %s", key, before.URL, after.URL)
		}
		if before == dead {
			moved++
			if during == dead {
				t.Fatalf("key %q still routed to the dead backend", key)
			}
			// The failover target must be the key's second preference —
			// the deterministic next-clockwise backend.
			if want := r.order(key)[1]; during != want {
				t.Fatalf("key %q failed over to %s, want next-clockwise %s", key, during.URL, want.URL)
			}
		} else if during != before {
			t.Fatalf("key %q moved (%s -> %s) though its home never died", key, before.URL, during.URL)
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: no key homed on the dead backend")
	}
}
