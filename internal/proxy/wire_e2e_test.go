package proxy

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"env2vec/internal/envmeta"
	"env2vec/internal/obs"
	"env2vec/internal/serve"
	"env2vec/internal/wire"
)

// attachWire gives an e2e backend a binary-protocol listener beside its
// HTTP one, dispatching into the same serve.Server.
func attachWire(t *testing.T, be *e2eBackend) (string, *wire.Server) {
	t.Helper()
	ws := wire.NewServer(be.s, wire.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ws.Serve(ln) }()
	t.Cleanup(ws.Close)
	return ln.Addr().String(), ws
}

func TestProxyBodyLimit(t *testing.T) {
	be := newE2EBackend(t, 3)
	p := New(Config{Backends: []string{be.srv.URL}, MaxBodyBytes: 1 << 10})
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()

	good := `{"cf":[1,2,3],"window":[50,51],"testbed":"tb1","sut":"fw","testcase":"load","build":"B1"}`
	resp, err := http.Post(front.URL+"/predict", "application/json", strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-bounds predict: %d", resp.StatusCode)
	}

	huge := `{"pad":"` + strings.Repeat("x", 2<<10) + `"}`
	for _, path := range []string{"/predict", "/observe"} {
		resp, err := http.Post(front.URL+path, "application/json", strings.NewReader(huge))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized %s: %d, want 413", path, resp.StatusCode)
		}
	}
}

// TestProxyErrorBodyCap pins the error-relay bound: a backend answering
// with a conclusive error status and an enormous body must not balloon
// through the proxy — at most maxErrorBodyBytes of it are read or relayed.
func TestProxyErrorBodyCap(t *testing.T) {
	giant := bytes.Repeat([]byte("e"), 1<<20)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" || r.URL.Path == "/healthz" {
			fmt.Fprintln(w, "ok")
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write(giant)
	}))
	defer backend.Close()

	p := New(Config{Backends: []string{backend.URL}})
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Post(front.URL+"/predict", "application/json",
		strings.NewReader(`{"testbed":"tb1","sut":"fw","testcase":"load","build":"B1"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want the backend's 500 relayed", resp.StatusCode)
	}
	if len(body) > maxErrorBodyBytes {
		t.Fatalf("relayed %d bytes of error body, cap is %d", len(body), maxErrorBodyBytes)
	}
}

// TestE2EWireMixedProtocolFailover is the wire acceptance test: two real
// backends serving JSON and binary side by side, a proxy fronting both
// protocols, mixed JSON + batch + stream traffic, and a backend killed
// between phases. Every post-kill request must land on the survivor.
func TestE2EWireMixedProtocolFailover(t *testing.T) {
	b0, b1 := newE2EBackend(t, 7), newE2EBackend(t, 11)
	w0, ws0 := attachWire(t, b0)
	w1, _ := attachWire(t, b1)

	p := New(Config{
		Backends:     []string{b0.srv.URL, b1.srv.URL},
		WireBackends: []string{w0, w1},
		FailAfter:    1,
		RiseAfter:    1,
		LoadFactor:   1,
		RetryBackoff: time.Millisecond,
		Timeout:      5 * time.Second,
		Trace:        obs.TraceStoreConfig{Capacity: 32, SampleRate: 1},
	})
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = p.ServeWire(wln) }()
	proxyWire := wln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Second}

	rng := rand.New(rand.NewSource(5))
	newReq := func(build string) *serve.Request {
		return &serve.Request{
			CF:      []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
			Window:  []float64{50 + rng.NormFloat64(), 50 + rng.NormFloat64()},
			Testbed: "tb1", SUT: "fw", Testcase: "load", Build: build,
		}
	}

	runMixed := func(phase string) {
		// JSON through the HTTP front.
		for i := 0; i < 16; i++ {
			body := fmt.Sprintf(`{"cf":[%f,%f,%f],"window":[50,51],"testbed":"tb1","sut":"fw","testcase":"load","build":"B%d"}`,
				rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), i%8)
			resp, err := client.Post(front.URL+"/predict", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatalf("%s: json predict: %v", phase, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: json predict status %d", phase, resp.StatusCode)
			}
		}
		// Binary batches through the wire front — builds span both ring
		// homes, so a batch exercises scatter/gather and failover at once.
		c, err := wire.Dial(proxyWire, wire.ClientConfig{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("%s: wire dial: %v", phase, err)
		}
		for round := 0; round < 4; round++ {
			reqs := make([]*serve.Request, 8)
			for i := range reqs {
				reqs[i] = newReq(fmt.Sprintf("B%d", i))
			}
			replies, err := c.Predict(reqs)
			if err != nil {
				t.Fatalf("%s: wire predict: %v", phase, err)
			}
			for i, rep := range replies {
				if rep.Status != http.StatusOK {
					t.Fatalf("%s: wire reply %d: status %d (%s)", phase, i, rep.Status, rep.Error)
				}
				if rep.RequestID == "" {
					t.Fatalf("%s: wire reply %d missing request id", phase, i)
				}
			}
		}
		c.Close()
		// One subscribe stream spliced through to its home backend.
		sc, err := wire.Dial(proxyWire, wire.ClientConfig{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatalf("%s: stream dial: %v", phase, err)
		}
		st, err := sc.Subscribe(envmeta.Environment{Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "B1"}, "")
		if err != nil {
			t.Fatalf("%s: subscribe: %v", phase, err)
		}
		_ = st.SetDeadline(time.Now().Add(5 * time.Second))
		if ack := st.Ack(); ack.In != 3 || ack.Window != 2 {
			t.Fatalf("%s: subscribe ack %+v", phase, ack)
		}
		for i := 0; i < 8; i++ {
			r := newReq("B1")
			if err := st.Send(wire.Window{Seq: st.NextSeq(), CF: r.CF, Window: r.Window}); err != nil {
				t.Fatalf("%s: stream send: %v", phase, err)
			}
			pred, err := st.Recv()
			if err != nil {
				t.Fatalf("%s: stream recv: %v", phase, err)
			}
			if pred.Status != http.StatusOK {
				t.Fatalf("%s: stream prediction status %d (%s)", phase, pred.Status, pred.Error)
			}
		}
		st.Close()
	}

	runMixed("healthy")

	// Kill backend 0 on both protocols. Pooled wire connections and any
	// spliced stream to it die; the retry budget and redial-shaped stream
	// failover must absorb all of it.
	b0.srv.Close()
	ws0.Close()

	runMixed("post-kill")

	if p.Backends()[0].Alive() {
		t.Fatal("killed backend still marked alive after wire failovers")
	}
	if !p.Backends()[1].Alive() {
		t.Fatal("survivor marked dead")
	}

	// The wire path's sticky bookkeeping works across protocols: a binary
	// prediction's request id accepts ground truth over JSON /observe.
	c, err := wire.Dial(proxyWire, wire.ClientConfig{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	replies, err := c.Predict([]*serve.Request{newReq("B1")})
	if err != nil || replies[0].Status != http.StatusOK {
		t.Fatalf("wire predict for observe: %v %+v", err, replies)
	}
	obsBody := fmt.Sprintf(`{"request_id":%q,"actual":50.5}`, replies[0].RequestID)
	resp, err := client.Post(front.URL+"/observe", "application/json", strings.NewReader(obsBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe for a wire-served prediction: %d, want 200", resp.StatusCode)
	}
}
