// Package proxy is the environment-affinity front tier of the serving
// fleet: it consistent-hashes each request's environment tuple
// <Testbed,SUT,Testcase,Build> onto a pool of e2vserve backends so every
// instance sees a stable slice of environments — keeping its per-env
// quality drift state and its micro-batches coherent — fails over with a
// bounded retry budget when a backend dies, sheds load with 429 when the
// whole pool is saturated, and aggregates the fleet's /metrics and
// /quality surfaces into single endpoints.
package proxy

import (
	"fmt"
	"sort"
)

// fnv64a hashes a string with FNV-1a and a murmur3-style finalizer.
// Raw FNV-1a is fine for bucketing (the registry's shard hash) but has
// poor avalanche in its high bits for inputs differing only near the end —
// and ring keys are exactly that: the same <testbed,SUT,testcase,…> prefix
// with a varying build suffix, as are the "URL#i" virtual-node names. The
// fmix64 finisher diffuses those low-order differences across the word so
// positions on the ring are uniform.
func fnv64a(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ring is an immutable consistent-hash ring over the configured backends:
// every backend owns vnodes points, requests walk clockwise from their
// key's hash. The ring holds *all* configured backends — dead ones are
// skipped at walk time, so a backend's death re-homes exactly the keys it
// owned (to the next distinct backend clockwise) and its rejoin restores
// them, deterministically and without rebuilding anything.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // distinct backends
}

type ringPoint struct {
	hash uint64
	b    *Backend
}

// newRing places vnodes points per backend. Virtual-node hashes derive
// from the backend URL, so the mapping is a pure function of the
// configuration: every proxy replica with the same backend list routes
// identically.
func newRing(backends []*Backend, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{points: make([]ringPoint, 0, len(backends)*vnodes), n: len(backends)}
	for _, b := range backends {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: fnv64a(fmt.Sprintf("%s#%d", b.URL, i)), b: b})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].b.URL < r.points[j].b.URL // total order even on hash collisions
	})
	return r
}

// walk yields the distinct backends for key in clockwise ring order,
// stopping early when visit returns false. The first backend yielded is
// the key's home; the rest are its deterministic failover order.
func (r *ring) walk(key string, visit func(*Backend) bool) {
	if len(r.points) == 0 {
		return
	}
	h := fnv64a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[*Backend]bool, r.n)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.b] {
			continue
		}
		seen[p.b] = true
		if !visit(p.b) {
			return
		}
		if len(seen) == r.n {
			return
		}
	}
}

// order returns the full preference order for key: the key's home backend
// first, then each successive failover target.
func (r *ring) order(key string) []*Backend {
	out := make([]*Backend, 0, r.n)
	r.walk(key, func(b *Backend) bool {
		out = append(out, b)
		return true
	})
	return out
}
