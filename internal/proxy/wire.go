package proxy

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"env2vec/internal/envmeta"
	"env2vec/internal/obs"
	"env2vec/internal/serve"
	"env2vec/internal/wire"
)

// wireFront is the proxy's binary-protocol face: the same ring, health
// hysteresis, retry budget, sticky bookkeeping, and trace stitching as the
// JSON handlers, but speaking wire frames end to end — requests decoded
// off the client connection are re-framed (never re-marshalled through
// JSON) onto pooled backend connections.
type wireFront struct {
	p *Proxy

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup

	pools map[string]*wirePool // keyed by backend wire address

	connsTotal, batches  *obs.Counter
	subsTotal, relayErrs *obs.Counter
}

// wirePool keeps idle wire clients to one backend for reuse. Checked-out
// clients that hit a transport error are discarded, not returned.
type wirePool struct {
	addr string
	cfg  wire.ClientConfig

	mu   sync.Mutex
	idle []*wire.Client
}

const wirePoolIdleCap = 8

func (wp *wirePool) get() (*wire.Client, error) {
	wp.mu.Lock()
	if n := len(wp.idle); n > 0 {
		c := wp.idle[n-1]
		wp.idle = wp.idle[:n-1]
		wp.mu.Unlock()
		return c, nil
	}
	wp.mu.Unlock()
	return wire.Dial(wp.addr, wp.cfg)
}

func (wp *wirePool) put(c *wire.Client) {
	wp.mu.Lock()
	if len(wp.idle) < wirePoolIdleCap {
		wp.idle = append(wp.idle, c)
		wp.mu.Unlock()
		return
	}
	wp.mu.Unlock()
	c.Close()
}

func (wp *wirePool) drain() {
	wp.mu.Lock()
	idle := wp.idle
	wp.idle = nil
	wp.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// initWireFront builds the front lazily on the first ServeWire call; it
// panics when the proxy was configured without WireBackends because a wire
// listener with no wire backends cannot route anything.
func (p *Proxy) initWireFront() *wireFront {
	p.wireOnce.Do(func() {
		if len(p.cfg.WireBackends) == 0 {
			panic("proxy: ServeWire requires Config.WireBackends")
		}
		wf := &wireFront{
			p:         p,
			listeners: make(map[net.Listener]struct{}),
			conns:     make(map[net.Conn]struct{}),
			pools:     make(map[string]*wirePool),
		}
		ccfg := wire.ClientConfig{Timeout: p.cfg.Timeout}
		for _, b := range p.backends {
			if b.wireAddr != "" {
				wf.pools[b.wireAddr] = &wirePool{addr: b.wireAddr, cfg: ccfg}
			}
		}
		wf.connsTotal = p.reg.Counter("env2vec_proxy_wire_connections_total", "Wire-protocol client connections accepted by the proxy.", nil)
		wf.batches = p.reg.Counter("env2vec_proxy_wire_batches_total", "Predict batch frames routed by the wire front.", nil)
		wf.subsTotal = p.reg.Counter("env2vec_proxy_wire_subscriptions_total", "Subscribe streams spliced through to backends.", nil)
		wf.relayErrs = p.reg.Counter("env2vec_proxy_wire_relay_errors_total", "Wire batches or streams that failed against every candidate.", nil)
		p.wire = wf
	})
	return p.wire
}

// ServeWire accepts binary-protocol connections on ln and routes them over
// the same backend pool as the HTTP handlers. Call from its own goroutine;
// it returns when ln or the proxy closes.
func (p *Proxy) ServeWire(ln net.Listener) error {
	wf := p.initWireFront()
	wf.mu.Lock()
	if wf.closed {
		wf.mu.Unlock()
		ln.Close()
		return errors.New("proxy: wire front closed")
	}
	wf.listeners[ln] = struct{}{}
	wf.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			wf.mu.Lock()
			closed := wf.closed
			delete(wf.listeners, ln)
			wf.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		wf.mu.Lock()
		if wf.closed {
			wf.mu.Unlock()
			conn.Close()
			return nil
		}
		wf.conns[conn] = struct{}{}
		wf.wg.Add(1)
		wf.mu.Unlock()
		wf.connsTotal.Inc()
		go func() {
			defer wf.wg.Done()
			wf.handleConn(conn)
			wf.mu.Lock()
			delete(wf.conns, conn)
			wf.mu.Unlock()
		}()
	}
}

// closeWire tears down the wire front: listeners, live connections, idle
// backend pools. Called from Proxy.Close.
func (p *Proxy) closeWire() {
	wf := p.wire
	if wf == nil {
		return
	}
	wf.mu.Lock()
	if wf.closed {
		wf.mu.Unlock()
		return
	}
	wf.closed = true
	for ln := range wf.listeners {
		ln.Close()
	}
	for conn := range wf.conns {
		conn.Close()
	}
	pools := wf.pools
	wf.mu.Unlock()
	for _, wp := range pools {
		wp.drain()
	}
	wf.wg.Wait()
}

// handleConn speaks the wire protocol with one client: handshake, then
// batch frames routed with failover, or one subscribe stream spliced
// through to its home backend.
func (wf *wireFront) handleConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	write := func(typ byte, payload []byte) error {
		if err := wire.WriteFrame(bw, typ, payload); err != nil {
			return err
		}
		return bw.Flush()
	}
	fail := func(code int, msg string) {
		_ = write(wire.FrameError, wire.AppendError(nil, wire.ErrorFrame{Code: code, Message: msg}))
	}

	f, err := wire.ReadFrame(br, wire.DefaultMaxPayload)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			fail(http.StatusBadRequest, err.Error())
		}
		return
	}
	if f.Type != wire.FrameHello {
		fail(http.StatusBadRequest, "wire: expected Hello")
		return
	}
	hello, err := wire.DecodeHello(f.Payload)
	if err != nil {
		fail(http.StatusBadRequest, err.Error())
		return
	}
	if hello.Version != wire.ProtocolVersion {
		fail(http.StatusHTTPVersionNotSupported, wire.ErrVersion.Error())
		return
	}
	if err := write(wire.FrameHelloAck, wire.AppendHello(nil, wire.Hello{
		Version: wire.ProtocolVersion, Features: wire.FeatureBatch | wire.FeatureSubscribe,
	})); err != nil {
		return
	}

	for {
		f, err := wire.ReadFrame(br, wire.DefaultMaxPayload)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				fail(http.StatusBadRequest, err.Error())
			}
			return
		}
		switch f.Type {
		case wire.FramePredictBatch:
			reqs, err := wire.DecodePredictBatch(f.Payload)
			if err != nil {
				fail(http.StatusBadRequest, err.Error())
				return
			}
			wf.batches.Inc()
			replies := wf.routeBatch(reqs)
			if err := write(wire.FramePredictReply, wire.AppendPredictReplies(nil, replies)); err != nil {
				return
			}

		case wire.FrameSubscribe:
			sub, err := wire.DecodeSubscribe(f.Payload)
			if err != nil {
				fail(http.StatusBadRequest, err.Error())
				return
			}
			// The stream takes over the connection; splice returns when
			// either side closes.
			wf.splice(conn, br, bw, sub)
			return

		default:
			fail(http.StatusBadRequest, "wire: unexpected frame type")
			return
		}
	}
}

// routeBatch forwards one decoded batch to the ring. Requests are grouped
// by environment key (scatter), each group rides the key's candidate list
// with the usual retry budget, and replies land back in request order
// (gather). Transport failures feed the health state machine exactly like
// HTTP forward failures.
func (wf *wireFront) routeBatch(reqs []*serve.Request) []wire.Reply {
	p := wf.p
	replies := make([]wire.Reply, len(reqs))

	// Admission control shares the pool-wide in-flight bound with HTTP.
	if p.totalInflight.Load() >= int64(p.cfg.MaxInflight) {
		p.shed.Inc()
		for i, r := range reqs {
			replies[i] = wire.Reply{RequestID: r.RequestID, Status: http.StatusTooManyRequests, Error: "proxy: pool saturated"}
		}
		return replies
	}

	// Scatter: group request indices by environment key, preserving order
	// within a group.
	groups := make(map[string][]int)
	var order []string
	for i, r := range reqs {
		if r.RequestID == "" {
			r.RequestID = obs.NewRequestID()
		}
		key := envmeta.Environment{Testbed: r.Testbed, SUT: r.SUT, Testcase: r.Testcase, Build: r.Build}.String()
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], i)
	}

	for _, key := range order {
		idxs := groups[key]
		group := make([]*serve.Request, len(idxs))
		for j, i := range idxs {
			group[j] = reqs[i]
		}
		got := wf.forwardGroup(key, group)
		for j, i := range idxs {
			replies[i] = got[j]
		}
	}
	return replies
}

// forwardGroup sends one same-environment slice of a batch along its
// candidate backends. A conclusive answer (any non-retryable item) stops
// the walk; a transport error or an all-shed reply tries the next
// candidate after the usual backoff.
func (wf *wireFront) forwardGroup(key string, group []*serve.Request) []wire.Reply {
	p := wf.p
	t0 := time.Now()
	rootID := obs.NewSpanID()
	traceID := group[0].RequestID
	var spans []obs.Span
	attempts := 0
	finish := func(outcome, errMsg string) {
		dur := obs.MS(time.Since(t0))
		root := obs.Span{
			TraceID: traceID, SpanID: rootID, Name: "proxy.request",
			StartUnixUS: t0.UnixMicro(), DurationMS: dur,
		}
		root.SetAttr("outcome", outcome)
		root.SetAttr("path", "wire:batch")
		root.SetAttr("batch_size", strconv.Itoa(len(group)))
		if errMsg != "" {
			root.SetAttr("error", errMsg)
		}
		switch outcome {
		case obs.OutcomeServed:
			p.latServed.ObserveExemplar(dur, traceID)
		case obs.OutcomeShed:
			p.latShed.ObserveExemplar(dur, traceID)
		default:
			p.latFailed.ObserveExemplar(dur, traceID)
		}
		p.traces.Add(obs.Trace{
			TraceID: traceID, Root: root.Name, Outcome: outcome, Retried: attempts > 1,
			StartUnixUS: root.StartUnixUS, DurationMS: dur,
			Spans: append([]obs.Span{root}, spans...),
		})
	}

	candidates := p.route(key)
	n := 0
	for _, b := range candidates {
		if b.wireAddr != "" {
			candidates[n] = b
			n++
		}
	}
	candidates = candidates[:n]
	if len(candidates) == 0 {
		p.failed.Inc()
		wf.relayErrs.Inc()
		finish(obs.OutcomeFailed, "proxy: no live wire backends")
		return errReplies(group, http.StatusServiceUnavailable, "proxy: no live wire backends")
	}

	backoff := p.cfg.RetryBackoff
	var lastErr error
	allShed := false
	for i, b := range candidates {
		waited := time.Duration(0)
		if i > 0 {
			p.retries.Inc()
			waited = backoff
			time.Sleep(backoff)
			p.backoffWait.Observe(obs.MS(waited))
			backoff *= 2
		}
		attempts++
		span := obs.Span{TraceID: traceID, SpanID: obs.NewSpanID(), ParentID: rootID, Name: "proxy.attempt"}
		span.SetAttr("backend", b.name)
		span.SetAttr("attempt", strconv.Itoa(attempts))
		if waited > 0 {
			span.SetAttr("backoff_wait_ms", strconv.FormatFloat(obs.MS(waited), 'g', -1, 64))
		}
		// Backend spans parent onto this attempt, as on the HTTP path.
		for _, r := range group {
			r.TraceParent = obs.FormatTraceParent(r.RequestID, span.SpanID)
		}
		aStart := time.Now()
		span.StartUnixUS = aStart.UnixMicro()
		got, err := wf.attemptWire(b, group)
		span.DurationMS = obs.MS(time.Since(aStart))
		if err != nil {
			span.SetAttr("outcome", "failed")
			span.SetAttr("error", err.Error())
			spans = append(spans, span)
			p.attemptErr.Observe(span.DurationMS)
			b.failed.Inc()
			p.health.reportFailure(b)
			lastErr = err
			p.log.Debug("wire forward failed, failing over", "backend", b.name, "err", err)
			continue
		}
		p.attemptOK.Observe(span.DurationMS)
		b.latency.ObserveExemplar(span.DurationMS, traceID)
		allShed = true
		for _, rep := range got {
			if !retryableStatus(rep.Status) {
				allShed = false
				break
			}
		}
		if allShed {
			// The whole slice bounced (queue full, no model) — the next
			// candidate might hold it, same spill the HTTP path does on 429.
			span.SetAttr("outcome", "shed")
			spans = append(spans, span)
			p.log.Debug("wire backend refused batch, failing over", "backend", b.name)
			continue
		}
		if i > 0 {
			p.failovers.Inc()
			span.SetAttr("outcome", "failover")
		} else {
			span.SetAttr("outcome", "served")
		}
		spans = append(spans, span)
		served := 0
		for _, rep := range got {
			if rep.Status < 300 {
				served++
				p.rememberSticky(rep.RequestID, b)
			}
			spans = append(spans, rep.Spans...)
		}
		if served > 0 {
			p.served.Inc()
			b.served.Inc()
			finish(obs.OutcomeServed, "")
		} else {
			p.failed.Inc()
			finish(obs.OutcomeFailed, "no item in batch served")
		}
		return got
	}

	p.failed.Inc()
	wf.relayErrs.Inc()
	if allShed {
		p.shed.Inc()
		finish(obs.OutcomeShed, "proxy: fleet saturated")
		return errReplies(group, http.StatusTooManyRequests, "proxy: fleet saturated")
	}
	msg := "proxy: all candidates unreachable"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	finish(obs.OutcomeFailed, msg)
	return errReplies(group, http.StatusBadGateway, msg)
}

// attemptWire runs one batch against one backend over a pooled client.
// Transport errors discard the client; protocol-level remote errors are
// surfaced as errors too (the connection state is unknown, drop it).
func (wf *wireFront) attemptWire(b *Backend, group []*serve.Request) ([]wire.Reply, error) {
	p := wf.p
	wf.mu.Lock()
	wp := wf.pools[b.wireAddr]
	wf.mu.Unlock()
	if wp == nil {
		return nil, fmt.Errorf("proxy: no wire pool for %s", b.name)
	}
	b.inflight.Add(1)
	p.totalInflight.Add(1)
	defer func() {
		b.inflight.Add(-1)
		p.totalInflight.Add(-1)
	}()
	c, err := wp.get()
	if err != nil {
		return nil, err
	}
	replies, err := c.Predict(group)
	if err != nil {
		c.Close()
		return nil, err
	}
	wp.put(c)
	return replies, nil
}

func errReplies(group []*serve.Request, code int, msg string) []wire.Reply {
	out := make([]wire.Reply, len(group))
	for i, r := range group {
		out[i] = wire.Reply{RequestID: r.RequestID, Status: code, Error: msg}
	}
	return out
}

// splice pins a subscribe stream to its environment's home backend and
// then relays raw bytes both ways — no per-frame decode on the hot path.
// The backend handshake and Subscribe are replayed; its SubscribeAck (or
// error) relays to the client, after which the two connections are joined
// until either side closes. Stream failover is reconnect-shaped by design:
// the client redials the proxy and the ring picks the new home.
func (wf *wireFront) splice(client net.Conn, br *bufio.Reader, bw *bufio.Writer, sub wire.Subscribe) {
	p := wf.p
	fail := func(code int, msg string) {
		_ = wire.WriteFrame(bw, wire.FrameError, wire.AppendError(nil, wire.ErrorFrame{Code: code, Message: msg}))
		_ = bw.Flush()
	}
	key := sub.Env.String()
	candidates := p.route(key)
	var backendConn net.Conn
	var backendBR *bufio.Reader
	var picked *Backend
	for _, b := range candidates {
		if b.wireAddr == "" {
			continue
		}
		conn, brd, err := wf.dialSubscribe(b, sub)
		if err != nil {
			p.health.reportFailure(b)
			p.log.Debug("wire subscribe dial failed, failing over", "backend", b.name, "err", err)
			continue
		}
		backendConn, backendBR, picked = conn, brd, b
		break
	}
	if backendConn == nil {
		wf.relayErrs.Inc()
		fail(http.StatusServiceUnavailable, "proxy: no live wire backends")
		return
	}
	defer backendConn.Close()
	wf.subsTotal.Inc()
	p.log.Info("wire stream spliced", "backend", picked.name, "env", key)

	// Track the backend conn so Close severs parked streams too.
	wf.mu.Lock()
	if wf.closed {
		wf.mu.Unlock()
		return
	}
	wf.conns[backendConn] = struct{}{}
	wf.mu.Unlock()
	defer func() {
		wf.mu.Lock()
		delete(wf.conns, backendConn)
		wf.mu.Unlock()
	}()

	// Join the connections. backendBR holds the backend's SubscribeAck
	// (already relayed? no — dialSubscribe leaves it buffered) plus any
	// early predictions; br may hold pipelined windows the client sent
	// before our ack. Both buffered remainders must flow first.
	done := make(chan struct{}, 2)
	go func() {
		// client → backend: anything the client buffered, then the raw conn.
		_, _ = io.Copy(backendConn, io.MultiReader(br, client))
		// Half-close toward the backend if possible so its responder drain
		// still reaches the client.
		if tc, ok := backendConn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		} else {
			backendConn.Close()
		}
		done <- struct{}{}
	}()
	go func() {
		// backend → client: the buffered ack/predictions, then the raw conn.
		_, _ = io.Copy(client, io.MultiReader(backendBR, backendConn))
		client.Close()
		done <- struct{}{}
	}()
	<-done
	<-done
}

// dialSubscribe opens a raw wire connection to b, performs the handshake,
// and forwards sub. The backend's answer (SubscribeAck or FrameError) is
// left buffered in the returned reader for the splice to relay verbatim.
func (wf *wireFront) dialSubscribe(b *Backend, sub wire.Subscribe) (net.Conn, *bufio.Reader, error) {
	p := wf.p
	d := net.Dialer{Timeout: 5 * time.Second}
	conn, err := d.Dial("tcp", b.wireAddr)
	if err != nil {
		return nil, nil, err
	}
	brd := bufio.NewReaderSize(conn, 64<<10)
	// Handshake under a deadline so a wedged backend cannot park the
	// subscriber forever; cleared before the splice.
	_ = conn.SetDeadline(time.Now().Add(p.cfg.Timeout))
	if err := wire.WriteFrame(conn, wire.FrameHello, wire.AppendHello(nil, wire.Hello{Version: wire.ProtocolVersion})); err != nil {
		conn.Close()
		return nil, nil, err
	}
	f, err := wire.ReadFrame(brd, wire.DefaultMaxPayload)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	if f.Type != wire.FrameHelloAck {
		conn.Close()
		return nil, nil, fmt.Errorf("proxy: backend %s refused wire handshake", b.name)
	}
	if err := wire.WriteFrame(conn, wire.FrameSubscribe, wire.AppendSubscribe(nil, sub)); err != nil {
		conn.Close()
		return nil, nil, err
	}
	// Peek one byte of the answer so a dead backend fails the candidate
	// walk here, not after the splice started.
	if _, err := brd.Peek(1); err != nil {
		conn.Close()
		return nil, nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, brd, nil
}
