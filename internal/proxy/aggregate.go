package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"env2vec/internal/quality"
	"env2vec/internal/tsdb"
)

// fleetFanout runs fn against every live backend concurrently and returns
// the per-backend errors (nil entries for successes). Dead backends are
// skipped: the fleet view reflects only members currently in rotation.
func (p *Proxy) fleetFanout(fn func(b *Backend) error) map[string]error {
	errs := make(map[string]error, len(p.backends))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range p.backends {
		if !b.Alive() {
			continue
		}
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			err := fn(b)
			mu.Lock()
			errs[b.name] = err
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	return errs
}

// handleMetrics serves the fleet-aggregated /metrics page: the proxy's own
// routing/failover metrics first, then every live backend's exposition
// parsed and re-emitted with a backend="host:port" label, so one scrape of
// the front tier sees the whole fleet with per-instance attribution.
func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now().Unix()
	parts := make(map[string][]tsdb.Series)
	var mu sync.Mutex
	errs := p.fleetFanout(func(b *Backend) error {
		resp, err := p.client.Get(b.URL + "/metrics")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		series, err := tsdb.ParseExposition(resp.Body, now)
		if err != nil {
			return err
		}
		mu.Lock()
		parts[b.name] = series
		mu.Unlock()
		return nil
	})

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = p.reg.WriteTo(w) // the proxy's own metrics, HELP/TYPE intact
	var buf bytes.Buffer
	_ = tsdb.MergeExpositions(&buf, "backend", parts)
	_, _ = w.Write(buf.Bytes())
	for name, err := range errs {
		if err != nil {
			p.scrapeErrors.Inc()
			fmt.Fprintf(w, "# backend %s scrape failed: %v\n", name, err)
		}
	}
}

// FleetQuality is the fleet-aggregated GET /quality payload: the union of
// every live backend's per-environment drift state. With affinity routing
// each environment lives on exactly one backend; after a failover the same
// tuple can briefly report from two, and the union keeps the fresher entry
// (greater LastSeen — the environment's current home).
type FleetQuality struct {
	Backends     []BackendQuality     `json:"backends"`
	Environments []FleetEnvSnapshot   `json:"environments"`
	Totals       FleetQualityCounters `json:"totals"`
}

// BackendQuality is one backend's contribution to the fleet view.
type BackendQuality struct {
	Backend      string `json:"backend"`
	Environments int    `json:"environments"`
	Observations uint64 `json:"observations"`
	Error        string `json:"error,omitempty"` // scrape failure, entry excluded from the union
}

// FleetEnvSnapshot is one environment's drift state plus which backend
// currently owns it.
type FleetEnvSnapshot struct {
	quality.EnvSnapshot
	Backend string `json:"backend"`
}

// FleetQualityCounters sums the monitor pipeline counters across the fleet.
type FleetQualityCounters struct {
	Observations  uint64 `json:"observations"`
	Exceedances   uint64 `json:"exceedances"`
	AlarmsEmitted uint64 `json:"alarms_emitted"`
	AlarmsPushed  uint64 `json:"alarms_pushed"`
	AlarmsDropped uint64 `json:"alarms_dropped"`
}

// handleQuality serves the fleet /quality union.
func (p *Proxy) handleQuality(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	snaps := make(map[string]quality.Snapshot)
	var mu sync.Mutex
	errs := p.fleetFanout(func(b *Backend) error {
		resp, err := p.client.Get(b.URL + "/quality")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		var snap quality.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			return err
		}
		mu.Lock()
		snaps[b.name] = snap
		mu.Unlock()
		return nil
	})

	out := FleetQuality{}
	union := make(map[string]FleetEnvSnapshot)
	names := make([]string, 0, len(errs))
	for name := range errs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bq := BackendQuality{Backend: name}
		if err := errs[name]; err != nil {
			p.scrapeErrors.Inc()
			bq.Error = err.Error()
			out.Backends = append(out.Backends, bq)
			continue
		}
		snap := snaps[name]
		bq.Environments = len(snap.Environments)
		bq.Observations = snap.Observations
		out.Backends = append(out.Backends, bq)
		out.Totals.Observations += snap.Observations
		out.Totals.Exceedances += snap.Exceedances
		out.Totals.AlarmsEmitted += snap.AlarmsEmitted
		out.Totals.AlarmsPushed += snap.AlarmsPushed
		out.Totals.AlarmsDropped += snap.AlarmsDropped
		for _, es := range snap.Environments {
			if have, ok := union[es.Env]; ok && have.LastSeen >= es.LastSeen {
				continue // the other backend saw this env more recently
			}
			union[es.Env] = FleetEnvSnapshot{EnvSnapshot: es, Backend: name}
		}
	}
	out.Environments = make([]FleetEnvSnapshot, 0, len(union))
	for _, es := range union {
		out.Environments = append(out.Environments, es)
	}
	sort.Slice(out.Environments, func(i, j int) bool { return out.Environments[i].Env < out.Environments[j].Env })

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}
