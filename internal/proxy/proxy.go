package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"env2vec/internal/envmeta"
	"env2vec/internal/obs"
	"env2vec/internal/serve"
)

// Config sizes the front tier.
type Config struct {
	// Backends are the e2vserve base URLs the proxy routes over (required,
	// at least one).
	Backends []string
	// WireBackends are the backends' binary-protocol addresses (host:port),
	// parallel to Backends — WireBackends[i] is Backends[i]'s wire listener.
	// Optional; required (and length-checked) only when the proxy itself
	// serves the wire protocol via ServeWire.
	WireBackends []string
	// VNodes is how many virtual nodes each backend owns on the hash ring
	// (default 64): more vnodes, smoother slices, slower ring build.
	VNodes int
	// LoadFactor is the bounded-load factor c: a backend is skipped for
	// *new* placement when admitting the request would push it past
	// ceil(c · total-in-flight / live-backends) (default 1.25; values
	// ≤ 1 disable the bound).
	LoadFactor float64
	// Retries is the per-request failover budget: how many *additional*
	// backends a request may try after its home fails (default: all of
	// them — len(Backends)−1).
	Retries int
	// RetryBackoff is the first retry's delay, doubling per attempt
	// (default 5ms). Backoff only applies between attempts of one request.
	RetryBackoff time.Duration
	// MaxInflight caps the pool-wide concurrent forwards; beyond it the
	// proxy sheds with 429 instead of queueing (default 256 per backend).
	MaxInflight int
	// CheckInterval is the health-probe period (default 2s).
	CheckInterval time.Duration
	// FailAfter / RiseAfter are the consecutive probe outcomes needed to
	// take a backend out of / back into rotation (default 2 / 2).
	FailAfter, RiseAfter int
	// Timeout bounds each forwarded attempt (default 10s).
	Timeout time.Duration
	// PendingCap bounds the request-id → backend map that keeps POST
	// /observe sticky to the backend that served the prediction
	// (default 16384, FIFO eviction).
	PendingCap int
	// MaxBodyBytes caps inbound request bodies on /predict and /observe
	// (default 4 MiB, matching serve). Oversized bodies answer 413 before
	// any bytes are forwarded.
	MaxBodyBytes int64
	// Trace sizes the tail-sampled trace store behind GET /traces: every
	// routed request's span tree (root + one span per forward attempt +
	// the backend's stitched stage spans) is offered to it on completion.
	// Zero-value fields get the obs.TraceStoreConfig defaults.
	Trace obs.TraceStoreConfig

	// Obs is the metrics registry the proxy instruments itself into; nil
	// gets a private registry. Served (merged with the fleet's) at /metrics.
	Obs *obs.Registry
	// Logger receives structured events (backend state flips, failovers).
	// Nil discards them.
	Logger *slog.Logger
	// EnablePprof mounts /debug/pprof/ on the proxy mux.
	EnablePprof bool
	// HTTP overrides the forwarding client (tests); nil builds one from
	// Timeout.
	HTTP *http.Client
}

// Proxy is the routing front tier. Create with New, start health probing
// with Start, and serve it as an http.Handler.
type Proxy struct {
	cfg      Config
	backends []*Backend
	ring     *ring
	health   *health
	client   *http.Client
	mux      *http.ServeMux
	reg      *obs.Registry
	log      *slog.Logger

	totalInflight atomic.Int64

	// sticky maps request ids of proxied predictions to the backend that
	// served them, so a later POST /observe lands on the process holding
	// the pending entry. Bounded FIFO, like serve's own pending map.
	stickyMu    sync.Mutex
	sticky      map[string]*Backend
	stickyOrder []string

	served, shed, failed *obs.Counter
	retries, failovers   *obs.Counter
	rehomed              *obs.Counter
	scrapeErrors         *obs.Counter
	stickyMiss           *obs.Counter

	// Self-latency instrumentation: where the proxy's own tail lives —
	// end-to-end by outcome, per forward attempt, and backoff waits.
	latServed, latShed, latFailed *obs.Histogram
	attemptOK, attemptErr         *obs.Histogram
	backoffWait                   *obs.Histogram

	// traces retains completed span trees with tail-based sampling,
	// served at GET /traces and GET /traces/{id}.
	traces *obs.TraceStore

	// wire is the binary-protocol front, built lazily by ServeWire.
	wire     *wireFront
	wireOnce sync.Once

	healthCancel         context.CancelFunc
	healthDone           chan struct{}
	startOnce, closeOnce sync.Once
}

// New builds a proxy over cfg.Backends. It panics on an empty backend
// list — a front tier with nothing behind it is a configuration error,
// not a runtime state.
func New(cfg Config) *Proxy {
	if len(cfg.Backends) == 0 {
		panic("proxy: no backends configured")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.LoadFactor == 0 {
		cfg.LoadFactor = 1.25
	}
	if cfg.Retries <= 0 {
		cfg.Retries = len(cfg.Backends) - 1
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 256 * len(cfg.Backends)
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = 2 * time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 2
	}
	if cfg.RiseAfter <= 0 {
		cfg.RiseAfter = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.PendingCap <= 0 {
		cfg.PendingCap = 16384
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = serve.DefaultMaxBodyBytes
	}
	if len(cfg.WireBackends) > 0 && len(cfg.WireBackends) != len(cfg.Backends) {
		panic("proxy: WireBackends must parallel Backends one-to-one")
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.DiscardLogger()
	}
	client := cfg.HTTP
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	p := &Proxy{
		cfg:    cfg,
		client: client,
		reg:    reg,
		log:    logger,
		sticky: make(map[string]*Backend),
	}
	p.served = reg.Counter("env2vec_proxy_requests_total", "Proxied requests by outcome.", obs.Labels{"outcome": "served"})
	p.shed = reg.Counter("env2vec_proxy_requests_total", "Proxied requests by outcome.", obs.Labels{"outcome": "shed"})
	p.failed = reg.Counter("env2vec_proxy_requests_total", "Proxied requests by outcome.", obs.Labels{"outcome": "failed"})
	p.retries = reg.Counter("env2vec_proxy_retries_total", "Forward attempts beyond a request's first.", nil)
	p.failovers = reg.Counter("env2vec_proxy_failovers_total", "Requests served by a backend other than their ring home.", nil)
	p.rehomed = reg.Counter("env2vec_proxy_backend_transitions_total", "Backend liveness flips observed by the health checker.", nil)
	p.scrapeErrors = reg.Counter("env2vec_proxy_fleet_scrape_errors_total", "Backend /metrics//quality scrapes that failed during aggregation.", nil)
	p.stickyMiss = reg.Counter("env2vec_proxy_observe_misses_total", "POST /observe requests whose request id had no recorded backend.", nil)
	reg.GaugeFunc("env2vec_proxy_inflight", "Requests currently being forwarded, pool-wide.", nil, func() float64 { return float64(p.totalInflight.Load()) })
	reg.Gauge("env2vec_proxy_inflight_capacity", "Pool-wide in-flight bound; overflow is shed with 429.", nil).Set(float64(cfg.MaxInflight))
	latHelp := "Proxy self-latency, admission to response, by outcome."
	p.latServed = reg.Histogram("env2vec_proxy_request_latency_ms", latHelp, obs.DefLatencyBuckets, obs.Labels{"outcome": "served"})
	p.latShed = reg.Histogram("env2vec_proxy_request_latency_ms", latHelp, obs.DefLatencyBuckets, obs.Labels{"outcome": "shed"})
	p.latFailed = reg.Histogram("env2vec_proxy_request_latency_ms", latHelp, obs.DefLatencyBuckets, obs.Labels{"outcome": "failed"})
	attHelp := "Per-forward-attempt latency, by transport outcome."
	p.attemptOK = reg.Histogram("env2vec_proxy_attempt_latency_ms", attHelp, obs.DefLatencyBuckets, obs.Labels{"outcome": "ok"})
	p.attemptErr = reg.Histogram("env2vec_proxy_attempt_latency_ms", attHelp, obs.DefLatencyBuckets, obs.Labels{"outcome": "error"})
	p.backoffWait = reg.Histogram("env2vec_proxy_backoff_wait_ms", "Backoff slept between one request's forward attempts.", obs.DefLatencyBuckets, nil)
	p.traces = obs.NewTraceStore(cfg.Trace, reg)

	for i, url := range cfg.Backends {
		url = strings.TrimRight(url, "/")
		b := &Backend{URL: url, name: backendName(url)}
		if len(cfg.WireBackends) > 0 {
			b.wireAddr = cfg.WireBackends[i]
		}
		b.alive.Store(true) // optimistic until the first probe pass
		lbls := obs.Labels{"backend": b.name}
		b.latency = reg.Histogram("env2vec_proxy_backend_latency_ms", "Forward latency per backend.", obs.DefLatencyBuckets, lbls)
		b.served = reg.Counter("env2vec_proxy_backend_requests_total", "Requests forwarded per backend, by outcome.", obs.Labels{"backend": b.name, "outcome": "served"})
		b.failed = reg.Counter("env2vec_proxy_backend_requests_total", "Requests forwarded per backend, by outcome.", obs.Labels{"backend": b.name, "outcome": "failed"})
		b.probes = reg.Counter("env2vec_proxy_backend_probes_total", "Health probes per backend.", lbls)
		reg.GaugeFunc("env2vec_proxy_backend_up", "1 when the backend is in rotation.", lbls, func() float64 {
			if b.Alive() {
				return 1
			}
			return 0
		})
		reg.GaugeFunc("env2vec_proxy_backend_inflight", "In-flight forwards per backend.", lbls, func() float64 { return float64(b.Inflight()) })
		p.backends = append(p.backends, b)
	}
	p.ring = newRing(p.backends, cfg.VNodes)
	p.health = &health{
		backends:    p.backends,
		client:      client,
		interval:    cfg.CheckInterval,
		fail:        cfg.FailAfter,
		rise:        cfg.RiseAfter,
		transitions: p.rehomed,
		onChange: func(b *Backend, alive bool) {
			if alive {
				logger.Info("backend rejoined; its environment slice re-homes back", "backend", b.name)
			} else {
				logger.Warn("backend down; its environment slice re-homes clockwise", "backend", b.name)
			}
		},
	}

	p.mux = http.NewServeMux()
	p.mux.HandleFunc("/predict", p.handlePredict)
	p.mux.HandleFunc("/observe", p.handleObserve)
	p.mux.HandleFunc("/quality", p.handleQuality)
	p.mux.HandleFunc("/metrics", p.handleMetrics)
	p.mux.HandleFunc("/statz", p.handleStatz)
	p.mux.HandleFunc("/fleet", p.handleFleet)
	p.mux.HandleFunc("/healthz", p.handleHealthz)
	p.mux.HandleFunc("/readyz", p.handleHealthz) // same truth at the proxy: routable backends exist
	p.mux.Handle("/traces", p.traces)
	p.mux.Handle("/traces/", p.traces)
	if cfg.EnablePprof {
		obs.RegisterPprof(p.mux)
	}
	return p
}

// Start launches the health-probe loop (an immediate pass, then every
// CheckInterval). Without Start the proxy still routes, optimistically
// treating every backend as alive until forwards fail.
func (p *Proxy) Start() {
	p.startOnce.Do(func() {
		ctx, cancel := context.WithCancel(context.Background())
		p.healthCancel = cancel
		p.healthDone = make(chan struct{})
		go func() {
			defer close(p.healthDone)
			p.health.run(ctx)
		}()
	})
}

// Close stops the health loop and tears down the wire front (listeners,
// spliced streams, idle backend connections). In-flight HTTP forwards
// complete on their own.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		if p.healthCancel != nil {
			p.healthCancel()
			<-p.healthDone
		}
		p.closeWire()
	})
}

// Probe runs one synchronous health pass (tests and boot paths that want
// deterministic convergence before serving).
func (p *Proxy) Probe() { p.health.probe(context.Background()) }

// Backends exposes the pool (read-only by convention).
func (p *Proxy) Backends() []*Backend { return p.backends }

// Metrics returns the proxy's own metrics registry.
func (p *Proxy) Metrics() *obs.Registry { return p.reg }

// Traces returns the proxy's tail-sampled trace store.
func (p *Proxy) Traces() *obs.TraceStore { return p.traces }

// Home returns the ring-home backend for an environment key — the
// deterministic owner when every backend is alive. Tests and rebalancing
// tooling use it; the request path walks the ring directly.
func (p *Proxy) Home(key string) *Backend {
	var home *Backend
	p.ring.walk(key, func(b *Backend) bool { home = b; return false })
	return home
}

// route returns the preference-ordered live candidates for key, at most
// 1+Retries of them: the key's home first (bounded-load permitting), then
// its deterministic failover order. A backend past the load bound is
// demoted, not dropped — affinity yields to survival, never to a 5xx.
func (p *Proxy) route(key string) []*Backend {
	alive := p.ring.order(key)
	n := 0
	for _, b := range alive {
		if b.Alive() {
			alive[n] = b
			n++
		}
	}
	alive = alive[:n]
	if len(alive) == 0 {
		return nil
	}
	// Bounded load (CHWBL): spill a key off its home only while admitting
	// it would push the home past c·avg — the overflow target is the next
	// backend clockwise, so spill is deterministic too.
	if c := p.cfg.LoadFactor; c > 1 {
		bound := int64(math.Ceil(c * float64(p.totalInflight.Load()+1) / float64(len(alive))))
		for i, b := range alive {
			if b.Inflight()+1 <= bound {
				if i > 0 {
					alive[0], alive[i] = alive[i], alive[0]
				}
				break
			}
		}
	}
	if max := 1 + p.cfg.Retries; len(alive) > max {
		alive = alive[:max]
	}
	return alive
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) { p.mux.ServeHTTP(w, r) }

// predictKey is the slice of the /predict body the router needs.
type predictKey struct {
	Testbed   string `json:"testbed"`
	SUT       string `json:"sut"`
	Testcase  string `json:"testcase"`
	Build     string `json:"build"`
	RequestID string `json:"request_id"`
}

func (p *Proxy) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := p.readBody(w, r)
	if err != nil {
		status := http.StatusBadRequest
		if isBodyTooLarge(err) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, "read body: "+err.Error(), status)
		return
	}
	var key predictKey
	if err := json.Unmarshal(body, &key); err != nil {
		http.Error(w, "invalid request: "+err.Error(), http.StatusBadRequest)
		return
	}
	env := envmeta.Environment{Testbed: key.Testbed, SUT: key.SUT, Testcase: key.Testcase, Build: key.Build}
	reqID := r.Header.Get(obs.RequestIDHeader)
	if reqID == "" {
		reqID = key.RequestID
	}
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	p.forward(w, env.String(), "/predict", body, reqID, func(b *Backend) {
		p.rememberSticky(reqID, b)
	})
}

func (p *Proxy) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	body, err := p.readBody(w, r)
	if err != nil {
		status := http.StatusBadRequest
		if isBodyTooLarge(err) {
			status = http.StatusRequestEntityTooLarge
		}
		jsonError(w, status, "read body: "+err.Error())
		return
	}
	var req struct {
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		jsonError(w, http.StatusBadRequest, "invalid request: "+err.Error())
		return
	}
	b, ok := p.takeSticky(req.RequestID)
	if !ok || !b.Alive() {
		// The prediction's backend is unknown (evicted, proxy restart) or
		// gone; its pending entry died with it. 404 matches the backend's
		// own unknown-id answer.
		p.stickyMiss.Inc()
		jsonError(w, http.StatusNotFound, "unknown or expired request id")
		return
	}
	status, hdr, respBody, err := p.attempt(b, "/observe", body, req.RequestID, "")
	if err != nil {
		jsonError(w, http.StatusBadGateway, "backend "+b.name+": "+err.Error())
		return
	}
	relay(w, status, hdr, respBody, b)
}

// forward routes one request along its ring candidates with the retry
// budget and exponential backoff, relaying the first conclusive response.
// onServed runs with the backend that produced a 2xx (sticky bookkeeping).
//
// Every terminal path records a trace: a proxy.request root span, one
// proxy.attempt child per forward try (backend, attempt number, backoff
// wait, outcome), and — on a conclusive answer — the backend's own stage
// spans stitched out of its response body, parented onto the attempt that
// carried them via the traceparent header.
func (p *Proxy) forward(w http.ResponseWriter, key, path string, body []byte, reqID string, onServed func(*Backend)) {
	t0 := time.Now()
	rootID := obs.NewSpanID()
	var spans []obs.Span
	attempts := 0
	finish := func(outcome, errMsg string) {
		dur := obs.MS(time.Since(t0))
		root := obs.Span{
			TraceID: reqID, SpanID: rootID, Name: "proxy.request",
			StartUnixUS: t0.UnixMicro(), DurationMS: dur,
		}
		root.SetAttr("outcome", outcome)
		root.SetAttr("path", path)
		if errMsg != "" {
			root.SetAttr("error", errMsg)
		}
		switch outcome {
		case obs.OutcomeServed:
			p.latServed.ObserveExemplar(dur, reqID)
		case obs.OutcomeShed:
			p.latShed.ObserveExemplar(dur, reqID)
		default:
			p.latFailed.ObserveExemplar(dur, reqID)
		}
		p.traces.Add(obs.Trace{
			TraceID: reqID, Root: root.Name, Outcome: outcome, Retried: attempts > 1,
			StartUnixUS: root.StartUnixUS, DurationMS: dur,
			Spans: append([]obs.Span{root}, spans...),
		})
	}
	if p.totalInflight.Load() >= int64(p.cfg.MaxInflight) {
		p.shed.Inc()
		finish(obs.OutcomeShed, "proxy: pool saturated")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "proxy: pool saturated", http.StatusTooManyRequests)
		return
	}
	candidates := p.route(key)
	if len(candidates) == 0 {
		p.failed.Inc()
		finish(obs.OutcomeFailed, "proxy: no live backends")
		http.Error(w, "proxy: no live backends", http.StatusServiceUnavailable)
		return
	}
	backoff := p.cfg.RetryBackoff
	var lastStatus int
	var lastErr error
	for i, b := range candidates {
		waited := time.Duration(0)
		if i > 0 {
			p.retries.Inc()
			waited = backoff
			time.Sleep(backoff)
			p.backoffWait.Observe(obs.MS(waited))
			backoff *= 2
		}
		attempts++
		span := obs.Span{TraceID: reqID, SpanID: obs.NewSpanID(), ParentID: rootID, Name: "proxy.attempt"}
		span.SetAttr("backend", b.name)
		span.SetAttr("attempt", strconv.Itoa(attempts))
		if waited > 0 {
			span.SetAttr("backoff_wait_ms", strconv.FormatFloat(obs.MS(waited), 'g', -1, 64))
		}
		aStart := time.Now()
		span.StartUnixUS = aStart.UnixMicro()
		status, hdr, respBody, err := p.attempt(b, path, body, reqID, span.SpanID)
		span.DurationMS = obs.MS(time.Since(aStart))
		if err != nil {
			// Transport-level failure: the backend is suspect. Report it to
			// the health state machine so the ring converges faster than the
			// next probe tick, and try the next candidate.
			span.SetAttr("outcome", "failed")
			span.SetAttr("error", err.Error())
			spans = append(spans, span)
			p.health.reportFailure(b)
			lastErr = err
			p.log.Debug("forward failed, failing over", "backend", b.name, "path", path, "err", err)
			continue
		}
		if retryableStatus(status) {
			// 429: the backend's queue is full — spill clockwise (the
			// bounded-load escape hatch). 502/503: it is up but cannot serve
			// (no model yet, shutting down); the next candidate might.
			if status == http.StatusTooManyRequests {
				span.SetAttr("outcome", "shed")
			} else {
				span.SetAttr("outcome", "refused")
			}
			span.SetAttr("status", strconv.Itoa(status))
			spans = append(spans, span)
			lastStatus = status
			p.log.Debug("backend refused, failing over", "backend", b.name, "status", status)
			continue
		}
		outcome := obs.OutcomeServed
		if i > 0 {
			p.failovers.Inc()
			span.SetAttr("outcome", "failover")
		} else {
			span.SetAttr("outcome", "served")
		}
		if status < 300 {
			p.served.Inc()
			b.served.Inc()
			if onServed != nil {
				onServed(b)
			}
		} else {
			p.failed.Inc() // conclusive client error (400 etc.) — relay, don't mask
			outcome = obs.OutcomeFailed
			span.SetAttr("outcome", "error")
			span.SetAttr("status", strconv.Itoa(status))
		}
		spans = append(spans, span)
		spans = append(spans, backendSpans(respBody)...)
		finish(outcome, "")
		relay(w, status, hdr, respBody, b)
		return
	}
	// Retry budget exhausted.
	p.failed.Inc()
	switch {
	case lastStatus == http.StatusTooManyRequests:
		p.shed.Inc()
		finish(obs.OutcomeShed, "proxy: fleet saturated")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "proxy: fleet saturated", http.StatusTooManyRequests)
	case lastStatus != 0:
		finish(obs.OutcomeFailed, fmt.Sprintf("all candidates refused (last status %d)", lastStatus))
		http.Error(w, fmt.Sprintf("proxy: all candidates refused (last status %d)", lastStatus), http.StatusServiceUnavailable)
	default:
		finish(obs.OutcomeFailed, "all candidates unreachable: "+lastErr.Error())
		http.Error(w, "proxy: all candidates unreachable: "+lastErr.Error(), http.StatusBadGateway)
	}
}

// backendSpans extracts the backend's span tree from a forwarded response
// body. Nil on bodies without one (errors, /observe) — stitching is
// best-effort by design.
func backendSpans(body []byte) []obs.Span {
	var resp struct {
		Trace struct {
			Spans []obs.Span `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil
	}
	return resp.Trace.Spans
}

// attempt forwards one request to one backend, returning its status,
// headers of interest, and body. Transport errors are returned as err.
// parentSpanID, when set, rides the traceparent header so the backend's
// spans parent onto this attempt.
func (p *Proxy) attempt(b *Backend, path string, body []byte, reqID, parentSpanID string) (int, http.Header, []byte, error) {
	b.inflight.Add(1)
	p.totalInflight.Add(1)
	defer func() {
		b.inflight.Add(-1)
		p.totalInflight.Add(-1)
	}()
	req, err := http.NewRequest(http.MethodPost, b.URL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set(obs.RequestIDHeader, reqID)
		if parentSpanID != "" {
			req.Header.Set(obs.TraceParentHeader, obs.FormatTraceParent(reqID, parentSpanID))
		}
	}
	t0 := time.Now()
	resp, err := p.client.Do(req)
	if err != nil {
		b.failed.Inc()
		p.attemptErr.Observe(obs.MS(time.Since(t0)))
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	// Error-status bodies are relayed for their message, nothing more — a
	// misbehaving backend must not be able to balloon the proxy's memory
	// with a gigabyte of 500 page. Success bodies carry predictions and
	// span trees and are read in full.
	bodyReader := io.Reader(resp.Body)
	if resp.StatusCode >= 300 {
		bodyReader = io.LimitReader(resp.Body, maxErrorBodyBytes)
	}
	respBody, err := io.ReadAll(bodyReader)
	if err != nil {
		b.failed.Inc()
		p.attemptErr.Observe(obs.MS(time.Since(t0)))
		return 0, nil, nil, err
	}
	ms := obs.MS(time.Since(t0))
	p.attemptOK.Observe(ms)
	b.latency.ObserveExemplar(ms, reqID)
	return resp.StatusCode, resp.Header, respBody, nil
}

// retryableStatus reports whether a backend status means "try the next
// candidate": overload (429) and transient unavailability (502/503/504).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// relay writes a backend response through to the client, preserving the
// trace header and stamping which backend served it.
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte, b *Backend) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if id := hdr.Get(obs.RequestIDHeader); id != "" {
		w.Header().Set(obs.RequestIDHeader, id)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Backend", b.name)
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// handleStatz forwards /statz to the first live backend: load generators
// discover the served model's shape through the proxy exactly as they
// would against a single instance. The fleet's own state lives at /fleet.
func (p *Proxy) handleStatz(w http.ResponseWriter, r *http.Request) {
	for _, b := range p.backends {
		if !b.Alive() {
			continue
		}
		resp, err := p.client.Get(b.URL + "/statz")
		if err != nil {
			p.health.reportFailure(b)
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			continue
		}
		relay(w, resp.StatusCode, resp.Header, body, b)
		return
	}
	jsonError(w, http.StatusServiceUnavailable, "no live backends")
}

// FleetState is the GET /fleet payload: the proxy's routing view.
type FleetState struct {
	Backends  []BackendState `json:"backends"`
	Live      int            `json:"live"`
	Inflight  int64          `json:"inflight"`
	Served    uint64         `json:"served"`
	Shed      uint64         `json:"shed"`
	Failed    uint64         `json:"failed"`
	Retries   uint64         `json:"retries"`
	Failovers uint64         `json:"failovers"`
}

// BackendState is one backend's routing view.
type BackendState struct {
	Backend  string  `json:"backend"`
	URL      string  `json:"url"`
	Alive    bool    `json:"alive"`
	Inflight int64   `json:"inflight"`
	Served   uint64  `json:"served"`
	Failed   uint64  `json:"failed"`
	P50MS    float64 `json:"p50_latency_ms"`
	P99MS    float64 `json:"p99_latency_ms"`
}

func (p *Proxy) handleFleet(w http.ResponseWriter, r *http.Request) {
	st := FleetState{
		Inflight:  p.totalInflight.Load(),
		Served:    p.served.Value(),
		Shed:      p.shed.Value(),
		Failed:    p.failed.Value(),
		Retries:   p.retries.Value(),
		Failovers: p.failovers.Value(),
	}
	for _, b := range p.backends {
		qs := b.latency.Quantiles(0.50, 0.99)
		bs := BackendState{
			Backend: b.name, URL: b.URL, Alive: b.Alive(),
			Inflight: b.Inflight(), Served: b.served.Value(), Failed: b.failed.Value(),
			P50MS: qs[0], P99MS: qs[1],
		}
		if bs.Alive {
			st.Live++
		}
		st.Backends = append(st.Backends, bs)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	for _, b := range p.backends {
		if b.Alive() {
			fmt.Fprintln(w, "ok")
			return
		}
	}
	http.Error(w, "no live backends", http.StatusServiceUnavailable)
}

// rememberSticky records which backend served a prediction id (bounded
// FIFO), so the ground truth for it can find the same pending map.
func (p *Proxy) rememberSticky(id string, b *Backend) {
	p.stickyMu.Lock()
	defer p.stickyMu.Unlock()
	if _, exists := p.sticky[id]; !exists {
		for len(p.sticky) >= p.cfg.PendingCap && len(p.stickyOrder) > 0 {
			old := p.stickyOrder[0]
			p.stickyOrder = p.stickyOrder[1:]
			delete(p.sticky, old)
		}
		p.stickyOrder = append(p.stickyOrder, id)
	}
	p.sticky[id] = b
}

func (p *Proxy) takeSticky(id string) (*Backend, bool) {
	p.stickyMu.Lock()
	defer p.stickyMu.Unlock()
	b, ok := p.sticky[id]
	if ok {
		delete(p.sticky, id)
	}
	return b, ok
}

// maxErrorBodyBytes caps how much of a backend's error-status body the
// proxy reads before relaying it.
const maxErrorBodyBytes = 64 << 10

// readBody drains one inbound request body under the configured cap.
// Exceeding it surfaces as *http.MaxBytesError (and MaxBytesReader has
// already stamped Connection: close on the response).
func (p *Proxy) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, p.cfg.MaxBodyBytes))
}

// isBodyTooLarge reports whether err came from MaxBytesReader's cap.
func isBodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	return errors.As(err, &mbe)
}

// jsonError mirrors serve's error body shape.
func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
