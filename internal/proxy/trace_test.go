package proxy

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"env2vec/internal/obs"
)

// keepAllTraces is the store config trace tests run with, so assertions
// never ride the sampling coin.
func keepAllTraces() obs.TraceStoreConfig {
	return obs.TraceStoreConfig{Capacity: 64, SampleRate: 1}
}

// newEchoBackend fakes an e2vserve that honours the tracing contract: it
// parses the inbound traceparent header and answers /predict with a trace
// block whose span parents onto the caller's attempt span — exactly what
// the proxy must stitch.
func newEchoBackend(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ready") })
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		traceID, parent, _ := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader))
		sp := obs.Span{TraceID: traceID, SpanID: obs.NewSpanID(), ParentID: parent, Name: "serve.request", DurationMS: 1}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"prediction": 42,
			"trace":      map[string]any{"spans": []obs.Span{sp}},
		})
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// spansByName indexes a stored trace's spans; duplicate names keep the
// later span, which trace assertions here never rely on.
func spansByName(tr obs.Trace) map[string]obs.Span {
	m := map[string]obs.Span{}
	for _, sp := range tr.Spans {
		m[sp.Name] = sp
	}
	return m
}

// TestProxyTraceStitchesBackendSpans is the cross-process tentpole
// assertion at unit scope: one proxied request yields one stored trace
// holding the proxy root, the forward attempt, and the backend's span
// parented onto that attempt via the traceparent header.
func TestProxyTraceStitchesBackendSpans(t *testing.T) {
	be := newEchoBackend(t)
	p := New(Config{Backends: []string{be.URL}, Trace: keepAllTraces(), RetryBackoff: time.Microsecond})
	t.Cleanup(p.Close)

	const reqID = "feedface00000001"
	w := doPredict(t, p, "B1", map[string]string{obs.RequestIDHeader: reqID})
	if w.Code != http.StatusOK {
		t.Fatalf("predict: status %d: %s", w.Code, w.Body.String())
	}
	tr, ok := p.Traces().Get(reqID)
	if !ok {
		t.Fatal("proxied request left no trace in the store")
	}
	if tr.Outcome != obs.OutcomeServed || tr.Retried {
		t.Fatalf("trace outcome=%q retried=%v, want served, un-retried", tr.Outcome, tr.Retried)
	}
	byName := spansByName(tr)
	root, ok := byName["proxy.request"]
	if !ok || root.ParentID != "" {
		t.Fatalf("missing or non-root proxy.request span: %+v", tr.Spans)
	}
	att, ok := byName["proxy.attempt"]
	if !ok {
		t.Fatalf("no proxy.attempt span: %+v", tr.Spans)
	}
	if att.ParentID != root.SpanID {
		t.Fatalf("attempt parent = %q, want root %q", att.ParentID, root.SpanID)
	}
	if att.Attrs["backend"] == "" || att.Attrs["attempt"] != "1" || att.Attrs["outcome"] != "served" {
		t.Fatalf("attempt attrs incomplete: %+v", att.Attrs)
	}
	stitched, ok := byName["serve.request"]
	if !ok {
		t.Fatalf("backend span not stitched into the trace: %+v", tr.Spans)
	}
	if stitched.TraceID != reqID || stitched.ParentID != att.SpanID {
		t.Fatalf("stitched span trace=%q parent=%q, want trace %q parented on attempt %q",
			stitched.TraceID, stitched.ParentID, reqID, att.SpanID)
	}

	// And the tree is retrievable over HTTP on the proxy itself.
	hw := httptest.NewRecorder()
	p.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/traces/"+reqID, nil))
	if hw.Code != http.StatusOK {
		t.Fatalf("GET /traces/{id}: status %d", hw.Code)
	}
	var fetched obs.Trace
	if err := json.NewDecoder(hw.Body).Decode(&fetched); err != nil || len(fetched.Spans) != len(tr.Spans) {
		t.Fatalf("fetched trace = %+v, err %v", fetched, err)
	}
}

// TestProxyFailoverTraceSpans: a refused home plus a serving survivor
// leaves a retried trace with one span per attempt — the first marked
// refused, the second marked failover with its backoff wait recorded.
func TestProxyFailoverTraceSpans(t *testing.T) {
	a, b := newStub(t), newStub(t)
	p := newTestProxy(t, Config{Trace: keepAllTraces()}, a, b)
	a.mu.Lock()
	a.refuse = 1 // home 503s once; the survivor serves
	a.mu.Unlock()

	var build string
	for i := 0; ; i++ {
		build = fmt.Sprintf("B%d", i)
		if p.Home(envKey(build)) == p.Backends()[0] {
			break
		}
	}
	const reqID = "deadbeef00000002"
	w := doPredict(t, p, build, map[string]string{obs.RequestIDHeader: reqID})
	if w.Code != http.StatusOK {
		t.Fatalf("failover predict: status %d", w.Code)
	}
	tr, ok := p.Traces().Get(reqID)
	if !ok {
		t.Fatal("failover request left no trace")
	}
	if tr.Outcome != obs.OutcomeServed || !tr.Retried {
		t.Fatalf("trace outcome=%q retried=%v, want served + retried", tr.Outcome, tr.Retried)
	}
	var attempts []obs.Span
	for _, sp := range tr.Spans {
		if sp.Name == "proxy.attempt" {
			attempts = append(attempts, sp)
		}
	}
	if len(attempts) != 2 {
		t.Fatalf("got %d attempt spans, want 2: %+v", len(attempts), tr.Spans)
	}
	first, second := attempts[0], attempts[1]
	if first.Attrs["outcome"] != "refused" || first.Attrs["status"] != "503" {
		t.Fatalf("first attempt attrs: %+v, want refused/503", first.Attrs)
	}
	if second.Attrs["outcome"] != "failover" || second.Attrs["attempt"] != "2" || second.Attrs["backoff_wait_ms"] == "" {
		t.Fatalf("second attempt attrs: %+v, want failover, attempt=2, backoff_wait_ms set", second.Attrs)
	}
}

// TestProxyShedTraceRetained: an admission-shed request must still leave
// a (root-only) trace — the tail the sampler never drops.
func TestProxyShedTraceRetained(t *testing.T) {
	a := newStub(t)
	a.mu.Lock()
	a.delay = 300 * time.Millisecond
	a.mu.Unlock()
	p := newTestProxy(t, Config{MaxInflight: 1, Trace: keepAllTraces()}, a)

	started := make(chan struct{})
	go func() {
		close(started)
		doPredict(t, p, "B1", nil)
	}()
	<-started
	deadline := time.Now().Add(2 * time.Second)
	for p.totalInflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}
	const reqID = "cafebabe00000003"
	w := doPredict(t, p, "B1", map[string]string{obs.RequestIDHeader: reqID})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	tr, ok := p.Traces().Get(reqID)
	if !ok {
		t.Fatal("shed request left no trace")
	}
	if tr.Outcome != obs.OutcomeShed {
		t.Fatalf("trace outcome = %q, want shed", tr.Outcome)
	}
	if len(tr.Spans) != 1 || tr.Spans[0].Attrs["error"] == "" {
		t.Fatalf("shed trace should be root-only with an error attr: %+v", tr.Spans)
	}
}

// TestProxySelfLatencyMetrics: the satellite histograms land on /metrics
// with their outcome labels, alongside the trace store's counters.
func TestProxySelfLatencyMetrics(t *testing.T) {
	a := newStub(t)
	p := newTestProxy(t, Config{Trace: keepAllTraces()}, a)
	doPredict(t, p, "B1", nil)

	w := httptest.NewRecorder()
	p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := w.Body.String()
	for _, want := range []string{
		`env2vec_proxy_request_latency_ms_count{outcome="served"} 1`,
		`env2vec_proxy_attempt_latency_ms_count{outcome="ok"} 1`,
		`env2vec_proxy_backoff_wait_ms_count 0`,
		`env2vec_trace_completed_total 1`,
		`env2vec_trace_stored 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}
