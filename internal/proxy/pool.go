package proxy

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"env2vec/internal/obs"
)

// Backend is one e2vserve instance in the pool. Aliveness is owned by the
// health checker (plus passive marks from failed forwards); in-flight
// counts feed the bounded-load walk.
type Backend struct {
	URL      string // base URL, no trailing slash
	name     string // host:port, the value of the backend metric label
	wireAddr string // binary-protocol listener (host:port); "" = HTTP only

	alive    atomic.Bool
	inflight atomic.Int64

	// Health state machine, guarded by mu: consecutive probe outcomes
	// hysteresis so one flaky probe doesn't flap the ring.
	mu    sync.Mutex
	fails int
	rises int

	latency                *obs.Histogram
	served, failed, probes *obs.Counter
}

// Name returns the backend's metric label (host:port of its URL).
func (b *Backend) Name() string { return b.name }

// WireAddr returns the backend's binary-protocol address, or "" when the
// backend was configured without one.
func (b *Backend) WireAddr() string { return b.wireAddr }

// Alive reports whether the health checker currently considers the
// backend routable.
func (b *Backend) Alive() bool { return b.alive.Load() }

// Inflight returns the requests currently being forwarded to the backend.
func (b *Backend) Inflight() int64 { return b.inflight.Load() }

func backendName(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	return strings.TrimRight(s, "/")
}

// health drives the liveness state of every backend: a periodic probe of
// GET /readyz (falling back to /healthz for backends that predate the
// readiness split) with FailAfter/RiseAfter hysteresis. Forward errors
// report into the same state machine, so a crashed backend usually leaves
// the ring on the first failed request, not the next probe tick.
type health struct {
	backends []*Backend
	client   *http.Client
	interval time.Duration
	fail     int
	rise     int
	onChange func(b *Backend, alive bool)

	transitions *obs.Counter
}

// probe runs one health pass over every backend, concurrently.
func (h *health) probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range h.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			h.probeOne(ctx, b)
		}(b)
	}
	wg.Wait()
}

func (h *health) probeOne(ctx context.Context, b *Backend) {
	b.probes.Inc()
	if h.ready(ctx, b) {
		h.reportSuccess(b)
	} else {
		h.reportFailure(b)
	}
}

// ready asks the backend whether it can take traffic: /readyz when the
// backend has one, /healthz otherwise (pre-readiness-split back-compat).
func (h *health) ready(ctx context.Context, b *Backend) bool {
	code, err := h.get(ctx, b.URL+"/readyz")
	if err != nil {
		return false
	}
	if code == http.StatusNotFound || code == http.StatusMethodNotAllowed {
		code, err = h.get(ctx, b.URL+"/healthz")
		if err != nil {
			return false
		}
	}
	return code == http.StatusOK
}

func (h *health) get(ctx context.Context, url string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// reportSuccess records a healthy signal; RiseAfter consecutive successes
// bring a dead backend back (and its environment slice with it).
func (h *health) reportSuccess(b *Backend) {
	b.mu.Lock()
	b.fails = 0
	b.rises++
	flip := !b.alive.Load() && b.rises >= h.rise
	if flip {
		b.alive.Store(true)
	}
	b.mu.Unlock()
	if flip {
		h.transitions.Inc()
		if h.onChange != nil {
			h.onChange(b, true)
		}
	}
}

// reportFailure records an unhealthy signal (probe or forward failure);
// FailAfter consecutive failures take the backend out of rotation.
func (h *health) reportFailure(b *Backend) {
	b.mu.Lock()
	b.rises = 0
	b.fails++
	flip := b.alive.Load() && b.fails >= h.fail
	if flip {
		b.alive.Store(false)
	}
	b.mu.Unlock()
	if flip {
		h.transitions.Inc()
		if h.onChange != nil {
			h.onChange(b, false)
		}
	}
}

// run probes until ctx is cancelled, starting with an immediate pass so
// the proxy converges on real aliveness within one interval of boot.
func (h *health) run(ctx context.Context) {
	h.probe(ctx)
	ticker := time.NewTicker(h.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			h.probe(ctx)
		}
	}
}
