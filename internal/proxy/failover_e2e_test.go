package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/obs"
	"env2vec/internal/quality"
	"env2vec/internal/serve"
)

// e2eBackend hosts a real serve.Server (quality monitor on) behind httptest.
type e2eBackend struct {
	s   *serve.Server
	srv *httptest.Server
}

func newE2EBackend(t *testing.T, seed int64) *e2eBackend {
	t.Helper()
	cfg := core.Config{In: 3, Hidden: 8, GRUHidden: 4, EmbedDim: 3, Window: 2, Seed: seed}
	schema := envmeta.NewSchema()
	schema.Observe(envmeta.Environment{Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "B1"})
	schema.Freeze()
	b := &serve.Bundle{
		Name: "test", Version: 1,
		Model:    core.New(cfg, schema),
		Schema:   schema,
		YScale:   dataset.YScaler{Mu: 50, Sigma: 10},
		Baseline: &quality.Baseline{Mu: 0, Sigma: 5, Samples: 100},
	}
	s := serve.New(serve.Config{
		MaxBatch: 8, MaxLinger: time.Millisecond, QueueDepth: 256, Workers: 2,
		Quality: &quality.Config{},
	})
	t.Cleanup(s.Close)
	s.SetBundle(b)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return &e2eBackend{s: s, srv: srv}
}

// TestE2EStitchedTraceAcrossProcesses is the tracing acceptance test: one
// request through proxy → real e2vserve yields one trace at the proxy's
// GET /traces/{id} holding the proxy root, the forward attempt, and the
// backend's serve.request root with its four stage spans — every parent
// edge intact across the process boundary.
func TestE2EStitchedTraceAcrossProcesses(t *testing.T) {
	be := newE2EBackend(t, 3)
	p := New(Config{
		Backends: []string{be.srv.URL},
		Trace:    obs.TraceStoreConfig{Capacity: 16, SampleRate: 1},
	})
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()

	const reqID = "0123456789abcdef"
	req, _ := http.NewRequest(http.MethodPost, front.URL+"/predict",
		bytes.NewReader([]byte(`{"cf":[1,2,3],"window":[50,51],"testbed":"tb1","sut":"fw","testcase":"load","build":"B1"}`)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d", resp.StatusCode)
	}

	tResp, err := http.Get(front.URL + "/traces/" + reqID)
	if err != nil {
		t.Fatal(err)
	}
	defer tResp.Body.Close()
	if tResp.StatusCode != http.StatusOK {
		t.Fatalf("GET /traces/%s: status %d", reqID, tResp.StatusCode)
	}
	var tr obs.Trace
	if err := json.NewDecoder(tResp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.Span{}
	for _, sp := range tr.Spans {
		if sp.TraceID != reqID {
			t.Fatalf("span %s carries trace id %q, want %q", sp.Name, sp.TraceID, reqID)
		}
		byName[sp.Name] = sp
	}
	root, att, srvRoot := byName["proxy.request"], byName["proxy.attempt"], byName["serve.request"]
	if root.SpanID == "" || att.ParentID != root.SpanID {
		t.Fatalf("proxy tree broken: root=%+v attempt=%+v", root, att)
	}
	if srvRoot.ParentID != att.SpanID {
		t.Fatalf("backend root parents onto %q, want the attempt span %q", srvRoot.ParentID, att.SpanID)
	}
	for _, stage := range []string{"serve.queue_wait", "serve.linger", "serve.forward", "serve.encode"} {
		sp, ok := byName[stage]
		if !ok {
			t.Fatalf("stitched trace missing stage span %s: %+v", stage, tr.Spans)
		}
		if sp.ParentID != srvRoot.SpanID {
			t.Fatalf("%s parents onto %q, want serve.request %q", stage, sp.ParentID, srvRoot.SpanID)
		}
	}
}

// TestE2EKillBackendFailover is the fleet acceptance test: two real
// e2vserve backends behind the proxy, one killed mid-load. Every client
// request must still succeed within the retry budget, every environment
// must re-home onto the survivor deterministically, and the fleet /quality
// and /metrics views must reflect the surviving pool.
func TestE2EKillBackendFailover(t *testing.T) {
	b0, b1 := newE2EBackend(t, 7), newE2EBackend(t, 11)
	p := New(Config{
		Backends:     []string{b0.srv.URL, b1.srv.URL},
		FailAfter:    1, // a transport error drops the backend immediately
		RiseAfter:    1,
		LoadFactor:   1, // disable bounded-load spill: this test asserts strict affinity
		RetryBackoff: time.Millisecond,
		Timeout:      5 * time.Second,
		// Head sampling off, small capacity: only tail-remarkable traces
		// (failed, shed, retried, slow) may be retained, and the kill below
		// must not balloon the store past its bound.
		Trace: obs.TraceStoreConfig{Capacity: 32, SampleRate: -1},
	})
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	const (
		workers  = 4
		builds   = 8
		perPhase = 25 // requests per worker before and after the kill
	)
	type result struct {
		status  int
		build   string
		backend string
		body    string
	}

	runPhase := func(phase string) []result {
		var mu sync.Mutex
		var results []result
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)*31 + 1))
				for i := 0; i < perPhase; i++ {
					build := fmt.Sprintf("B%d", i%builds)
					body := fmt.Sprintf(`{"cf":[%f,%f,%f],"window":[50,51],"testbed":"tb1","sut":"fw","testcase":"load","build":%q,"actual":%f}`,
						rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), build, 50+rng.NormFloat64())
					resp, err := client.Post(front.URL+"/predict", "application/json", bytes.NewReader([]byte(body)))
					if err != nil {
						mu.Lock()
						results = append(results, result{status: -1, build: build, body: err.Error()})
						mu.Unlock()
						continue
					}
					var buf bytes.Buffer
					_, _ = buf.ReadFrom(resp.Body)
					resp.Body.Close()
					mu.Lock()
					results = append(results, result{
						status: resp.StatusCode, build: build,
						backend: resp.Header.Get("X-Backend"), body: buf.String(),
					})
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		for _, r := range results {
			if r.status != http.StatusOK {
				t.Fatalf("%s phase: request for %s got status %d (%s) — client saw a routing error",
					phase, r.build, r.status, r.body)
			}
			if r.backend == "" {
				t.Fatalf("%s phase: response missing X-Backend", phase)
			}
		}
		return results
	}

	// Phase 1: healthy pool. Affinity must be total — one home per build.
	pre := runPhase("healthy")
	homes := map[string]string{}
	for _, r := range pre {
		if prev, ok := homes[r.build]; ok && prev != r.backend {
			t.Fatalf("healthy phase: build %s served by both %s and %s", r.build, prev, r.backend)
		}
		homes[r.build] = r.backend
	}
	distinct := map[string]bool{}
	for _, h := range homes {
		distinct[h] = true
	}
	if len(distinct) != 2 {
		t.Fatalf("healthy phase: %d builds all homed on one backend — ring not spreading", builds)
	}

	// Kill backend 0 mid-fleet. In-flight requests may see the connection
	// die; the proxy's retry budget must absorb every one of them.
	b0.srv.Close()
	survivor := backendName(b1.srv.URL)

	// Phase 2: every request must land on the survivor, zero client errors.
	post := runPhase("post-kill")
	for _, r := range post {
		if r.backend != survivor {
			t.Fatalf("post-kill: build %s served by %q, want survivor %q", r.build, r.backend, survivor)
		}
	}
	if !p.Backends()[1].Alive() {
		t.Fatal("survivor marked dead")
	}
	if p.Backends()[0].Alive() {
		t.Fatal("killed backend still marked alive after failed forwards")
	}
	// Re-homing is stable: replaying any build hits the same survivor.
	for i := 0; i < builds; i++ {
		key := envKey(fmt.Sprintf("B%d", i))
		got := ""
		p.ring.walk(key, func(b *Backend) bool {
			if !b.Alive() {
				return true
			}
			got = b.Name()
			return false
		})
		if got != survivor {
			t.Fatalf("build B%d re-homed to %q, want %q", i, got, survivor)
		}
	}

	// The kill leaves its mark in the trace store: at least one retained
	// trace carries the failed attempt against the dead backend and the
	// failover attempt that served it, stitched to the survivor's own
	// stage spans — and the store stays within its capacity bound.
	ts := p.Traces()
	if got := ts.Len(); got > 32 {
		t.Fatalf("trace store holds %d traces, capacity is 32", got)
	}
	sums := ts.List(0, "", 0)
	if len(sums) == 0 {
		t.Fatal("no traces retained despite a backend killed mid-load")
	}
	var sawFailover bool
	for _, sum := range sums {
		tr, ok := ts.Get(sum.TraceID)
		if !ok {
			continue // evicted between List and Get
		}
		if tr.Outcome == obs.OutcomeServed && !tr.Retried && tr.DurationMS < 250 {
			t.Fatalf("unremarkable trace retained with head sampling off: %+v", sum)
		}
		if !tr.Retried {
			continue
		}
		var failed, failover, stitched bool
		for _, sp := range tr.Spans {
			switch {
			case sp.Name == "proxy.attempt" && sp.Attrs["outcome"] == "failed":
				failed = true
			case sp.Name == "proxy.attempt" && sp.Attrs["outcome"] == "failover":
				failover = true
			case sp.Name == "serve.request":
				stitched = true
			}
		}
		if failed && failover {
			if !stitched {
				t.Fatalf("failover trace %s missing the survivor's stitched spans: %+v", tr.TraceID, tr.Spans)
			}
			sawFailover = true
		}
	}
	if !sawFailover {
		t.Fatal("no retained trace shows a failed attempt followed by a failover attempt")
	}

	// Fleet /quality reflects the surviving pool and carries the drift
	// state fed by the ground-truth actuals above.
	resp, err := client.Get(front.URL + "/quality")
	if err != nil {
		t.Fatalf("fleet quality: %v", err)
	}
	var fq FleetQuality
	err = json.NewDecoder(resp.Body).Decode(&fq)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("fleet quality decode: %v", err)
	}
	if len(fq.Backends) != 1 || fq.Backends[0].Backend != survivor {
		t.Fatalf("fleet quality backends = %+v, want only survivor %s", fq.Backends, survivor)
	}
	if fq.Totals.Observations == 0 {
		t.Fatal("fleet quality shows zero observations despite ground-truth-bearing load")
	}
	if len(fq.Environments) == 0 {
		t.Fatal("fleet quality union is empty")
	}
	for _, es := range fq.Environments {
		if es.Backend != survivor {
			t.Fatalf("environment %s attributed to %q, want survivor %q", es.Env, es.Backend, survivor)
		}
	}

	// Fleet /metrics merges only the survivor's exposition.
	resp, err = client.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatalf("fleet metrics: %v", err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	page := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte(fmt.Sprintf("backend=%q", survivor))) {
		t.Fatalf("fleet metrics missing survivor's labelled series:\n%.2000s", page)
	}
	if !bytes.Contains(buf.Bytes(), []byte("env2vec_proxy_failovers_total")) {
		t.Fatal("fleet metrics missing the proxy's failover counter")
	}
}
