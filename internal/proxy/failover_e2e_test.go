package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/quality"
	"env2vec/internal/serve"
)

// e2eBackend hosts a real serve.Server (quality monitor on) behind httptest.
type e2eBackend struct {
	s   *serve.Server
	srv *httptest.Server
}

func newE2EBackend(t *testing.T, seed int64) *e2eBackend {
	t.Helper()
	cfg := core.Config{In: 3, Hidden: 8, GRUHidden: 4, EmbedDim: 3, Window: 2, Seed: seed}
	schema := envmeta.NewSchema()
	schema.Observe(envmeta.Environment{Testbed: "tb1", SUT: "fw", Testcase: "load", Build: "B1"})
	schema.Freeze()
	b := &serve.Bundle{
		Name: "test", Version: 1,
		Model:    core.New(cfg, schema),
		Schema:   schema,
		YScale:   dataset.YScaler{Mu: 50, Sigma: 10},
		Baseline: &quality.Baseline{Mu: 0, Sigma: 5, Samples: 100},
	}
	s := serve.New(serve.Config{
		MaxBatch: 8, MaxLinger: time.Millisecond, QueueDepth: 256, Workers: 2,
		Quality: &quality.Config{},
	})
	t.Cleanup(s.Close)
	s.SetBundle(b)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return &e2eBackend{s: s, srv: srv}
}

// TestE2EKillBackendFailover is the fleet acceptance test: two real
// e2vserve backends behind the proxy, one killed mid-load. Every client
// request must still succeed within the retry budget, every environment
// must re-home onto the survivor deterministically, and the fleet /quality
// and /metrics views must reflect the surviving pool.
func TestE2EKillBackendFailover(t *testing.T) {
	b0, b1 := newE2EBackend(t, 7), newE2EBackend(t, 11)
	p := New(Config{
		Backends:     []string{b0.srv.URL, b1.srv.URL},
		FailAfter:    1, // a transport error drops the backend immediately
		RiseAfter:    1,
		LoadFactor:   1, // disable bounded-load spill: this test asserts strict affinity
		RetryBackoff: time.Millisecond,
		Timeout:      5 * time.Second,
	})
	defer p.Close()
	front := httptest.NewServer(p)
	defer front.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	const (
		workers  = 4
		builds   = 8
		perPhase = 25 // requests per worker before and after the kill
	)
	type result struct {
		status  int
		build   string
		backend string
		body    string
	}

	runPhase := func(phase string) []result {
		var mu sync.Mutex
		var results []result
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)*31 + 1))
				for i := 0; i < perPhase; i++ {
					build := fmt.Sprintf("B%d", i%builds)
					body := fmt.Sprintf(`{"cf":[%f,%f,%f],"window":[50,51],"testbed":"tb1","sut":"fw","testcase":"load","build":%q,"actual":%f}`,
						rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), build, 50+rng.NormFloat64())
					resp, err := client.Post(front.URL+"/predict", "application/json", bytes.NewReader([]byte(body)))
					if err != nil {
						mu.Lock()
						results = append(results, result{status: -1, build: build, body: err.Error()})
						mu.Unlock()
						continue
					}
					var buf bytes.Buffer
					_, _ = buf.ReadFrom(resp.Body)
					resp.Body.Close()
					mu.Lock()
					results = append(results, result{
						status: resp.StatusCode, build: build,
						backend: resp.Header.Get("X-Backend"), body: buf.String(),
					})
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		for _, r := range results {
			if r.status != http.StatusOK {
				t.Fatalf("%s phase: request for %s got status %d (%s) — client saw a routing error",
					phase, r.build, r.status, r.body)
			}
			if r.backend == "" {
				t.Fatalf("%s phase: response missing X-Backend", phase)
			}
		}
		return results
	}

	// Phase 1: healthy pool. Affinity must be total — one home per build.
	pre := runPhase("healthy")
	homes := map[string]string{}
	for _, r := range pre {
		if prev, ok := homes[r.build]; ok && prev != r.backend {
			t.Fatalf("healthy phase: build %s served by both %s and %s", r.build, prev, r.backend)
		}
		homes[r.build] = r.backend
	}
	distinct := map[string]bool{}
	for _, h := range homes {
		distinct[h] = true
	}
	if len(distinct) != 2 {
		t.Fatalf("healthy phase: %d builds all homed on one backend — ring not spreading", builds)
	}

	// Kill backend 0 mid-fleet. In-flight requests may see the connection
	// die; the proxy's retry budget must absorb every one of them.
	b0.srv.Close()
	survivor := backendName(b1.srv.URL)

	// Phase 2: every request must land on the survivor, zero client errors.
	post := runPhase("post-kill")
	for _, r := range post {
		if r.backend != survivor {
			t.Fatalf("post-kill: build %s served by %q, want survivor %q", r.build, r.backend, survivor)
		}
	}
	if !p.Backends()[1].Alive() {
		t.Fatal("survivor marked dead")
	}
	if p.Backends()[0].Alive() {
		t.Fatal("killed backend still marked alive after failed forwards")
	}
	// Re-homing is stable: replaying any build hits the same survivor.
	for i := 0; i < builds; i++ {
		key := envKey(fmt.Sprintf("B%d", i))
		got := ""
		p.ring.walk(key, func(b *Backend) bool {
			if !b.Alive() {
				return true
			}
			got = b.Name()
			return false
		})
		if got != survivor {
			t.Fatalf("build B%d re-homed to %q, want %q", i, got, survivor)
		}
	}

	// Fleet /quality reflects the surviving pool and carries the drift
	// state fed by the ground-truth actuals above.
	resp, err := client.Get(front.URL + "/quality")
	if err != nil {
		t.Fatalf("fleet quality: %v", err)
	}
	var fq FleetQuality
	err = json.NewDecoder(resp.Body).Decode(&fq)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("fleet quality decode: %v", err)
	}
	if len(fq.Backends) != 1 || fq.Backends[0].Backend != survivor {
		t.Fatalf("fleet quality backends = %+v, want only survivor %s", fq.Backends, survivor)
	}
	if fq.Totals.Observations == 0 {
		t.Fatal("fleet quality shows zero observations despite ground-truth-bearing load")
	}
	if len(fq.Environments) == 0 {
		t.Fatal("fleet quality union is empty")
	}
	for _, es := range fq.Environments {
		if es.Backend != survivor {
			t.Fatalf("environment %s attributed to %q, want survivor %q", es.Env, es.Backend, survivor)
		}
	}

	// Fleet /metrics merges only the survivor's exposition.
	resp, err = client.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatalf("fleet metrics: %v", err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	page := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte(fmt.Sprintf("backend=%q", survivor))) {
		t.Fatalf("fleet metrics missing survivor's labelled series:\n%.2000s", page)
	}
	if !bytes.Contains(buf.Bytes(), []byte("env2vec_proxy_failovers_total")) {
		t.Fatal("fleet metrics missing the proxy's failover counter")
	}
}
