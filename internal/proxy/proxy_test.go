package proxy

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"env2vec/internal/envmeta"
	"env2vec/internal/quality"
)

// envKey renders the routing key the proxy derives for a test build —
// envmeta.Environment.String() of the tuple predictBody sends.
func envKey(build string) string {
	return envmeta.Environment{Testbed: "tb1", SUT: "fw", Testcase: "load", Build: build}.String()
}

// stub is a fake e2vserve backend: canned answers, per-path hit counters,
// and switches for the failure modes the proxy must survive.
type stub struct {
	srv                *httptest.Server
	predicts, observes atomic.Int64

	mu        sync.Mutex
	noReadyz  bool // 404 on /readyz (pre-split backend)
	notReady  bool // 503 on /readyz
	refuse    int  // next N predicts answer 503
	delay     time.Duration
	qualityJS string // /quality body (200 when set, 503 otherwise)
}

func newStub(t *testing.T) *stub {
	t.Helper()
	st := &stub{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		noRe, notRe := st.noReadyz, st.notReady
		st.mu.Unlock()
		switch {
		case noRe:
			http.NotFound(w, r)
		case notRe:
			http.Error(w, "not ready", http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, "ready")
		}
	})
	mux.HandleFunc("/predict", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		refuse, delay := st.refuse > 0, st.delay
		if st.refuse > 0 {
			st.refuse--
		}
		st.mu.Unlock()
		if delay > 0 {
			time.Sleep(delay)
		}
		if refuse {
			http.Error(w, "no model", http.StatusServiceUnavailable)
			return
		}
		st.predicts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"prediction":42}`)
	})
	mux.HandleFunc("/observe", func(w http.ResponseWriter, r *http.Request) {
		st.observes.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"quality":{}}`)
	})
	mux.HandleFunc("/quality", func(w http.ResponseWriter, r *http.Request) {
		st.mu.Lock()
		js := st.qualityJS
		st.mu.Unlock()
		if js == "" {
			http.Error(w, "quality monitor disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, js)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "# HELP demo_total d\n# TYPE demo_total counter\ndemo_total %d\n", st.predicts.Load())
	})
	mux.HandleFunc("/statz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"model":"test","model_version":1}`)
	})
	st.srv = httptest.NewServer(mux)
	t.Cleanup(st.srv.Close)
	return st
}

func newTestProxy(t *testing.T, cfg Config, stubs ...*stub) *Proxy {
	t.Helper()
	for _, s := range stubs {
		cfg.Backends = append(cfg.Backends, s.srv.URL)
	}
	cfg.RetryBackoff = time.Microsecond
	if cfg.FailAfter == 0 {
		cfg.FailAfter = 1
	}
	if cfg.RiseAfter == 0 {
		cfg.RiseAfter = 1
	}
	p := New(cfg)
	t.Cleanup(p.Close)
	return p
}

func predictBody(build string) []byte {
	return []byte(fmt.Sprintf(`{"cf":[1,2,3],"window":[50,51],"testbed":"tb1","sut":"fw","testcase":"load","build":%q}`, build))
}

func doPredict(t *testing.T, p *Proxy, build string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/predict", bytes.NewReader(predictBody(build)))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	p.ServeHTTP(w, req)
	return w
}

func TestAffinityRoutingIsStable(t *testing.T) {
	a, b := newStub(t), newStub(t)
	p := newTestProxy(t, Config{}, a, b)

	homes := map[string]string{}
	for i := 0; i < 48; i++ {
		build := fmt.Sprintf("B%d", i%16)
		w := doPredict(t, p, build, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("predict %s: status %d: %s", build, w.Code, w.Body.String())
		}
		backend := w.Header().Get("X-Backend")
		if backend == "" {
			t.Fatal("response missing X-Backend")
		}
		if prev, ok := homes[build]; ok && prev != backend {
			t.Fatalf("build %s moved from %s to %s with all backends healthy", build, prev, backend)
		}
		homes[build] = backend
	}
	if a.predicts.Load() == 0 || b.predicts.Load() == 0 {
		t.Fatalf("16 environments all hashed to one backend (a=%d b=%d) — ring not spreading",
			a.predicts.Load(), b.predicts.Load())
	}
}

func TestFailoverOnDeadBackend(t *testing.T) {
	a, b := newStub(t), newStub(t)
	p := newTestProxy(t, Config{}, a, b)

	// Find a build homed on a, then kill a.
	var build string
	for i := 0; ; i++ {
		build = fmt.Sprintf("B%d", i)
		if p.Home(envKey(build)) == p.Backends()[0] {
			break
		}
	}
	a.srv.Close()

	w := doPredict(t, p, build, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("failover predict: status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Backend"); got != p.Backends()[1].Name() {
		t.Fatalf("served by %s, want survivor %s", got, p.Backends()[1].Name())
	}
	if got := p.failovers.Value(); got < 1 {
		t.Fatalf("failovers counter = %d, want >= 1", got)
	}
	// The transport error marked a dead (FailAfter=1): next request skips it.
	if p.Backends()[0].Alive() {
		t.Fatal("dead backend still marked alive after a failed forward")
	}
	w = doPredict(t, p, build, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("post-mark predict: status %d", w.Code)
	}
}

func TestRetryableStatusFailsOver(t *testing.T) {
	a, b := newStub(t), newStub(t)
	p := newTestProxy(t, Config{}, a, b)
	var build string
	for i := 0; ; i++ {
		build = fmt.Sprintf("B%d", i)
		if p.Home(envKey(build)) == p.Backends()[0] {
			break
		}
	}
	a.mu.Lock()
	a.refuse = 1 // one 503, then healthy again
	a.mu.Unlock()
	w := doPredict(t, p, build, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover past the 503", w.Code)
	}
	if got := w.Header().Get("X-Backend"); got != p.Backends()[1].Name() {
		t.Fatalf("served by %s, want failover target %s", got, p.Backends()[1].Name())
	}
}

func TestAllBackendsRefusing503(t *testing.T) {
	a, b := newStub(t), newStub(t)
	p := newTestProxy(t, Config{}, a, b)
	a.mu.Lock()
	a.refuse = 10
	a.mu.Unlock()
	b.mu.Lock()
	b.refuse = 10
	b.mu.Unlock()
	w := doPredict(t, p, "B1", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 when every candidate refuses", w.Code)
	}
}

func TestObserveSticky(t *testing.T) {
	a, b := newStub(t), newStub(t)
	p := newTestProxy(t, Config{}, a, b)

	w := doPredict(t, p, "B3", map[string]string{"X-Request-ID": "rid-sticky-1"})
	if w.Code != http.StatusOK {
		t.Fatalf("predict: status %d", w.Code)
	}
	served := w.Header().Get("X-Backend")

	obsReq := httptest.NewRequest(http.MethodPost, "/observe", strings.NewReader(`{"request_id":"rid-sticky-1","actual":49.5}`))
	ow := httptest.NewRecorder()
	p.ServeHTTP(ow, obsReq)
	if ow.Code != http.StatusOK {
		t.Fatalf("observe: status %d: %s", ow.Code, ow.Body.String())
	}
	if got := ow.Header().Get("X-Backend"); got != served {
		t.Fatalf("observe landed on %s, prediction was served by %s", got, served)
	}
	// A second observe for the same id finds no sticky entry: 404, matching
	// the backend's own expired-id answer.
	ow2 := httptest.NewRecorder()
	p.ServeHTTP(ow2, httptest.NewRequest(http.MethodPost, "/observe", strings.NewReader(`{"request_id":"rid-sticky-1"}`)))
	if ow2.Code != http.StatusNotFound {
		t.Fatalf("replayed observe: status %d, want 404", ow2.Code)
	}
}

func TestShed429WhenSaturated(t *testing.T) {
	a := newStub(t)
	a.mu.Lock()
	a.delay = 300 * time.Millisecond
	a.mu.Unlock()
	p := newTestProxy(t, Config{MaxInflight: 1}, a)

	started := make(chan struct{})
	go func() {
		close(started)
		doPredict(t, p, "B1", nil)
	}()
	<-started
	// Wait until the first request is actually in flight.
	deadline := time.Now().Add(2 * time.Second)
	for p.totalInflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}
	w := doPredict(t, p, "B1", nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 at MaxInflight", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
}

func TestHealthProbeAndReadyzFallback(t *testing.T) {
	a, b := newStub(t), newStub(t)
	a.mu.Lock()
	a.noReadyz = true // old backend: only /healthz exists
	a.mu.Unlock()
	b.mu.Lock()
	b.notReady = true // new backend, saturated: /readyz 503
	b.mu.Unlock()
	p := newTestProxy(t, Config{}, a, b)
	p.Probe()
	if !p.Backends()[0].Alive() {
		t.Fatal("backend with only /healthz should stay alive via fallback")
	}
	if p.Backends()[1].Alive() {
		t.Fatal("backend reporting 503 on /readyz should leave rotation")
	}
	// Readiness recovers -> rejoin on the next probe pass.
	b.mu.Lock()
	b.notReady = false
	b.mu.Unlock()
	p.Probe()
	if !p.Backends()[1].Alive() {
		t.Fatal("recovered backend did not rejoin")
	}
}

func TestHealthzReflectsPool(t *testing.T) {
	a := newStub(t)
	p := newTestProxy(t, Config{}, a)
	w := httptest.NewRecorder()
	p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz with live pool: %d", w.Code)
	}
	a.srv.Close()
	p.Probe()
	w = httptest.NewRecorder()
	p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead pool: %d, want 503", w.Code)
	}
}

func TestFleetMetricsAggregation(t *testing.T) {
	a, b := newStub(t), newStub(t)
	p := newTestProxy(t, Config{}, a, b)
	doPredict(t, p, "B1", nil)

	w := httptest.NewRecorder()
	p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := w.Body.String()
	if !strings.Contains(body, "env2vec_proxy_requests_total") {
		t.Fatal("aggregated page missing the proxy's own metrics")
	}
	for _, s := range []*stub{a, b} {
		name := strings.TrimPrefix(s.srv.URL, "http://")
		if !strings.Contains(body, fmt.Sprintf("demo_total{backend=%q}", name)) {
			t.Fatalf("aggregated page missing backend %s's series:\n%s", name, body)
		}
	}
}

func TestFleetMetricsSkipsDeadAndReportsScrapeFailures(t *testing.T) {
	a, b := newStub(t), newStub(t)
	p := newTestProxy(t, Config{}, a, b)
	deadName := strings.TrimPrefix(a.srv.URL, "http://")
	a.srv.Close()
	p.Probe()

	w := httptest.NewRecorder()
	p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := w.Body.String()
	if strings.Contains(body, fmt.Sprintf("demo_total{backend=%q}", deadName)) {
		t.Fatal("dead backend's series still in the fleet page")
	}
	liveName := strings.TrimPrefix(b.srv.URL, "http://")
	if !strings.Contains(body, fmt.Sprintf("demo_total{backend=%q}", liveName)) {
		t.Fatal("live backend's series missing from the fleet page")
	}
}

func qualityJSON(t *testing.T, envs []quality.EnvSnapshot, observations uint64) string {
	t.Helper()
	js, err := json.Marshal(quality.Snapshot{Environments: envs, Observations: observations, Exceedances: 1})
	if err != nil {
		t.Fatal(err)
	}
	return string(js)
}

func TestFleetQualityUnion(t *testing.T) {
	a, b := newStub(t), newStub(t)
	// Both backends report env e1 (failover overlap): the union must keep
	// the fresher entry. e2 lives only on a.
	a.mu.Lock()
	a.qualityJS = qualityJSON(t, []quality.EnvSnapshot{
		{Env: "e1", Samples: 10, LastSeen: 100},
		{Env: "e2", Samples: 3, LastSeen: 50},
	}, 13)
	a.mu.Unlock()
	b.mu.Lock()
	b.qualityJS = qualityJSON(t, []quality.EnvSnapshot{
		{Env: "e1", Samples: 25, LastSeen: 200},
	}, 25)
	b.mu.Unlock()
	p := newTestProxy(t, Config{}, a, b)

	w := httptest.NewRecorder()
	p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/quality", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("fleet quality: status %d", w.Code)
	}
	var fq FleetQuality
	if err := json.NewDecoder(w.Body).Decode(&fq); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(fq.Backends) != 2 {
		t.Fatalf("got %d backend entries, want 2", len(fq.Backends))
	}
	if len(fq.Environments) != 2 {
		t.Fatalf("union has %d environments, want 2 (e1 deduped): %+v", len(fq.Environments), fq.Environments)
	}
	bName := strings.TrimPrefix(b.srv.URL, "http://")
	for _, es := range fq.Environments {
		if es.Env == "e1" {
			if es.Backend != bName || es.Samples != 25 {
				t.Fatalf("e1 union kept %+v, want the fresher entry from %s", es, bName)
			}
		}
	}
	if fq.Totals.Observations != 38 || fq.Totals.Exceedances != 2 {
		t.Fatalf("totals %+v, want observations=38 exceedances=2", fq.Totals)
	}
}

func TestFleetQualityScrapeFailureIsReportedNotFatal(t *testing.T) {
	a, b := newStub(t), newStub(t)
	a.mu.Lock()
	a.qualityJS = qualityJSON(t, []quality.EnvSnapshot{{Env: "e1", LastSeen: 1}}, 1)
	a.mu.Unlock()
	// b has no quality monitor: its scrape 503s but the fleet page survives.
	p := newTestProxy(t, Config{}, a, b)
	w := httptest.NewRecorder()
	p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/quality", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("fleet quality: status %d", w.Code)
	}
	var fq FleetQuality
	if err := json.NewDecoder(w.Body).Decode(&fq); err != nil {
		t.Fatal(err)
	}
	var withErr int
	for _, bq := range fq.Backends {
		if bq.Error != "" {
			withErr++
		}
	}
	if withErr != 1 {
		t.Fatalf("want exactly one backend scrape error, got %d: %+v", withErr, fq.Backends)
	}
	if len(fq.Environments) != 1 {
		t.Fatalf("healthy backend's environments missing: %+v", fq.Environments)
	}
}

func TestStatzForwardsToLiveBackend(t *testing.T) {
	a, b := newStub(t), newStub(t)
	p := newTestProxy(t, Config{}, a, b)
	a.srv.Close()
	p.Probe()
	w := httptest.NewRecorder()
	p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/statz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("statz: status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), `"model":"test"`) {
		t.Fatalf("statz body not forwarded: %s", w.Body.String())
	}
}

func TestFleetStateEndpoint(t *testing.T) {
	a, b := newStub(t), newStub(t)
	p := newTestProxy(t, Config{}, a, b)
	doPredict(t, p, "B1", nil)
	w := httptest.NewRecorder()
	p.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/fleet", nil))
	var st FleetState
	if err := json.NewDecoder(w.Body).Decode(&st); err != nil {
		t.Fatalf("decode fleet: %v", err)
	}
	if st.Live != 2 || len(st.Backends) != 2 || st.Served != 1 {
		t.Fatalf("fleet state %+v, want live=2 backends=2 served=1", st)
	}
}

func TestStickyMapBounded(t *testing.T) {
	a := newStub(t)
	p := newTestProxy(t, Config{PendingCap: 4}, a)
	for i := 0; i < 10; i++ {
		doPredict(t, p, "B1", map[string]string{"X-Request-ID": fmt.Sprintf("rid-%d", i)})
	}
	p.stickyMu.Lock()
	n := len(p.sticky)
	p.stickyMu.Unlock()
	if n > 4 {
		t.Fatalf("sticky map grew to %d entries, cap is 4", n)
	}
	// Oldest ids evicted, newest retained.
	if _, ok := p.takeSticky("rid-9"); !ok {
		t.Fatal("newest sticky entry evicted")
	}
	if _, ok := p.takeSticky("rid-0"); ok {
		t.Fatal("oldest sticky entry survived past the cap")
	}
}
