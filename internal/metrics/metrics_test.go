package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMAEMSEKnown(t *testing.T) {
	pred := []float64{1, 2, 3}
	act := []float64{2, 2, 1}
	if got := MAE(pred, act); got != 1 {
		t.Fatalf("MAE = %v", got)
	}
	if got := MSE(pred, act); math.Abs(got-5.0/3.0) > 1e-12 {
		t.Fatalf("MSE = %v", got)
	}
}

func TestPerfectPrediction(t *testing.T) {
	xs := []float64{1, 2, 3}
	if MAE(xs, xs) != 0 || MSE(xs, xs) != 0 {
		t.Fatalf("perfect prediction should give zero error")
	}
}

func TestEmptyInputs(t *testing.T) {
	if MAE(nil, nil) != 0 || MSE(nil, nil) != 0 {
		t.Fatalf("empty inputs should be 0")
	}
	if len(Errors(nil, nil)) != 0 {
		t.Fatalf("empty errors")
	}
}

func TestErrorsSigned(t *testing.T) {
	e := Errors([]float64{3, 1}, []float64{1, 3})
	if e[0] != 2 || e[1] != -2 {
		t.Fatalf("Errors = %v", e)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}

// Property: MSE ≥ MAE² (Jensen) and both are nonnegative.
func TestMetricInequalities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		p := make([]float64, n)
		a := make([]float64, n)
		for i := range p {
			p[i] = rng.NormFloat64() * 10
			a[i] = rng.NormFloat64() * 10
		}
		mae, mse := MAE(p, a), MSE(p, a)
		return mae >= 0 && mse >= mae*mae-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAlarmStats(t *testing.T) {
	s := AlarmStats{Alarms: 29, Correct: 25}
	if math.Abs(s.AT()-0.862) > 0.001 {
		t.Fatalf("A_T = %v", s.AT())
	}
	if math.Abs(s.AF()-0.138) > 0.001 {
		t.Fatalf("A_F = %v", s.AF())
	}
	if !strings.Contains(s.String(), "alarms=29") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestAlarmStatsNoAlarms(t *testing.T) {
	var s AlarmStats
	if !math.IsNaN(s.AT()) || !math.IsNaN(s.AF()) {
		t.Fatalf("no alarms should give NaN rates")
	}
}

func TestAlarmStatsAdd(t *testing.T) {
	a := AlarmStats{Alarms: 3, Correct: 2}
	a.Add(AlarmStats{Alarms: 7, Correct: 5})
	if a.Alarms != 10 || a.Correct != 7 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

// Property: A_T + A_F = 1 whenever alarms > 0, and A_T ∈ [0,1].
func TestAlarmRatesComplementary(t *testing.T) {
	f := func(alarms, correct uint8) bool {
		a := AlarmStats{Alarms: int(alarms%50) + 1}
		a.Correct = int(correct) % (a.Alarms + 1)
		at, af := a.AT(), a.AF()
		return at >= 0 && at <= 1 && math.Abs(at+af-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
