// Package metrics implements the evaluation metrics from the paper: MAE and
// MSE for resource-characterization accuracy (§4.1.2) and the true/false
// alarm rates A_T and A_F for anomaly-detection quality (§4.2.2).
package metrics

import (
	"fmt"
	"math"
)

// MAE returns the mean absolute error between predictions and targets.
func MAE(pred, actual []float64) float64 {
	checkLen(pred, actual)
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		s += math.Abs(p - actual[i])
	}
	return s / float64(len(pred))
}

// MSE returns the mean squared error between predictions and targets.
func MSE(pred, actual []float64) float64 {
	checkLen(pred, actual)
	if len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i, p := range pred {
		d := p - actual[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// Errors returns the signed prediction errors pred−actual.
func Errors(pred, actual []float64) []float64 {
	checkLen(pred, actual)
	out := make([]float64, len(pred))
	for i, p := range pred {
		out[i] = p - actual[i]
	}
	return out
}

func checkLen(pred, actual []float64) {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("metrics: length mismatch %d vs %d", len(pred), len(actual)))
	}
}

// AlarmStats aggregates alarm-quality counters for one detector
// configuration, matching a row of Table 5/6.
type AlarmStats struct {
	Alarms  int // total alarms raised
	Correct int // alarms confirmed as true positives
}

// Add accumulates another stats record.
func (a *AlarmStats) Add(b AlarmStats) {
	a.Alarms += b.Alarms
	a.Correct += b.Correct
}

// AT returns the true alarm rate N_tp/(N_tp+N_fp); NaN when no alarms were
// raised (the paper reports N/A in that case).
func (a AlarmStats) AT() float64 {
	if a.Alarms == 0 {
		return math.NaN()
	}
	return float64(a.Correct) / float64(a.Alarms)
}

// AF returns the false alarm rate 1−A_T (NaN when no alarms).
func (a AlarmStats) AF() float64 {
	at := a.AT()
	if math.IsNaN(at) {
		return math.NaN()
	}
	return 1 - at
}

// String renders the stats like a Table 5 row.
func (a AlarmStats) String() string {
	return fmt.Sprintf("alarms=%d correct=%d A_T=%.3f A_F=%.3f", a.Alarms, a.Correct, a.AT(), a.AF())
}
