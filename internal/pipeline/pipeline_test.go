package pipeline

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"env2vec/internal/anomaly"
	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/modelserver"
	"env2vec/internal/telecom"
	"env2vec/internal/tsdb"
)

func smallCorpus(t *testing.T) *telecom.Corpus {
	t.Helper()
	return telecom.Generate(telecom.SmallConfig())
}

// quickTrainerConfig keeps unit-test training fast.
func quickTrainerConfig() TrainerConfig {
	cfg := DefaultTrainerConfig(telecom.NumFeatures)
	cfg.Model.Hidden = 16
	cfg.Model.GRUHidden = 8
	cfg.Model.EmbedDim = 4
	cfg.Model.Window = 3
	cfg.Train.Epochs = 4
	cfg.Train.BatchSize = 64
	return cfg
}

func TestExporterServesCurrentStep(t *testing.T) {
	c := smallCorpus(t)
	s := c.Dataset.Series[0]
	e, err := NewExporter(s, c.Dataset.FeatureNames)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(e)
	defer srv.Close()

	get := func() string {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	first := get()
	if !strings.Contains(first, "cpu_usage") || !strings.Contains(first, "demand_mbps") {
		t.Fatalf("exposition missing metrics: %s", first)
	}
	if !e.Advance() {
		t.Fatalf("Advance failed")
	}
	if e.Pos() != 1 {
		t.Fatalf("Pos = %d", e.Pos())
	}
	second := get()
	if first == second {
		t.Fatalf("advancing should change the served values")
	}
	// Exhausting the series.
	for e.Advance() {
	}
	if e.Pos() != s.Len()-1 {
		t.Fatalf("final pos %d", e.Pos())
	}
	// Bad path → 404.
	resp, _ := http.Get(srv.URL + "/other")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad path status %d", resp.StatusCode)
	}
}

func TestNewExporterValidates(t *testing.T) {
	c := smallCorpus(t)
	s := c.Dataset.Series[0]
	if _, err := NewExporter(s, []string{"too", "few"}); err == nil {
		t.Fatalf("wrong feature-name count should error")
	}
}

func TestTrainMasksExcludedSeries(t *testing.T) {
	c := smallCorpus(t)
	exclude := map[*dataset.Series]bool{}
	for _, exec := range c.FaultTargets {
		exclude[exec.Series] = true
	}
	cfg := quickTrainerConfig()
	tr, err := Train(c.Dataset, exclude, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := c.Dataset.NumExamples(cfg.Model.Window)
	var excluded int
	for _, exec := range c.FaultTargets {
		excluded += exec.Series.Len() - cfg.Model.Window
	}
	if tr.Examples != total-excluded {
		t.Fatalf("masking wrong: %d examples, want %d", tr.Examples, total-excluded)
	}
	if tr.Model == nil || tr.Schema == nil || tr.Standardizer == nil {
		t.Fatalf("missing artifacts")
	}
}

func TestTrainErrorsWhenEverythingMasked(t *testing.T) {
	c := smallCorpus(t)
	exclude := map[*dataset.Series]bool{}
	for _, s := range c.Dataset.Series {
		exclude[s] = true
	}
	if _, err := Train(c.Dataset, exclude, quickTrainerConfig()); err == nil {
		t.Fatalf("all-masked training should error")
	}
}

func TestWorkflowDetectsInjectedFault(t *testing.T) {
	c := smallCorpus(t)
	exclude := map[*dataset.Series]bool{}
	for _, exec := range c.FaultTargets {
		exclude[exec.Series] = true
	}
	cfg := quickTrainerConfig()
	cfg.Train.Epochs = 12
	tr, err := Train(c.Dataset, exclude, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wf := NewWorkflow(tr, anomaly.Config{Gamma: 2, AbsFilter: 5})
	// Calibrate chains on their historical builds.
	for _, id := range c.ChainOrder {
		chain := c.ChainSeries[id]
		wf.CalibrateChain(id, chain[:len(chain)-1])
	}
	if _, ok := wf.ErrorModel(c.ChainOrder[0]); !ok {
		t.Fatalf("calibration missing")
	}
	totalAlarms, correct := 0, 0
	for _, exec := range c.FaultTargets {
		alarms := wf.ProcessExecution("env2vec", exec.Series)
		st := anomaly.Evaluate(alarms, exec.Series)
		totalAlarms += st.Alarms
		correct += st.Correct
	}
	if totalAlarms == 0 {
		t.Fatalf("no alarms raised on faulty executions")
	}
	if correct == 0 {
		t.Fatalf("no correct alarms among %d", totalAlarms)
	}
}

func TestWorkflowUnseenChainUsesSelfCalibration(t *testing.T) {
	c := smallCorpus(t)
	tr, err := Train(c.Dataset, nil, quickTrainerConfig())
	if err != nil {
		t.Fatal(err)
	}
	wf := NewWorkflow(tr, anomaly.Config{Gamma: 3})
	// No CalibrateChain call: must fall back to the self distribution.
	s := c.FaultTargets[0].Series
	alarms := wf.ProcessExecution("env2vec", s)
	for _, a := range alarms {
		if a.ChainID != s.ChainID {
			t.Fatalf("alarm chain wrong: %+v", a)
		}
	}
}

func TestPublishFetchModelRoundTrip(t *testing.T) {
	c := smallCorpus(t)
	cfg := quickTrainerConfig()
	tr, err := Train(c.Dataset, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := modelserver.NewRegistry()
	srv := httptest.NewServer(&modelserver.Handler{Registry: reg})
	defer srv.Close()
	client := &modelserver.Client{BaseURL: srv.URL}
	ver, err := PublishModel(client, "env2vec", tr)
	if err != nil || ver != 1 {
		t.Fatalf("publish: %d %v", ver, err)
	}
	into := core.New(cfg.Model, tr.Schema)
	ver2, err := FetchModel(client, "env2vec", into)
	if err != nil || ver2 != 1 {
		t.Fatalf("fetch: %d %v", ver2, err)
	}
	// Restored model predicts identically.
	s := c.Dataset.Series[0]
	exs := dataset.WindowExamples(s, cfg.Model.Window)
	b := dataset.ToBatch(exs, tr.Schema)
	tr.Standardizer.Apply(b.X)
	p1, p2 := tr.Model.Predict(b), into.Predict(b)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("fetched model differs at %d", i)
		}
	}
}

func TestSeriesFromTSDBAndScrapeLoop(t *testing.T) {
	c := smallCorpus(t)
	src := c.Dataset.Series[0]
	exporter, err := NewExporter(src, c.Dataset.FeatureNames)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(exporter)
	defer srv.Close()

	dir := t.TempDir()
	sd := filepath.Join(dir, "sd.json")
	target := strings.TrimPrefix(srv.URL, "http://")
	if err := tsdb.AppendSDTarget(sd, target, map[string]string{"env": "EM_0"}); err != nil {
		t.Fatal(err)
	}
	db := tsdb.New()
	scraper := tsdb.NewScraper(db, sd, time.Second)

	// Scrape every timestep of the execution (workflow step 1).
	steps := 10
	for i := 0; i < steps; i++ {
		if _, err := scraper.ScrapeOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
		if !exporter.Advance() {
			break
		}
	}
	rebuilt, err := SeriesFromTSDB(db, "EM_0", src.Env, c.Dataset.FeatureNames, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Len() != steps {
		t.Fatalf("rebuilt %d steps, want %d", rebuilt.Len(), steps)
	}
	for i := 0; i < rebuilt.Len(); i++ {
		if rebuilt.RU[i] != src.RU[i] {
			t.Fatalf("RU mismatch at %d: %v vs %v", i, rebuilt.RU[i], src.RU[i])
		}
		for j := 0; j < rebuilt.CF.Cols; j++ {
			if rebuilt.CF.At(i, j) != src.CF.At(i, j) {
				t.Fatalf("CF mismatch at %d,%d", i, j)
			}
		}
	}
	if rebuilt.ChainID != src.ChainID {
		t.Fatalf("chain id wrong: %q", rebuilt.ChainID)
	}
}

func TestIncrementalTrainImprovesUnseenChain(t *testing.T) {
	c := smallCorpus(t)
	// Blind out one chain entirely.
	blindChain := c.FaultTargets[0].Series.ChainID
	exclude := map[*dataset.Series]bool{}
	for _, s := range c.Dataset.Series {
		if s.ChainID == blindChain {
			exclude[s] = true
		}
	}
	cfg := quickTrainerConfig()
	cfg.Train.Epochs = 8
	tr, err := Train(c.Dataset, exclude, cfg)
	if err != nil {
		t.Fatal(err)
	}
	chain := c.ChainSeries[blindChain]
	history := chain[:len(chain)-1]
	current := chain[len(chain)-1]

	evalMAE := func() float64 {
		exs := dataset.WindowExamples(current, cfg.Model.Window)
		b := dataset.ToBatch(exs, tr.Schema)
		tr.Standardizer.Apply(b.X)
		pred := tr.YScale.Unscale(tr.Model.Predict(tr.YScale.Scale(b)))
		mae := 0.0
		for i, p := range pred {
			d := p - exs[i].Y
			if d < 0 {
				d = -d
			}
			mae += d
		}
		return mae / float64(len(pred))
	}
	before := evalMAE()
	beforeExamples := tr.Examples
	fit, err := IncrementalTrain(tr, history, 8, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Epochs == 0 {
		t.Fatalf("incremental training did not run")
	}
	if tr.Examples <= beforeExamples {
		t.Fatalf("example count not updated")
	}
	after := evalMAE()
	if after >= before {
		t.Fatalf("incremental retraining should improve the blinded chain: %.3f -> %.3f", before, after)
	}
}

func TestEarlyTerminationPolicy(t *testing.T) {
	alarms := []anomaly.Alarm{
		{StartIdx: 5, EndIdx: 6, PeakDev: 3},    // too weak
		{StartIdx: 20, EndIdx: 29, PeakDev: 12}, // qualifies
		{StartIdx: 40, EndIdx: 49, PeakDev: 15}, // qualifies, later
	}
	p := TerminationPolicy{MinPeakDev: 10, MinDuration: 3}
	at, ok := EarlyTerminationStep(alarms, p)
	if !ok || at != 22 {
		t.Fatalf("termination at %d (ok=%v), want 22", at, ok)
	}
	if _, ok := EarlyTerminationStep(alarms[:1], p); ok {
		t.Fatalf("weak alarm should not terminate")
	}
	if _, ok := EarlyTerminationStep(nil, p); ok {
		t.Fatalf("no alarms should not terminate")
	}
	// MinDuration 1 terminates at the alarm start.
	at, ok = EarlyTerminationStep(alarms, TerminationPolicy{MinPeakDev: 10, MinDuration: 1})
	if !ok || at != 20 {
		t.Fatalf("immediate policy: got %d", at)
	}
}

func TestIncrementalTrainNoExamples(t *testing.T) {
	c := smallCorpus(t)
	tr, err := Train(c.Dataset, nil, quickTrainerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := IncrementalTrain(tr, nil, 2, 0.01); err == nil {
		t.Fatalf("no-example incremental training should error")
	}
}

func TestSeriesFromTSDBMissingMetric(t *testing.T) {
	db := tsdb.New()
	_ = db.Append(tsdb.Labels{"__name__": "cpu_usage", "env": "EM_9"}, 1, 50)
	c := smallCorpus(t)
	if _, err := SeriesFromTSDB(db, "EM_9", c.Dataset.Series[0].Env, c.Dataset.FeatureNames, 0, 1<<62); err == nil {
		t.Fatalf("missing feature metrics should error")
	}
	if _, err := SeriesFromTSDB(db, "EM_none", c.Dataset.Series[0].Env, nil, 0, 1<<62); err == nil {
		t.Fatalf("missing cpu metric should error")
	}
}

func TestProcessExecutionWithPolicy(t *testing.T) {
	c := smallCorpus(t)
	exclude := map[*dataset.Series]bool{}
	for _, exec := range c.FaultTargets {
		exclude[exec.Series] = true
	}
	cfg := quickTrainerConfig()
	cfg.Train.Epochs = 10
	tr, err := Train(c.Dataset, exclude, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wf := NewWorkflow(tr, anomaly.Config{Gamma: 2, AbsFilter: 5})
	for _, id := range c.ChainOrder {
		chain := c.ChainSeries[id]
		wf.CalibrateChain(id, chain[:len(chain)-1])
	}
	s := c.FaultTargets[0].Series
	full := wf.ProcessExecution("env2vec", s)
	if len(full) == 0 {
		t.Skip("no alarms on this execution at quick scale")
	}
	// A permissive policy terminates at the first alarm's start.
	alarms, stopAt, terminated := wf.ProcessExecutionWithPolicy("env2vec", s, TerminationPolicy{MinPeakDev: 0, MinDuration: 1})
	if !terminated || stopAt != full[0].StartIdx {
		t.Fatalf("termination at %d (%v), want %d", stopAt, terminated, full[0].StartIdx)
	}
	for _, a := range alarms {
		if a.StartIdx > stopAt || a.EndIdx > stopAt {
			t.Fatalf("alarm extends past termination: %+v", a)
		}
	}
	// An impossible policy never terminates and returns everything.
	all, stopAt2, term2 := wf.ProcessExecutionWithPolicy("env2vec", s, TerminationPolicy{MinPeakDev: 1e9, MinDuration: 1})
	if term2 || stopAt2 != -1 || len(all) != len(full) {
		t.Fatalf("impossible policy should be a no-op")
	}
}
