package pipeline

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"env2vec/internal/dataset"
	"env2vec/internal/modelserver"
	"env2vec/internal/nn"
	"env2vec/internal/serve"
)

// TestReplicationEndToEnd extends the publish-then-serve exercise across a
// replica tier: the training pipeline publishes to a primary registry, a
// durable replica converges on it, a serving daemon's Watcher polls the
// replica (never the primary), and /predict answers through the replica
// match a daemon fed straight from the primary — including after a
// re-publish and after the replica restarts from its own disk.
func TestReplicationEndToEnd(t *testing.T) {
	corpus := smallCorpus(t)
	tr, err := Train(corpus.Dataset, nil, quickTrainerConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Primary registry, published to by the training pipeline.
	primary := modelserver.NewRegistry()
	primarySrv := httptest.NewServer(&modelserver.Handler{Registry: primary, Now: func() int64 { return 1 }})
	defer primarySrv.Close()
	client := &modelserver.Client{BaseURL: primarySrv.URL}
	if v, err := PublishForServing(client, "env2vec", tr); err != nil || v != 1 {
		t.Fatalf("publish: %d %v", v, err)
	}

	// Durable replica follows the primary.
	replicaDir := t.TempDir()
	replicaReg, err := modelserver.OpenRegistry(modelserver.WithDir(replicaDir))
	if err != nil {
		t.Fatal(err)
	}
	replica := &modelserver.Replica{Client: client, Registry: replicaReg}
	if pulled, err := replica.Sync(); err != nil || pulled != 1 {
		t.Fatalf("replica sync: %d %v", pulled, err)
	}
	replicaSrv := httptest.NewServer(&modelserver.Handler{Registry: replicaReg})
	defer replicaSrv.Close()

	// Two serving daemons: one watching the primary (the reference), one
	// watching the replica (the topology under test).
	newServer := func(baseURL string) (*serve.Server, *modelserver.Watcher) {
		srv := serve.New(serve.Config{MaxBatch: 8, MaxLinger: 5 * time.Millisecond, QueueDepth: 64, Workers: 2})
		w := &modelserver.Watcher{
			Client: &modelserver.Client{BaseURL: baseURL},
			Name:   "env2vec",
			OnUpdate: func(snap *nn.Snapshot, ver int) {
				b, err := serve.BundleFromSnapshot("env2vec", ver, snap)
				if err != nil {
					t.Errorf("bundle v%d: %v", ver, err)
					return
				}
				srv.SetBundle(b)
			},
		}
		if changed, err := w.Poll(); err != nil || !changed {
			t.Fatalf("initial poll of %s: changed=%v err=%v", baseURL, changed, err)
		}
		return srv, w
	}
	srvPrimary, primaryWatcher := newServer(primarySrv.URL)
	defer srvPrimary.Close()
	srvReplica, replicaWatcher := newServer(replicaSrv.URL)
	defer srvReplica.Close()

	// Requests from real execution windows.
	window := tr.Model.Config().Window
	var exs []dataset.Example
	for _, s := range corpus.Dataset.Series {
		exs = append(exs, dataset.WindowExamples(s, window)...)
		if len(exs) >= 16 {
			break
		}
	}
	exs = exs[:16]
	makeReq := func(ex dataset.Example) *serve.Request {
		return &serve.Request{
			CF:      append([]float64(nil), ex.CF...),
			Window:  append([]float64(nil), ex.Window...),
			Testbed: ex.Env.Testbed, SUT: ex.Env.SUT,
			Testcase: ex.Env.Testcase, Build: ex.Env.Build,
		}
	}

	assertParity := func(wantVersion int) {
		t.Helper()
		for i, ex := range exs {
			rp, code, err := srvPrimary.Do(makeReq(ex))
			if err != nil || code != http.StatusOK {
				t.Fatalf("primary request %d: %d %v", i, code, err)
			}
			rr, code, err := srvReplica.Do(makeReq(ex))
			if err != nil || code != http.StatusOK {
				t.Fatalf("replica request %d: %d %v", i, code, err)
			}
			if math.Abs(rp.Prediction-rr.Prediction) > 1e-12 {
				t.Fatalf("request %d: replica-served %v, primary-served %v", i, rr.Prediction, rp.Prediction)
			}
			if rp.ModelVersion != wantVersion || rr.ModelVersion != wantVersion {
				t.Fatalf("request %d: versions %d/%d, want %d", i, rp.ModelVersion, rr.ModelVersion, wantVersion)
			}
		}
	}
	assertParity(1)

	// The real HTTP surface agrees too: POST /predict against the
	// replica-fed daemon answers with the same prediction as Do.
	httpSrv := httptest.NewServer(srvReplica)
	defer httpSrv.Close()
	body, _ := json.Marshal(makeReq(exs[0]))
	resp, err := http.Post(httpSrv.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var got serve.Response
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ref, _, _ := srvReplica.Do(makeReq(exs[0]))
	if math.Abs(got.Prediction-ref.Prediction) > 1e-12 {
		t.Fatalf("HTTP /predict %v diverges from Do %v", got.Prediction, ref.Prediction)
	}

	// A re-publish flows primary → replica → replica-fed daemon.
	if v, err := PublishForServing(client, "env2vec", tr); err != nil || v != 2 {
		t.Fatalf("republish: %d %v", v, err)
	}
	if pulled, err := replica.Sync(); err != nil || pulled != 1 {
		t.Fatalf("replica resync: %d %v", pulled, err)
	}
	if changed, err := replicaWatcher.Poll(); err != nil || !changed {
		t.Fatalf("replica watcher reload: changed=%v err=%v", changed, err)
	}
	if changed, err := primaryWatcher.Poll(); err != nil || !changed {
		t.Fatalf("primary watcher reload: changed=%v err=%v", changed, err)
	}
	assertParity(2)

	// Replica restart: its disk alone reproduces the converged state.
	if err := replicaReg.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := modelserver.OpenRegistry(modelserver.WithDir(replicaDir))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if rec := reopened.RecoveredRecords(); rec != 0 {
		t.Fatalf("replica restart quarantined %d records", rec)
	}
	v, err := reopened.Latest("env2vec")
	if err != nil || v.Number != 2 {
		t.Fatalf("replica lost versions across restart: %+v %v", v, err)
	}
	primaryV, _ := primary.Get("env2vec", 2)
	if !bytes.Equal(v.Data, primaryV.Data) {
		t.Fatal("replica bytes diverge from primary after restart")
	}
}
