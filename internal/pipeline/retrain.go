package pipeline

import (
	"env2vec/internal/alarmstore"
	"env2vec/internal/dataset"
	"env2vec/internal/modelserver"
)

// DailyRetrain implements the periodic model update of workflow step (2):
// the model is refit on all data except executions with confirmed
// (acknowledged) true-positive alarms, which are masked out, and the new
// snapshot is published to the registry. It returns the training result,
// the number of masked executions, and the published version.
//
// The paper notes this is best-effort: unconfirmed problems (false
// negatives) stay in the training data, which is tolerable as long as they
// are not sustained and form a tiny fraction of the corpus.
func DailyRetrain(ds *dataset.Dataset, store *alarmstore.Store, client *modelserver.Client,
	name string, cfg TrainerConfig) (*TrainResult, int, int, error) {

	// Collect the (chain, build) pairs with acknowledged alarms.
	confirmed := make(map[[2]string]bool)
	for _, rec := range store.Find(alarmstore.Query{}) {
		if rec.Ack {
			confirmed[[2]string{rec.Alarm.ChainID, rec.Alarm.Build}] = true
		}
	}
	exclude := make(map[*dataset.Series]bool)
	masked := 0
	for _, s := range ds.Series {
		if confirmed[[2]string{s.ChainID, s.Env.Build}] {
			exclude[s] = true
			masked++
		}
	}
	tr, err := Train(ds, exclude, cfg)
	if err != nil {
		return nil, masked, 0, err
	}
	version := 0
	if client != nil {
		version, err = PublishModel(client, name, tr)
		if err != nil {
			return nil, masked, 0, err
		}
	}
	return tr, masked, version, nil
}
