package pipeline

import (
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"env2vec/internal/dataset"
	"env2vec/internal/modelserver"
	"env2vec/internal/nn"
	"env2vec/internal/serve"
)

// TestPublishThenServe is the end-to-end exercise of the online prediction
// path: train → publish a snapshot (with serving artifacts) to the registry
// → a watcher delivers it to the serving daemon → concurrent request
// traffic is micro-batched, matches the offline model exactly, survives a
// hot re-publish, and sheds overload with 429 instead of hanging.
func TestPublishThenServe(t *testing.T) {
	corpus := smallCorpus(t)
	tr, err := Train(corpus.Dataset, nil, quickTrainerConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Registry + publish with artifacts attached.
	reg := modelserver.NewRegistry()
	regSrv := httptest.NewServer(&modelserver.Handler{Registry: reg})
	defer regSrv.Close()
	client := &modelserver.Client{BaseURL: regSrv.URL}
	if v, err := PublishForServing(client, "env2vec", tr); err != nil || v != 1 {
		t.Fatalf("publish: %d %v", v, err)
	}

	// Serving daemon fed by a registry watcher.
	srv := serve.New(serve.Config{MaxBatch: 16, MaxLinger: 20 * time.Millisecond, QueueDepth: 512, Workers: 2})
	defer srv.Close()
	watcher := &modelserver.Watcher{
		Client: client,
		Name:   "env2vec",
		OnUpdate: func(snap *nn.Snapshot, ver int) {
			b, err := serve.BundleFromSnapshot("env2vec", ver, snap)
			if err != nil {
				t.Errorf("bundle from snapshot v%d: %v", ver, err)
				return
			}
			srv.SetBundle(b)
		},
	}
	if changed, err := watcher.Poll(); err != nil || !changed {
		t.Fatalf("initial poll: changed=%v err=%v", changed, err)
	}
	if srv.Bundle() == nil || srv.Bundle().Version != 1 {
		t.Fatalf("v1 not loaded")
	}

	// Assemble ≥64 requests from real execution windows, with the offline
	// reference prediction computed through the training artifacts.
	window := tr.Model.Config().Window
	var exs []dataset.Example
	for _, s := range corpus.Dataset.Series {
		exs = append(exs, dataset.WindowExamples(s, window)...)
		if len(exs) >= 64 {
			break
		}
	}
	exs = exs[:64]
	batch := dataset.ToBatch(exs, tr.Schema)
	tr.Standardizer.Apply(batch.X)
	want := tr.YScale.Unscale(tr.Model.Predict(tr.YScale.Scale(batch)))

	makeReq := func(ex dataset.Example) *serve.Request {
		return &serve.Request{
			CF:      append([]float64(nil), ex.CF...),
			Window:  append([]float64(nil), ex.Window...),
			Testbed: ex.Env.Testbed, SUT: ex.Env.SUT,
			Testcase: ex.Env.Testcase, Build: ex.Env.Build,
		}
	}

	// (a)+(b): concurrent traffic matches the offline model within 1e-9 and
	// at least one forward pass combined multiple requests.
	var wg sync.WaitGroup
	for i := range exs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, code, err := srv.Do(makeReq(exs[i]))
			if err != nil || code != http.StatusOK {
				t.Errorf("request %d: %d %v", i, code, err)
				return
			}
			if math.Abs(resp.Prediction-want[i]) > 1e-9 {
				t.Errorf("request %d: served %v, offline %v", i, resp.Prediction, want[i])
			}
			if resp.ModelVersion != 1 {
				t.Errorf("request %d: version %d", i, resp.ModelVersion)
			}
		}(i)
	}
	wg.Wait()
	if st := srv.Stats(); st.MaxBatchObserved < 2 {
		t.Fatalf("no forward pass combined requests: %+v", st)
	}

	// (c): a registry re-publish reaches serving without dropping requests.
	stop := make(chan struct{})
	var traffic sync.WaitGroup
	for g := 0; g < 4; g++ {
		traffic.Add(1)
		go func(g int) {
			defer traffic.Done()
			for i := 0; ; i = (i + 1) % len(exs) {
				select {
				case <-stop:
					return
				default:
				}
				resp, code, err := srv.Do(makeReq(exs[i]))
				if err != nil || code != http.StatusOK {
					t.Errorf("request dropped during reload: %d %v", code, err)
					return
				}
				// Weights are identical across versions here, so every
				// response must stay correct regardless of which version
				// served it.
				if math.Abs(resp.Prediction-want[i]) > 1e-9 {
					t.Errorf("prediction drifted during reload")
					return
				}
			}
		}(g)
	}
	if v, err := PublishForServing(client, "env2vec", tr); err != nil || v != 2 {
		t.Fatalf("republish: %d %v", v, err)
	}
	if changed, err := watcher.Poll(); err != nil || !changed {
		t.Fatalf("reload poll: changed=%v err=%v", changed, err)
	}
	close(stop)
	traffic.Wait()
	resp, code, err := srv.Do(makeReq(exs[0]))
	if err != nil || code != http.StatusOK || resp.ModelVersion != 2 {
		t.Fatalf("v2 not serving after republish: %+v %d %v", resp, code, err)
	}

	// (d): overload beyond the queue bound sheds load with 429, not a hang.
	tiny := serve.New(serve.Config{MaxBatch: 16, MaxLinger: 50 * time.Millisecond, QueueDepth: 2, Workers: 1})
	defer tiny.Close()
	tiny.SetBundle(srv.Bundle())
	const burst = 512
	codes := make(chan int, burst)
	var burstWG sync.WaitGroup
	for i := 0; i < burst; i++ {
		burstWG.Add(1)
		go func(i int) {
			defer burstWG.Done()
			_, code, _ := tiny.Do(makeReq(exs[i%len(exs)]))
			codes <- code
		}(i)
	}
	finished := make(chan struct{})
	go func() { burstWG.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("overload burst hung")
	}
	close(codes)
	var ok, rejected int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d under overload", c)
		}
	}
	if rejected == 0 || ok == 0 {
		t.Fatalf("overload handling wrong: %d ok, %d rejected of %d", ok, rejected, burst)
	}
}
