package pipeline

import (
	"net/http/httptest"
	"testing"

	"env2vec/internal/alarmstore"
	"env2vec/internal/anomaly"
	"env2vec/internal/modelserver"
)

func TestDailyRetrainMasksConfirmedAlarms(t *testing.T) {
	c := smallCorpus(t)
	store, err := alarmstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	// Two confirmed (acknowledged) alarms on one execution, one
	// unacknowledged alarm on another: only the first must be masked.
	confirmed := c.FaultTargets[0].Series
	unconfirmed := c.FaultTargets[1].Series
	rec1, _ := store.Push(anomaly.Alarm{
		ChainID: confirmed.ChainID, Build: confirmed.Env.Build, Testbed: confirmed.Env.Testbed,
	}, 100)
	_ = store.Acknowledge(rec1.ID)
	_, _ = store.Push(anomaly.Alarm{
		ChainID: unconfirmed.ChainID, Build: unconfirmed.Env.Build,
	}, 200)

	reg := modelserver.NewRegistry()
	srv := httptest.NewServer(&modelserver.Handler{Registry: reg})
	defer srv.Close()
	client := &modelserver.Client{BaseURL: srv.URL}

	cfg := quickTrainerConfig()
	tr, masked, version, err := DailyRetrain(c.Dataset, store, client, "env2vec", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if masked != 1 {
		t.Fatalf("masked %d executions, want 1", masked)
	}
	if version != 1 {
		t.Fatalf("published version %d", version)
	}
	total := c.Dataset.NumExamples(cfg.Model.Window)
	excluded := confirmed.Len() - cfg.Model.Window
	if tr.Examples != total-excluded {
		t.Fatalf("examples %d, want %d", tr.Examples, total-excluded)
	}
	// A second retrain bumps the registry version.
	_, _, v2, err := DailyRetrain(c.Dataset, store, client, "env2vec", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("second publish version %d", v2)
	}
}

func TestDailyRetrainWithoutRegistry(t *testing.T) {
	c := smallCorpus(t)
	store, _ := alarmstore.Open("")
	tr, masked, version, err := DailyRetrain(c.Dataset, store, nil, "env2vec", quickTrainerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tr == nil || masked != 0 || version != 0 {
		t.Fatalf("nil-client retrain wrong: masked=%d version=%d", masked, version)
	}
}
