// Package pipeline wires the Env2Vec testing workflow of Figure 2 together:
//
//	(1) testbed data collection — Exporter serves a test execution's metrics
//	    in the text exposition format so the TSDB scraper can pull them,
//	    keyed by an EM record id in the service-discovery file;
//	(2) model training — Trainer fits the single generic Env2Vec model on
//	    all non-problematic historical executions and publishes a snapshot
//	    to the model registry;
//	(3) prediction — Workflow reads execution data (directly or rebuilt
//	    from the TSDB), standardizes it, and runs the model;
//	(4) raising alarms — deviations beyond γ·σ (plus the 5% filter) become
//	    alarms pushed into the alarm store;
//	(5) updating the model — FetchModel pulls the latest snapshot before a
//	    prediction run.
package pipeline

import (
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"env2vec/internal/anomaly"
	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/modelserver"
	"env2vec/internal/nn"
	"env2vec/internal/obs"
	"env2vec/internal/quality"
	"env2vec/internal/serve"
	"env2vec/internal/stats"
	"env2vec/internal/tensor"
	"env2vec/internal/tsdb"
)

// Exporter publishes one test execution step-by-step at /metrics, the way a
// metric collector on a testbed would. Advance moves the cursor one
// timestep; the handler renders every contextual feature plus cpu_usage at
// the current position.
type Exporter struct {
	mu           sync.Mutex
	series       *dataset.Series
	featureNames []string
	pos          int
}

// NewExporter wraps a series for serving; the cursor starts at step 0.
func NewExporter(s *dataset.Series, featureNames []string) (*Exporter, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(featureNames) != s.CF.Cols {
		return nil, fmt.Errorf("pipeline: %d feature names for %d columns", len(featureNames), s.CF.Cols)
	}
	return &Exporter{series: s, featureNames: featureNames}, nil
}

// Advance moves to the next timestep, reporting false at the end of the
// execution.
func (e *Exporter) Advance() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pos+1 >= e.series.Len() {
		return false
	}
	e.pos++
	return true
}

// Pos returns the current cursor.
func (e *Exporter) Pos() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.pos
}

// ServeHTTP implements http.Handler for the /metrics endpoint.
func (e *Exporter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/metrics" {
		http.NotFound(w, r)
		return
	}
	e.mu.Lock()
	pos := e.pos
	e.mu.Unlock()
	ts := int64(0)
	if len(e.series.Times) == e.series.Len() {
		ts = e.series.Times[pos]
	}
	series := make([]tsdb.Series, 0, len(e.featureNames)+1)
	for j, name := range e.featureNames {
		series = append(series, tsdb.Series{
			Labels:  tsdb.Labels{"__name__": name},
			Samples: []tsdb.Sample{{T: ts, V: e.series.CF.At(pos, j)}},
		})
	}
	series = append(series, tsdb.Series{
		Labels:  tsdb.Labels{"__name__": "cpu_usage"},
		Samples: []tsdb.Sample{{T: ts, V: e.series.RU[pos]}},
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = tsdb.WriteExposition(w, series)
}

// SeriesFromTSDB reconstructs a dataset.Series for one environment from
// scraped TSDB data: each contextual feature and cpu_usage must exist as a
// series carrying the env record-id label. Timestamps are aligned on the
// intersection of all metrics.
func SeriesFromTSDB(db *tsdb.DB, envLabel string, env envmeta.Environment, featureNames []string, from, to int64) (*dataset.Series, error) {
	fetch := func(metric string) (map[int64]float64, error) {
		matches := db.Query(tsdb.Labels{"__name__": metric, "env": envLabel}, from, to)
		if len(matches) == 0 {
			return nil, fmt.Errorf("pipeline: metric %q missing for env %q", metric, envLabel)
		}
		out := make(map[int64]float64)
		for _, s := range matches {
			for _, smp := range s.Samples {
				out[smp.T] = smp.V
			}
		}
		return out, nil
	}
	cpu, err := fetch("cpu_usage")
	if err != nil {
		return nil, err
	}
	features := make([]map[int64]float64, len(featureNames))
	for j, name := range featureNames {
		features[j], err = fetch(name)
		if err != nil {
			return nil, err
		}
	}
	// Intersect timestamps.
	var times []int64
	for t := range cpu {
		ok := true
		for _, f := range features {
			if _, have := f[t]; !have {
				ok = false
				break
			}
		}
		if ok {
			times = append(times, t)
		}
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("pipeline: no aligned samples for env %q", envLabel)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	s := &dataset.Series{
		Env:     env,
		ChainID: env.Testbed + "|" + env.SUT + "|" + env.Testcase,
		Times:   times,
		CF:      tensor.New(len(times), len(featureNames)),
		RU:      make([]float64, len(times)),
	}
	for i, t := range times {
		for j := range featureNames {
			s.CF.Set(i, j, features[j][t])
		}
		s.RU[i] = cpu[t]
	}
	return s, nil
}

// TrainerConfig controls the training pipeline.
type TrainerConfig struct {
	Model core.Config
	Train nn.TrainConfig
	LR    float64
	// ValFraction of the pooled examples is held out for early stopping.
	ValFraction float64
	// Obs, when non-nil, receives training telemetry: per-epoch timing
	// histograms and loss-curve gauges, so one scrape of the trainer shows
	// where the publish half of the publish-then-serve loop stands.
	Obs *obs.Registry
	// Logger, when non-nil, receives per-epoch progress records.
	Logger *slog.Logger
}

// DefaultTrainerConfig returns a workable configuration for featureDim
// contextual features.
func DefaultTrainerConfig(featureDim int) TrainerConfig {
	tc := nn.DefaultTrainConfig()
	tc.Epochs = 40
	return TrainerConfig{
		Model:       core.DefaultConfig(featureDim),
		Train:       tc,
		LR:          0.005,
		ValFraction: 0.1,
	}
}

// TrainResult bundles the fitted artifacts of one training run.
type TrainResult struct {
	Model        *core.Model
	Schema       *envmeta.Schema
	Standardizer *dataset.Standardizer
	YScale       dataset.YScaler
	Fit          nn.TrainResult
	Examples     int
	// Baseline is the fitted model's prediction-error distribution on
	// held-out data — the N(μ_err, σ_err) reference the online quality
	// monitor compares serving-time errors against.
	Baseline *quality.Baseline
}

// Train runs workflow step (2): pool every series not excluded (executions
// with confirmed problems are masked out, as §3 describes), build the
// schema and standardizer, and fit a single Env2Vec model.
func Train(ds *dataset.Dataset, exclude map[*dataset.Series]bool, cfg TrainerConfig) (*TrainResult, error) {
	schema := envmeta.NewSchema()
	var examples []dataset.Example
	for _, s := range ds.Series {
		if exclude[s] {
			continue
		}
		schema.Observe(s.Env)
		examples = append(examples, dataset.WindowExamples(s, cfg.Model.Window)...)
	}
	if len(examples) == 0 {
		return nil, fmt.Errorf("pipeline: no training examples after masking")
	}
	schema.Freeze()
	// Shuffle before splitting: examples arrive grouped by series, and a
	// sequential split would hold out entire chains instead of a uniform
	// validation sample.
	rng := rand.New(rand.NewSource(cfg.Train.Seed))
	rng.Shuffle(len(examples), func(i, j int) { examples[i], examples[j] = examples[j], examples[i] })
	nVal := int(cfg.ValFraction * float64(len(examples)))
	nTrain := len(examples) - nVal
	split, err := dataset.SplitExamples(examples, nTrain, nVal, 0, schema)
	if err != nil {
		return nil, err
	}
	std := dataset.StandardizeSplit(split)
	ys := dataset.FitYScaler(split.Train)

	model := core.New(cfg.Model, schema)
	var val *nn.Batch
	if split.Val.Len() > 0 {
		val = ys.Scale(split.Val)
	}
	cfg.Train.OnEpoch = instrumentEpochs(cfg.Obs, cfg.Logger, cfg.Train.OnEpoch)
	fit := nn.Train(model, nn.NewAdam(cfg.LR), ys.Scale(split.Train), val, cfg.Train)
	return &TrainResult{
		Model: model, Schema: schema, Standardizer: std, YScale: ys,
		Fit: fit, Examples: len(examples),
		Baseline: fitErrorBaseline(model, ys, split),
	}, nil
}

// fitErrorBaseline scores the fitted model on the held-out split (the
// training split when no validation data exists) and fits the Gaussian
// error baseline that travels with the published snapshot, so the serving
// side can threshold live errors the way the paper thresholds errors on
// previous builds.
func fitErrorBaseline(model *core.Model, ys dataset.YScaler, split *dataset.Split) *quality.Baseline {
	b := split.Val
	if b.Len() == 0 {
		b = split.Train
	}
	if b.Len() == 0 {
		return nil
	}
	pred := ys.Unscale(model.Predict(ys.Scale(b)))
	errs := make([]float64, len(pred))
	for i := range pred {
		errs[i] = pred[i] - b.Y.Data[i]
	}
	g := stats.FitGaussian(errs)
	return &quality.Baseline{Mu: g.Mu, Sigma: g.Sigma, Samples: len(errs)}
}

// instrumentEpochs chains an epoch observer that feeds the training
// telemetry (epoch timing histogram, loss-curve gauges, epoch counter)
// and structured progress logs, preserving any caller-supplied hook.
// A nil registry and nil logger yield the original hook unchanged.
func instrumentEpochs(reg *obs.Registry, logger *slog.Logger, next func(int, float64, float64, time.Duration)) func(int, float64, float64, time.Duration) {
	if reg == nil && logger == nil {
		return next
	}
	epochs := reg.Counter("env2vec_train_epochs_total", "Training epochs completed.", nil)
	epochSec := reg.Histogram("env2vec_train_epoch_seconds", "Wall-clock time per training epoch.", obs.DefSecondsBuckets, nil)
	trainLoss := reg.Gauge("env2vec_train_loss", "Loss after the most recent epoch.", obs.Labels{"split": "train"})
	valLoss := reg.Gauge("env2vec_train_loss", "Loss after the most recent epoch.", obs.Labels{"split": "val"})
	return func(epoch int, tl, vl float64, d time.Duration) {
		epochs.Inc()
		epochSec.Observe(d.Seconds())
		trainLoss.Set(tl)
		if !math.IsNaN(vl) {
			valLoss.Set(vl)
		}
		if logger != nil {
			logger.Debug("epoch complete", "epoch", epoch, "train_loss", tl, "val_loss", vl, "duration", d)
		}
		if next != nil {
			next(epoch, tl, vl, d)
		}
	}
}

// ProcessExecutionWithPolicy scores an execution like ProcessExecution and
// additionally applies a termination policy: when an alarm qualifies, only
// alarms up to the termination step are reported (the execution would have
// been aborted there) along with the step and a terminated flag.
func (w *Workflow) ProcessExecutionWithPolicy(detector string, s *dataset.Series, p TerminationPolicy) (alarms []anomaly.Alarm, stopAt int, terminated bool) {
	all := w.ProcessExecution(detector, s)
	stopAt, terminated = EarlyTerminationStep(all, p)
	if !terminated {
		return all, -1, false
	}
	for _, a := range all {
		if a.StartIdx <= stopAt {
			if a.EndIdx > stopAt {
				a.EndIdx = stopAt
			}
			alarms = append(alarms, a)
		}
	}
	return alarms, stopAt, true
}

// TerminationPolicy encodes the automated action of workflow step (4):
// alarms can trigger early termination of the test-case execution, freeing
// the testbed as soon as a sufficiently severe problem is confirmed.
type TerminationPolicy struct {
	MinPeakDev  float64 // minimum |pred−actual| peak to act on
	MinDuration int     // minimum alarm duration in timesteps
}

// ShouldTerminate reports whether the alarm is severe enough to abort.
func (p TerminationPolicy) ShouldTerminate(a anomaly.Alarm) bool {
	return a.PeakDev >= p.MinPeakDev && a.Duration() >= p.MinDuration
}

// EarlyTerminationStep returns the first timestep at which the policy would
// have aborted the execution, and whether any alarm qualified.
func EarlyTerminationStep(alarms []anomaly.Alarm, p TerminationPolicy) (int, bool) {
	best := -1
	for _, a := range alarms {
		if !p.ShouldTerminate(a) {
			continue
		}
		// Termination happens once the alarm has lasted MinDuration steps.
		at := a.StartIdx + p.MinDuration - 1
		if at < a.StartIdx {
			at = a.StartIdx
		}
		if best < 0 || at < best {
			best = at
		}
	}
	return best, best >= 0
}

// IncrementalTrain continues training an existing model with data from new
// executions — the remedy §4.3 prescribes once an initially-unseen
// environment starts accumulating history. The existing schema is frozen,
// so genuinely new metadata values keep flowing through <unk>; the existing
// standardizer and target scale are reused so old and new data stay
// commensurable.
func IncrementalTrain(tr *TrainResult, newSeries []*dataset.Series, epochs int, lr float64) (nn.TrainResult, error) {
	window := tr.Model.Config().Window
	var examples []dataset.Example
	for _, s := range newSeries {
		examples = append(examples, dataset.WindowExamples(s, window)...)
	}
	if len(examples) == 0 {
		return nn.TrainResult{}, fmt.Errorf("pipeline: incremental training with no examples")
	}
	batch := dataset.ToBatch(examples, tr.Schema)
	tr.Standardizer.Apply(batch.X)
	scaled := tr.YScale.Scale(batch)
	cfg := nn.TrainConfig{Epochs: epochs, BatchSize: 32, Seed: 1}
	fit := nn.Train(tr.Model, nn.NewAdam(lr), scaled, nil, cfg)
	tr.Examples += len(examples)
	return fit, nil
}

// PublishModel uploads the trained model to the registry (step 2 → 5).
func PublishModel(client *modelserver.Client, name string, tr *TrainResult) (int, error) {
	return client.Publish(name, tr.Model.Snapshot())
}

// PublishForServing uploads the trained model with the serving artifacts
// (architecture config, frozen vocabularies, scalers) attached to the
// snapshot, so the online prediction service can reconstruct a full
// predictor from the registry alone — the publish half of the
// publish-then-serve path.
func PublishForServing(client *modelserver.Client, name string, tr *TrainResult) (int, error) {
	snap := tr.Model.Snapshot()
	if err := serve.AttachArtifacts(snap, tr.Model.Config(), tr.Schema, tr.Standardizer, tr.YScale, tr.Baseline); err != nil {
		return 0, err
	}
	return client.Publish(name, snap)
}

// FetchModel downloads the latest snapshot into a structurally matching
// model (step 5).
func FetchModel(client *modelserver.Client, name string, into *core.Model) (int, error) {
	snap, ver, err := client.FetchLatest(name)
	if err != nil {
		return 0, err
	}
	if err := into.Restore(snap); err != nil {
		return 0, err
	}
	return ver, nil
}

// Workflow is the prediction pipeline (steps 3–4): it scores executions
// with the trained model, maintains per-chain error models from historical
// builds, and emits alarms.
type Workflow struct {
	Model        *core.Model
	Schema       *envmeta.Schema
	Standardizer *dataset.Standardizer
	YScale       dataset.YScaler
	Detect       anomaly.Config
	MaxGap       int // alarm merge gap (timesteps)

	mu          sync.Mutex
	errorModels map[string]anomaly.ErrorModel
}

// NewWorkflow assembles a prediction pipeline from training artifacts.
func NewWorkflow(tr *TrainResult, detect anomaly.Config) *Workflow {
	return &Workflow{
		Model:        tr.Model,
		Schema:       tr.Schema,
		Standardizer: tr.Standardizer,
		YScale:       tr.YScale,
		Detect:       detect,
		MaxGap:       1,
		errorModels:  make(map[string]anomaly.ErrorModel),
	}
}

// predictSeries standardizes and scores one execution, returning aligned
// predictions and actuals (both of length len−window) plus the offset of
// the first scored timestep.
func (w *Workflow) predictSeries(s *dataset.Series) (pred, actual []float64, offset int) {
	window := w.Model.Config().Window
	exs := dataset.WindowExamples(s, window)
	b := dataset.ToBatch(exs, w.Schema)
	w.Standardizer.Apply(b.X)
	pred = w.YScale.Unscale(w.Model.Predict(w.YScale.Scale(b)))
	actual = make([]float64, len(exs))
	for i, ex := range exs {
		actual[i] = ex.Y
	}
	return pred, actual, window
}

// CalibrateChain fits the chain's error model from its historical
// (pre-upgrade) builds. Call once per chain before scoring new builds.
func (w *Workflow) CalibrateChain(chainID string, history []*dataset.Series) {
	var preds, actuals []float64
	for _, s := range history {
		p, a, _ := w.predictSeries(s)
		preds = append(preds, p...)
		actuals = append(actuals, a...)
	}
	w.mu.Lock()
	w.errorModels[chainID] = anomaly.FitErrorModel(preds, actuals)
	w.mu.Unlock()
}

// ErrorModel returns the calibrated model for a chain.
func (w *Workflow) ErrorModel(chainID string) (anomaly.ErrorModel, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	em, ok := w.errorModels[chainID]
	return em, ok
}

// ProcessExecution scores a new build's execution and returns its alarms.
// When the chain has no calibrated error model (an unseen environment,
// §4.3), the error distribution is computed from the execution itself.
func (w *Workflow) ProcessExecution(detector string, s *dataset.Series) []anomaly.Alarm {
	pred, actual, offset := w.predictSeries(s)
	w.mu.Lock()
	em, ok := w.errorModels[s.ChainID]
	w.mu.Unlock()
	var flags []bool
	if ok {
		flags = anomaly.Flag(pred, actual, em, w.Detect)
	} else {
		flags = anomaly.SelfFlag(pred, actual, w.Detect)
	}
	// Re-align flags and predictions with the full series.
	fullFlags := make([]bool, s.Len())
	fullPred := make([]float64, s.Len())
	copy(fullPred, s.RU) // unscored prefix has zero deviation
	for i, f := range flags {
		fullFlags[offset+i] = f
		fullPred[offset+i] = pred[i]
	}
	return anomaly.MergeAlarms(detector, s, fullFlags, fullPred, w.MaxGap)
}
