package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("bad shape: %v", m)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d not zero: %v", i, v)
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At/Set roundtrip failed")
	}
	r := m.Row(1)
	if r[2] != 7.5 {
		t.Fatalf("Row aliasing failed")
	}
	r[0] = -1
	if m.At(1, 0) != -1 {
		t.Fatalf("Row must alias storage")
	}
}

func TestFromRowsAndVectors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows layout wrong: %v", m)
	}
	rv := RowVector([]float64{1, 2, 3})
	if rv.Rows != 1 || rv.Cols != 3 {
		t.Fatalf("RowVector shape: %v", rv)
	}
	cv := ColVector([]float64{1, 2, 3})
	if cv.Rows != 3 || cv.Cols != 1 {
		t.Fatalf("ColVector shape: %v", cv)
	}
}

func TestFromSlicePanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	c := MatMul(a, b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if !Equal(c, want, 1e-12) {
		t.Fatalf("MatMul got %v want %v", c, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	a.RandNormal(rng, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if !Equal(MatMul(a, id), a, 1e-12) || !Equal(MatMul(id, a), a, 1e-12) {
		t.Fatalf("identity multiplication should be a no-op")
	}
}

func TestMatMulInto(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	out := New(2, 2)
	out.Fill(99) // stale values must be cleared
	MatMulInto(out, a, b)
	if !Equal(out, MatMul(a, b), 1e-12) {
		t.Fatalf("MatMulInto mismatch: %v", out)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(3, 5)
	m.RandNormal(rng, 1)
	if !Equal(m.Transpose().Transpose(), m, 0) {
		t.Fatalf("transpose should be an involution")
	}
	if m.Transpose().At(4, 2) != m.At(2, 4) {
		t.Fatalf("transpose element mapping wrong")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {-7, 8}})
	if got := Add(a, b).Data; got[0] != 6 || got[3] != 12 {
		t.Fatalf("Add wrong: %v", got)
	}
	if got := Sub(a, b).Data; got[1] != -8 {
		t.Fatalf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data; got[2] != -21 {
		t.Fatalf("Mul wrong: %v", got)
	}
	if got := Scale(a, 2).Data; got[0] != 2 || got[1] != -4 {
		t.Fatalf("Scale wrong: %v", got)
	}
}

func TestAddRowBroadcast(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	b := RowVector([]float64{10, 20})
	got := AddRowBroadcast(m, b)
	want := FromRows([][]float64{{11, 22}, {13, 24}})
	if !Equal(got, want, 0) {
		t.Fatalf("broadcast wrong: %v", got)
	}
}

func TestApplySumMeanDot(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	sq := Apply(m, func(x float64) float64 { return x * x })
	if sq.Sum() != 30 {
		t.Fatalf("Apply/Sum wrong: %v", sq.Sum())
	}
	if m.Mean() != 2.5 {
		t.Fatalf("Mean wrong: %v", m.Mean())
	}
	if Dot(m, m) != 30 {
		t.Fatalf("Dot wrong")
	}
	empty := New(0, 0)
	if empty.Mean() != 0 {
		t.Fatalf("empty Mean should be 0")
	}
}

func TestConcatAndSlice(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5}, {6}})
	c := ConcatCols(a, b)
	if c.Cols != 3 || c.At(0, 2) != 5 || c.At(1, 2) != 6 {
		t.Fatalf("ConcatCols wrong: %v", c)
	}
	if !Equal(c.SliceCols(0, 2), a, 0) {
		t.Fatalf("SliceCols should recover left operand")
	}
	if !Equal(c.SliceCols(2, 3), b, 0) {
		t.Fatalf("SliceCols should recover right operand")
	}
	if !Equal(c.SliceRows(1, 2), FromRows([][]float64{{3, 4, 6}}), 0) {
		t.Fatalf("SliceRows wrong")
	}
}

func TestGatherRows(t *testing.T) {
	m := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	g := GatherRows(m, []int{2, 0, 2})
	want := FromRows([][]float64{{3, 3}, {1, 1}, {3, 3}})
	if !Equal(g, want, 0) {
		t.Fatalf("GatherRows wrong: %v", g)
	}
}

func TestGatherRowsPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	GatherRows(New(2, 2), []int{3})
}

func TestInPlaceOps(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	m.AddInPlace(RowVector([]float64{3, 4}))
	if m.At(0, 1) != 6 {
		t.Fatalf("AddInPlace wrong")
	}
	m.ScaleInPlace(0.5)
	if m.At(0, 0) != 2 {
		t.Fatalf("ScaleInPlace wrong")
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatalf("Zero wrong")
	}
	m.Fill(3)
	if m.Sum() != 6 {
		t.Fatalf("Fill wrong")
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := New(50, 40)
	m.GlorotUniform(rng)
	limit := math.Sqrt(6.0 / 90.0)
	if m.MaxAbs() > limit {
		t.Fatalf("Glorot values exceed limit %v: %v", limit, m.MaxAbs())
	}
	if m.MaxAbs() == 0 {
		t.Fatalf("Glorot left matrix zeroed")
	}
	n := New(10, 10)
	n.RandUniform(rng, 0.5)
	if n.MaxAbs() > 0.5 {
		t.Fatalf("RandUniform exceeded scale")
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{-3, 2}})
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs wrong")
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random shapes and values.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := New(r, k)
		a.RandNormal(rng, 1)
		b := New(k, c)
		b.RandNormal(rng, 1)
		return Equal(MatMul(a, b).Transpose(), MatMul(b.Transpose(), a.Transpose()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: matrix multiplication distributes over addition.
func TestMatMulDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := New(r, k)
		a.RandNormal(rng, 1)
		b := New(k, c)
		b.RandNormal(rng, 1)
		d := New(k, c)
		d.RandNormal(rng, 1)
		left := MatMul(a, Add(b, d))
		right := Add(MatMul(a, b), MatMul(a, d))
		return Equal(left, right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestShapePanics(t *testing.T) {
	cases := []func(){
		func() { MatMul(New(2, 3), New(2, 3)) },
		func() { Add(New(1, 2), New(2, 1)) },
		func() { ConcatCols(New(1, 2), New(2, 2)) },
		func() { New(2, 2).SliceCols(1, 5) },
		func() { New(2, 2).SliceRows(-1, 1) },
		func() { AddRowBroadcast(New(2, 2), New(2, 2)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// MatMulInto writes into out while still reading a and b, so an out that
// shares backing storage with an operand silently corrupts the product. The
// overlap check must catch every aliasing shape the arena can produce.
func TestMatMulIntoAliasPanics(t *testing.T) {
	backing := make([]float64, 16)
	a := FromSlice(2, 2, backing[:4])
	b := FromSlice(2, 2, backing[4:8])
	cases := []struct {
		name string
		out  *Matrix
	}{
		{"out is a", a},
		{"out is b", b},
		{"out overlaps a's tail", FromSlice(2, 2, backing[2:6])},
		{"out overlaps b's head", FromSlice(2, 2, backing[6:10])},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected alias panic", tc.name)
				}
			}()
			MatMulInto(tc.out, a, b)
		}()
	}
	// Disjoint views carved from the SAME backing array must NOT be flagged:
	// this is exactly how the inference arena hands out scratch.
	out := FromSlice(2, 2, backing[8:12])
	MatMulInto(out, a, b)
	want := MatMul(a, b)
	if !Equal(out, want, 0) {
		t.Fatalf("disjoint same-backing MatMulInto mismatch: %v vs %v", out, want)
	}
}

func TestMulInto(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := New(3, 4)
	a.RandNormal(rng, 1)
	b := New(3, 4)
	b.RandNormal(rng, 1)
	out := New(3, 4)
	MulInto(out, a, b)
	if !Equal(out, Mul(a, b), 0) {
		t.Fatalf("MulInto mismatch")
	}
	// Unlike MatMulInto, in-place Hadamard is well-defined.
	want := Mul(a, b)
	MulInto(a, a, b)
	if !Equal(a, want, 0) {
		t.Fatalf("in-place MulInto mismatch")
	}
}
