// Register-blocked GEMM kernels, unrolled to the SIMD register width.
//
// The naive MatMul/MatMulInto kernels stream one output row at a time with a
// read-modify-write of the output slice on every multiply-add — one load, one
// FMA-able op, one store per element, so the CPU's superscalar units sit
// mostly idle. The blocked kernels here process a 2×4 output tile per
// micro-kernel iteration: 8 independent accumulators live in registers for
// the whole k-loop, every loaded b value is reused twice and every a value
// four times, and the store traffic drops from k·8 to 8 per tile. Four lanes
// is the float64 SIMD register width (one AVX2 register, two NEON registers);
// two rows is as tall as the tile can grow before the accumulators plus the
// four live b values exceed the 16 vector registers the compiler schedules
// into — a 4×4 tile measurably loses to 2×4 from spilling. The b-row offset
// is strength-reduced (off += n) so the inner loop carries no multiply.
//
// Numerics: for each output element the k-accumulation order is IDENTICAL to
// the naive kernel (k ascending), so the blocked kernels are bit-compatible
// with MatMulInto for finite inputs — blocking reorders which elements are
// computed together, never the order of additions within one element. The
// parity tests in internal/core lean on this: routing the fused inference
// path through the blocked kernels kept its ≤1e-12 tape tolerance intact.
//
// Tails: row and column counts that are not multiples of the block width
// fall through to 1×4 and scalar edge kernels, so ragged shapes (prime
// dimensions, 1×1) are first-class — see blocked_test.go.
//
// The float32 twins of these kernels live in f32.go; on amd64 with AVX2+FMA
// they dispatch to real 8-lane vector tiles (f32gemm_amd64.s).
package tensor

import "fmt"

// BlockLanes is the micro-kernel tile width: 4 float64 lanes (one AVX2
// register). Exported so tests can probe non-multiple "tail" shapes.
const BlockLanes = 4

// MatMulBlocked returns a × b using the register-blocked kernel.
func MatMulBlocked(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MatMulBlockedInto(out, a, b)
	return out
}

// MatMulBlockedInto computes a × b into out with the register-blocked
// kernel. The contract matches MatMulInto exactly: out must be preallocated
// a.Rows×b.Cols and must not alias either operand (every element of out is
// fully overwritten, so stale contents never leak through — including the
// k=0 case, which zero-fills).
func MatMulBlockedInto(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBlockedInto shape %dx%d × %dx%d into %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	if overlap(out.Data, a.Data) || overlap(out.Data, b.Data) {
		panic("tensor: MatMulBlockedInto out aliases an operand")
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	if k == 0 {
		out.Zero()
		return
	}
	if m == 0 || n == 0 {
		return
	}
	matMulBlocked(out.Data, a.Data, b.Data, m, k, n, n, 0)
}

// MatMulPairInto is the fused recurrent-gate kernel: it computes a·b1 and
// a·b2 in one call, writing the two products side by side into out
// (a.Rows × (b1.Cols+b2.Cols), b1's product in the left columns). Per GRU
// step the z and r gates both multiply the same hidden state h by their
// recurrent weights, so serving fuses the two matmuls into one sweep with a
// single packed output that the gate loop then consumes in one pass.
// Numerics per element are identical to two separate MatMulBlockedInto
// calls. The same contract applies: out is fully overwritten and must not
// alias any operand.
func MatMulPairInto(out, a, b1, b2 *Matrix) {
	if a.Cols != b1.Rows || a.Cols != b2.Rows || out.Rows != a.Rows || out.Cols != b1.Cols+b2.Cols {
		panic(fmt.Sprintf("tensor: MatMulPairInto shape %dx%d × [%dx%d | %dx%d] into %dx%d",
			a.Rows, a.Cols, b1.Rows, b1.Cols, b2.Rows, b2.Cols, out.Rows, out.Cols))
	}
	if overlap(out.Data, a.Data) || overlap(out.Data, b1.Data) || overlap(out.Data, b2.Data) {
		panic("tensor: MatMulPairInto out aliases an operand")
	}
	m, k := a.Rows, a.Cols
	stride := out.Cols
	if k == 0 {
		out.Zero()
		return
	}
	if m == 0 || stride == 0 {
		return
	}
	if b1.Cols > 0 {
		matMulBlocked(out.Data, a.Data, b1.Data, m, k, b1.Cols, stride, 0)
	}
	if b2.Cols > 0 {
		matMulBlocked(out.Data, a.Data, b2.Data, m, k, b2.Cols, stride, b1.Cols)
	}
}

// matMulBlocked is the strided kernel body shared by the public entry
// points; all shape/aliasing validation happens before it. It writes the
// m×n product into out columns [ooff, ooff+n) with row stride ostride,
// which is how MatMulPairInto packs two products into one matrix.
func matMulBlocked(out, a, b []float64, m, k, n, ostride, ooff int) {
	i := 0
	for ; i+2 <= m; i += 2 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		o0 := out[(i+0)*ostride+ooff : (i+0)*ostride+ooff+n]
		o1 := out[(i+1)*ostride+ooff : (i+1)*ostride+ooff+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c00, c01, c02, c03 float64
			var c10, c11, c12, c13 float64
			off := j
			for p := 0; p < k; p++ {
				bp := b[off : off+4 : off+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				av := a0[p]
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = a1[p]
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
				off += n
			}
			o0[j], o0[j+1], o0[j+2], o0[j+3] = c00, c01, c02, c03
			o1[j], o1[j+1], o1[j+2], o1[j+3] = c10, c11, c12, c13
		}
		for ; j < n; j++ { // column tail: 2 rows × 1 lane
			var c0, c1 float64
			off := j
			for p := 0; p < k; p++ {
				bv := b[off]
				c0 += a0[p] * bv
				c1 += a1[p] * bv
				off += n
			}
			o0[j], o1[j] = c0, c1
		}
	}
	for ; i < m; i++ { // row tail: 1 row, 4 lanes then scalar
		ar := a[i*k : i*k+k]
		or := out[i*ostride+ooff : i*ostride+ooff+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c0, c1, c2, c3 float64
			off := j
			for p := 0; p < k; p++ {
				bp := b[off : off+4 : off+4]
				av := ar[p]
				c0 += av * bp[0]
				c1 += av * bp[1]
				c2 += av * bp[2]
				c3 += av * bp[3]
				off += n
			}
			or[j], or[j+1], or[j+2], or[j+3] = c0, c1, c2, c3
		}
		for ; j < n; j++ {
			var c float64
			off := j
			for p := 0; p < k; p++ {
				c += ar[p] * b[off]
				off += n
			}
			or[j] = c
		}
	}
}
