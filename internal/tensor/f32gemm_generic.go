//go:build !amd64

package tensor

// Non-amd64 builds have no vector tiles; the float32 GEMM always runs the
// portable scalar blocking.
var f32UseAsm = false

func matMulAsm32(out, a, b []float32, m, k, n, ostride, ooff int) {
	matMulScalar32(out, a, b, m, k, n, ostride, ooff)
}
