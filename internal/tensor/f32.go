// Float32 matrices and the blocked kernels over them — the storage side of
// the float32 serving path. Training and the autodiff tape stay float64;
// Matrix32 exists so serving can hold a converted copy of the weights and
// run the forward pass at half the memory traffic. Only the operations the
// fused inference kernels need are provided; this is deliberately not a
// parallel universe of the full float64 API.
//
// On amd64 CPUs with AVX2+FMA the float32 GEMM dispatches to 8-lane vector
// tiles (f32gemm_amd64.s); everywhere else it runs the same 2×4 scalar
// blocking as the float64 kernel. The two implementations accumulate in the
// same ascending-k order per element — the vector tiles fuse each
// multiply-add (one rounding instead of two), so they are slightly MORE
// accurate than the scalar path, and both sit comfortably inside the k·eps32
// bound the parity tests assert.
package tensor

import (
	"fmt"
	"unsafe"
)

// Matrix32 is a dense row-major matrix of float32 values.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// New32 returns a zero-initialized float32 matrix with the given shape.
func New32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns the element at row i, column j.
func (m *Matrix32) At(i, j int) float64 { return float64(m.Data[i*m.Cols+j]) }

// Zero sets all elements of m to zero.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// To32 returns a float32 copy of m, rounding every element once. This is
// the bundle-load-time weight conversion: done exactly once per matrix, so
// the serving path never re-rounds.
func (m *Matrix) To32() *Matrix32 {
	out := New32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// Round32 returns a float64 copy of m with every element rounded through
// float32 — the reference for "what the float32 weights actually are" in
// parity arguments and tests.
func (m *Matrix) Round32() *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float64(float32(v))
	}
	return out
}

// overlap32 reports whether two float32 slices share any backing memory.
func overlap32(a, b []float32) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	const sz = unsafe.Sizeof(float32(0))
	alo := uintptr(unsafe.Pointer(&a[0]))
	blo := uintptr(unsafe.Pointer(&b[0]))
	return alo < blo+uintptr(len(b))*sz && blo < alo+uintptr(len(a))*sz
}

// MulInto32 computes the Hadamard product a ⊙ b into out. Aliasing is safe
// (each element depends only on its own position), mirroring MulInto.
func MulInto32(out, a, b *Matrix32) {
	if a.Rows != b.Rows || a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != a.Cols {
		panic(fmt.Sprintf("tensor: MulInto32 shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
}

// MatMulBlockedInto32 computes a × b into out with the register-blocked
// kernel, float32 throughout. Same contract as MatMulBlockedInto: out must
// be preallocated a.Rows×b.Cols and must not alias an operand; every output
// element is fully overwritten (k=0 zero-fills).
func MatMulBlockedInto32(out, a, b *Matrix32) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBlockedInto32 shape %dx%d × %dx%d into %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	if overlap32(out.Data, a.Data) || overlap32(out.Data, b.Data) {
		panic("tensor: MatMulBlockedInto32 out aliases an operand")
	}
	m, k, n := a.Rows, a.Cols, b.Cols
	if k == 0 {
		out.Zero()
		return
	}
	if m == 0 || n == 0 {
		return
	}
	matMulBlocked32(out.Data, a.Data, b.Data, m, k, n, n, 0)
}

// MatMulPairInto32 is the float32 fused recurrent-gate kernel, the twin of
// MatMulPairInto: a·b1 and a·b2 packed side by side into out. The float32
// serving path additionally pre-packs its [Uz|Ur] weights at load time, so
// this entry point mostly serves ragged fall-back shapes and tests.
func MatMulPairInto32(out, a, b1, b2 *Matrix32) {
	if a.Cols != b1.Rows || a.Cols != b2.Rows || out.Rows != a.Rows || out.Cols != b1.Cols+b2.Cols {
		panic(fmt.Sprintf("tensor: MatMulPairInto32 shape %dx%d × [%dx%d | %dx%d] into %dx%d",
			a.Rows, a.Cols, b1.Rows, b1.Cols, b2.Rows, b2.Cols, out.Rows, out.Cols))
	}
	if overlap32(out.Data, a.Data) || overlap32(out.Data, b1.Data) || overlap32(out.Data, b2.Data) {
		panic("tensor: MatMulPairInto32 out aliases an operand")
	}
	m, k := a.Rows, a.Cols
	stride := out.Cols
	if k == 0 {
		out.Zero()
		return
	}
	if m == 0 || stride == 0 {
		return
	}
	if b1.Cols > 0 {
		matMulBlocked32(out.Data, a.Data, b1.Data, m, k, b1.Cols, stride, 0)
	}
	if b2.Cols > 0 {
		matMulBlocked32(out.Data, a.Data, b2.Data, m, k, b2.Cols, stride, b1.Cols)
	}
}

// matMulBlocked32 dispatches one strided m×k×n float32 product: the AVX2+FMA
// tile driver when the CPU supports it, otherwise the scalar 2×4 blocking.
func matMulBlocked32(out, a, b []float32, m, k, n, ostride, ooff int) {
	if f32UseAsm {
		matMulAsm32(out, a, b, m, k, n, ostride, ooff)
		return
	}
	matMulScalar32(out, a, b, m, k, n, ostride, ooff)
}

// matMulScalar32 mirrors the float64 matMulBlocked exactly: a 2×4 register
// tile with strength-reduced b offsets, 1×4 and scalar tails, ascending-k
// accumulation per element. It is the portable reference the vector tiles
// are tested against.
func matMulScalar32(out, a, b []float32, m, k, n, ostride, ooff int) {
	i := 0
	for ; i+2 <= m; i += 2 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		o0 := out[(i+0)*ostride+ooff : (i+0)*ostride+ooff+n]
		o1 := out[(i+1)*ostride+ooff : (i+1)*ostride+ooff+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c00, c01, c02, c03 float32
			var c10, c11, c12, c13 float32
			off := j
			for p := 0; p < k; p++ {
				bp := b[off : off+4 : off+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				av := a0[p]
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = a1[p]
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
				off += n
			}
			o0[j], o0[j+1], o0[j+2], o0[j+3] = c00, c01, c02, c03
			o1[j], o1[j+1], o1[j+2], o1[j+3] = c10, c11, c12, c13
		}
		for ; j < n; j++ {
			var c0, c1 float32
			off := j
			for p := 0; p < k; p++ {
				bv := b[off]
				c0 += a0[p] * bv
				c1 += a1[p] * bv
				off += n
			}
			o0[j], o1[j] = c0, c1
		}
	}
	for ; i < m; i++ {
		ar := a[i*k : i*k+k]
		or := out[i*ostride+ooff : i*ostride+ooff+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			var c0, c1, c2, c3 float32
			off := j
			for p := 0; p < k; p++ {
				bp := b[off : off+4 : off+4]
				av := ar[p]
				c0 += av * bp[0]
				c1 += av * bp[1]
				c2 += av * bp[2]
				c3 += av * bp[3]
				off += n
			}
			or[j], or[j+1], or[j+2], or[j+3] = c0, c1, c2, c3
		}
		for ; j < n; j++ {
			var c float32
			off := j
			for p := 0; p < k; p++ {
				c += ar[p] * b[off]
				off += n
			}
			or[j] = c
		}
	}
}
