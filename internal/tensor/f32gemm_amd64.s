// AVX2+FMA float32 GEMM tiles for the blocked serving kernels.
//
// Each function computes one output tile of a row-major product
// out[r][c] = Σ_p a[r][p]·b[p][c] with all accumulators held in YMM
// registers for the whole k loop. b rows are loaded 16 floats (two YMM) at
// a time and reused across the tile rows; a values are broadcast. The
// k-accumulation order per element is ascending, matching the scalar
// kernels; VFMADD rounds once per multiply-add, so the tiles are slightly
// more accurate than the scalar path, never less.
//
// Strides are passed in elements and converted to bytes here. Callers
// (f32gemm_amd64.go) guarantee k ≥ 1 and full 16-column tiles; ragged
// edges stay in Go.

#include "textflag.h"

// func f32cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·f32cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func f32xgetbv() (eax, edx uint32)
TEXT ·f32xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemm4x16f32(out, a, b *float32, k, an, bn, on uintptr)
//
// 4-row × 16-column tile: 8 accumulator registers (two YMM per row),
// Y8/Y9 hold the current 16 b values, Y10 the broadcast a value.
TEXT ·gemm4x16f32(SB), NOSPLIT, $0-56
	MOVQ out+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ k+24(FP), CX
	MOVQ an+32(FP), R8
	MOVQ bn+40(FP), R9
	MOVQ on+48(FP), R10
	SHLQ $2, R8
	SHLQ $2, R9
	SHLQ $2, R10
	LEAQ (SI)(R8*1), R11  // a row 1
	LEAQ (R11)(R8*1), R12 // a row 2
	LEAQ (R12)(R8*1), R13 // a row 3
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

tile4loop:
	VMOVUPS (BX), Y8
	VMOVUPS 32(BX), Y9
	VBROADCASTSS (SI), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS (R11), Y10
	VFMADD231PS Y8, Y10, Y2
	VFMADD231PS Y9, Y10, Y3
	VBROADCASTSS (R12), Y10
	VFMADD231PS Y8, Y10, Y4
	VFMADD231PS Y9, Y10, Y5
	VBROADCASTSS (R13), Y10
	VFMADD231PS Y8, Y10, Y6
	VFMADD231PS Y9, Y10, Y7
	ADDQ $4, SI
	ADDQ $4, R11
	ADDQ $4, R12
	ADDQ $4, R13
	ADDQ R9, BX
	DECQ CX
	JNZ  tile4loop

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ R10, DI
	VMOVUPS Y2, (DI)
	VMOVUPS Y3, 32(DI)
	ADDQ R10, DI
	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	ADDQ R10, DI
	VMOVUPS Y6, (DI)
	VMOVUPS Y7, 32(DI)
	VZEROUPPER
	RET

// func gemm1x16f32(out, a, b *float32, k, bn uintptr)
//
// Single-row × 16-column tile for the row tail.
TEXT ·gemm1x16f32(SB), NOSPLIT, $0-40
	MOVQ out+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ k+24(FP), CX
	MOVQ bn+32(FP), R9
	SHLQ $2, R9
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

tile1loop:
	VMOVUPS (BX), Y8
	VMOVUPS 32(BX), Y9
	VBROADCASTSS (SI), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	ADDQ $4, SI
	ADDQ R9, BX
	DECQ CX
	JNZ  tile1loop

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VZEROUPPER
	RET
