//go:build amd64

package tensor

// Feature detection and the Go-side tile driver for the AVX2+FMA float32
// GEMM in f32gemm_amd64.s. The assembly handles full 4-row × 16-column
// tiles (and 1×16 row tails); ragged edges — fewer than 16 remaining
// columns or a final odd row block — run through the scalar kernels, which
// produce the same ascending-k accumulation per element.

// f32UseAsm is true when the CPU and OS support AVX2 and FMA. Tests may
// flip it to force the scalar path; it is otherwise set once at init.
var f32UseAsm = detectAVX2FMA()

//go:noescape
func f32cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func f32xgetbv() (eax, edx uint32)

//go:noescape
func gemm4x16f32(out, a, b *float32, k, an, bn, on uintptr)

//go:noescape
func gemm1x16f32(out, a, b *float32, k, bn uintptr)

// detectAVX2FMA checks CPU support for FMA3 and AVX2 plus OS support for
// saving YMM state (OSXSAVE + XCR0), the full precondition for running the
// vector tiles.
func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := f32cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := f32cpuid(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&fma == 0 || ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if xcr0, _ := f32xgetbv(); xcr0&6 != 6 { // XMM and YMM state enabled
		return false
	}
	_, ebx7, _, _ := f32cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// matMulAsm32 drives the vector tiles over a strided m×k×n product.
// Callers guarantee k ≥ 1, m ≥ 1, n ≥ 1 and no aliasing.
func matMulAsm32(out, a, b []float32, m, k, n, ostride, ooff int) {
	uk, ubn, uon := uintptr(k), uintptr(n), uintptr(ostride)
	i := 0
	for ; i+4 <= m; i += 4 {
		j := 0
		for ; j+16 <= n; j += 16 {
			gemm4x16f32(&out[i*ostride+ooff+j], &a[i*k], &b[j], uk, uk, ubn, uon)
		}
		if j < n {
			scalarTail32(out, a, b, i, i+4, j, k, n, ostride, ooff)
		}
	}
	for ; i < m; i++ {
		j := 0
		for ; j+16 <= n; j += 16 {
			gemm1x16f32(&out[i*ostride+ooff+j], &a[i*k], &b[j], uk, ubn)
		}
		if j < n {
			scalarTail32(out, a, b, i, i+1, j, k, n, ostride, ooff)
		}
	}
}

// scalarTail32 finishes rows [i0,i1) over columns [j0,n) in plain scalar
// code — the ragged right edge of the tile grid.
func scalarTail32(out, a, b []float32, i0, i1, j0, k, n, ostride, ooff int) {
	for i := i0; i < i1; i++ {
		ar := a[i*k : i*k+k]
		or := out[i*ostride+ooff : i*ostride+ooff+n]
		for j := j0; j < n; j++ {
			var c float32
			off := j
			for p := 0; p < k; p++ {
				c += ar[p] * b[off]
				off += n
			}
			or[j] = c
		}
	}
}
