// Package tensor provides dense float64 matrices and the linear-algebra
// primitives used by the autodiff engine and the classical baselines.
//
// A Matrix is stored in row-major order. Operations that could only fail
// through programmer error (shape mismatches) panic with a descriptive
// message, mirroring how the standard library treats misuse (e.g. slice
// bounds); recoverable conditions return errors.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"unsafe"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialized matrix with the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (row-major) in a Matrix. The slice is used directly,
// not copied; len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from a slice of equal-length rows, copying them.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("tensor: FromRows ragged row %d: %d != %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// RowVector returns a 1×len(v) matrix copying v.
func RowVector(v []float64) *Matrix {
	m := New(1, len(v))
	copy(m.Data, v)
	return m
}

// ColVector returns a len(v)×1 matrix copying v.
func ColVector(v []float64) *Matrix {
	m := New(len(v), 1)
	copy(m.Data, v)
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements of m to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Matrix) shapeCheck(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// String implements fmt.Stringer with a compact shape-prefixed rendering.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)%v", m.Rows, m.Cols, m.Data)
}

// MatMul returns a × b, where a is r×k and b is k×c.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dims %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// overlap reports whether two float64 slices share any backing memory. The
// pointer comparison covers only the addressable [0,len) ranges, so disjoint
// views carved from one arena chunk are correctly reported as non-overlapping.
func overlap(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	const sz = unsafe.Sizeof(float64(0))
	alo := uintptr(unsafe.Pointer(&a[0]))
	blo := uintptr(unsafe.Pointer(&b[0]))
	return alo < blo+uintptr(len(b))*sz && blo < alo+uintptr(len(a))*sz
}

// MatMulInto computes a × b into out, which must be preallocated a.Rows×b.Cols.
// out must not alias a or b: the kernel zeroes out before accumulating, so an
// aliased operand would be read after it was overwritten. The fused inference
// kernels lean on this op heavily with arena-recycled scratch, where silent
// aliasing corruption would be near-impossible to trace — so it fails loudly.
func MatMulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: MatMulInto shape mismatch")
	}
	if overlap(out.Data, a.Data) || overlap(out.Data, b.Data) {
		panic("tensor: MatMulInto out aliases an operand")
	}
	out.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add returns a + b elementwise.
func Add(a, b *Matrix) *Matrix {
	a.shapeCheck(b, "Add")
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out
}

// Sub returns a − b elementwise.
func Sub(a, b *Matrix) *Matrix {
	a.shapeCheck(b, "Sub")
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out
}

// Mul returns the Hadamard (elementwise) product a ⊙ b.
func Mul(a, b *Matrix) *Matrix {
	a.shapeCheck(b, "Mul")
	out := New(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
	return out
}

// MulInto computes the Hadamard product a ⊙ b into out. Unlike MatMulInto,
// aliasing is safe here (each element depends only on its own position), so
// out may be a or b for an in-place product.
func MulInto(out, a, b *Matrix) {
	a.shapeCheck(b, "MulInto")
	a.shapeCheck(out, "MulInto")
	for i, v := range a.Data {
		out.Data[i] = v * b.Data[i]
	}
}

// Scale returns s·m.
func Scale(m *Matrix, s float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = v * s
	}
	return out
}

// AddInPlace adds o into m.
func (m *Matrix) AddInPlace(o *Matrix) {
	m.shapeCheck(o, "AddInPlace")
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// ScaleInPlace multiplies m by s in place.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddRowBroadcast returns m with the 1×cols row vector b added to every row.
func AddRowBroadcast(m, b *Matrix) *Matrix {
	if b.Rows != 1 || b.Cols != m.Cols {
		panic(fmt.Sprintf("tensor: AddRowBroadcast %dx%d + %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			orow[j] = v + b.Data[j]
		}
	}
	return out
}

// Apply returns f applied elementwise to m.
func Apply(m *Matrix, f func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = f(v)
	}
	return out
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

// Mean returns the mean of all elements; it is 0 for an empty matrix.
func (m *Matrix) Mean() float64 {
	if len(m.Data) == 0 {
		return 0
	}
	return m.Sum() / float64(len(m.Data))
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Dot returns the inner product of two equal-shape matrices viewed as
// flattened vectors.
func Dot(a, b *Matrix) float64 {
	a.shapeCheck(b, "Dot")
	s := 0.0
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// ConcatCols returns the horizontal concatenation [a | b]; the operands
// must have equal row counts.
func ConcatCols(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: ConcatCols rows %d vs %d", a.Rows, b.Rows))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// SliceCols returns the column range [from, to) of m as a new matrix.
func (m *Matrix) SliceCols(from, to int) *Matrix {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) of %d cols", from, to, m.Cols))
	}
	out := New(m.Rows, to-from)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[from:to])
	}
	return out
}

// SliceRows returns the row range [from, to) of m as a new matrix.
func (m *Matrix) SliceRows(from, to int) *Matrix {
	if from < 0 || to > m.Rows || from > to {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) of %d rows", from, to, m.Rows))
	}
	out := New(to-from, m.Cols)
	copy(out.Data, m.Data[from*m.Cols:to*m.Cols])
	return out
}

// GatherRows returns a matrix whose i-th row is m.Row(idx[i]).
func GatherRows(m *Matrix, idx []int) *Matrix {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		if r < 0 || r >= m.Rows {
			panic(fmt.Sprintf("tensor: GatherRows index %d out of %d rows", r, m.Rows))
		}
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// RandUniform fills m with samples from U(−scale, scale).
func (m *Matrix) RandUniform(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// RandNormal fills m with samples from N(0, std²).
func (m *Matrix) RandNormal(rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// GlorotUniform fills m with the Glorot/Xavier uniform initialization for a
// weight matrix of shape fanIn×fanOut.
func (m *Matrix) GlorotUniform(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	m.RandUniform(rng, limit)
}

// Equal reports whether a and b have the same shape and all elements within
// tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
