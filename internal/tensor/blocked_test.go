package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randMat fills a rows×cols matrix with non-trivial values (including exact
// zeros, so the naive kernel's zero-skip path participates in the parity).
func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		switch rng.Intn(10) {
		case 0:
			m.Data[i] = 0
		default:
			m.Data[i] = rng.NormFloat64()
		}
	}
	return m
}

// TestBlockedMatchesNaive drives the blocked kernel across ragged shapes —
// 1×1, primes, dimensions straddling every tail path — and demands
// bit-identical agreement with the naive reference. The two kernels share
// per-element accumulation order, so any difference at all is a bug, not
// round-off.
func TestBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{1, 1, 1},
		{1, 4, 1}, {4, 1, 4}, {4, 4, 4}, {8, 8, 8},
		{2, 3, 5}, {3, 7, 11}, {5, 13, 3}, {7, 5, 17}, // primes: all tails
		{4, 4, 5}, {4, 4, 7}, {5, 4, 4}, {6, 4, 4}, // one ragged dim
		{9, 6, 10}, {13, 31, 29}, {1, 64, 33},
		{32, 32, 32}, {8, 32, 96}, // the inference hot shapes
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a, b := randMat(rng, m, k), randMat(rng, k, n)
			want := MatMul(a, b)
			got := New(m, n)
			got.Fill(math.NaN()) // any element the kernel misses survives as NaN
			MatMulBlockedInto(got, a, b)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("element %d: blocked %v vs naive %v", i, got.Data[i], want.Data[i])
				}
			}
			if conv := MatMulBlocked(a, b); !Equal(conv, want, 0) {
				t.Fatalf("MatMulBlocked convenience form diverges")
			}
		})
	}
}

// TestBlocked32MatchesFloat64 pins the float32 kernel's error bound: against
// the float64 reference on the same (float32-rounded) inputs, every element
// stays within a few k·eps32 — the tolerance rationale documented in
// docs/performance.md.
func TestBlocked32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, s := range [][3]int{{1, 1, 1}, {3, 7, 11}, {8, 32, 96}, {5, 13, 3}, {33, 31, 5}} {
		m, k, n := s[0], s[1], s[2]
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		a32, b32 := a.To32(), b.To32()
		want := MatMul(a.Round32(), b.Round32())
		got := New32(m, n)
		MatMulBlockedInto32(got, a32, b32)
		tol := float64(k+4) * 1.2e-7
		for i := range want.Data {
			scale := math.Max(1, math.Abs(want.Data[i]))
			if diff := math.Abs(float64(got.Data[i]) - want.Data[i]); diff > tol*scale {
				t.Fatalf("%dx%dx%d element %d: f32 %v vs f64 %v (diff %g, tol %g)",
					m, k, n, i, got.Data[i], want.Data[i], diff, tol*scale)
			}
		}
	}
}

// TestPairMatchesSeparate pins the fused recurrent-gate kernel: packing
// a·b1 and a·b2 side by side must be bit-identical to two separate blocked
// products, including ragged widths on either half and b1/b2 widths of 0.
func TestPairMatchesSeparate(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	cases := [][3]int{ // {k, n1, n2}
		{32, 32, 32}, // the GRU [Uz|Ur] shape
		{7, 5, 3}, {1, 1, 1}, {13, 4, 9}, {6, 0, 8}, {6, 8, 0},
	}
	for _, c := range cases {
		k, n1, n2 := c[0], c[1], c[2]
		for _, m := range []int{1, 2, 5, 8} {
			a := randMat(rng, m, k)
			b1, b2 := randMat(rng, k, n1), randMat(rng, k, n2)
			got := New(m, n1+n2)
			got.Fill(math.NaN())
			MatMulPairInto(got, a, b1, b2)
			w1, w2 := MatMul(a, b1), MatMul(a, b2)
			for i := 0; i < m; i++ {
				row := got.Row(i)
				for j := 0; j < n1; j++ {
					if row[j] != w1.At(i, j) {
						t.Fatalf("m=%d k=%d n1=%d n2=%d: left half (%d,%d) = %v, want %v", m, k, n1, n2, i, j, row[j], w1.At(i, j))
					}
				}
				for j := 0; j < n2; j++ {
					if row[n1+j] != w2.At(i, j) {
						t.Fatalf("m=%d k=%d n1=%d n2=%d: right half (%d,%d) = %v, want %v", m, k, n1, n2, i, j, row[n1+j], w2.At(i, j))
					}
				}
			}
			// float32 twin, against the strided scalar reference.
			got32 := New32(m, n1+n2)
			MatMulPairInto32(got32, a.To32(), b1.To32(), b2.To32())
			want32 := New32(m, n1+n2)
			if n1 > 0 {
				matMulScalar32(want32.Data, a.To32().Data, b1.To32().Data, m, k, n1, n1+n2, 0)
			}
			if n2 > 0 {
				matMulScalar32(want32.Data, a.To32().Data, b2.To32().Data, m, k, n2, n1+n2, n1)
			}
			tol := float64(k+4) * 1.2e-7
			for i := range want32.Data {
				scale := math.Max(1, math.Abs(float64(want32.Data[i])))
				if d := math.Abs(float64(got32.Data[i] - want32.Data[i])); d > tol*scale {
					t.Fatalf("m=%d k=%d n1=%d n2=%d: f32 pair element %d diff %g", m, k, n1, n2, i, d)
				}
			}
		}
	}
}

// TestBlockedZeroK pins the k=0 guard: the inner dimension collapses to
// nothing, so the kernel must zero-fill out rather than leave stale scratch.
func TestBlockedZeroK(t *testing.T) {
	a, b := New(3, 0), New(0, 5)
	out := New(3, 5)
	out.Fill(7)
	MatMulBlockedInto(out, a, b)
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("k=0 element %d = %v, want 0", i, v)
		}
	}
	out32 := New32(3, 5)
	for i := range out32.Data {
		out32.Data[i] = 7
	}
	MatMulBlockedInto32(out32, &Matrix32{Rows: 3, Cols: 0}, &Matrix32{Rows: 0, Cols: 5})
	for i, v := range out32.Data {
		if v != 0 {
			t.Fatalf("f32 k=0 element %d = %v, want 0", i, v)
		}
	}
}

// TestF32VectorMatchesScalar cross-checks the AVX2+FMA tile driver against
// the portable scalar kernel on shapes that exercise every tile boundary:
// full 4×16 tiles, 1×16 row tails, sub-16 column tails, and single-row
// products. The two paths share per-element accumulation order but the
// vector tiles fuse each multiply-add, so agreement is to float32 round-off
// rather than bitwise.
func TestF32VectorMatchesScalar(t *testing.T) {
	if !f32UseAsm {
		t.Skip("no AVX2+FMA vector tiles on this CPU")
	}
	rng := rand.New(rand.NewSource(45))
	shapes := [][3]int{
		{4, 32, 16}, {8, 32, 64}, {8, 32, 32}, {160, 1, 96}, // serving hot shapes
		{1, 32, 64}, {2, 5, 16}, {5, 7, 19}, {6, 9, 33}, {3, 1, 17}, {7, 13, 15},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		a32, b32 := a.To32(), b.To32()
		asm, sc := New32(m, n), New32(m, n)
		matMulAsm32(asm.Data, a32.Data, b32.Data, m, k, n, n, 0)
		matMulScalar32(sc.Data, a32.Data, b32.Data, m, k, n, n, 0)
		tol := float64(k+4) * 2.4e-7
		for i := range asm.Data {
			scale := math.Max(1, math.Abs(float64(sc.Data[i])))
			if d := math.Abs(float64(asm.Data[i] - sc.Data[i])); d > tol*scale {
				t.Fatalf("%dx%dx%d element %d: vector %v vs scalar %v", m, k, n, i, asm.Data[i], sc.Data[i])
			}
		}
	}
}

// TestBlockedShapePanics mirrors the naive kernel's misuse contract.
func TestBlockedShapePanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("inner mismatch", func() { MatMulBlockedInto(New(2, 3), New(2, 4), New(5, 3)) })
	expectPanic("out shape", func() { MatMulBlockedInto(New(3, 3), New(2, 4), New(4, 3)) })
	expectPanic("inner mismatch f32", func() { MatMulBlockedInto32(New32(2, 3), New32(2, 4), New32(5, 3)) })
	expectPanic("out shape f32", func() { MatMulBlockedInto32(New32(3, 3), New32(2, 4), New32(4, 3)) })
}

// TestBlockedAliasPanics extends the MatMulInto aliasing-corruption guard to
// the blocked and float32 entry points: out sharing storage with an operand
// must fail loudly, including partial overlaps carved from one backing array.
func TestBlockedAliasPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected aliasing panic", name)
			}
		}()
		f()
	}
	sq := New(4, 4)
	expectPanic("out==a", func() { MatMulBlockedInto(sq, sq, New(4, 4)) })
	expectPanic("out==b", func() { MatMulBlockedInto(sq, New(4, 4), sq) })
	backing := make([]float64, 32)
	expectPanic("partial overlap", func() {
		out := FromSlice(4, 4, backing[8:24])
		a := FromSlice(4, 4, backing[:16])
		MatMulBlockedInto(out, a, New(4, 4))
	})
	sq8 := New(4, 8)
	expectPanic("pair out==b2", func() { MatMulPairInto(sq8, New(4, 4), New(4, 4), FromSlice(4, 4, sq8.Data[:16])) })
	sq32 := New32(4, 4)
	expectPanic("f32 out==a", func() { MatMulBlockedInto32(sq32, sq32, New32(4, 4)) })
	expectPanic("f32 out==b", func() { MatMulBlockedInto32(sq32, New32(4, 4), sq32) })
	backing32 := make([]float32, 32)
	expectPanic("f32 partial overlap", func() {
		out := &Matrix32{Rows: 4, Cols: 4, Data: backing32[8:24]}
		a := &Matrix32{Rows: 4, Cols: 4, Data: backing32[:16]}
		MatMulBlockedInto32(out, a, New32(4, 4))
	})
}

// The hot inference shape: the per-step recurrent product at batch 8 with
// the fused [Uz|Ur] right-hand side (32×64).
func benchOperands(rng *rand.Rand) (*Matrix, *Matrix, *Matrix) {
	return New(8, 64), randMat(rng, 8, 32), randMat(rng, 32, 64)
}

func BenchmarkMatMulNaive_8x32x64(b *testing.B) {
	out, x, w := benchOperands(rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, w)
	}
}

func BenchmarkMatMulBlocked_8x32x64(b *testing.B) {
	out, x, w := benchOperands(rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulBlockedInto(out, x, w)
	}
}

func BenchmarkMatMulBlocked32_8x32x64(b *testing.B) {
	_, x, w := benchOperands(rand.New(rand.NewSource(1)))
	out32, x32, w32 := New32(8, 64), x.To32(), w.To32()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulBlockedInto32(out32, x32, w32)
	}
}
