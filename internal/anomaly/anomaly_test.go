package anomaly

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/tensor"
)

func TestFitErrorModel(t *testing.T) {
	pred := []float64{10, 11, 12}
	actual := []float64{9, 11, 13}
	em := FitErrorModel(pred, actual)
	if em.Samples != 3 || em.Dist.Mu != 0 {
		t.Fatalf("error model wrong: %+v", em)
	}
	if em.Dist.Sigma == 0 {
		t.Fatalf("sigma should be nonzero")
	}
}

func TestFlagGammaThreshold(t *testing.T) {
	// Errors: mostly ±1, one +10 outlier.
	actual := []float64{0, 0, 0, 0, 0, 0}
	pred := []float64{1, -1, 1, -1, 1, 10}
	em := FitErrorModel(pred[:5], actual[:5]) // μ≈0.2, σ≈1.1
	flags := Flag(pred, actual, em, Config{Gamma: 2})
	for i := 0; i < 5; i++ {
		if flags[i] {
			t.Fatalf("normal step %d flagged", i)
		}
	}
	if !flags[5] {
		t.Fatalf("outlier not flagged")
	}
}

func TestFlagAbsFilterSuppressesSmallDeviations(t *testing.T) {
	// Tiny σ makes even small deviations exceed γσ, but the 5-point
	// absolute filter must suppress them.
	actual := []float64{0, 0, 0}
	pred := []float64{1, 2, 8}
	em := ErrorModel{}
	em.Dist.Mu, em.Dist.Sigma = 0, 0.1
	noFilter := Flag(pred, actual, em, Config{Gamma: 2})
	if !noFilter[0] || !noFilter[1] || !noFilter[2] {
		t.Fatalf("all should exceed γσ without filter: %v", noFilter)
	}
	filtered := Flag(pred, actual, em, Config{Gamma: 2, AbsFilter: 5})
	if filtered[0] || filtered[1] {
		t.Fatalf("small deviations should be filtered: %v", filtered)
	}
	if !filtered[2] {
		t.Fatalf("large deviation should survive the filter")
	}
}

func TestFlagHigherGammaIsStricter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	pred := make([]float64, n)
	actual := make([]float64, n)
	for i := range pred {
		actual[i] = 0
		pred[i] = rng.NormFloat64()
	}
	em := FitErrorModel(pred[:300], actual[:300])
	count := func(g float64) int {
		c := 0
		for _, f := range Flag(pred, actual, em, Config{Gamma: g}) {
			if f {
				c++
			}
		}
		return c
	}
	c1, c2, c3 := count(1), count(2), count(3)
	if !(c1 > c2 && c2 > c3) {
		t.Fatalf("flag counts must fall with gamma: %d %d %d", c1, c2, c3)
	}
}

func TestFlagPanics(t *testing.T) {
	em := FitErrorModel([]float64{1, 2}, []float64{1, 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("length mismatch should panic")
			}
		}()
		Flag([]float64{1}, []float64{1, 2}, em, Config{Gamma: 1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("gamma<=0 should panic")
			}
		}()
		Flag([]float64{1}, []float64{1}, em, Config{Gamma: 0})
	}()
}

func TestSelfFlag(t *testing.T) {
	// Self-referenced distribution: clear outlier flagged, rest not.
	actual := make([]float64, 50)
	pred := make([]float64, 50)
	rng := rand.New(rand.NewSource(2))
	for i := range pred {
		pred[i] = rng.NormFloat64() * 0.5
	}
	pred[25] = 30
	flags := SelfFlag(pred, actual, Config{Gamma: 3})
	if !flags[25] {
		t.Fatalf("outlier not flagged by self distribution")
	}
	others := 0
	for i, f := range flags {
		if f && i != 25 {
			others++
		}
	}
	if others > 2 {
		t.Fatalf("too many false flags: %d", others)
	}
}

func testSeries(n int) *dataset.Series {
	s := &dataset.Series{
		Env:     envmeta.Environment{Testbed: "tb1", SUT: "db", Testcase: "load", Build: "S05"},
		ChainID: "tb1|db|load",
		CF:      tensor.New(n, 1),
		RU:      make([]float64, n),
		Times:   make([]int64, n),
	}
	for i := range s.Times {
		s.Times[i] = int64(1000 + i*900)
	}
	return s
}

func TestMergeAlarmsBasic(t *testing.T) {
	s := testSeries(10)
	pred := make([]float64, 10)
	pred[2], pred[3], pred[7] = 5, 8, 4
	flags := []bool{false, false, true, true, false, false, false, true, false, false}
	alarms := MergeAlarms("env2vec", s, flags, pred, 0)
	if len(alarms) != 2 {
		t.Fatalf("want 2 alarms, got %d: %v", len(alarms), alarms)
	}
	a := alarms[0]
	if a.StartIdx != 2 || a.EndIdx != 3 || a.PeakDev != 8 {
		t.Fatalf("first alarm wrong: %+v", a)
	}
	if a.StartTime != 1000+2*900 || a.EndTime != 1000+3*900 {
		t.Fatalf("alarm times wrong: %+v", a)
	}
	if a.Duration() != 2 || alarms[1].Duration() != 1 {
		t.Fatalf("durations wrong")
	}
	if !strings.Contains(a.String(), "tb1") {
		t.Fatalf("String missing testbed: %q", a.String())
	}
}

func TestMergeAlarmsGapTolerance(t *testing.T) {
	s := testSeries(8)
	pred := make([]float64, 8)
	flags := []bool{true, false, true, false, false, false, true, false}
	if got := len(MergeAlarms("d", s, flags, pred, 1)); got != 2 {
		t.Fatalf("gap=1 should merge first two runs: got %d alarms", got)
	}
	if got := len(MergeAlarms("d", s, flags, pred, 0)); got != 3 {
		t.Fatalf("gap=0 should keep 3 alarms: got %d", got)
	}
	if got := len(MergeAlarms("d", s, flags, pred, 10)); got != 1 {
		t.Fatalf("large gap should merge all: got %d", got)
	}
}

func TestMergeAlarmsPanicsOnMismatch(t *testing.T) {
	s := testSeries(4)
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	MergeAlarms("d", s, []bool{true}, []float64{1, 2, 3, 4}, 0)
}

func TestEvaluateOverlap(t *testing.T) {
	s := testSeries(10)
	s.Anomalous = make([]bool, 10)
	s.Anomalous[4] = true
	s.Anomalous[5] = true
	alarms := []Alarm{
		{StartIdx: 3, EndIdx: 4}, // overlaps → correct
		{StartIdx: 7, EndIdx: 8}, // no overlap → false
	}
	st := Evaluate(alarms, s)
	if st.Alarms != 2 || st.Correct != 1 {
		t.Fatalf("evaluate wrong: %+v", st)
	}
	unl := testSeries(10)
	if got := Evaluate(alarms, unl); got.Correct != 0 || got.Alarms != 2 {
		t.Fatalf("unlabeled series should yield zero correct")
	}
}

func TestTrueAndDetectedEpisodes(t *testing.T) {
	s := testSeries(12)
	s.Anomalous = []bool{false, true, true, false, false, true, false, true, true, true, false, false}
	if got := TrueEpisodes(s); got != 3 {
		t.Fatalf("TrueEpisodes = %d", got)
	}
	alarms := []Alarm{{StartIdx: 2, EndIdx: 2}, {StartIdx: 10, EndIdx: 11}}
	if got := DetectedEpisodes(alarms, s); got != 1 {
		t.Fatalf("DetectedEpisodes = %d", got)
	}
	alarms = append(alarms, Alarm{StartIdx: 5, EndIdx: 9})
	if got := DetectedEpisodes(alarms, s); got != 3 {
		t.Fatalf("DetectedEpisodes after adding = %d", got)
	}
	if TrueEpisodes(testSeries(5)) != 0 {
		t.Fatalf("unlabeled series has no episodes")
	}
}

// Property: alarms never overlap, are ordered, and cover exactly the
// flagged steps when maxGap=0.
func TestMergeAlarmsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		s := testSeries(n)
		flags := make([]bool, n)
		flagged := 0
		for i := range flags {
			flags[i] = rng.Float64() < 0.3
			if flags[i] {
				flagged++
			}
		}
		pred := make([]float64, n)
		alarms := MergeAlarms("p", s, flags, pred, 0)
		covered := 0
		lastEnd := -1
		for _, a := range alarms {
			if a.StartIdx <= lastEnd || a.EndIdx < a.StartIdx {
				return false
			}
			for i := a.StartIdx; i <= a.EndIdx; i++ {
				if !flags[i] {
					return false
				}
				covered++
			}
			lastEnd = a.EndIdx
		}
		return covered == flagged
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
