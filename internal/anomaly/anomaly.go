// Package anomaly implements the contextual anomaly detection layer of
// Env2Vec (§3.2 "Anomaly detection" and §4.2.2): a Gaussian model of
// prediction errors from previous non-problematic builds, γ·σ thresholding,
// the 5% absolute-deviation false-alarm filter, merging of flagged
// timesteps into alarm intervals, and evaluation of pooled alarms against
// ground-truth labels (true/false alarm rates A_T and A_F).
package anomaly

import (
	"fmt"
	"math"

	"env2vec/internal/dataset"
	"env2vec/internal/metrics"
	"env2vec/internal/stats"
)

// ErrorModel is the Gaussian fitted to the prediction errors of previous
// builds in a chain.
type ErrorModel struct {
	Dist    stats.Gaussian
	Samples int
}

// FitErrorModel builds the error distribution from predictions and
// observations on historical (non-problematic) builds.
func FitErrorModel(pred, actual []float64) ErrorModel {
	errs := metrics.Errors(pred, actual)
	return ErrorModel{Dist: stats.FitGaussian(errs), Samples: len(errs)}
}

// Config controls detection.
type Config struct {
	// Gamma is the γ multiplier on σ_error: larger values mean stricter
	// criteria, higher precision, lower recall.
	Gamma float64
	// AbsFilter additionally requires |y'−y| to exceed this many absolute
	// units (5.0 CPU points in §4.2.2); 0 disables the filter.
	AbsFilter float64
}

// Flag returns per-timestep anomaly flags: timestep p is flagged when the
// error deviates from μ_error by more than γ·σ_error and (if enabled)
// |pred−actual| exceeds the absolute filter.
func Flag(pred, actual []float64, em ErrorModel, cfg Config) []bool {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("anomaly: length mismatch %d vs %d", len(pred), len(actual)))
	}
	if cfg.Gamma <= 0 {
		panic(fmt.Sprintf("anomaly: gamma must be positive, got %v", cfg.Gamma))
	}
	out := make([]bool, len(pred))
	for i := range pred {
		e := pred[i] - actual[i]
		dev := math.Abs(e - em.Dist.Mu)
		if dev <= cfg.Gamma*em.Dist.Sigma {
			continue
		}
		if cfg.AbsFilter > 0 && math.Abs(e) < cfg.AbsFilter {
			continue
		}
		out[i] = true
	}
	return out
}

// SelfFlag handles the unseen-environment case of §4.3, where no historical
// error distribution exists: the error model is fitted on the test
// execution's own errors, then thresholded with γ.
func SelfFlag(pred, actual []float64, cfg Config) []bool {
	em := FitErrorModel(pred, actual)
	return Flag(pred, actual, em, cfg)
}

// Alarm is one reported problem interval, carrying everything a testing
// engineer needs to locate the issue (step 4 of the workflow): the full
// environment tuple plus the flagged time interval.
type Alarm struct {
	// Source classifies who raised the alarm: "drift" for the model-quality
	// monitor's per-environment error drift, "slo" for the monitoring
	// plane's burn-rate rules. Empty means "drift" (the original producer).
	Source    string `json:",omitempty"`
	Detector  string
	ChainID   string
	Testbed   string
	SUT       string `json:",omitempty"`
	Testcase  string `json:",omitempty"`
	Build     string
	StartIdx  int   // first flagged timestep (inclusive)
	EndIdx    int   // last flagged timestep (inclusive)
	StartTime int64 // unix seconds; 0 when the series carries no timestamps
	EndTime   int64
	PeakDev   float64 // largest |pred−actual| in the interval
}

// Duration returns the number of flagged timesteps covered by the alarm.
func (a Alarm) Duration() int { return a.EndIdx - a.StartIdx + 1 }

// String implements fmt.Stringer.
func (a Alarm) String() string {
	return fmt.Sprintf("[%s] chain=%s testbed=%s build=%s steps=%d..%d peak=%.2f",
		a.Detector, a.ChainID, a.Testbed, a.Build, a.StartIdx, a.EndIdx, a.PeakDev)
}

// MergeAlarms converts per-timestep flags into alarms, merging runs of
// consecutive flagged steps (allowing gaps up to maxGap unflagged steps)
// into single intervals.
func MergeAlarms(detector string, s *dataset.Series, flags []bool, pred []float64, maxGap int) []Alarm {
	if len(flags) != s.Len() || len(pred) != s.Len() {
		panic(fmt.Sprintf("anomaly: merge length mismatch flags=%d pred=%d series=%d", len(flags), len(pred), s.Len()))
	}
	var alarms []Alarm
	inAlarm := false
	gap := 0
	var cur Alarm
	flush := func() {
		if inAlarm {
			alarms = append(alarms, cur)
			inAlarm = false
		}
	}
	for i, f := range flags {
		if !f {
			if inAlarm {
				gap++
				if gap > maxGap {
					flush()
				}
			}
			continue
		}
		dev := math.Abs(pred[i] - s.RU[i])
		if !inAlarm {
			cur = Alarm{
				Detector: detector, ChainID: s.ChainID,
				Testbed: s.Env.Testbed, SUT: s.Env.SUT,
				Testcase: s.Env.Testcase, Build: s.Env.Build,
				StartIdx: i, EndIdx: i, PeakDev: dev,
			}
			if len(s.Times) == s.Len() {
				cur.StartTime = s.Times[i]
			}
			inAlarm = true
		} else {
			cur.EndIdx = i
			if dev > cur.PeakDev {
				cur.PeakDev = dev
			}
		}
		if len(s.Times) == s.Len() {
			cur.EndTime = s.Times[i]
		}
		gap = 0
	}
	flush()
	return alarms
}

// Evaluate scores alarms against the series' ground-truth labels: an alarm
// is correct when its interval overlaps at least one labelled anomalous
// timestep (the paper's testing engineers confirmed alarms the same way —
// by inspecting the flagged interval).
func Evaluate(alarms []Alarm, s *dataset.Series) metrics.AlarmStats {
	st := metrics.AlarmStats{Alarms: len(alarms)}
	if s.Anomalous == nil {
		return st
	}
	for _, a := range alarms {
		for i := a.StartIdx; i <= a.EndIdx && i < s.Len(); i++ {
			if s.Anomalous[i] {
				st.Correct++
				break
			}
		}
	}
	return st
}

// TrueEpisodes counts maximal runs of labelled anomalous timesteps — the
// ground-truth "performance problems" of Table 5 (the paper had 35).
func TrueEpisodes(s *dataset.Series) int {
	if s.Anomalous == nil {
		return 0
	}
	n := 0
	prev := false
	for _, a := range s.Anomalous {
		if a && !prev {
			n++
		}
		prev = a
	}
	return n
}

// DetectedEpisodes counts how many ground-truth episodes are covered by at
// least one alarm (a recall-style view the paper reports as "detected
// performance problems").
func DetectedEpisodes(alarms []Alarm, s *dataset.Series) int {
	if s.Anomalous == nil {
		return 0
	}
	covered := 0
	start := -1
	for i := 0; i <= s.Len(); i++ {
		anom := i < s.Len() && s.Anomalous[i]
		if anom && start < 0 {
			start = i
		}
		if !anom && start >= 0 {
			for _, a := range alarms {
				if a.StartIdx <= i-1 && a.EndIdx >= start {
					covered++
					break
				}
			}
			start = -1
		}
	}
	return covered
}
