package anomaly_test

import (
	"fmt"

	"env2vec/internal/anomaly"
)

func ExampleFlag() {
	// Error model from a previous (healthy) build of the chain.
	histPred := []float64{50.1, 49.8, 50.2, 50.0, 49.9}
	histActual := []float64{50.0, 50.0, 50.0, 50.0, 50.0}
	em := anomaly.FitErrorModel(histPred, histActual)

	// The new build: the model underpredicts step 2 by 12 CPU points — a
	// genuine deviation — while step 1's small error stays inside γ·σ.
	pred := []float64{50.0, 50.1, 48.0}
	actual := []float64{50.0, 50.0, 60.0}
	flags := anomaly.Flag(pred, actual, em, anomaly.Config{Gamma: 2, AbsFilter: 5})
	fmt.Println(flags)
	// Output: [false false true]
}

func ExampleAlarm_Duration() {
	a := anomaly.Alarm{StartIdx: 10, EndIdx: 14}
	fmt.Println(a.Duration())
	// Output: 5
}
