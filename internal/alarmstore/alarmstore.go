// Package alarmstore is the alarm database of workflow step (4): Env2Vec
// pushes alarms here so that testing engineers can pinpoint the testbed and
// time interval of each detected issue (the paper uses PostgreSQL). The
// store is an append-only JSON-lines file with an in-memory index and an
// HTTP API, supporting the same queries the workflow needs: by chain, by
// testbed, and by time range.
package alarmstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"env2vec/internal/anomaly"
)

// Record is one stored alarm row.
type Record struct {
	ID        int   `json:"id"`
	CreatedAt int64 `json:"created_at"` // unix seconds
	// Source classifies the producer: "drift" (model-quality monitor) or
	// "slo" (the monitoring plane's burn-rate rules), so both kinds share
	// one store yet stay separable. Derived from the alarm at push time;
	// alarms without a source are drift alarms (the original producer).
	Source string        `json:"source"`
	Alarm  anomaly.Alarm `json:"alarm"`
	Ack    bool          `json:"ack"` // acknowledged by an engineer
}

// Store is a concurrency-safe alarm database with optional file
// persistence (empty path = memory only).
type Store struct {
	mu      sync.RWMutex
	path    string
	records []Record
	nextID  int
}

// Open loads (or creates) a store at path; pass "" for memory-only.
func Open(path string) (*Store, error) {
	s := &Store{path: path, nextID: 1}
	if path == "" {
		return s, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("alarmstore: open: %w", err)
	}
	defer f.Close()
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("alarmstore: corrupt record: %w", err)
		}
		s.records = append(s.records, rec)
		if rec.ID >= s.nextID {
			s.nextID = rec.ID + 1
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("alarmstore: scan: %w", err)
	}
	return s, nil
}

// Push appends an alarm, assigning an id, and persists it.
func (s *Store) Push(a anomaly.Alarm, createdAt int64) (Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := a.Source
	if src == "" {
		src = "drift"
	}
	rec := Record{ID: s.nextID, CreatedAt: createdAt, Source: src, Alarm: a}
	s.nextID++
	if s.path != "" {
		f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return Record{}, fmt.Errorf("alarmstore: push: %w", err)
		}
		enc := json.NewEncoder(f)
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return Record{}, fmt.Errorf("alarmstore: push: %w", err)
		}
		if err := f.Close(); err != nil {
			return Record{}, fmt.Errorf("alarmstore: push: %w", err)
		}
	}
	s.records = append(s.records, rec)
	return rec, nil
}

// Query filters stored alarms. Zero-valued fields are wildcards; time
// bounds apply to CreatedAt (to=0 means no upper bound).
type Query struct {
	ChainID  string
	Testbed  string
	Detector string
	Source   string // "drift" or "slo"; matches Record.Source
	From, To int64
}

// Find returns matching records ordered by id.
func (s *Store) Find(q Query) []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, rec := range s.records {
		if q.ChainID != "" && rec.Alarm.ChainID != q.ChainID {
			continue
		}
		if q.Testbed != "" && rec.Alarm.Testbed != q.Testbed {
			continue
		}
		if q.Detector != "" && rec.Alarm.Detector != q.Detector {
			continue
		}
		if q.Source != "" && rec.sourceOrDefault() != q.Source {
			continue
		}
		if rec.CreatedAt < q.From {
			continue
		}
		if q.To != 0 && rec.CreatedAt > q.To {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// sourceOrDefault returns the record's source, treating rows persisted
// before the field existed as drift alarms.
func (r Record) sourceOrDefault() string {
	if r.Source == "" {
		return "drift"
	}
	return r.Source
}

// Acknowledge marks an alarm as handled by an engineer.
func (s *Store) Acknowledge(id int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.records {
		if s.records[i].ID == id {
			s.records[i].Ack = true
			return s.rewriteLocked()
		}
	}
	return fmt.Errorf("alarmstore: alarm %d not found", id)
}

// rewriteLocked persists the full record set (used after in-place updates).
func (s *Store) rewriteLocked() error {
	if s.path == "" {
		return nil
	}
	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("alarmstore: rewrite: %w", err)
	}
	enc := json.NewEncoder(f)
	for _, rec := range s.records {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return fmt.Errorf("alarmstore: rewrite: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("alarmstore: rewrite: %w", err)
	}
	return os.Rename(tmp, s.path)
}

// Len returns the number of stored alarms.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// Handler exposes the store over HTTP:
//
//	POST /alarms              (JSON anomaly.Alarm body) → stored record
//	GET  /alarms?chain=&testbed=&detector=&source=&from=&to= → matching records
//
// Errors come back as {"error": "..."} JSON bodies.
type Handler struct {
	Store *Store
	// Now supplies CreatedAt for pushed alarms; defaults to the wall clock,
	// overridable in tests.
	Now func() int64
}

// jsonError writes an {"error": ...} body with the given status.
func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/alarms" {
		jsonError(w, http.StatusNotFound, "not found")
		return
	}
	switch r.Method {
	case http.MethodPost:
		var a anomaly.Alarm
		if err := json.NewDecoder(r.Body).Decode(&a); err != nil {
			jsonError(w, http.StatusBadRequest, "bad alarm body: "+err.Error())
			return
		}
		now := time.Now().Unix()
		if h.Now != nil {
			now = h.Now()
		}
		rec, err := h.Store.Push(a, now)
		if err != nil {
			jsonError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		_ = json.NewEncoder(w).Encode(rec)
	case http.MethodGet:
		q := Query{
			ChainID:  r.URL.Query().Get("chain"),
			Testbed:  r.URL.Query().Get("testbed"),
			Detector: r.URL.Query().Get("detector"),
			Source:   r.URL.Query().Get("source"),
		}
		var err error
		if q.From, err = timeParam(r, "from"); err != nil {
			jsonError(w, http.StatusBadRequest, err.Error())
			return
		}
		if q.To, err = timeParam(r, "to"); err != nil {
			jsonError(w, http.StatusBadRequest, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(h.Store.Find(q))
	default:
		jsonError(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

// timeParam parses an optional unix-seconds query parameter.
func timeParam(r *http.Request, name string) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("alarmstore: bad %s %q: want unix seconds", name, v)
	}
	return n, nil
}
