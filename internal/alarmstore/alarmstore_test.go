package alarmstore

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"env2vec/internal/anomaly"
)

func demoAlarm(chain string, start int) anomaly.Alarm {
	return anomaly.Alarm{
		Detector: "env2vec", ChainID: chain, Testbed: "tb1", Build: "S05",
		StartIdx: start, EndIdx: start + 2, PeakDev: 7.5,
	}
}

func TestPushFindMemory(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Push(demoAlarm("c1", 5), 1000)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := s.Push(demoAlarm("c2", 9), 2000)
	if r1.ID != 1 || r2.ID != 2 {
		t.Fatalf("ids not sequential: %d %d", r1.ID, r2.ID)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Find(Query{ChainID: "c1"}); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("chain query wrong: %+v", got)
	}
	if got := s.Find(Query{From: 1500}); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("from query wrong: %+v", got)
	}
	if got := s.Find(Query{To: 1500}); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("to query wrong: %+v", got)
	}
	if got := s.Find(Query{Detector: "other"}); len(got) != 0 {
		t.Fatalf("detector query wrong")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alarms.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = s.Push(demoAlarm("c1", 0), 10)
	_, _ = s.Push(demoAlarm("c2", 1), 20)

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d records", re.Len())
	}
	r3, _ := re.Push(demoAlarm("c3", 2), 30)
	if r3.ID != 3 {
		t.Fatalf("id sequence not restored: %d", r3.ID)
	}
}

func TestAcknowledge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alarms.jsonl")
	s, _ := Open(path)
	rec, _ := s.Push(demoAlarm("c1", 0), 10)
	if err := s.Acknowledge(rec.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Acknowledge(999); err == nil {
		t.Fatalf("missing id should error")
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Find(Query{}); !got[0].Ack {
		t.Fatalf("ack not persisted")
	}
}

func TestOpenCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{notjson\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatalf("corrupt file should error")
	}
}

func TestHTTPHandler(t *testing.T) {
	s, _ := Open("")
	h := &Handler{Store: s, Now: func() int64 { return 42 }}
	srv := httptest.NewServer(h)
	defer srv.Close()

	body, _ := json.Marshal(demoAlarm("c9", 3))
	resp, err := http.Post(srv.URL+"/alarms", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post status %d", resp.StatusCode)
	}
	var rec Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.CreatedAt != 42 || rec.Alarm.ChainID != "c9" {
		t.Fatalf("record wrong: %+v", rec)
	}

	get, err := http.Get(srv.URL + "/alarms?chain=c9")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var recs []Record
	if err := json.NewDecoder(get.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}

	// Bad body → 400.
	bad, _ := http.Post(srv.URL+"/alarms", "application/json", bytes.NewBufferString("{"))
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", bad.StatusCode)
	}
	// Wrong path → 404; wrong method → 405.
	nf, _ := http.Get(srv.URL + "/other")
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("not-found status %d", nf.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/alarms", nil)
	del, _ := http.DefaultClient.Do(req)
	del.Body.Close()
	if del.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("method status %d", del.StatusCode)
	}
}

func TestHTTPTimeRangeAndJSONErrors(t *testing.T) {
	s, _ := Open("")
	_, _ = s.Push(demoAlarm("c1", 0), 100)
	_, _ = s.Push(demoAlarm("c1", 1), 200)
	_, _ = s.Push(demoAlarm("c1", 2), 300)
	srv := httptest.NewServer(&Handler{Store: s, Now: func() int64 { return 42 }})
	defer srv.Close()

	// from/to narrow the result set; previously both were silently ignored.
	get, err := http.Get(srv.URL + "/alarms?from=150&to=250")
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := json.NewDecoder(get.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if len(recs) != 1 || recs[0].CreatedAt != 200 {
		t.Fatalf("time-range query wrong: %+v", recs)
	}

	// A malformed bound is a JSON-shaped 400, not a plain-text page.
	bad, err := http.Get(srv.URL + "/alarms?from=yesterday")
	if err != nil {
		t.Fatal(err)
	}
	var errBody map[string]string
	if err := json.NewDecoder(bad.Body).Decode(&errBody); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest || errBody["error"] == "" {
		t.Fatalf("bad bound: %d %v", bad.StatusCode, errBody)
	}
	if ct := bad.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error content type %q", ct)
	}
}

func TestHTTPDefaultNowStampsWallClock(t *testing.T) {
	s, _ := Open("")
	srv := httptest.NewServer(&Handler{Store: s}) // no Now override
	defer srv.Close()
	body, _ := json.Marshal(demoAlarm("c1", 0))
	before := time.Now().Unix()
	resp, err := http.Post(srv.URL+"/alarms", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rec.CreatedAt < before || rec.CreatedAt > time.Now().Unix() {
		t.Fatalf("CreatedAt %d not stamped from the wall clock", rec.CreatedAt)
	}
}

// TestConcurrentAppendAndQuery hammers Push, Find, and the HTTP surface in
// parallel; run with -race this proves the store's locking holds up under
// the async alarm pipeline plus engineers querying at the same time.
func TestConcurrentAppendAndQuery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alarms.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(&Handler{Store: s})
	defer srv.Close()

	const writers, queriers, perWriter = 4, 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := s.Push(demoAlarm("c1", i), int64(w*1000+i)); err != nil {
					t.Errorf("push: %v", err)
					return
				}
			}
		}(w)
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				_ = s.Find(Query{ChainID: "c1"})
				resp, err := http.Get(srv.URL + "/alarms?chain=c1&from=0")
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Fatalf("stored %d alarms, want %d", s.Len(), writers*perWriter)
	}
	ids := map[int]bool{}
	for _, rec := range s.Find(Query{}) {
		if ids[rec.ID] {
			t.Fatalf("duplicate id %d under concurrency", rec.ID)
		}
		ids[rec.ID] = true
	}
	// The file survives a reload with every record intact.
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != writers*perWriter {
		t.Fatalf("reloaded %d records, want %d", re.Len(), writers*perWriter)
	}
}

// TestSourceFilter: SLO alerts and model-drift alarms share one store but
// stay separable through the source field — in Find and over HTTP.
func TestSourceFilter(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	drift := demoAlarm("c1", 5) // no Source set: the original drift producer
	slo := demoAlarm("slo-rule", 0)
	slo.Source = "slo"
	slo.Detector = "slo:AvailabilityFastBurn"
	if _, err := s.Push(drift, 1000); err != nil {
		t.Fatal(err)
	}
	rec, err := s.Push(slo, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Source != "slo" {
		t.Fatalf("slo record source = %q", rec.Source)
	}
	if got := s.Find(Query{Source: "drift"}); len(got) != 1 || got[0].Source != "drift" {
		t.Fatalf("drift filter wrong: %+v", got)
	}
	if got := s.Find(Query{Source: "slo"}); len(got) != 1 || got[0].Alarm.Detector != "slo:AvailabilityFastBurn" {
		t.Fatalf("slo filter wrong: %+v", got)
	}
	if got := s.Find(Query{}); len(got) != 2 {
		t.Fatalf("unfiltered should see both: %+v", got)
	}

	// Rows persisted before the field existed load with an empty Source and
	// still answer ?source=drift.
	legacy := Record{ID: 99, CreatedAt: 50, Alarm: demoAlarm("old", 1)}
	s.records = append(s.records, legacy)
	if got := s.Find(Query{Source: "drift"}); len(got) != 2 {
		t.Fatalf("legacy record not treated as drift: %+v", got)
	}

	srv := httptest.NewServer(&Handler{Store: s, Now: func() int64 { return 7 }})
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/alarms?source=slo")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []Record
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Source != "slo" {
		t.Fatalf("?source=slo returned %+v", recs)
	}
}
