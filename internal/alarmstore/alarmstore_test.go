package alarmstore

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"env2vec/internal/anomaly"
)

func demoAlarm(chain string, start int) anomaly.Alarm {
	return anomaly.Alarm{
		Detector: "env2vec", ChainID: chain, Testbed: "tb1", Build: "S05",
		StartIdx: start, EndIdx: start + 2, PeakDev: 7.5,
	}
}

func TestPushFindMemory(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.Push(demoAlarm("c1", 5), 1000)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := s.Push(demoAlarm("c2", 9), 2000)
	if r1.ID != 1 || r2.ID != 2 {
		t.Fatalf("ids not sequential: %d %d", r1.ID, r2.ID)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Find(Query{ChainID: "c1"}); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("chain query wrong: %+v", got)
	}
	if got := s.Find(Query{From: 1500}); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("from query wrong: %+v", got)
	}
	if got := s.Find(Query{To: 1500}); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("to query wrong: %+v", got)
	}
	if got := s.Find(Query{Detector: "other"}); len(got) != 0 {
		t.Fatalf("detector query wrong")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alarms.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = s.Push(demoAlarm("c1", 0), 10)
	_, _ = s.Push(demoAlarm("c2", 1), 20)

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 2 {
		t.Fatalf("reloaded %d records", re.Len())
	}
	r3, _ := re.Push(demoAlarm("c3", 2), 30)
	if r3.ID != 3 {
		t.Fatalf("id sequence not restored: %d", r3.ID)
	}
}

func TestAcknowledge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alarms.jsonl")
	s, _ := Open(path)
	rec, _ := s.Push(demoAlarm("c1", 0), 10)
	if err := s.Acknowledge(rec.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Acknowledge(999); err == nil {
		t.Fatalf("missing id should error")
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.Find(Query{}); !got[0].Ack {
		t.Fatalf("ack not persisted")
	}
}

func TestOpenCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{notjson\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatalf("corrupt file should error")
	}
}

func TestHTTPHandler(t *testing.T) {
	s, _ := Open("")
	h := &Handler{Store: s, Now: func() int64 { return 42 }}
	srv := httptest.NewServer(h)
	defer srv.Close()

	body, _ := json.Marshal(demoAlarm("c9", 3))
	resp, err := http.Post(srv.URL+"/alarms", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("post status %d", resp.StatusCode)
	}
	var rec Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.CreatedAt != 42 || rec.Alarm.ChainID != "c9" {
		t.Fatalf("record wrong: %+v", rec)
	}

	get, err := http.Get(srv.URL + "/alarms?chain=c9")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	var recs []Record
	if err := json.NewDecoder(get.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}

	// Bad body → 400.
	bad, _ := http.Post(srv.URL+"/alarms", "application/json", bytes.NewBufferString("{"))
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d", bad.StatusCode)
	}
	// Wrong path → 404; wrong method → 405.
	nf, _ := http.Get(srv.URL + "/other")
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("not-found status %d", nf.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/alarms", nil)
	del, _ := http.DefaultClient.Do(req)
	del.Body.Close()
	if del.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("method status %d", del.StatusCode)
	}
}
