package kdn

import (
	"math"
	"testing"

	"env2vec/internal/envmeta"
	"env2vec/internal/stats"
)

func TestSplitsMatchTable3(t *testing.T) {
	cases := map[VNF]SplitSpec{
		Snort:    {Total: 1359, Train: 900, Val: 259, Test: 200},
		Switch:   {Total: 1191, Train: 900, Val: 141, Test: 150},
		Firewall: {Total: 755, Train: 555, Val: 100, Test: 100},
	}
	for v, want := range cases {
		got := Splits(v)
		if got != want {
			t.Fatalf("%v: got %+v want %+v", v, got, want)
		}
		if got.Train+got.Val+got.Test != got.Total {
			t.Fatalf("%v: partitions do not sum to total", v)
		}
	}
}

func TestSplitsUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Splits(VNF(9))
}

func TestFeatureNamesCountAndUniqueness(t *testing.T) {
	names := FeatureNames()
	if len(names) != NumFeatures {
		t.Fatalf("got %d names", len(names))
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, v := range []VNF{Snort, Firewall, Switch} {
		s := Generate(v, 42)
		spec := Splits(v)
		if s.Len() != spec.Total {
			t.Fatalf("%v: %d samples, want %d", v, s.Len(), spec.Total)
		}
		if s.CF.Cols != NumFeatures {
			t.Fatalf("%v: %d features", v, s.CF.Cols)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if s.Env.SUT != v.String() {
			t.Fatalf("%v: env SUT %q", v, s.Env.SUT)
		}
	}
}

func TestGenerateMatchesPublishedMoments(t *testing.T) {
	wantMoments := map[VNF][2]float64{Snort: {196, 23}, Firewall: {384, 46}, Switch: {448, 46}}
	for v, want := range wantMoments {
		s := Generate(v, 7)
		g := stats.FitGaussian(s.RU)
		if math.Abs(g.Mu-want[0]) > 1 {
			t.Fatalf("%v: mean %v want %v", v, g.Mu, want[0])
		}
		if math.Abs(g.Sigma-want[1]) > 1 {
			t.Fatalf("%v: std %v want %v", v, g.Sigma, want[1])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Snort, 5)
	b := Generate(Snort, 5)
	for i := range a.RU {
		if a.RU[i] != b.RU[i] {
			t.Fatalf("same seed must reproduce identical series")
		}
	}
	c := Generate(Snort, 6)
	same := true
	for i := range a.RU {
		if a.RU[i] != c.RU[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds should differ")
	}
}

func TestGenerateTemporalInertiaOrdering(t *testing.T) {
	// Lag-1 autocorrelation should be strongest for the switch, by design.
	rho := func(v VNF) float64 {
		s := Generate(v, 11)
		g := stats.FitGaussian(s.RU)
		num, den := 0.0, 0.0
		for i := 1; i < len(s.RU); i++ {
			num += (s.RU[i] - g.Mu) * (s.RU[i-1] - g.Mu)
			den += (s.RU[i-1] - g.Mu) * (s.RU[i-1] - g.Mu)
		}
		return num / den
	}
	snort, sw := rho(Snort), rho(Switch)
	if sw <= snort {
		t.Fatalf("switch autocorrelation (%v) should exceed snort (%v)", sw, snort)
	}
}

func TestGenerateAll(t *testing.T) {
	d := GenerateAll(1)
	if len(d.Series) != 3 {
		t.Fatalf("want 3 series")
	}
	if len(d.FeatureNames) != NumFeatures {
		t.Fatalf("feature names missing")
	}
	envs := map[string]bool{}
	for _, s := range d.Series {
		envs[s.Env.SUT] = true
	}
	if len(envs) != 3 {
		t.Fatalf("series should have distinct SUTs: %v", envs)
	}
}

func TestSplitSeries(t *testing.T) {
	s := Generate(Firewall, 3)
	schema := envmeta.NewSchema()
	schema.Observe(s.Env)
	split, err := SplitSeries(s, Firewall, 2, schema)
	if err != nil {
		t.Fatal(err)
	}
	spec := Splits(Firewall)
	if split.Train.Len() != spec.Train-2 {
		t.Fatalf("train %d want %d", split.Train.Len(), spec.Train-2)
	}
	if split.Val.Len() != spec.Val || split.Test.Len() != spec.Test {
		t.Fatalf("val/test sizes wrong: %d/%d", split.Val.Len(), split.Test.Len())
	}
	if split.Train.Window.Cols != 2 {
		t.Fatalf("window not assembled")
	}
	if _, err := SplitSeries(s, Firewall, 10000, schema); err == nil {
		t.Fatalf("oversized window should error")
	}
}

func TestFeaturesCorrelateWithCPU(t *testing.T) {
	// Sanity: total packets should be positively correlated with CPU for
	// every VNF — otherwise the learning problem is noise.
	for _, v := range []VNF{Snort, Firewall, Switch} {
		s := Generate(v, 13)
		var sp, sc, spc, spp, scc float64
		n := float64(s.Len())
		for i := 0; i < s.Len(); i++ {
			p := s.CF.At(i, 0) // pkts_total
			c := s.RU[i]
			sp += p
			sc += c
			spc += p * c
			spp += p * p
			scc += c * c
		}
		corr := (n*spc - sp*sc) / math.Sqrt((n*spp-sp*sp)*(n*scc-sc*sc))
		if corr < 0.3 {
			t.Fatalf("%v: pkts/CPU correlation too weak: %v", v, corr)
		}
	}
}

func TestVNFString(t *testing.T) {
	if Snort.String() != "snort" || Firewall.String() != "firewall" || Switch.String() != "switch" {
		t.Fatalf("VNF strings wrong")
	}
	if VNF(7).String() == "" {
		t.Fatalf("unknown VNF should still render")
	}
}
