// Package kdn synthesizes stand-ins for the Knowledge-Defined Networking
// benchmark datasets used in §4.1 of the paper (knowledgedefinednetworking.org):
// CPU utilization of three VNFs — a Snort IDS, an SDN firewall, and an SDN
// switch — each driven by replayed DPI traffic described by 86 per-batch
// features (packets, bytes, unique IPs/ports, 5-tuple flows, packet-size
// mix, protocol counts) at 20-second batches.
//
// The public datasets are not redistributable here, so this generator
// produces series with the published shapes instead: the sample counts of
// Table 3, the CPU moments reported under Table 4 (196±23, 384±46,
// 448±46), and per-VNF response surfaces chosen so the relative ordering of
// model families that the paper observes is exercised by construction:
//
//   - Snort: strongly nonlinear in the traffic mix (rule-matching cost),
//     so neural models beat linear ones.
//   - Firewall: connection-tracking load with a saturating component.
//   - Switch: almost-linear forwarding cost with strong temporal inertia,
//     where Ridge with history (Ridge_ts) is hardest to beat.
package kdn

import (
	"fmt"
	"math"
	"math/rand"

	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/stats"
	"env2vec/internal/tensor"
	"env2vec/internal/workload"
)

// VNF identifies one of the three benchmark network functions.
type VNF int

// The benchmark VNFs.
const (
	Snort VNF = iota
	Firewall
	Switch
)

// String implements fmt.Stringer.
func (v VNF) String() string {
	switch v {
	case Snort:
		return "snort"
	case Firewall:
		return "firewall"
	case Switch:
		return "switch"
	}
	return fmt.Sprintf("VNF(%d)", int(v))
}

// NumFeatures is the number of traffic features per 20-second batch in the
// KDN datasets.
const NumFeatures = 86

// SplitSpec mirrors Table 3 of the paper.
type SplitSpec struct {
	Total, Train, Val, Test int
}

// Splits returns the Table 3 sample counts for the VNF.
func Splits(v VNF) SplitSpec {
	switch v {
	case Snort:
		return SplitSpec{Total: 1359, Train: 900, Val: 259, Test: 200}
	case Switch:
		return SplitSpec{Total: 1191, Train: 900, Val: 141, Test: 150}
	case Firewall:
		return SplitSpec{Total: 755, Train: 555, Val: 100, Test: 100}
	}
	panic(fmt.Sprintf("kdn: unknown VNF %d", int(v)))
}

// cpuMoments returns the published mean and standard deviation of CPU
// utilization for the VNF (Table 4 caption).
func cpuMoments(v VNF) (mean, std float64) {
	switch v {
	case Snort:
		return 196, 23
	case Firewall:
		return 384, 46
	case Switch:
		return 448, 46
	}
	panic(fmt.Sprintf("kdn: unknown VNF %d", int(v)))
}

// FeatureNames returns the 86 feature labels, grouped the way the real
// datasets describe traffic: volume counters, endpoint diversity, flow
// statistics, packet-length histogram buckets, and protocol counters.
func FeatureNames() []string {
	names := make([]string, 0, NumFeatures)
	add := func(format string, n int) {
		for i := 0; i < n; i++ {
			names = append(names, fmt.Sprintf(format, i))
		}
	}
	names = append(names, "pkts_total", "bytes_total", "pkts_per_sec", "bits_per_sec")
	add("pkts_iface_%d", 8)
	names = append(names, "uniq_src_ip", "uniq_dst_ip", "uniq_src_port", "uniq_dst_port")
	add("uniq_ip_prefix_%d", 6)
	names = append(names, "flows_5tuple", "flows_new", "flows_expired", "flows_active")
	add("flow_dur_bucket_%d", 8)
	add("pkt_len_bucket_%d", 16)
	add("proto_cnt_%d", 12)
	add("tcp_flag_cnt_%d", 8)
	add("ttl_bucket_%d", 8)
	names = append(names, "frag_cnt", "opt_cnt", "bad_csum_cnt", "dup_ack_cnt",
		"retrans_cnt", "window_zero_cnt", "syn_rate", "rst_rate")
	if len(names) != NumFeatures {
		panic(fmt.Sprintf("kdn: %d feature names, want %d", len(names), NumFeatures))
	}
	return names
}

// latent is the hidden traffic state from which the 86 observable features
// are derived.
type latent struct {
	intensity float64 // overall packet-rate multiplier
	flowRate  float64 // 5-tuple flow arrival multiplier
	sizeMix   float64 // 0 = small packets, 1 = large packets
	diversity float64 // endpoint diversity multiplier
	malicious float64 // share of traffic that trips expensive inspection
}

// Generate produces the synthetic benchmark series for one VNF. The series
// length follows Table 3 and the environment tuple identifies the VNF so
// that Env2Vec's embeddings can separate the three datasets when trained
// jointly.
func Generate(v VNF, seed int64) *dataset.Series {
	rng := rand.New(rand.NewSource(seed + int64(v)*1000))
	spec := Splits(v)
	n := spec.Total

	// The traffic replay loops the capture several times over the run, so
	// the diurnal shape repeats and the sequential train/val/test split
	// (Table 3) sees the same load regimes in every partition — without
	// this, the tail of the trace (the test set) would sit on an unvisited
	// part of the daily curve and every model would be extrapolating.
	base := workload.ModelDaily.Generate(rng, n, n/4)
	// Mild burstiness, clipped: the published error distributions are
	// light-tailed (MSE ≈ 1.5·MAE² for Snort), so extreme cascade spikes
	// would distort the comparison all methods share.
	burst := workload.SelfSimilar(rng, n, 0.62)
	for i, b := range burst {
		if b > 2.5 {
			burst[i] = 2.5
		}
	}
	inertia := &workload.AR1{Phi: 0.6, Std: 0.08}

	s := &dataset.Series{
		Env: envmeta.Environment{
			Testbed:  "kdn-esxi55",
			SUT:      v.String(),
			Testcase: "dpi-replay",
			Build:    "V1",
		},
		ChainID: "kdn-esxi55|" + v.String() + "|dpi-replay",
		CF:      tensor.New(n, NumFeatures),
		RU:      make([]float64, n),
	}

	raw := make([]float64, n)
	lat := latent{}
	for i := 0; i < n; i++ {
		lat.intensity = math.Max(0.05, 0.7*base[i]+0.3*burst[i]+inertia.Next(rng))
		lat.flowRate = math.Max(0.02, lat.intensity*(0.7+0.6*rng.Float64()))
		lat.sizeMix = clamp01(0.5 + 0.3*math.Sin(float64(i)/37) + rng.NormFloat64()*0.1)
		lat.diversity = math.Max(0.05, 0.8+0.4*rng.NormFloat64()*0.2+0.2*burst[i])
		lat.malicious = math.Min(0.35, clamp01(0.05+0.06*burst[i]+rng.NormFloat64()*0.02))
		fillFeatures(s.CF.Row(i), lat, rng)
		raw[i] = cpuResponse(v, lat, raw, i, rng)
	}

	// Rescale to the published CPU moments.
	mean, std := cpuMoments(v)
	g := stats.FitGaussian(raw)
	for i, x := range raw {
		z := 0.0
		if g.Sigma > 0 {
			z = (x - g.Mu) / g.Sigma
		}
		s.RU[i] = mean + std*z
	}
	return s
}

// responseTerms is the nonlinear basis all three VNFs draw on. The basis
// is shared — per-packet cost, queueing curvature (I²), a saturation knee
// centered on the typical load, flow-setup cost, small-packet overhead,
// lookup-diversity cost — and the VNFs differ only in how they weight it.
// Two consequences, both needed to reproduce Table 4's shape:
//
//   - The quadratic/knee terms are NOT linear functions of the observable
//     traffic counters, so linear models carry an irreducible handicap on
//     the VNFs that weight them heavily.
//   - Pooled training sees three reweightings of the SAME basis, which is
//     precisely what Env2Vec's Hadamard modulation (per-environment
//     feature weights over a shared representation) can exploit — and a
//     pooled model without embeddings (RFNN_all) cannot.
func responseTerms(lat latent) [6]float64 {
	return [6]float64{
		lat.intensity,
		lat.intensity * lat.intensity,
		sigmoid(6 * (lat.intensity - 1.0)),
		math.Pow(lat.flowRate, 1.5),
		lat.intensity * (1 - lat.sizeMix),
		lat.flowRate * lat.diversity,
	}
}

// responseWeights gives each VNF its weighting of the shared basis. The
// switch is deliberately near-linear (weight on I, little curvature): that
// is where Ridge_ts stays hardest to beat, as in the published table.
func responseWeights(v VNF) [6]float64 {
	switch v {
	case Snort:
		return [6]float64{0.15, 0.95, 2.6, 0.5, 0.7, 0.25}
	case Firewall:
		return [6]float64{0.3, 0.30, 2.2, 0.9, 0.1, 0.6}
	case Switch:
		return [6]float64{1.3, 0.05, 0.25, 0.1, 0.45, 0.1}
	}
	panic(fmt.Sprintf("kdn: unknown VNF %d", int(v)))
}

// cpuResponse computes the pre-scaling CPU cost for the VNF; prev is the
// raw series so far (prev[i-1] valid for i>0) to model inertia.
func cpuResponse(v VNF, lat latent, prev []float64, i int, rng *rand.Rand) float64 {
	terms := responseTerms(lat)
	weights := responseWeights(v)
	instant := 0.0
	for t, w := range weights {
		instant += w * terms[t]
	}
	// Irreducible measurement noise keeps every model family honest: even
	// a perfect regressor has an error floor, compressing the spread the
	// way the published numbers are compressed. Snort's floor is lower so
	// its heavy curvature dominates the error budget — that is the dataset
	// where the published gap between neural and linear models is widest.
	noiseStd := map[VNF]float64{Snort: 0.07, Firewall: 0.12, Switch: 0.12}[v]
	instant += rng.NormFloat64() * noiseStd
	// Temporal inertia: the switch has the strongest (queueing) carry-over,
	// which is what makes Ridge_ts hardest to beat there (Table 4), while
	// Snort and the firewall are dominated by instantaneous nonlinearity.
	phi := map[VNF]float64{Snort: 0.05, Firewall: 0.15, Switch: 0.5}[v]
	if i == 0 {
		return instant
	}
	return phi*prev[i-1] + (1-phi)*instant
}

func fillFeatures(row []float64, lat latent, rng *rand.Rand) {
	noise := func(scale float64) float64 { return 1 + rng.NormFloat64()*scale }
	pkts := 50000 * lat.intensity * noise(0.03)
	avgLen := 200 + 1100*lat.sizeMix
	bytes := pkts * avgLen * noise(0.02)
	flows := 3000 * lat.flowRate * noise(0.05)
	uniq := 800 * lat.diversity * noise(0.05)

	j := 0
	put := func(v float64) { row[j] = v; j++ }
	put(pkts)
	put(bytes)
	put(pkts / 20)
	put(bytes * 8 / 20)
	for k := 0; k < 8; k++ { // per-interface packet shares
		share := 1.0 / 8 * noise(0.2)
		put(pkts * share)
	}
	put(uniq * noise(0.1))       // uniq src ip
	put(uniq * 0.9 * noise(0.1)) // uniq dst ip
	put(uniq * 1.8 * noise(0.1)) // src ports
	put(uniq * 1.2 * noise(0.1)) // dst ports
	for k := 0; k < 6; k++ {
		put(uniq * math.Pow(0.6, float64(k)) * noise(0.15))
	}
	put(flows)
	put(flows * 0.3 * noise(0.1)) // new flows
	put(flows * 0.28 * noise(0.1))
	put(flows * 0.7 * noise(0.05))
	for k := 0; k < 8; k++ { // flow duration histogram
		put(flows * math.Exp(-float64(k)/2) * 0.2 * noise(0.2))
	}
	for k := 0; k < 16; k++ { // packet length histogram: mass shifts with sizeMix
		center := float64(k) / 15
		w := math.Exp(-8 * (center - lat.sizeMix) * (center - lat.sizeMix))
		put(pkts * w * 0.2 * noise(0.15))
	}
	protoShares := []float64{0.55, 0.25, 0.08, 0.04, 0.02, 0.02, 0.01, 0.01, 0.005, 0.005, 0.003, 0.002}
	for _, ps := range protoShares { // protocol counters
		put(pkts * ps * noise(0.2))
	}
	for k := 0; k < 8; k++ { // tcp flag counters
		put(pkts * 0.1 * math.Pow(0.7, float64(k)) * noise(0.2))
	}
	for k := 0; k < 8; k++ { // ttl histogram
		put(pkts * 0.125 * noise(0.3))
	}
	put(pkts * 0.01 * lat.malicious * 10 * noise(0.3)) // fragments
	put(pkts * 0.005 * noise(0.3))                     // ip options
	put(pkts * 0.002 * lat.malicious * 20 * noise(0.3))
	put(pkts * 0.01 * noise(0.3))
	put(pkts * 0.008 * noise(0.3))
	put(pkts * 0.001 * noise(0.3))
	put(flows * 0.3 * lat.malicious * 5 * noise(0.2)) // syn rate
	put(flows * 0.02 * lat.malicious * 8 * noise(0.3))
	if j != NumFeatures {
		panic(fmt.Sprintf("kdn: filled %d features, want %d", j, NumFeatures))
	}
}

// GenerateAll produces the three benchmark series as one dataset.
func GenerateAll(seed int64) *dataset.Dataset {
	return &dataset.Dataset{
		FeatureNames: FeatureNames(),
		Series:       []*dataset.Series{Generate(Snort, seed), Generate(Firewall, seed), Generate(Switch, seed)},
	}
}

// SplitSeries cuts the series into Table 3's sequential train/val/test
// example partitions with the given RU-history window.
func SplitSeries(s *dataset.Series, v VNF, window int, schema *envmeta.Schema) (*dataset.Split, error) {
	spec := Splits(v)
	exs := dataset.WindowExamples(s, window)
	// Windowing consumes the first `window` samples; shrink the training
	// partition so validation and test match the published counts.
	nTrain := spec.Train - window
	if nTrain < 0 {
		return nil, fmt.Errorf("kdn: window %d longer than training set", window)
	}
	return dataset.SplitExamples(exs, nTrain, spec.Val, spec.Test, schema)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
