package experiments

import (
	"fmt"
	"testing"
)

// TestIntegrationTable4MediumScale runs the KDN study at a reduced but
// meaningful scale (1 seed, full training regime) and prints the table; it
// is the canary for the Table 4 comparison shape. Skipped under -short.
func TestIntegrationTable4MediumScale(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	opts := DefaultTable4Options()
	opts.Seeds = 1
	opts.SkipSVR = true
	// A reduced (but same-shaped) budget keeps the canary to ~2 minutes;
	// cmd/kdnbench runs the full regime.
	opts.Epochs = 150
	opts.Batch = 32
	opts.LR = 0.002
	res, err := RunTable4(opts)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(RenderTable4(res))
}

// TestIntegrationTelecomDefaultScale runs the full telecom study at the
// evaluation scale and prints Tables 5/6 and the Figure 3 summary.
// Skipped under -short.
func TestIntegrationTelecomDefaultScale(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	opts := DefaultTelecomOptions()
	opts.IncludeSlow = false
	lab := NewLab(opts)
	t5 := lab.RunTable5()
	fmt.Println("=== Table 5 ===")
	fmt.Println(RenderTable5(t5))
	t6 := lab.RunTable6()
	fmt.Println("=== Table 6 ===")
	fmt.Println(RenderTable5(t6))
	f34 := lab.RunFigure34()
	fmt.Println("=== Fig3 summary ===")
	for _, m := range sortedKeys(f34.Summary) {
		fmt.Printf("%s\n", f34.Summary[m])
	}
	f6, err := lab.RunFigure6()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("fig6 separation %.2f\n", f6.SeparationRatio)
}
