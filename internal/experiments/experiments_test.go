package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

// sharedQuickLab amortizes the quick-mode lab across tests.
var (
	qlOnce sync.Once
	ql     *Lab
)

func quickLab() *Lab {
	qlOnce.Do(func() { ql = NewLab(QuickTelecomOptions()) })
	return ql
}

func TestTable3Content(t *testing.T) {
	out := Table3()
	for _, want := range []string{"1359", "1191", "755", "900", "259", "141", "100", "200", "150"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 3 missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable4Quick(t *testing.T) {
	res, err := RunTable4(QuickTable4Options())
	if err != nil {
		t.Fatal(err)
	}
	for _, vnf := range []string{"snort", "firewall", "switch"} {
		scores := res.Scores[vnf]
		methods := map[string]bool{}
		for _, s := range scores {
			methods[s.Method] = true
			if s.MAE <= 0 || s.MSE <= 0 || math.IsNaN(s.MAE) {
				t.Fatalf("%s/%s: bad scores %+v", vnf, s.Method, s)
			}
			if s.MSE < s.MAE*s.MAE-1e-9 {
				t.Fatalf("%s/%s: MSE < MAE² impossible", vnf, s.Method)
			}
		}
		for _, m := range []string{"Ridge", "Ridge_ts", "RFReg", "FNN", "RFNN", "RFNN_all", "Env2Vec"} {
			if !methods[m] {
				t.Fatalf("%s missing method %s", vnf, m)
			}
		}
		if methods["SVR"] {
			t.Fatalf("quick options should skip SVR")
		}
		p, ok := res.PairedP[vnf]
		if !ok || p < 0 || p > 1 {
			t.Fatalf("%s: bad paired p %v", vnf, p)
		}
	}
	rendered := RenderTable4(res)
	if !strings.Contains(rendered, "Env2Vec") || !strings.Contains(rendered, "Snort MAE") {
		t.Fatalf("render incomplete:\n%s", rendered)
	}
}

func TestMethodScoreString(t *testing.T) {
	s := MethodScore{Method: "X", MAE: 1.5, MSE: 3.25, Runs: 1}
	if !strings.Contains(s.String(), "1.50") {
		t.Fatalf("String = %q", s.String())
	}
	multi := MethodScore{Method: "Y", MAE: 1, MAEStd: 0.1, MSE: 2, MSEStd: 0.2, Runs: 3}
	if !strings.Contains(multi.String(), "±") {
		t.Fatalf("multi-run String should carry std: %q", multi.String())
	}
}

func TestConcatBatches(t *testing.T) {
	a := &nn.Batch{
		X:      tensor.FromRows([][]float64{{1, 2}}),
		Window: tensor.FromRows([][]float64{{9}}),
		EnvIDs: [][]int{{1}, {2}, {3}, {4}},
		Y:      tensor.FromRows([][]float64{{0.5}}),
	}
	b := &nn.Batch{
		X:      tensor.FromRows([][]float64{{3, 4}, {5, 6}}),
		Window: tensor.FromRows([][]float64{{8}, {7}}),
		EnvIDs: [][]int{{5, 6}, {7, 8}, {9, 10}, {11, 12}},
		Y:      tensor.FromRows([][]float64{{0.6}, {0.7}}),
	}
	c := concatBatches(a, b)
	if c.Len() != 3 || c.X.At(2, 1) != 6 || c.Window.At(1, 0) != 8 {
		t.Fatalf("concat wrong: %+v", c)
	}
	if c.EnvIDs[0][0] != 1 || c.EnvIDs[0][2] != 6 || c.Y.Data[2] != 0.7 {
		t.Fatalf("env/y concat wrong")
	}
	empty := concatBatches()
	if empty.Len() != 0 {
		t.Fatalf("empty concat should be empty")
	}
}

func TestRenderTableAlignment(t *testing.T) {
	out := RenderTable([]string{"a", "bb"}, [][]string{{"xxx", "y"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header+sep+row, got %d lines", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("separator misaligned")
	}
}

func TestFmtF(t *testing.T) {
	if fmtF(math.NaN()) != "N/A" || fmtF(0.5) != "0.500" {
		t.Fatalf("fmtF wrong")
	}
}

func TestLabFigure1(t *testing.T) {
	res := quickLab().RunFigure1()
	if len(res.ChainIDs) != quickLab().Opts.Corpus.Chains {
		t.Fatalf("chain count wrong")
	}
	if res.Weights.Rows != len(res.FeatureNames) || res.Weights.Cols != len(res.ChainIDs) {
		t.Fatalf("heatmap shape wrong")
	}
	if res.Weights.MaxAbs() == 0 {
		t.Fatalf("all-zero heatmap")
	}
	for _, id := range res.ChainIDs {
		bx, ok := res.Residuals[id]
		if !ok {
			t.Fatalf("missing residuals for %s", id)
		}
		if bx.Min > bx.Median || bx.Median > bx.Max {
			t.Fatalf("boxplot not ordered: %+v", bx)
		}
	}
}

func TestLabFigure34(t *testing.T) {
	res := quickLab().RunFigure34()
	nChains := quickLab().Opts.Corpus.Chains
	for _, m := range []string{"Ridge", "Ridge_ts", "RFNN", "RFNN_all", "Env2Vec"} {
		byChain, ok := res.PerChainMAE[m]
		if !ok || len(byChain) != nChains {
			t.Fatalf("method %s missing chains: %d", m, len(byChain))
		}
		sum, ok := res.Summary[m]
		if !ok || sum.MAE <= 0 {
			t.Fatalf("summary %s wrong: %+v", m, sum)
		}
	}
	if len(res.ImprovementEnv2Vec) != nChains || len(res.ImprovementRFNNAll) != nChains {
		t.Fatalf("improvement lengths wrong")
	}
	// Improvements are sorted.
	for i := 1; i < len(res.ImprovementEnv2Vec); i++ {
		if res.ImprovementEnv2Vec[i] < res.ImprovementEnv2Vec[i-1] {
			t.Fatalf("improvements not sorted")
		}
	}
	cdf := Figure4CDF(res)
	for m, pts := range cdf {
		if len(pts) != nChains {
			t.Fatalf("cdf %s wrong length", m)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
				t.Fatalf("cdf %s not monotone", m)
			}
		}
		if math.Abs(pts[len(pts)-1][1]-1) > 1e-12 {
			t.Fatalf("cdf %s does not reach 1", m)
		}
	}
}

func TestLabTable5(t *testing.T) {
	res := quickLab().RunTable5()
	if res.TrueProblems <= 0 {
		t.Fatalf("no ground-truth problems")
	}
	// 1 HTM row + 4 methods × 3 gammas.
	if len(res.Rows) != 1+4*3 {
		t.Fatalf("row count %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Correct > r.Alarms {
			t.Fatalf("correct > alarms: %+v", r)
		}
		if r.Alarms > 0 {
			if math.Abs(r.AT+r.AF-1) > 1e-9 {
				t.Fatalf("A_T+A_F != 1: %+v", r)
			}
		}
	}
	out := RenderTable5(res)
	if !strings.Contains(out, "HTM-AD") || !strings.Contains(out, "ground-truth") {
		t.Fatalf("render incomplete")
	}
}

func TestLabTable6(t *testing.T) {
	res := quickLab().RunTable6()
	// HTM + 2 N/A ridge rows + 2 methods × 3 gammas.
	if len(res.Rows) != 3+2*3 {
		t.Fatalf("row count %d", len(res.Rows))
	}
	foundNA := 0
	for _, r := range res.Rows {
		if (r.Method == "Ridge" || r.Method == "Ridge_ts") && math.IsNaN(r.AT) {
			foundNA++
		}
		if r.Method == "Ridge" && r.Alarms != 0 {
			t.Fatalf("ridge must be N/A in unseen environments")
		}
	}
	if foundNA != 2 {
		t.Fatalf("expected 2 N/A rows, got %d", foundNA)
	}
	if !strings.Contains(RenderTable5(res), "N/A") {
		t.Fatalf("render should show N/A")
	}
}

func TestLabFigure6(t *testing.T) {
	res, err := quickLab().RunFigure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatalf("no points")
	}
	types := map[string]bool{}
	for _, p := range res.Points {
		if p.BuildType == "" {
			t.Fatalf("missing build type for %v", p.Env)
		}
		types[p.BuildType] = true
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Fatalf("NaN projection")
		}
	}
	if len(types) < 2 {
		t.Fatalf("expected multiple build types, got %v", types)
	}
	if len(res.Explained) != 2 {
		t.Fatalf("explained variance missing")
	}
}

func TestLabTable7(t *testing.T) {
	res := quickLab().RunTable7()
	if len(res.Rows) != len(quickLab().Corpus.FaultTargets) {
		t.Fatalf("row count %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.TestbedExamples < 0 || r.CoveragePct < 0 || r.CoveragePct > 100 {
			t.Fatalf("bad coverage: %+v", r)
		}
	}
	// Rows sorted worst-first.
	for i := 1; i < len(res.Rows); i++ {
		if less(res.Rows[i].AT, res.Rows[i-1].AT) {
			t.Fatalf("rows not sorted by A_T")
		}
	}
}

func TestLabCostReport(t *testing.T) {
	cost, err := quickLab().RunCostReport()
	if err != nil {
		t.Fatal(err)
	}
	if cost.ModelBytes <= 0 || cost.ModelBytes > 10*1024*1024 {
		t.Fatalf("model size %d violates the <10MB claim", cost.ModelBytes)
	}
	if cost.Parameters <= 0 || cost.PooledTrainSeconds <= 0 {
		t.Fatalf("bad cost report: %+v", cost)
	}
	if cost.RidgeSecondsPerChain >= 1 {
		t.Fatalf("ridge should train in <1s per chain (§6), took %v", cost.RidgeSecondsPerChain)
	}
}

func TestSymlog(t *testing.T) {
	if symlog(0) != 0 {
		t.Fatalf("symlog(0) != 0")
	}
	if symlog(-3) != -symlog(3) {
		t.Fatalf("symlog not odd")
	}
	if symlog(100) <= symlog(10) {
		t.Fatalf("symlog not monotone")
	}
}

func TestLessNaNOrdering(t *testing.T) {
	if !less(math.NaN(), 1) {
		t.Fatalf("NaN should sort first")
	}
	if less(1, math.NaN()) {
		t.Fatalf("number should not sort before NaN")
	}
	if !less(1, 2) || less(2, 1) {
		t.Fatalf("numeric ordering wrong")
	}
}
