package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"env2vec/internal/anomaly"
	"env2vec/internal/baselines"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/metrics"
	"env2vec/internal/nn"
	"env2vec/internal/pipeline"
	"env2vec/internal/stats"
	"env2vec/internal/telecom"
	"env2vec/internal/tensor"
)

// TelecomOptions scales the §4.2/§4.3 experiments.
type TelecomOptions struct {
	Corpus  telecom.Config
	Window  int
	Hidden  int
	GRU     int
	Epochs  int // pooled-model training epochs
	ChainEp int // per-chain RFNN training epochs
	Seed    int64
	// IncludeSlow adds RFReg, FNN, and SVR to the per-chain comparison
	// (Figure 4 "all methods"); they multiply runtime by ~3×.
	IncludeSlow bool
	// HTMThreshold overrides the HTM-AD alarm cutoff (0 = htm.Threshold).
	HTMThreshold float64
}

// DefaultTelecomOptions returns the evaluation-scale settings (125 chains,
// 11 fault executions).
func DefaultTelecomOptions() TelecomOptions {
	return TelecomOptions{
		Corpus: telecom.DefaultConfig(),
		Window: 4, Hidden: 48, GRU: 24,
		Epochs: 25, ChainEp: 30, Seed: 1,
		IncludeSlow: true,
	}
}

// QuickTelecomOptions returns unit-test-scale settings.
func QuickTelecomOptions() TelecomOptions {
	return TelecomOptions{
		Corpus: telecom.SmallConfig(),
		Window: 3, Hidden: 12, GRU: 6,
		Epochs: 6, ChainEp: 6, Seed: 1,
	}
}

// Lab shares expensive artifacts (the corpus, the pooled models, per-chain
// baselines) across the telecom experiments so that running all tables and
// figures trains each model exactly once.
type Lab struct {
	Opts   TelecomOptions
	Corpus *telecom.Corpus

	pooled       *pipeline.TrainResult // Env2Vec on all chain histories
	pooledBlind  *pipeline.TrainResult // Env2Vec without fault-chain data (§4.3)
	rfnnAll      *pooledRFNN           // RFNN_all on all chain histories
	rfnnAllBlind *pooledRFNN
	chains       map[string]*chainModels

	trainSecsPooled float64
	trainSecsRidge  float64 // total across chains
}

// pooledRFNN wraps a pooled RFNN_all with its preprocessing artifacts.
type pooledRFNN struct {
	model  *baselines.RFNN
	schema *envmeta.Schema
	std    *dataset.Standardizer
	ys     dataset.YScaler
}

// chainModels holds the per-chain baselines and their error models.
type chainModels struct {
	ridge, ridgeTS   *baselines.Ridge
	rfnn             *baselines.RFNN
	forest           *baselines.RandomForest
	fnn              *nn.MLP
	svr              *baselines.SVR
	std              *dataset.Standardizer
	ys               dataset.YScaler
	emRidge          anomaly.ErrorModel
	emRidgeTS        anomaly.ErrorModel
	histExampleCount int
}

// NewLab generates the corpus and prepares lazy state.
func NewLab(opts TelecomOptions) *Lab {
	opts.Corpus.Seed = opts.Seed
	return &Lab{
		Opts:   opts,
		Corpus: telecom.Generate(opts.Corpus),
		chains: make(map[string]*chainModels),
	}
}

// history returns a chain's pre-upgrade builds.
func (l *Lab) history(chainID string) []*dataset.Series {
	chain := l.Corpus.ChainSeries[chainID]
	return chain[:len(chain)-1]
}

// current returns the chain's newest build (the test execution).
func (l *Lab) current(chainID string) *dataset.Series {
	return l.Corpus.Current[chainID]
}

// faultChains returns the chain ids of the fault-injected executions.
func (l *Lab) faultChains() map[string]bool {
	out := make(map[string]bool)
	for _, e := range l.Corpus.FaultTargets {
		out[e.Series.ChainID] = true
	}
	return out
}

// trainerConfig assembles the pooled-model configuration.
func (l *Lab) trainerConfig() pipeline.TrainerConfig {
	cfg := pipeline.DefaultTrainerConfig(telecom.NumFeatures)
	cfg.Model.Hidden = l.Opts.Hidden
	cfg.Model.GRUHidden = l.Opts.GRU
	cfg.Model.Window = l.Opts.Window
	cfg.Model.Seed = l.Opts.Seed
	cfg.Train.Epochs = l.Opts.Epochs
	cfg.Train.BatchSize = 64
	cfg.Train.Patience = 6
	cfg.Train.Seed = l.Opts.Seed
	return cfg
}

// Pooled trains (once) the single generic Env2Vec model on every chain's
// historical builds; current builds are held out as test executions.
func (l *Lab) Pooled() *pipeline.TrainResult {
	if l.pooled != nil {
		return l.pooled
	}
	exclude := map[*dataset.Series]bool{}
	for _, id := range l.Corpus.ChainOrder {
		exclude[l.current(id)] = true
	}
	start := time.Now()
	tr, err := pipeline.Train(l.Corpus.Dataset, exclude, l.trainerConfig())
	if err != nil {
		panic(fmt.Sprintf("experiments: pooled training: %v", err))
	}
	l.trainSecsPooled = time.Since(start).Seconds()
	l.pooled = tr
	return tr
}

// PooledBlind trains Env2Vec excluding every build (history and current) of
// the fault chains, for the unseen-environment study of §4.3.
func (l *Lab) PooledBlind() *pipeline.TrainResult {
	if l.pooledBlind != nil {
		return l.pooledBlind
	}
	faulty := l.faultChains()
	exclude := map[*dataset.Series]bool{}
	for _, s := range l.Corpus.Dataset.Series {
		if faulty[s.ChainID] || s == l.current(s.ChainID) {
			exclude[s] = true
		}
	}
	tr, err := pipeline.Train(l.Corpus.Dataset, exclude, l.trainerConfig())
	if err != nil {
		panic(fmt.Sprintf("experiments: blind pooled training: %v", err))
	}
	l.pooledBlind = tr
	return tr
}

// trainRFNNAll trains a pooled RFNN without embeddings on the series not in
// exclude.
func (l *Lab) trainRFNNAll(exclude map[*dataset.Series]bool) *pooledRFNN {
	schema := envmeta.NewSchema()
	var examples []dataset.Example
	for _, s := range l.Corpus.Dataset.Series {
		if exclude[s] {
			continue
		}
		schema.Observe(s.Env)
		examples = append(examples, dataset.WindowExamples(s, l.Opts.Window)...)
	}
	schema.Freeze()
	nVal := len(examples) / 10
	split, err := dataset.SplitExamples(examples, len(examples)-nVal, nVal, 0, schema)
	if err != nil {
		panic(fmt.Sprintf("experiments: rfnn_all split: %v", err))
	}
	std := dataset.StandardizeSplit(split)
	ys := dataset.FitYScaler(split.Train)
	m := baselines.NewRFNN(baselines.RFNNConfig{
		In: telecom.NumFeatures, Hidden: l.Opts.Hidden, GRUHidden: l.Opts.GRU,
		DenseDim: l.Opts.GRU, Dropout: 0.1, Seed: l.Opts.Seed,
	})
	tc := nn.TrainConfig{Epochs: l.Opts.Epochs, BatchSize: 64, Patience: 6, MinDelta: 1e-5, Seed: l.Opts.Seed}
	nn.Train(m, nn.NewAdam(0.005), ys.Scale(split.Train), ys.Scale(split.Val), tc)
	return &pooledRFNN{model: m, schema: schema, std: std, ys: ys}
}

// RFNNAll returns (training once) the pooled no-embedding ablation.
func (l *Lab) RFNNAll() *pooledRFNN {
	if l.rfnnAll == nil {
		exclude := map[*dataset.Series]bool{}
		for _, id := range l.Corpus.ChainOrder {
			exclude[l.current(id)] = true
		}
		l.rfnnAll = l.trainRFNNAll(exclude)
	}
	return l.rfnnAll
}

// RFNNAllBlind is the §4.3 variant with fault chains fully excluded.
func (l *Lab) RFNNAllBlind() *pooledRFNN {
	if l.rfnnAllBlind == nil {
		faulty := l.faultChains()
		exclude := map[*dataset.Series]bool{}
		for _, s := range l.Corpus.Dataset.Series {
			if faulty[s.ChainID] || s == l.current(s.ChainID) {
				exclude[s] = true
			}
		}
		l.rfnnAllBlind = l.trainRFNNAll(exclude)
	}
	return l.rfnnAllBlind
}

// predictPooled runs a pooled RFNN on one series, returning raw-unit
// predictions aligned to timesteps [window, len).
func (p *pooledRFNN) predictSeries(s *dataset.Series, window int) (pred, actual []float64) {
	exs := dataset.WindowExamples(s, window)
	b := dataset.ToBatch(exs, p.schema)
	p.std.Apply(b.X)
	pred = p.ys.Unscale(p.model.Predict(p.ys.Scale(b)))
	actual = make([]float64, len(exs))
	for i, ex := range exs {
		actual[i] = ex.Y
	}
	return pred, actual
}

// Chain fits (once) the per-chain baselines on the chain's history.
func (l *Lab) Chain(chainID string) *chainModels {
	if cm, ok := l.chains[chainID]; ok {
		return cm
	}
	hist := l.history(chainID)
	var examples []dataset.Example
	for _, s := range hist {
		examples = append(examples, dataset.WindowExamples(s, l.Opts.Window)...)
	}
	nVal := len(examples) / 6
	nTrain := len(examples) - nVal
	split, err := dataset.SplitExamples(examples, nTrain, nVal, 0, nil)
	if err != nil {
		panic(fmt.Sprintf("experiments: chain %s split: %v", chainID, err))
	}
	std := dataset.StandardizeSplit(split)
	ys := dataset.FitYScaler(split.Train)
	cm := &chainModels{std: std, ys: ys, histExampleCount: len(examples)}

	start := time.Now()
	cm.ridge, err = baselines.FitRidgeCV(split.Train, split.Val, false)
	if err != nil {
		panic(fmt.Sprintf("experiments: chain %s ridge: %v", chainID, err))
	}
	cm.ridgeTS, err = baselines.FitRidgeCV(split.Train, split.Val, true)
	if err != nil {
		panic(fmt.Sprintf("experiments: chain %s ridge_ts: %v", chainID, err))
	}
	l.trainSecsRidge += time.Since(start).Seconds()

	cm.rfnn = baselines.NewRFNN(baselines.RFNNConfig{
		In: telecom.NumFeatures, Hidden: l.Opts.Hidden, GRUHidden: l.Opts.GRU,
		DenseDim: l.Opts.GRU, Dropout: 0.1, Seed: l.Opts.Seed,
	})
	tc := nn.TrainConfig{Epochs: l.Opts.ChainEp, BatchSize: 32, Patience: 6, MinDelta: 1e-5, Seed: l.Opts.Seed}
	nn.Train(cm.rfnn, nn.NewAdam(0.01), ys.Scale(split.Train), ys.Scale(split.Val), tc)

	if l.Opts.IncludeSlow {
		cm.forest, err = baselines.FitForestCV(split.Train, split.Val, 50, l.Opts.Seed)
		if err != nil {
			panic(fmt.Sprintf("experiments: chain %s forest: %v", chainID, err))
		}
		cm.fnn = nn.NewMLP("fnn."+chainID, telecom.NumFeatures, l.Opts.Hidden, nn.Sigmoid, 0.1, rand.New(rand.NewSource(l.Opts.Seed)))
		nn.Train(cm.fnn, nn.NewAdam(0.01), ys.Scale(split.Train), ys.Scale(split.Val), tc)
		cm.svr = baselines.NewSVR(10, 0.1, baselines.KernelRBF)
		if err := cm.svr.Fit(ys.Scale(split.Train)); err != nil {
			panic(fmt.Sprintf("experiments: chain %s svr: %v", chainID, err))
		}
	}

	// Error models from historical predictions (for Table 5).
	histBatch := dataset.ToBatch(examples, nil)
	std.Apply(histBatch.X)
	cm.emRidge = anomaly.FitErrorModel(cm.ridge.Predict(histBatch), histBatch.Y.Data)
	cm.emRidgeTS = anomaly.FitErrorModel(cm.ridgeTS.Predict(histBatch), histBatch.Y.Data)

	l.chains[chainID] = cm
	return cm
}

// testBatch standardizes the chain's current-build examples with the
// chain's own scaler.
func (l *Lab) testBatch(chainID string) *nn.Batch {
	cm := l.Chain(chainID)
	exs := dataset.WindowExamples(l.current(chainID), l.Opts.Window)
	b := dataset.ToBatch(exs, nil)
	cm.std.Apply(b.X)
	return b
}

// ChainMAE computes each method's MAE on the chain's current build.
// Methods: Ridge, Ridge_ts, RFNN (+RFReg, FNN, SVR when IncludeSlow),
// RFNN_all, Env2Vec.
func (l *Lab) ChainMAE(chainID string) map[string]float64 {
	cm := l.Chain(chainID)
	b := l.testBatch(chainID)
	out := map[string]float64{
		"Ridge":    metrics.MAE(cm.ridge.Predict(b), b.Y.Data),
		"Ridge_ts": metrics.MAE(cm.ridgeTS.Predict(b), b.Y.Data),
		"RFNN":     metrics.MAE(cm.ys.Unscale(cm.rfnn.Predict(cm.ys.Scale(b))), b.Y.Data),
	}
	if l.Opts.IncludeSlow {
		out["RFReg"] = metrics.MAE(cm.forest.Predict(b), b.Y.Data)
		out["FNN"] = metrics.MAE(cm.ys.Unscale(cm.fnn.Predict(cm.ys.Scale(b))), b.Y.Data)
		out["SVR"] = metrics.MAE(cm.ys.Unscale(cm.svr.Predict(cm.ys.Scale(b))), b.Y.Data)
	}
	// Pooled models.
	cur := l.current(chainID)
	pa, act := l.RFNNAll().predictSeries(cur, l.Opts.Window)
	out["RFNN_all"] = metrics.MAE(pa, act)

	tr := l.Pooled()
	wf := pipeline.NewWorkflow(tr, anomaly.Config{Gamma: 3})
	pe, ae, _ := predictWithWorkflow(wf, cur)
	out["Env2Vec"] = metrics.MAE(pe, ae)
	return out
}

// ChainMSE computes each pooled method's MSE on the chain's current build
// (for the Figure 3 summary table).
func (l *Lab) ChainMSE(chainID string) map[string]float64 {
	cm := l.Chain(chainID)
	b := l.testBatch(chainID)
	out := map[string]float64{
		"Ridge":    metrics.MSE(cm.ridge.Predict(b), b.Y.Data),
		"Ridge_ts": metrics.MSE(cm.ridgeTS.Predict(b), b.Y.Data),
	}
	cur := l.current(chainID)
	pa, act := l.RFNNAll().predictSeries(cur, l.Opts.Window)
	out["RFNN_all"] = metrics.MSE(pa, act)
	wf := pipeline.NewWorkflow(l.Pooled(), anomaly.Config{Gamma: 3})
	pe, ae, _ := predictWithWorkflow(wf, cur)
	out["Env2Vec"] = metrics.MSE(pe, ae)
	return out
}

// predictWithWorkflow exposes the workflow's prediction path for metric
// computation.
func predictWithWorkflow(wf *pipeline.Workflow, s *dataset.Series) (pred, actual []float64, offset int) {
	window := wf.Model.Config().Window
	exs := dataset.WindowExamples(s, window)
	b := dataset.ToBatch(exs, wf.Schema)
	wf.Standardizer.Apply(b.X)
	pred = wf.YScale.Unscale(wf.Model.Predict(wf.YScale.Scale(b)))
	actual = make([]float64, len(exs))
	for i, ex := range exs {
		actual[i] = ex.Y
	}
	return pred, actual, window
}

// Figure1Result carries the per-chain linear-regression study.
type Figure1Result struct {
	FeatureNames []string
	ChainIDs     []string
	// Weights is features×chains: symmetrically log-normalized linear
	// regression coefficients (the heatmap of Figure 1 top). Zero cells
	// mean the metric was unavailable or unimportant on that chain.
	Weights *tensor.Matrix
	// Residual boxplots per chain (Figure 1 bottom); Red flags chains with
	// at least one test residual above 10 CPU points.
	Residuals map[string]stats.BoxStats
	Red       map[string]bool
}

// RunFigure1 fits one plain linear model per build chain and reports the
// coefficient heatmap and test-residual boxplots of Figure 1.
func (l *Lab) RunFigure1() *Figure1Result {
	res := &Figure1Result{
		FeatureNames: l.Corpus.Dataset.FeatureNames,
		ChainIDs:     l.Corpus.ChainOrder,
		Weights:      tensor.New(telecom.NumFeatures, len(l.Corpus.ChainOrder)),
		Residuals:    make(map[string]stats.BoxStats),
		Red:          make(map[string]bool),
	}
	for ci, chainID := range l.Corpus.ChainOrder {
		cm := l.Chain(chainID)
		w, _ := cm.ridge.Coefficients()
		for j := 0; j < telecom.NumFeatures && j < len(w); j++ {
			res.Weights.Set(j, ci, symlog(w[j]))
		}
		b := l.testBatch(chainID)
		resid := metrics.Errors(cm.ridge.Predict(b), b.Y.Data)
		abs := make([]float64, len(resid))
		maxAbs := 0.0
		for i, r := range resid {
			abs[i] = math.Abs(r)
			if abs[i] > maxAbs {
				maxAbs = abs[i]
			}
		}
		res.Residuals[chainID] = stats.Boxplot(abs)
		res.Red[chainID] = maxAbs > 10
	}
	return res
}

// symlog is the symmetric log normalization used for the Figure 1 heatmap.
func symlog(w float64) float64 {
	if w == 0 {
		return 0
	}
	s := 1.0
	if w < 0 {
		s = -1
	}
	return s * math.Log1p(math.Abs(w))
}

// Figure34Result carries the per-chain MAE study behind Figures 3 and 4.
type Figure34Result struct {
	// PerChainMAE: method → chainID → test MAE.
	PerChainMAE map[string]map[string]float64
	// Summary: method → mean MAE/MSE across chains (Figure 3 inset table).
	Summary map[string]MethodScore
	// Improvement of Env2Vec (and RFNN_all) over Ridge_ts per chain,
	// sorted ascending (Figure 3a/3b bars).
	ImprovementEnv2Vec []float64
	ImprovementRFNNAll []float64
}

// RunFigure34 evaluates every method on every chain's current build.
func (l *Lab) RunFigure34() *Figure34Result {
	res := &Figure34Result{
		PerChainMAE: make(map[string]map[string]float64),
		Summary:     make(map[string]MethodScore),
	}
	mseAcc := make(map[string][]float64)
	for _, chainID := range l.Corpus.ChainOrder {
		for method, mae := range l.ChainMAE(chainID) {
			if res.PerChainMAE[method] == nil {
				res.PerChainMAE[method] = make(map[string]float64)
			}
			res.PerChainMAE[method][chainID] = mae
		}
		for method, mse := range l.ChainMSE(chainID) {
			mseAcc[method] = append(mseAcc[method], mse)
		}
	}
	for method, byChain := range res.PerChainMAE {
		var maes []float64
		for _, id := range l.Corpus.ChainOrder {
			maes = append(maes, byChain[id])
		}
		score := MethodScore{Method: method, MAE: stats.Mean(maes), Runs: 1}
		if mses, ok := mseAcc[method]; ok {
			score.MSE = stats.Mean(mses)
		}
		res.Summary[method] = score
	}
	for _, id := range l.Corpus.ChainOrder {
		base := res.PerChainMAE["Ridge_ts"][id]
		res.ImprovementEnv2Vec = append(res.ImprovementEnv2Vec, base-res.PerChainMAE["Env2Vec"][id])
		res.ImprovementRFNNAll = append(res.ImprovementRFNNAll, base-res.PerChainMAE["RFNN_all"][id])
	}
	sort.Float64s(res.ImprovementEnv2Vec)
	sort.Float64s(res.ImprovementRFNNAll)
	return res
}

// Figure4CDF returns the (x, F(x)) step points of each method's per-chain
// MAE distribution — the curves of Figure 4.
func Figure4CDF(res *Figure34Result) map[string][][2]float64 {
	out := make(map[string][][2]float64)
	for method, byChain := range res.PerChainMAE {
		var maes []float64
		for _, v := range byChain {
			maes = append(maes, v)
		}
		xs, fs := stats.NewECDF(maes).Points()
		pts := make([][2]float64, len(xs))
		for i := range xs {
			pts[i] = [2]float64{xs[i], fs[i]}
		}
		out[method] = pts
	}
	return out
}
