package experiments

import (
	"fmt"
	"math"
	"sort"

	"env2vec/internal/anomaly"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/htm"
	"env2vec/internal/metrics"
	"env2vec/internal/pipeline"
	"env2vec/internal/stats"
	"env2vec/internal/telecom"
)

// Table5Row is one row of Table 5 / Table 6.
type Table5Row struct {
	Method   string
	Gamma    float64 // 0 for HTM-AD (threshold-based, γ-independent)
	Alarms   int
	Correct  int
	AT, AF   float64
	Detected int // ground-truth episodes covered by ≥1 alarm
}

// Table5Result aggregates one detection study.
type Table5Result struct {
	Rows         []Table5Row
	TrueProblems int // labelled problem episodes across the fault executions
}

// detectOpts groups shared detection parameters.
const (
	alarmMergeGap = 1
	absFilterCPU  = 5.0 // the 5% absolute filter of §4.2.2
)

// RunTable5 reproduces Table 5: alarm quality of HTM-AD, Ridge, Ridge_ts,
// RFNN_all, and Env2Vec on the fault-injected test executions, for
// γ ∈ {1,2,3}. All methods use per-chain error distributions fitted on the
// chain's historical builds, plus the 5-point absolute filter.
func (l *Lab) RunTable5() *Table5Result {
	res := &Table5Result{}
	for _, exec := range l.Corpus.FaultTargets {
		res.TrueProblems += anomaly.TrueEpisodes(exec.Series)
	}

	// HTM-AD: stream history then the execution, alarm on score ≥ threshold.
	htmStats, htmDetected := l.runHTM()
	res.Rows = append(res.Rows, Table5Row{
		Method: "HTM-AD", Alarms: htmStats.Alarms, Correct: htmStats.Correct,
		AT: htmStats.AT(), AF: htmStats.AF(), Detected: htmDetected,
	})

	wf := pipeline.NewWorkflow(l.Pooled(), anomaly.Config{Gamma: 1, AbsFilter: absFilterCPU})
	for _, chainID := range l.Corpus.ChainOrder {
		wf.CalibrateChain(chainID, l.history(chainID))
	}

	for _, gamma := range []float64{1, 2, 3} {
		cfg := anomaly.Config{Gamma: gamma, AbsFilter: absFilterCPU}
		for _, method := range []string{"Ridge", "Ridge_ts", "RFNN_all", "Env2Vec"} {
			var agg metrics.AlarmStats
			detected := 0
			for _, exec := range l.Corpus.FaultTargets {
				alarms := l.detectWith(method, wf, exec.Series, cfg)
				st := anomaly.Evaluate(alarms, exec.Series)
				agg.Add(st)
				detected += anomaly.DetectedEpisodes(alarms, exec.Series)
			}
			res.Rows = append(res.Rows, Table5Row{
				Method: method, Gamma: gamma,
				Alarms: agg.Alarms, Correct: agg.Correct,
				AT: agg.AT(), AF: agg.AF(), Detected: detected,
			})
		}
	}
	return res
}

// detectWith produces alarms for one execution using the named method with
// per-chain historical error models.
func (l *Lab) detectWith(method string, wf *pipeline.Workflow, s *dataset.Series, cfg anomaly.Config) []anomaly.Alarm {
	switch method {
	case "Env2Vec":
		wf.Detect = cfg
		return wf.ProcessExecution("env2vec", s)
	case "RFNN_all":
		p := l.RFNNAll()
		pred, actual := p.predictSeries(s, l.Opts.Window)
		// Error model from the chain's history under the pooled model.
		var hp, ha []float64
		for _, h := range l.history(s.ChainID) {
			php, pha := p.predictSeries(h, l.Opts.Window)
			hp = append(hp, php...)
			ha = append(ha, pha...)
		}
		em := anomaly.FitErrorModel(hp, ha)
		flags := anomaly.Flag(pred, actual, em, cfg)
		return mergeOffset(method, s, flags, pred, l.Opts.Window)
	case "Ridge", "Ridge_ts":
		cm := l.Chain(s.ChainID)
		b := l.testBatch(s.ChainID)
		var pred []float64
		var em anomaly.ErrorModel
		if method == "Ridge" {
			pred = cm.ridge.Predict(b)
			em = cm.emRidge
		} else {
			pred = cm.ridgeTS.Predict(b)
			em = cm.emRidgeTS
		}
		flags := anomaly.Flag(pred, b.Y.Data, em, cfg)
		return mergeOffset(method, s, flags, pred, l.Opts.Window)
	}
	panic(fmt.Sprintf("experiments: unknown detection method %q", method))
}

// mergeOffset re-aligns window-offset flags/predictions with the full
// series before merging alarms.
func mergeOffset(method string, s *dataset.Series, flags []bool, pred []float64, window int) []anomaly.Alarm {
	fullFlags := make([]bool, s.Len())
	fullPred := make([]float64, s.Len())
	copy(fullPred, s.RU)
	for i, f := range flags {
		fullFlags[window+i] = f
		fullPred[window+i] = pred[i]
	}
	return anomaly.MergeAlarms(method, s, fullFlags, fullPred, alarmMergeGap)
}

// runHTM streams each fault chain (history then current build) through the
// HTM-AD detector and evaluates alarms on the current build.
func (l *Lab) runHTM() (metrics.AlarmStats, int) {
	var agg metrics.AlarmStats
	detected := 0
	threshold := l.Opts.HTMThreshold
	if threshold == 0 {
		threshold = htm.Threshold
	}
	for _, exec := range l.Corpus.FaultTargets {
		d := htm.New(htm.Config{})
		for _, h := range l.history(exec.Series.ChainID) {
			for _, v := range h.RU {
				d.Step(v)
			}
		}
		s := exec.Series
		flags := make([]bool, s.Len())
		for i, v := range s.RU {
			flags[i] = d.Step(v) >= threshold
		}
		alarms := anomaly.MergeAlarms("htm-ad", s, flags, s.RU, alarmMergeGap)
		agg.Add(anomaly.Evaluate(alarms, s))
		detected += anomaly.DetectedEpisodes(alarms, s)
	}
	return agg, detected
}

// RunTable6 reproduces Table 6: detection in unseen environments. The
// pooled models are retrained with every build of the fault chains blinded
// out; at test time the error distribution comes from the execution itself
// (§4.3), and Ridge/Ridge_ts are N/A for lack of chain history.
func (l *Lab) RunTable6() *Table5Result {
	res := &Table5Result{}
	for _, exec := range l.Corpus.FaultTargets {
		res.TrueProblems += anomaly.TrueEpisodes(exec.Series)
	}
	htmStats, htmDetected := l.runHTM()
	res.Rows = append(res.Rows, Table5Row{
		Method: "HTM-AD", Alarms: htmStats.Alarms, Correct: htmStats.Correct,
		AT: htmStats.AT(), AF: htmStats.AF(), Detected: htmDetected,
	})
	res.Rows = append(res.Rows,
		Table5Row{Method: "Ridge", AT: math.NaN(), AF: math.NaN()},
		Table5Row{Method: "Ridge_ts", AT: math.NaN(), AF: math.NaN()},
	)

	blindE2V := l.PooledBlind()
	blindRFNN := l.RFNNAllBlind()
	for _, gamma := range []float64{1, 2, 3} {
		cfg := anomaly.Config{Gamma: gamma, AbsFilter: absFilterCPU}

		var aggR metrics.AlarmStats
		detR := 0
		for _, exec := range l.Corpus.FaultTargets {
			pred, actual := blindRFNN.predictSeries(exec.Series, l.Opts.Window)
			flags := anomaly.SelfFlag(pred, actual, cfg)
			alarms := mergeOffset("RFNN_all", exec.Series, flags, pred, l.Opts.Window)
			aggR.Add(anomaly.Evaluate(alarms, exec.Series))
			detR += anomaly.DetectedEpisodes(alarms, exec.Series)
		}
		res.Rows = append(res.Rows, Table5Row{
			Method: "RFNN_all", Gamma: gamma,
			Alarms: aggR.Alarms, Correct: aggR.Correct, AT: aggR.AT(), AF: aggR.AF(), Detected: detR,
		})

		wf := pipeline.NewWorkflow(blindE2V, cfg)
		var aggE metrics.AlarmStats
		detE := 0
		for _, exec := range l.Corpus.FaultTargets {
			// No calibration: the workflow falls back to the execution's
			// own error distribution, exactly the §4.3 protocol.
			alarms := wf.ProcessExecution("env2vec", exec.Series)
			aggE.Add(anomaly.Evaluate(alarms, exec.Series))
			detE += anomaly.DetectedEpisodes(alarms, exec.Series)
		}
		res.Rows = append(res.Rows, Table5Row{
			Method: "Env2Vec", Gamma: gamma,
			Alarms: aggE.Alarms, Correct: aggE.Correct, AT: aggE.AT(), AF: aggE.AF(), Detected: detE,
		})
	}
	return res
}

// RenderTable5 renders a detection study like the paper's Tables 5/6.
func RenderTable5(res *Table5Result) string {
	header := []string{"Method", "gamma", "# alarms", "correct", "A_T", "A_F", "detected"}
	var rows [][]string
	for _, r := range res.Rows {
		g := "-"
		if r.Gamma > 0 {
			g = fmt.Sprintf("%.0f", r.Gamma)
		}
		alarms, correct, det := fmt.Sprint(r.Alarms), fmt.Sprint(r.Correct), fmt.Sprint(r.Detected)
		if math.IsNaN(r.AT) && r.Alarms == 0 && r.Method != "HTM-AD" && r.Gamma == 0 {
			alarms, correct, det = "N/A", "N/A", "N/A"
		}
		rows = append(rows, []string{r.Method, g, alarms, correct, fmtF(r.AT), fmtF(r.AF), det})
	}
	out := RenderTable(header, rows)
	return out + fmt.Sprintf("\nground-truth performance problems: %d\n", res.TrueProblems)
}

// Figure6Point is one environment in the 2-D embedding projection.
type Figure6Point struct {
	Env       envmeta.Environment
	BuildType string
	X, Y      float64
}

// Figure6Result carries the PCA projection of learned environment
// embeddings plus a cluster-quality summary.
type Figure6Result struct {
	Points []Figure6Point
	// Silhouette-style ratio: mean inter-build-type distance divided by
	// mean intra-build-type distance (>1 ⇒ build types cluster).
	SeparationRatio float64
	Explained       []float64
}

// RunFigure6 projects the concatenated environment embeddings of all
// training environments to 2-D with PCA and measures build-type clustering.
func (l *Lab) RunFigure6() (*Figure6Result, error) {
	tr := l.Pooled()
	// Unique training environments (history builds).
	seen := make(map[envmeta.Environment]bool)
	var envs []envmeta.Environment
	for _, chainID := range l.Corpus.ChainOrder {
		for _, s := range l.history(chainID) {
			if !seen[s.Env] {
				seen[s.Env] = true
				envs = append(envs, s.Env)
			}
		}
	}
	sort.Slice(envs, func(i, j int) bool { return envs[i].String() < envs[j].String() })
	ids := make([][envmeta.NumFeatures]int, len(envs))
	for i, e := range envs {
		ids[i] = tr.Schema.Encode(e)
	}
	mat := tr.Model.EmbeddingMatrix(ids)
	pca, err := stats.FitPCA(mat, 2)
	if err != nil {
		return nil, err
	}
	proj := pca.Transform(mat)
	res := &Figure6Result{Explained: pca.Explained}
	for i, e := range envs {
		res.Points = append(res.Points, Figure6Point{
			Env: e, BuildType: e.BuildType(),
			X: proj.At(i, 0), Y: proj.At(i, 1),
		})
	}
	res.SeparationRatio = separationRatio(res.Points)
	return res, nil
}

// separationRatio compares mean pairwise distance across build types to the
// mean within build types (computed in the 2-D projection).
func separationRatio(points []Figure6Point) float64 {
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < len(points); i++ {
		for j := i + 1; j < len(points); j++ {
			dx := points[i].X - points[j].X
			dy := points[i].Y - points[j].Y
			d := math.Sqrt(dx*dx + dy*dy)
			if points[i].BuildType == points[j].BuildType {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	if nIntra == 0 || nInter == 0 || intra == 0 {
		return math.NaN()
	}
	return (inter / float64(nInter)) / (intra / float64(nIntra))
}

// Table7Row describes one fault execution's γ=1 Env2Vec performance along
// with the training coverage of its testbed.
type Table7Row struct {
	Env             envmeta.Environment
	AT              float64
	TestbedExamples int
	CoveragePct     float64
}

// Table7Result mirrors Table 7: the under-performing execution vs the rest.
type Table7Result struct {
	Rows []Table7Row
	// Summary statistics as the paper reports them.
	WorstAT, RestMeanAT              float64
	WorstExamples                    int
	RestMeanExamples, RestMeanCovPct float64
	WorstCoveragePct                 float64
}

// RunTable7 reproduces the Table 7 coverage analysis at γ=1.
func (l *Lab) RunTable7() *Table7Result {
	wf := pipeline.NewWorkflow(l.Pooled(), anomaly.Config{Gamma: 1, AbsFilter: absFilterCPU})
	for _, chainID := range l.Corpus.ChainOrder {
		wf.CalibrateChain(chainID, l.history(chainID))
	}
	// Testbed coverage across training examples.
	testbedExamples := make(map[string]int)
	total := 0
	for _, chainID := range l.Corpus.ChainOrder {
		for _, s := range l.history(chainID) {
			n := s.Len() - l.Opts.Window
			testbedExamples[s.Env.Testbed] += n
			total += n
		}
	}
	res := &Table7Result{}
	for _, exec := range l.Corpus.FaultTargets {
		alarms := wf.ProcessExecution("env2vec", exec.Series)
		st := anomaly.Evaluate(alarms, exec.Series)
		cnt := testbedExamples[exec.Series.Env.Testbed]
		res.Rows = append(res.Rows, Table7Row{
			Env: exec.Series.Env, AT: st.AT(),
			TestbedExamples: cnt,
			CoveragePct:     100 * float64(cnt) / float64(total),
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return less(res.Rows[i].AT, res.Rows[j].AT) })
	if len(res.Rows) > 0 {
		worst := res.Rows[0]
		res.WorstAT = worst.AT
		res.WorstExamples = worst.TestbedExamples
		res.WorstCoveragePct = worst.CoveragePct
		var ats, exs, covs []float64
		for _, r := range res.Rows[1:] {
			if !math.IsNaN(r.AT) {
				ats = append(ats, r.AT)
			}
			exs = append(exs, float64(r.TestbedExamples))
			covs = append(covs, r.CoveragePct)
		}
		res.RestMeanAT = stats.Mean(ats)
		res.RestMeanExamples = stats.Mean(exs)
		res.RestMeanCovPct = stats.Mean(covs)
	}
	return res
}

// less orders NaN first (an execution with no alarms is the worst case).
func less(a, b float64) bool {
	if math.IsNaN(a) {
		return !math.IsNaN(b)
	}
	if math.IsNaN(b) {
		return false
	}
	return a < b
}

// CostReport carries the §6 discussion numbers.
type CostReport struct {
	RidgeSecondsPerChain float64
	PooledTrainSeconds   float64
	ModelBytes           int
	Parameters           int
}

// RunCostReport reproduces the training-cost and model-size discussion of
// §6 (Ridge trains in <1 s per chain; Env2Vec takes minutes and stores
// <10 MB).
func (l *Lab) RunCostReport() (*CostReport, error) {
	tr := l.Pooled() // ensures timing is recorded
	// Ensure at least a few chains have been fitted for the ridge timing.
	for _, id := range l.Corpus.ChainOrder[:min(8, len(l.Corpus.ChainOrder))] {
		l.Chain(id)
	}
	size, err := tr.Model.SizeBytes()
	if err != nil {
		return nil, err
	}
	fitted := float64(len(l.chains))
	if fitted == 0 {
		fitted = 1
	}
	return &CostReport{
		RidgeSecondsPerChain: l.trainSecsRidge / fitted,
		PooledTrainSeconds:   l.trainSecsPooled,
		ModelBytes:           size,
		Parameters:           tr.Model.NumParameters(),
	}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CorpusConfig re-exports the lab's corpus sizing (useful to callers that
// only hold a Lab).
func (l *Lab) CorpusConfig() telecom.Config { return l.Opts.Corpus }
