package experiments

import (
	"strings"
	"testing"
)

func TestRunHeadAblationQuick(t *testing.T) {
	res, err := RunHeadAblation(QuickTable4Options())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 4 {
		t.Fatalf("expected 4 variants, got %d", len(res.Variants))
	}
	names := []string{"hadamard", "bilinear", "mlp-head", "attention"}
	for i, v := range res.Variants {
		if !strings.HasPrefix(v.Method, names[i]) {
			t.Fatalf("variant %d = %q, want prefix %q", i, v.Method, names[i])
		}
		if v.MAE <= 0 || v.MSE <= 0 {
			t.Fatalf("variant %s bad scores: %+v", v.Method, v)
		}
	}
}

func TestRunEMHoldout(t *testing.T) {
	rows := quickLab().RunEMHoldout()
	if len(rows) != 4 {
		t.Fatalf("expected one row per EM feature, got %d", len(rows))
	}
	for _, r := range rows {
		if r.BaseMAE <= 0 || r.BlindMAE <= 0 {
			t.Fatalf("bad MAE in %+v", r)
		}
		if r.Feature == "" {
			t.Fatalf("missing feature name")
		}
	}
	// At least one EM feature should matter (blinding hurts).
	anyHurt := false
	for _, r := range rows {
		if r.DeltaPct > 0 {
			anyHurt = true
		}
	}
	if !anyHurt {
		t.Fatalf("blinding every EM feature is free — embeddings unused? %+v", rows)
	}
}
