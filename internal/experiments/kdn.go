package experiments

import (
	"fmt"
	"math/rand"

	"env2vec/internal/baselines"
	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/kdn"
	"env2vec/internal/nn"
	"env2vec/internal/stats"
)

// Table4Options scales the §4.1 benchmark study. The defaults trade the
// paper's exhaustive hyper-parameter grids (1024-unit FNNs, 1000-tree
// forests, 10 seeds) for laptop-friendly settings that preserve the model
// families and the comparison protocol; crank them up to match the paper
// exactly.
type Table4Options struct {
	Seed     int64
	Seeds    int     // repetitions for the stochastic (neural) methods
	Window   int     // RU-history length for the _ts methods
	Hidden   int     // FNN / RFNN / Env2Vec hidden width (paper: 1024 for FNN)
	GRU      int     // GRU state width
	Dense    int     // combined dense width (v_d for RFNN)
	Epochs   int     // max training epochs (early stopping still applies)
	Batch    int     // mini-batch size
	Patience int     // early-stopping patience
	LR       float64 // Adam learning rate for the neural methods
	Forest   int     // max n_estimators explored (paper: up to 1000)
	SkipSVR  bool
}

// DefaultTable4Options returns the evaluation-scale settings. The neural
// regime (256 hidden units, lr 1e-3, long patience) is what the convergence
// probes showed is needed for the NNs to reach their attainable optimum on
// these datasets — the paper reached the same place with 1024-unit FNNs.
func DefaultTable4Options() Table4Options {
	return Table4Options{
		Seed: 1, Seeds: 3, Window: 2,
		Hidden: 256, GRU: 24, Dense: 64,
		Epochs: 600, Batch: 16, Patience: 80, LR: 0.001,
		Forest: 100,
	}
}

// QuickTable4Options returns unit-test-scale settings.
func QuickTable4Options() Table4Options {
	return Table4Options{
		Seed: 1, Seeds: 1, Window: 2,
		Hidden: 12, GRU: 6, Dense: 8,
		Epochs: 4, Batch: 32, Patience: 4, LR: 0.01,
		Forest: 10, SkipSVR: true,
	}
}

// Table3 reproduces Table 3: the dataset split sizes.
func Table3() string {
	header := []string{"# of examples", "Snort", "Switch", "Firewall"}
	row := func(name string, f func(kdn.SplitSpec) int) []string {
		return []string{name,
			fmt.Sprint(f(kdn.Splits(kdn.Snort))),
			fmt.Sprint(f(kdn.Splits(kdn.Switch))),
			fmt.Sprint(f(kdn.Splits(kdn.Firewall)))}
	}
	rows := [][]string{
		row("Total", func(s kdn.SplitSpec) int { return s.Total }),
		row("Training", func(s kdn.SplitSpec) int { return s.Train }),
		row("Validation", func(s kdn.SplitSpec) int { return s.Val }),
		row("Test", func(s kdn.SplitSpec) int { return s.Test }),
	}
	return RenderTable(header, rows)
}

// Table4Result holds the per-VNF method scores plus the paired t-test
// p-value of Env2Vec vs RFNN (the strongest per-environment baseline).
type Table4Result struct {
	Scores map[string][]MethodScore // key: VNF name
	// PairedP maps VNF name → p-value comparing Env2Vec and RFNN absolute
	// test errors (significance 0.05, §4.1.2).
	PairedP map[string]float64
}

// kdnData is the preprocessed benchmark: per-VNF standardized splits plus
// the pooled batches for the single-model methods. Pooled batches carry
// PER-VNF standardized targets: with one global scale, Snort (σ=23) would
// contribute only (23/110)² ≈ 4%% of the pooled MSE next to the Switch
// (σ=46 around a different mean), and the single model would quietly
// underfit it. Per-environment target normalization weights every
// environment equally — the embeddings tell the model which scale it is
// predicting in.
type kdnData struct {
	schema                 *envmeta.Schema
	splits                 map[kdn.VNF]*dataset.Split
	pooledTrain, pooledVal *nn.Batch // targets pre-scaled per VNF
	perY                   map[kdn.VNF]YScaler
}

func prepareKDN(opts Table4Options) (*kdnData, error) {
	ds := kdn.GenerateAll(opts.Seed)
	schema := envmeta.NewSchema()
	for _, s := range ds.Series {
		schema.Observe(s.Env)
	}
	schema.Freeze()
	d := &kdnData{
		schema: schema,
		splits: make(map[kdn.VNF]*dataset.Split),
		perY:   make(map[kdn.VNF]YScaler),
	}
	vnfs := []kdn.VNF{kdn.Snort, kdn.Firewall, kdn.Switch}
	var trains, vals []*nn.Batch
	for i, v := range vnfs {
		split, err := kdn.SplitSeries(ds.Series[i], v, opts.Window, schema)
		if err != nil {
			return nil, err
		}
		dataset.StandardizeSplit(split)
		d.splits[v] = split
		d.perY[v] = FitYScaler(split.Train)
		trains = append(trains, d.perY[v].Scale(split.Train))
		vals = append(vals, d.perY[v].Scale(split.Val))
	}
	d.pooledTrain = concatBatches(trains...)
	d.pooledVal = concatBatches(vals...)
	return d, nil
}

// evalPooled computes raw-unit errors for a pooled model on one VNF's test
// batch, using that VNF's target scale.
func (d *kdnData) evalPooled(m nn.Model, v kdn.VNF) (mae, mse float64) {
	return evalScaled(m, d.perY[v], d.splits[v].Test)
}

// RunTable4 reproduces Table 4: MAE and MSE of all eight methods on the
// three VNF datasets.
func RunTable4(opts Table4Options) (*Table4Result, error) {
	d, err := prepareKDN(opts)
	if err != nil {
		return nil, err
	}
	res := &Table4Result{Scores: make(map[string][]MethodScore), PairedP: make(map[string]float64)}
	vnfs := []kdn.VNF{kdn.Snort, kdn.Firewall, kdn.Switch}

	// Per-seed test errors for the paired t-test.
	rfnnAbsErr := make(map[kdn.VNF][]float64)
	env2vecAbsErr := make(map[kdn.VNF][]float64)

	// Deterministic per-dataset methods.
	for _, v := range vnfs {
		split := d.splits[v]
		var scores []MethodScore

		ridge, err := baselines.FitRidgeCV(split.Train, split.Val, false)
		if err != nil {
			return nil, err
		}
		scores = append(scores, predScore("Ridge", ridge, split.Test))

		ridgeTS, err := baselines.FitRidgeCV(split.Train, split.Val, true)
		if err != nil {
			return nil, err
		}
		scores = append(scores, predScore("Ridge_ts", ridgeTS, split.Test))

		forest, err := baselines.FitForestCV(split.Train, split.Val, opts.Forest, opts.Seed)
		if err != nil {
			return nil, err
		}
		scores = append(scores, predScore("RFReg", forest, split.Test))

		if !opts.SkipSVR {
			svr, err := baselines.FitSVRCV(scaleForSVR(split.Train, d.perY[v]), scaleForSVR(split.Val, d.perY[v]))
			if err != nil {
				return nil, err
			}
			scores = append(scores, svrScore("SVR", svr, split.Test, d.perY[v]))
		}
		res.Scores[v.String()] = scores
	}

	// Stochastic methods, averaged over seeds.
	type accum struct{ maes, mses []float64 }
	acc := make(map[string]map[kdn.VNF]*accum) // method → vnf → errors
	for _, m := range []string{"FNN", "RFNN", "RFNN_all", "Env2Vec"} {
		acc[m] = make(map[kdn.VNF]*accum)
		for _, v := range vnfs {
			acc[m][v] = &accum{}
		}
	}
	record := func(method string, v kdn.VNF, mae, mse float64) {
		a := acc[method][v]
		a.maes = append(a.maes, mae)
		a.mses = append(a.mses, mse)
	}

	for seed := 0; seed < opts.Seeds; seed++ {
		runSeed := opts.Seed + int64(seed)*101
		tc := nn.TrainConfig{Epochs: opts.Epochs, BatchSize: opts.Batch, Patience: opts.Patience, MinDelta: 1e-5, Seed: runSeed}

		// FNN and RFNN: one model per dataset.
		for _, v := range vnfs {
			split := d.splits[v]
			ys := d.perY[v]
			fnn := nn.NewMLP(fmt.Sprintf("fnn.%d", seed), kdn.NumFeatures, opts.Hidden, nn.Sigmoid, 0, rand.New(rand.NewSource(runSeed)))
			nn.Train(fnn, nn.NewAdam(opts.LR), ys.Scale(split.Train), ys.Scale(split.Val), tc)
			mae, mse := evalScaled(fnn, ys, split.Test)
			record("FNN", v, mae, mse)

			rfnn := baselines.NewRFNN(baselines.RFNNConfig{
				In: kdn.NumFeatures, Hidden: opts.Hidden, GRUHidden: opts.GRU,
				DenseDim: opts.Dense, Dropout: 0, Seed: runSeed,
			})
			nn.Train(rfnn, nn.NewAdam(opts.LR), ys.Scale(split.Train), ys.Scale(split.Val), tc)
			mae, mse = evalScaled(rfnn, ys, split.Test)
			record("RFNN", v, mae, mse)
			if seed < opts.Seeds {
				rfnnAbsErr[v] = append(rfnnAbsErr[v], absErrors(rfnn, ys, split.Test)...)
			}
		}

		// RFNN_all: single model over pooled data, no embeddings.
		rfnnAll := baselines.NewRFNN(baselines.RFNNConfig{
			In: kdn.NumFeatures, Hidden: opts.Hidden, GRUHidden: opts.GRU,
			DenseDim: opts.Dense, Dropout: 0.1, Seed: runSeed,
		})
		nn.Train(rfnnAll, nn.NewAdam(opts.LR), d.pooledTrain, d.pooledVal, tc)
		for _, v := range vnfs {
			mae, mse := d.evalPooled(rfnnAll, v)
			record("RFNN_all", v, mae, mse)
		}

		// Env2Vec: single model with environment embeddings. It gets a
		// slightly higher learning rate: the pooled objective (three
		// response surfaces modulated by embeddings) takes longer to
		// traverse than a single-dataset fit at the same budget.
		e2v := core.New(core.Config{
			In: kdn.NumFeatures, Hidden: opts.Hidden, GRUHidden: opts.GRU,
			EmbedDim: 10, Window: opts.Window, Dropout: 0.1, UnkProb: 0.02, Seed: runSeed,
		}, d.schema)
		nn.Train(e2v, nn.NewAdam(opts.LR), d.pooledTrain, d.pooledVal, tc)
		for _, v := range vnfs {
			mae, mse := d.evalPooled(e2v, v)
			record("Env2Vec", v, mae, mse)
			env2vecAbsErr[v] = append(env2vecAbsErr[v], absErrors(e2v, d.perY[v], d.splits[v].Test)...)
		}
	}

	for _, m := range []string{"FNN", "RFNN", "RFNN_all", "Env2Vec"} {
		for _, v := range vnfs {
			a := acc[m][v]
			res.Scores[v.String()] = append(res.Scores[v.String()], aggregateScores(m, a.maes, a.mses))
		}
	}
	for _, v := range vnfs {
		if _, p, err := stats.PairedTTest(env2vecAbsErr[v], rfnnAbsErr[v]); err == nil {
			res.PairedP[v.String()] = p
		}
	}
	return res, nil
}

func predScore(name string, p baselines.Predictor, test *nn.Batch) MethodScore {
	pred := p.Predict(test)
	var sa, sq float64
	for i, v := range pred {
		d := v - test.Y.Data[i]
		if d < 0 {
			d = -d
		}
		sa += d
		sq += d * d
	}
	n := float64(len(pred))
	return MethodScore{Method: name, MAE: sa / n, MSE: sq / n, Runs: 1}
}

// scaleForSVR standardizes targets for the SVR solver (its ε grid assumes
// O(1) targets, as scikit-learn's does after scaling).
func scaleForSVR(b *nn.Batch, ys YScaler) *nn.Batch {
	return ys.Scale(b)
}

func svrScore(name string, s *baselines.SVR, test *nn.Batch, ys YScaler) MethodScore {
	pred := ys.Unscale(s.Predict(ys.Scale(test)))
	var sa, sq float64
	for i, v := range pred {
		d := v - test.Y.Data[i]
		if d < 0 {
			d = -d
		}
		sa += d
		sq += d * d
	}
	n := float64(len(pred))
	return MethodScore{Method: name, MAE: sa / n, MSE: sq / n, Runs: 1}
}

func absErrors(m nn.Model, ys YScaler, raw *nn.Batch) []float64 {
	pred := ys.Unscale(m.Predict(ys.Scale(raw)))
	out := make([]float64, len(pred))
	for i, p := range pred {
		d := p - raw.Y.Data[i]
		if d < 0 {
			d = -d
		}
		out[i] = d
	}
	return out
}

// RenderTable4 renders the result like the paper's Table 4.
func RenderTable4(res *Table4Result) string {
	header := []string{"Method", "Snort MAE", "Snort MSE", "Firewall MAE", "Firewall MSE", "Switch MAE", "Switch MSE"}
	methodOrder := []string{"Ridge", "Ridge_ts", "RFReg", "SVR", "FNN", "RFNN", "RFNN_all", "Env2Vec"}
	cell := func(v, std float64, runs int) string {
		if runs > 1 {
			return fmt.Sprintf("%.2f±%.2f", v, std)
		}
		return fmt.Sprintf("%.2f", v)
	}
	find := func(vnf, method string) *MethodScore {
		for i := range res.Scores[vnf] {
			if res.Scores[vnf][i].Method == method {
				return &res.Scores[vnf][i]
			}
		}
		return nil
	}
	var rows [][]string
	for _, m := range methodOrder {
		row := []string{m}
		missing := true
		for _, vnf := range []string{"snort", "firewall", "switch"} {
			if s := find(vnf, m); s != nil {
				row = append(row, cell(s.MAE, s.MAEStd, s.Runs), cell(s.MSE, s.MSEStd, s.Runs))
				missing = false
			} else {
				row = append(row, "-", "-")
			}
		}
		if !missing {
			rows = append(rows, row)
		}
	}
	return RenderTable(header, rows)
}
