// Package experiments reproduces every table and figure of the paper's
// evaluation (§4): the KDN model-accuracy comparison (Tables 3–4), the
// telecom build-chain characterization study (Figures 1, 3, 4), alarm
// quality (Table 5), embedding analysis (Figure 6), unseen environments
// (Table 6), coverage analysis (Table 7), and the training-cost discussion
// of §6. The cmd/kdnbench and cmd/telecombench binaries and the root bench
// suite are thin wrappers over this package.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"env2vec/internal/dataset"
	"env2vec/internal/nn"
	"env2vec/internal/stats"
	"env2vec/internal/tensor"
)

// MethodScore is one cell group of Table 4 / Figure 3: a method's errors on
// one dataset, averaged over seeds for the stochastic (neural) methods.
type MethodScore struct {
	Method string
	MAE    float64
	MAEStd float64 // 0 for deterministic methods
	MSE    float64
	MSEStd float64
	Runs   int
}

// String renders the score like the paper's table cells.
func (m MethodScore) String() string {
	if m.Runs > 1 {
		return fmt.Sprintf("%-9s MAE %6.2f ± %.2f   MSE %8.2f ± %.2f", m.Method, m.MAE, m.MAEStd, m.MSE, m.MSEStd)
	}
	return fmt.Sprintf("%-9s MAE %6.2f          MSE %8.2f", m.Method, m.MAE, m.MSE)
}

// aggregateScores averages per-seed (MAE, MSE) pairs into a MethodScore.
func aggregateScores(method string, maes, mses []float64) MethodScore {
	return MethodScore{
		Method: method,
		MAE:    stats.Mean(maes), MAEStd: stats.StdDev(maes),
		MSE: stats.Mean(mses), MSEStd: stats.StdDev(mses),
		Runs: len(maes),
	}
}

// YScaler aliases the dataset target scaler; see internal/dataset.
type YScaler = dataset.YScaler

// FitYScaler aliases dataset.FitYScaler.
var FitYScaler = dataset.FitYScaler

// evalScaled computes raw-unit MAE/MSE for a model trained on scaled
// targets.
func evalScaled(m nn.Model, ys YScaler, raw *nn.Batch) (mae, mse float64) {
	scaled := ys.Scale(raw)
	pred := ys.Unscale(m.Predict(scaled))
	var sa, sq float64
	for i, p := range pred {
		d := p - raw.Y.Data[i]
		sa += math.Abs(d)
		sq += d * d
	}
	n := float64(len(pred))
	return sa / n, sq / n
}

// concatBatches appends the examples of several batches (all must share the
// same feature/window/env shape).
func concatBatches(batches ...*nn.Batch) *nn.Batch {
	total := 0
	for _, b := range batches {
		total += b.Len()
	}
	if total == 0 {
		return &nn.Batch{X: tensor.New(0, 0), Y: tensor.New(0, 1)}
	}
	first := batches[0]
	out := &nn.Batch{X: tensor.New(total, first.X.Cols), Y: tensor.New(total, 1)}
	if first.Window != nil {
		out.Window = tensor.New(total, first.Window.Cols)
	}
	if first.EnvIDs != nil {
		out.EnvIDs = make([][]int, len(first.EnvIDs))
		for k := range out.EnvIDs {
			out.EnvIDs[k] = make([]int, 0, total)
		}
	}
	row := 0
	for _, b := range batches {
		for i := 0; i < b.Len(); i++ {
			copy(out.X.Row(row), b.X.Row(i))
			out.Y.Data[row] = b.Y.Data[i]
			if out.Window != nil {
				copy(out.Window.Row(row), b.Window.Row(i))
			}
			row++
		}
		if out.EnvIDs != nil {
			for k := range out.EnvIDs {
				out.EnvIDs[k] = append(out.EnvIDs[k], b.EnvIDs[k]...)
			}
		}
	}
	return out
}

// RenderTable renders rows of cells as an aligned ASCII table with a header.
func RenderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// fmtF renders a float with 3 decimals, or "N/A" for NaN.
func fmtF(v float64) string {
	if math.IsNaN(v) {
		return "N/A"
	}
	return fmt.Sprintf("%.3f", v)
}

// sortedKeys returns map keys in sorted order (generic over string keys).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
