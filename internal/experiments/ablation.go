package experiments

import (
	"fmt"

	"env2vec/internal/core"
	"env2vec/internal/dataset"
	"env2vec/internal/envmeta"
	"env2vec/internal/kdn"
	"env2vec/internal/metrics"
	"env2vec/internal/nn"
)

// AblationResult compares Env2Vec design variants on the pooled KDN task:
// the three §3.2 prediction heads and the §6 attention extension.
type AblationResult struct {
	Variants []MethodScore // per variant, MAE/MSE averaged across the three test sets
}

// RunHeadAblation trains each architecture variant once on the pooled KDN
// data and reports test errors pooled over the three VNFs. The paper claims
// the alternative heads "yield similar results" at a higher parameter cost;
// this is the experiment that checks it.
func RunHeadAblation(opts Table4Options) (*AblationResult, error) {
	d, err := prepareKDN(opts)
	if err != nil {
		return nil, err
	}
	vnfs := []kdn.VNF{kdn.Snort, kdn.Firewall, kdn.Switch}

	type variant struct {
		name string
		cfg  core.Config
	}
	base := core.Config{
		In: d.pooledTrain.X.Cols, Hidden: opts.Hidden, GRUHidden: opts.GRU,
		EmbedDim: 10, Window: opts.Window, Dropout: 0.1, UnkProb: 0.02, Seed: opts.Seed,
	}
	variants := []variant{
		{"hadamard", base},
		{"bilinear", withHead(base, core.HeadBilinear)},
		{"mlp-head", withHead(base, core.HeadMLP)},
		{"attention", withAttention(base)},
	}
	res := &AblationResult{}
	tc := nn.TrainConfig{Epochs: opts.Epochs, BatchSize: opts.Batch, Patience: opts.Patience, MinDelta: 1e-5, Seed: opts.Seed}
	for _, v := range variants {
		m := core.New(v.cfg, d.schema)
		nn.Train(m, nn.NewAdam(opts.LR), d.pooledTrain, d.pooledVal, tc)
		var mae, mse float64
		for _, vnf := range vnfs {
			a, q := d.evalPooled(m, vnf)
			mae += a / float64(len(vnfs))
			mse += q / float64(len(vnfs))
		}
		res.Variants = append(res.Variants, MethodScore{
			Method: fmt.Sprintf("%s(%dp)", v.name, m.NumParameters()),
			MAE:    mae, MSE: mse, Runs: 1,
		})
	}
	return res, nil
}

func withHead(cfg core.Config, h core.Head) core.Config {
	cfg.Head = h
	return cfg
}

func withAttention(cfg core.Config) core.Config {
	cfg.Attention = true
	return cfg
}

// EMHoldoutRow reports the MAE impact of blinding one environment-metadata
// feature at inference time (its ids forced to <unk>).
type EMHoldoutRow struct {
	Feature  string
	BaseMAE  float64
	BlindMAE float64
	DeltaPct float64 // (blind−base)/base × 100
}

// RunEMHoldout implements the §6 "hold out" analysis on the telecom lab:
// with the pooled model fixed, each EM feature is removed in turn (mapped
// to <unk>) and the per-chain test MAE recomputed; the increase measures
// how much the model leans on that feature's embedding.
func (l *Lab) RunEMHoldout() []EMHoldoutRow {
	tr := l.Pooled()
	window := tr.Model.Config().Window

	evalWithBlind := func(blind int) float64 {
		var total, n float64
		for _, chainID := range l.Corpus.ChainOrder {
			s := l.current(chainID)
			exs := dataset.WindowExamples(s, window)
			b := dataset.ToBatch(exs, tr.Schema)
			tr.Standardizer.Apply(b.X)
			if blind >= 0 {
				zero := make([]int, len(b.EnvIDs[blind]))
				b.EnvIDs[blind] = zero
			}
			pred := tr.YScale.Unscale(tr.Model.Predict(tr.YScale.Scale(b)))
			total += metrics.MAE(pred, b.Y.Data) * float64(len(pred))
			n += float64(len(pred))
		}
		return total / n
	}

	base := evalWithBlind(-1)
	rows := make([]EMHoldoutRow, 0, envmeta.NumFeatures)
	for k, name := range envmeta.FeatureNames() {
		blind := evalWithBlind(k)
		rows = append(rows, EMHoldoutRow{
			Feature: name, BaseMAE: base, BlindMAE: blind,
			DeltaPct: 100 * (blind - base) / base,
		})
	}
	return rows
}
