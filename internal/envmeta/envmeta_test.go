package envmeta

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLayerString(t *testing.T) {
	want := map[Layer]string{
		Hardware: "hardware", Virtualization: "virtualization",
		OperatingSystem: "os", Application: "application", TestCase: "testcase",
	}
	for l, s := range want {
		if l.String() != s {
			t.Fatalf("Layer(%d).String() = %q", int(l), l.String())
		}
	}
	if !strings.Contains(Layer(99).String(), "99") {
		t.Fatalf("unknown layer should include number")
	}
}

func TestRecordCloneAndString(t *testing.T) {
	r := Record{"kernel": "5.3.7", "cpu_cores": "16"}
	c := r.Clone()
	c["kernel"] = "6.0"
	if r["kernel"] != "5.3.7" {
		t.Fatalf("Clone must be deep")
	}
	s := r.String()
	if s != "{cpu_cores=16,kernel=5.3.7}" {
		t.Fatalf("String not deterministic/sorted: %q", s)
	}
}

func TestEnvironmentString(t *testing.T) {
	e := Environment{Testbed: "Testbed13", SUT: "SUT_F", Testcase: "Endurance", Build: "S01"}
	if e.String() != "<Testbed13,SUT_F,Endurance,S01>" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestBuildType(t *testing.T) {
	cases := map[string]string{"S01": "S", "D12": "D", "Debug3": "Debug", "": "", "1.0.1": ""}
	for build, want := range cases {
		e := Environment{Build: build}
		if got := e.BuildType(); got != want {
			t.Fatalf("BuildType(%q) = %q, want %q", build, got, want)
		}
	}
}

func TestVocabularyAddLookup(t *testing.T) {
	v := NewVocabulary()
	a := v.Add("alpha")
	b := v.Add("beta")
	if a != 1 || b != 2 {
		t.Fatalf("ids should start at 1: %d %d", a, b)
	}
	if v.Add("alpha") != a {
		t.Fatalf("re-add should return same id")
	}
	if v.Lookup("beta") != b || v.Lookup("gamma") != UnknownID {
		t.Fatalf("Lookup wrong")
	}
	if v.Value(a) != "alpha" || v.Value(UnknownID) != "<unk>" || v.Value(99) != "<unk>" {
		t.Fatalf("Value wrong")
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d", v.Size())
	}
}

func TestVocabularyFreeze(t *testing.T) {
	v := NewVocabulary()
	v.Add("known")
	v.Freeze()
	if v.Add("new") != UnknownID {
		t.Fatalf("frozen vocab must return UnknownID for new values")
	}
	if v.Add("known") != 1 {
		t.Fatalf("frozen vocab must still return existing ids")
	}
	if v.Size() != 1 {
		t.Fatalf("freeze must prevent growth")
	}
}

func TestVocabularyValuesOrder(t *testing.T) {
	v := NewVocabulary()
	v.Add("x")
	v.Add("y")
	vals := v.Values()
	if len(vals) != 2 || vals[0] != "x" || vals[1] != "y" {
		t.Fatalf("Values order wrong: %v", vals)
	}
	vals[0] = "mutated"
	if v.Value(1) != "x" {
		t.Fatalf("Values must return a copy")
	}
}

func TestSchemaObserveEncodeFreeze(t *testing.T) {
	s := NewSchema()
	e1 := Environment{"tb1", "db", "regression", "S10"}
	e2 := Environment{"tb2", "db", "endurance", "S11"}
	ids1 := s.Observe(e1)
	ids2 := s.Observe(e2)
	if ids1[1] != ids2[1] {
		t.Fatalf("shared SUT should share id")
	}
	if ids1[0] == ids2[0] {
		t.Fatalf("different testbeds should differ")
	}
	s.Freeze()
	unseen := Environment{"tb3", "db", "regression", "B01"}
	enc := s.Encode(unseen)
	if enc[0] != UnknownID || enc[3] != UnknownID {
		t.Fatalf("unseen values must encode to UnknownID: %v", enc)
	}
	if enc[1] != ids1[1] {
		t.Fatalf("seen SUT must keep its id")
	}
	sizes := s.Sizes()
	if sizes[0] != 2 || sizes[1] != 1 || sizes[2] != 2 || sizes[3] != 2 {
		t.Fatalf("sizes wrong: %v", sizes)
	}
}

func TestCoverage(t *testing.T) {
	target := Environment{"tb1", "db", "load", "S01"}
	training := []Environment{
		{"tb1", "db", "endurance", "S02"},
		{"tb2", "db", "load", "S01"},
		{"tb1", "fw", "load", "B01"},
		{"tb3", "db", "volume", "S01"},
	}
	counts, fracs := Coverage(target, training)
	if counts[0] != 2 || counts[1] != 3 || counts[2] != 2 || counts[3] != 2 {
		t.Fatalf("counts wrong: %v", counts)
	}
	if fracs[0] != 0.5 || fracs[1] != 0.75 {
		t.Fatalf("fracs wrong: %v", fracs)
	}
	c0, f0 := Coverage(target, nil)
	if c0[0] != 0 || f0[0] != 0 {
		t.Fatalf("empty training should be all zero")
	}
}

// Property: Observe then Encode round-trips all feature ids.
func TestSchemaRoundTripProperty(t *testing.T) {
	f := func(tb, sut, tc, build string) bool {
		s := NewSchema()
		e := Environment{tb, sut, tc, build}
		obs := s.Observe(e)
		enc := s.Encode(e)
		return obs == enc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFeatureNames(t *testing.T) {
	names := FeatureNames()
	if len(names) != NumFeatures {
		t.Fatalf("FeatureNames length %d != NumFeatures %d", len(names), NumFeatures)
	}
	e := Environment{"a", "b", "c", "d"}
	if len(e.Features()) != NumFeatures {
		t.Fatalf("Features length mismatch")
	}
}
