// Package envmeta models the environment metadata (EM) from Table 1 of the
// paper: the stack-position taxonomy (hardware → virtualization → OS →
// application → test case), the representative four-feature environment
// tuple <Testbed, SUT, Testcase, Build> used by the model, and the
// vocabularies that map metadata values to embedding-table ids (with id 0
// reserved for <unk>, mirroring NLP-style unknown handling).
package envmeta

import (
	"fmt"
	"sort"
	"strings"
)

// Layer identifies the position of a metadata field in the stack (Table 1
// columns).
type Layer int

// Stack layers in Table 1 order.
const (
	Hardware Layer = iota
	Virtualization
	OperatingSystem
	Application
	TestCase
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case Hardware:
		return "hardware"
	case Virtualization:
		return "virtualization"
	case OperatingSystem:
		return "os"
	case Application:
		return "application"
	case TestCase:
		return "testcase"
	}
	return fmt.Sprintf("Layer(%d)", int(l))
}

// Field is one metadata label, e.g. "cpu_clock_ghz" in the hardware layer.
type Field struct {
	Name  string
	Layer Layer
}

// Record is a full environment-metadata record: field name → value string.
// Values may be numeric ("2.6") or textual ("ESXi 6.5"); the record is what
// gets attached to the Prometheus service-discovery entry in workflow
// step (1).
type Record map[string]string

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	c := make(Record, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

// String renders the record deterministically (sorted by field).
func (r Record) String() string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + r[k]
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Environment is the representative tuple <Testbed_ID, SUT_Mod,
// Testcase_ID, Build_vers> the paper uses to abstract an environment (§3.1).
type Environment struct {
	Testbed  string
	SUT      string
	Testcase string
	Build    string
}

// String implements fmt.Stringer in the paper's notation.
func (e Environment) String() string {
	return fmt.Sprintf("<%s,%s,%s,%s>", e.Testbed, e.SUT, e.Testcase, e.Build)
}

// Features returns the tuple as an ordered value slice matching
// FeatureNames.
func (e Environment) Features() []string {
	return []string{e.Testbed, e.SUT, e.Testcase, e.Build}
}

// FeatureNames are the canonical per-feature embedding-table names, in the
// order used throughout the system.
func FeatureNames() []string { return []string{"testbed", "sut", "testcase", "build"} }

// NumFeatures is the arity of the environment tuple.
const NumFeatures = 4

// BuildType extracts the build family (leading alphabetic prefix) from a
// build version like "S10" or "D02"; Figure 6 clusters environments by this
// value. An empty or non-alphabetic-prefixed build yields "".
func (e Environment) BuildType() string {
	i := 0
	for i < len(e.Build) && isAlpha(e.Build[i]) {
		i++
	}
	return e.Build[:i]
}

func isAlpha(b byte) bool { return (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') }

// Vocabulary maps metadata value strings to dense integer ids. Id 0 is
// reserved for unknown values; known values start at 1.
type Vocabulary struct {
	ids    map[string]int
	values []string // values[i] is the string for id i+1
	frozen bool
}

// NewVocabulary returns an empty, growable vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]int)}
}

// UnknownID is the id of the reserved <unk> entry.
const UnknownID = 0

// Add inserts v (if absent) and returns its id. Adding to a frozen
// vocabulary returns the existing id or UnknownID.
func (v *Vocabulary) Add(val string) int {
	if id, ok := v.ids[val]; ok {
		return id
	}
	if v.frozen {
		return UnknownID
	}
	id := len(v.values) + 1
	v.ids[val] = id
	v.values = append(v.values, val)
	return id
}

// Lookup returns the id for val, or UnknownID when absent.
func (v *Vocabulary) Lookup(val string) int {
	if id, ok := v.ids[val]; ok {
		return id
	}
	return UnknownID
}

// Value returns the string for a known id, or "<unk>" for UnknownID and
// out-of-range ids.
func (v *Vocabulary) Value(id int) string {
	if id <= 0 || id > len(v.values) {
		return "<unk>"
	}
	return v.values[id-1]
}

// Size returns the number of known values (excluding <unk>).
func (v *Vocabulary) Size() int { return len(v.values) }

// Freeze stops the vocabulary from growing; lookups of new values return
// UnknownID afterwards. This is applied after training-set construction so
// the test set exercises the <unk> path exactly as at inference time.
func (v *Vocabulary) Freeze() { v.frozen = true }

// Values returns the known values in id order.
func (v *Vocabulary) Values() []string { return append([]string(nil), v.values...) }

// Schema owns one vocabulary per environment feature and encodes
// Environment tuples into the id slices consumed by embedding lookups.
type Schema struct {
	Vocabs [NumFeatures]*Vocabulary
}

// NewSchema returns a schema with empty vocabularies.
func NewSchema() *Schema {
	s := &Schema{}
	for i := range s.Vocabs {
		s.Vocabs[i] = NewVocabulary()
	}
	return s
}

// Observe adds all of the environment's feature values to the vocabularies
// and returns their ids.
func (s *Schema) Observe(e Environment) [NumFeatures]int {
	var ids [NumFeatures]int
	for i, val := range e.Features() {
		ids[i] = s.Vocabs[i].Add(val)
	}
	return ids
}

// Encode maps the environment to ids without growing vocabularies; unseen
// values map to UnknownID.
func (s *Schema) Encode(e Environment) [NumFeatures]int {
	var ids [NumFeatures]int
	for i, val := range e.Features() {
		ids[i] = s.Vocabs[i].Lookup(val)
	}
	return ids
}

// Freeze freezes all vocabularies.
func (s *Schema) Freeze() {
	for _, v := range s.Vocabs {
		v.Freeze()
	}
}

// Sizes returns the per-feature vocabulary sizes.
func (s *Schema) Sizes() [NumFeatures]int {
	var out [NumFeatures]int
	for i, v := range s.Vocabs {
		out[i] = v.Size()
	}
	return out
}

// Coverage reports how often each feature value of e appears among the
// supplied training environments, as (count, fraction). It backs the
// Table 7 coverage analysis, where a testbed covered by only a handful of
// training examples under-performs.
func Coverage(e Environment, training []Environment) (counts [NumFeatures]int, fracs [NumFeatures]float64) {
	if len(training) == 0 {
		return counts, fracs
	}
	feats := e.Features()
	for _, te := range training {
		tf := te.Features()
		for i := range feats {
			if tf[i] == feats[i] {
				counts[i]++
			}
		}
	}
	for i := range counts {
		fracs[i] = float64(counts[i]) / float64(len(training))
	}
	return counts, fracs
}
