package envmeta_test

import (
	"fmt"

	"env2vec/internal/envmeta"
)

func ExampleSchema() {
	schema := envmeta.NewSchema()
	seen := envmeta.Environment{Testbed: "Testbed15", SUT: "SUT_DB", Testcase: "Regression", Build: "S10"}
	schema.Observe(seen)
	schema.Freeze()

	// A new build on the same testbed keeps every other component id and
	// falls back to <unk> only for the unseen value.
	next := envmeta.Environment{Testbed: "Testbed15", SUT: "SUT_DB", Testcase: "Regression", Build: "S11"}
	ids := schema.Encode(next)
	fmt.Printf("testbed=%d sut=%d testcase=%d build=%d\n", ids[0], ids[1], ids[2], ids[3])
	// Output: testbed=1 sut=1 testcase=1 build=0
}

func ExampleEnvironment_BuildType() {
	e := envmeta.Environment{Build: "D02"}
	fmt.Println(e.BuildType())
	// Output: D
}

func ExampleCoverage() {
	target := envmeta.Environment{Testbed: "tb1", SUT: "db", Testcase: "load", Build: "S01"}
	training := []envmeta.Environment{
		{Testbed: "tb1", SUT: "db", Testcase: "soak", Build: "S02"},
		{Testbed: "tb2", SUT: "db", Testcase: "load", Build: "S03"},
	}
	counts, fracs := envmeta.Coverage(target, training)
	fmt.Printf("testbed seen %d times (%.0f%%)\n", counts[0], 100*fracs[0])
	// Output: testbed seen 1 times (50%)
}
