package autodiff

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"env2vec/internal/tensor"
)

// numericalGrad computes the finite-difference gradient of loss() with
// respect to param, where loss rebuilds the whole graph from current
// parameter values.
func numericalGrad(param *tensor.Matrix, loss func() float64) *tensor.Matrix {
	const h = 1e-6
	g := tensor.New(param.Rows, param.Cols)
	for i := range param.Data {
		orig := param.Data[i]
		param.Data[i] = orig + h
		up := loss()
		param.Data[i] = orig - h
		down := loss()
		param.Data[i] = orig
		g.Data[i] = (up - down) / (2 * h)
	}
	return g
}

// checkGrad builds the graph via build (which must register params on the
// tape it is given and return the scalar loss node), and compares analytic
// gradients against finite differences for every parameter.
func checkGrad(t *testing.T, params []*tensor.Matrix, build func(tp *Tape) *Node) {
	t.Helper()
	tape := NewTape()
	loss := build(tape)
	tape.Backward(loss)
	analytic := make([]*tensor.Matrix, len(params))
	// Re-run to find each param node's grad: we require build to call
	// tape.Param on params in order, so capture via a fresh tape.
	tape2 := NewTape()
	var nodes []*Node
	orig := tape2.Param
	_ = orig
	// Instead of hooking, rebuild and track: build must use tp.Param for
	// each matrix in params, in order. We verify by matching pointers.
	loss2 := build(tape2)
	tape2.Backward(loss2)
	for _, n := range tape2.nodes {
		if n.back == nil && n.requiresGrad {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) != len(params) {
		t.Fatalf("expected %d params on tape, found %d", len(params), len(nodes))
	}
	for i, n := range nodes {
		if n.Value != params[i] {
			t.Fatalf("param %d not registered in order", i)
		}
		analytic[i] = n.Grad
	}
	for pi, p := range params {
		numeric := numericalGrad(p, func() float64 {
			tp := NewTape()
			return build(tp).Value.Data[0]
		})
		for i := range p.Data {
			a, n := analytic[pi].Data[i], numeric.Data[i]
			if math.Abs(a-n) > 1e-4*(1+math.Abs(n)) {
				t.Fatalf("param %d elem %d: analytic %g vs numeric %g", pi, i, a, n)
			}
		}
	}
}

func randMat(rng *rand.Rand, r, c int) *tensor.Matrix {
	m := tensor.New(r, c)
	m.RandNormal(rng, 0.7)
	return m
}

func TestGradMatMulChain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w1 := randMat(rng, 4, 5)
	w2 := randMat(rng, 5, 2)
	x := randMat(rng, 3, 4)
	y := randMat(rng, 3, 2)
	checkGrad(t, []*tensor.Matrix{w1, w2}, func(tp *Tape) *Node {
		h := tp.MatMul(tp.Constant(x), tp.Param(w1))
		out := tp.MatMul(h, tp.Param(w2))
		return tp.MSE(out, y)
	})
}

func TestGradSigmoidTanhReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := randMat(rng, 3, 3)
	x := randMat(rng, 2, 3)
	y := randMat(rng, 2, 3)
	checkGrad(t, []*tensor.Matrix{w}, func(tp *Tape) *Node {
		h := tp.MatMul(tp.Constant(x), tp.Param(w))
		out := tp.ReLU(tp.Tanh(tp.Sigmoid(h)))
		return tp.MSE(out, y)
	})
}

func TestGradBiasBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := randMat(rng, 4, 3)
	b := randMat(rng, 1, 3)
	x := randMat(rng, 5, 4)
	y := randMat(rng, 5, 3)
	checkGrad(t, []*tensor.Matrix{w, b}, func(tp *Tape) *Node {
		h := tp.AddRowBroadcast(tp.MatMul(tp.Constant(x), tp.Param(w)), tp.Param(b))
		return tp.MSE(tp.Sigmoid(h), y)
	})
}

func TestGradAddSubMulScale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMat(rng, 2, 3)
	b := randMat(rng, 2, 3)
	y := randMat(rng, 2, 3)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape) *Node {
		na, nb := tp.Param(a), tp.Param(b)
		expr := tp.Scale(tp.Mul(tp.Add(na, nb), tp.Sub(na, nb)), 0.5)
		return tp.MSE(expr, y)
	})
}

func TestGradConcatAndSumRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 3, 2)
	b := randMat(rng, 3, 4)
	y := randMat(rng, 3, 1)
	checkGrad(t, []*tensor.Matrix{a, b}, func(tp *Tape) *Node {
		cat := tp.ConcatCols(tp.Param(a), tp.Param(b))
		return tp.MSE(tp.SumRows(tp.Tanh(cat)), y)
	})
}

func TestGradGatherRows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	table := randMat(rng, 5, 3)
	y := randMat(rng, 4, 3)
	idx := []int{0, 2, 2, 4} // repeated index exercises gradient accumulation
	checkGrad(t, []*tensor.Matrix{table}, func(tp *Tape) *Node {
		emb := tp.GatherRows(tp.Param(table), idx)
		return tp.MSE(tp.Sigmoid(emb), y)
	})
}

func TestGradOneMinus(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 2, 2)
	y := randMat(rng, 2, 2)
	checkGrad(t, []*tensor.Matrix{a}, func(tp *Tape) *Node {
		return tp.MSE(tp.OneMinus(tp.Sigmoid(tp.Param(a))), y)
	})
}

// TestGradGRUStyleCell composes the exact ops used by the GRU layer (update
// gate, reset gate, candidate state, convex combination) and checks the full
// backward-through-time gradient for a two-step unroll.
func TestGradGRUStyleCell(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const hid = 3
	wz := randMat(rng, 1, hid)
	uz := randMat(rng, hid, hid)
	wr := randMat(rng, 1, hid)
	ur := randMat(rng, hid, hid)
	wh := randMat(rng, 1, hid)
	uh := randMat(rng, hid, hid)
	xs := []*tensor.Matrix{randMat(rng, 2, 1), randMat(rng, 2, 1)}
	y := randMat(rng, 2, hid)
	checkGrad(t, []*tensor.Matrix{wz, uz, wr, ur, wh, uh}, func(tp *Tape) *Node {
		nwz, nuz := tp.Param(wz), tp.Param(uz)
		nwr, nur := tp.Param(wr), tp.Param(ur)
		nwh, nuh := tp.Param(wh), tp.Param(uh)
		h := tp.Constant(tensor.New(2, hid))
		for _, x := range xs {
			nx := tp.Constant(x)
			z := tp.Sigmoid(tp.Add(tp.MatMul(nx, nwz), tp.MatMul(h, nuz)))
			r := tp.Sigmoid(tp.Add(tp.MatMul(nx, nwr), tp.MatMul(h, nur)))
			hc := tp.Tanh(tp.Add(tp.MatMul(nx, nwh), tp.MatMul(tp.Mul(r, h), nuh)))
			h = tp.Add(tp.Mul(tp.OneMinus(z), hc), tp.Mul(z, h))
		}
		return tp.MSE(h, y)
	})
}

func TestGradExpReciprocal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMat(rng, 2, 3)
	// Shift values away from zero so 1/x stays well-conditioned.
	for i := range a.Data {
		a.Data[i] = 1.5 + math.Abs(a.Data[i])
	}
	y := randMat(rng, 2, 3)
	checkGrad(t, []*tensor.Matrix{a}, func(tp *Tape) *Node {
		return tp.MSE(tp.Reciprocal(tp.Exp(tp.Param(a))), y)
	})
}

// TestGradSoftmaxComposition checks the exact softmax-over-steps shape the
// attention layer uses: α_t = exp(s_t) / Σ exp(s_k).
func TestGradSoftmaxComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := randMat(rng, 3, 1)
	xs := []*tensor.Matrix{randMat(rng, 2, 3), randMat(rng, 2, 3), randMat(rng, 2, 3)}
	y := randMat(rng, 2, 1)
	checkGrad(t, []*tensor.Matrix{w}, func(tp *Tape) *Node {
		nw := tp.Param(w)
		var exps []*Node
		var total *Node
		for _, x := range xs {
			e := tp.Exp(tp.MatMul(tp.Constant(x), nw))
			exps = append(exps, e)
			if total == nil {
				total = e
			} else {
				total = tp.Add(total, e)
			}
		}
		inv := tp.Reciprocal(total)
		var mix *Node
		for i, e := range exps {
			contrib := tp.Mul(tp.Mul(e, inv), tp.Constant(tensor.FromSlice(2, 1, []float64{float64(i), float64(i) + 1})))
			if mix == nil {
				mix = contrib
			} else {
				mix = tp.Add(mix, contrib)
			}
		}
		return tp.MSE(mix, y)
	})
}

func TestDropoutMaskAndNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMat(rng, 2, 4)
	tape := NewTape()
	na := tape.Constant(a)
	if tape.Dropout(na, nil, 0.5) != na {
		t.Fatalf("nil mask must be identity")
	}
	mask := tensor.FromRows([][]float64{{1, 0, 1, 0}, {0, 1, 0, 1}})
	out := tape.Dropout(na, mask, 0.5)
	for i, v := range out.Value.Data {
		want := a.Data[i] * mask.Data[i] * 2
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("dropout elem %d: got %v want %v", i, v, want)
		}
	}
}

func TestGradThroughDropout(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	w := randMat(rng, 3, 4)
	x := randMat(rng, 2, 3)
	y := randMat(rng, 2, 4)
	mask := tensor.FromRows([][]float64{{1, 0, 1, 1}, {0, 1, 1, 0}})
	checkGrad(t, []*tensor.Matrix{w}, func(tp *Tape) *Node {
		h := tp.MatMul(tp.Constant(x), tp.Param(w))
		return tp.MSE(tp.Dropout(tp.Sigmoid(h), mask, 0.75), y)
	})
}

func TestBackwardRequiresScalar(t *testing.T) {
	tape := NewTape()
	p := tape.Param(tensor.New(2, 2))
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for non-scalar Backward")
		}
	}()
	tape.Backward(p)
}

func TestBackwardOnConstantGraphIsNoOp(t *testing.T) {
	tape := NewTape()
	c := tape.Constant(tensor.FromSlice(1, 1, []float64{2}))
	out := tape.Mean(c)
	tape.Backward(out) // must not panic even though nothing requires grad
	if out.Grad != nil {
		t.Fatalf("constant graph should not allocate gradients")
	}
}

func TestMeanValue(t *testing.T) {
	tape := NewTape()
	c := tape.Constant(tensor.FromRows([][]float64{{1, 2}, {3, 4}}))
	if got := tape.Mean(c).Value.Data[0]; got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

// Property: for the scalar function f(w) = mean((x·w − y)²), the analytic
// gradient matches finite differences for random shapes.
func TestGradLinearRegressionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 1+rng.Intn(5), 1+rng.Intn(5)
		x := randMat(rng, n, d)
		w := randMat(rng, d, 1)
		y := randMat(rng, n, 1)
		build := func(tp *Tape) *Node {
			return tp.MSE(tp.MatMul(tp.Constant(x), tp.Param(w)), y)
		}
		tape := NewTape()
		loss := build(tape)
		tape.Backward(loss)
		var wnode *Node
		for _, nd := range tape.nodes {
			if nd.Value == w {
				wnode = nd
			}
		}
		numeric := numericalGrad(w, func() float64 {
			tp := NewTape()
			return build(tp).Value.Data[0]
		})
		for i := range w.Data {
			if math.Abs(wnode.Grad.Data[i]-numeric.Data[i]) > 1e-4*(1+math.Abs(numeric.Data[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
