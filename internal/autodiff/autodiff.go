// Package autodiff implements reverse-mode automatic differentiation over
// dense matrices. It is the numerical core beneath the neural-network layers
// in internal/nn: every Env2Vec component (FNN, GRU, embeddings, Hadamard
// prediction head) is expressed as a composition of the operations defined
// here, and gradients are obtained by a single backward sweep over the tape.
//
// Usage pattern:
//
//	tape := autodiff.NewTape()
//	x := tape.Constant(input)
//	w := tape.Param(weights) // leaf whose gradient is accumulated
//	y := tape.Sigmoid(tape.MatMul(x, w))
//	loss := tape.MSE(y, target)
//	tape.Backward(loss)
//	// w.Grad now holds ∂loss/∂w
//
// Tapes are single-use: build the graph, run Backward once, read gradients.
package autodiff

import (
	"fmt"
	"math"

	"env2vec/internal/tensor"
)

// Node is a value in the computation graph together with the gradient of
// the final scalar output with respect to it.
type Node struct {
	Value *tensor.Matrix
	Grad  *tensor.Matrix
	// back propagates this node's Grad into its inputs. Nil for leaves.
	back func()
	// requiresGrad marks nodes on a path from a parameter; constant
	// subtrees are skipped during the backward sweep.
	requiresGrad bool
	id           int
}

// Tape records operations in execution order so Backward can replay them in
// reverse.
type Tape struct {
	nodes     []*Node
	inference bool
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// NewInferenceTape returns a forward-only tape: parameters enter the graph
// as read-only constants, no gradients are allocated, and no backward
// closures are recorded. Because nothing is written back into shared state,
// many goroutines may run forward passes over the same parameters
// concurrently — the property the online prediction service relies on.
func NewInferenceTape() *Tape { return &Tape{inference: true} }

// Inference reports whether the tape is forward-only.
func (t *Tape) Inference() bool { return t.inference }

func (t *Tape) newNode(v *tensor.Matrix, requiresGrad bool, back func()) *Node {
	if t.inference {
		return &Node{Value: v}
	}
	n := &Node{Value: v, requiresGrad: requiresGrad, back: back, id: len(t.nodes)}
	if requiresGrad {
		n.Grad = tensor.New(v.Rows, v.Cols)
	}
	t.nodes = append(t.nodes, n)
	return n
}

// Constant adds a leaf that does not require gradients.
func (t *Tape) Constant(v *tensor.Matrix) *Node { return t.newNode(v, false, nil) }

// Param adds a leaf parameter whose gradient is wanted. The matrix is used
// by reference, so the caller's storage is shared.
func (t *Tape) Param(v *tensor.Matrix) *Node { return t.newNode(v, true, nil) }

// Backward runs the reverse sweep seeding ∂out/∂out = 1. The output must be
// a 1×1 scalar node produced by this tape.
func (t *Tape) Backward(out *Node) {
	if out.Value.Rows != 1 || out.Value.Cols != 1 {
		panic(fmt.Sprintf("autodiff: Backward requires scalar output, got %dx%d", out.Value.Rows, out.Value.Cols))
	}
	if !out.requiresGrad {
		return // nothing on the tape depends on a parameter
	}
	out.Grad.Data[0] = 1
	for i := out.id; i >= 0; i-- {
		n := t.nodes[i]
		if n.requiresGrad && n.back != nil {
			n.back()
		}
	}
}

// MatMul returns a×b.
func (t *Tape) MatMul(a, b *Node) *Node {
	v := tensor.MatMul(a.Value, b.Value)
	req := a.requiresGrad || b.requiresGrad
	var out *Node
	out = t.newNode(v, req, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(tensor.MatMul(out.Grad, b.Value.Transpose()))
		}
		if b.requiresGrad {
			b.Grad.AddInPlace(tensor.MatMul(a.Value.Transpose(), out.Grad))
		}
	})
	return out
}

// Add returns a+b elementwise.
func (t *Tape) Add(a, b *Node) *Node {
	v := tensor.Add(a.Value, b.Value)
	req := a.requiresGrad || b.requiresGrad
	var out *Node
	out = t.newNode(v, req, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(out.Grad)
		}
		if b.requiresGrad {
			b.Grad.AddInPlace(out.Grad)
		}
	})
	return out
}

// Sub returns a−b elementwise.
func (t *Tape) Sub(a, b *Node) *Node {
	v := tensor.Sub(a.Value, b.Value)
	req := a.requiresGrad || b.requiresGrad
	var out *Node
	out = t.newNode(v, req, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(out.Grad)
		}
		if b.requiresGrad {
			g := tensor.Scale(out.Grad, -1)
			b.Grad.AddInPlace(g)
		}
	})
	return out
}

// Mul returns the Hadamard product a⊙b.
func (t *Tape) Mul(a, b *Node) *Node {
	v := tensor.Mul(a.Value, b.Value)
	req := a.requiresGrad || b.requiresGrad
	var out *Node
	out = t.newNode(v, req, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(tensor.Mul(out.Grad, b.Value))
		}
		if b.requiresGrad {
			b.Grad.AddInPlace(tensor.Mul(out.Grad, a.Value))
		}
	})
	return out
}

// Scale returns s·a for a constant scalar s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	v := tensor.Scale(a.Value, s)
	var out *Node
	out = t.newNode(v, a.requiresGrad, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(tensor.Scale(out.Grad, s))
		}
	})
	return out
}

// AddRowBroadcast adds a 1×c bias row b to every row of a (a is r×c).
func (t *Tape) AddRowBroadcast(a, b *Node) *Node {
	v := tensor.AddRowBroadcast(a.Value, b.Value)
	req := a.requiresGrad || b.requiresGrad
	var out *Node
	out = t.newNode(v, req, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(out.Grad)
		}
		if b.requiresGrad {
			for i := 0; i < out.Grad.Rows; i++ {
				row := out.Grad.Row(i)
				for j, g := range row {
					b.Grad.Data[j] += g
				}
			}
		}
	})
	return out
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Sigmoid applies the logistic function elementwise.
func (t *Tape) Sigmoid(a *Node) *Node {
	v := tensor.Apply(a.Value, sigmoid)
	var out *Node
	out = t.newNode(v, a.requiresGrad, func() {
		if !a.requiresGrad {
			return
		}
		for i, s := range out.Value.Data {
			a.Grad.Data[i] += out.Grad.Data[i] * s * (1 - s)
		}
	})
	return out
}

// Tanh applies tanh elementwise.
func (t *Tape) Tanh(a *Node) *Node {
	v := tensor.Apply(a.Value, math.Tanh)
	var out *Node
	out = t.newNode(v, a.requiresGrad, func() {
		if !a.requiresGrad {
			return
		}
		for i, th := range out.Value.Data {
			a.Grad.Data[i] += out.Grad.Data[i] * (1 - th*th)
		}
	})
	return out
}

// ReLU applies max(0,x) elementwise.
func (t *Tape) ReLU(a *Node) *Node {
	v := tensor.Apply(a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	var out *Node
	out = t.newNode(v, a.requiresGrad, func() {
		if !a.requiresGrad {
			return
		}
		for i, x := range a.Value.Data {
			if x > 0 {
				a.Grad.Data[i] += out.Grad.Data[i]
			}
		}
	})
	return out
}

// Exp applies e^x elementwise.
func (t *Tape) Exp(a *Node) *Node {
	v := tensor.Apply(a.Value, math.Exp)
	var out *Node
	out = t.newNode(v, a.requiresGrad, func() {
		if !a.requiresGrad {
			return
		}
		for i, e := range out.Value.Data {
			a.Grad.Data[i] += out.Grad.Data[i] * e
		}
	})
	return out
}

// Reciprocal applies 1/x elementwise; the caller must keep inputs away
// from zero (softmax denominators are strictly positive).
func (t *Tape) Reciprocal(a *Node) *Node {
	v := tensor.Apply(a.Value, func(x float64) float64 { return 1 / x })
	var out *Node
	out = t.newNode(v, a.requiresGrad, func() {
		if !a.requiresGrad {
			return
		}
		for i, r := range out.Value.Data {
			a.Grad.Data[i] -= out.Grad.Data[i] * r * r
		}
	})
	return out
}

// OneMinus returns 1−a elementwise (used by GRU gating).
func (t *Tape) OneMinus(a *Node) *Node {
	v := tensor.Apply(a.Value, func(x float64) float64 { return 1 - x })
	var out *Node
	out = t.newNode(v, a.requiresGrad, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(tensor.Scale(out.Grad, -1))
		}
	})
	return out
}

// ConcatCols returns [a | b].
func (t *Tape) ConcatCols(a, b *Node) *Node {
	v := tensor.ConcatCols(a.Value, b.Value)
	req := a.requiresGrad || b.requiresGrad
	ac := a.Value.Cols
	var out *Node
	out = t.newNode(v, req, func() {
		if a.requiresGrad {
			a.Grad.AddInPlace(out.Grad.SliceCols(0, ac))
		}
		if b.requiresGrad {
			b.Grad.AddInPlace(out.Grad.SliceCols(ac, out.Grad.Cols))
		}
	})
	return out
}

// SliceColsNode extracts columns [from,to) with gradients scattered back
// into the sliced range.
func (t *Tape) SliceColsNode(a *Node, from, to int) *Node {
	v := a.Value.SliceCols(from, to)
	var out *Node
	out = t.newNode(v, a.requiresGrad, func() {
		if !a.requiresGrad {
			return
		}
		for i := 0; i < out.Grad.Rows; i++ {
			grow := out.Grad.Row(i)
			arow := a.Grad.Row(i)
			for j, g := range grow {
				arow[from+j] += g
			}
		}
	})
	return out
}

// GatherRows selects rows idx[i] of the table node; used for embedding
// lookups. The gradient scatters back into the selected rows.
func (t *Tape) GatherRows(table *Node, idx []int) *Node {
	v := tensor.GatherRows(table.Value, idx)
	var out *Node
	out = t.newNode(v, table.requiresGrad, func() {
		if !table.requiresGrad {
			return
		}
		for i, r := range idx {
			grow := out.Grad.Row(i)
			trow := table.Grad.Row(r)
			for j, g := range grow {
				trow[j] += g
			}
		}
	})
	return out
}

// SumRows reduces each row of a to a single value, producing r×1.
func (t *Tape) SumRows(a *Node) *Node {
	v := tensor.New(a.Value.Rows, 1)
	for i := 0; i < a.Value.Rows; i++ {
		s := 0.0
		for _, x := range a.Value.Row(i) {
			s += x
		}
		v.Data[i] = s
	}
	var out *Node
	out = t.newNode(v, a.requiresGrad, func() {
		if !a.requiresGrad {
			return
		}
		for i := 0; i < a.Grad.Rows; i++ {
			g := out.Grad.Data[i]
			row := a.Grad.Row(i)
			for j := range row {
				row[j] += g
			}
		}
	})
	return out
}

// Sum reduces all elements of a to a 1×1 scalar.
func (t *Tape) Sum(a *Node) *Node {
	v := tensor.FromSlice(1, 1, []float64{a.Value.Sum()})
	var out *Node
	out = t.newNode(v, a.requiresGrad, func() {
		if !a.requiresGrad {
			return
		}
		g := out.Grad.Data[0]
		for i := range a.Grad.Data {
			a.Grad.Data[i] += g
		}
	})
	return out
}

// Mean reduces all elements of a to their mean as a 1×1 scalar.
func (t *Tape) Mean(a *Node) *Node {
	n := float64(len(a.Value.Data))
	return t.Scale(t.Sum(a), 1/n)
}

// MSE returns the scalar mean squared error between pred and the constant
// target matrix.
func (t *Tape) MSE(pred *Node, target *tensor.Matrix) *Node {
	diff := t.Sub(pred, t.Constant(target))
	return t.Mean(t.Mul(diff, diff))
}

// Dropout zeroes elements of a according to the supplied binary mask and
// rescales survivors by 1/keep ("inverted dropout"). The mask is supplied by
// the caller so that training code controls randomness; pass nil to make
// this a no-op (inference).
func (t *Tape) Dropout(a *Node, mask *tensor.Matrix, keep float64) *Node {
	if mask == nil {
		return a
	}
	if keep <= 0 || keep > 1 {
		panic(fmt.Sprintf("autodiff: Dropout keep=%v out of (0,1]", keep))
	}
	scaled := tensor.Scale(mask, 1/keep)
	return t.Mul(a, t.Constant(scaled))
}
