package modelserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// On-disk layout. A durable registry owns one directory per shard
// (dir/shard-NN/) whose `log` file is an append-only sequence of records:
//
//	magic   uint32 big-endian  "E2VR"
//	length  uint32 big-endian  payload bytes
//	crc     uint32 big-endian  CRC-32C (Castagnoli) of the payload
//	payload uvarint(len(name)) name
//	        uvarint number
//	        varint  created (unix seconds)
//	        uvarint(len(data)) data (gob-encoded nn.Snapshot)
//
// A version is committed once its record reaches the log in a single write
// followed by fsync; Publish does not return before both. Replay on open
// walks the log record by record, so a crash mid-append leaves at worst a
// torn tail that fails the magic/length/CRC checks. The torn bytes are
// preserved in the shard's `quarantine` file and the log is repaired by
// writing the intact prefix to `log.tmp` and renaming it over `log` — the
// rename is atomic, so a crash mid-repair still leaves every intact record
// readable on the next open.

const (
	recordMagic      = 0x45325652 // "E2VR"
	recordHeaderSize = 12
	// maxRecordPayload bounds a single record; anything larger in a header
	// is treated as corruption rather than attempted as one allocation.
	maxRecordPayload = 1 << 30

	logName        = "log"
	quarantineName = "quarantine"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errCorruptRecord marks any defect the replay loop treats as a torn tail.
var errCorruptRecord = errors.New("modelserver: corrupt store record")

// encodeRecord renders one version as a framed, checksummed log record.
func encodeRecord(v Version) []byte {
	payload := encodePayload(v)
	buf := make([]byte, recordHeaderSize, recordHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], recordMagic)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[8:12], crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

func encodePayload(v Version) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(v.Name)))
	buf = append(buf, v.Name...)
	buf = binary.AppendUvarint(buf, uint64(v.Number))
	buf = binary.AppendVarint(buf, v.Created)
	buf = binary.AppendUvarint(buf, uint64(len(v.Data)))
	return append(buf, v.Data...)
}

// decodePayload is the strict inverse of encodePayload: every length is
// bounds-checked against the remaining bytes and trailing garbage is an
// error, so arbitrary input can never panic or silently round-trip wrong
// (FuzzStoreReplay holds it to that).
func decodePayload(p []byte) (Version, error) {
	var v Version
	nameLen, n := binary.Uvarint(p)
	if n <= 0 || nameLen == 0 || nameLen > uint64(len(p)-n) {
		return v, fmt.Errorf("%w: name length", errCorruptRecord)
	}
	p = p[n:]
	v.Name = string(p[:nameLen])
	p = p[nameLen:]
	num, n := binary.Uvarint(p)
	if n <= 0 || num == 0 || num > math.MaxInt32 {
		return v, fmt.Errorf("%w: version number", errCorruptRecord)
	}
	v.Number = int(num)
	p = p[n:]
	created, n := binary.Varint(p)
	if n <= 0 {
		return v, fmt.Errorf("%w: created timestamp", errCorruptRecord)
	}
	v.Created = created
	p = p[n:]
	dataLen, n := binary.Uvarint(p)
	if n <= 0 || dataLen != uint64(len(p)-n) {
		return v, fmt.Errorf("%w: data length", errCorruptRecord)
	}
	v.Data = append([]byte(nil), p[n:]...)
	return v, nil
}

// shardStore is one shard's open append-only log.
type shardStore struct {
	dir string
	f   *os.File
}

// openShardStore creates dir if needed, replays its log delivering every
// intact record to apply in order, and quarantines + truncates any corrupt
// tail. recovered reports whether a tail was quarantined (0 or 1); apply
// rejecting a record (e.g. a non-monotonic version number) is treated
// exactly like a failed checksum — everything from that record on is a
// tail the registry must not serve.
func openShardStore(dir string, apply func(Version) error) (st *shardStore, recovered int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("modelserver: store dir: %w", err)
	}
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, 0, fmt.Errorf("modelserver: read store log: %w", err)
	}
	off := 0
	for off < len(data) {
		rest := data[off:]
		if len(rest) < recordHeaderSize {
			break
		}
		if binary.BigEndian.Uint32(rest[0:4]) != recordMagic {
			break
		}
		length := int(binary.BigEndian.Uint32(rest[4:8]))
		if length > maxRecordPayload || length > len(rest)-recordHeaderSize {
			break
		}
		payload := rest[recordHeaderSize : recordHeaderSize+length]
		if binary.BigEndian.Uint32(rest[8:12]) != crc32.Checksum(payload, castagnoli) {
			break
		}
		v, err := decodePayload(payload)
		if err != nil {
			break
		}
		if err := apply(v); err != nil {
			break
		}
		off += recordHeaderSize + length
	}
	if off < len(data) {
		if err := quarantineTail(dir, path, data, off); err != nil {
			return nil, 0, err
		}
		recovered = 1
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("modelserver: open store log: %w", err)
	}
	return &shardStore{dir: dir, f: f}, recovered, nil
}

// quarantineTail preserves the unreadable suffix of the log in the shard's
// quarantine file, then replaces the log with its intact prefix via
// tmp+rename so the repair itself is crash-atomic.
func quarantineTail(dir, path string, data []byte, off int) error {
	q, err := os.OpenFile(filepath.Join(dir, quarantineName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("modelserver: quarantine: %w", err)
	}
	if _, err := q.Write(data[off:]); err != nil {
		q.Close()
		return fmt.Errorf("modelserver: quarantine: %w", err)
	}
	if err := q.Close(); err != nil {
		return fmt.Errorf("modelserver: quarantine: %w", err)
	}
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data[:off]); err != nil {
		return fmt.Errorf("modelserver: repair log: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("modelserver: repair log: %w", err)
	}
	return syncDir(dir)
}

// append commits one record: single write, then fsync. The caller holds the
// shard lock, so records never interleave.
func (st *shardStore) append(v Version) error {
	if _, err := st.f.Write(encodeRecord(v)); err != nil {
		return fmt.Errorf("modelserver: append record: %w", err)
	}
	if err := st.f.Sync(); err != nil {
		return fmt.Errorf("modelserver: sync record: %w", err)
	}
	return nil
}

func (st *shardStore) close() error {
	return st.f.Close()
}

// writeFileSync is os.WriteFile plus fsync before close, so the rename that
// follows publishes fully durable bytes.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir flushes directory metadata (the rename) to disk; filesystems that
// do not support fsync on directories are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
