package modelserver

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"env2vec/internal/nn"
)

func longPollServer(t *testing.T) (*Registry, *Client) {
	t.Helper()
	reg := NewRegistry()
	srv := httptest.NewServer(&Handler{Registry: reg})
	t.Cleanup(srv.Close)
	return reg, &Client{BaseURL: srv.URL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// A version-vector long-poll parked on an in-sync client must wake the
// moment a publish commits, not at the wait deadline.
func TestVersionsLongPollWakesOnPublish(t *testing.T) {
	reg, c := longPollServer(t)
	if _, err := reg.Publish("m", demoSnapshot(1), 1); err != nil {
		t.Fatal(err)
	}
	_, etag, _, err := c.FetchVersionVector("")
	if err != nil {
		t.Fatal(err)
	}

	type answer struct {
		changed bool
		took    time.Duration
		err     error
	}
	done := make(chan answer, 1)
	go func() {
		t0 := time.Now()
		_, _, changed, err := c.FetchVersionVectorWait(etag, 10*time.Second)
		done <- answer{changed: changed, took: time.Since(t0), err: err}
	}()

	time.Sleep(50 * time.Millisecond) // let the poll park server-side
	if _, err := reg.Publish("m", demoSnapshot(2), 2); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-done:
		if a.err != nil {
			t.Fatalf("long-poll: %v", a.err)
		}
		if !a.changed {
			t.Fatal("long-poll returned unchanged despite a publish")
		}
		if a.took >= 5*time.Second {
			t.Fatalf("long-poll took %s — it slept to the deadline instead of waking on publish", a.took)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never returned after the publish")
	}
}

// With nothing published, a long-poll must hold for the wait duration and
// come back 304-style (changed=false), not error and not return early.
func TestVersionsLongPollExpiresUnchanged(t *testing.T) {
	reg, c := longPollServer(t)
	if _, err := reg.Publish("m", demoSnapshot(1), 1); err != nil {
		t.Fatal(err)
	}
	_, etag, _, err := c.FetchVersionVector("")
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	_, _, changed, err := c.FetchVersionVectorWait(etag, 150*time.Millisecond)
	took := time.Since(t0)
	if err != nil {
		t.Fatalf("long-poll expiry: %v", err)
	}
	if changed {
		t.Fatal("long-poll reported a change with nothing published")
	}
	if took < 100*time.Millisecond {
		t.Fatalf("long-poll returned after %s — the server ignored ?wait", took)
	}
}

// The latest-version endpoint supports the same parking: a watcher-style
// FetchLatestIfNewerWait wakes on the next publish of its model.
func TestLatestLongPollWakesOnPublish(t *testing.T) {
	reg, c := longPollServer(t)
	if _, err := reg.Publish("m", demoSnapshot(1), 1); err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() {
		_, ver, changed, err := c.FetchLatestIfNewerWait("m", 1, 10*time.Second)
		if err != nil || !changed {
			done <- -1
			return
		}
		done <- ver
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := reg.Publish("m", demoSnapshot(2), 2); err != nil {
		t.Fatal(err)
	}
	select {
	case ver := <-done:
		if ver != 2 {
			t.Fatalf("long-poll delivered version %d, want 2", ver)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("latest long-poll never woke on the publish")
	}
}

// A publish of a *different* model must also wake /versions pollers (the
// vector covers all models) but NOT deliver to a latest-poller of model m.
func TestLatestLongPollIgnoresOtherModels(t *testing.T) {
	reg, c := longPollServer(t)
	if _, err := reg.Publish("m", demoSnapshot(1), 1); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	type answer struct {
		changed bool
		err     error
	}
	done := make(chan answer, 1)
	go func() {
		_, _, changed, err := c.FetchLatestIfNewerWait("m", 1, 400*time.Millisecond)
		done <- answer{changed: changed, err: err}
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := reg.Publish("other", demoSnapshot(9), 2); err != nil {
		t.Fatal(err)
	}
	a := <-done
	if a.err != nil {
		t.Fatal(a.err)
	}
	if a.changed {
		t.Fatal("poller of m woke with a change after a publish to a different model")
	}
	if took := time.Since(t0); took < 300*time.Millisecond {
		t.Fatalf("poller returned after %s — it should have re-parked until its deadline", took)
	}
}

// End to end: a watcher with LongPoll set and an absurdly long Interval
// still sees a publish in O(RTT), proving the re-arm path (not the ticker)
// delivers it.
func TestWatcherLongPollDeliversWithoutInterval(t *testing.T) {
	reg, c := longPollServer(t)
	if _, err := reg.Publish("m", demoSnapshot(1), 1); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var versions []int
	updated := make(chan int, 8)
	w := &Watcher{
		Client: c, Name: "m",
		Interval: time.Hour, // the ticker can never fire inside this test
		LongPoll: 5 * time.Second,
		OnUpdate: func(_ *nn.Snapshot, ver int) {
			mu.Lock()
			versions = append(versions, ver)
			mu.Unlock()
			updated <- ver
		},
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	// The immediate first poll delivers v1.
	select {
	case ver := <-updated:
		if ver != 1 {
			t.Fatalf("first delivery was v%d, want v1", ver)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never delivered the initial version")
	}
	// With Interval an hour out, only the re-armed long-poll can carry v2.
	if _, err := reg.Publish("m", demoSnapshot(2), 2); err != nil {
		t.Fatal(err)
	}
	select {
	case ver := <-updated:
		if ver != 2 {
			t.Fatalf("long-poll delivery was v%d, want v2", ver)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher's long-poll never delivered the publish (ticker path would take an hour)")
	}
	mu.Lock()
	got := append([]int(nil), versions...)
	mu.Unlock()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("delivery order %v, want [1 2]", got)
	}
}

// A replica with LongPoll converges on a publish in O(RTT) too, through
// the same runLoop re-arm.
func TestReplicaLongPollConverges(t *testing.T) {
	reg, c := longPollServer(t)
	if _, err := reg.Publish("m", demoSnapshot(1), 1); err != nil {
		t.Fatal(err)
	}
	local := NewRegistry()
	synced := make(chan int, 8)
	rp := &Replica{
		Client: c, Registry: local,
		Interval: time.Hour,
		LongPoll: 5 * time.Second,
		OnSync:   func(pulled int) { synced <- pulled },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rp.Run(ctx)

	waitPulled := func(label string) {
		deadline := time.After(5 * time.Second)
		for {
			select {
			case n := <-synced:
				if n > 0 {
					return
				}
			case <-deadline:
				t.Fatalf("%s: replica never pulled the version", label)
			}
		}
	}
	waitPulled("initial sync")
	if got := local.latestNumber("m"); got != 1 {
		t.Fatalf("after initial sync local has v%d, want v1", got)
	}
	if _, err := reg.Publish("m", demoSnapshot(2), 2); err != nil {
		t.Fatal(err)
	}
	waitPulled("long-poll sync")
	if got := local.latestNumber("m"); got != 2 {
		t.Fatalf("after publish local has v%d, want v2", got)
	}
}
