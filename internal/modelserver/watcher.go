package modelserver

import (
	"context"
	"fmt"
	"sync"
	"time"

	"env2vec/internal/nn"
	"env2vec/internal/obs"
)

// Watcher polls a model registry for new versions of one model and invokes
// OnUpdate for each version it has not yet delivered. It is the reload
// signal of workflow step (5) turned into a long-lived subscription: the
// serving daemon keeps a Watcher running so retrains published by the
// training pipeline reach the online predictor without a restart.
//
// Polls use the registry's version short-circuit (If-None-Match), so an
// unchanged model costs only a header exchange. A Watcher follows one
// model; Replica is the whole-registry analogue built on the same ETag
// machinery (the per-shard version-vector endpoint), and a Watcher may
// point at a replica instead of the primary to spread poll load.
type Watcher struct {
	Client   *Client
	Name     string
	Interval time.Duration // polling period; Run defaults to 10s when 0
	// LongPoll, when positive, turns each poll into a server-side long-poll
	// (?wait=LongPoll on the latest endpoint): an up-to-date watcher parks
	// on the registry until the next publish, so reloads land in O(RTT)
	// instead of O(Interval). Old registries ignore ?wait; Run detects the
	// instant 304s and falls back to Interval pacing. The client's HTTP
	// timeout must exceed LongPoll.
	LongPoll time.Duration
	// OnUpdate receives each newly observed snapshot. It is called from the
	// polling goroutine (or the Poll caller), never concurrently with itself.
	OnUpdate func(snap *nn.Snapshot, version int)
	// OnError, when non-nil, receives transient polling errors (registry
	// unreachable, model not yet published). Run keeps polling afterwards.
	OnError func(err error)

	mu      sync.Mutex
	version int

	m struct {
		polls, reloads, notModified, errors *obs.Counter // nil (no-op) unless Instrument was called
	}
}

// Instrument registers the watcher's counters in reg and returns the
// watcher for chaining: polls, reloads delivered, 304-style unchanged
// polls, and transient errors. On the serving daemon these share the
// /metrics page with the serve metrics, so one scrape shows both halves of
// the publish-then-serve loop.
func (w *Watcher) Instrument(reg *obs.Registry) *Watcher {
	w.m.polls = reg.Counter("modelserver_watcher_polls_total", "Registry polls attempted.", nil)
	w.m.reloads = reg.Counter("modelserver_watcher_reloads_total", "New versions delivered to OnUpdate.", nil)
	w.m.notModified = reg.Counter("modelserver_watcher_not_modified_total", "Polls answered unchanged (ETag 304 path).", nil)
	w.m.errors = reg.Counter("modelserver_watcher_errors_total", "Polls that failed transiently.", nil)
	return w
}

// Version returns the last version delivered to OnUpdate (0 before any).
func (w *Watcher) Version() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.version
}

// Poll performs one registry check, invoking OnUpdate when a version newer
// than the last delivered one is available. It reports whether an update was
// delivered. A registry with no versions of the model yet is an error (the
// caller decides whether that is fatal; Run treats it as transient).
func (w *Watcher) Poll() (bool, error) {
	if w.Client == nil || w.Name == "" {
		return false, fmt.Errorf("modelserver: watcher needs a client and a model name")
	}
	w.mu.Lock()
	have := w.version
	w.mu.Unlock()
	w.m.polls.Inc()
	snap, ver, changed, err := w.Client.FetchLatestIfNewerWait(w.Name, have, w.LongPoll)
	if err != nil {
		w.m.errors.Inc()
		return false, err
	}
	if !changed || ver == have {
		w.m.notModified.Inc()
		return false, nil
	}
	if w.OnUpdate != nil {
		w.OnUpdate(snap, ver)
	}
	w.mu.Lock()
	w.version = ver
	w.mu.Unlock()
	w.m.reloads.Inc()
	return true, nil
}

// Run polls until ctx is cancelled, starting with an immediate poll. With
// LongPoll set, polls park server-side and re-arm back-to-back; see
// runLoop for the old-server fallback.
func (w *Watcher) Run(ctx context.Context) {
	interval := w.Interval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	runLoop(ctx, interval, w.LongPoll, func() (bool, error) {
		updated, err := w.Poll()
		if err != nil && w.OnError != nil {
			w.OnError(err)
		}
		return updated, err
	})
}
