package modelserver

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"env2vec/internal/obs"
)

// openDurable opens a durable registry in dir, failing the test on error.
func openDurable(t *testing.T, dir string, opts ...Option) *Registry {
	t.Helper()
	r, err := OpenRegistry(append([]Option{WithDir(dir)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// publishK publishes versions 1..k of each name, round-robin so shard logs
// interleave names the way concurrent build chains would.
func publishK(t *testing.T, r *Registry, names []string, k int) {
	t.Helper()
	for v := 1; v <= k; v++ {
		for _, name := range names {
			n, err := r.Publish(name, demoSnapshot(int64(v)), int64(100*v))
			if err != nil || n != v {
				t.Fatalf("publish %s: got v%d err %v, want v%d", name, n, err, v)
			}
		}
	}
}

// assertVersions checks every version of every name survives with intact
// payloads (round-tripping the snapshot through the registry's gob bytes).
func assertVersions(t *testing.T, r *Registry, names []string, k int) {
	t.Helper()
	for _, name := range names {
		latest, err := r.Latest(name)
		if err != nil || latest.Number != k {
			t.Fatalf("%s latest: %+v %v, want v%d", name, latest.Number, err, k)
		}
		for v := 1; v <= k; v++ {
			got, err := r.Get(name, v)
			if err != nil {
				t.Fatalf("%s v%d lost: %v", name, v, err)
			}
			want, _ := demoSnapshot(int64(v)).Bytes()
			if !bytes.Equal(got.Data, want) || got.Created != int64(100*v) {
				t.Fatalf("%s v%d corrupted after reopen", name, v)
			}
		}
	}
}

// TestRegistryKillAndRestart proves durability without a clean shutdown:
// the first registry is simply abandoned (no Close), the way a killed
// daemon would leave it, and a second open must replay every committed
// version — Publish fsyncs before returning, so committed means survivable.
func TestRegistryKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	names := []string{"env2vec", "fw-smoke", "lb-soak", "dpi-regress"}
	const k = 3

	r1 := openDurable(t, dir, WithShards(4))
	publishK(t, r1, names, k)
	// No Close: simulate kill -9 by dropping the handle on the floor.

	r2 := openDurable(t, dir)
	defer r2.Close()
	if rec := r2.RecoveredRecords(); rec != 0 {
		t.Fatalf("clean logs reported %d recovered records", rec)
	}
	assertVersions(t, r2, names, k)
	if got := r2.Names(); len(got) != len(names) {
		t.Fatalf("names after restart: %v", got)
	}
	// The MANIFEST pins sharding: reopening with a different WithShards must
	// keep the original layout, or names would hash to the wrong logs.
	if len(r2.shards) != 4 {
		t.Fatalf("shard count drifted to %d on reopen", len(r2.shards))
	}
	r1.Close()
}

// shardLogFor locates the shard log holding a name's records.
func shardLogFor(t *testing.T, dir, name string, shards int) string {
	t.Helper()
	r := &Registry{shards: make([]*shard, shards)}
	for i := range r.shards {
		r.shards[i] = newShard()
	}
	for i, sh := range r.shards {
		if sh == r.shardFor(name) {
			return filepath.Join(dir, fmt.Sprintf("shard-%02d", i), logName)
		}
	}
	t.Fatal("unreachable")
	return ""
}

// TestCrashRecoveryCorruptTail is the crash-recovery battery: publish K
// versions across shards, then damage the store tail two ways — a flipped
// byte (failed checksum) and a truncated record (torn write) — and prove
// the reopened registry serves every intact version, quarantines the tail
// instead of serving it, counts it in env2vec_registry_recovered_records,
// and keeps accepting publishes that are durable in turn.
func TestCrashRecoveryCorruptTail(t *testing.T) {
	for _, tc := range []struct {
		name    string
		corrupt func(t *testing.T, path string)
	}{
		{"flipped-byte", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x40 // inside the last record's payload
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-record", func(t *testing.T, path string) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()-7); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			// These names hash to shards 0, 1, and 2 of 4, so the victim is
			// alone on its shard and the tail record is its own v3.
			names := []string{"env2vec", "nat-soak", "fw-smoke"}
			const k = 3
			const victim = "env2vec"

			r1 := openDurable(t, dir, WithShards(4))
			publishK(t, r1, names, k)
			if err := r1.Close(); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, shardLogFor(t, dir, victim, 4))

			r2 := openDurable(t, dir)
			defer r2.Close()
			if rec := r2.RecoveredRecords(); rec != 1 {
				t.Fatalf("recovered records = %d, want 1", rec)
			}
			// The metric surface reports the quarantine.
			oreg := obs.NewRegistry()
			r2.Instrument(oreg)
			var page strings.Builder
			if _, err := oreg.WriteTo(&page); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(page.String(), "env2vec_registry_recovered_records 1") {
				t.Fatalf("metric missing from exposition:\n%s", page.String())
			}

			// The victim lost exactly its torn tail version; everything else
			// is intact.
			latest, err := r2.Latest(victim)
			if err != nil || latest.Number != k-1 {
				t.Fatalf("victim latest: %+v %v, want v%d", latest, err, k-1)
			}
			for _, name := range names[1:] {
				if v, err := r2.Latest(name); err != nil || v.Number != k {
					t.Fatalf("%s latest after recovery: %+v %v", name, v, err)
				}
			}
			// The torn bytes are preserved, not destroyed.
			quarantine := filepath.Join(filepath.Dir(shardLogFor(t, dir, victim, 4)), quarantineName)
			if st, err := os.Stat(quarantine); err != nil || st.Size() == 0 {
				t.Fatalf("quarantine file: %v", err)
			}

			// The registry keeps working: a fresh publish takes the vacated
			// number and survives yet another restart.
			n, err := r2.Publish(victim, demoSnapshot(99), 999)
			if err != nil || n != k {
				t.Fatalf("publish after recovery: v%d %v", n, err)
			}
			if err := r2.Close(); err != nil {
				t.Fatal(err)
			}
			r3 := openDurable(t, dir)
			defer r3.Close()
			if rec := r3.RecoveredRecords(); rec != 0 {
				t.Fatalf("repair was not persistent: %d recovered on third open", rec)
			}
			v, err := r3.Get(victim, k)
			if err != nil || v.Created != 999 {
				t.Fatalf("post-recovery publish lost: %+v %v", v, err)
			}
		})
	}
}

// TestDurableRegistryRejectsBadManifest guards the sharding pin.
func TestDurableRegistryRejectsBadManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("shards=banana"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegistry(WithDir(dir)); err == nil {
		t.Fatal("bad manifest accepted")
	}
}
