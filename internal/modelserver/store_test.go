package modelserver

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestRecordCodecRoundTrip(t *testing.T) {
	cases := []Version{
		{Name: "m", Number: 1, Created: 0, Data: nil},
		{Name: "env2vec", Number: 42, Created: 1700000000, Data: []byte{0, 1, 2, 255}},
		{Name: "a/b c", Number: 1 << 20, Created: -7, Data: bytes.Repeat([]byte("x"), 10_000)},
	}
	for _, want := range cases {
		got, err := decodePayload(encodePayload(want))
		if err != nil {
			t.Fatalf("%q v%d: %v", want.Name, want.Number, err)
		}
		if got.Name != want.Name || got.Number != want.Number || got.Created != want.Created || !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("round trip mangled %+v into %+v", want, got)
		}
	}
}

func TestRecordCodecRejectsDamage(t *testing.T) {
	rec := encodePayload(Version{Name: "m", Number: 3, Created: 9, Data: []byte("weights")})
	// Truncations at every length must error, never panic.
	for i := 0; i < len(rec); i++ {
		if _, err := decodePayload(rec[:i]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", i)
		}
	}
	// Trailing garbage is corruption, not silently ignored.
	if _, err := decodePayload(append(append([]byte(nil), rec...), 0xEE)); err == nil {
		t.Fatalf("trailing garbage decoded")
	}
	// Zero version numbers and empty names never come out of Publish.
	if _, err := decodePayload(encodePayload(Version{Name: "m", Number: 0})); err == nil {
		t.Fatalf("version 0 decoded")
	}
	if _, err := decodePayload(encodePayload(Version{Name: "", Number: 1})); err == nil {
		t.Fatalf("empty name decoded")
	}
}

// writeLog assembles a shard log from records.
func writeLog(t *testing.T, dir string, records ...Version) {
	t.Helper()
	var buf bytes.Buffer
	for _, v := range records {
		buf.Write(encodeRecord(v))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, logName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// replayAll opens the shard store, collecting every intact record with the
// registry's monotonicity rule applied.
func replayAll(t *testing.T, dir string) (got []Version, recovered int) {
	t.Helper()
	sh := newShard()
	st, recovered, err := openShardStore(dir, func(v Version) error {
		if err := sh.applyReplay(v); err != nil {
			return err
		}
		got = append(got, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}
	return got, recovered
}

func TestStoreReplayTruncatesNonMonotonicTail(t *testing.T) {
	dir := t.TempDir()
	writeLog(t, dir,
		Version{Name: "m", Number: 1, Data: []byte("a")},
		Version{Name: "m", Number: 2, Data: []byte("b")},
		Version{Name: "m", Number: 4, Data: []byte("gap")}, // damaged ordering
		Version{Name: "m", Number: 3, Data: []byte("after")},
	)
	got, recovered := replayAll(t, dir)
	if len(got) != 2 || recovered != 1 {
		t.Fatalf("replayed %d records, recovered %d; want 2 intact + 1 quarantined tail", len(got), recovered)
	}
	// The repair is stable: a second open sees a clean log.
	got2, recovered2 := replayAll(t, dir)
	if len(got2) != 2 || recovered2 != 0 {
		t.Fatalf("second open: %d records, recovered %d", len(got2), recovered2)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineName)); err != nil {
		t.Fatalf("torn tail not preserved in quarantine: %v", err)
	}
}

func TestStoreAppendThenReplay(t *testing.T) {
	dir := t.TempDir()
	st, recovered, err := openShardStore(dir, func(Version) error { return nil })
	if err != nil || recovered != 0 {
		t.Fatalf("open empty: %d %v", recovered, err)
	}
	want := []Version{
		{Name: "m", Number: 1, Created: 10, Data: []byte("v1")},
		{Name: "m", Number: 2, Created: 20, Data: []byte("v2")},
		{Name: "other", Number: 1, Created: 30, Data: nil},
	}
	for _, v := range want {
		if err := st.append(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}
	got, recovered := replayAll(t, dir)
	if recovered != 0 || len(got) != len(want) {
		t.Fatalf("replay: %d records, recovered %d", len(got), recovered)
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].Number != want[i].Number ||
			got[i].Created != want[i].Created || !bytes.Equal(got[i].Data, want[i].Data) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}
