package modelserver

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreReplay feeds arbitrary bytes to the on-disk record codec as a
// shard log and holds the store to three properties:
//
//  1. replay never panics, whatever the bytes;
//  2. whatever replays intact on a first open replays identically — with
//     nothing further quarantined — on a second open (repair is stable and
//     exact, so valid record prefixes round-trip);
//  3. every accepted record obeys the registry's invariants (monotonic
//     per-name numbering from 1).
func FuzzStoreReplay(f *testing.F) {
	// Seeds: a clean two-record log, a log with a torn tail, raw garbage,
	// and headers lying about their lengths.
	v1 := Version{Name: "m", Number: 1, Created: 10, Data: []byte("weights-1")}
	v2 := Version{Name: "m", Number: 2, Created: 20, Data: []byte("weights-2")}
	clean := append(encodeRecord(v1), encodeRecord(v2)...)
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	f.Add([]byte{})
	f.Add([]byte("not a log at all"))
	f.Add(encodeRecord(Version{Name: "m", Number: 7, Created: 1, Data: nil})) // gap from 0
	lying := append([]byte(nil), clean...)
	lying[5] ^= 0x7F // length field
	f.Add(lying)
	flipped := append([]byte(nil), clean...)
	flipped[len(flipped)-1] ^= 1 // payload byte → CRC mismatch
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, logName), data, 0o644); err != nil {
			t.Fatal(err)
		}

		replay := func() ([]Version, int) {
			sh := newShard()
			var got []Version
			st, recovered, err := openShardStore(dir, func(v Version) error {
				if err := sh.applyReplay(v); err != nil {
					return err
				}
				got = append(got, v)
				return nil
			})
			if err != nil {
				t.Fatalf("open: %v", err) // I/O only; corruption must not error
			}
			if err := st.close(); err != nil {
				t.Fatal(err)
			}
			return got, recovered
		}

		first, _ := replay()
		counts := make(map[string]int)
		for _, v := range first {
			counts[v.Name]++
			if v.Number != counts[v.Name] {
				t.Fatalf("accepted non-monotonic record: %s v%d after %d", v.Name, v.Number, counts[v.Name]-1)
			}
			if v.Name == "" {
				t.Fatal("accepted record with empty name")
			}
		}

		second, recovered2 := replay()
		if recovered2 != 0 {
			t.Fatalf("repair unstable: second open quarantined again")
		}
		if len(second) != len(first) {
			t.Fatalf("replay not idempotent: %d then %d records", len(first), len(second))
		}
		for i := range first {
			a, b := first[i], second[i]
			if a.Name != b.Name || a.Number != b.Number || a.Created != b.Created || !bytes.Equal(a.Data, b.Data) {
				t.Fatalf("record %d changed across reopens: %+v vs %+v", i, a, b)
			}
		}
	})
}
