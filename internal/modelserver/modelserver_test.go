package modelserver

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"env2vec/internal/nn"
	"env2vec/internal/tensor"
)

func demoSnapshot(seed int64) *nn.Snapshot {
	rng := rand.New(rand.NewSource(seed))
	p := nn.NewParam("w", 3, 3)
	p.Value.RandNormal(rng, 1)
	return nn.TakeSnapshot([]*nn.Param{p}, map[string]string{"seed": "x"})
}

func TestRegistryPublishLatestGet(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Latest("m"); err == nil {
		t.Fatalf("empty registry should error")
	}
	n1, err := r.Publish("m", demoSnapshot(1), 100)
	if err != nil || n1 != 1 {
		t.Fatalf("publish: %d %v", n1, err)
	}
	n2, _ := r.Publish("m", demoSnapshot(2), 200)
	if n2 != 2 {
		t.Fatalf("version not incremented")
	}
	latest, err := r.Latest("m")
	if err != nil || latest.Number != 2 {
		t.Fatalf("latest wrong: %+v %v", latest, err)
	}
	v1, err := r.Get("m", 1)
	if err != nil || v1.Created != 100 {
		t.Fatalf("get v1 wrong")
	}
	if _, err := r.Get("m", 3); err == nil {
		t.Fatalf("missing version should error")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "m" {
		t.Fatalf("names wrong: %v", names)
	}
}

func TestHTTPPublishFetchRoundTrip(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(&Handler{Registry: reg, Now: func() int64 { return 7 }})
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	snap := demoSnapshot(3)
	n, err := c.Publish("env2vec", snap)
	if err != nil || n != 1 {
		t.Fatalf("publish: %d %v", n, err)
	}
	fetched, ver, err := c.FetchLatest("env2vec")
	if err != nil {
		t.Fatal(err)
	}
	if ver != 1 {
		t.Fatalf("version header wrong: %d", ver)
	}
	p := nn.NewParam("w", 3, 3)
	if err := fetched.Restore([]*nn.Param{p}); err != nil {
		t.Fatal(err)
	}
	orig := nn.NewParam("w", 3, 3)
	if err := snap.Restore([]*nn.Param{orig}); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(p.Value, orig.Value, 0) {
		t.Fatalf("weights differ after HTTP round trip")
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := httptest.NewServer(&Handler{Registry: NewRegistry()})
	defer srv.Close()

	// Fetch missing model → 404.
	resp, _ := http.Get(srv.URL + "/models/none/latest")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing model status %d", resp.StatusCode)
	}
	// Invalid snapshot body → 400.
	resp2, _ := http.Post(srv.URL+"/models/m", "application/octet-stream", http.NoBody)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad snapshot status %d", resp2.StatusCode)
	}
	// Bad version number → 400.
	resp3, _ := http.Get(srv.URL + "/models/m/notanumber")
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad version status %d", resp3.StatusCode)
	}
	// Bad path → 404.
	resp4, _ := http.Get(srv.URL + "/other")
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotFound {
		t.Fatalf("bad path status %d", resp4.StatusCode)
	}
	// Wrong method shape → 405.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/models/m/latest", nil)
	resp5, _ := http.DefaultClient.Do(req)
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("wrong method status %d", resp5.StatusCode)
	}
	// Client surfaces non-201 publish errors.
	c := &Client{BaseURL: srv.URL + "/missingprefix"}
	if _, err := c.Publish("m", demoSnapshot(1)); err == nil {
		t.Fatalf("client publish should surface errors")
	}
	if _, _, err := (&Client{BaseURL: srv.URL}).FetchLatest("none"); err == nil {
		t.Fatalf("client fetch should surface errors")
	}
}

func TestVersionsIsolatedPerName(t *testing.T) {
	r := NewRegistry()
	_, _ = r.Publish("a", demoSnapshot(1), 1)
	n, _ := r.Publish("b", demoSnapshot(2), 2)
	if n != 1 {
		t.Fatalf("names must version independently, got %d", n)
	}
}
