package modelserver

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"env2vec/internal/nn"
)

// countingHandler wraps the registry handler so tests can observe how many
// GETs actually transferred a snapshot body versus short-circuited with 304.
type countingHandler struct {
	inner        http.Handler
	gets, not304 atomic.Int64
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		h.gets.Add(1)
		rec := httptest.NewRecorder()
		h.inner.ServeHTTP(rec, r)
		if rec.Code != http.StatusNotModified {
			h.not304.Add(1)
		}
		for k, vs := range rec.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.Code)
		_, _ = w.Write(rec.Body.Bytes())
		return
	}
	h.inner.ServeHTTP(w, r)
}

func TestWatcherNoVersionsIsError(t *testing.T) {
	srv := httptest.NewServer(&Handler{Registry: NewRegistry()})
	defer srv.Close()

	updates := 0
	w := &Watcher{
		Client:   &Client{BaseURL: srv.URL},
		Name:     "env2vec",
		OnUpdate: func(*nn.Snapshot, int) { updates++ },
	}
	changed, err := w.Poll()
	if err == nil {
		t.Fatalf("polling an empty registry should error (404)")
	}
	if changed || updates != 0 {
		t.Fatalf("no update should be delivered on error: changed=%v updates=%d", changed, updates)
	}
	if w.Version() != 0 {
		t.Fatalf("version advanced on error: %d", w.Version())
	}
}

func TestWatcherUnchangedVersionShortCircuits(t *testing.T) {
	reg := NewRegistry()
	h := &countingHandler{inner: &Handler{Registry: reg}}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	if _, err := c.Publish("env2vec", demoSnapshot(1)); err != nil {
		t.Fatal(err)
	}

	var got []int
	w := &Watcher{Client: c, Name: "env2vec", OnUpdate: func(_ *nn.Snapshot, ver int) { got = append(got, ver) }}

	changed, err := w.Poll()
	if err != nil || !changed {
		t.Fatalf("first poll should deliver v1: changed=%v err=%v", changed, err)
	}
	// Two more polls with the model unchanged: no re-delivery, and the
	// registry must answer them with 304 (no snapshot body transferred).
	for i := 0; i < 2; i++ {
		changed, err = w.Poll()
		if err != nil || changed {
			t.Fatalf("unchanged poll %d: changed=%v err=%v", i, changed, err)
		}
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("OnUpdate calls wrong: %v", got)
	}
	if g, full := h.gets.Load(), h.not304.Load(); g != 3 || full != 1 {
		t.Fatalf("expected 3 GETs with exactly 1 full download, got %d/%d", g, full)
	}

	// A re-publish is picked up on the next poll.
	if _, err := c.Publish("env2vec", demoSnapshot(2)); err != nil {
		t.Fatal(err)
	}
	changed, err = w.Poll()
	if err != nil || !changed {
		t.Fatalf("poll after republish: changed=%v err=%v", changed, err)
	}
	if w.Version() != 2 || len(got) != 2 || got[1] != 2 {
		t.Fatalf("v2 not delivered: version=%d updates=%v", w.Version(), got)
	}
}

func TestWatcherRequiresClientAndName(t *testing.T) {
	if _, err := (&Watcher{}).Poll(); err == nil {
		t.Fatalf("misconfigured watcher should error")
	}
}
