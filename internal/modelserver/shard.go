package modelserver

import (
	"fmt"
	"sort"
	"sync"
)

// shard is one independent slice of the registry: its own lock, its own
// version map, and (when the registry is durable) its own append-only log.
// Model names are hashed onto shards, so concurrent Publish/Latest/Get on
// different models contend only when they collide on a shard.
type shard struct {
	mu       sync.RWMutex
	versions map[string][]Version
	store    *shardStore // nil when the registry is memory-only
	// notify, when non-nil, is called after every committed publish or
	// import — the registry's long-poll broadcast (see Registry.Updated).
	notify func()
}

func newShard() *shard {
	return &shard{versions: make(map[string][]Version)}
}

// applyReplay restores one record during open. Version numbers must arrive
// in exact publish order; a gap or repeat means the log is damaged from
// this record on, and the store treats it like a failed checksum.
func (s *shard) applyReplay(v Version) error {
	if v.Number != len(s.versions[v.Name])+1 {
		return fmt.Errorf("%w: version %d of %q after %d replayed",
			errCorruptRecord, v.Number, v.Name, len(s.versions[v.Name]))
	}
	s.versions[v.Name] = append(s.versions[v.Name], v)
	return nil
}

// publish assigns the next version number and commits it — to disk first
// (when durable), then to memory, so a version is never observable in the
// map without being replayable from the log.
func (s *shard) publish(name string, data []byte, created int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.versions[name]) + 1
	v := Version{Name: name, Number: n, Data: data, Created: created}
	if s.store != nil {
		if err := s.store.append(v); err != nil {
			return 0, err
		}
	}
	s.versions[name] = append(s.versions[name], v)
	if s.notify != nil {
		s.notify()
	}
	return n, nil
}

// importVersion installs a version pulled from a primary, keeping its
// number. Versions already held are skipped (idempotent re-pulls); a gap
// means the caller fetched out of order and is refused.
func (s *shard) importVersion(v Version) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	have := len(s.versions[v.Name])
	if v.Number <= have {
		return false, nil
	}
	if v.Number != have+1 {
		return false, fmt.Errorf("modelserver: import version %d of %q with only %d local", v.Number, v.Name, have)
	}
	if s.store != nil {
		if err := s.store.append(v); err != nil {
			return false, err
		}
	}
	s.versions[v.Name] = append(s.versions[v.Name], v)
	if s.notify != nil {
		s.notify()
	}
	return true, nil
}

func (s *shard) latest(name string) (Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.versions[name]
	if len(vs) == 0 {
		return Version{}, fmt.Errorf("modelserver: no versions of %q", name)
	}
	return vs[len(vs)-1], nil
}

func (s *shard) latestNumber(name string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.versions[name])
}

func (s *shard) get(name string, number int) (Version, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.versions[name]
	if number < 1 || number > len(vs) {
		return Version{}, fmt.Errorf("modelserver: %q has no version %d", name, number)
	}
	return vs[number-1], nil
}

func (s *shard) names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.versions))
	for n := range s.versions {
		out = append(out, n)
	}
	return out
}

// vector snapshots the shard's name → latest-version map.
func (s *shard) vector() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int, len(s.versions))
	for n, vs := range s.versions {
		out[n] = len(vs)
	}
	return out
}

func (s *shard) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return nil
	}
	err := s.store.close()
	s.store = nil
	return err
}

// sortedNames merges per-shard name lists into one sorted, deduplicated
// slice (names are unique across shards, but keep the dedup cheap anyway).
func sortedNames(lists [][]string) []string {
	var out []string
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Strings(out)
	n := 0
	for i, s := range out {
		if i == 0 || s != out[n-1] {
			out[n] = s
			n++
		}
	}
	return out[:n]
}
