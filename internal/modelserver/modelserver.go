// Package modelserver is the model registry of workflow steps (2) and (5):
// the training pipeline publishes versioned model snapshots ("essentially a
// weight matrix") after each retrain, and the prediction pipeline fetches
// the latest snapshot over HTTP before each execution.
//
// The registry is sharded — model names hash onto independent shards, each
// with its own lock and version map — and optionally durable: with WithDir,
// every published version is committed to a per-shard append-only log
// (checksummed, length-prefixed records; see store.go) before Publish
// returns, and OpenRegistry replays the logs so a daemon restart loses
// nothing. Read-only replicas follow a primary with Replica, which polls
// the primary's per-shard version-vector endpoint and pulls missing
// versions; see docs/serving.md for the topology.
package modelserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"env2vec/internal/nn"
	"env2vec/internal/obs"
)

// DefaultShards is how many shards a registry has unless WithShards says
// otherwise. For a durable registry the count is fixed at creation time by
// the MANIFEST file, because records replay from per-shard directories.
const DefaultShards = 8

// Version is one published model snapshot.
type Version struct {
	Name    string
	Number  int
	Data    []byte // gob-encoded nn.Snapshot
	Created int64  // unix seconds
}

// Registry stores versioned snapshots per model name, spread over shards.
type Registry struct {
	shards    []*shard
	recovered atomic.Uint64 // corrupt tail segments quarantined at open

	// Long-poll broadcast: waitCh is closed and replaced on every committed
	// publish or import, so anyone holding the previous channel wakes up.
	waitMu sync.Mutex
	waitCh chan struct{}
}

// Option configures OpenRegistry.
type Option func(*registryOptions)

type registryOptions struct {
	dir    string
	shards int
}

// WithDir makes the registry durable: versions are committed to per-shard
// append-only logs under dir and replayed on open.
func WithDir(dir string) Option { return func(o *registryOptions) { o.dir = dir } }

// WithShards sets the shard count (default DefaultShards). For a durable
// registry the count recorded in the directory's MANIFEST wins on reopen,
// since names must keep hashing to the shard that holds their log.
func WithShards(n int) Option { return func(o *registryOptions) { o.shards = n } }

// NewRegistry returns an empty in-memory registry. Use OpenRegistry with
// WithDir for one that survives restarts.
func NewRegistry() *Registry {
	r, err := OpenRegistry()
	if err != nil { // unreachable: only disk options can fail
		panic(err)
	}
	return r
}

// OpenRegistry builds a registry from options. With WithDir it replays the
// per-shard logs (restoring every committed version), truncating and
// quarantining any torn tail record instead of serving it; the number of
// quarantined tails is available via RecoveredRecords.
func OpenRegistry(opts ...Option) (*Registry, error) {
	o := registryOptions{shards: DefaultShards}
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards < 1 {
		o.shards = 1
	}
	if o.dir != "" {
		n, err := loadOrWriteManifest(o.dir, o.shards)
		if err != nil {
			return nil, err
		}
		o.shards = n
	}
	r := &Registry{shards: make([]*shard, o.shards), waitCh: make(chan struct{})}
	for i := range r.shards {
		sh := newShard()
		sh.notify = r.bump
		if o.dir != "" {
			st, recovered, err := openShardStore(filepath.Join(o.dir, fmt.Sprintf("shard-%02d", i)), sh.applyReplay)
			if err != nil {
				return nil, err
			}
			sh.store = st
			r.recovered.Add(uint64(recovered))
		}
		r.shards[i] = sh
	}
	return r, nil
}

// loadOrWriteManifest pins the shard count of a durable registry directory.
func loadOrWriteManifest(dir string, shards int) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("modelserver: registry dir: %w", err)
	}
	path := filepath.Join(dir, "MANIFEST")
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(string(data)), "shards=%d", &n); err != nil || n < 1 {
			return 0, fmt.Errorf("modelserver: bad MANIFEST %q in %s", strings.TrimSpace(string(data)), dir)
		}
		return n, nil
	case os.IsNotExist(err):
		if err := writeFileSync(path, []byte(fmt.Sprintf("shards=%d\n", shards))); err != nil {
			return 0, fmt.Errorf("modelserver: write MANIFEST: %w", err)
		}
		return shards, nil
	default:
		return 0, fmt.Errorf("modelserver: read MANIFEST: %w", err)
	}
}

// shardFor hashes a model name onto its shard (FNV-1a, allocation-free).
func (r *Registry) shardFor(name string) *shard {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	return r.shards[h%uint32(len(r.shards))]
}

// Publish stores a new version of the named model and returns its number.
// On a durable registry the version is fsynced to the shard log before the
// call returns.
func (r *Registry) Publish(name string, snap *nn.Snapshot, created int64) (int, error) {
	data, err := snap.Bytes()
	if err != nil {
		return 0, fmt.Errorf("modelserver: encode snapshot: %w", err)
	}
	return r.shardFor(name).publish(name, data, created)
}

// Latest returns the newest version of the named model.
func (r *Registry) Latest(name string) (Version, error) {
	return r.shardFor(name).latest(name)
}

// Get returns a specific version.
func (r *Registry) Get(name string, number int) (Version, error) {
	return r.shardFor(name).get(name, number)
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	lists := make([][]string, len(r.shards))
	for i, sh := range r.shards {
		lists[i] = sh.names()
	}
	return sortedNames(lists)
}

// latestNumber is Latest without copying the snapshot: 0 when the model is
// unknown.
func (r *Registry) latestNumber(name string) int {
	return r.shardFor(name).latestNumber(name)
}

// importVersion installs a replicated version under its original number
// (idempotent for versions already held). Used by Replica.
func (r *Registry) importVersion(v Version) (bool, error) {
	return r.shardFor(v.Name).importVersion(v)
}

// VersionVector reports every shard's name → latest-version map; it is the
// unit replicas diff against their local state.
func (r *Registry) VersionVector() VersionVector {
	vec := VersionVector{Shards: make([]ShardVersions, len(r.shards))}
	for i, sh := range r.shards {
		vec.Shards[i] = ShardVersions{Shard: i, Models: sh.vector()}
	}
	return vec
}

// RecoveredRecords reports how many corrupt log tails were quarantined when
// this registry was opened (0 for in-memory registries and clean opens).
func (r *Registry) RecoveredRecords() uint64 { return r.recovered.Load() }

// bump wakes every Updated waiter: a version was committed somewhere.
func (r *Registry) bump() {
	r.waitMu.Lock()
	close(r.waitCh)
	r.waitCh = make(chan struct{})
	r.waitMu.Unlock()
}

// Updated returns a channel that is closed the next time any version is
// published or imported. Grab the channel BEFORE reading the state you
// compare against — then a publish racing your read still wakes you.
func (r *Registry) Updated() <-chan struct{} {
	r.waitMu.Lock()
	defer r.waitMu.Unlock()
	return r.waitCh
}

// Instrument registers the registry's metrics in reg and returns the
// registry for chaining: env2vec_registry_recovered_records counts log
// tails quarantined at open — a nonzero value after a crash is the signal
// that durability did its job (and which shard dirs hold quarantine files).
func (r *Registry) Instrument(reg *obs.Registry) *Registry {
	reg.CounterFunc("env2vec_registry_recovered_records", "Corrupt store tail records quarantined during replay.", nil, r.RecoveredRecords)
	return r
}

// Close syncs and closes the shard logs of a durable registry; in-memory
// registries close trivially. The registry must not be used afterwards.
func (r *Registry) Close() error {
	var first error
	for _, sh := range r.shards {
		if err := sh.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// VersionVector is the per-shard publication state served at GET /versions.
type VersionVector struct {
	Shards []ShardVersions `json:"shards"`
}

// ShardVersions is one shard's name → latest-version map.
type ShardVersions struct {
	Shard  int            `json:"shard"`
	Models map[string]int `json:"models"`
}

// Models flattens the vector into one name → latest-version map.
func (v VersionVector) Models() map[string]int {
	out := make(map[string]int)
	for _, sh := range v.Shards {
		for name, n := range sh.Models {
			out[name] = n
		}
	}
	return out
}

// etag renders a deterministic entity tag for the vector, reusing the same
// If-None-Match short-circuit the per-model latest endpoint has: an
// unchanged fleet costs replicas a header exchange per poll.
func (v VersionVector) etag() string {
	h := fnv.New64a()
	for _, sh := range v.Shards {
		names := make([]string, 0, len(sh.Models))
		for name := range sh.Models {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(h, "%d/%s=%d;", sh.Shard, name, sh.Models[name])
		}
	}
	return `"` + strconv.FormatUint(h.Sum64(), 16) + `"`
}

// Handler serves the registry:
//
//	POST /models/<name>            (gob body) → version number
//	GET  /models/<name>/latest     → gob snapshot
//	GET  /models/<name>/<version>  → gob snapshot
//	GET  /versions                 → per-shard version vector (JSON)
//
// A ReadOnly handler refuses publishes with 403: a replica that accepted
// a local publish would take a version number the primary later assigns
// to different bytes, and the two would silently diverge.
type Handler struct {
	Registry *Registry
	Now      func() int64
	ReadOnly bool

	m struct {
		publishes, fetches, notModified, vectors *obs.Counter // nil (no-op) unless Instrument was called
	}
}

// Instrument registers the handler's counters in reg and returns the
// handler for chaining: publishes, full snapshot downloads, 304
// short-circuits (the cheap path the ETag protocol exists for), and
// version-vector polls.
func (h *Handler) Instrument(reg *obs.Registry) *Handler {
	h.m.publishes = reg.Counter("modelserver_publishes_total", "Snapshot versions published.", nil)
	h.m.fetches = reg.Counter("modelserver_fetches_total", "Full snapshot downloads served.", nil)
	h.m.notModified = reg.Counter("modelserver_not_modified_total", "Fetches short-circuited with 304 via ETag.", nil)
	h.m.vectors = reg.Counter("modelserver_vector_polls_total", "Version-vector polls served (any status).", nil)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	if len(parts) == 1 && parts[0] == "versions" {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h.serveVector(w, r)
		return
	}
	if len(parts) < 2 || parts[0] != "models" {
		http.NotFound(w, r)
		return
	}
	name := parts[1]
	switch {
	case r.Method == http.MethodPost && len(parts) == 2:
		if h.ReadOnly {
			http.Error(w, "registry is a replica; publish to the primary", http.StatusForbidden)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		snap, err := nn.DecodeSnapshot(bytes.NewReader(body))
		if err != nil {
			http.Error(w, "invalid snapshot: "+err.Error(), http.StatusBadRequest)
			return
		}
		now := int64(0)
		if h.Now != nil {
			now = h.Now()
		}
		n, err := h.Registry.Publish(name, snap, now)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		h.m.publishes.Inc()
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, "%d", n)
	case r.Method == http.MethodGet && len(parts) == 3:
		var v Version
		var err error
		if parts[2] == "latest" {
			// Long-poll: ?wait=<dur> with If-None-Match blocks until a newer
			// version lands (or the wait expires into the usual 304), so
			// watchers see publishes in O(RTT) instead of the poll interval.
			deadline := time.Now().Add(parseWait(r))
			inm := r.Header.Get("If-None-Match")
			for {
				updated := h.Registry.Updated() // grab BEFORE reading, see Updated
				v, err = h.Registry.Latest(name)
				if err != nil || inm == "" || inm != `"`+strconv.Itoa(v.Number)+`"` {
					break
				}
				remaining := time.Until(deadline)
				if remaining <= 0 {
					break
				}
				select {
				case <-updated:
				case <-time.After(remaining):
				case <-r.Context().Done():
					return
				}
			}
		} else {
			num, convErr := strconv.Atoi(parts[2])
			if convErr != nil {
				http.Error(w, "bad version", http.StatusBadRequest)
				return
			}
			v, err = h.Registry.Get(name, num)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		etag := `"` + strconv.Itoa(v.Number) + `"`
		w.Header().Set("ETag", etag)
		w.Header().Set("X-Model-Version", strconv.Itoa(v.Number))
		w.Header().Set("X-Model-Created", strconv.FormatInt(v.Created, 10))
		// Version short-circuit: pollers send the version they already hold
		// as If-None-Match so an unchanged model costs a header exchange, not
		// a snapshot download.
		if r.Header.Get("If-None-Match") == etag {
			h.m.notModified.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
		h.m.fetches.Inc()
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(v.Data)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// MaxWait caps the server-side long-poll duration: a client asking for
// more gets this much. Bounded so an abandoned connection cannot park a
// handler goroutine forever past its client's patience.
const MaxWait = time.Minute

// parseWait reads the ?wait=<dur> long-poll parameter (0 when absent or
// malformed — old clients and plain polls behave exactly as before).
func parseWait(r *http.Request) time.Duration {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d < 0 {
		return 0
	}
	if d > MaxWait {
		d = MaxWait
	}
	return d
}

// serveVector answers GET /versions with the per-shard version vector,
// honouring If-None-Match so an idle fleet of replicas costs header
// exchanges only. With ?wait=<dur> and a matching If-None-Match the
// handler parks until a publish changes the vector (push-based
// invalidation: replicas see new versions in O(RTT), not O(interval)),
// answering 304 only when the wait expires with nothing new.
func (h *Handler) serveVector(w http.ResponseWriter, r *http.Request) {
	h.m.vectors.Inc()
	deadline := time.Now().Add(parseWait(r))
	inm := r.Header.Get("If-None-Match")
	for {
		updated := h.Registry.Updated() // grab BEFORE reading, see Updated
		vec := h.Registry.VersionVector()
		etag := vec.etag()
		if inm == "" || inm != etag {
			w.Header().Set("ETag", etag)
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(vec)
			return
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		select {
		case <-updated:
		case <-time.After(remaining):
		case <-r.Context().Done():
			return
		}
	}
}

// Client talks to a model server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Publish uploads a snapshot and returns the assigned version number.
func (c *Client) Publish(name string, snap *nn.Snapshot) (int, error) {
	data, err := snap.Bytes()
	if err != nil {
		return 0, err
	}
	resp, err := c.httpClient().Post(c.BaseURL+"/models/"+name, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return 0, fmt.Errorf("modelserver: publish status %d: %s", resp.StatusCode, body)
	}
	return strconv.Atoi(strings.TrimSpace(string(body)))
}

// FetchLatest downloads the newest snapshot of the named model.
func (c *Client) FetchLatest(name string) (*nn.Snapshot, int, error) {
	snap, ver, _, err := c.FetchLatestIfNewer(name, 0)
	return snap, ver, err
}

// FetchLatestIfNewer downloads the newest snapshot only when its version
// differs from have (the version the caller already holds). It returns
// changed=false with a nil snapshot when the server still serves version
// have; have=0 always downloads.
func (c *Client) FetchLatestIfNewer(name string, have int) (snap *nn.Snapshot, ver int, changed bool, err error) {
	return c.FetchLatestIfNewerWait(name, have, 0)
}

// FetchLatestIfNewerWait is FetchLatestIfNewer with server-side long-poll:
// when wait > 0 and the caller already holds a version, the request asks
// the server to park until a newer version lands (or wait expires into the
// usual 304). Servers that predate ?wait ignore the parameter and answer
// immediately — the plain-poll fallback.
func (c *Client) FetchLatestIfNewerWait(name string, have int, wait time.Duration) (snap *nn.Snapshot, ver int, changed bool, err error) {
	url := c.BaseURL + "/models/" + name + "/latest"
	if wait > 0 && have > 0 {
		url += "?wait=" + wait.String()
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, false, err
	}
	if have > 0 {
		req.Header.Set("If-None-Match", `"`+strconv.Itoa(have)+`"`)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, 0, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, have, false, nil
	case http.StatusOK:
	default:
		return nil, 0, false, fmt.Errorf("modelserver: fetch status %d", resp.StatusCode)
	}
	snap, err = nn.DecodeSnapshot(resp.Body)
	if err != nil {
		return nil, 0, false, err
	}
	ver, _ = strconv.Atoi(resp.Header.Get("X-Model-Version"))
	return snap, ver, true, nil
}

// FetchVersion downloads one specific version verbatim — raw snapshot bytes
// plus registry metadata — so a replica can mirror it without a decode →
// re-encode round trip.
func (c *Client) FetchVersion(name string, number int) (Version, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/models/" + name + "/" + strconv.Itoa(number))
	if err != nil {
		return Version{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Version{}, fmt.Errorf("modelserver: fetch %s v%d status %d", name, number, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return Version{}, err
	}
	created, _ := strconv.ParseInt(resp.Header.Get("X-Model-Created"), 10, 64)
	return Version{Name: name, Number: number, Data: data, Created: created}, nil
}

// FetchVersionVector polls GET /versions. haveETag is the tag from the
// previous poll ("" on the first); when the server's vector still matches
// it, changed is false and only headers crossed the wire.
func (c *Client) FetchVersionVector(haveETag string) (vec VersionVector, etag string, changed bool, err error) {
	return c.FetchVersionVectorWait(haveETag, 0)
}

// FetchVersionVectorWait is FetchVersionVector with server-side long-poll
// (see FetchLatestIfNewerWait). The caller's HTTP client timeout must
// exceed wait, or the poll will abort client-side first.
func (c *Client) FetchVersionVectorWait(haveETag string, wait time.Duration) (vec VersionVector, etag string, changed bool, err error) {
	url := c.BaseURL + "/versions"
	if wait > 0 && haveETag != "" {
		url += "?wait=" + wait.String()
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return vec, "", false, err
	}
	if haveETag != "" {
		req.Header.Set("If-None-Match", haveETag)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return vec, "", false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return vec, haveETag, false, nil
	case http.StatusOK:
	default:
		return vec, "", false, fmt.Errorf("modelserver: vector status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&vec); err != nil {
		return vec, "", false, fmt.Errorf("modelserver: decode vector: %w", err)
	}
	return vec, resp.Header.Get("ETag"), true, nil
}
