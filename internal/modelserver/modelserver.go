// Package modelserver is the model registry of workflow steps (2) and (5):
// the training pipeline publishes versioned model snapshots ("essentially a
// weight matrix") after each retrain, and the prediction pipeline fetches
// the latest snapshot over HTTP before each execution.
package modelserver

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"env2vec/internal/nn"
	"env2vec/internal/obs"
)

// Version is one published model snapshot.
type Version struct {
	Name    string
	Number  int
	Data    []byte // gob-encoded nn.Snapshot
	Created int64  // unix seconds
}

// Registry stores versioned snapshots per model name.
type Registry struct {
	mu       sync.RWMutex
	versions map[string][]Version
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{versions: make(map[string][]Version)}
}

// Publish stores a new version of the named model and returns its number.
func (r *Registry) Publish(name string, snap *nn.Snapshot, created int64) (int, error) {
	data, err := snap.Bytes()
	if err != nil {
		return 0, fmt.Errorf("modelserver: encode snapshot: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.versions[name]) + 1
	r.versions[name] = append(r.versions[name], Version{Name: name, Number: n, Data: data, Created: created})
	return n, nil
}

// Latest returns the newest version of the named model.
func (r *Registry) Latest(name string) (Version, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	vs := r.versions[name]
	if len(vs) == 0 {
		return Version{}, fmt.Errorf("modelserver: no versions of %q", name)
	}
	return vs[len(vs)-1], nil
}

// Get returns a specific version.
func (r *Registry) Get(name string, number int) (Version, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	vs := r.versions[name]
	if number < 1 || number > len(vs) {
		return Version{}, fmt.Errorf("modelserver: %q has no version %d", name, number)
	}
	return vs[number-1], nil
}

// Names lists the registered model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.versions))
	for n := range r.versions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Handler serves the registry:
//
//	POST /models/<name>            (gob body) → version number
//	GET  /models/<name>/latest     → gob snapshot
//	GET  /models/<name>/<version>  → gob snapshot
type Handler struct {
	Registry *Registry
	Now      func() int64

	m struct {
		publishes, fetches, notModified *obs.Counter // nil (no-op) unless Instrument was called
	}
}

// Instrument registers the handler's counters in reg and returns the
// handler for chaining: publishes, full snapshot downloads, and 304
// short-circuits (the cheap path the ETag protocol exists for).
func (h *Handler) Instrument(reg *obs.Registry) *Handler {
	h.m.publishes = reg.Counter("modelserver_publishes_total", "Snapshot versions published.", nil)
	h.m.fetches = reg.Counter("modelserver_fetches_total", "Full snapshot downloads served.", nil)
	h.m.notModified = reg.Counter("modelserver_not_modified_total", "Fetches short-circuited with 304 via ETag.", nil)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.Trim(r.URL.Path, "/"), "/")
	if len(parts) < 2 || parts[0] != "models" {
		http.NotFound(w, r)
		return
	}
	name := parts[1]
	switch {
	case r.Method == http.MethodPost && len(parts) == 2:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		snap, err := nn.DecodeSnapshot(bytes.NewReader(body))
		if err != nil {
			http.Error(w, "invalid snapshot: "+err.Error(), http.StatusBadRequest)
			return
		}
		now := int64(0)
		if h.Now != nil {
			now = h.Now()
		}
		n, err := h.Registry.Publish(name, snap, now)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		h.m.publishes.Inc()
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, "%d", n)
	case r.Method == http.MethodGet && len(parts) == 3:
		var v Version
		var err error
		if parts[2] == "latest" {
			v, err = h.Registry.Latest(name)
		} else {
			num, convErr := strconv.Atoi(parts[2])
			if convErr != nil {
				http.Error(w, "bad version", http.StatusBadRequest)
				return
			}
			v, err = h.Registry.Get(name, num)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		etag := `"` + strconv.Itoa(v.Number) + `"`
		w.Header().Set("ETag", etag)
		w.Header().Set("X-Model-Version", strconv.Itoa(v.Number))
		// Version short-circuit: pollers send the version they already hold
		// as If-None-Match so an unchanged model costs a header exchange, not
		// a snapshot download.
		if r.Header.Get("If-None-Match") == etag {
			h.m.notModified.Inc()
			w.WriteHeader(http.StatusNotModified)
			return
		}
		h.m.fetches.Inc()
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(v.Data)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// Client talks to a model server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Publish uploads a snapshot and returns the assigned version number.
func (c *Client) Publish(name string, snap *nn.Snapshot) (int, error) {
	data, err := snap.Bytes()
	if err != nil {
		return 0, err
	}
	resp, err := c.httpClient().Post(c.BaseURL+"/models/"+name, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return 0, fmt.Errorf("modelserver: publish status %d: %s", resp.StatusCode, body)
	}
	return strconv.Atoi(strings.TrimSpace(string(body)))
}

// FetchLatest downloads the newest snapshot of the named model.
func (c *Client) FetchLatest(name string) (*nn.Snapshot, int, error) {
	snap, ver, _, err := c.FetchLatestIfNewer(name, 0)
	return snap, ver, err
}

// FetchLatestIfNewer downloads the newest snapshot only when its version
// differs from have (the version the caller already holds). It returns
// changed=false with a nil snapshot when the server still serves version
// have; have=0 always downloads.
func (c *Client) FetchLatestIfNewer(name string, have int) (snap *nn.Snapshot, ver int, changed bool, err error) {
	req, err := http.NewRequest(http.MethodGet, c.BaseURL+"/models/"+name+"/latest", nil)
	if err != nil {
		return nil, 0, false, err
	}
	if have > 0 {
		req.Header.Set("If-None-Match", `"`+strconv.Itoa(have)+`"`)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, 0, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, have, false, nil
	case http.StatusOK:
	default:
		return nil, 0, false, fmt.Errorf("modelserver: fetch status %d", resp.StatusCode)
	}
	snap, err = nn.DecodeSnapshot(resp.Body)
	if err != nil {
		return nil, 0, false, err
	}
	ver, _ = strconv.Atoi(resp.Header.Get("X-Model-Version"))
	return snap, ver, true, nil
}
