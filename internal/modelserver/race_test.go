package modelserver

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
)

// TestConcurrentPublishGetReplicate is the registry's -race battery:
// many goroutines hammer Publish/Latest/Get/Names across many model names
// while a replica syncs mid-publish. Afterwards every publish must be
// accounted for — per-name version numbers form exactly 1..N (monotonic,
// no losses, no duplicates) — and a final sync leaves the replica
// bit-identical to the primary.
func TestConcurrentPublishGetReplicate(t *testing.T) {
	const (
		models     = 8
		publishers = 4 // per model
		perPub     = 6 // versions per publisher
	)
	for _, durable := range []bool{false, true} {
		t.Run(map[bool]string{false: "memory", true: "durable"}[durable], func(t *testing.T) {
			var primary *Registry
			var err error
			if durable {
				primary, err = OpenRegistry(WithDir(t.TempDir()), WithShards(4))
			} else {
				primary, err = OpenRegistry(WithShards(4))
			}
			if err != nil {
				t.Fatal(err)
			}
			defer primary.Close()
			srv := httptest.NewServer(&Handler{Registry: primary})
			defer srv.Close()
			replicaReg := NewRegistry()
			replica := &Replica{Client: &Client{BaseURL: srv.URL}, Registry: replicaReg}

			names := make([]string, models)
			for i := range names {
				names[i] = fmt.Sprintf("model-%02d", i)
			}

			numbers := make([][]int, models) // versions each model's publishers got back
			var numbersMu sync.Mutex
			done := make(chan struct{})

			var writers sync.WaitGroup
			for mi, name := range names {
				for p := 0; p < publishers; p++ {
					writers.Add(1)
					go func(mi int, name string, seed int64) {
						defer writers.Done()
						for v := 0; v < perPub; v++ {
							n, err := primary.Publish(name, demoSnapshot(seed+int64(v)), seed)
							if err != nil {
								t.Errorf("publish %s: %v", name, err)
								return
							}
							numbersMu.Lock()
							numbers[mi] = append(numbers[mi], n)
							numbersMu.Unlock()
						}
					}(mi, name, int64(mi*100+p))
				}
			}

			// Readers and a mid-publish replica syncer run until writers stop.
			var readers sync.WaitGroup
			for g := 0; g < 4; g++ {
				readers.Add(1)
				go func(g int) {
					defer readers.Done()
					for i := 0; ; i++ {
						select {
						case <-done:
							return
						default:
						}
						name := names[(g+i)%models]
						if v, err := primary.Latest(name); err == nil {
							if v.Number < 1 || v.Number > publishers*perPub {
								t.Errorf("latest %s: impossible version %d", name, v.Number)
								return
							}
							if _, err := primary.Get(name, v.Number); err != nil {
								t.Errorf("get %s v%d vanished: %v", name, v.Number, err)
								return
							}
						}
						if got := primary.Names(); len(got) > models {
							t.Errorf("names grew to %v", got)
							return
						}
					}
				}(g)
			}
			readers.Add(1)
			go func() {
				defer readers.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					if _, err := replica.Sync(); err != nil {
						t.Errorf("mid-publish sync: %v", err)
						return
					}
				}
			}()

			writers.Wait()
			close(done)
			readers.Wait()

			// No lost publishes: each model's returned numbers are exactly a
			// permutation of 1..publishers*perPub.
			for mi, name := range names {
				got := append([]int(nil), numbers[mi]...)
				sort.Ints(got)
				if len(got) != publishers*perPub {
					t.Fatalf("%s: %d publishes recorded, want %d", name, len(got), publishers*perPub)
				}
				for i, n := range got {
					if n != i+1 {
						t.Fatalf("%s: version sequence %v is not 1..%d", name, got, publishers*perPub)
					}
				}
				if v, err := primary.Latest(name); err != nil || v.Number != publishers*perPub {
					t.Fatalf("%s latest: %+v %v", name, v.Number, err)
				}
			}

			// The replica converges exactly once the publishing stops.
			if _, err := replica.Sync(); err != nil {
				t.Fatal(err)
			}
			for _, name := range names {
				for v := 1; v <= publishers*perPub; v++ {
					p, err1 := primary.Get(name, v)
					r, err2 := replicaReg.Get(name, v)
					if err1 != nil || err2 != nil || !bytes.Equal(p.Data, r.Data) || p.Created != r.Created {
						t.Fatalf("replica diverges at %s v%d: %v %v", name, v, err1, err2)
					}
				}
			}
		})
	}
}
