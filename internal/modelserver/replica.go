package modelserver

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"env2vec/internal/obs"
)

// Replica keeps a local registry converged with a primary registry's
// contents: each Sync polls the primary's version-vector endpoint (with the
// same If-None-Match short-circuit Watcher uses, so an idle primary costs a
// header exchange) and pulls any versions the local registry is missing, in
// publish order, preserving their numbers. Many read-only replicas can
// front one primary so the serving fleet's Watcher polls never converge on
// a single hot registry; the local registry may itself be durable
// (OpenRegistry WithDir), giving replicas warm restarts.
//
// Replicas are read-only by convention: publishing locally to a replica
// desynchronizes its version numbering from the primary and will make
// subsequent imports fail with a gap error.
type Replica struct {
	Client   *Client
	Registry *Registry
	Interval time.Duration // polling period; Run defaults to 10s when 0
	// LongPoll, when positive, makes each vector poll a server-side
	// long-poll (?wait=LongPoll): an in-sync replica's request parks on the
	// primary until a publish lands, so new versions replicate in O(RTT)
	// instead of O(Interval). Run then re-polls immediately after a
	// long-poll completes. Against a primary that predates ?wait the poll
	// returns instantly unchanged; Run detects that and falls back to
	// plain Interval pacing. The client's HTTP timeout must exceed
	// LongPoll.
	LongPoll time.Duration
	// OnSync, when non-nil, is called after every successful sync with the
	// number of versions pulled (possibly 0). Serving daemons use it to
	// hot-reload from the local registry the moment new versions land.
	OnSync func(pulled int)
	// OnError, when non-nil, receives transient sync errors. Run keeps
	// polling afterwards; a partially pulled sync resumes where it stopped
	// because the vector ETag is only advanced after a complete pass.
	OnError func(err error)

	mu   sync.Mutex
	etag string

	m struct {
		syncs, pulls, notModified, errors *obs.Counter // nil (no-op) unless Instrument was called
	}
}

// Instrument registers the replica's counters in reg and returns the
// replica for chaining: sync passes, versions pulled, 304-style unchanged
// polls, and transient errors.
func (rp *Replica) Instrument(reg *obs.Registry) *Replica {
	rp.m.syncs = reg.Counter("modelserver_replica_syncs_total", "Replica sync passes attempted.", nil)
	rp.m.pulls = reg.Counter("modelserver_replica_pulls_total", "Versions pulled from the primary.", nil)
	rp.m.notModified = reg.Counter("modelserver_replica_not_modified_total", "Syncs answered unchanged (vector ETag 304 path).", nil)
	rp.m.errors = reg.Counter("modelserver_replica_errors_total", "Syncs that failed transiently.", nil)
	return rp
}

// Sync performs one convergence pass and reports how many versions it
// pulled. Versions are fetched oldest-first per model, so an interrupted
// pass leaves the local registry gap-free and a later pass resumes cleanly.
func (rp *Replica) Sync() (pulled int, err error) {
	if rp.Client == nil || rp.Registry == nil {
		return 0, fmt.Errorf("modelserver: replica needs a client and a local registry")
	}
	rp.m.syncs.Inc()
	rp.mu.Lock()
	have := rp.etag
	rp.mu.Unlock()
	vec, etag, changed, err := rp.Client.FetchVersionVectorWait(have, rp.LongPoll)
	if err != nil {
		rp.m.errors.Inc()
		return 0, err
	}
	if !changed {
		rp.m.notModified.Inc()
		if rp.OnSync != nil {
			rp.OnSync(0)
		}
		return 0, nil
	}
	remote := vec.Models()
	names := make([]string, 0, len(remote))
	for name := range remote {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic pull order for tests and logs
	for _, name := range names {
		for n := rp.Registry.latestNumber(name) + 1; n <= remote[name]; n++ {
			v, err := rp.Client.FetchVersion(name, n)
			if err != nil {
				rp.m.errors.Inc()
				return pulled, err
			}
			imported, err := rp.Registry.importVersion(v)
			if err != nil {
				rp.m.errors.Inc()
				return pulled, err
			}
			if imported {
				pulled++
				rp.m.pulls.Inc()
			}
		}
	}
	// Only remember the vector as seen once every version in it is local;
	// a failed pass retries from the same vantage point.
	rp.mu.Lock()
	rp.etag = etag
	rp.mu.Unlock()
	if rp.OnSync != nil {
		rp.OnSync(pulled)
	}
	return pulled, nil
}

// Run syncs until ctx is cancelled, starting with an immediate pass. With
// LongPoll set it loops back-to-back — each poll blocks server-side until
// something changes — and drops to Interval pacing only when the server
// ignores ?wait (pre-long-poll primary) or errors, so it never hot-spins.
func (rp *Replica) Run(ctx context.Context) {
	interval := rp.Interval
	if interval <= 0 {
		interval = 10 * time.Second
	}
	runLoop(ctx, interval, rp.LongPoll, func() (bool, error) {
		pulled, err := rp.Sync()
		if err != nil && rp.OnError != nil {
			rp.OnError(err)
		}
		return pulled > 0, err
	})
}

// runLoop is the shared pacing loop of Replica.Run and Watcher.Run: plain
// ticker polling when longPoll is zero; otherwise immediate re-poll after
// each pass that either did work (keep draining a burst in O(RTT)) or
// parked server-side for a while (the long-poll was honoured). A pass that
// comes back fast with nothing — an old server ignoring ?wait — or fails
// drops to one interval of sleep, so the loop never hot-spins.
func runLoop(ctx context.Context, interval, longPoll time.Duration, pass func() (worked bool, err error)) {
	sleep := func(d time.Duration) bool {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
			return true
		}
	}
	for {
		start := time.Now()
		worked, err := pass()
		if ctx.Err() != nil {
			return
		}
		if longPoll > 0 && err == nil && (worked || time.Since(start) >= longPoll/2) {
			continue // re-arm the long-poll immediately
		}
		if !sleep(interval) {
			return
		}
	}
}
